(* Compare the three placement strategies of the paper's introduction on
   one circuit: optimization-based (SA, genetic), template-based, and
   the multi-placement structure.

   For a batch of dimension vectors (as a synthesis loop would produce)
   each strategy places the circuit; we report average cost and total
   wall time.  The MPS should sit at template speed with
   optimization-class quality.

   Run with: dune exec examples/baseline_comparison.exe *)

open Mps_rng
open Mps_netlist
open Mps_core
open Mps_baselines

let () =
  let circuit = Benchmarks.mixer in
  let die_w, die_h = Circuit.default_die circuit in
  Format.printf "Circuit: %a@.@." Circuit.pp circuit;

  let config =
    Mps_experiments.Experiments.generator_config Mps_experiments.Experiments.Full circuit
  in
  let (structure, stats), gen_time =
    let t0 = Unix.gettimeofday () in
    let r = Generator.generate ~config circuit in
    (r, Unix.gettimeofday () -. t0)
  in
  Format.printf "MPS: %d placements generated once in %s@."
    stats.Generator.placements_stored
    (Mps_experiments.Text_table.seconds gen_time);
  let rng = Rng.create ~seed:1 in
  let template = Template_placer.build ~rng circuit ~die_w ~die_h in

  let queries = Mps_experiments.Experiments.probe_dims ~seed:2 ~n:40 structure in
  let weights = Mps_cost.Cost.default_weights in
  let evaluate name place =
    let t0 = Unix.gettimeofday () in
    let costs =
      Array.map
        (fun dims ->
          let rects = place dims in
          Mps_cost.Cost.total ~weights circuit ~die_w ~die_h rects)
        queries
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    let avg = Array.fold_left ( +. ) 0.0 costs /. float_of_int (Array.length costs) in
    (name, avg, elapsed)
  in

  let sa_rng = Rng.create ~seed:3 and ga_rng = Rng.create ~seed:4 in
  let sa_config = { Sa_placer.default_config with iterations = 2000 } in
  let rows =
    [
      evaluate "mps" (fun dims -> Structure.instantiate structure dims);
      evaluate "template" (fun dims -> Template_placer.instantiate template dims);
      evaluate "sa-placer" (fun dims ->
          (Sa_placer.place ~config:sa_config ~rng:sa_rng circuit ~die_w ~die_h dims)
            .Sa_placer.rects);
      evaluate "genetic" (fun dims ->
          (Genetic_placer.place ~rng:ga_rng circuit ~die_w ~die_h dims)
            .Genetic_placer.rects);
      (let sp_rng = Rng.create ~seed:5 in
       let sp_config = { Seqpair_placer.default_config with Seqpair_placer.iterations = 2000 } in
       evaluate "seq-pair" (fun dims ->
           (Seqpair_placer.place ~config:sp_config ~rng:sp_rng circuit ~die_w ~die_h dims)
             .Seqpair_placer.rects));
      (let sl_rng = Rng.create ~seed:6 in
       let sl_config = { Slicing_placer.default_config with Slicing_placer.iterations = 2000 } in
       evaluate "slicing" (fun dims ->
           (Slicing_placer.place ~config:sl_config ~rng:sl_rng circuit ~die_w ~die_h dims)
             .Slicing_placer.rects));
    ]
  in
  Format.printf "@.%d placement queries per strategy:@.@." (Array.length queries);
  print_string
    (Mps_experiments.Text_table.render
       ~headers:[ "Strategy"; "Avg cost"; "Total time"; "Time/query" ]
       ~rows:
         (List.map
            (fun (name, avg, elapsed) ->
              [
                name;
                Printf.sprintf "%.1f" avg;
                Mps_experiments.Text_table.seconds elapsed;
                Mps_experiments.Text_table.microseconds
                  (elapsed /. float_of_int (Array.length queries));
              ])
            rows))

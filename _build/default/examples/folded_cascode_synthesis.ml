(* Second-design demonstration: layout-inclusive sizing of a
   folded-cascode OTA (7 modules, symmetric), comparing the
   multi-placement structure against the fixed template inside the same
   sizing loop.

   Run with: dune exec examples/folded_cascode_synthesis.exe *)

open Mps_netlist
open Mps_core
open Mps_synthesis

let () =
  let process = Mps_modgen.Process.default in
  let circuit = Folded_cascode.circuit process in
  let die_w, die_h = Circuit.default_die circuit in
  Format.printf "Circuit: %a@." Circuit.pp circuit;

  let config =
    Mps_experiments.Experiments.generator_config Mps_experiments.Experiments.Full circuit
  in
  let structure, stats = Generator.generate ~config circuit in
  Format.printf "MPS: %d explored placements in %s CPU@."
    (Structure.n_explored structure)
    (Mps_experiments.Text_table.seconds stats.Generator.generation_seconds);

  let rng = Mps_rng.Rng.create ~seed:4 in
  let template = Mps_baselines.Template_placer.build ~rng circuit ~die_w ~die_h in

  let show name placer =
    let r = Folded_cascode.synthesize process circuit ~die_w ~die_h placer in
    Format.printf "@.%s:@.  best %a@.  %a@.  spec met: %b, placement time %s of %s@." name
      Folded_cascode.pp_sizing r.Folded_cascode.best_sizing Folded_cascode.pp_perf
      r.Folded_cascode.best_perf r.Folded_cascode.meets
      (Mps_experiments.Text_table.seconds r.Folded_cascode.placement_seconds)
      (Mps_experiments.Text_table.seconds r.Folded_cascode.total_seconds);
    r.Folded_cascode.best_cost
  in
  let mps_cost = show "multi-placement structure" (Synth_loop.mps_placer structure) in
  let tpl_cost = show "fixed template" (Synth_loop.template_placer template) in
  Format.printf "@.Best cost: mps %.2f vs template %.2f (%s)@." mps_cost tpl_cost
    (if mps_cost <= tpl_cost then "MPS wins" else "template wins")

(* Layout-inclusive synthesis of a two-stage op-amp (paper Fig. 1b).

   The sizing annealer proposes device sizes; each candidate is
   translated to block dimensions by the module generators, placed by
   the multi-placement structure in microseconds, and evaluated with
   layout-derived parasitics.

   Run with: dune exec examples/opamp_synthesis.exe *)

open Mps_netlist
open Mps_core
open Mps_synthesis

let () =
  let process = Mps_modgen.Process.default in
  let circuit = Opamp.circuit process in
  let die_w, die_h = Circuit.default_die circuit in
  Format.printf "Circuit: %a (die %dx%d)@." Circuit.pp circuit die_w die_h;

  (* One-time structure generation. *)
  let config = Mps_experiments.Experiments.generator_config Mps_experiments.Experiments.Full circuit in
  let structure, stats = Generator.generate ~config circuit in
  Format.printf "MPS generated: %d placements, coverage %.4f, %s CPU@."
    stats.Generator.placements_stored stats.Generator.coverage
    (Mps_experiments.Text_table.seconds stats.Generator.generation_seconds);

  (* The synthesis loop, placing through the structure. *)
  let placer = Synth_loop.mps_placer structure in
  let result = Synth_loop.run process circuit ~die_w ~die_h placer in
  Format.printf "@.Synthesis finished: %d sizings evaluated in %s (placement: %s)@."
    result.Synth_loop.evaluations
    (Mps_experiments.Text_table.seconds result.Synth_loop.total_seconds)
    (Mps_experiments.Text_table.seconds result.Synth_loop.placement_seconds);
  Format.printf "Best sizing: %a@." Opamp.pp_sizing result.Synth_loop.best_sizing;
  Format.printf "Performance: %a@." Opamp.pp_perf result.Synth_loop.best_perf;
  Format.printf "Meets spec (%.0f dB, %.0f MHz, %.0f V/us, %.1f mW): %b@."
    Opamp.default_spec.Opamp.min_gain_db Opamp.default_spec.Opamp.min_gbw_mhz
    Opamp.default_spec.Opamp.min_slew_v_per_us Opamp.default_spec.Opamp.max_power_mw
    result.Synth_loop.meets_spec;

  (* Show the floorplan the winning sizing gets. *)
  let dims = Opamp.dims process circuit result.Synth_loop.best_sizing in
  let rects = Structure.instantiate structure dims in
  Format.printf "@.Winning floorplan:@.%s"
    (Mps_render.Ascii.render ~max_cols:56 circuit ~die_w ~die_h rects)

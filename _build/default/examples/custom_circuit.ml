(* Bring your own circuit: build a netlist from device-level module
   generators, generate its multi-placement structure, persist it to
   disk, reload it, and render an instantiation as SVG.

   This is the workflow a downstream user follows for a topology that
   is not in the benchmark set: a folded-cascode amplifier core with a
   biasing branch and an output capacitor.

   Run with: dune exec examples/custom_circuit.exe *)

open Mps_geometry
open Mps_netlist
open Mps_modgen
open Mps_core

let circuit =
  let process = Process.default in
  let dev id name device = Module_gen.block_of_device process ~id ~name device in
  let blocks =
    [|
      dev 0 "input_pair" (Device.Mos_pair { w_um = 24.0; l_um = 0.35 });
      dev 1 "casc_nmos" (Device.Mos_pair { w_um = 16.0; l_um = 0.35 });
      dev 2 "casc_pmos" (Device.Mos_pair { w_um = 32.0; l_um = 0.35 });
      dev 3 "mirror" (Device.Mos_pair { w_um = 20.0; l_um = 0.5 });
      dev 4 "tail" (Device.Mos { w_um = 12.0; l_um = 0.7 });
      dev 5 "bias_res" (Device.Resistor { r_ohm = 20_000.0 });
      dev 6 "load_cap" (Device.Capacitor { c_ff = 900.0 });
    |]
  in
  let pin = Net.block_pin in
  let nets =
    [|
      Net.make ~id:0 ~name:"inp" ~pins:[ pin ~fx:0.1 0; Net.pad ~px:0.0 ~py:0.3 ];
      Net.make ~id:1 ~name:"inn" ~pins:[ pin ~fx:0.9 0; Net.pad ~px:0.0 ~py:0.7 ];
      Net.make ~id:2 ~name:"casc_n" ~pins:[ pin ~fy:0.9 0; pin ~fy:0.1 1 ];
      Net.make ~id:3 ~name:"casc_p" ~pins:[ pin ~fy:0.9 1; pin ~fy:0.1 2 ];
      Net.make ~id:4 ~name:"out" ~pins:[ pin ~fx:0.9 2; pin ~fx:0.1 6; Net.pad ~px:1.0 ~py:0.5 ];
      Net.make ~id:5 ~name:"mirror_in" ~pins:[ pin ~fx:0.5 2; pin ~fx:0.5 3 ];
      Net.make ~id:6 ~name:"tail_net" ~pins:[ pin ~fy:0.1 0; pin ~fy:0.9 4 ];
      Net.make ~id:7 ~name:"bias" ~pins:[ pin ~fx:0.5 5; pin ~fx:0.1 4; pin ~fx:0.1 3 ];
      Net.make ~id:8 ~name:"vss" ~pins:[ pin ~fy:0.05 4; pin ~fy:0.05 5; pin ~fy:0.05 6 ];
    |]
  in
  Circuit.make ~name:"folded-cascode (custom)" ~blocks ~nets

let () =
  Format.printf "Custom circuit: %a@." Circuit.pp circuit;
  Array.iter (fun b -> Format.printf "  %a@." Block.pp b) circuit.Circuit.blocks;

  let config =
    Mps_experiments.Experiments.generator_config Mps_experiments.Experiments.Quick circuit
  in
  let structure, stats = Generator.generate ~config circuit in
  Format.printf "@.Generated %d placements (coverage %.4f).@."
    stats.Generator.placements_stored stats.Generator.coverage;

  (* Persist and reload: generation happens once per topology. *)
  let path = Filename.temp_file "custom_circuit" ".mps" in
  Codec.save structure ~path;
  let reloaded = Codec.load ~circuit ~path in
  Format.printf "Saved to %s (%d bytes) and reloaded: %d placements.@." path
    (let st = Unix.stat path in
     st.Unix.st_size)
    (Structure.n_placements reloaded);
  Sys.remove path;

  (* Query the reloaded structure with a mid-range sizing. *)
  let dims = Dimbox.center (Circuit.dim_bounds circuit) in
  let rects, cost = Structure.instantiate_cost reloaded dims in
  let die_w, die_h = Structure.die reloaded in
  Format.printf "@.Mid-range instantiation (cost %.1f):@.%s" cost
    (Mps_render.Ascii.render ~max_cols:56 circuit ~die_w ~die_h rects);

  let svg_path = "custom_circuit.svg" in
  Mps_render.Svg.save ~path:svg_path ~title:circuit.Circuit.name circuit ~die_w ~die_h rects;
  Format.printf "Wrote %s@." svg_path

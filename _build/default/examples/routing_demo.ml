(* Routing and extraction demo: the full Fig. 1b back end.

   Place the two-stage op-amp through its multi-placement structure,
   maze-route every net around the modules, extract lumped RC
   parasitics, and compare the op-amp performance predicted from the
   HPWL estimate against the routed extraction.

   Run with: dune exec examples/routing_demo.exe *)

open Mps_netlist
open Mps_core
open Mps_route

let () =
  let process = Mps_modgen.Process.default in
  let circuit = Mps_synthesis.Opamp.circuit process in
  let die_w, die_h = Circuit.default_die circuit in

  let structure, stats = Generator.generate ~config:Generator.fast_config circuit in
  Format.printf "MPS for %s: %d explored placements (%.2fs CPU)@." circuit.Circuit.name
    (Structure.n_explored structure) stats.Generator.generation_seconds;

  let sizing = Mps_synthesis.Opamp.nominal_sizing in
  let dims = Mps_synthesis.Opamp.dims process circuit sizing in
  let rects = Structure.instantiate structure dims in

  (* Route the instantiated floorplan. *)
  let routing = Router.route circuit ~die_w ~die_h rects in
  Format.printf "@.Routing: total length %.0f grid units, %d failed nets, overflow %d@."
    routing.Router.total_length routing.Router.failed_nets routing.Router.overflow;
  Array.iter
    (fun (net : Router.routed_net) ->
      Format.printf "  %-12s %6.0f units %s@."
        circuit.Circuit.nets.(net.Router.net_id).Net.name net.Router.length
        (if net.Router.routed then "" else "(HPWL fallback)"))
    routing.Router.nets;

  (* Extraction and its effect on predicted performance. *)
  let extraction = Extraction.extract circuit routing in
  Format.printf "@.Extraction: %.0f fF / %.0f ohm total@."
    extraction.Extraction.total_capacitance_ff extraction.Extraction.total_resistance_ohm;
  let hpwl_perf = Mps_synthesis.Opamp.performance process circuit ~die_w ~die_h sizing rects in
  let routed_perf =
    Mps_synthesis.Opamp.performance_routed process circuit ~die_w ~die_h sizing rects
  in
  Format.printf "HPWL estimate:     %a@." Mps_synthesis.Opamp.pp_perf hpwl_perf;
  Format.printf "Routed extraction: %a@." Mps_synthesis.Opamp.pp_perf routed_perf;

  (* Wire overlay. *)
  let grid =
    Route_grid.create ~die_w ~die_h ~cell:Router.default_config.Router.cell
      ~capacity:Router.default_config.Router.capacity rects
  in
  let wire_points =
    Array.to_list routing.Router.nets
    |> List.concat_map (fun (net : Router.routed_net) ->
           List.map (Route_grid.center_of_cell grid) net.Router.cells)
  in
  Format.printf "@.Routed floorplan ('+' = wire):@.%s"
    (Mps_render.Ascii.render_routed ~max_cols:64 circuit ~die_w ~die_h rects ~wire_points)

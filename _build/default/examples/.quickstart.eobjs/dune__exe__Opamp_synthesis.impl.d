examples/opamp_synthesis.ml: Circuit Format Generator Mps_core Mps_experiments Mps_modgen Mps_netlist Mps_render Mps_synthesis Opamp Structure Synth_loop

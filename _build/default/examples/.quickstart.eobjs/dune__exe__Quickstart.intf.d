examples/quickstart.mli:

examples/routing_demo.ml: Array Circuit Extraction Format Generator List Mps_core Mps_modgen Mps_netlist Mps_render Mps_route Mps_synthesis Net Route_grid Router Structure

examples/quickstart.ml: Array Benchmarks Block Circuit Dimbox Format Generator Mps_core Mps_geometry Mps_netlist Printf Rect Structure

examples/opamp_synthesis.mli:

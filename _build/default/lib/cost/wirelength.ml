open Mps_geometry
open Mps_netlist

let pin_position pin ~rects ~die_w ~die_h =
  match pin with
  | Net.Block_pin { block; fx; fy } ->
    let r = rects.(block) in
    ( float_of_int r.Rect.x +. (fx *. float_of_int r.Rect.w),
      float_of_int r.Rect.y +. (fy *. float_of_int r.Rect.h) )
  | Net.Pad { px; py } -> (px *. float_of_int die_w, py *. float_of_int die_h)

let net_hpwl net ~rects ~die_w ~die_h =
  match net.Net.pins with
  | [] | [ _ ] -> 0.0
  | first :: rest ->
    let x0, y0 = pin_position first ~rects ~die_w ~die_h in
    let min_x = ref x0 and max_x = ref x0 and min_y = ref y0 and max_y = ref y0 in
    let widen pin =
      let x, y = pin_position pin ~rects ~die_w ~die_h in
      if x < !min_x then min_x := x;
      if x > !max_x then max_x := x;
      if y < !min_y then min_y := y;
      if y > !max_y then max_y := y
    in
    List.iter widen rest;
    !max_x -. !min_x +. (!max_y -. !min_y)

let total_hpwl circuit ~rects ~die_w ~die_h =
  if Array.length rects <> Circuit.n_blocks circuit then
    invalid_arg "Wirelength.total_hpwl: one rectangle per block required";
  Array.fold_left
    (fun acc net -> acc +. net_hpwl net ~rects ~die_w ~die_h)
    0.0 circuit.Circuit.nets

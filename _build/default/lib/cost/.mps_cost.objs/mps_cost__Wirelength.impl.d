lib/cost/wirelength.ml: Array Circuit List Mps_geometry Mps_netlist Net Rect

lib/cost/wirelength.mli: Circuit Mps_geometry Mps_netlist Net Rect

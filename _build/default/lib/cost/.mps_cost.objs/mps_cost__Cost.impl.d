lib/cost/cost.ml: Array Circuit List Mps_geometry Mps_netlist Rect Symmetry Wirelength

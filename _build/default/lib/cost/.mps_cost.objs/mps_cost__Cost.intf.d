lib/cost/cost.mli: Circuit Mps_geometry Mps_netlist Rect

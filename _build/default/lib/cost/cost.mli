(** The customizable placement cost function (paper §3.2.2).

    The paper's cost calculator scores "a fixed placement along with
    fixed widths and heights" by wirelength and area.  The overlap and
    out-of-bounds terms are zero for legal placements; they exist so the
    same function can drive the optimization-based baseline placers,
    which move through illegal intermediate states. *)

open Mps_geometry
open Mps_netlist

type weights = {
  wirelength : float;
  area : float;
  overlap : float;  (** Penalty per unit of pairwise overlap area. *)
  out_of_bounds : float;  (** Penalty per unit of area outside the die. *)
  symmetry : float;  (** Penalty per grid unit of symmetry misalignment. *)
}

val default_weights : weights
(** Wirelength 1.0, area 0.05 (wirelength-dominated, as in LAYLA-style
    analog placement), heavy overlap / out-of-bounds penalties,
    symmetry 0.5. *)

val symmetry_penalty : Circuit.t -> Rect.t array -> float
(** Total misalignment of the circuit's symmetry groups about their
    common vertical axis (the axis minimizing the penalty is fitted as
    the mean of the groups' individual axes): per pair, the horizontal
    mirror error plus the vertical offset; per self-symmetric block,
    its distance to the axis.  [0.] when the circuit has no symmetry
    constraints. *)

(** Itemized evaluation result. *)
type breakdown = {
  hpwl : float;
  bbox_area : int;  (** Area of the bounding box of all blocks. *)
  overlap_area : int;  (** Total pairwise overlap area. *)
  oob_area : int;  (** Total block area outside the die. *)
  symmetry_misalign : float;  (** {!symmetry_penalty} of the floorplan. *)
  total : float;  (** Weighted sum. *)
}

val evaluate :
  ?weights:weights -> Circuit.t -> die_w:int -> die_h:int -> Rect.t array -> breakdown
(** Full itemized cost of an instantiated floorplan.
    @raise Invalid_argument when [rects] does not have one rectangle per
    block. *)

val total :
  ?weights:weights -> Circuit.t -> die_w:int -> die_h:int -> Rect.t array -> float
(** [(evaluate ...).total]. *)

val is_legal : die_w:int -> die_h:int -> Rect.t array -> bool
(** No pairwise overlap and every block inside the die. *)

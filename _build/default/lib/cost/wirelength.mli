(** Half-perimeter wirelength estimation.

    Pin positions scale with the instantiated block dimensions (see
    {!Mps_netlist.Net}); external pads sit at fixed die-fraction
    coordinates. *)

open Mps_geometry
open Mps_netlist

val pin_position :
  Net.pin -> rects:Rect.t array -> die_w:int -> die_h:int -> float * float
(** Absolute coordinates of one net endpoint given the placed blocks. *)

val net_hpwl : Net.t -> rects:Rect.t array -> die_w:int -> die_h:int -> float
(** Half-perimeter of the bounding box of the net's endpoints; [0.] for
    single-endpoint nets. *)

val total_hpwl : Circuit.t -> rects:Rect.t array -> die_w:int -> die_h:int -> float
(** Sum of {!net_hpwl} over all nets.
    @raise Invalid_argument when [rects] does not have one rectangle per
    block. *)

(** Coarse routing grid over a floorplan.

    The die is divided into square cells of [cell] grid units.  Cells
    covered by a block's interior are obstacles — wires must go around
    the modules, as in channel-style analog routing — except that every
    net pin unblocks its own cell so it can be reached.  Each free cell
    has a crossing capacity used for congestion accounting. *)

open Mps_geometry

type t

val create : die_w:int -> die_h:int -> cell:int -> capacity:int -> Rect.t array -> t
(** Grid over [[0,die_w) × [0,die_h)]; cells whose center lies strictly
    inside some rectangle are blocked.
    @raise Invalid_argument when [cell <= 0], [capacity <= 0] or the die
    is not positive. *)

val cols : t -> int
val rows : t -> int

val cell_of_point : t -> x:float -> y:float -> int * int
(** Grid cell containing a die point (clamped to the grid). *)

val center_of_cell : t -> int * int -> float * float
(** Die coordinates of a cell's center. *)

val blocked : t -> int * int -> bool

val unblock : t -> int * int -> unit
(** Carve a pin access cell out of an obstacle. *)

val usage : t -> int * int -> int
(** Wires currently crossing the cell. *)

val occupy : t -> int * int -> unit
(** Record one wire crossing (allowed past capacity; see {!overflow}). *)

val capacity : t -> int

val overflow : t -> int
(** Total usage above capacity, summed over cells — the congestion
    measure. *)

val in_grid : t -> int * int -> bool

val neighbors : t -> int * int -> (int * int) list
(** The 4-connected unblocked neighbours. *)

val neighbors_all : t -> int * int -> (int * int) list
(** All 4-connected in-grid neighbours, blocked cells included (for
    over-the-block routing at a cost penalty). *)

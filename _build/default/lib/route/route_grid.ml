open Mps_geometry

type t = {
  cols : int;
  rows : int;
  cell : int;
  cap : int;
  blocked : bool array array;  (** [row].[col] *)
  used : int array array;
}

let create ~die_w ~die_h ~cell ~capacity rects =
  if cell <= 0 then invalid_arg "Route_grid.create: non-positive cell size";
  if capacity <= 0 then invalid_arg "Route_grid.create: non-positive capacity";
  if die_w <= 0 || die_h <= 0 then invalid_arg "Route_grid.create: non-positive die";
  let cols = (die_w + cell - 1) / cell in
  let rows = (die_h + cell - 1) / cell in
  let blocked = Array.make_matrix rows cols false in
  let used = Array.make_matrix rows cols 0 in
  let t = { cols; rows; cell; cap = capacity; blocked; used } in
  (* block cells whose center lies strictly inside a rectangle *)
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let cx = (float_of_int c +. 0.5) *. float_of_int cell in
      let cy = (float_of_int r +. 0.5) *. float_of_int cell in
      let inside rect =
        cx > float_of_int rect.Rect.x
        && cx < float_of_int (Rect.right rect)
        && cy > float_of_int rect.Rect.y
        && cy < float_of_int (Rect.top rect)
      in
      if Array.exists inside rects then blocked.(r).(c) <- true
    done
  done;
  t

let cols t = t.cols
let rows t = t.rows

let clamp v lo hi = if v < lo then lo else if v > hi then hi else v

let cell_of_point t ~x ~y =
  let c = clamp (int_of_float (x /. float_of_int t.cell)) 0 (t.cols - 1) in
  let r = clamp (int_of_float (y /. float_of_int t.cell)) 0 (t.rows - 1) in
  (c, r)

let center_of_cell t (c, r) =
  ( (float_of_int c +. 0.5) *. float_of_int t.cell,
    (float_of_int r +. 0.5) *. float_of_int t.cell )

let in_grid t (c, r) = c >= 0 && c < t.cols && r >= 0 && r < t.rows

let blocked t (c, r) =
  if not (in_grid t (c, r)) then invalid_arg "Route_grid.blocked: outside grid";
  t.blocked.(r).(c)

let unblock t (c, r) =
  if not (in_grid t (c, r)) then invalid_arg "Route_grid.unblock: outside grid";
  t.blocked.(r).(c) <- false

let usage t (c, r) =
  if not (in_grid t (c, r)) then invalid_arg "Route_grid.usage: outside grid";
  t.used.(r).(c)

let occupy t (c, r) =
  if not (in_grid t (c, r)) then invalid_arg "Route_grid.occupy: outside grid";
  t.used.(r).(c) <- t.used.(r).(c) + 1

let capacity t = t.cap

let overflow t =
  let acc = ref 0 in
  for r = 0 to t.rows - 1 do
    for c = 0 to t.cols - 1 do
      if t.used.(r).(c) > t.cap then acc := !acc + (t.used.(r).(c) - t.cap)
    done
  done;
  !acc

let neighbors t (c, r) =
  List.filter
    (fun (c', r') -> in_grid t (c', r') && not t.blocked.(r').(c'))
    [ (c - 1, r); (c + 1, r); (c, r - 1); (c, r + 1) ]

let neighbors_all t (c, r) =
  List.filter (in_grid t) [ (c - 1, r); (c + 1, r); (c, r - 1); (c, r + 1) ]

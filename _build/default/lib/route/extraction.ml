open Mps_netlist

type net_parasitics = {
  net_id : int;
  resistance_ohm : float;
  capacitance_ff : float;
}

type t = {
  nets : net_parasitics array;
  total_capacitance_ff : float;
  total_resistance_ohm : float;
}

type constants = {
  r_ohm_per_unit : float;
  c_ff_per_unit : float;
  c_ff_per_pin : float;
}

let default_constants = { r_ohm_per_unit = 0.35; c_ff_per_unit = 0.25; c_ff_per_pin = 1.5 }

let extract ?(constants = default_constants) circuit routing =
  let nets =
    Array.map
      (fun (net : Net.t) ->
        let length = Router.routed_length routing net.Net.id in
        let pins = float_of_int (Net.degree net) in
        {
          net_id = net.Net.id;
          resistance_ohm = constants.r_ohm_per_unit *. length;
          capacitance_ff =
            (constants.c_ff_per_unit *. length) +. (constants.c_ff_per_pin *. pins);
        })
      circuit.Circuit.nets
  in
  {
    nets;
    total_capacitance_ff = Array.fold_left (fun acc n -> acc +. n.capacitance_ff) 0.0 nets;
    total_resistance_ohm = Array.fold_left (fun acc n -> acc +. n.resistance_ohm) 0.0 nets;
  }

let net_capacitance t id =
  match Array.find_opt (fun n -> n.net_id = id) t.nets with
  | Some n -> n.capacitance_ff
  | None -> invalid_arg "Extraction.net_capacitance: unknown net"

open Mps_netlist

type config = {
  cell : int;
  capacity : int;
  congestion_penalty : int;
  over_block_penalty : int;
}

let default_config =
  { cell = 4; capacity = 4; congestion_penalty = 2; over_block_penalty = 8 }

type routed_net = {
  net_id : int;
  cells : (int * int) list;
  length : float;
  routed : bool;
}

type t = {
  nets : routed_net array;
  total_length : float;
  overflow : int;
  failed_nets : int;
}

(* Dijkstra-flavoured wave expansion from a set of sources to one
   target cell, cell cost 1 + congestion penalty.  Returns the path
   from a source to the target (inclusive), or None. *)
let wave grid config ~sources ~target =
  let cols = Route_grid.cols grid and rows = Route_grid.rows grid in
  let dist = Array.make_matrix rows cols max_int in
  let parent = Array.make_matrix rows cols None in
  (* simple bucket-less priority queue: a sorted module on (cost, cell) *)
  let module Pq = Set.Make (struct
    type t = int * (int * int)

    let compare (ca, (xa, ya)) (cb, (xb, yb)) =
      match Int.compare ca cb with
      | 0 -> ( match Int.compare xa xb with 0 -> Int.compare ya yb | c -> c)
      | c -> c
  end) in
  let pq = ref Pq.empty in
  List.iter
    (fun ((c, r) as cell) ->
      if dist.(r).(c) > 0 then begin
        dist.(r).(c) <- 0;
        pq := Pq.add (0, cell) !pq
      end)
    sources;
  let cell_cost cell =
    1
    + (config.congestion_penalty * Route_grid.usage grid cell)
    + (if Route_grid.blocked grid cell then config.over_block_penalty else 0)
  in
  let rec loop () =
    match Pq.min_elt_opt !pq with
    | None -> None
    | Some ((d, ((c, r) as cell)) as entry) ->
      pq := Pq.remove entry !pq;
      if cell = target then Some cell
      else if d > dist.(r).(c) then loop ()
      else begin
        List.iter
          (fun ((c', r') as next) ->
            let nd = d + cell_cost next in
            if nd < dist.(r').(c') then begin
              dist.(r').(c') <- nd;
              parent.(r').(c') <- Some cell;
              pq := Pq.add (nd, next) !pq
            end)
          (Route_grid.neighbors_all grid cell);
        loop ()
      end
  in
  match loop () with
  | None -> None
  | Some _ ->
    (* walk parents back to a source *)
    let rec back acc ((c, r) as cell) =
      match parent.(r).(c) with
      | None -> cell :: acc
      | Some prev -> back (cell :: acc) prev
    in
    Some (back [] target)

let route ?(config = default_config) circuit ~die_w ~die_h rects =
  if Array.length rects <> Circuit.n_blocks circuit then
    invalid_arg "Router.route: one rectangle per block required";
  let grid = Route_grid.create ~die_w ~die_h ~cell:config.cell ~capacity:config.capacity rects in
  let pin_cell pin =
    let x, y = Mps_cost.Wirelength.pin_position pin ~rects ~die_w ~die_h in
    let cell = Route_grid.cell_of_point grid ~x ~y in
    Route_grid.unblock grid cell;
    cell
  in
  (* nets with more pins first: they need the most freedom *)
  let order =
    List.sort
      (fun a b -> Int.compare (Net.degree b) (Net.degree a))
      (Array.to_list circuit.Circuit.nets)
  in
  let results = Hashtbl.create 16 in
  List.iter
    (fun net ->
      let pins = List.map pin_cell net.Net.pins in
      let pins = List.sort_uniq compare pins in
      match pins with
      | [] | [ _ ] ->
        Hashtbl.replace results net.Net.id
          { net_id = net.Net.id; cells = pins; length = 0.0; routed = true }
      | first :: rest ->
        let tree = ref [ first ] in
        let complete = ref true in
        List.iter
          (fun pin ->
            if not (List.mem pin !tree) then
              match wave grid config ~sources:!tree ~target:pin with
              | Some path ->
                List.iter
                  (fun cell -> if not (List.mem cell !tree) then tree := cell :: !tree)
                  path
              | None -> complete := false)
          rest;
        if !complete then begin
          List.iter (Route_grid.occupy grid) !tree;
          let length =
            float_of_int ((List.length !tree - 1) * config.cell)
          in
          Hashtbl.replace results net.Net.id
            { net_id = net.Net.id; cells = !tree; length; routed = true }
        end
        else begin
          (* unroutable through free cells: half-perimeter fallback *)
          let length = Mps_cost.Wirelength.net_hpwl net ~rects ~die_w ~die_h in
          Hashtbl.replace results net.Net.id
            { net_id = net.Net.id; cells = !tree; length; routed = false }
        end)
    order;
  let nets =
    Array.map
      (fun net -> Hashtbl.find results net.Net.id)
      circuit.Circuit.nets
  in
  {
    nets;
    total_length = Array.fold_left (fun acc n -> acc +. n.length) 0.0 nets;
    overflow = Route_grid.overflow grid;
    failed_nets =
      Array.fold_left (fun acc n -> if n.routed then acc else acc + 1) 0 nets;
  }

let routed_length t id =
  match Array.find_opt (fun n -> n.net_id = id) t.nets with
  | Some n -> n.length
  | None -> invalid_arg "Router.routed_length: unknown net"

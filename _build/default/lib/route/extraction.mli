(** Parasitic extraction from routed wirelength — the "Circuit
    Extraction" box of the paper's synthesis loop (Fig. 1b).

    First-order RC from per-net routed lengths: each net gets a lumped
    resistance and capacitance proportional to its length plus a fixed
    via/pin term per endpoint.  Constants model a generic 0.35 µm metal
    stack; the shape (parasitics grow with routed length, so placement
    quality degrades bandwidth) is what matters. *)

open Mps_netlist

type net_parasitics = {
  net_id : int;
  resistance_ohm : float;
  capacitance_ff : float;
}

type t = {
  nets : net_parasitics array;
  total_capacitance_ff : float;
  total_resistance_ohm : float;
}

type constants = {
  r_ohm_per_unit : float;  (** Wire resistance per layout grid unit. *)
  c_ff_per_unit : float;  (** Wire capacitance per layout grid unit. *)
  c_ff_per_pin : float;  (** Fixed contact/via capacitance per endpoint. *)
}

val default_constants : constants
(** 0.35 Ω and 0.25 fF per grid unit, 1.5 fF per endpoint. *)

val extract : ?constants:constants -> Circuit.t -> Router.t -> t
(** Lumped RC per net of a routed floorplan. *)

val net_capacitance : t -> int -> float
(** Capacitance of one net by id.
    @raise Invalid_argument on an unknown id. *)

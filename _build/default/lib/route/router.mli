(** Grid-based global router (Lee maze routing with sequential Steiner
    growth) — the "Routing" box of the paper's synthesis loop (Fig. 1b).

    Nets are routed one at a time in decreasing pin count; each net
    grows a Steiner tree by repeated breadth-first searches from the
    already-routed tree to the next pin, preferring uncongested cells.
    Pins unreachable through free cells fall back to their half-perimeter
    estimate so downstream extraction always has a length for every
    net. *)

open Mps_geometry
open Mps_netlist

type config = {
  cell : int;  (** Routing grid pitch in layout grid units. *)
  capacity : int;  (** Wire crossings per cell before congestion. *)
  congestion_penalty : int;
      (** Extra BFS cost per crossing already in a cell (makes later
          nets detour around congestion). *)
  over_block_penalty : int;
      (** Extra cost for crossing a block interior (over-the-cell
          routing on upper metal): pins deep inside modules can escape,
          but open channels are strongly preferred. *)
}

val default_config : config
(** Cell 4, capacity 4, congestion penalty 2, over-block penalty 8. *)

(** Routing result for one net. *)
type routed_net = {
  net_id : int;
  cells : (int * int) list;  (** Tree cells, without duplicates. *)
  length : float;  (** Routed wirelength in layout grid units. *)
  routed : bool;
      (** [false]: no path existed (degenerate grid) and the length fell
          back to the HPWL estimate. *)
}

type t = {
  nets : routed_net array;
  total_length : float;
  overflow : int;  (** Congestion: cell crossings above capacity. *)
  failed_nets : int;
}

val route :
  ?config:config -> Circuit.t -> die_w:int -> die_h:int -> Rect.t array -> t
(** Route every net of the instantiated floorplan.
    @raise Invalid_argument on a block-count mismatch. *)

val routed_length : t -> int -> float
(** Length of one net by id. *)

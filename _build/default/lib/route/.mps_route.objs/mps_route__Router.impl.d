lib/route/router.ml: Array Circuit Hashtbl Int List Mps_cost Mps_netlist Net Route_grid Set

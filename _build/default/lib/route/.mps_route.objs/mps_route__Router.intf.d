lib/route/router.mli: Circuit Mps_geometry Mps_netlist Rect

lib/route/route_grid.mli: Mps_geometry Rect

lib/route/route_grid.ml: Array List Mps_geometry Rect

lib/route/extraction.ml: Array Circuit Mps_netlist Net Router

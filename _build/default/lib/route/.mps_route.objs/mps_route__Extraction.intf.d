lib/route/extraction.mli: Circuit Mps_netlist Router

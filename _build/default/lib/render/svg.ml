open Mps_geometry
open Mps_netlist

let fill_color i =
  (* deterministic pastel palette: rotate hue by the golden angle *)
  let hue = float_of_int (i * 137) in
  let h = Float.rem hue 360.0 /. 60.0 in
  let c = 0.35 and m = 0.60 in
  let x = c *. (1.0 -. abs_float (Float.rem h 2.0 -. 1.0)) in
  let r, g, b =
    if h < 1.0 then (c, x, 0.0)
    else if h < 2.0 then (x, c, 0.0)
    else if h < 3.0 then (0.0, c, x)
    else if h < 4.0 then (0.0, x, c)
    else if h < 5.0 then (x, 0.0, c)
    else (c, 0.0, x)
  in
  let byte v = int_of_float ((v +. m) *. 255.0) in
  Printf.sprintf "#%02x%02x%02x" (byte r) (byte g) (byte b)

let render ?(px_per_unit = 4.0) ?(title = "floorplan") circuit ~die_w ~die_h rects =
  if Array.length rects <> Circuit.n_blocks circuit then
    invalid_arg "Svg.render: one rectangle per block required";
  let px v = float_of_int v *. px_per_unit in
  let width = px die_w and height = px die_h in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" \
        viewBox=\"0 0 %.0f %.0f\">\n"
       width height width height);
  Buffer.add_string buf (Printf.sprintf "<title>%s</title>\n" title);
  Buffer.add_string buf
    (Printf.sprintf
       "<rect x=\"0\" y=\"0\" width=\"%.0f\" height=\"%.0f\" fill=\"white\" \
        stroke=\"black\" stroke-width=\"2\"/>\n"
       width height);
  Array.iteri
    (fun i r ->
      (* flip y: SVG y grows downward *)
      let x = px r.Rect.x and y = height -. px (Rect.top r) in
      let w = px r.Rect.w and h = px r.Rect.h in
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"%s\" \
            stroke=\"#333\" stroke-width=\"1\"/>\n"
           x y w h (fill_color i));
      let font = Float.max 8.0 (Float.min (h /. 2.5) 14.0) in
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%.1f\" y=\"%.1f\" font-size=\"%.1f\" font-family=\"monospace\" \
            fill=\"#111\">%s</text>\n"
           (x +. 3.0)
           (y +. font +. 2.0)
           font
           (Circuit.block circuit i).Block.name))
    rects;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let save ?px_per_unit ?title ~path circuit ~die_w ~die_h rects =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?px_per_unit ?title circuit ~die_w ~die_h rects))

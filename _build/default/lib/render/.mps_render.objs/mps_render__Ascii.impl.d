lib/render/ascii.ml: Array Block Buffer Char Circuit Float List Mps_geometry Mps_netlist Printf Rect String

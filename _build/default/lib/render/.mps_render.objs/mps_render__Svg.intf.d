lib/render/svg.mli: Circuit Mps_geometry Mps_netlist Rect

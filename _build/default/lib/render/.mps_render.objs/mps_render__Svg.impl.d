lib/render/svg.ml: Array Block Buffer Circuit Float Fun Mps_geometry Mps_netlist Printf Rect

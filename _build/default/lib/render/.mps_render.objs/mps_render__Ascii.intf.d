lib/render/ascii.mli: Circuit Mps_geometry Mps_netlist Rect

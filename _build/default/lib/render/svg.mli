(** SVG rendering of floorplans, for viewing the Fig. 5 / Fig. 7
    reproductions in a browser. *)

open Mps_geometry
open Mps_netlist

val render :
  ?px_per_unit:float -> ?title:string -> Circuit.t -> die_w:int -> die_h:int ->
  Rect.t array -> string
(** Standalone SVG document: die outline, one labelled rectangle per
    block (deterministic pastel fill per index), y axis pointing up. *)

val save :
  ?px_per_unit:float -> ?title:string -> path:string -> Circuit.t -> die_w:int ->
  die_h:int -> Rect.t array -> unit
(** Write {!render} output to a file. *)

(** Text rendering of floorplans (the medium for Figs. 5 and 7 here). *)

open Mps_geometry
open Mps_netlist

val render :
  ?max_cols:int -> Circuit.t -> die_w:int -> die_h:int -> Rect.t array -> string
(** Character grid of the die, scaled down to at most [max_cols]
    columns (default 64).  Block [i] is drawn with the [i]-th letter
    (a, b, c, ... then A, B, ...); empty die area is ['.'].  When two
    scaled blocks land on the same cell the lower-indexed block wins
    (only possible through scaling, not overlap).  A legend line per
    block follows the grid. *)

val legend_char : int -> char
(** Drawing character for block [i]. *)

val render_routed :
  ?max_cols:int ->
  Circuit.t ->
  die_w:int -> die_h:int ->
  Rect.t array ->
  wire_points:(float * float) list ->
  string
(** Like {!render}, with routed wire points (die coordinates, e.g. the
    centers of a router's tree cells) overlaid as ['+'] on empty die
    area; wires never overwrite block cells. *)

open Mps_geometry
open Mps_netlist

let legend_char i =
  if i < 26 then Char.chr (Char.code 'a' + i)
  else if i < 52 then Char.chr (Char.code 'A' + i - 26)
  else Char.chr (Char.code '0' + (i mod 10))

let render_grid ?(max_cols = 64) circuit ~die_w ~die_h rects ~wire_points =
  if Array.length rects <> Circuit.n_blocks circuit then
    invalid_arg "Ascii.render: one rectangle per block required";
  let scale = Float.max 1.0 (float_of_int die_w /. float_of_int max_cols) in
  let cols = int_of_float (ceil (float_of_int die_w /. scale)) in
  let rows = int_of_float (ceil (float_of_int die_h /. scale)) in
  let grid = Array.make_matrix rows cols '.' in
  let to_col x = min (cols - 1) (int_of_float (float_of_int x /. scale)) in
  let to_row y = min (rows - 1) (int_of_float (float_of_int y /. scale)) in
  (* Draw higher indices first so lower indices win collisions. *)
  for i = Array.length rects - 1 downto 0 do
    let r = rects.(i) in
    let c0 = to_col r.Rect.x and c1 = to_col (Rect.right r - 1) in
    let r0 = to_row r.Rect.y and r1 = to_row (Rect.top r - 1) in
    for row = r0 to r1 do
      for col = c0 to c1 do
        if row >= 0 && row < rows && col >= 0 && col < cols then
          grid.(row).(col) <- legend_char i
      done
    done
  done;
  List.iter
    (fun (x, y) ->
      let col = min (cols - 1) (max 0 (int_of_float (x /. scale))) in
      let row = min (rows - 1) (max 0 (int_of_float (y /. scale))) in
      if grid.(row).(col) = '.' then grid.(row).(col) <- '+')
    wire_points;
  let buf = Buffer.create ((rows + Array.length rects) * (cols + 1)) in
  (* y grows upward: print top row first *)
  for row = rows - 1 downto 0 do
    Buffer.add_string buf (String.init cols (fun col -> grid.(row).(col)));
    Buffer.add_char buf '\n'
  done;
  Array.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf "%c = %-14s %dx%d at (%d,%d)\n" (legend_char i)
           (Circuit.block circuit i).Block.name r.Rect.w r.Rect.h r.Rect.x r.Rect.y))
    rects;
  Buffer.contents buf

let render ?max_cols circuit ~die_w ~die_h rects =
  render_grid ?max_cols circuit ~die_w ~die_h rects ~wire_points:[]

let render_routed ?max_cols circuit ~die_w ~die_h rects ~wire_points =
  render_grid ?max_cols circuit ~die_w ~die_h rects ~wire_points

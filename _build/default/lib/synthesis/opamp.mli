(** Behavioural two-stage op-amp model: the circuit-simulation substitute
    of the synthesis loop (paper Fig. 1b; DESIGN.md §3).

    Device sizes map to module dimensions through {!Mps_modgen}, and
    layout quality feeds back into performance through wirelength-derived
    parasitic capacitance — so the sizing optimizer genuinely prefers
    sizings whose placements are good, as in layout-inclusive synthesis.
    First-order square-law formulas; absolute numbers are indicative,
    monotonic trends are what matters. *)

open Mps_geometry
open Mps_netlist
open Mps_modgen

(** Device sizes the synthesis loop optimizes. *)
type sizing = {
  w1_um : float;  (** Input differential pair width. *)
  w3_um : float;  (** Mirror load width. *)
  w5_um : float;  (** Tail current source width. *)
  w6_um : float;  (** Second-stage driver width. *)
  cc_ff : float;  (** Compensation capacitor. *)
}

val sizing_lo : sizing
val sizing_hi : sizing
(** Componentwise search-space bounds. *)

val nominal_sizing : sizing
(** Geometric mean of the bounds. *)

val clamp_sizing : sizing -> sizing

val devices : sizing -> Device.t array
(** The five devices in block order: diff pair, mirror load, tail,
    driver, compensation cap. *)

val circuit : Process.t -> Circuit.t
(** The two-stage op-amp netlist (Table 1 structure) with block
    dimension bounds derived from the module generators over the whole
    sizing range — the circuit the multi-placement structure is
    generated for. *)

val dims : ?aspect_hints:float array -> Process.t -> Circuit.t -> sizing -> Dims.t
(** Realize every device near the given aspect ratios (default all 1.0:
    near-square) and clamp into the circuit's designer bounds — the
    "translate the proposed device sizes into widths and heights" step.
    Aspect hints select among the module generators' folding options, so
    a sizing optimizer can trade block shapes as well as device sizes.
    @raise Invalid_argument when [aspect_hints] has the wrong length. *)

(** Performance estimate. *)
type perf = {
  gain_db : float;
  gbw_mhz : float;
  slew_v_per_us : float;
  power_mw : float;
  wire_cap_ff : float;  (** Parasitic load (from HPWL or routed extraction). *)
  area : int;  (** Bounding-box area of the floorplan, grid units. *)
}

val performance :
  Process.t -> Circuit.t -> die_w:int -> die_h:int -> sizing -> Rect.t array -> perf
(** Evaluate the sized op-amp on a concrete floorplan, with parasitics
    estimated from total HPWL. *)

val performance_routed :
  Process.t -> Circuit.t -> die_w:int -> die_h:int -> sizing -> Rect.t array -> perf
(** Same, but the floorplan is globally routed ({!Mps_route.Router})
    and the parasitic load extracted from the signal-path nets' routed
    RC ({!Mps_route.Extraction}) — the full Routing + Circuit
    Extraction flow of the paper's Fig. 1b.  Slower and more
    pessimistic than {!performance}. *)

(** Target specification. *)
type spec = {
  min_gain_db : float;
  min_gbw_mhz : float;
  min_slew_v_per_us : float;
  max_power_mw : float;
}

val default_spec : spec
(** 60 dB, 5 MHz, 2 V/µs, 2 mW. *)

val meets_spec : spec -> perf -> bool

val spec_cost : spec -> perf -> float
(** Smaller is better: heavy relative penalties for violated specs plus
    mild power and area minimization once met. *)

val pp_perf : Format.formatter -> perf -> unit
val pp_sizing : Format.formatter -> sizing -> unit

(** A second synthesizable design: a single-stage folded-cascode OTA.

    Demonstrates that the multi-placement flow generalizes beyond the
    two-stage op-amp: its own netlist (7 modules with symmetry), sizing
    space, first-order performance model and layout-inclusive sizing
    loop.  Single-stage behaviour contrasts with {!Opamp}: no
    compensation capacitor — the load capacitor plus wire parasitics set
    both bandwidth and slew rate, so layout quality bites directly. *)

open Mps_geometry
open Mps_netlist
open Mps_modgen

type sizing = {
  w_in_um : float;  (** Input pair width. *)
  w_casc_um : float;  (** Cascode device width (both polarities). *)
  w_mirror_um : float;  (** Output mirror width. *)
  w_tail_um : float;  (** Tail source width. *)
  cl_ff : float;  (** Explicit load capacitor. *)
}

val sizing_lo : sizing
val sizing_hi : sizing
val nominal_sizing : sizing
val clamp_sizing : sizing -> sizing

val devices : sizing -> Device.t array
(** Seven devices in block order: input pair, NMOS cascode pair, PMOS
    cascode pair, mirror, tail, bias resistor, load cap. *)

val circuit : Process.t -> Circuit.t
(** 7 blocks, 10 nets, symmetric input pair and cascode pairs; block
    bounds from the module generators over the sizing range. *)

val dims : ?aspect_hints:float array -> Process.t -> Circuit.t -> sizing -> Dims.t

type perf = {
  gain_db : float;
  gbw_mhz : float;
  slew_v_per_us : float;
  power_mw : float;
  wire_cap_ff : float;
  area : int;
}

val performance :
  Process.t -> Circuit.t -> die_w:int -> die_h:int -> sizing -> Rect.t array -> perf

type spec = {
  min_gain_db : float;
  min_gbw_mhz : float;
  min_slew_v_per_us : float;
  max_power_mw : float;
}

val default_spec : spec
(** 70 dB, 20 MHz, 10 V/µs, 1.5 mW. *)

val meets_spec : spec -> perf -> bool
val spec_cost : spec -> perf -> float

type result = {
  best_sizing : sizing;
  best_perf : perf;
  best_cost : float;
  meets : bool;
  evaluations : int;
  placement_seconds : float;
  total_seconds : float;
}

val synthesize :
  ?seed:int ->
  ?iterations:int ->
  ?spec:spec ->
  Process.t -> Circuit.t -> die_w:int -> die_h:int -> Synth_loop.placer -> result
(** Layout-inclusive sizing with any placement instantiator (default
    120 candidates, seed 7). *)

val pp_perf : Format.formatter -> perf -> unit
val pp_sizing : Format.formatter -> sizing -> unit

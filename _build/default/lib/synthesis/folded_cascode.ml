open Mps_rng
open Mps_geometry
open Mps_netlist
open Mps_modgen
open Mps_anneal

type sizing = {
  w_in_um : float;
  w_casc_um : float;
  w_mirror_um : float;
  w_tail_um : float;
  cl_ff : float;
}

let sizing_lo =
  { w_in_um = 6.0; w_casc_um = 4.0; w_mirror_um = 4.0; w_tail_um = 3.0; cl_ff = 200.0 }

let sizing_hi =
  { w_in_um = 80.0; w_casc_um = 60.0; w_mirror_um = 50.0; w_tail_um = 50.0; cl_ff = 4000.0 }

let nominal_sizing =
  let g lo hi = sqrt (lo *. hi) in
  {
    w_in_um = g sizing_lo.w_in_um sizing_hi.w_in_um;
    w_casc_um = g sizing_lo.w_casc_um sizing_hi.w_casc_um;
    w_mirror_um = g sizing_lo.w_mirror_um sizing_hi.w_mirror_um;
    w_tail_um = g sizing_lo.w_tail_um sizing_hi.w_tail_um;
    cl_ff = g sizing_lo.cl_ff sizing_hi.cl_ff;
  }

let clamp_sizing s =
  let c v lo hi = Float.max lo (Float.min hi v) in
  {
    w_in_um = c s.w_in_um sizing_lo.w_in_um sizing_hi.w_in_um;
    w_casc_um = c s.w_casc_um sizing_lo.w_casc_um sizing_hi.w_casc_um;
    w_mirror_um = c s.w_mirror_um sizing_lo.w_mirror_um sizing_hi.w_mirror_um;
    w_tail_um = c s.w_tail_um sizing_lo.w_tail_um sizing_hi.w_tail_um;
    cl_ff = c s.cl_ff sizing_lo.cl_ff sizing_hi.cl_ff;
  }

let gate_length_um = 0.35

let devices s =
  [|
    Device.Mos_pair { w_um = s.w_in_um; l_um = gate_length_um };
    Device.Mos_pair { w_um = s.w_casc_um; l_um = gate_length_um };
    Device.Mos_pair { w_um = s.w_casc_um; l_um = gate_length_um };
    Device.Mos_pair { w_um = s.w_mirror_um; l_um = 0.5 };
    Device.Mos { w_um = s.w_tail_um; l_um = 0.7 };
    Device.Resistor { r_ohm = 15_000.0 };
    Device.Capacitor { c_ff = s.cl_ff };
  |]

let geo lo hi f = lo *. ((hi /. lo) ** f)

let circuit process =
  ignore process;
  let block id name device_at =
    let steps = 16 in
    let hull (wa, ha) (wb, hb) = (Interval.hull wa wb, Interval.hull ha hb) in
    let bound_at k =
      let f = float_of_int k /. float_of_int (steps - 1) in
      Module_gen.bounds Process.default (device_at f)
    in
    let rec loop k acc = if k >= steps then acc else loop (k + 1) (hull acc (bound_at k)) in
    let w_bounds, h_bounds = loop 1 (bound_at 0) in
    Block.make ~id ~name ~w_bounds ~h_bounds
  in
  let blocks =
    [|
      block 0 "in_pair" (fun f ->
          Device.Mos_pair { w_um = geo sizing_lo.w_in_um sizing_hi.w_in_um f; l_um = gate_length_um });
      block 1 "casc_n" (fun f ->
          Device.Mos_pair { w_um = geo sizing_lo.w_casc_um sizing_hi.w_casc_um f; l_um = gate_length_um });
      block 2 "casc_p" (fun f ->
          Device.Mos_pair { w_um = geo sizing_lo.w_casc_um sizing_hi.w_casc_um f; l_um = gate_length_um });
      block 3 "mirror" (fun f ->
          Device.Mos_pair { w_um = geo sizing_lo.w_mirror_um sizing_hi.w_mirror_um f; l_um = 0.5 });
      block 4 "tail" (fun f ->
          Device.Mos { w_um = geo sizing_lo.w_tail_um sizing_hi.w_tail_um f; l_um = 0.7 });
      block 5 "bias_res" (fun _ -> Device.Resistor { r_ohm = 15_000.0 });
      block 6 "load_cap" (fun f ->
          Device.Capacitor { c_ff = geo sizing_lo.cl_ff sizing_hi.cl_ff f });
    |]
  in
  let pin = Net.block_pin in
  let nets =
    [|
      Net.make ~id:0 ~name:"inp" ~pins:[ pin ~fx:0.1 0; Net.pad ~px:0.0 ~py:0.35 ];
      Net.make ~id:1 ~name:"inn" ~pins:[ pin ~fx:0.9 0; Net.pad ~px:0.0 ~py:0.65 ];
      Net.make ~id:2 ~name:"fold_l" ~pins:[ pin ~fx:0.2 ~fy:0.9 0; pin ~fx:0.2 ~fy:0.1 1 ];
      Net.make ~id:3 ~name:"fold_r" ~pins:[ pin ~fx:0.8 ~fy:0.9 0; pin ~fx:0.8 ~fy:0.1 1 ];
      Net.make ~id:4 ~name:"casc_mid_l" ~pins:[ pin ~fx:0.2 ~fy:0.9 1; pin ~fx:0.2 ~fy:0.1 2 ];
      Net.make ~id:5 ~name:"casc_mid_r" ~pins:[ pin ~fx:0.8 ~fy:0.9 1; pin ~fx:0.8 ~fy:0.1 2 ];
      Net.make ~id:6 ~name:"out"
        ~pins:[ pin ~fx:0.9 2; pin ~fx:0.9 3; pin ~fx:0.1 6; Net.pad ~px:1.0 ~py:0.5 ];
      Net.make ~id:7 ~name:"mirror_gate" ~pins:[ pin ~fx:0.1 2; pin ~fx:0.1 3 ];
      Net.make ~id:8 ~name:"tail_net" ~pins:[ pin ~fx:0.25 ~fy:0.1 0; pin ~fx:0.75 ~fy:0.1 0; pin ~fy:0.9 4 ];
      Net.make ~id:9 ~name:"bias" ~pins:[ pin ~fx:0.5 5; pin ~fx:0.1 4; pin ~fy:0.05 1 ];
    |]
  in
  Circuit.with_symmetry
    (Circuit.make ~name:"Folded Cascode OTA" ~blocks ~nets)
    [ Symmetry.Self 0; Symmetry.Self 1; Symmetry.Self 2; Symmetry.Self 3 ]

let dims ?(aspect_hints = Array.make 7 1.0) process circ s =
  let raw = Module_gen.dims_of_devices process (devices (clamp_sizing s)) ~aspect_hints in
  Dimbox.clamp (Circuit.dim_bounds circ) raw

type perf = {
  gain_db : float;
  gbw_mhz : float;
  slew_v_per_us : float;
  power_mw : float;
  wire_cap_ff : float;
  area : int;
}

let k_ua_per_v2 = 100.0
let lambda_per_v = 0.08
let vdd = 3.3
let wire_cap_ff_per_grid = 0.25
let fixed_load_ff = 30.0

let performance process circ ~die_w ~die_h s rects =
  ignore process;
  let s = clamp_sizing s in
  let hpwl = Mps_cost.Wirelength.total_hpwl circ ~rects ~die_w ~die_h in
  let wire_cap_ff = (wire_cap_ff_per_grid *. hpwl) +. fixed_load_ff in
  let i_tail_ua = 5.0 *. s.w_tail_um in
  let gm_in = sqrt (2.0 *. k_ua_per_v2 *. (s.w_in_um /. gate_length_um) *. (i_tail_ua /. 2.0)) in
  let gm_casc = sqrt (2.0 *. k_ua_per_v2 *. (s.w_casc_um /. gate_length_um) *. (i_tail_ua /. 2.0)) in
  (* cascode output resistance boosts single-stage gain: A ≈ gm_in *
     (gm_casc * ro²) with ro ∝ 1/(λI) *)
  let ro = 1.0 /. (lambda_per_v *. (i_tail_ua /. 2.0)) in
  let gain = gm_in *. gm_casc *. ro *. ro /. 2.0 in
  let gain_db = 20.0 *. log10 (Float.max 1.0 gain) in
  let c_total_ff = s.cl_ff +. wire_cap_ff in
  let gbw_mhz = gm_in /. c_total_ff /. (2.0 *. Float.pi) *. 1000.0 in
  let slew_v_per_us = i_tail_ua /. c_total_ff *. 1000.0 in
  let power_mw = 2.0 *. i_tail_ua *. vdd /. 1000.0 in
  let area =
    match Rect.bounding_box (Array.to_list rects) with
    | Some bb -> Rect.area bb
    | None -> 0
  in
  { gain_db; gbw_mhz; slew_v_per_us; power_mw; wire_cap_ff; area }

type spec = {
  min_gain_db : float;
  min_gbw_mhz : float;
  min_slew_v_per_us : float;
  max_power_mw : float;
}

let default_spec =
  { min_gain_db = 70.0; min_gbw_mhz = 20.0; min_slew_v_per_us = 10.0; max_power_mw = 1.5 }

let meets_spec spec perf =
  perf.gain_db >= spec.min_gain_db
  && perf.gbw_mhz >= spec.min_gbw_mhz
  && perf.slew_v_per_us >= spec.min_slew_v_per_us
  && perf.power_mw <= spec.max_power_mw

let spec_cost spec perf =
  let shortfall actual target = Float.max 0.0 ((target -. actual) /. target) in
  let excess actual limit = Float.max 0.0 ((actual -. limit) /. limit) in
  let violations =
    shortfall perf.gain_db spec.min_gain_db
    +. shortfall perf.gbw_mhz spec.min_gbw_mhz
    +. shortfall perf.slew_v_per_us spec.min_slew_v_per_us
    +. excess perf.power_mw spec.max_power_mw
  in
  (100.0 *. violations) +. perf.power_mw +. (1e-5 *. float_of_int perf.area)
  +. (0.01 *. perf.wire_cap_ff)

type result = {
  best_sizing : sizing;
  best_perf : perf;
  best_cost : float;
  meets : bool;
  evaluations : int;
  placement_seconds : float;
  total_seconds : float;
}

let perturb rng s =
  let bump v = v *. exp (Rng.float_in rng (-0.35) 0.35) in
  let s' =
    match Rng.int rng 5 with
    | 0 -> { s with w_in_um = bump s.w_in_um }
    | 1 -> { s with w_casc_um = bump s.w_casc_um }
    | 2 -> { s with w_mirror_um = bump s.w_mirror_um }
    | 3 -> { s with w_tail_um = bump s.w_tail_um }
    | _ -> { s with cl_ff = bump s.cl_ff }
  in
  clamp_sizing s'

let synthesize ?(seed = 7) ?(iterations = 120) ?(spec = default_spec) process circ ~die_w
    ~die_h (placer : Synth_loop.placer) =
  let t0 = Unix.gettimeofday () in
  let rng = Rng.create ~seed in
  let placement_seconds = ref 0.0 in
  let best = ref None in
  let cost s =
    let d = dims process circ s in
    let tp = Unix.gettimeofday () in
    let rects = placer.Synth_loop.place d in
    placement_seconds := !placement_seconds +. (Unix.gettimeofday () -. tp);
    let perf = performance process circ ~die_w ~die_h s rects in
    let c = spec_cost spec perf in
    (match !best with
    | Some (bc, _) when bc <= c -> ()
    | _ -> best := Some (c, perf));
    c
  in
  let sa =
    Annealer.run ~rng
      ~schedule:(Schedule.geometric ~t0:50.0 ~alpha:0.96 ~t_min:1e-3 ())
      ~iterations
      { Annealer.initial = nominal_sizing; cost; neighbor = (fun rng s -> perturb rng s) }
  in
  let best_cost, best_perf = match !best with Some v -> v | None -> assert false in
  {
    best_sizing = sa.Annealer.best;
    best_perf;
    best_cost;
    meets = meets_spec spec best_perf;
    evaluations = sa.Annealer.evaluations;
    placement_seconds = !placement_seconds;
    total_seconds = Unix.gettimeofday () -. t0;
  }

let pp_perf fmt p =
  Format.fprintf fmt "gain %.1f dB, GBW %.2f MHz, SR %.2f V/us, %.2f mW, Cwire %.0f fF, area %d"
    p.gain_db p.gbw_mhz p.slew_v_per_us p.power_mw p.wire_cap_ff p.area

let pp_sizing fmt s =
  Format.fprintf fmt "Win %.1fu Wcasc %.1fu Wmir %.1fu Wtail %.1fu CL %.0f fF" s.w_in_um
    s.w_casc_um s.w_mirror_um s.w_tail_um s.cl_ff

lib/synthesis/opamp.mli: Circuit Device Dims Format Mps_geometry Mps_modgen Mps_netlist Process Rect

lib/synthesis/opamp.ml: Array Benchmarks Block Circuit Device Dimbox Float Format Interval List Module_gen Mps_cost Mps_geometry Mps_modgen Mps_netlist Mps_route Process Rect Symmetry

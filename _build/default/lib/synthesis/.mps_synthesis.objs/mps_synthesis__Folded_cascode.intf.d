lib/synthesis/folded_cascode.mli: Circuit Device Dims Format Mps_geometry Mps_modgen Mps_netlist Process Rect Synth_loop

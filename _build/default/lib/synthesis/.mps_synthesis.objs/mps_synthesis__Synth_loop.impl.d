lib/synthesis/synth_loop.ml: Annealer Array Dims Float List Mps_anneal Mps_baselines Mps_core Mps_geometry Mps_netlist Mps_rng Opamp Rect Rng Schedule Unix

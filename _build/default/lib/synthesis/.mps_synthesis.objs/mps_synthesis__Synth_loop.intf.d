lib/synthesis/synth_loop.mli: Circuit Dims Mps_anneal Mps_baselines Mps_core Mps_geometry Mps_modgen Mps_netlist Opamp Process Rect

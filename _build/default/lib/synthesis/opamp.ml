open Mps_geometry
open Mps_netlist
open Mps_modgen

type sizing = {
  w1_um : float;
  w3_um : float;
  w5_um : float;
  w6_um : float;
  cc_ff : float;
}

let sizing_lo = { w1_um = 4.0; w3_um = 4.0; w5_um = 2.0; w6_um = 8.0; cc_ff = 100.0 }
let sizing_hi = { w1_um = 60.0; w3_um = 50.0; w5_um = 40.0; w6_um = 80.0; cc_ff = 2000.0 }

let nominal_sizing =
  let g lo hi = sqrt (lo *. hi) in
  {
    w1_um = g sizing_lo.w1_um sizing_hi.w1_um;
    w3_um = g sizing_lo.w3_um sizing_hi.w3_um;
    w5_um = g sizing_lo.w5_um sizing_hi.w5_um;
    w6_um = g sizing_lo.w6_um sizing_hi.w6_um;
    cc_ff = g sizing_lo.cc_ff sizing_hi.cc_ff;
  }

let clamp_sizing s =
  let c v lo hi = Float.max lo (Float.min hi v) in
  {
    w1_um = c s.w1_um sizing_lo.w1_um sizing_hi.w1_um;
    w3_um = c s.w3_um sizing_lo.w3_um sizing_hi.w3_um;
    w5_um = c s.w5_um sizing_lo.w5_um sizing_hi.w5_um;
    w6_um = c s.w6_um sizing_lo.w6_um sizing_hi.w6_um;
    cc_ff = c s.cc_ff sizing_lo.cc_ff sizing_hi.cc_ff;
  }

let gate_length_um = 0.35

let devices s =
  [|
    Device.Mos_pair { w_um = s.w1_um; l_um = gate_length_um };
    Device.Mos_pair { w_um = s.w3_um; l_um = gate_length_um };
    Device.Mos { w_um = s.w5_um; l_um = gate_length_um };
    Device.Mos { w_um = s.w6_um; l_um = gate_length_um };
    Device.Capacitor { c_ff = s.cc_ff };
  |]

(* Dimension bounds per block: hull of the module generator's bounds
   over a sweep of the sizing range (16 geometric steps per knob). *)
let swept_bounds device_at =
  let steps = 16 in
  let hull (wa, ha) (wb, hb) = (Interval.hull wa wb, Interval.hull ha hb) in
  let bound_at k =
    let f = float_of_int k /. float_of_int (steps - 1) in
    Module_gen.bounds Process.default (device_at f)
  in
  let rec loop k acc = if k >= steps then acc else loop (k + 1) (hull acc (bound_at k)) in
  loop 1 (bound_at 0)

let geo lo hi f = lo *. ((hi /. lo) ** f)

let circuit process =
  ignore process;
  let block id name device_at =
    let w_bounds, h_bounds = swept_bounds device_at in
    Block.make ~id ~name ~w_bounds ~h_bounds
  in
  let blocks =
    [|
      block 0 "diff_pair" (fun f ->
          Device.Mos_pair { w_um = geo sizing_lo.w1_um sizing_hi.w1_um f; l_um = gate_length_um });
      block 1 "mirror_load" (fun f ->
          Device.Mos_pair { w_um = geo sizing_lo.w3_um sizing_hi.w3_um f; l_um = gate_length_um });
      block 2 "tail_src" (fun f ->
          Device.Mos { w_um = geo sizing_lo.w5_um sizing_hi.w5_um f; l_um = gate_length_um });
      block 3 "driver" (fun f ->
          Device.Mos { w_um = geo sizing_lo.w6_um sizing_hi.w6_um f; l_um = gate_length_um });
      block 4 "comp_cap" (fun f ->
          Device.Capacitor { c_ff = geo sizing_lo.cc_ff sizing_hi.cc_ff f });
    |]
  in
  (* Same connectivity as the Table 1 benchmark entry. *)
  let nets = Benchmarks.two_stage_opamp.Circuit.nets in
  Circuit.with_symmetry
    (Circuit.make ~name:"TwoStage Opamp (synth)" ~blocks ~nets)
    [ Symmetry.Self 0; Symmetry.Self 1 ]

let dims ?(aspect_hints = [| 1.0; 1.0; 1.0; 1.0; 1.0 |]) process circ s =
  let raw =
    Module_gen.dims_of_devices process (devices (clamp_sizing s)) ~aspect_hints
  in
  Dimbox.clamp (Circuit.dim_bounds circ) raw

type perf = {
  gain_db : float;
  gbw_mhz : float;
  slew_v_per_us : float;
  power_mw : float;
  wire_cap_ff : float;
  area : int;
}

(* First-order square-law constants (generic 0.35 µm, Vdd 3.3 V). *)
let k_ua_per_v2 = 100.0
let lambda_per_v = 0.1
let vdd = 3.3
let wire_cap_ff_per_grid = 0.25
let fixed_load_ff = 50.0

(* Core model: everything downstream of the parasitic wire load. *)
let performance_of_wire_cap s ~wire_cap_ff ~area =
  let s = clamp_sizing s in
  (* Currents: tail sets the first stage, driver width the second. *)
  let i5_ua = 4.0 *. s.w5_um in
  let i6_ua = 3.0 *. s.w6_um in
  let gm1_ua_v = sqrt (2.0 *. k_ua_per_v2 *. (s.w1_um /. gate_length_um) *. (i5_ua /. 2.0)) in
  let gm6_ua_v = sqrt (2.0 *. k_ua_per_v2 *. (s.w6_um /. gate_length_um) *. i6_ua) in
  let av1 = gm1_ua_v /. (lambda_per_v *. i5_ua) in
  let av2 = gm6_ua_v /. (lambda_per_v *. i6_ua) in
  let gain_db = 20.0 *. log10 (Float.max 1.0 (av1 *. av2)) in
  let c_total_ff = s.cc_ff +. wire_cap_ff in
  (* gm [µA/V] / C [fF]: µA/V/fF = 1e9 rad/s -> MHz after /2π *. 1e3 *)
  let gbw_mhz = gm1_ua_v /. c_total_ff /. (2.0 *. Float.pi) *. 1000.0 in
  let slew_v_per_us = i5_ua /. c_total_ff *. 1000.0 in
  let power_mw = (i5_ua +. i6_ua) *. vdd /. 1000.0 in
  { gain_db; gbw_mhz; slew_v_per_us; power_mw; wire_cap_ff; area }

let floorplan_area rects =
  match Rect.bounding_box (Array.to_list rects) with
  | Some bb -> Rect.area bb
  | None -> 0

let performance process circ ~die_w ~die_h s rects =
  ignore process;
  let hpwl = Mps_cost.Wirelength.total_hpwl circ ~rects ~die_w ~die_h in
  let wire_cap_ff = (wire_cap_ff_per_grid *. hpwl) +. fixed_load_ff in
  performance_of_wire_cap s ~wire_cap_ff ~area:(floorplan_area rects)

(* Signal-path nets of the two-stage topology: the first-stage output
   driving the compensation cap ("out1", id 2) and the amplifier output
   ("out", id 3). *)
let signal_net_ids = [ 2; 3 ]

let performance_routed process circ ~die_w ~die_h s rects =
  ignore process;
  let routing = Mps_route.Router.route circ ~die_w ~die_h rects in
  let extraction = Mps_route.Extraction.extract circ routing in
  let wire_cap_ff =
    List.fold_left
      (fun acc id -> acc +. Mps_route.Extraction.net_capacitance extraction id)
      fixed_load_ff signal_net_ids
  in
  performance_of_wire_cap s ~wire_cap_ff ~area:(floorplan_area rects)

type spec = {
  min_gain_db : float;
  min_gbw_mhz : float;
  min_slew_v_per_us : float;
  max_power_mw : float;
}

let default_spec =
  { min_gain_db = 60.0; min_gbw_mhz = 5.0; min_slew_v_per_us = 2.0; max_power_mw = 2.0 }

let meets_spec spec perf =
  perf.gain_db >= spec.min_gain_db
  && perf.gbw_mhz >= spec.min_gbw_mhz
  && perf.slew_v_per_us >= spec.min_slew_v_per_us
  && perf.power_mw <= spec.max_power_mw

let spec_cost spec perf =
  let shortfall actual target = Float.max 0.0 ((target -. actual) /. target) in
  let excess actual limit = Float.max 0.0 ((actual -. limit) /. limit) in
  let violations =
    shortfall perf.gain_db spec.min_gain_db
    +. shortfall perf.gbw_mhz spec.min_gbw_mhz
    +. shortfall perf.slew_v_per_us spec.min_slew_v_per_us
    +. excess perf.power_mw spec.max_power_mw
  in
  (100.0 *. violations) +. perf.power_mw +. (1e-5 *. float_of_int perf.area)
  +. (0.01 *. perf.wire_cap_ff)

let pp_perf fmt p =
  Format.fprintf fmt "gain %.1f dB, GBW %.2f MHz, SR %.2f V/us, %.2f mW, Cwire %.0f fF, area %d"
    p.gain_db p.gbw_mhz p.slew_v_per_us p.power_mw p.wire_cap_ff p.area

let pp_sizing fmt s =
  Format.fprintf fmt "W1 %.1fu W3 %.1fu W5 %.1fu W6 %.1fu Cc %.0f fF" s.w1_um s.w3_um
    s.w5_um s.w6_um s.cc_ff

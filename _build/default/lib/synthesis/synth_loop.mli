(** Layout-inclusive sizing loop (paper Fig. 1b).

    A simulated-annealing search over device sizes; every candidate
    sizing is translated to block dimensions, placed by a pluggable
    placement instantiator, and scored on layout-aware performance.
    Swapping the instantiator (multi-placement structure, fixed
    template, per-query SA placer) reproduces the paper's comparison:
    the MPS gives template-class speed with optimization-class
    placements. *)

open Mps_geometry
open Mps_netlist
open Mps_modgen

(** A placement instantiator inside the loop. *)
type placer = {
  name : string;
  place : Dims.t -> Rect.t array;
}

val mps_placer : Mps_core.Structure.t -> placer
(** Queries the multi-placement structure. *)

val template_placer : Mps_baselines.Template_placer.t -> placer
(** Re-packs the fixed template. *)

val sa_placer :
  ?config:Mps_baselines.Sa_placer.config ->
  seed:int -> Circuit.t -> die_w:int -> die_h:int -> placer
(** Runs a fresh full SA placement per query (the slow baseline). *)

(** How layout parasitics are estimated inside the loop. *)
type parasitics =
  | Hpwl_estimate  (** Fast: wire load from total HPWL. *)
  | Routed_extraction
      (** Full Fig. 1b flow: maze routing + RC extraction per candidate. *)

type config = {
  seed : int;
  iterations : int;  (** Sizing candidates evaluated. *)
  schedule : Mps_anneal.Schedule.t;
  spec : Opamp.spec;
  step : float;  (** Log-space perturbation half-range per knob. *)
  parasitics : parasitics;
  optimize_aspect : bool;
      (** Let the annealer also pick per-block aspect-ratio hints
          (folding choices) alongside the electrical sizes. *)
}

val default_config : config
(** 150 iterations, HPWL parasitics, aspect optimization on. *)

type result = {
  best_sizing : Opamp.sizing;
  best_aspect_hints : float array;
      (** Winning per-block aspect hints (all 1.0 when
          [optimize_aspect] is off). *)
  best_perf : Opamp.perf;
  best_cost : float;
  meets_spec : bool;
  evaluations : int;
  placement_seconds : float;  (** Wall time spent inside the placer. *)
  total_seconds : float;
  history : float array;  (** Best-so-far cost after each evaluation. *)
}

val run :
  ?config:config ->
  Process.t -> Circuit.t -> die_w:int -> die_h:int -> placer -> result
(** Run the loop for the two-stage op-amp model on the given circuit
    (from {!Opamp.circuit}). *)

lib/rng/rng.ml: Array Float List Random

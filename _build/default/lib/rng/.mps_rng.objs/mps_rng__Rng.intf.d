lib/rng/rng.mli:

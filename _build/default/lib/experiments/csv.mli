(** Minimal CSV writing for the experiment series (Figure 6 curves,
    Table 2 rows), so results can be plotted outside the repo. *)

val escape : string -> string
(** RFC-4180 quoting: fields containing commas, quotes or newlines are
    wrapped in double quotes with inner quotes doubled. *)

val line : string list -> string
(** One CSV record, newline-terminated. *)

val render : header:string list -> rows:string list list -> string
(** Header plus records.  Rows may be ragged (CSV has no arity rule). *)

val save : path:string -> header:string list -> rows:string list list -> unit

val table2 : Experiments.table2_row list -> string
(** Table 2 as CSV (circuit, generation seconds, placements, coverage,
    instantiation seconds, template share). *)

val figure6 : Experiments.figure6_point list -> string
(** Figure 6 sweep as CSV: swept value, the structure's cost and
    choice, the per-placement lower envelope and its argmin. *)

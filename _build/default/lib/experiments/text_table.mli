(** Plain-text table rendering for the experiment reports. *)

val render : headers:string list -> rows:string list list -> string
(** Column-aligned table with a separator line under the headers.
    Every row must have as many cells as there are headers.
    @raise Invalid_argument otherwise. *)

val seconds : float -> string
(** Human-readable duration: "420ms", "2.41s", "3m12s", "1h02m". *)

val microseconds : float -> string
(** Duration given in seconds rendered at microsecond scale:
    "85us", "1.2ms", "340ms". *)

let render ~headers ~rows =
  let n = List.length headers in
  List.iter
    (fun row ->
      if List.length row <> n then invalid_arg "Text_table.render: ragged row")
    rows;
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let line cells =
    String.concat "  " (List.map2 pad cells widths) ^ "\n"
  in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) ^ "\n" in
  line headers ^ sep ^ String.concat "" (List.map line rows)

let seconds s =
  if s < 1.0 then Printf.sprintf "%.0fms" (s *. 1000.0)
  else if s < 60.0 then Printf.sprintf "%.2fs" s
  else if s < 3600.0 then
    Printf.sprintf "%dm%02ds" (int_of_float s / 60) (int_of_float s mod 60)
  else Printf.sprintf "%dh%02dm" (int_of_float s / 3600) (int_of_float s mod 3600 / 60)

let microseconds s =
  let us = s *. 1e6 in
  if us < 1000.0 then Printf.sprintf "%.0fus" us
  else if us < 1e6 then Printf.sprintf "%.1fms" (us /. 1000.0)
  else Printf.sprintf "%.0fms" (us /. 1000.0)

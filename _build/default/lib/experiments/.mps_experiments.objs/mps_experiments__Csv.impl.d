lib/experiments/csv.ml: Array Buffer Experiments Fun List Mps_core Printf String

lib/experiments/text_table.ml: List Printf String

lib/experiments/csv.mli: Experiments

lib/experiments/experiments.mli: Circuit Dims Generator Mps_core Mps_geometry Mps_netlist Structure

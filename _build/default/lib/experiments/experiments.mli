(** Drivers regenerating every table and figure of the paper, plus the
    ablations listed in DESIGN.md §4.  Each driver returns both the
    structured data and a printable report so that the CLI ([bin/mpsgen])
    and the benchmark harness ([bench/main.exe]) share one
    implementation. *)

open Mps_geometry
open Mps_netlist
open Mps_core

(** Budget preset for structure generation. *)
type budget =
  | Quick  (** Seconds per circuit; for tests and demos. *)
  | Full  (** The default reproduction budget (see EXPERIMENTS.md). *)

val generator_config : budget -> Circuit.t -> Generator.config
(** Budgets scale mildly with circuit size, like the paper's generation
    times do. *)

(** {1 Table 1} *)

val table1 : unit -> string
(** The benchmark inventory: circuit, blocks, nets, terminals. *)

(** {1 Table 2} *)

type table2_row = {
  circuit_name : string;
  generation_seconds : float;
  placements : int;
  coverage : float;
  instantiation_seconds : float;  (** Mean wall time of one query+instantiation. *)
  fallback_rate : float;  (** Share of probe queries answered by the fallback. *)
}

val table2_row : budget:budget -> Circuit.t -> table2_row * Structure.t
(** Generate the structure for one circuit and measure instantiation
    over a probe workload (uniform dimension vectors mixed with vectors
    near stored placements). *)

val table2 : ?budget:budget -> ?circuits:Circuit.t list -> unit -> table2_row list * string
(** All Table 2 rows (default: every Table 1 circuit, [Full] budget). *)

(** {1 Figure 5} *)

val figure5 : ?budget:budget -> unit -> string
(** Two multi-placement instantiations of the two-stage op-amp for
    different sizes, next to the fixed-template instantiation, as ASCII
    floorplans. *)

(** {1 Figure 6} *)

type figure6_point = {
  swept_value : int;  (** Width of the swept block. *)
  per_placement : (int * float) array;  (** Cost of each stored placement. *)
  mps_cost : float;  (** Cost of the structure-selected placement. *)
  mps_choice : Structure.answer;
}

val figure6 : ?budget:budget -> unit -> figure6_point list * string
(** Sweep one block dimension across its range for the two-stage op-amp;
    report each stored placement's cost and the structure's selection.
    The printable report includes the lower-envelope match rate. *)

(** {1 Figure 7} *)

val figure7 : ?budget:budget -> unit -> string
(** An optimized floorplan instantiation for the 21-module
    [tso-cascode] circuit. *)

(** {1 Ablations} *)

val ablation_shrink : ?budget:budget -> unit -> string
(** A1: Optimize Ranges rule — cost-ratio shrink vs fixed vs none. *)

val ablation_explorer : ?budget:budget -> unit -> string
(** A2: SA placement explorer vs independent random placements. *)

val ablation_query : ?budget:budget -> unit -> string
(** A3: compiled bitset query vs linear scan, wall time per query. *)

val ablation_fallback : ?budget:budget -> unit -> string
(** A5: uncovered-query strategy — the paper's single backup template
    vs re-packing the nearest stored placement. *)

val ablation_parasitics : ?budget:budget -> unit -> string
(** A6: the sizing loop with HPWL-estimated parasitics vs the full
    Fig. 1b Routing + Circuit Extraction flow (cost and wall time). *)

val ablation_refine : ?budget:budget -> unit -> string
(** A7: the per-candidate coordinate-refinement budget (0 = the paper's
    literal walk) vs how many walk placements pass the local-dominance
    admission test and the resulting query quality. *)

(** {1 Synthesis comparison (A4)} *)

val synthesis_comparison : ?budget:budget -> unit -> string
(** End-to-end layout-inclusive sizing of the op-amp with the MPS, the
    fixed template, and the per-query SA placer. *)

(** {1 Probe workloads} *)

val probe_dims : seed:int -> n:int -> Structure.t -> Dims.t array
(** The query workload used for timing and fallback statistics: half
    uniform over the dimension space, half jittered around stored
    placements' best dimension vectors. *)

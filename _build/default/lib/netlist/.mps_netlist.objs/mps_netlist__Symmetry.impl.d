lib/netlist/symmetry.ml: Format Hashtbl List Printf

lib/netlist/circuit.ml: Array Block Dimbox Dims Format List Mps_geometry Net Printf Symmetry

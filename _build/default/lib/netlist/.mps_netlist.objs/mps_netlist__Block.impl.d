lib/netlist/block.ml: Format Interval Mps_geometry String

lib/netlist/circuit.mli: Block Dimbox Dims Format Mps_geometry Net Symmetry

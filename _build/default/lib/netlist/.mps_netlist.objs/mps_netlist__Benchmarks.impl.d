lib/netlist/benchmarks.ml: Array Block Circuit List Mps_rng Net Printf Rng String Symmetry

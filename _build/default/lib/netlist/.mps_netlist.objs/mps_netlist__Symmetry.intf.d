lib/netlist/symmetry.mli: Format

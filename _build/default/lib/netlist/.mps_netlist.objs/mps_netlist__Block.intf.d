lib/netlist/block.mli: Format Interval Mps_geometry

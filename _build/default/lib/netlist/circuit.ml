open Mps_geometry

type t = {
  name : string;
  blocks : Block.t array;
  nets : Net.t array;
  symmetry : Symmetry.group list;
}

let make ~name ~blocks ~nets =
  Array.iteri
    (fun i (b : Block.t) ->
      if b.Block.id <> i then
        invalid_arg
          (Printf.sprintf "Circuit.make: block %s has id %d at index %d" b.Block.name
             b.Block.id i))
    blocks;
  let n = Array.length blocks in
  Array.iter
    (fun (net : Net.t) ->
      List.iter
        (fun b ->
          if b < 0 || b >= n then
            invalid_arg
              (Printf.sprintf "Circuit.make: net %s references unknown block %d"
                 net.Net.name b))
        (Net.blocks net))
    nets;
  { name; blocks; nets; symmetry = [] }

let with_symmetry t groups =
  Symmetry.validate ~n_blocks:(Array.length t.blocks) groups;
  { t with symmetry = groups }

let n_blocks t = Array.length t.blocks
let n_nets t = Array.length t.nets

let n_terminals t = Array.fold_left (fun acc net -> acc + Net.terminal_count net) 0 t.nets

let block t i = t.blocks.(i)

let dim_bounds t =
  Dimbox.make
    ~w:(Array.map (fun (b : Block.t) -> b.Block.w_bounds) t.blocks)
    ~h:(Array.map (fun (b : Block.t) -> b.Block.h_bounds) t.blocks)

let min_dims t =
  Dims.make
    ~w:(Array.map (fun b -> fst (Block.min_dims b)) t.blocks)
    ~h:(Array.map (fun b -> snd (Block.min_dims b)) t.blocks)

let max_dims t =
  Dims.make
    ~w:(Array.map (fun b -> fst (Block.max_dims b)) t.blocks)
    ~h:(Array.map (fun b -> snd (Block.max_dims b)) t.blocks)

let dims_valid t dims =
  Dims.n_blocks dims = n_blocks t
  && Array.for_all
       (fun (b : Block.t) ->
         Block.dims_valid b ~w:(Dims.width dims b.Block.id) ~h:(Dims.height dims b.Block.id))
       t.blocks

let total_min_area t = Array.fold_left (fun acc b -> acc + Block.min_area b) 0 t.blocks
let total_max_area t = Array.fold_left (fun acc b -> acc + Block.max_area b) 0 t.blocks

let default_die ?(slack = 1.0) t =
  let area = float_of_int (total_max_area t) *. (1.0 +. slack) in
  (* Never smaller than the largest single block. *)
  let max_w =
    Array.fold_left (fun acc b -> max acc (fst (Block.max_dims b))) 1 t.blocks
  in
  let max_h =
    Array.fold_left (fun acc b -> max acc (snd (Block.max_dims b))) 1 t.blocks
  in
  let side = int_of_float (ceil (sqrt area)) in
  (max side max_w, max side max_h)

let pp fmt t =
  Format.fprintf fmt "%s: %d blocks, %d nets, %d terminals" t.name (n_blocks t) (n_nets t)
    (n_terminals t)

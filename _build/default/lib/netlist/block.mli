(** Circuit blocks.

    A block is any module produced by a module generator (paper §2.1): a
    differential pair, a current mirror, a capacitor...  Its width and
    height are variables of the placement problem, bounded by the
    designer-set minimum and maximum dimensions [wm/wM, hm/hM]. *)

open Mps_geometry

type t = {
  id : int;  (** Index of the block within its circuit, [0 .. N-1]. *)
  name : string;
  w_bounds : Interval.t;  (** Allowed widths [wm .. wM]. *)
  h_bounds : Interval.t;  (** Allowed heights [hm .. hM]. *)
}

val make : id:int -> name:string -> w_bounds:Interval.t -> h_bounds:Interval.t -> t

val make_wh : id:int -> name:string -> w:int * int -> h:int * int -> t
(** [make_wh ~id ~name ~w:(wm, wM) ~h:(hm, hM)]. *)

val min_dims : t -> int * int
(** Minimum (width, height). *)

val max_dims : t -> int * int

val min_area : t -> int
val max_area : t -> int

val dims_valid : t -> w:int -> h:int -> bool
(** Both dimensions lie within the designer bounds. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

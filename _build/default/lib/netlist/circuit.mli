(** Circuits: a set of blocks plus the nets connecting them.

    This is the input to both multi-placement structure generation and to
    the baseline placers. *)

open Mps_geometry

type t = {
  name : string;
  blocks : Block.t array;
  nets : Net.t array;
  symmetry : Symmetry.group list;  (** Soft symmetry constraints. *)
}

val make : name:string -> blocks:Block.t array -> nets:Net.t array -> t
(** Validates that block ids equal their array index and every net pin
    references an existing block ([symmetry] starts empty).
    @raise Invalid_argument otherwise. *)

val with_symmetry : t -> Symmetry.group list -> t
(** Attach soft symmetry constraints.
    @raise Invalid_argument on malformed groups ({!Symmetry.validate}). *)

val n_blocks : t -> int
val n_nets : t -> int

val n_terminals : t -> int
(** Total block-pin count over all nets (Table 1's "Terminals"). *)

val block : t -> int -> Block.t

val dim_bounds : t -> Dimbox.t
(** The full dimension search space: per block, the designer's width and
    height bounds. *)

val min_dims : t -> Dims.t
(** All blocks at their minimum dimensions. *)

val max_dims : t -> Dims.t

val dims_valid : t -> Dims.t -> bool
(** Vector respects every block's designer bounds. *)

val total_min_area : t -> int
val total_max_area : t -> int

val default_die : ?slack:float -> t -> int * int
(** [(die_w, die_h)]: a square die sized so that the sum of maximum block
    areas fills a [1 /. (1 +. slack)] share of it (default slack 1.0,
    i.e. the die is twice the total max block area). *)

val pp : Format.formatter -> t -> unit
(** One-line summary: name, block/net/terminal counts. *)

type group =
  | Pair of { left : int; right : int }
  | Self of int

let members = function
  | Pair { left; right } -> [ left; right ]
  | Self i -> [ i ]

let validate ~n_blocks groups =
  let seen = Hashtbl.create 8 in
  let check_index i =
    if i < 0 || i >= n_blocks then
      invalid_arg (Printf.sprintf "Symmetry: block %d out of range" i);
    if Hashtbl.mem seen i then
      invalid_arg (Printf.sprintf "Symmetry: block %d in more than one group" i);
    Hashtbl.add seen i ()
  in
  List.iter
    (fun g ->
      (match g with
      | Pair { left; right } when left = right ->
        invalid_arg "Symmetry: degenerate pair"
      | Pair _ | Self _ -> ());
      List.iter check_index (members g))
    groups

let pp fmt = function
  | Pair { left; right } -> Format.fprintf fmt "pair(%d,%d)" left right
  | Self i -> Format.fprintf fmt "self(%d)" i

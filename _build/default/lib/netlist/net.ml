type pin =
  | Block_pin of { block : int; fx : float; fy : float }
  | Pad of { px : float; py : float }

type t = { id : int; name : string; pins : pin list }

let frac_ok f = f >= 0.0 && f <= 1.0

let make ~id ~name ~pins =
  if pins = [] then invalid_arg "Net.make: empty pin list";
  let check = function
    | Block_pin { block; fx; fy } ->
      if block < 0 then invalid_arg "Net.make: negative block id";
      if not (frac_ok fx && frac_ok fy) then invalid_arg "Net.make: pin fraction out of [0,1]"
    | Pad { px; py } ->
      if not (frac_ok px && frac_ok py) then invalid_arg "Net.make: pad fraction out of [0,1]"
  in
  List.iter check pins;
  { id; name; pins }

let block_pin ?(fx = 0.5) ?(fy = 0.5) block = Block_pin { block; fx; fy }

let pad ~px ~py = Pad { px; py }

let terminal_count t =
  let is_block_pin = function Block_pin _ -> true | Pad _ -> false in
  List.length (List.filter is_block_pin t.pins)

let blocks t =
  let ids =
    List.filter_map (function Block_pin { block; _ } -> Some block | Pad _ -> None) t.pins
  in
  List.sort_uniq Int.compare ids

let degree t = List.length t.pins

let pp fmt t =
  let pp_pin fmt = function
    | Block_pin { block; fx; fy } -> Format.fprintf fmt "b%d@(%.2f,%.2f)" block fx fy
    | Pad { px; py } -> Format.fprintf fmt "pad@(%.2f,%.2f)" px py
  in
  Format.fprintf fmt "%s#%d{%a}" t.name t.id
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ") pp_pin)
    t.pins

open Mps_rng

let frac_choices = [| 0.1; 0.25; 0.5; 0.75; 0.9 |]

(* Deterministic synthetic circuit with exact Table 1 counts. *)
let synthetic ~name ~blocks ~nets ~terminals ~seed =
  if blocks <= 0 || nets <= 0 || terminals <= 0 then
    invalid_arg "Benchmarks.synthetic: counts must be positive";
  let rng = Rng.create ~seed in
  let block i =
    let wm = Rng.int_in rng 6 14 in
    let hm = Rng.int_in rng 6 14 in
    let wM = wm * Rng.int_in rng 3 5 in
    let hM = hm * Rng.int_in rng 3 5 in
    Block.make_wh ~id:i ~name:(Printf.sprintf "m%02d" i) ~w:(wm, wM) ~h:(hm, hM)
  in
  let block_array = Array.init blocks block in
  (* Deal the terminal budget over the nets as evenly as possible. *)
  let base = terminals / nets and rem = terminals mod nets in
  let pins_of_net j = base + if j < rem then 1 else 0 in
  (* The first [blocks] pin slots cover every block (when the budget
     allows), the rest are drawn at random. *)
  let owners = Array.init terminals (fun k -> if k < blocks then k else Rng.int rng blocks) in
  Rng.shuffle_in_place rng owners;
  let next_owner =
    let k = ref 0 in
    fun () ->
      let o = owners.(!k) in
      incr k;
      o
  in
  let edge_pad () =
    let t = Rng.float rng 1.0 in
    match Rng.int rng 4 with
    | 0 -> Net.pad ~px:t ~py:0.0
    | 1 -> Net.pad ~px:t ~py:1.0
    | 2 -> Net.pad ~px:0.0 ~py:t
    | _ -> Net.pad ~px:1.0 ~py:t
  in
  let net j =
    let n_pins = pins_of_net j in
    let pin _ =
      Net.block_pin ~fx:(Rng.choose rng frac_choices) ~fy:(Rng.choose rng frac_choices)
        (next_owner ())
    in
    let pins = List.init n_pins pin in
    (* A net needs at least two endpoints for its wirelength to be
       meaningful; pad short nets with an external terminal. *)
    let pins = if List.length pins < 2 then pins @ [ edge_pad () ] else pins in
    let pins = if pins = [] then [ edge_pad (); edge_pad () ] else pins in
    Net.make ~id:j ~name:(Printf.sprintf "n%02d" j) ~pins
  in
  let nets_array = Array.init nets net in
  Circuit.make ~name ~blocks:block_array ~nets:nets_array

(* Hand-modelled circuits.  [b] and [n] are terse builders; pin offsets
   put ports roughly where a module generator would. *)

let b id name w h = Block.make_wh ~id ~name ~w ~h

let pin ?(fx = 0.5) ?(fy = 0.5) block = Net.block_pin ~fx ~fy block

let net id name pins = Net.make ~id ~name ~pins

let two_stage_opamp =
  (* Blocks: 0 diff pair, 1 mirror load, 2 tail source, 3 second-stage
     driver, 4 compensation capacitor. *)
  let blocks =
    [|
      b 0 "diff_pair" (16, 64) (10, 36);
      b 1 "mirror_load" (14, 56) (8, 30);
      b 2 "tail_src" (10, 44) (8, 28);
      b 3 "driver" (12, 70) (10, 40);
      b 4 "comp_cap" (12, 48) (12, 48);
    |]
  in
  let nets =
    [|
      net 0 "inp" [ pin ~fx:0.1 ~fy:0.5 0; Net.pad ~px:0.0 ~py:0.4 ];
      net 1 "inn" [ pin ~fx:0.9 ~fy:0.5 0; Net.pad ~px:0.0 ~py:0.6 ];
      net 2 "out1"
        [ pin ~fx:0.8 ~fy:0.9 0; pin ~fx:0.8 ~fy:0.1 1; pin ~fx:0.2 ~fy:0.5 3;
          pin ~fx:0.1 ~fy:0.5 4 ];
      net 3 "out" [ pin ~fx:0.9 ~fy:0.5 3; pin ~fx:0.9 ~fy:0.5 4; Net.pad ~px:1.0 ~py:0.5 ];
      net 4 "vdd"
        [ pin ~fx:0.25 ~fy:0.95 1; pin ~fx:0.75 ~fy:0.95 1; pin ~fx:0.5 ~fy:0.95 3 ];
      net 5 "vss"
        [ pin ~fx:0.5 ~fy:0.05 2; pin ~fx:0.5 ~fy:0.05 3; pin ~fx:0.5 ~fy:0.05 4 ];
      net 6 "ibias" [ pin ~fx:0.1 ~fy:0.5 2; pin ~fx:0.9 ~fy:0.5 2; Net.pad ~px:0.0 ~py:0.1 ];
      net 7 "tail" [ pin ~fx:0.25 ~fy:0.1 0; pin ~fx:0.75 ~fy:0.1 0; pin ~fx:0.5 ~fy:0.9 2 ];
      net 8 "mirror_node"
        [ pin ~fx:0.2 ~fy:0.9 0; pin ~fx:0.2 ~fy:0.1 1; pin ~fx:0.5 ~fy:0.1 1 ];
    |]
  in
  Circuit.with_symmetry
    (Circuit.make ~name:"TwoStage Opamp" ~blocks ~nets)
    [ Symmetry.Self 0; Symmetry.Self 1 ]

let single_ended_opamp =
  (* Blocks: 0 diff pair, 1 mirror load, 2 tail, 3 n-cascode, 4 p-cascode,
     5 output driver, 6 compensation cap, 7 bias mirror, 8 output buffer. *)
  let blocks =
    [|
      b 0 "diff_pair" (16, 64) (10, 36);
      b 1 "mirror_load" (14, 56) (8, 30);
      b 2 "tail_src" (10, 44) (8, 28);
      b 3 "casc_n" (12, 50) (8, 32);
      b 4 "casc_p" (12, 50) (8, 32);
      b 5 "out_driver" (12, 70) (10, 40);
      b 6 "comp_cap" (12, 48) (12, 48);
      b 7 "bias_mirror" (10, 40) (8, 28);
      b 8 "out_buf" (12, 60) (10, 36);
    |]
  in
  let nets =
    [|
      net 0 "inp" [ pin ~fx:0.1 0; Net.pad ~px:0.0 ~py:0.4 ];
      net 1 "inn" [ pin ~fx:0.9 0; Net.pad ~px:0.0 ~py:0.6 ];
      net 2 "vdd" [ pin ~fy:0.95 1; pin ~fy:0.95 4; pin ~fy:0.95 5 ];
      net 3 "vss" [ pin ~fy:0.05 2; pin ~fy:0.05 3; pin ~fy:0.05 5; pin ~fy:0.05 8 ];
      net 4 "n1" [ pin ~fx:0.2 ~fy:0.9 0; pin ~fx:0.2 ~fy:0.1 3 ];
      net 5 "n2" [ pin ~fx:0.8 ~fy:0.9 0; pin ~fx:0.8 ~fy:0.1 3 ];
      net 6 "n3" [ pin ~fx:0.2 ~fy:0.9 3; pin ~fx:0.2 ~fy:0.1 1 ];
      net 7 "n4" [ pin ~fx:0.8 ~fy:0.9 3; pin ~fx:0.8 ~fy:0.1 1 ];
      net 8 "out1" [ pin ~fx:0.9 4; pin ~fx:0.1 5; pin ~fx:0.1 6 ];
      net 9 "out" [ pin ~fx:0.9 5; pin ~fx:0.9 6; pin ~fx:0.1 8 ];
      net 10 "tail" [ pin ~fx:0.25 ~fy:0.1 0; pin ~fx:0.75 ~fy:0.1 0; pin ~fy:0.9 2 ];
      net 11 "bias1" [ pin ~fx:0.1 7; pin ~fx:0.1 2 ];
      net 12 "bias2" [ pin ~fx:0.5 7; pin ~fx:0.1 3 ];
      net 13 "bias3" [ pin ~fx:0.9 7; pin ~fx:0.1 4 ];
    |]
  in
  Circuit.with_symmetry
    (Circuit.make ~name:"SingleEnded Opamp" ~blocks ~nets)
    [ Symmetry.Self 0; Symmetry.Self 1; Symmetry.Self 3 ]

let mixer =
  (* Blocks: 0 RF pair, 1 LO switching quad, 2/3 loads, 4 tail,
     5/6 IF buffers, 7 bias. *)
  let blocks =
    [|
      b 0 "rf_pair" (16, 60) (10, 34);
      b 1 "lo_quad" (20, 80) (12, 40);
      b 2 "load_l" (10, 40) (8, 30);
      b 3 "load_r" (10, 40) (8, 30);
      b 4 "tail_src" (10, 44) (8, 28);
      b 5 "if_buf_l" (12, 50) (8, 32);
      b 6 "if_buf_r" (12, 50) (8, 32);
      b 7 "bias" (10, 40) (8, 28);
    |]
  in
  let nets =
    [|
      net 0 "rf_in" [ pin ~fx:0.5 ~fy:0.1 0; Net.pad ~px:0.5 ~py:0.0 ];
      net 1 "lo" [ pin ~fx:0.25 ~fy:0.1 1; pin ~fx:0.75 ~fy:0.1 1; Net.pad ~px:0.0 ~py:0.9 ];
      net 2 "if_l" [ pin ~fx:0.1 ~fy:0.9 1; pin ~fy:0.1 2; pin ~fx:0.1 5 ];
      net 3 "if_r" [ pin ~fx:0.9 ~fy:0.9 1; pin ~fy:0.1 3; pin ~fx:0.1 6 ];
      net 4 "tail" [ pin ~fx:0.25 ~fy:0.1 0; pin ~fx:0.75 ~fy:0.1 0; pin ~fy:0.9 4 ];
      net 5 "bias" [ pin ~fx:0.5 7; pin ~fx:0.1 4; pin ~fy:0.05 5 ];
    |]
  in
  Circuit.with_symmetry
    (Circuit.make ~name:"Mixer" ~blocks ~nets)
    [
      Symmetry.Pair { left = 2; right = 3 };
      Symmetry.Pair { left = 5; right = 6 };
      Symmetry.Self 0;
      Symmetry.Self 1;
    ]

let circ01 = synthetic ~name:"circ01" ~blocks:4 ~nets:4 ~terminals:12 ~seed:101
let circ02 = synthetic ~name:"circ02" ~blocks:6 ~nets:4 ~terminals:18 ~seed:102
let circ06 = synthetic ~name:"circ06" ~blocks:6 ~nets:4 ~terminals:18 ~seed:106
let circ08 = synthetic ~name:"circ08" ~blocks:8 ~nets:8 ~terminals:24 ~seed:108

let tso_cascode =
  synthetic ~name:"tso-cascode" ~blocks:21 ~nets:36 ~terminals:46 ~seed:121

let benchmark24 =
  synthetic ~name:"benchmark24" ~blocks:24 ~nets:48 ~terminals:48 ~seed:124

let all =
  [
    circ01; circ02; circ06; two_stage_opamp; single_ended_opamp; mixer; circ08;
    tso_cascode; benchmark24;
  ]

let by_name name =
  let canon s = String.lowercase_ascii (String.trim s) in
  let key = canon name in
  let matches (c : Circuit.t) =
    canon c.Circuit.name = key
    || (key = "tso" && c == two_stage_opamp)
    || (key = "seo" && c == single_ended_opamp)
  in
  match List.find_opt matches all with
  | Some c -> c
  | None -> raise Not_found

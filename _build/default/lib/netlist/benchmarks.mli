(** The nine benchmark circuits of the paper's Table 1.

    The paper's netlists are not published; these reconstructions match
    the published block / net / terminal counts exactly (checked by the
    test suite).  The two op-amps and the mixer are hand-modelled with
    realistic module-level structure; the [circNN], [tso-cascode] and
    [benchmark24] circuits are deterministic synthetic netlists (see
    DESIGN.md §3 for why this substitution preserves the experiments). *)

val circ01 : Circuit.t
val circ02 : Circuit.t
val circ06 : Circuit.t
val two_stage_opamp : Circuit.t
val single_ended_opamp : Circuit.t
val mixer : Circuit.t
val circ08 : Circuit.t
val tso_cascode : Circuit.t
val benchmark24 : Circuit.t

val all : Circuit.t list
(** The nine circuits in Table 1 order. *)

val by_name : string -> Circuit.t
(** Lookup by the table's circuit name ("circ01", "TwoStage Opamp", ...),
    case-insensitively, also accepting "tso" and "seo" for the op-amps.
    @raise Not_found on unknown names. *)

val synthetic :
  name:string -> blocks:int -> nets:int -> terminals:int -> seed:int -> Circuit.t
(** Deterministic synthetic circuit with the exact given counts: nets are
    dealt [terminals] block pins as evenly as possible (every block is
    referenced when [terminals >= blocks]) and nets with fewer than two
    endpoints receive external pads so wirelength is well-defined. *)

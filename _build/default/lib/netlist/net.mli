(** Nets: the wires whose estimated length drives the cost function.

    A net connects block pins and, optionally, external pads (die-edge
    terminals).  Block pins are positioned as a fraction of the block's
    current width and height, so pin positions scale with the instantiated
    dimensions the way a real module generator's ports do.  The Table 1
    "Terminals" column counts block pins only. *)

(** One endpoint of a net. *)
type pin =
  | Block_pin of { block : int; fx : float; fy : float }
      (** Pin of block [block] at offset [(fx * w, fy * h)] from the
          block's lower-left corner; [fx], [fy] in [[0, 1]]. *)
  | Pad of { px : float; py : float }
      (** Fixed external terminal at die-fraction coordinates. *)

type t = { id : int; name : string; pins : pin list }

val make : id:int -> name:string -> pins:pin list -> t
(** @raise Invalid_argument when [pins] is empty or a fraction is
    outside [[0, 1]]. *)

val block_pin : ?fx:float -> ?fy:float -> int -> pin
(** Pin on block [i]; offsets default to the block center (0.5, 0.5). *)

val pad : px:float -> py:float -> pin

val terminal_count : t -> int
(** Number of block pins (external pads excluded). *)

val blocks : t -> int list
(** Ids of the blocks this net touches, without duplicates, ascending. *)

val degree : t -> int
(** Total number of endpoints, pads included. *)

val pp : Format.formatter -> t -> unit

(** Symmetry constraints.

    Analog performance depends on matched devices seeing matched
    parasitics, so analog placers (KOAN/ANAGRAM, LAYLA — the paper's
    baseline class) support symmetric placement: pairs mirrored about a
    common vertical axis and self-symmetric blocks centred on it.  Here
    symmetry is a soft constraint scored by
    {!Mps_cost.Cost.symmetry_penalty}. *)

type group =
  | Pair of { left : int; right : int }
      (** Two blocks mirrored about the common axis, at equal height. *)
  | Self of int  (** One block centred on the axis. *)

val members : group -> int list

val validate : n_blocks:int -> group list -> unit
(** @raise Invalid_argument when an index is out of range, a pair is
    degenerate, or a block appears in more than one group. *)

val pp : Format.formatter -> group -> unit

open Mps_geometry

type t = {
  id : int;
  name : string;
  w_bounds : Interval.t;
  h_bounds : Interval.t;
}

let make ~id ~name ~w_bounds ~h_bounds =
  if id < 0 then invalid_arg "Block.make: negative id";
  if Interval.lo w_bounds <= 0 || Interval.lo h_bounds <= 0 then
    invalid_arg "Block.make: non-positive minimum dimension";
  { id; name; w_bounds; h_bounds }

let make_wh ~id ~name ~w:(wm, wM) ~h:(hm, hM) =
  make ~id ~name ~w_bounds:(Interval.make wm wM) ~h_bounds:(Interval.make hm hM)

let min_dims t = (Interval.lo t.w_bounds, Interval.lo t.h_bounds)
let max_dims t = (Interval.hi t.w_bounds, Interval.hi t.h_bounds)

let min_area t = Interval.lo t.w_bounds * Interval.lo t.h_bounds
let max_area t = Interval.hi t.w_bounds * Interval.hi t.h_bounds

let dims_valid t ~w ~h = Interval.contains t.w_bounds w && Interval.contains t.h_bounds h

let equal a b =
  a.id = b.id && String.equal a.name b.name
  && Interval.equal a.w_bounds b.w_bounds
  && Interval.equal a.h_bounds b.h_bounds

let pp fmt t =
  Format.fprintf fmt "%s#%d w:%a h:%a" t.name t.id Interval.pp t.w_bounds Interval.pp
    t.h_bounds

(** Template-style greedy re-packing.

    Given reference block corners and new dimensions, blocks are visited
    in the reference left-to-right, bottom-to-top order and each one
    slides upward until it overlaps none of the already-packed blocks.
    This is how a fixed layout template absorbs size changes: the
    arrangement survives, optimality does not.  Used by the template
    baseline placer and by the multi-placement structure's fallback
    answer for uncovered dimension vectors. *)

open Mps_geometry

val instantiate : ?die:int * int -> coords:(int * int) array -> Dims.t -> Rect.t array
(** Overlap-free floorplan at exactly the requested dimensions.  With
    [?die:(die_w, die_h)] the packed floorplan is translated back
    toward the origin so it fits the die whenever its bounding box can
    (per axis); a bounding box larger than the die still sticks out —
    rigidity is the template's defining weakness.
    @raise Invalid_argument on block-count mismatch. *)

(** Sequence-pair floorplan representation (Murata et al.).

    A pair of permutations [(Γ+, Γ-)] encodes the relative position of
    every two blocks: [i] left of [j] when [i] precedes [j] in both
    sequences, [i] below [j] when [i] follows [j] in [Γ+] but precedes
    it in [Γ-].  Packing with longest-path evaluation produces an
    overlap-free floorplan for any dimension vector, which makes the
    representation a popular move space for annealing placers — the
    {!Mps_baselines.Seqpair_placer} baseline anneals over it. *)

open Mps_rng
open Mps_geometry

type t
(** An immutable sequence pair over [n] blocks. *)

val identity : int -> t
(** Both sequences [0, 1, ..., n-1]: blocks in one row, left to right.
    @raise Invalid_argument when [n < 0]. *)

val of_arrays : pos:int array -> neg:int array -> t
(** @raise Invalid_argument unless both arrays are permutations of
    [0 .. n-1] of equal length. *)

val n_blocks : t -> int

val positive : t -> int array
(** Copy of [Γ+]. *)

val negative : t -> int array

val random : Rng.t -> int -> t
(** Independent uniform permutations. *)

val before_in_both : t -> int -> int -> bool
(** [before_in_both t i j]: [i] is left of [j]. *)

val pack : t -> Dims.t -> Rect.t array
(** Longest-path packing: the minimal floorplan realizing all the
    left-of / below relations at the given dimensions.  Always
    overlap-free, anchored at the origin.
    @raise Invalid_argument on a block-count mismatch. *)

(** Annealing moves. *)
type move =
  | Swap_positive  (** Swap two blocks in [Γ+] only. *)
  | Swap_both  (** Swap two blocks in both sequences. *)

val perturb : Rng.t -> t -> t
(** One random move (uniform over {!move} kinds and block pairs);
    identity for fewer than two blocks. *)

val apply_move : Rng.t -> move -> t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

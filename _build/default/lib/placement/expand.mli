(** Placement Expansion (paper §3.1.2).

    Starting from every block at its minimum dimensions, widths and
    heights are incremented one unit at a time, round-robin, until no
    further growth is possible without overlapping a neighbour, leaving
    the die, or exceeding the block's designer maximum.  The result is
    the dimension hyper-box over which the placement stays legal. *)

open Mps_geometry
open Mps_netlist

val expand : Circuit.t -> Placement.t -> Dimbox.t
(** The expanded box: per block, widths [w_min .. w_expanded] and
    heights [h_min .. h_expanded].

    Requires the placement to be legal at the circuit's minimum
    dimensions.  @raise Invalid_argument otherwise.

    Because blocks are anchored at their lower-left corners, the
    floorplan is legal for *every* dimension vector in the returned box
    (monotonicity), not only at the expanded corner. *)

val max_dims : Circuit.t -> Placement.t -> Dims.t
(** Upper corner of {!expand}'s box. *)

(** Slicing floorplans as normalized Polish expressions (Wong-Liu).

    A slicing floorplan recursively cuts the die with horizontal and
    vertical lines; its slicing tree serializes to a postfix expression
    over block operands and the cut operators.  The classic annealing
    moves (operand swap, chain inversion, operand/operator swap) walk
    the space of normalized expressions; packing always yields an
    overlap-free floorplan.  This powers the
    {!Mps_baselines.Slicing_placer} baseline. *)

open Mps_rng
open Mps_geometry

(** One token of the postfix expression. *)
type element =
  | Block of int
  | V  (** Vertical cut: left subtree beside right subtree. *)
  | H  (** Horizontal cut: left subtree below right subtree. *)

type t
(** A normalized Polish expression over blocks [0 .. n-1]: every block
    exactly once, [n-1] operators, the balloting property (operands
    strictly outnumber operators in every prefix), and no two equal
    adjacent operators. *)

val of_elements : element array -> t
(** @raise Invalid_argument when the expression is not normalized. *)

val elements : t -> element array

val row : int -> t
(** All blocks side by side: [0 1 V 2 V ...].
    @raise Invalid_argument when [n <= 0]. *)

val random : Rng.t -> int -> t
(** Random normalized expression ({!row} shuffled and re-cut). *)

val n_blocks : t -> int

val pack : t -> Dims.t -> Rect.t array
(** Evaluate the slicing tree bottom-up (V: widths add, heights max;
    H: heights add, widths max) and assign coordinates top-down from
    the origin.  Always overlap-free.
    @raise Invalid_argument on a block-count mismatch. *)

val bounding : t -> Dims.t -> int * int
(** Width and height of the packed floorplan. *)

val perturb : Rng.t -> t -> t
(** One random Wong-Liu move: M1 swaps two adjacent operands, M2
    inverts a random operator chain, M3 swaps an operand with an
    adjacent operator when normalization and balloting allow.  Falls
    back to M1 when the drawn move is inapplicable; identity for a
    single block. *)

val is_normalized : element array -> bool
(** The validation predicate behind {!of_elements} (exposed for
    property tests). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

open Mps_geometry
open Mps_netlist

(* Round-robin one-unit growth.  Each pass tries to widen then heighten
   every block by one unit; a unit is granted when the grown rectangle
   still fits the die, the block's designer maximum, and overlaps no
   other block at its current (already partly grown) dimensions. *)
let expand circuit placement =
  let n = Circuit.n_blocks circuit in
  if Placement.n_blocks placement <> n then
    invalid_arg "Expand.expand: block count mismatch";
  if not (Placement.is_legal placement (Circuit.min_dims circuit)) then
    invalid_arg "Expand.expand: placement illegal at minimum dimensions";
  let min_dims = Circuit.min_dims circuit in
  let w = Array.init n (Dims.width min_dims) in
  let h = Array.init n (Dims.height min_dims) in
  let rect i = Rect.make ~x:(fst placement.Placement.coords.(i))
      ~y:(snd placement.Placement.coords.(i)) ~w:w.(i) ~h:h.(i)
  in
  let fits i candidate =
    Rect.inside candidate ~die_w:placement.Placement.die_w
      ~die_h:placement.Placement.die_h
    &&
    let rec no_clash j =
      j >= n || ((j = i || not (Rect.overlaps candidate (rect j))) && no_clash (j + 1))
    in
    no_clash 0
  in
  let grow_w i =
    let blk = Circuit.block circuit i in
    if w.(i) >= Interval.hi blk.Block.w_bounds then false
    else begin
      let x, y = placement.Placement.coords.(i) in
      let candidate = Rect.make ~x ~y ~w:(w.(i) + 1) ~h:h.(i) in
      if fits i candidate then begin
        w.(i) <- w.(i) + 1;
        true
      end
      else false
    end
  in
  let grow_h i =
    let blk = Circuit.block circuit i in
    if h.(i) >= Interval.hi blk.Block.h_bounds then false
    else begin
      let x, y = placement.Placement.coords.(i) in
      let candidate = Rect.make ~x ~y ~w:w.(i) ~h:(h.(i) + 1) in
      if fits i candidate then begin
        h.(i) <- h.(i) + 1;
        true
      end
      else false
    end
  in
  let rec passes () =
    let changed = ref false in
    for i = 0 to n - 1 do
      if grow_w i then changed := true;
      if grow_h i then changed := true
    done;
    if !changed then passes ()
  in
  passes ();
  Dimbox.of_dims_range ~lo:min_dims ~hi:(Dims.make ~w ~h)

let max_dims circuit placement = Dimbox.upper_corner (expand circuit placement)

open Mps_rng
open Mps_geometry

type element =
  | Block of int
  | V
  | H

type t = element array

let is_operator = function Block _ -> false | V | H -> true

let is_normalized elements =
  let n_ops = Array.fold_left (fun acc e -> if is_operator e then acc + 1 else acc) 0 elements in
  let n_blocks = Array.length elements - n_ops in
  n_blocks >= 1
  && n_ops = n_blocks - 1
  && begin
    (* every block 0..n-1 exactly once *)
    let seen = Array.make n_blocks false in
    let ok = ref true in
    Array.iter
      (function
        | Block i ->
          if i < 0 || i >= n_blocks || seen.(i) then ok := false else seen.(i) <- true
        | V | H -> ())
      elements;
    !ok
  end
  && begin
    (* balloting: strictly more operands than operators in every prefix *)
    let balance = ref 0 and ok = ref true in
    Array.iter
      (fun e ->
        if is_operator e then decr balance else incr balance;
        if !balance < 1 then ok := false)
      elements;
    !ok
  end
  && begin
    (* normalized: no two equal adjacent operators *)
    let ok = ref true in
    for k = 0 to Array.length elements - 2 do
      match (elements.(k), elements.(k + 1)) with
      | V, V | H, H -> ok := false
      | _, _ -> ()
    done;
    !ok
  end

let of_elements elements =
  if not (is_normalized elements) then
    invalid_arg "Slicing.of_elements: not a normalized Polish expression";
  Array.copy elements

let elements t = Array.copy t

let row n =
  if n <= 0 then invalid_arg "Slicing.row: need at least one block";
  let buf = ref [ Block 0 ] in
  for i = 1 to n - 1 do
    (* alternate cut directions so the expression stays normalized *)
    let op = if i mod 2 = 1 then V else H in
    buf := op :: Block i :: !buf
  done;
  Array.of_list (List.rev !buf)

let random rng n =
  let base = row n in
  (* shuffle the operand order in place, keeping operator positions *)
  let operand_positions = ref [] in
  Array.iteri (fun k e -> if not (is_operator e) then operand_positions := k :: !operand_positions) base;
  let positions = Array.of_list !operand_positions in
  let blocks = Array.map (fun k -> base.(k)) positions in
  Rng.shuffle_in_place rng blocks;
  Array.iteri (fun i k -> base.(k) <- blocks.(i)) positions;
  base

let n_blocks t = (Array.length t + 1) / 2

(* Slicing tree with sizes and positions. *)
type node =
  | Leaf of int
  | Cut of element * node * node

let to_tree t =
  let stack = ref [] in
  Array.iter
    (fun e ->
      match e with
      | Block i -> stack := Leaf i :: !stack
      | V | H -> (
        match !stack with
        | right :: left :: rest -> stack := Cut (e, left, right) :: rest
        | _ -> assert false (* balloting rules this out *)))
    t;
  match !stack with [ root ] -> root | _ -> assert false

let pack t dims =
  if Dims.n_blocks dims <> n_blocks t then
    invalid_arg "Slicing.pack: block count mismatch";
  let rec size = function
    | Leaf i -> (Dims.width dims i, Dims.height dims i)
    | Cut (op, l, r) ->
      let wl, hl = size l and wr, hr = size r in
      (match op with
      | V -> (wl + wr, max hl hr)
      | H -> (max wl wr, hl + hr)
      | Block _ -> assert false)
  in
  let rects = Array.make (n_blocks t) None in
  let rec place node ~x ~y =
    match node with
    | Leaf i ->
      rects.(i) <- Some (Rect.make ~x ~y ~w:(Dims.width dims i) ~h:(Dims.height dims i))
    | Cut (op, l, r) ->
      let wl, hl = size l in
      ignore hl;
      (match op with
      | V ->
        place l ~x ~y;
        place r ~x:(x + wl) ~y
      | H ->
        place l ~x ~y;
        place r ~x ~y:(y + snd (size l))
      | Block _ -> assert false)
  in
  let root = to_tree t in
  place root ~x:0 ~y:0;
  Array.map (function Some r -> r | None -> assert false) rects

let bounding t dims =
  let rec size = function
    | Leaf i -> (Dims.width dims i, Dims.height dims i)
    | Cut (op, l, r) ->
      let wl, hl = size l and wr, hr = size r in
      (match op with
      | V -> (wl + wr, max hl hr)
      | H -> (max wl wr, hl + hr)
      | Block _ -> assert false)
  in
  size (to_tree t)

(* Moves *)

let operand_positions t =
  let acc = ref [] in
  Array.iteri (fun k e -> if not (is_operator e) then acc := k :: !acc) t;
  Array.of_list (List.rev !acc)

let swap_adjacent_operands rng t =
  let ops = operand_positions t in
  if Array.length ops < 2 then t
  else begin
    let k = Rng.int rng (Array.length ops - 1) in
    let a = ops.(k) and b = ops.(k + 1) in
    let t' = Array.copy t in
    let tmp = t'.(a) in
    t'.(a) <- t'.(b);
    t'.(b) <- tmp;
    t'
  end

let invert_chain rng t =
  (* a chain is a maximal run of operators; flip V<->H inside one *)
  let runs = ref [] in
  let k = ref 0 in
  let n = Array.length t in
  while !k < n do
    if is_operator t.(!k) then begin
      let start = !k in
      while !k < n && is_operator t.(!k) do
        incr k
      done;
      runs := (start, !k - 1) :: !runs
    end
    else incr k
  done;
  match !runs with
  | [] -> t
  | runs ->
    let start, stop = Rng.choose_list rng runs in
    let t' = Array.copy t in
    for i = start to stop do
      t'.(i) <- (match t'.(i) with V -> H | H -> V | Block b -> Block b)
    done;
    t'

let swap_operand_operator rng t =
  (* try a few random adjacent (operand, operator) swaps; keep the first
     that stays normalized *)
  let n = Array.length t in
  let attempt () =
    if n < 2 then None
    else begin
      let k = Rng.int rng (n - 1) in
      match (is_operator t.(k), is_operator t.(k + 1)) with
      | true, false | false, true ->
        let t' = Array.copy t in
        let tmp = t'.(k) in
        t'.(k) <- t'.(k + 1);
        t'.(k + 1) <- tmp;
        if is_normalized t' then Some t' else None
      | _ -> None
    end
  in
  let rec try_times k = if k = 0 then None else match attempt () with Some t' -> Some t' | None -> try_times (k - 1) in
  match try_times 8 with Some t' -> t' | None -> swap_adjacent_operands rng t

let perturb rng t =
  if n_blocks t < 2 then t
  else
    match Rng.int rng 3 with
    | 0 -> swap_adjacent_operands rng t
    | 1 -> invert_chain rng t
    | _ -> swap_operand_operator rng t

let equal a b = a = b

let pp fmt t =
  Array.iteri
    (fun k e ->
      if k > 0 then Format.fprintf fmt " ";
      match e with
      | Block i -> Format.fprintf fmt "%d" i
      | V -> Format.fprintf fmt "V"
      | H -> Format.fprintf fmt "H")
    t

open Mps_rng
open Mps_geometry

type t = { pos : int array; neg : int array }

let check_permutation name a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.iter
    (fun v ->
      if v < 0 || v >= n || seen.(v) then
        invalid_arg (Printf.sprintf "Seq_pair: %s is not a permutation" name);
      seen.(v) <- true)
    a

let identity n =
  if n < 0 then invalid_arg "Seq_pair.identity: negative size";
  { pos = Array.init n Fun.id; neg = Array.init n Fun.id }

let of_arrays ~pos ~neg =
  if Array.length pos <> Array.length neg then
    invalid_arg "Seq_pair.of_arrays: length mismatch";
  check_permutation "pos" pos;
  check_permutation "neg" neg;
  { pos = Array.copy pos; neg = Array.copy neg }

let n_blocks t = Array.length t.pos

let positive t = Array.copy t.pos
let negative t = Array.copy t.neg

let random rng n =
  let p = Array.init n Fun.id and q = Array.init n Fun.id in
  Rng.shuffle_in_place rng p;
  Rng.shuffle_in_place rng q;
  { pos = p; neg = q }

(* index of each block within a sequence *)
let ranks seq =
  let r = Array.make (Array.length seq) 0 in
  Array.iteri (fun idx b -> r.(b) <- idx) seq;
  r

let before_in_both t i j =
  let rp = ranks t.pos and rn = ranks t.neg in
  rp.(i) < rp.(j) && rn.(i) < rn.(j)

(* Longest-path packing.  x: process blocks in Γ+ order; every already-
   processed block [j] with rn.(j) < rn.(i) is left of [i].  y: process
   in reverse Γ+ order; every already-processed [j] with rn.(j) < rn.(i)
   is below [i]. *)
let pack t dims =
  let n = n_blocks t in
  if Dims.n_blocks dims <> n then invalid_arg "Seq_pair.pack: block count mismatch";
  let rn = ranks t.neg in
  let x = Array.make n 0 and y = Array.make n 0 in
  for pi = 0 to n - 1 do
    let i = t.pos.(pi) in
    let xi = ref 0 in
    for pj = 0 to pi - 1 do
      let j = t.pos.(pj) in
      if rn.(j) < rn.(i) then xi := max !xi (x.(j) + Dims.width dims j)
    done;
    x.(i) <- !xi
  done;
  for pi = n - 1 downto 0 do
    let i = t.pos.(pi) in
    let yi = ref 0 in
    for pj = n - 1 downto pi + 1 do
      let j = t.pos.(pj) in
      if rn.(j) < rn.(i) then yi := max !yi (y.(j) + Dims.height dims j)
    done;
    y.(i) <- !yi
  done;
  Array.init n (fun i ->
      Rect.make ~x:x.(i) ~y:y.(i) ~w:(Dims.width dims i) ~h:(Dims.height dims i))

type move =
  | Swap_positive
  | Swap_both

let swap a i j =
  let a = Array.copy a in
  let tmp = a.(i) in
  a.(i) <- a.(j);
  a.(j) <- tmp;
  a

let apply_move rng move t =
  let n = n_blocks t in
  if n < 2 then t
  else begin
    let i = Rng.int rng n in
    let j = (i + 1 + Rng.int rng (n - 1)) mod n in
    match move with
    | Swap_positive -> { t with pos = swap t.pos i j }
    | Swap_both ->
      (* swap the same two *blocks* in both sequences *)
      let bi = t.pos.(i) and bj = t.pos.(j) in
      let rn = ranks t.neg in
      { pos = swap t.pos i j; neg = swap t.neg rn.(bi) rn.(bj) }
  end

let perturb rng t =
  let move = if Rng.bool rng then Swap_positive else Swap_both in
  apply_move rng move t

let equal a b = a.pos = b.pos && a.neg = b.neg

let pp fmt t =
  let pp_seq fmt seq =
    Array.iteri (fun k v -> Format.fprintf fmt "%s%d" (if k > 0 then " " else "") v) seq
  in
  Format.fprintf fmt "(%a | %a)" pp_seq t.pos pp_seq t.neg

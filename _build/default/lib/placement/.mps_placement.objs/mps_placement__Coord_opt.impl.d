lib/placement/coord_opt.ml: Annealer Array Circuit Dims Mps_anneal Mps_cost Mps_geometry Mps_netlist Mps_rng Placement Rect Rng Schedule

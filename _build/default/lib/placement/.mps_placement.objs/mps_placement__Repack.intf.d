lib/placement/repack.mli: Dims Mps_geometry Rect

lib/placement/expand.ml: Array Block Circuit Dimbox Dims Interval Mps_geometry Mps_netlist Placement Rect

lib/placement/seq_pair.ml: Array Dims Format Fun Mps_geometry Mps_rng Printf Rect Rng

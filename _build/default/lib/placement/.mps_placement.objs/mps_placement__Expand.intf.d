lib/placement/expand.mli: Circuit Dimbox Dims Mps_geometry Mps_netlist Placement

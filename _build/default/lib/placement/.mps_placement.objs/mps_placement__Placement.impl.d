lib/placement/placement.ml: Array Circuit Dims Format List Mps_geometry Mps_netlist Mps_rng Printf Rect Rng

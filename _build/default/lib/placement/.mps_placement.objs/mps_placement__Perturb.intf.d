lib/placement/perturb.mli: Circuit Mps_netlist Mps_rng Placement Rng

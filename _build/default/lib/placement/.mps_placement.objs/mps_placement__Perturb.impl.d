lib/placement/perturb.ml: Array Circuit Dims List Mps_geometry Mps_netlist Mps_rng Placement Rect Rng

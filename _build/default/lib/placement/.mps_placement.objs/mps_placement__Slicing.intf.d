lib/placement/slicing.mli: Dims Format Mps_geometry Mps_rng Rect Rng

lib/placement/repack.ml: Array Dims Fun Int Mps_geometry Rect

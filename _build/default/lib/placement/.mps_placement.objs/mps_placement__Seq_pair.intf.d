lib/placement/seq_pair.mli: Dims Format Mps_geometry Mps_rng Rect Rng

lib/placement/slicing.ml: Array Dims Format List Mps_geometry Mps_rng Rect Rng

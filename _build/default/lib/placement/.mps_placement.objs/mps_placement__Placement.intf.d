lib/placement/placement.mli: Circuit Dims Format Mps_geometry Mps_netlist Mps_rng Rect Rng

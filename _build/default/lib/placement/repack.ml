open Mps_geometry

(* Translate the packed floorplan back toward the origin so it fits the
   die when its bounding box allows (independently per axis). *)
let fit_die ~die_w ~die_h rects =
  match Rect.bounding_box (Array.to_list rects) with
  | None -> rects
  | Some bb ->
    let shift extent lo hi die =
      if extent <= die then -(max 0 (hi - die)) |> max (-lo) else -lo
    in
    let dx = shift bb.Rect.w bb.Rect.x (Rect.right bb) die_w in
    let dy = shift bb.Rect.h bb.Rect.y (Rect.top bb) die_h in
    if dx = 0 && dy = 0 then rects else Array.map (Rect.translate ~dx ~dy) rects

let instantiate ?die ~coords dims =
  let n = Array.length coords in
  if Dims.n_blocks dims <> n then invalid_arg "Repack.instantiate: block count mismatch";
  let order = Array.init n Fun.id in
  Array.sort
    (fun i j ->
      let xi, yi = coords.(i) and xj, yj = coords.(j) in
      match Int.compare xi xj with 0 -> Int.compare yi yj | c -> c)
    order;
  let placed = Array.make n None in
  let place i =
    let x, y = coords.(i) in
    let w = Dims.width dims i and h = Dims.height dims i in
    let rec settle y =
      let candidate = Rect.make ~x ~y ~w ~h in
      let clash =
        Array.exists (function Some r -> Rect.overlaps candidate r | None -> false) placed
      in
      if clash then settle (y + 1) else candidate
    in
    placed.(i) <- Some (settle y)
  in
  Array.iter place order;
  let rects = Array.map (function Some r -> r | None -> assert false) placed in
  match die with
  | None -> rects
  | Some (die_w, die_h) -> fit_die ~die_w ~die_h rects

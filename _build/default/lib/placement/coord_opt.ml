open Mps_rng
open Mps_geometry
open Mps_netlist
open Mps_anneal

type config = {
  iterations : int;
  schedule : Schedule.t;
  weights : Mps_cost.Cost.weights;
  swap_probability : float;
  max_shift_fraction : float;
}

let default_config =
  {
    iterations = 4000;
    schedule = Schedule.geometric ~t0:2000.0 ~alpha:0.995 ~t_min:1e-3 ();
    weights = Mps_cost.Cost.default_weights;
    swap_probability = 0.25;
    max_shift_fraction = 0.5;
  }

type result = {
  placement : Placement.t;
  rects : Rect.t array;
  cost : float;
  legal : bool;
  evaluations : int;
}

let optimize ?(config = default_config) ?initial ~rng circuit ~die_w ~die_h dims =
  let n = Circuit.n_blocks circuit in
  if Dims.n_blocks dims <> n then invalid_arg "Coord_opt.optimize: block count mismatch";
  let max_shift =
    max 1 (int_of_float (config.max_shift_fraction *. float_of_int (max die_w die_h)))
  in
  let rects_of coords =
    Array.mapi
      (fun i (x, y) -> Rect.make ~x ~y ~w:(Dims.width dims i) ~h:(Dims.height dims i))
      coords
  in
  let cost coords =
    Mps_cost.Cost.total ~weights:config.weights circuit ~die_w ~die_h (rects_of coords)
  in
  let clamp_pos i (x, y) =
    ( max 0 (min x (die_w - Dims.width dims i)),
      max 0 (min y (die_h - Dims.height dims i)) )
  in
  let neighbor rng coords =
    let coords = Array.copy coords in
    if n >= 2 && Rng.bernoulli rng config.swap_probability then begin
      let i = Rng.int rng n in
      let j = (i + 1 + Rng.int rng (n - 1)) mod n in
      let tmp = coords.(i) in
      coords.(i) <- clamp_pos i coords.(j);
      coords.(j) <- clamp_pos j tmp
    end
    else begin
      let i = Rng.int rng n in
      let x, y = coords.(i) in
      coords.(i) <-
        clamp_pos i
          ( x + Rng.int_in rng (-max_shift) max_shift,
            y + Rng.int_in rng (-max_shift) max_shift )
    end;
    coords
  in
  let initial =
    match initial with
    | Some coords ->
      if Array.length coords <> n then invalid_arg "Coord_opt.optimize: bad initial";
      Array.mapi (fun i pos -> clamp_pos i pos) coords
    | None ->
      Array.init n (fun i ->
          ( Rng.int_in rng 0 (max 0 (die_w - Dims.width dims i)),
            Rng.int_in rng 0 (max 0 (die_h - Dims.height dims i)) ))
  in
  let sa =
    Annealer.run ~rng ~schedule:config.schedule ~iterations:config.iterations
      { Annealer.initial; cost; neighbor }
  in
  let rects = rects_of sa.Annealer.best in
  {
    placement = Placement.make ~coords:sa.Annealer.best ~die_w ~die_h;
    rects;
    cost = sa.Annealer.best_cost;
    legal = Mps_cost.Cost.is_legal ~die_w ~die_h rects;
    evaluations = sa.Annealer.evaluations;
  }

(** Cooling schedules for simulated annealing. *)

type t =
  | Geometric of { t0 : float; alpha : float; t_min : float }
      (** [t(k) = max t_min (t0 * alpha^k)]; the classic schedule. *)
  | Linear of { t0 : float; steps : int; t_min : float }
      (** Linear ramp from [t0] to [t_min] over [steps] iterations. *)
  | Constant of float  (** Fixed temperature (degenerates to Metropolis). *)

val geometric : ?t0:float -> ?alpha:float -> ?t_min:float -> unit -> t
(** Defaults: [t0 = 1000.], [alpha = 0.98], [t_min = 1e-3]. *)

val temperature : t -> step:int -> float
(** Temperature at iteration [step >= 0]; always [> 0]. *)

val pp : Format.formatter -> t -> unit

lib/anneal/schedule.ml: Float Format

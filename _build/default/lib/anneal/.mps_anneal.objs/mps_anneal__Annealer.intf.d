lib/anneal/annealer.mli: Mps_rng Rng Schedule

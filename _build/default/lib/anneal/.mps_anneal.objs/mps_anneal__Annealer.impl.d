lib/anneal/annealer.ml: Mps_rng Rng Schedule

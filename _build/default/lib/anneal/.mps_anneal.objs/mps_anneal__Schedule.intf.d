lib/anneal/schedule.mli: Format

(** Generic simulated-annealing engine.

    Both halves of the paper's nested algorithm — the Placement Explorer
    (§3.1, states are block coordinate assignments) and the Block
    Dimensions-Interval Optimizer (§3.2, states are concrete dimension
    vectors) — are instances of this engine, as is the KOAN/ANAGRAM-style
    baseline placer. *)

open Mps_rng

(** A problem instance over states of type ['a]. *)
type 'a problem = {
  initial : 'a;
  cost : 'a -> float;  (** Smaller is better. *)
  neighbor : Rng.t -> 'a -> 'a;  (** Random perturbation of a state. *)
}

(** Outcome statistics.  [average_cost] is the mean cost over every
    state evaluated during the run — the quantity the BDIO reports back
    to the explorer (paper §3.2). *)
type 'a result = {
  best : 'a;
  best_cost : float;
  final : 'a;  (** Last accepted state. *)
  final_cost : float;
  average_cost : float;
  evaluations : int;
  acceptances : int;
}

val run :
  ?on_accept:('a -> cost:float -> step:int -> unit) ->
  ?should_stop:(best_cost:float -> step:int -> bool) ->
  rng:Rng.t ->
  schedule:Schedule.t ->
  iterations:int ->
  'a problem ->
  'a result
(** Metropolis acceptance: a candidate with cost increase [dc] at
    temperature [T] is accepted with probability [exp (-. dc /. T)]
    (always when [dc <= 0]).  [on_accept] fires on every acceptance;
    [should_stop] is polled each iteration and ends the run early when
    it returns [true].  [iterations] must be non-negative; the initial
    state counts as one evaluation. *)

type t =
  | Geometric of { t0 : float; alpha : float; t_min : float }
  | Linear of { t0 : float; steps : int; t_min : float }
  | Constant of float

let geometric ?(t0 = 1000.0) ?(alpha = 0.98) ?(t_min = 1e-3) () =
  if t0 <= 0.0 || alpha <= 0.0 || alpha >= 1.0 || t_min <= 0.0 then
    invalid_arg "Schedule.geometric: need t0 > 0, 0 < alpha < 1, t_min > 0";
  Geometric { t0; alpha; t_min }

let temperature t ~step =
  if step < 0 then invalid_arg "Schedule.temperature: negative step";
  match t with
  | Geometric { t0; alpha; t_min } -> Float.max t_min (t0 *. (alpha ** float_of_int step))
  | Linear { t0; steps; t_min } ->
    if step >= steps then t_min
    else
      let f = float_of_int step /. float_of_int steps in
      Float.max t_min (t0 +. ((t_min -. t0) *. f))
  | Constant temp -> Float.max 1e-12 temp

let pp fmt = function
  | Geometric { t0; alpha; t_min } ->
    Format.fprintf fmt "geometric(t0=%g alpha=%g t_min=%g)" t0 alpha t_min
  | Linear { t0; steps; t_min } ->
    Format.fprintf fmt "linear(t0=%g steps=%d t_min=%g)" t0 steps t_min
  | Constant temp -> Format.fprintf fmt "constant(%g)" temp

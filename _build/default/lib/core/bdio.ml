open Mps_rng
open Mps_geometry
open Mps_placement
open Mps_anneal

type shrink_rule =
  | Cost_ratio
  | Fixed of float
  | No_shrink

type config = {
  iterations : int;
  perturb_fraction : float;
  schedule : Schedule.t;
  weights : Mps_cost.Cost.weights;
  shrink : shrink_rule;
}

let default_config =
  {
    iterations = 400;
    perturb_fraction = 0.3;
    schedule = Schedule.geometric ~t0:200.0 ~alpha:0.97 ~t_min:1e-3 ();
    weights = Mps_cost.Cost.default_weights;
    shrink = Cost_ratio;
  }

type result = {
  box : Dimbox.t;
  avg_cost : float;
  best_cost : float;
  best_dims : Dims.t;
}

let cost_of_dims ~weights circuit placement dims =
  let rects = Placement.rects placement dims in
  Mps_cost.Cost.total ~weights circuit ~die_w:placement.Placement.die_w
    ~die_h:placement.Placement.die_h rects

(* Redraw a random subset of the 2N axes uniformly inside their
   intervals (the Dimensions Selector's perturbation). *)
let neighbor_dims ~box ~fraction rng dims =
  let n = Dims.n_blocks dims in
  let n_axes = 2 * n in
  let k = max 1 (int_of_float (ceil (fraction *. float_of_int n_axes))) in
  let victims = Rng.sample_distinct rng ~k ~n:n_axes in
  let redraw dims axis =
    if axis < n then
      let iv = Dimbox.w_interval box axis in
      Dims.set_width dims axis (Rng.int_in rng (Interval.lo iv) (Interval.hi iv))
    else
      let i = axis - n in
      let iv = Dimbox.h_interval box i in
      Dims.set_height dims i (Rng.int_in rng (Interval.lo iv) (Interval.hi iv))
  in
  List.fold_left redraw dims victims

let shrink_interval ~factor iv best =
  let half =
    int_of_float (ceil (factor *. float_of_int (Interval.length iv) /. 2.0))
  in
  let lo = max (Interval.lo iv) (best - half) in
  let hi = min (Interval.hi iv) (best + half) in
  Interval.make (min lo best) (max hi best)

let shrink_box ~rule ~box ~best_dims ~avg_cost ~best_cost =
  match rule with
  | No_shrink -> box
  | Cost_ratio | Fixed _ ->
    let factor =
      match rule with
      | Fixed f ->
        if f <= 0.0 || f > 1.0 then invalid_arg "Bdio.shrink_box: factor must be in (0,1]";
        f
      | Cost_ratio ->
        if avg_cost <= 0.0 then 1.0
        else Float.min 1.0 (Float.max 0.0 (best_cost /. avg_cost))
      | No_shrink -> assert false
    in
    let n = Dimbox.n_blocks box in
    let w =
      Array.init n (fun i ->
          shrink_interval ~factor (Dimbox.w_interval box i) (Dims.width best_dims i))
    in
    let h =
      Array.init n (fun i ->
          shrink_interval ~factor (Dimbox.h_interval box i) (Dims.height best_dims i))
    in
    Dimbox.make ~w ~h

let optimize ?(config = default_config) ~rng circuit placement ~box =
  if config.iterations < 1 then invalid_arg "Bdio.optimize: need at least one iteration";
  let cost dims = cost_of_dims ~weights:config.weights circuit placement dims in
  let problem =
    {
      Annealer.initial = Dimbox.random_dims rng box;
      cost;
      neighbor = neighbor_dims ~box ~fraction:config.perturb_fraction;
    }
  in
  let sa =
    Annealer.run ~rng ~schedule:config.schedule ~iterations:config.iterations problem
  in
  let reduced =
    shrink_box ~rule:config.shrink ~box ~best_dims:sa.Annealer.best
      ~avg_cost:sa.Annealer.average_cost ~best_cost:sa.Annealer.best_cost
  in
  {
    box = reduced;
    avg_cost = sa.Annealer.average_cost;
    best_cost = sa.Annealer.best_cost;
    best_dims = sa.Annealer.best;
  }

(** Persistence for compiled multi-placement structures.

    The whole point of a multi-placement structure is that it is
    generated {e once} per circuit topology (paper Fig. 1a) and reused
    across synthesis runs, so it must survive the process.  The format
    is a line-oriented text file; the circuit itself is not stored —
    loading requires the same circuit and validates its identity (name,
    block count and dimension bounds, net count). *)

open Mps_netlist

val to_string : Structure.t -> string
(** Serialize (identity header + die + every stored placement). *)

val of_string : circuit:Circuit.t -> string -> Structure.t
(** Parse and recompile.  @raise Failure on a malformed document or a
    circuit mismatch. *)

val save : Structure.t -> path:string -> unit

val load : circuit:Circuit.t -> path:string -> Structure.t
(** @raise Sys_error when the file cannot be read; @raise Failure on a
    malformed document or circuit mismatch. *)

open Mps_geometry
open Mps_netlist
open Mps_placement

let magic = "mps-structure v1"

let box_lines prefix box =
  let n = Dimbox.n_blocks box in
  let per axis_interval =
    String.concat " "
      (List.init n (fun i ->
           let iv = axis_interval i in
           Printf.sprintf "%d %d" (Interval.lo iv) (Interval.hi iv)))
  in
  [
    Printf.sprintf "%s.w %s" prefix (per (Dimbox.w_interval box));
    Printf.sprintf "%s.h %s" prefix (per (Dimbox.h_interval box));
  ]

let to_string structure =
  let circuit = Structure.circuit structure in
  let die_w, die_h = Structure.die structure in
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%s" magic;
  line "circuit %d %d %s" (Circuit.n_blocks circuit) (Circuit.n_nets circuit)
    circuit.Circuit.name;
  line "die %d %d" die_w die_h;
  let write_placement s =
    line "placement %.17g %.17g %d" s.Stored.avg_cost s.Stored.best_cost
      (if s.Stored.template_like then 1 else 0);
    line "coords %s"
      (String.concat " "
         (List.map
            (fun (x, y) -> Printf.sprintf "%d %d" x y)
            (Array.to_list s.Stored.placement.Placement.coords)));
    List.iter (line "%s") (box_lines "box" s.Stored.box);
    List.iter (line "%s") (box_lines "expansion" s.Stored.expansion);
    let n = Stored.n_blocks s in
    line "best_dims %s"
      (String.concat " "
         (List.init n (fun i ->
              Printf.sprintf "%d %d" (Dims.width s.Stored.best_dims i)
                (Dims.height s.Stored.best_dims i))))
  in
  let stored = Structure.placements structure in
  line "placements %d" (Array.length stored);
  Array.iter write_placement stored;
  line "backup";
  write_placement (Structure.backup structure);
  Buffer.contents buf

(* Parsing *)

type cursor = { mutable lines : string list; mutable lineno : int }

let fail cursor fmt =
  Printf.ksprintf (fun s -> failwith (Printf.sprintf "Codec: line %d: %s" cursor.lineno s)) fmt

let next cursor =
  match cursor.lines with
  | [] -> fail cursor "unexpected end of document"
  | l :: rest ->
    cursor.lines <- rest;
    cursor.lineno <- cursor.lineno + 1;
    l

let expect_prefix cursor prefix =
  let l = next cursor in
  match String.length l >= String.length prefix && String.sub l 0 (String.length prefix) = prefix with
  | true -> String.trim (String.sub l (String.length prefix) (String.length l - String.length prefix))
  | false -> fail cursor "expected %S, got %S" prefix l

let ints_of cursor s =
  List.map
    (fun tok ->
      match int_of_string_opt tok with
      | Some v -> v
      | None -> fail cursor "expected an integer, got %S" tok)
    (String.split_on_char ' ' (String.trim s) |> List.filter (fun t -> t <> ""))

let pairs_of cursor s =
  let rec pair_up = function
    | [] -> []
    | a :: b :: rest -> (a, b) :: pair_up rest
    | [ _ ] -> fail cursor "odd number of integers"
  in
  pair_up (ints_of cursor s)

let intervals_of cursor n s =
  let pairs = pairs_of cursor s in
  if List.length pairs <> n then fail cursor "expected %d intervals, got %d" n (List.length pairs);
  Array.of_list
    (List.map
       (fun (lo, hi) ->
         if lo > hi then fail cursor "inverted interval %d..%d" lo hi
         else Interval.make lo hi)
       pairs)

let box_of cursor n prefix =
  let w = intervals_of cursor n (expect_prefix cursor (prefix ^ ".w ")) in
  let h = intervals_of cursor n (expect_prefix cursor (prefix ^ ".h ")) in
  Dimbox.make ~w ~h

let of_string ~circuit s =
  let cursor = { lines = String.split_on_char '\n' s; lineno = 0 } in
  let header = next cursor in
  if header <> magic then failwith (Printf.sprintf "Codec: bad header %S" header);
  let id = expect_prefix cursor "circuit " in
  (match String.split_on_char ' ' id with
  | blocks :: nets :: name_parts ->
    let name = String.concat " " name_parts in
    if
      int_of_string_opt blocks <> Some (Circuit.n_blocks circuit)
      || int_of_string_opt nets <> Some (Circuit.n_nets circuit)
      || name <> circuit.Circuit.name
    then
      failwith
        (Printf.sprintf "Codec: structure was generated for %s (%s blocks), not %s" name
           blocks circuit.Circuit.name)
  | _ -> fail cursor "malformed circuit line");
  let die = ints_of cursor (expect_prefix cursor "die ") in
  let die_w, die_h =
    match die with [ w; h ] -> (w, h) | _ -> fail cursor "malformed die line"
  in
  let count =
    match ints_of cursor (expect_prefix cursor "placements ") with
    | [ c ] when c > 0 -> c
    | _ -> fail cursor "malformed placements line"
  in
  let n = Circuit.n_blocks circuit in
  let read_placement () =
    let costs = expect_prefix cursor "placement " in
    let avg_cost, best_cost, template_like =
      match
        String.split_on_char ' ' (String.trim costs)
        |> List.filter (fun t -> t <> "")
        |> List.map float_of_string_opt
      with
      | [ Some a; Some b; Some flag ] -> (a, b, flag <> 0.0)
      | _ -> fail cursor "malformed placement costs"
    in
    let coords = pairs_of cursor (expect_prefix cursor "coords ") in
    if List.length coords <> n then fail cursor "expected %d coordinates" n;
    let box = box_of cursor n "box" in
    let expansion = box_of cursor n "expansion" in
    let best_pairs = pairs_of cursor (expect_prefix cursor "best_dims ") in
    if List.length best_pairs <> n then fail cursor "expected %d best dims" n;
    let best_dims = Dims.of_pairs (Array.of_list best_pairs) in
    let placement = Placement.make ~coords:(Array.of_list coords) ~die_w ~die_h in
    match
      Stored.make ~template_like ~placement ~box ~expansion ~avg_cost ~best_cost
        ~best_dims
    with
    | s -> s
    | exception Invalid_argument msg -> fail cursor "inconsistent placement: %s" msg
  in
  let stored = Array.init count (fun _ -> read_placement ()) in
  let backup =
    match next cursor with
    | "backup" -> read_placement ()
    | other -> fail cursor "expected backup section, got %S" other
  in
  match Structure.of_placements ~backup circuit stored with
  | s -> s
  | exception Invalid_argument msg -> failwith (Printf.sprintf "Codec: %s" msg)

let save structure ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string structure))

let load ~circuit ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      of_string ~circuit s)

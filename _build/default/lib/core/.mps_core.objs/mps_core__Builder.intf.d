lib/core/builder.mli: Circuit Dimbox Mps_geometry Mps_netlist Row Stored

lib/core/bitset.ml: Array List Printf Sys

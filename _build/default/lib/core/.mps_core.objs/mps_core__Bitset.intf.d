lib/core/bitset.mli:

lib/core/bdio.mli: Circuit Dimbox Dims Mps_anneal Mps_cost Mps_geometry Mps_netlist Mps_placement Mps_rng Placement Rng

lib/core/row.mli: Format Mps_geometry Set

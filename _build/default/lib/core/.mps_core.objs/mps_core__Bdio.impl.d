lib/core/bdio.ml: Annealer Array Dimbox Dims Float Interval List Mps_anneal Mps_cost Mps_geometry Mps_placement Mps_rng Placement Rng Schedule

lib/core/generator.mli: Bdio Builder Circuit Mps_anneal Mps_netlist Structure

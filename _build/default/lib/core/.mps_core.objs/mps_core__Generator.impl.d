lib/core/generator.ml: Bdio Builder Circuit Coord_opt Dimbox Expand Float Mps_anneal Mps_cost Mps_geometry Mps_netlist Mps_placement Mps_rng Perturb Placement Repack Rng Schedule Stored Structure Sys

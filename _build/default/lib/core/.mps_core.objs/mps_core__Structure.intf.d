lib/core/structure.mli: Builder Circuit Dims Mps_cost Mps_geometry Mps_netlist Rect Stored

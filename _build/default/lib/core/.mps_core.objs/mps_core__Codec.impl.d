lib/core/codec.ml: Array Buffer Circuit Dimbox Dims Fun Interval List Mps_geometry Mps_netlist Mps_placement Placement Printf Stored String Structure

lib/core/structure.ml: Array Bitset Buffer Builder Circuit Dimbox Dims Interval List Mps_cost Mps_geometry Mps_netlist Mps_placement Mps_rng Printf Row Stored

lib/core/builder.ml: Array Circuit Dimbox Int Interval List Mps_geometry Mps_netlist Option Queue Row Stored

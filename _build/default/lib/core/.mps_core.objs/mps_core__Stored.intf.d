lib/core/stored.mli: Dimbox Dims Format Mps_geometry Mps_placement Placement Rect

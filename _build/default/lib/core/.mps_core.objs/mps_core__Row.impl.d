lib/core/row.ml: Format Int Interval List Mps_geometry Set String

lib/core/stored.ml: Dimbox Dims Format Mps_geometry Mps_placement Placement Repack

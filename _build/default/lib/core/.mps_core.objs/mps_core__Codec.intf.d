lib/core/codec.mli: Circuit Mps_netlist Structure

type t =
  | Mos of { w_um : float; l_um : float }
  | Mos_pair of { w_um : float; l_um : float }
  | Mos_quad of { w_um : float; l_um : float }
  | Capacitor of { c_ff : float }
  | Resistor of { r_ohm : float }

let scale t k =
  if k <= 0.0 then invalid_arg "Device.scale: non-positive factor";
  match t with
  | Mos { w_um; l_um } -> Mos { w_um = w_um *. k; l_um }
  | Mos_pair { w_um; l_um } -> Mos_pair { w_um = w_um *. k; l_um }
  | Mos_quad { w_um; l_um } -> Mos_quad { w_um = w_um *. k; l_um }
  | Capacitor { c_ff } -> Capacitor { c_ff = c_ff *. k }
  | Resistor { r_ohm } -> Resistor { r_ohm = r_ohm *. k }

let gate_area_um2 = function
  | Mos { w_um; l_um } -> w_um *. l_um
  | Mos_pair { w_um; l_um } -> 2.0 *. w_um *. l_um
  | Mos_quad { w_um; l_um } -> 4.0 *. w_um *. l_um
  | Capacitor { c_ff } ->
    (* plate area at the default density: 1 fF = 1000 aF over 1000 aF/µm² *)
    c_ff
  | Resistor { r_ohm } ->
    (* strips of 50 Ω/sq, 0.7 µm wide: area = squares * width² *)
    r_ohm /. 50.0 *. 0.49

let pp fmt = function
  | Mos { w_um; l_um } -> Format.fprintf fmt "mos(W=%.2fu L=%.2fu)" w_um l_um
  | Mos_pair { w_um; l_um } -> Format.fprintf fmt "pair(W=%.2fu L=%.2fu)" w_um l_um
  | Mos_quad { w_um; l_um } -> Format.fprintf fmt "quad(W=%.2fu L=%.2fu)" w_um l_um
  | Capacitor { c_ff } -> Format.fprintf fmt "cap(%.1ffF)" c_ff
  | Resistor { r_ohm } -> Format.fprintf fmt "res(%.0fohm)" r_ohm

let to_string t = Format.asprintf "%a" pp t

(** Process description used by the module generators.

    All layout dimensions produced by this library are in integer grid
    units of [grid_nm] nanometres.  The constants are loosely modelled on
    a generic 0.35 µm analog CMOS process; their absolute values only set
    the scale of the experiments, not their shape. *)

type t = {
  grid_nm : int;  (** Layout grid pitch in nm (one integer unit). *)
  finger_pitch_nm : int;
      (** Horizontal pitch of one MOS finger: gate + source/drain
          contacts + spacing. *)
  diff_overhead_nm : int;
      (** Vertical overhead per folded MOS row: well ties, guard ring. *)
  cap_density_af_um2 : float;  (** MiM capacitance density, aF/µm². *)
  sheet_res_ohm : float;  (** Poly sheet resistance, Ω/sq. *)
  res_strip_width_nm : int;  (** Width of one serpentine resistor strip. *)
  res_strip_gap_nm : int;  (** Gap between adjacent strips. *)
}

val default : t
(** Generic 0.35 µm-class analog process. *)

val to_grid : t -> float -> int
(** [to_grid p nm] converts nanometres to grid units, rounding up and
    never below 1. *)

val um_to_grid : t -> float -> int
(** Convenience: micrometres to grid units. *)

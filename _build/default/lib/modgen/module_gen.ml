open Mps_geometry

let max_fingers = 32

(* Height of one MOS finger must stay in a practical band. *)
let min_finger_um = 1.0
let max_finger_um = 60.0

let cap_aspects = [ 0.5; 0.67; 1.0; 1.5; 2.0 ]

let mos_realizations process ~w_um ~l_um ~devices ~columns =
  (* [devices] matched copies interdigitated over [columns * nf] fingers. *)
  let pitch_nm = float_of_int process.Process.finger_pitch_nm in
  let overhead_nm = float_of_int process.Process.diff_overhead_nm in
  let rec loop nf acc =
    if nf > max_fingers then acc
    else
      let finger_w_um = w_um /. float_of_int nf in
      let acc =
        if finger_w_um >= min_finger_um && finger_w_um <= max_finger_um then begin
          let n_fingers_total = nf * devices * columns in
          let width_nm =
            (float_of_int n_fingers_total *. pitch_nm) +. (2.0 *. l_um *. 1000.0)
          in
          let height_nm = (finger_w_um *. 1000.0 /. float_of_int columns) +. overhead_nm in
          (Process.to_grid process width_nm, Process.to_grid process height_nm) :: acc
        end
        else acc
      in
      loop (nf + 1) acc
  in
  let all = loop 1 [] in
  (* Always offer at least the single-finger version, even for very wide
     devices, so no device is unrealizable. *)
  if all <> [] then all
  else
    let width_nm = (float_of_int (devices * columns) *. pitch_nm) +. (2.0 *. l_um *. 1000.0) in
    let height_nm = (w_um *. 1000.0 /. float_of_int columns) +. overhead_nm in
    [ (Process.to_grid process width_nm, Process.to_grid process height_nm) ]

let cap_realizations process ~c_ff =
  let area_um2 = c_ff *. 1000.0 /. process.Process.cap_density_af_um2 in
  let area_um2 = max 1.0 area_um2 in
  let realize aspect =
    let w_um = sqrt (area_um2 *. aspect) in
    let h_um = area_um2 /. w_um in
    (Process.um_to_grid process w_um, Process.um_to_grid process h_um)
  in
  List.map realize cap_aspects

let res_realizations process ~r_ohm =
  let squares = max 1.0 (r_ohm /. process.Process.sheet_res_ohm) in
  let strip_w_nm = float_of_int process.Process.res_strip_width_nm in
  let pitch_nm = strip_w_nm +. float_of_int process.Process.res_strip_gap_nm in
  let total_len_nm = squares *. strip_w_nm in
  let rec loop strips acc =
    if strips > 16 then acc
    else
      let seg_len_nm = total_len_nm /. float_of_int strips in
      let acc =
        if seg_len_nm >= 2.0 *. strip_w_nm then
          (Process.to_grid process (float_of_int strips *. pitch_nm),
           Process.to_grid process seg_len_nm)
          :: acc
        else acc
      in
      loop (strips + 1) acc
  in
  match loop 1 [] with
  | [] -> [ (Process.to_grid process pitch_nm, Process.to_grid process total_len_nm) ]
  | l -> l

let realizations process device =
  let raw =
    match device with
    | Device.Mos { w_um; l_um } ->
      mos_realizations process ~w_um ~l_um ~devices:1 ~columns:1
    | Device.Mos_pair { w_um; l_um } ->
      mos_realizations process ~w_um ~l_um ~devices:2 ~columns:1
    | Device.Mos_quad { w_um; l_um } ->
      mos_realizations process ~w_um ~l_um ~devices:2 ~columns:2
    | Device.Capacitor { c_ff } -> cap_realizations process ~c_ff
    | Device.Resistor { r_ohm } -> res_realizations process ~r_ohm
  in
  List.sort_uniq compare raw

let realize process device ~aspect_hint =
  if aspect_hint <= 0.0 then invalid_arg "Module_gen.realize: non-positive aspect hint";
  let candidates = realizations process device in
  let log_hint = log aspect_hint in
  let score (w, h) = abs_float (log (float_of_int w /. float_of_int h) -. log_hint) in
  match candidates with
  | [] -> assert false
  | first :: rest ->
    let f best c = if score c < score best then c else best in
    List.fold_left f first rest

let bounds process device =
  let candidates = realizations process device in
  let ws = List.map fst candidates and hs = List.map snd candidates in
  let min_of l = List.fold_left min max_int l and max_of l = List.fold_left max 0 l in
  (Interval.make (min_of ws) (max_of ws), Interval.make (min_of hs) (max_of hs))

let block_of_device process ~id ~name device =
  let w_bounds, h_bounds = bounds process device in
  Mps_netlist.Block.make ~id ~name ~w_bounds ~h_bounds

let dims_of_devices process devices ~aspect_hints =
  let n = Array.length devices in
  if Array.length aspect_hints <> n then
    invalid_arg "Module_gen.dims_of_devices: array length mismatch";
  let dims = Array.init n (fun i -> realize process devices.(i) ~aspect_hint:aspect_hints.(i)) in
  Dims.of_pairs dims

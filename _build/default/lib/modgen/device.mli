(** Device-level descriptions of analog modules.

    A device is what the sizing optimizer manipulates; the module
    generator ({!Module_gen}) turns it into realizable block dimensions.
    Electrical sizes are in conventional units (µm, fF, Ω). *)

type t =
  | Mos of { w_um : float; l_um : float }
      (** Single MOS transistor: total gate width and length. *)
  | Mos_pair of { w_um : float; l_um : float }
      (** Matched pair (differential pair, simple mirror): two devices of
          [w_um] each, laid out interdigitated. *)
  | Mos_quad of { w_um : float; l_um : float }
      (** Cross-coupled quad (common-centroid): four matched devices. *)
  | Capacitor of { c_ff : float }  (** MiM capacitor. *)
  | Resistor of { r_ohm : float }  (** Serpentine poly resistor. *)

val scale : t -> float -> t
(** [scale d k] multiplies the electrical size ([w_um], [c_ff] or
    [r_ohm]) by [k > 0]; gate length is left unchanged. *)

val gate_area_um2 : t -> float
(** Total active gate area for MOS devices, plate area for capacitors,
    strip area for resistors (µm²). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Procedural module generators.

    This is the substitute for the BALLISTIC / MSL layout generators the
    paper relies on (§1, §2.1): for each device it enumerates the
    *realizable* block dimensions — one per folding choice — and supplies
    the designer min/max dimension bounds the multi-placement structure
    is generated against.

    A MOS of total gate width [W] folded into [nf] fingers occupies
    roughly [nf × finger_pitch] horizontally and [W/nf + overhead]
    vertically, so different foldings trade width for height at constant
    active area; capacitors and resistors offer analogous aspect-ratio
    menus.  This variety is exactly what makes a single fixed template
    sub-optimal and a multi-placement structure worthwhile. *)

open Mps_geometry

val max_fingers : int
(** Upper bound on folding explored (32). *)

val realizations : Process.t -> Device.t -> (int * int) list
(** All realizable [(width, height)] grid dimensions for the device,
    one per folding / aspect choice, sorted by increasing width, without
    duplicates.  The list is never empty. *)

val realize : Process.t -> Device.t -> aspect_hint:float -> int * int
(** The realization whose aspect ratio [w/h] is closest (in log space)
    to [aspect_hint].  @raise Invalid_argument if [aspect_hint <= 0]. *)

val bounds : Process.t -> Device.t -> Interval.t * Interval.t
(** [(w_bounds, h_bounds)]: the designer dimension bounds spanned by the
    realizations of this device. *)

val block_of_device :
  Process.t -> id:int -> name:string -> Device.t -> Mps_netlist.Block.t
(** Block whose dimension bounds cover every realization of the device. *)

val dims_of_devices :
  Process.t -> Device.t array -> aspect_hints:float array -> Dims.t
(** Realize one device per block with per-block aspect hints — the
    "translate the proposed device sizes into widths and heights of the
    modules" step of the paper's synthesis loop.
    @raise Invalid_argument when array lengths differ. *)

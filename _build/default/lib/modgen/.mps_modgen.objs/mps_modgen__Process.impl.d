lib/modgen/process.ml:

lib/modgen/process.mli:

lib/modgen/module_gen.ml: Array Device Dims Interval List Mps_geometry Mps_netlist Process

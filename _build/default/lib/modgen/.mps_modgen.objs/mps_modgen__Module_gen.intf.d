lib/modgen/module_gen.mli: Device Dims Interval Mps_geometry Mps_netlist Process

lib/modgen/device.ml: Format

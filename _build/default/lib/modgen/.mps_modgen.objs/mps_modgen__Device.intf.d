lib/modgen/device.mli: Format

type t = {
  grid_nm : int;
  finger_pitch_nm : int;
  diff_overhead_nm : int;
  cap_density_af_um2 : float;
  sheet_res_ohm : float;
  res_strip_width_nm : int;
  res_strip_gap_nm : int;
}

let default =
  {
    grid_nm = 350;
    finger_pitch_nm = 1400;
    diff_overhead_nm = 2800;
    cap_density_af_um2 = 1000.0;
    sheet_res_ohm = 50.0;
    res_strip_width_nm = 700;
    res_strip_gap_nm = 700;
  }

let to_grid t nm =
  let units = int_of_float (ceil (nm /. float_of_int t.grid_nm)) in
  max 1 units

let um_to_grid t um = to_grid t (um *. 1000.0)

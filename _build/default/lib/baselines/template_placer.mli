(** Template-based placement baseline (BALLISTIC / MOGLAN / MSL class,
    paper §1).

    One fixed arrangement of blocks, tuned once at nominal dimensions.
    Instantiation for new dimensions keeps the template's relative
    order and re-packs greedily, exactly the speed-for-flexibility trade
    the paper criticizes: fast, but every sizing gets the same
    arrangement, optimal or not. *)

open Mps_rng
open Mps_geometry
open Mps_netlist

type t

val build :
  ?iterations:int -> rng:Rng.t -> Circuit.t -> die_w:int -> die_h:int -> t
(** Optimize the fixed arrangement once, at the center of the dimension
    space (the "expert knowledge" step of a template generator),
    with a simulated-annealing pass of [iterations] steps (default
    2000). *)

val nominal_coords : t -> (int * int) array
(** The template's block corners at nominal dimensions. *)

val instantiate : t -> Dims.t -> Rect.t array
(** Re-pack the template for the given dimensions: blocks keep the
    template's left-to-right, bottom-to-top order; any block overlapping
    an earlier one slides up until free.  Always overlap-free; may
    exceed the die for extreme dimensions (the template's rigidity is
    the point). *)

val die : t -> int * int

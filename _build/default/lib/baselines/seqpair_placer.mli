(** Sequence-pair annealing placer.

    A third optimization-based comparator: anneal over the sequence-pair
    move space ({!Mps_placement.Seq_pair}), where every state packs to an
    overlap-free floorplan — the representation used by many classic
    floorplanners.  Typically better-behaved than coordinate annealing
    (no overlap penalties to escape) but equally unusable inside a
    per-candidate sizing loop, which is the gap the multi-placement
    structure fills. *)


open Mps_rng
open Mps_geometry
open Mps_netlist

type config = {
  iterations : int;
  schedule : Mps_anneal.Schedule.t;
  weights : Mps_cost.Cost.weights;
}

val default_config : config
(** 3000 iterations. *)

type result = {
  rects : Rect.t array;
  cost : float;
  legal : bool;  (** Inside the die (packings are always overlap-free). *)
  evaluations : int;
}

val place :
  ?config:config -> rng:Rng.t -> Circuit.t -> die_w:int -> die_h:int -> Dims.t -> result

open Mps_geometry
open Mps_anneal
open Mps_placement

type config = {
  iterations : int;
  schedule : Schedule.t;
  weights : Mps_cost.Cost.weights;
  swap_probability : float;
  max_shift_fraction : float;
}

let default_config =
  {
    iterations = Coord_opt.default_config.Coord_opt.iterations;
    schedule = Coord_opt.default_config.Coord_opt.schedule;
    weights = Coord_opt.default_config.Coord_opt.weights;
    swap_probability = Coord_opt.default_config.Coord_opt.swap_probability;
    max_shift_fraction = Coord_opt.default_config.Coord_opt.max_shift_fraction;
  }

type result = {
  rects : Rect.t array;
  cost : float;
  legal : bool;
  evaluations : int;
}

let place ?(config = default_config) ~rng circuit ~die_w ~die_h dims =
  let coord_config =
    {
      Coord_opt.iterations = config.iterations;
      schedule = config.schedule;
      weights = config.weights;
      swap_probability = config.swap_probability;
      max_shift_fraction = config.max_shift_fraction;
    }
  in
  let r = Coord_opt.optimize ~config:coord_config ~rng circuit ~die_w ~die_h dims in
  {
    rects = r.Coord_opt.rects;
    cost = r.Coord_opt.cost;
    legal = r.Coord_opt.legal;
    evaluations = r.Coord_opt.evaluations;
  }

(** Optimization-based placement baseline (KOAN/ANAGRAM class, paper §1).

    A full simulated-annealing placer run from scratch for one concrete
    dimension vector: moves displace or swap blocks, the cost function
    penalizes overlap and out-of-bounds area so the walk converges to a
    legal floorplan.  Good quality, but far too slow to sit inside a
    sizing loop — which is the gap the multi-placement structure fills. *)

open Mps_rng
open Mps_geometry
open Mps_netlist

type config = {
  iterations : int;
  schedule : Mps_anneal.Schedule.t;
  weights : Mps_cost.Cost.weights;
  swap_probability : float;  (** Chance a move swaps two blocks. *)
  max_shift_fraction : float;  (** Displacement range as a die fraction. *)
}

val default_config : config
(** 4000 iterations — deliberately heavyweight, like the tools it
    stands in for. *)

type result = {
  rects : Rect.t array;
  cost : float;  (** Weighted cost of [rects]. *)
  legal : bool;
  evaluations : int;
}

val place :
  ?config:config -> rng:Rng.t -> Circuit.t -> die_w:int -> die_h:int -> Dims.t -> result
(** Place the circuit with the given concrete dimensions. *)

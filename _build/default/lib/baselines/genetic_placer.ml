open Mps_rng
open Mps_geometry
open Mps_netlist

type config = {
  population : int;
  generations : int;
  tournament : int;
  crossover_rate : float;
  mutation_rate : float;
  elite : int;
  weights : Mps_cost.Cost.weights;
  max_shift_fraction : float;
}

let default_config =
  {
    population = 40;
    generations = 60;
    tournament = 3;
    crossover_rate = 0.9;
    mutation_rate = 0.15;
    elite = 2;
    weights = Mps_cost.Cost.default_weights;
    max_shift_fraction = 0.4;
  }

type result = {
  rects : Rect.t array;
  cost : float;
  legal : bool;
  evaluations : int;
}

let place ?(config = default_config) ~rng circuit ~die_w ~die_h dims =
  let n = Circuit.n_blocks circuit in
  if Dims.n_blocks dims <> n then invalid_arg "Genetic_placer.place: block count mismatch";
  if config.population < 2 || config.elite >= config.population then
    invalid_arg "Genetic_placer.place: bad population/elite";
  let evaluations = ref 0 in
  let rects_of coords =
    Array.mapi
      (fun i (x, y) -> Rect.make ~x ~y ~w:(Dims.width dims i) ~h:(Dims.height dims i))
      coords
  in
  let cost coords =
    incr evaluations;
    Mps_cost.Cost.total ~weights:config.weights circuit ~die_w ~die_h (rects_of coords)
  in
  let clamp_pos i (x, y) =
    ( max 0 (min x (die_w - Dims.width dims i)),
      max 0 (min y (die_h - Dims.height dims i)) )
  in
  let random_individual () =
    Array.init n (fun i ->
        clamp_pos i (Rng.int_in rng 0 (max 0 die_w), Rng.int_in rng 0 (max 0 die_h)))
  in
  let max_shift =
    max 1 (int_of_float (config.max_shift_fraction *. float_of_int (max die_w die_h)))
  in
  let mutate coords =
    Array.mapi
      (fun i pos ->
        if Rng.bernoulli rng config.mutation_rate then
          let x, y = pos in
          clamp_pos i
            ( x + Rng.int_in rng (-max_shift) max_shift,
              y + Rng.int_in rng (-max_shift) max_shift )
        else pos)
      coords
  in
  let crossover a b =
    if Rng.bernoulli rng config.crossover_rate then
      Array.init n (fun i -> if Rng.bool rng then a.(i) else b.(i))
    else Array.copy a
  in
  let pop = Array.init config.population (fun _ -> random_individual ()) in
  let scores = Array.map cost pop in
  let tournament_pick () =
    let best = ref (Rng.int rng config.population) in
    for _ = 2 to config.tournament do
      let c = Rng.int rng config.population in
      if scores.(c) < scores.(!best) then best := c
    done;
    pop.(!best)
  in
  let by_score () =
    let idx = Array.init config.population Fun.id in
    Array.sort (fun i j -> Float.compare scores.(i) scores.(j)) idx;
    idx
  in
  for _gen = 1 to config.generations do
    let ranked = by_score () in
    let next = Array.make config.population pop.(ranked.(0)) in
    for e = 0 to config.elite - 1 do
      next.(e) <- pop.(ranked.(e))
    done;
    for k = config.elite to config.population - 1 do
      let child = mutate (crossover (tournament_pick ()) (tournament_pick ())) in
      next.(k) <- child
    done;
    Array.blit next 0 pop 0 config.population;
    Array.iteri (fun k ind -> scores.(k) <- cost ind) pop
  done;
  let ranked = by_score () in
  let best = pop.(ranked.(0)) in
  let rects = rects_of best in
  {
    rects;
    cost = scores.(ranked.(0));
    legal = Mps_cost.Cost.is_legal ~die_w ~die_h rects;
    evaluations = !evaluations;
  }

(** Slicing-floorplan annealing placer (Wong-Liu).

    A fourth optimization-based comparator: anneal over normalized
    Polish expressions ({!Mps_placement.Slicing}); every state packs to
    an overlap-free slicing floorplan.  Slicing structures are the
    classic template-generator backbone, so this baseline brackets the
    design space from the structured side the way the sequence pair
    does from the unstructured one. *)

open Mps_rng
open Mps_geometry
open Mps_netlist

type config = {
  iterations : int;
  schedule : Mps_anneal.Schedule.t;
  weights : Mps_cost.Cost.weights;
}

val default_config : config
(** 3000 iterations. *)

type result = {
  rects : Rect.t array;
  expression : Mps_placement.Slicing.t;  (** The winning expression. *)
  cost : float;
  legal : bool;
  evaluations : int;
}

val place :
  ?config:config -> rng:Rng.t -> Circuit.t -> die_w:int -> die_h:int -> Dims.t -> result

open Mps_geometry
open Mps_netlist
open Mps_anneal
open Mps_placement

type config = {
  iterations : int;
  schedule : Schedule.t;
  weights : Mps_cost.Cost.weights;
}

let default_config =
  {
    iterations = 3000;
    schedule = Schedule.geometric ~t0:2000.0 ~alpha:0.995 ~t_min:1e-3 ();
    weights = Mps_cost.Cost.default_weights;
  }

type result = {
  rects : Rect.t array;
  cost : float;
  legal : bool;
  evaluations : int;
}

let place ?(config = default_config) ~rng circuit ~die_w ~die_h dims =
  let n = Circuit.n_blocks circuit in
  if Dims.n_blocks dims <> n then invalid_arg "Seqpair_placer.place: block count mismatch";
  let cost sp =
    let rects = Seq_pair.pack sp dims in
    Mps_cost.Cost.total ~weights:config.weights circuit ~die_w ~die_h rects
  in
  let sa =
    Annealer.run ~rng ~schedule:config.schedule ~iterations:config.iterations
      { Annealer.initial = Seq_pair.random rng n; cost; neighbor = Seq_pair.perturb }
  in
  let rects = Seq_pair.pack sa.Annealer.best dims in
  {
    rects;
    cost = sa.Annealer.best_cost;
    legal = Mps_cost.Cost.is_legal ~die_w ~die_h rects;
    evaluations = sa.Annealer.evaluations;
  }

(** Genetic-algorithm placement baseline (Zhang et al., ISCAS 2002
    class; paper §1).

    A second optimization-based comparator: a population of coordinate
    vectors evolved with tournament selection, per-block uniform
    crossover and displacement mutation, under the same penalized cost
    function as the SA placer. *)

open Mps_rng
open Mps_geometry
open Mps_netlist

type config = {
  population : int;
  generations : int;
  tournament : int;  (** Tournament size for parent selection. *)
  crossover_rate : float;
  mutation_rate : float;  (** Per-block chance of a random displacement. *)
  elite : int;  (** Individuals copied unchanged each generation. *)
  weights : Mps_cost.Cost.weights;
  max_shift_fraction : float;
}

val default_config : config
(** Population 40, 60 generations, tournament 3, elitism 2. *)

type result = {
  rects : Rect.t array;
  cost : float;
  legal : bool;
  evaluations : int;
}

val place :
  ?config:config -> rng:Rng.t -> Circuit.t -> die_w:int -> die_h:int -> Dims.t -> result

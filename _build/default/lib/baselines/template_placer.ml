open Mps_geometry
open Mps_netlist

type t = {
  circuit : Circuit.t;
  coords : (int * int) array;
  die_w : int;
  die_h : int;
}

let build ?(iterations = 2000) ~rng circuit ~die_w ~die_h =
  let nominal = Mps_geometry.Dimbox.center (Circuit.dim_bounds circuit) in
  let sa =
    Sa_placer.place
      ~config:{ Sa_placer.default_config with iterations }
      ~rng circuit ~die_w ~die_h nominal
  in
  let coords = Array.map (fun r -> (r.Rect.x, r.Rect.y)) sa.Sa_placer.rects in
  { circuit; coords; die_w; die_h }

let nominal_coords t = Array.copy t.coords

let die t = (t.die_w, t.die_h)

let instantiate t dims =
  if Dims.n_blocks dims <> Array.length t.coords then
    invalid_arg "Template_placer.instantiate: size mismatch";
  Mps_placement.Repack.instantiate ~die:(t.die_w, t.die_h) ~coords:t.coords dims

lib/baselines/seqpair_placer.mli: Circuit Dims Mps_anneal Mps_cost Mps_geometry Mps_netlist Mps_rng Rect Rng

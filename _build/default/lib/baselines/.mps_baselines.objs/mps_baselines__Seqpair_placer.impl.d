lib/baselines/seqpair_placer.ml: Annealer Circuit Dims Mps_anneal Mps_cost Mps_geometry Mps_netlist Mps_placement Rect Schedule Seq_pair

lib/baselines/template_placer.mli: Circuit Dims Mps_geometry Mps_netlist Mps_rng Rect Rng

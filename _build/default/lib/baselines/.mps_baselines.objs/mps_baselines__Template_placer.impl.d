lib/baselines/template_placer.ml: Array Circuit Dims Mps_geometry Mps_netlist Mps_placement Rect Sa_placer

lib/baselines/sa_placer.ml: Coord_opt Mps_anneal Mps_cost Mps_geometry Mps_placement Rect Schedule

lib/baselines/genetic_placer.mli: Circuit Dims Mps_cost Mps_geometry Mps_netlist Mps_rng Rect Rng

lib/baselines/genetic_placer.ml: Array Circuit Dims Float Fun Mps_cost Mps_geometry Mps_netlist Mps_rng Rect Rng

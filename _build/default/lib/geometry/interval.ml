type t = { lo : int; hi : int }

let make lo hi =
  if lo > hi then
    invalid_arg (Printf.sprintf "Interval.make: %d > %d" lo hi);
  { lo; hi }

let make_opt lo hi = if lo > hi then None else Some { lo; hi }

let point v = { lo = v; hi = v }

let lo t = t.lo
let hi t = t.hi

let length t = t.hi - t.lo + 1

let contains t v = t.lo <= v && v <= t.hi

let contains_interval ~outer ~inner = outer.lo <= inner.lo && inner.hi <= outer.hi

let overlaps a b = a.lo <= b.hi && b.lo <= a.hi

let inter a b = make_opt (max a.lo b.lo) (min a.hi b.hi)

let overlap_length a b = max 0 (min a.hi b.hi - max a.lo b.lo + 1)

let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let shift t d = { lo = t.lo + d; hi = t.hi + d }

let clamp t v = if v < t.lo then t.lo else if v > t.hi then t.hi else v

let before t ~limit = make_opt t.lo (min t.hi (limit - 1))

let after t ~limit = make_opt (max t.lo (limit + 1)) t.hi

let split_at t v = (make_opt t.lo (min t.hi (v - 1)), make_opt (max t.lo v) t.hi)

let midpoint t = t.lo + ((t.hi - t.lo) / 2)

let fraction_of t ~of_ =
  float_of_int (overlap_length t of_) /. float_of_int (length of_)

let equal a b = a.lo = b.lo && a.hi = b.hi

let compare a b =
  let c = Int.compare a.lo b.lo in
  if c <> 0 then c else Int.compare a.hi b.hi

let pp fmt t = Format.fprintf fmt "[%d..%d]" t.lo t.hi

let to_string t = Printf.sprintf "[%d..%d]" t.lo t.hi

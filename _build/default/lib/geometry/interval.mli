(** Inclusive integer intervals.

    The multi-placement structure stores, for every block, the interval of
    widths and heights over which a placement is valid (the paper's
    [wstart..wend] / [hstart..hend] 4-tuples) and the interval objects of
    the per-block rows (paper Fig. 3).  All of these are inclusive integer
    intervals on the layout grid. *)

type t = private { lo : int; hi : int }
(** An inclusive interval [lo..hi]; the invariant [lo <= hi] always holds. *)

val make : int -> int -> t
(** [make lo hi] builds [lo..hi].  @raise Invalid_argument if [lo > hi]. *)

val make_opt : int -> int -> t option
(** [make_opt lo hi] is [Some (make lo hi)] when [lo <= hi], else [None]. *)

val point : int -> t
(** [point v] is the singleton interval [v..v]. *)

val lo : t -> int
val hi : t -> int

val length : t -> int
(** Number of integers contained: [hi - lo + 1]. *)

val contains : t -> int -> bool

val contains_interval : outer:t -> inner:t -> bool
(** [contains_interval ~outer ~inner] holds when every point of [inner]
    lies in [outer]. *)

val overlaps : t -> t -> bool
(** Shared integer point exists. *)

val inter : t -> t -> t option
(** Intersection, [None] when disjoint. *)

val overlap_length : t -> t -> int
(** Number of shared integer points (0 when disjoint). *)

val hull : t -> t -> t
(** Smallest interval containing both. *)

val shift : t -> int -> t
(** [shift t d] translates both endpoints by [d]. *)

val clamp : t -> int -> int
(** [clamp t v] is the point of [t] closest to [v]. *)

val before : t -> limit:int -> t option
(** [before t ~limit] is the part of [t] strictly below [limit]. *)

val after : t -> limit:int -> t option
(** [after t ~limit] is the part of [t] strictly above [limit]. *)

val split_at : t -> int -> (t option * t option)
(** [split_at t v] splits [t] into the sub-interval strictly below [v]
    and the sub-interval starting at [v]:
    [(inter t [lo..v-1], inter t [v..hi])]. *)

val midpoint : t -> int
(** Integer midpoint (rounded down). *)

val fraction_of : t -> of_:t -> float
(** [fraction_of t ~of_:bounds] is [length (t ∩ bounds) / length bounds],
    the share of [bounds] covered by [t]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Order by [lo], then [hi]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

lib/geometry/dims.mli: Format

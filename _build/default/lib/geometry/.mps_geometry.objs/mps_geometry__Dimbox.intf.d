lib/geometry/dimbox.mli: Dims Format Interval Mps_rng

lib/geometry/dims.ml: Array Format

lib/geometry/dimbox.ml: Array Dims Format Interval List Mps_rng Option

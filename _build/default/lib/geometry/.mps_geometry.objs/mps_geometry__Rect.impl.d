lib/geometry/rect.ml: Array Format Interval List Printf

(* Tests for the baseline placers (template / SA / genetic), the shared
   re-packer and the coordinate annealer. *)

open Mps_rng
open Mps_geometry
open Mps_netlist
open Mps_placement
open Mps_baselines

let check_bool = Alcotest.(check bool)

let circuit = Benchmarks.circ01
let die_w, die_h = Circuit.default_die circuit

(* Repack *)

let test_repack_no_overlap () =
  let rng = Rng.create ~seed:1 in
  let bounds = Circuit.dim_bounds circuit in
  let coords = [| (0, 0); (5, 5); (40, 0); (10, 30) |] in
  for _ = 1 to 50 do
    let dims = Dimbox.random_dims rng bounds in
    let rects = Repack.instantiate ~coords dims in
    check_bool "no overlap" true (Rect.any_overlap rects = None);
    Array.iteri
      (fun i r ->
        check_bool "dims preserved" true
          (r.Rect.w = Dims.width dims i && r.Rect.h = Dims.height dims i))
      rects
  done

let test_repack_identity_when_legal () =
  (* far-apart blocks do not move *)
  let coords = [| (0, 0); (100, 100); (200, 0); (0, 200) |] in
  let dims = Circuit.min_dims circuit in
  let rects = Repack.instantiate ~coords dims in
  Array.iteri
    (fun i r ->
      let x, y = coords.(i) in
      check_bool "kept in place" true (r.Rect.x = x && r.Rect.y = y))
    rects

let test_repack_die_fit () =
  (* blocks packed near the top wander back into the die when possible *)
  let coords = [| (0, 95); (5, 96); (10, 97); (15, 98) |] in
  let dims = Circuit.min_dims circuit in
  let rects = Repack.instantiate ~die:(200, 120) ~coords dims in
  check_bool "fits the die" true
    (Array.for_all (fun r -> Rect.inside r ~die_w:200 ~die_h:120) rects)

let test_repack_mismatch () =
  Alcotest.check_raises "count" (Invalid_argument "Repack.instantiate: block count mismatch")
    (fun () ->
      ignore (Repack.instantiate ~coords:[| (0, 0) |] (Dims.of_pairs [| (1, 1); (2, 2) |])))

(* Coord_opt / Sa_placer *)

let test_coord_opt_improves () =
  let rng = Rng.create ~seed:3 in
  let dims = Dimbox.center (Circuit.dim_bounds circuit) in
  let quick = { Coord_opt.default_config with Coord_opt.iterations = 1500 } in
  let r = Coord_opt.optimize ~config:quick ~rng circuit ~die_w ~die_h dims in
  check_bool "legal result" true r.Coord_opt.legal;
  check_bool "placement matches rects" true
    (Array.for_all2
       (fun (x, y) rect -> rect.Rect.x = x && rect.Rect.y = y)
       r.Coord_opt.placement.Placement.coords r.Coord_opt.rects);
  (* optimized cost beats the average of random placements *)
  let random_cost () =
    let p = Placement.random rng circuit ~die_w ~die_h in
    Mps_cost.Cost.total circuit ~die_w ~die_h (Placement.rects p (Circuit.min_dims circuit))
  in
  let avg_random =
    List.fold_left ( +. ) 0.0 (List.init 10 (fun _ -> random_cost ())) /. 10.0
  in
  check_bool "better than random" true (r.Coord_opt.cost < avg_random)

let test_sa_placer_legal_and_deterministic () =
  let dims = Dimbox.center (Circuit.dim_bounds circuit) in
  let config = { Sa_placer.default_config with iterations = 1200 } in
  let run seed = Sa_placer.place ~config ~rng:(Rng.create ~seed) circuit ~die_w ~die_h dims in
  let a = run 5 and b = run 5 in
  check_bool "legal" true a.Sa_placer.legal;
  Alcotest.(check (float 1e-12)) "deterministic" a.Sa_placer.cost b.Sa_placer.cost;
  check_bool "right dims" true
    (Array.for_all2
       (fun r i -> r.Rect.w = Dims.width dims i && r.Rect.h = Dims.height dims i)
       a.Sa_placer.rects
       (Array.init (Circuit.n_blocks circuit) Fun.id))

let test_sa_placer_dims_mismatch () =
  let rng = Rng.create ~seed:5 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Coord_opt.optimize: block count mismatch") (fun () ->
      ignore (Sa_placer.place ~rng circuit ~die_w ~die_h (Dims.of_pairs [| (1, 1) |])))

(* Template placer *)

let test_template_build_and_instantiate () =
  let rng = Rng.create ~seed:7 in
  let t = Template_placer.build ~iterations:800 ~rng circuit ~die_w ~die_h in
  check_bool "die recorded" true (Template_placer.die t = (die_w, die_h));
  let bounds = Circuit.dim_bounds circuit in
  let rng2 = Rng.create ~seed:8 in
  for _ = 1 to 30 do
    let dims = Dimbox.random_dims rng2 bounds in
    let rects = Template_placer.instantiate t dims in
    check_bool "no overlap" true (Rect.any_overlap rects = None);
    Array.iteri
      (fun i r ->
        check_bool "dims honoured" true
          (r.Rect.w = Dims.width dims i && r.Rect.h = Dims.height dims i))
      rects
  done

let test_template_fixed_arrangement () =
  (* the template's relative x-order of blocks never changes *)
  let rng = Rng.create ~seed:7 in
  let t = Template_placer.build ~iterations:800 ~rng circuit ~die_w ~die_h in
  let order rects =
    let idx = Array.init (Array.length rects) Fun.id in
    Array.sort (fun i j -> Int.compare rects.(i).Rect.x rects.(j).Rect.x) idx;
    Array.to_list idx
  in
  let nominal = order (Template_placer.instantiate t (Dimbox.center (Circuit.dim_bounds circuit))) in
  let at_min = order (Template_placer.instantiate t (Circuit.min_dims circuit)) in
  Alcotest.(check (list int)) "same left-to-right story" nominal at_min

(* Genetic placer *)

let test_genetic_improves_and_legal () =
  let rng = Rng.create ~seed:9 in
  let dims = Dimbox.center (Circuit.dim_bounds circuit) in
  let config = { Genetic_placer.default_config with generations = 30; population = 24 } in
  let r = Genetic_placer.place ~config ~rng circuit ~die_w ~die_h dims in
  check_bool "evaluations counted" true (r.Genetic_placer.evaluations > 24);
  check_bool "cost finite" true (Float.is_finite r.Genetic_placer.cost);
  (* with overlap penalties the GA almost always ends legal on 4 blocks *)
  check_bool "legal" true r.Genetic_placer.legal

let test_genetic_bad_config () =
  let rng = Rng.create ~seed:9 in
  let dims = Circuit.min_dims circuit in
  let bad = { Genetic_placer.default_config with population = 4; elite = 4 } in
  Alcotest.check_raises "elite >= population"
    (Invalid_argument "Genetic_placer.place: bad population/elite") (fun () ->
      ignore (Genetic_placer.place ~config:bad ~rng circuit ~die_w ~die_h dims))

let test_genetic_deterministic () =
  let dims = Dimbox.center (Circuit.dim_bounds circuit) in
  let config = { Genetic_placer.default_config with generations = 10; population = 12 } in
  let run seed =
    (Genetic_placer.place ~config ~rng:(Rng.create ~seed) circuit ~die_w ~die_h dims)
      .Genetic_placer.cost
  in
  Alcotest.(check (float 1e-12)) "deterministic" (run 4) (run 4)

(* Cross-strategy sanity: optimization beats the fixed template on
   average over random dimension vectors. *)
let test_sa_beats_template_on_average () =
  let rng = Rng.create ~seed:11 in
  let t = Template_placer.build ~iterations:800 ~rng circuit ~die_w ~die_h in
  let bounds = Circuit.dim_bounds circuit in
  let sa_config = { Sa_placer.default_config with iterations = 1500 } in
  let sa_rng = Rng.create ~seed:12 in
  let trials = 8 in
  let sa_total = ref 0.0 and tp_total = ref 0.0 in
  let probe_rng = Rng.create ~seed:13 in
  for _ = 1 to trials do
    let dims = Dimbox.random_dims probe_rng bounds in
    let sa = Sa_placer.place ~config:sa_config ~rng:sa_rng circuit ~die_w ~die_h dims in
    let tp = Template_placer.instantiate t dims in
    sa_total := !sa_total +. sa.Sa_placer.cost;
    tp_total := !tp_total +. Mps_cost.Cost.total circuit ~die_w ~die_h tp
  done;
  check_bool "optimization wins on quality" true (!sa_total < !tp_total)

let suite =
  [
    ("repack: overlap-free at requested dims", `Quick, test_repack_no_overlap);
    ("repack: keeps legal arrangements in place", `Quick, test_repack_identity_when_legal);
    ("repack: fits the die when possible", `Quick, test_repack_die_fit);
    ("repack: block count mismatch", `Quick, test_repack_mismatch);
    ("coord_opt: legal and better than random", `Quick, test_coord_opt_improves);
    ("sa placer: legal and deterministic", `Quick, test_sa_placer_legal_and_deterministic);
    ("sa placer: dims mismatch raises", `Quick, test_sa_placer_dims_mismatch);
    ("template: legal instantiation over the space", `Quick, test_template_build_and_instantiate);
    ("template: arrangement is fixed", `Quick, test_template_fixed_arrangement);
    ("genetic: runs, improves, legal", `Quick, test_genetic_improves_and_legal);
    ("genetic: bad config rejected", `Quick, test_genetic_bad_config);
    ("genetic: deterministic per seed", `Quick, test_genetic_deterministic);
    ("sa beats template on average", `Quick, test_sa_beats_template_on_average);
  ]

(* Tests for blocks, nets, circuits and the Table 1 benchmark set. *)

open Mps_geometry
open Mps_netlist

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Block *)

let test_block_make () =
  let blk = Block.make_wh ~id:3 ~name:"dp" ~w:(10, 40) ~h:(8, 24) in
  check_int "min w" 10 (fst (Block.min_dims blk));
  check_int "max w" 40 (fst (Block.max_dims blk));
  check_int "min h" 8 (snd (Block.min_dims blk));
  check_int "max h" 24 (snd (Block.max_dims blk));
  check_int "min area" 80 (Block.min_area blk);
  check_int "max area" 960 (Block.max_area blk)

let test_block_dims_valid () =
  let blk = Block.make_wh ~id:0 ~name:"b" ~w:(10, 40) ~h:(8, 24) in
  check_bool "inside" true (Block.dims_valid blk ~w:10 ~h:24);
  check_bool "w too small" false (Block.dims_valid blk ~w:9 ~h:20);
  check_bool "h too big" false (Block.dims_valid blk ~w:20 ~h:25)

let test_block_invalid () =
  Alcotest.check_raises "negative id" (Invalid_argument "Block.make: negative id")
    (fun () -> ignore (Block.make_wh ~id:(-1) ~name:"x" ~w:(1, 2) ~h:(1, 2)));
  Alcotest.check_raises "zero min width"
    (Invalid_argument "Block.make: non-positive minimum dimension") (fun () ->
      ignore (Block.make_wh ~id:0 ~name:"x" ~w:(0, 2) ~h:(1, 2)))

(* Net *)

let test_net_terminals () =
  let n =
    Net.make ~id:0 ~name:"n"
      ~pins:[ Net.block_pin 0; Net.block_pin 1; Net.pad ~px:0.0 ~py:0.5 ]
  in
  check_int "terminal count excludes pads" 2 (Net.terminal_count n);
  check_int "degree includes pads" 3 (Net.degree n)

let test_net_blocks_dedup () =
  let n =
    Net.make ~id:0 ~name:"n"
      ~pins:[ Net.block_pin 2; Net.block_pin ~fx:0.1 2; Net.block_pin 0 ]
  in
  Alcotest.(check (list int)) "sorted distinct blocks" [ 0; 2 ] (Net.blocks n)

let test_net_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Net.make: empty pin list") (fun () ->
      ignore (Net.make ~id:0 ~name:"n" ~pins:[]));
  Alcotest.check_raises "fraction" (Invalid_argument "Net.make: pin fraction out of [0,1]")
    (fun () -> ignore (Net.make ~id:0 ~name:"n" ~pins:[ Net.block_pin ~fx:1.5 0 ]))

(* Circuit *)

let tiny_circuit () =
  let blocks =
    [|
      Block.make_wh ~id:0 ~name:"a" ~w:(4, 8) ~h:(4, 8);
      Block.make_wh ~id:1 ~name:"b" ~w:(2, 10) ~h:(2, 10);
    |]
  in
  let nets = [| Net.make ~id:0 ~name:"n0" ~pins:[ Net.block_pin 0; Net.block_pin 1 ] |] in
  Circuit.make ~name:"tiny" ~blocks ~nets

let test_circuit_counts () =
  let c = tiny_circuit () in
  check_int "blocks" 2 (Circuit.n_blocks c);
  check_int "nets" 1 (Circuit.n_nets c);
  check_int "terminals" 2 (Circuit.n_terminals c)

let test_circuit_bad_block_id () =
  let blocks = [| Block.make_wh ~id:1 ~name:"a" ~w:(1, 2) ~h:(1, 2) |] in
  Alcotest.check_raises "id mismatch"
    (Invalid_argument "Circuit.make: block a has id 1 at index 0") (fun () ->
      ignore (Circuit.make ~name:"bad" ~blocks ~nets:[||]))

let test_circuit_bad_net_ref () =
  let blocks = [| Block.make_wh ~id:0 ~name:"a" ~w:(1, 2) ~h:(1, 2) |] in
  let nets = [| Net.make ~id:0 ~name:"n" ~pins:[ Net.block_pin 3 ] |] in
  Alcotest.check_raises "dangling pin"
    (Invalid_argument "Circuit.make: net n references unknown block 3") (fun () ->
      ignore (Circuit.make ~name:"bad" ~blocks ~nets))

let test_circuit_dims () =
  let c = tiny_circuit () in
  let lo = Circuit.min_dims c and hi = Circuit.max_dims c in
  check_int "min w0" 4 (Dims.width lo 0);
  check_int "max h1" 10 (Dims.height hi 1);
  check_bool "min valid" true (Circuit.dims_valid c lo);
  check_bool "max valid" true (Circuit.dims_valid c hi);
  check_bool "too small" false (Circuit.dims_valid c (Dims.set_width lo 0 1));
  check_int "total min area" (16 + 4) (Circuit.total_min_area c);
  check_int "total max area" (64 + 100) (Circuit.total_max_area c)

let test_circuit_default_die () =
  let c = tiny_circuit () in
  let die_w, die_h = Circuit.default_die c in
  check_bool "die fits max areas with slack" true (die_w * die_h >= 2 * (64 + 100));
  check_bool "square" true (die_w = die_h)

let test_dim_bounds () =
  let c = tiny_circuit () in
  let bounds = Circuit.dim_bounds c in
  check_bool "contains min" true (Dimbox.contains bounds (Circuit.min_dims c));
  check_bool "contains max" true (Dimbox.contains bounds (Circuit.max_dims c))

(* Table 1 *)

let table1 =
  [
    ("circ01", 4, 4, 12);
    ("circ02", 6, 4, 18);
    ("circ06", 6, 4, 18);
    ("TwoStage Opamp", 5, 9, 22);
    ("SingleEnded Opamp", 9, 14, 32);
    ("Mixer", 8, 6, 15);
    ("circ08", 8, 8, 24);
    ("tso-cascode", 21, 36, 46);
    ("benchmark24", 24, 48, 48);
  ]

let test_table1_counts () =
  List.iter
    (fun (name, blocks, nets, terminals) ->
      let c = Benchmarks.by_name name in
      check_int (name ^ " blocks") blocks (Circuit.n_blocks c);
      check_int (name ^ " nets") nets (Circuit.n_nets c);
      check_int (name ^ " terminals") terminals (Circuit.n_terminals c))
    table1

let test_table1_order () =
  Alcotest.(check (list string))
    "Table 1 order"
    (List.map (fun (n, _, _, _) -> n) table1)
    (List.map (fun c -> c.Circuit.name) Benchmarks.all)

let test_by_name_aliases () =
  check_bool "tso alias" true (Benchmarks.by_name "tso" == Benchmarks.two_stage_opamp);
  check_bool "seo alias" true (Benchmarks.by_name "SEO" == Benchmarks.single_ended_opamp);
  check_bool "case-insensitive" true (Benchmarks.by_name "MIXER" == Benchmarks.mixer);
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (Benchmarks.by_name "nope"))

let test_every_net_geometric () =
  (* every net has at least two endpoints, so HPWL is well defined *)
  List.iter
    (fun c ->
      Array.iter
        (fun net ->
          check_bool
            (Printf.sprintf "%s/%s degree >= 2" c.Circuit.name net.Net.name)
            true
            (Net.degree net >= 2))
        c.Circuit.nets)
    Benchmarks.all

let test_every_block_referenced_in_hand_circuits () =
  List.iter
    (fun c ->
      let used = Hashtbl.create 16 in
      Array.iter
        (fun net -> List.iter (fun i -> Hashtbl.replace used i ()) (Net.blocks net))
        c.Circuit.nets;
      for i = 0 to Circuit.n_blocks c - 1 do
        check_bool
          (Printf.sprintf "%s block %d referenced" c.Circuit.name i)
          true (Hashtbl.mem used i)
      done)
    [ Benchmarks.two_stage_opamp; Benchmarks.single_ended_opamp; Benchmarks.mixer ]

let test_synthetic_determinism () =
  let c1 = Benchmarks.synthetic ~name:"x" ~blocks:5 ~nets:7 ~terminals:14 ~seed:42 in
  let c2 = Benchmarks.synthetic ~name:"x" ~blocks:5 ~nets:7 ~terminals:14 ~seed:42 in
  check_int "same terminals" (Circuit.n_terminals c1) (Circuit.n_terminals c2);
  Array.iteri
    (fun i b1 ->
      check_bool (Printf.sprintf "block %d equal" i) true (Block.equal b1 c2.Circuit.blocks.(i)))
    c1.Circuit.blocks

let test_synthetic_exact_counts () =
  List.iter
    (fun (blocks, nets, terminals) ->
      let c =
        Benchmarks.synthetic ~name:"s" ~blocks ~nets ~terminals ~seed:(blocks * nets)
      in
      check_int "blocks" blocks (Circuit.n_blocks c);
      check_int "nets" nets (Circuit.n_nets c);
      check_int "terminals" terminals (Circuit.n_terminals c))
    [ (3, 2, 6); (10, 20, 20); (24, 48, 48); (7, 3, 21); (2, 9, 9) ]

let suite =
  [
    ("block: make and bounds", `Quick, test_block_make);
    ("block: dims_valid", `Quick, test_block_dims_valid);
    ("block: invalid args", `Quick, test_block_invalid);
    ("net: terminal count excludes pads", `Quick, test_net_terminals);
    ("net: blocks deduped", `Quick, test_net_blocks_dedup);
    ("net: invalid args", `Quick, test_net_invalid);
    ("circuit: counts", `Quick, test_circuit_counts);
    ("circuit: rejects bad block ids", `Quick, test_circuit_bad_block_id);
    ("circuit: rejects dangling net pins", `Quick, test_circuit_bad_net_ref);
    ("circuit: dimension vectors and bounds", `Quick, test_circuit_dims);
    ("circuit: default die", `Quick, test_circuit_default_die);
    ("circuit: dim_bounds contains extremes", `Quick, test_dim_bounds);
    ("benchmarks: Table 1 counts", `Quick, test_table1_counts);
    ("benchmarks: Table 1 order", `Quick, test_table1_order);
    ("benchmarks: name lookup", `Quick, test_by_name_aliases);
    ("benchmarks: nets have >= 2 endpoints", `Quick, test_every_net_geometric);
    ("benchmarks: hand circuits use all blocks", `Quick,
     test_every_block_referenced_in_hand_circuits);
    ("benchmarks: synthetic is deterministic", `Quick, test_synthetic_determinism);
    ("benchmarks: synthetic exact counts", `Quick, test_synthetic_exact_counts);
  ]

(* Tests for the folded-cascode OTA design. *)

open Mps_netlist
open Mps_core
open Mps_synthesis

let check_bool = Alcotest.(check bool)

let process = Mps_modgen.Process.default
let circuit = lazy (Folded_cascode.circuit process)

let test_circuit_shape () =
  let c = Lazy.force circuit in
  Alcotest.(check int) "seven blocks" 7 (Circuit.n_blocks c);
  Alcotest.(check int) "ten nets" 10 (Circuit.n_nets c);
  check_bool "symmetric" true (c.Circuit.symmetry <> [])

let test_dims_valid () =
  let c = Lazy.force circuit in
  List.iter
    (fun s ->
      check_bool "dims valid" true
        (Circuit.dims_valid c (Folded_cascode.dims process c s)))
    [ Folded_cascode.sizing_lo; Folded_cascode.sizing_hi; Folded_cascode.nominal_sizing ]

let test_clamp () =
  let wild =
    { Folded_cascode.w_in_um = 1e6; w_casc_um = 0.0; w_mirror_um = 10.0;
      w_tail_um = 5.0; cl_ff = -3.0 }
  in
  let c = Folded_cascode.clamp_sizing wild in
  check_bool "in clamped" true (c.Folded_cascode.w_in_um = Folded_cascode.sizing_hi.Folded_cascode.w_in_um);
  check_bool "casc clamped" true
    (c.Folded_cascode.w_casc_um = Folded_cascode.sizing_lo.Folded_cascode.w_casc_um);
  check_bool "cl clamped" true (c.Folded_cascode.cl_ff = Folded_cascode.sizing_lo.Folded_cascode.cl_ff)

let perf_at sizing =
  let c = Lazy.force circuit in
  let die_w, die_h = Circuit.default_die c in
  let dims = Folded_cascode.dims process c sizing in
  let rng = Mps_rng.Rng.create ~seed:3 in
  let p = Mps_placement.Placement.random rng c ~die_w ~die_h in
  let rects =
    Mps_placement.Repack.instantiate ~die:(die_w, die_h)
      ~coords:p.Mps_placement.Placement.coords dims
  in
  Folded_cascode.performance process c ~die_w ~die_h sizing rects

let test_performance_monotonicity () =
  let base = Folded_cascode.nominal_sizing in
  let p0 = perf_at base in
  let p_cl = perf_at { base with Folded_cascode.cl_ff = base.Folded_cascode.cl_ff *. 3.0 } in
  check_bool "load cap reduces GBW" true
    (p_cl.Folded_cascode.gbw_mhz < p0.Folded_cascode.gbw_mhz);
  let p_tail = perf_at { base with Folded_cascode.w_tail_um = base.Folded_cascode.w_tail_um *. 2.0 } in
  check_bool "tail increases power" true
    (p_tail.Folded_cascode.power_mw > p0.Folded_cascode.power_mw);
  check_bool "tail increases slew" true
    (p_tail.Folded_cascode.slew_v_per_us > p0.Folded_cascode.slew_v_per_us)

let test_spec_cost () =
  let good =
    { Folded_cascode.gain_db = 90.0; gbw_mhz = 30.0; slew_v_per_us = 20.0;
      power_mw = 1.0; wire_cap_ff = 100.0; area = 10_000 }
  in
  let bad = { good with Folded_cascode.gbw_mhz = 5.0 } in
  check_bool "good meets" true (Folded_cascode.meets_spec Folded_cascode.default_spec good);
  check_bool "bad fails" false (Folded_cascode.meets_spec Folded_cascode.default_spec bad);
  check_bool "violation dominates" true
    (Folded_cascode.spec_cost Folded_cascode.default_spec bad
     > Folded_cascode.spec_cost Folded_cascode.default_spec good)

let quick_structure =
  lazy
    (let c = Lazy.force circuit in
     fst (Generator.generate ~config:Generator.fast_config c))

let test_synthesize_with_mps () =
  let c = Lazy.force circuit in
  let die_w, die_h = Circuit.default_die c in
  let placer = Synth_loop.mps_placer (Lazy.force quick_structure) in
  let r = Folded_cascode.synthesize ~iterations:25 process c ~die_w ~die_h placer in
  check_bool "finite cost" true (Float.is_finite r.Folded_cascode.best_cost);
  check_bool "evaluations" true (r.Folded_cascode.evaluations = 26);
  check_bool "placement within total" true
    (r.Folded_cascode.placement_seconds <= r.Folded_cascode.total_seconds)

let test_synthesize_deterministic () =
  let c = Lazy.force circuit in
  let die_w, die_h = Circuit.default_die c in
  let placer = Synth_loop.mps_placer (Lazy.force quick_structure) in
  let run () =
    (Folded_cascode.synthesize ~iterations:15 process c ~die_w ~die_h placer)
      .Folded_cascode.best_cost
  in
  Alcotest.(check (float 1e-12)) "same best" (run ()) (run ())

let test_generation_works_on_ota () =
  let structure = Lazy.force quick_structure in
  check_bool "some placements" true (Structure.n_placements structure >= 1);
  let probes = Mps_experiments.Experiments.probe_dims ~seed:3 ~n:100 structure in
  Array.iter
    (fun dims ->
      check_bool "answers overlap-free" true
        (Mps_geometry.Rect.any_overlap (Structure.instantiate structure dims) = None))
    probes

let suite =
  [
    ("circuit shape and symmetry", `Quick, test_circuit_shape);
    ("module dims within bounds", `Quick, test_dims_valid);
    ("sizing clamp", `Quick, test_clamp);
    ("performance monotonic", `Quick, test_performance_monotonicity);
    ("spec cost", `Quick, test_spec_cost);
    ("synthesis loop with the MPS", `Quick, test_synthesize_with_mps);
    ("synthesis deterministic", `Quick, test_synthesize_deterministic);
    ("MPS generation on the OTA", `Quick, test_generation_works_on_ota);
  ]

(* Tests for the CSV exporter. *)

open Mps_experiments

let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let test_escape () =
  check_string "plain" "abc" (Csv.escape "abc");
  check_string "comma" "\"a,b\"" (Csv.escape "a,b");
  check_string "quote" "\"a\"\"b\"" (Csv.escape "a\"b");
  check_string "newline" "\"a\nb\"" (Csv.escape "a\nb");
  check_string "empty" "" (Csv.escape "")

let test_line () =
  check_string "joined" "a,b,c\n" (Csv.line [ "a"; "b"; "c" ]);
  check_string "quoted cell" "a,\"b,c\"\n" (Csv.line [ "a"; "b,c" ])

let test_render () =
  check_string "header + rows" "x,y\n1,2\n3,4\n"
    (Csv.render ~header:[ "x"; "y" ] ~rows:[ [ "1"; "2" ]; [ "3"; "4" ] ])

let test_save_roundtrip () =
  let path = Filename.temp_file "mps_csv" ".csv" in
  Csv.save ~path ~header:[ "a" ] ~rows:[ [ "1" ]; [ "2" ] ];
  let ic = open_in path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  check_string "file content" "a\n1\n2\n" content

let test_table2_csv () =
  let rows =
    [
      {
        Experiments.circuit_name = "circ, 01";
        generation_seconds = 1.5;
        placements = 42;
        coverage = 0.125;
        instantiation_seconds = 3e-6;
        fallback_rate = 0.75;
      };
    ]
  in
  let csv = Csv.table2 rows in
  check_bool "header present" true
    (String.length csv > 0 && String.sub csv 0 7 = "circuit");
  check_bool "name quoted" true
    (let contains sub s =
       let n = String.length sub in
       let rec loop i = i + n <= String.length s && (String.sub s i n = sub || loop (i + 1)) in
       loop 0
     in
     contains "\"circ, 01\"" csv && contains "42" csv)

let test_figure6_csv () =
  let points, _ = Experiments.figure6 ~budget:Experiments.Quick () in
  let csv = Csv.figure6 points in
  let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "one line per point + header" (List.length points + 1)
    (List.length lines)

let suite =
  [
    ("escape", `Quick, test_escape);
    ("line", `Quick, test_line);
    ("render", `Quick, test_render);
    ("save round-trip", `Quick, test_save_roundtrip);
    ("table2 export", `Quick, test_table2_csv);
    ("figure6 export", `Quick, test_figure6_csv);
  ]

(* Tests for wirelength estimation and the cost function. *)

open Mps_geometry
open Mps_netlist
open Mps_cost

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))
let check_int = Alcotest.(check int)

let circuit_two_blocks ~pins =
  Circuit.make ~name:"c"
    ~blocks:
      [|
        Block.make_wh ~id:0 ~name:"a" ~w:(1, 100) ~h:(1, 100);
        Block.make_wh ~id:1 ~name:"b" ~w:(1, 100) ~h:(1, 100);
      |]
    ~nets:[| Net.make ~id:0 ~name:"n" ~pins |]

let test_pin_positions () =
  let rects = [| Rect.make ~x:10 ~y:20 ~w:4 ~h:8 |] in
  let x, y =
    Wirelength.pin_position (Net.block_pin ~fx:0.5 ~fy:0.25 0) ~rects ~die_w:100 ~die_h:200
  in
  check_float "pin x" 12.0 x;
  check_float "pin y" 22.0 y;
  let px, py =
    Wirelength.pin_position (Net.pad ~px:0.5 ~py:1.0) ~rects ~die_w:100 ~die_h:200
  in
  check_float "pad x" 50.0 px;
  check_float "pad y" 200.0 py

let test_net_hpwl_two_pins () =
  let c = circuit_two_blocks ~pins:[ Net.block_pin 0; Net.block_pin 1 ] in
  (* centers at (5,5) and (25,15): HPWL = 20 + 10 *)
  let rects = [| Rect.make ~x:0 ~y:0 ~w:10 ~h:10; Rect.make ~x:20 ~y:10 ~w:10 ~h:10 |] in
  check_float "hpwl" 30.0 (Wirelength.total_hpwl c ~rects ~die_w:100 ~die_h:100)

let test_net_hpwl_scales_with_block_size () =
  (* pin at fx=1.0: moving the block's width moves the pin *)
  let c = circuit_two_blocks ~pins:[ Net.block_pin ~fx:1.0 ~fy:0.0 0; Net.block_pin ~fx:0.0 ~fy:0.0 1 ] in
  let rects w0 = [| Rect.make ~x:0 ~y:0 ~w:w0 ~h:10; Rect.make ~x:50 ~y:0 ~w:10 ~h:10 |] in
  let hp w0 = Wirelength.total_hpwl c ~rects:(rects w0) ~die_w:100 ~die_h:100 in
  check_float "narrow block, longer wire" 40.0 (hp 10);
  check_float "wide block, shorter wire" 20.0 (hp 30)

let test_single_pin_net_zero () =
  let c = circuit_two_blocks ~pins:[ Net.block_pin 0 ] in
  let rects = [| Rect.make ~x:0 ~y:0 ~w:10 ~h:10; Rect.make ~x:20 ~y:0 ~w:10 ~h:10 |] in
  check_float "zero" 0.0 (Wirelength.total_hpwl c ~rects ~die_w:100 ~die_h:100)

let test_hpwl_wrong_rect_count () =
  let c = circuit_two_blocks ~pins:[ Net.block_pin 0; Net.block_pin 1 ] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Wirelength.total_hpwl: one rectangle per block required") (fun () ->
      ignore
        (Wirelength.total_hpwl c ~rects:[| Rect.make ~x:0 ~y:0 ~w:1 ~h:1 |] ~die_w:10
           ~die_h:10))

let test_cost_breakdown_legal () =
  let c = circuit_two_blocks ~pins:[ Net.block_pin 0; Net.block_pin 1 ] in
  let rects = [| Rect.make ~x:0 ~y:0 ~w:10 ~h:10; Rect.make ~x:20 ~y:10 ~w:10 ~h:10 |] in
  let b = Cost.evaluate c ~die_w:100 ~die_h:100 rects in
  check_float "hpwl" 30.0 b.Cost.hpwl;
  check_int "bbox" (30 * 20) b.Cost.bbox_area;
  check_int "overlap" 0 b.Cost.overlap_area;
  check_int "oob" 0 b.Cost.oob_area;
  check_float "total = hpwl + 0.05*bbox" (30.0 +. (0.05 *. 600.0)) b.Cost.total;
  check_bool "legal" true (Cost.is_legal ~die_w:100 ~die_h:100 rects)

let test_cost_overlap_penalty () =
  let c = circuit_two_blocks ~pins:[ Net.block_pin 0; Net.block_pin 1 ] in
  let rects = [| Rect.make ~x:0 ~y:0 ~w:10 ~h:10; Rect.make ~x:5 ~y:5 ~w:10 ~h:10 |] in
  let b = Cost.evaluate c ~die_w:100 ~die_h:100 rects in
  check_int "overlap area" 25 b.Cost.overlap_area;
  check_bool "illegal" false (Cost.is_legal ~die_w:100 ~die_h:100 rects);
  let legal = [| Rect.make ~x:0 ~y:0 ~w:10 ~h:10; Rect.make ~x:10 ~y:0 ~w:10 ~h:10 |] in
  check_bool "penalty dominates" true
    (b.Cost.total > (Cost.evaluate c ~die_w:100 ~die_h:100 legal).Cost.total)

let test_cost_oob_penalty () =
  let c = circuit_two_blocks ~pins:[ Net.block_pin 0; Net.block_pin 1 ] in
  let rects = [| Rect.make ~x:95 ~y:0 ~w:10 ~h:10; Rect.make ~x:0 ~y:0 ~w:10 ~h:10 |] in
  let b = Cost.evaluate c ~die_w:100 ~die_h:100 rects in
  check_int "oob area" 50 b.Cost.oob_area;
  check_bool "illegal" false (Cost.is_legal ~die_w:100 ~die_h:100 rects)

let test_custom_weights () =
  let c = circuit_two_blocks ~pins:[ Net.block_pin 0; Net.block_pin 1 ] in
  let rects = [| Rect.make ~x:0 ~y:0 ~w:10 ~h:10; Rect.make ~x:20 ~y:10 ~w:10 ~h:10 |] in
  let weights = { Cost.wirelength = 2.0; area = 0.0; overlap = 0.0; out_of_bounds = 0.0; symmetry = 0.0 } in
  check_float "wirelength only, doubled" 60.0 (Cost.total ~weights c ~die_w:100 ~die_h:100 rects)

(* Property: HPWL is translation-invariant when all endpoints are block
   pins (no pads). *)
let prop_hpwl_translation_invariant =
  QCheck.Test.make ~name:"hpwl translation-invariant without pads" ~count:200
    QCheck.(pair (int_range (-20) 20) (int_range (-20) 20))
    (fun (dx, dy) ->
      let c = circuit_two_blocks ~pins:[ Net.block_pin 0; Net.block_pin ~fx:0.25 ~fy:0.75 1 ] in
      let rects = [| Rect.make ~x:30 ~y:30 ~w:10 ~h:10; Rect.make ~x:50 ~y:45 ~w:8 ~h:6 |] in
      let moved = Array.map (Rect.translate ~dx ~dy) rects in
      let hp r = Wirelength.total_hpwl c ~rects:r ~die_w:200 ~die_h:200 in
      abs_float (hp rects -. hp moved) < 1e-9)

let prop_overlap_area_symmetric =
  QCheck.Test.make ~name:"overlap penalty independent of order" ~count:200
    QCheck.(quad (int_range 0 30) (int_range 0 30) (int_range 1 20) (int_range 1 20))
    (fun (x, y, w, h) ->
      let c = circuit_two_blocks ~pins:[ Net.block_pin 0; Net.block_pin 1 ] in
      let a = Rect.make ~x ~y ~w ~h and b = Rect.make ~x:10 ~y:10 ~w:10 ~h:10 in
      let e1 = Cost.evaluate c ~die_w:100 ~die_h:100 [| a; b |] in
      let e2 = Cost.evaluate c ~die_w:100 ~die_h:100 [| b; a |] in
      e1.Cost.overlap_area = e2.Cost.overlap_area && e1.Cost.bbox_area = e2.Cost.bbox_area)

let suite =
  [
    ("pin and pad positions", `Quick, test_pin_positions);
    ("two-pin net HPWL", `Quick, test_net_hpwl_two_pins);
    ("pin positions scale with block size", `Quick, test_net_hpwl_scales_with_block_size);
    ("single-pin net has zero length", `Quick, test_single_pin_net_zero);
    ("rect count mismatch raises", `Quick, test_hpwl_wrong_rect_count);
    ("breakdown of a legal floorplan", `Quick, test_cost_breakdown_legal);
    ("overlap penalty", `Quick, test_cost_overlap_penalty);
    ("out-of-bounds penalty", `Quick, test_cost_oob_penalty);
    ("custom weights", `Quick, test_custom_weights);
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_hpwl_translation_invariant; prop_overlap_area_symmetric ]

(* Tests for ASCII and SVG floorplan rendering. *)

open Mps_geometry
open Mps_netlist
open Mps_render

let check_bool = Alcotest.(check bool)

let circuit =
  Circuit.make ~name:"r"
    ~blocks:
      [|
        Block.make_wh ~id:0 ~name:"alpha" ~w:(1, 50) ~h:(1, 50);
        Block.make_wh ~id:1 ~name:"beta" ~w:(1, 50) ~h:(1, 50);
      |]
    ~nets:[| Net.make ~id:0 ~name:"n" ~pins:[ Net.block_pin 0; Net.block_pin 1 ] |]

let rects = [| Rect.make ~x:0 ~y:0 ~w:4 ~h:4; Rect.make ~x:10 ~y:10 ~w:6 ~h:4 |]

let contains_sub sub s =
  let n = String.length sub in
  let rec loop i = i + n <= String.length s && (String.sub s i n = sub || loop (i + 1)) in
  loop 0

let test_ascii_contains_blocks () =
  let s = Ascii.render circuit ~die_w:20 ~die_h:20 rects in
  check_bool "block a drawn" true (String.contains s 'a');
  check_bool "block b drawn" true (String.contains s 'b');
  check_bool "legend has names" true (contains_sub "alpha" s && contains_sub "beta" s)

let test_ascii_grid_size () =
  let s = Ascii.render ~max_cols:10 circuit ~die_w:100 ~die_h:100 rects in
  (* first line is a grid row of at most 10 characters *)
  match String.split_on_char '\n' s with
  | first :: _ -> check_bool "scaled to max_cols" true (String.length first <= 10)
  | [] -> Alcotest.fail "empty render"

let test_ascii_wrong_rects () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Ascii.render: one rectangle per block required") (fun () ->
      ignore (Ascii.render circuit ~die_w:20 ~die_h:20 [| rects.(0) |]))

let test_legend_chars_distinct () =
  let chars = List.init 40 Ascii.legend_char in
  Alcotest.(check int) "40 distinct" 40 (List.length (List.sort_uniq Char.compare chars))

let test_ascii_y_up () =
  (* block at the bottom of the die must appear on the LAST grid row *)
  let one_block =
    Circuit.make ~name:"o"
      ~blocks:[| Block.make_wh ~id:0 ~name:"a" ~w:(1, 50) ~h:(1, 50) |]
      ~nets:[||]
  in
  let s =
    Ascii.render ~max_cols:8 one_block ~die_w:8 ~die_h:8
      [| Rect.make ~x:0 ~y:0 ~w:2 ~h:2 |]
  in
  let lines = String.split_on_char '\n' s in
  let grid = List.filteri (fun i _ -> i < 8) lines in
  (match List.nth_opt grid 0 with
  | Some top -> check_bool "top row empty" false (String.contains top 'a')
  | None -> Alcotest.fail "missing grid");
  match List.nth_opt grid 7 with
  | Some bottom -> check_bool "bottom row has block" true (String.contains bottom 'a')
  | None -> Alcotest.fail "missing grid"

let test_svg_well_formed () =
  let s = Svg.render circuit ~die_w:20 ~die_h:20 rects in
  let contains sub = contains_sub sub s in
  check_bool "svg root" true (contains "<svg");
  check_bool "closes" true (contains "</svg>");
  check_bool "both names" true (contains "alpha" && contains "beta");
  (* 1 die + 2 block rects *)
  let count_rects =
    let rec loop i acc =
      if i + 5 > String.length s then acc
      else if String.sub s i 5 = "<rect" then loop (i + 5) (acc + 1)
      else loop (i + 1) acc
    in
    loop 0 0
  in
  Alcotest.(check int) "rect count" 3 count_rects

let test_svg_save () =
  let path = Filename.temp_file "mps_render" ".svg" in
  Svg.save ~path circuit ~die_w:20 ~die_h:20 rects;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  check_bool "non-empty file" true (len > 100)

let suite =
  [
    ("ascii: blocks and legend present", `Quick, test_ascii_contains_blocks);
    ("ascii: respects max_cols", `Quick, test_ascii_grid_size);
    ("ascii: rect count mismatch raises", `Quick, test_ascii_wrong_rects);
    ("ascii: legend characters distinct", `Quick, test_legend_chars_distinct);
    ("ascii: y axis points up", `Quick, test_ascii_y_up);
    ("svg: well-formed document", `Quick, test_svg_well_formed);
    ("svg: save writes a file", `Quick, test_svg_save);
  ]

test/test_geometry.ml: Alcotest Dimbox Dims Format Interval List Mps_geometry Mps_rng QCheck QCheck_alcotest Rect

test/test_rng.ml: Alcotest Array Fun Int List Mps_rng Rng

test/test_row.ml: Alcotest Interval List Mps_core Mps_geometry Printf QCheck QCheck_alcotest Row String

test/test_modgen.ml: Alcotest Device Dims Interval List Module_gen Mps_geometry Mps_modgen Mps_netlist Process QCheck QCheck_alcotest

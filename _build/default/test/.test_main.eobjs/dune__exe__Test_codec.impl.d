test/test_codec.ml: Alcotest Array Benchmarks Circuit Codec Dimbox Dims Filename Generator Lazy List Mps_core Mps_experiments Mps_geometry Mps_netlist Mps_placement Rect Stored String Structure Sys

test/test_cost.ml: Alcotest Array Block Circuit Cost List Mps_cost Mps_geometry Mps_netlist Net QCheck QCheck_alcotest Rect Wirelength

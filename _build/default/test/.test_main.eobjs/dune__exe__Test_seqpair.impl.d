test/test_seqpair.ml: Alcotest Array Benchmarks Circuit Dimbox Dims Fun Int List Mps_baselines Mps_cost Mps_geometry Mps_netlist Mps_placement Mps_rng QCheck QCheck_alcotest Rect Rng Seq_pair

test/test_render.ml: Alcotest Array Ascii Block Char Circuit Filename List Mps_geometry Mps_netlist Mps_render Net Rect String Svg Sys

test/test_synthesis.ml: Alcotest Array Circuit Float Generator Lazy List Mps_baselines Mps_core Mps_geometry Mps_modgen Mps_netlist Mps_placement Mps_rng Mps_synthesis Opamp Synth_loop

test/test_route.ml: Alcotest Array Benchmarks Block Circuit Extraction Float List Mps_core Mps_geometry Mps_modgen Mps_netlist Mps_placement Mps_rng Mps_route Mps_synthesis Net Rect Route_grid Router

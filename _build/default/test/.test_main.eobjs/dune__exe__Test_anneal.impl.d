test/test_anneal.ml: Alcotest Annealer List Mps_anneal Mps_rng QCheck QCheck_alcotest Rng Schedule

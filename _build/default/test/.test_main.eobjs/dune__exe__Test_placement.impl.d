test/test_placement.ml: Alcotest Array Block Circuit Dimbox Dims Expand Interval Mps_geometry Mps_netlist Mps_placement Mps_rng Net Perturb Placement Rect Rng

test/test_mps_multiblock.ml: Block Builder Circuit Dimbox Dims Format Interval List Mps_core Mps_geometry Mps_netlist Mps_placement Net Placement QCheck QCheck_alcotest Stored String Structure

test/test_netlist.ml: Alcotest Array Benchmarks Block Circuit Dimbox Dims Hashtbl List Mps_geometry Mps_netlist Net Printf

test/test_symmetry.ml: Alcotest Array Benchmarks Block Circuit Cost Dimbox List Mps_cost Mps_geometry Mps_netlist Mps_placement Mps_rng Net Printf QCheck QCheck_alcotest Rect Rng Symmetry

test/test_csv.ml: Alcotest Csv Experiments Filename List Mps_experiments String Sys

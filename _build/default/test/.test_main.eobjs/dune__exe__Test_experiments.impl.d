test/test_experiments.ml: Alcotest Array Bdio Benchmarks Circuit Experiments Generator Lazy List Mps_core Mps_experiments Mps_netlist String Structure Text_table

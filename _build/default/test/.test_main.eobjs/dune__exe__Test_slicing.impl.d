test/test_slicing.ml: Alcotest Array Benchmarks Circuit Dimbox Dims List Mps_baselines Mps_cost Mps_geometry Mps_netlist Mps_placement Mps_rng QCheck QCheck_alcotest Rect Rng Slicing

test/test_bitset.ml: Alcotest Bitset Int List Mps_core QCheck QCheck_alcotest

(* Tests for symmetry constraints: validation, the cost penalty, and
   its effect on the coordinate annealer. *)

open Mps_rng
open Mps_geometry
open Mps_netlist
open Mps_cost

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let blocks4 =
  Array.init 4 (fun i -> Block.make_wh ~id:i ~name:(Printf.sprintf "b%d" i) ~w:(4, 20) ~h:(4, 20))

let base_circuit =
  Circuit.make ~name:"sym"
    ~blocks:blocks4
    ~nets:[| Net.make ~id:0 ~name:"n" ~pins:[ Net.block_pin 0; Net.block_pin 1 ] |]

let with_groups groups = Circuit.with_symmetry base_circuit groups

(* Validation *)

let test_validate_rejects_out_of_range () =
  Alcotest.check_raises "range" (Invalid_argument "Symmetry: block 7 out of range")
    (fun () -> ignore (with_groups [ Symmetry.Self 7 ]))

let test_validate_rejects_duplicates () =
  Alcotest.check_raises "dup" (Invalid_argument "Symmetry: block 1 in more than one group")
    (fun () ->
      ignore (with_groups [ Symmetry.Pair { left = 0; right = 1 }; Symmetry.Self 1 ]))

let test_validate_rejects_degenerate_pair () =
  Alcotest.check_raises "degenerate" (Invalid_argument "Symmetry: degenerate pair")
    (fun () -> ignore (with_groups [ Symmetry.Pair { left = 2; right = 2 } ]))

let test_members () =
  Alcotest.(check (list int)) "pair" [ 0; 3 ]
    (Symmetry.members (Symmetry.Pair { left = 0; right = 3 }));
  Alcotest.(check (list int)) "self" [ 2 ] (Symmetry.members (Symmetry.Self 2))

(* Penalty *)

let r ~x ~y ~w ~h = Rect.make ~x ~y ~w ~h

let test_penalty_zero_without_groups () =
  let rects = Array.init 4 (fun i -> r ~x:(i * 30) ~y:0 ~w:4 ~h:4) in
  check_float "no groups, no penalty" 0.0 (Cost.symmetry_penalty base_circuit rects)

let test_penalty_zero_when_symmetric () =
  let c = with_groups [ Symmetry.Pair { left = 0; right = 1 }; Symmetry.Self 2 ] in
  (* pair mirrored about x = 20, self centred on it, same y for the pair *)
  let rects =
    [| r ~x:10 ~y:0 ~w:4 ~h:4; r ~x:26 ~y:0 ~w:4 ~h:4; r ~x:18 ~y:10 ~w:4 ~h:4;
       r ~x:50 ~y:50 ~w:4 ~h:4 |]
  in
  check_float "perfectly symmetric" 0.0 (Cost.symmetry_penalty c rects)

let test_penalty_positive_when_misaligned () =
  let c = with_groups [ Symmetry.Pair { left = 0; right = 1 }; Symmetry.Self 2 ] in
  let rects =
    [| r ~x:10 ~y:0 ~w:4 ~h:4; r ~x:26 ~y:6 ~w:4 ~h:4; r ~x:40 ~y:10 ~w:4 ~h:4;
       r ~x:50 ~y:50 ~w:4 ~h:4 |]
  in
  check_bool "misaligned costs" true (Cost.symmetry_penalty c rects > 0.0)

let test_penalty_translation_invariant () =
  let c = with_groups [ Symmetry.Pair { left = 0; right = 1 }; Symmetry.Self 3 ] in
  let rects =
    [| r ~x:10 ~y:0 ~w:4 ~h:4; r ~x:30 ~y:2 ~w:6 ~h:4; r ~x:0 ~y:20 ~w:4 ~h:4;
       r ~x:22 ~y:9 ~w:4 ~h:4 |]
  in
  let moved = Array.map (Rect.translate ~dx:17 ~dy:5) rects in
  check_float "translation invariant" (Cost.symmetry_penalty c rects)
    (Cost.symmetry_penalty c moved)

let test_penalty_vertical_offset_counted () =
  let c = with_groups [ Symmetry.Pair { left = 0; right = 1 } ] in
  let aligned = [| r ~x:10 ~y:0 ~w:4 ~h:4; r ~x:26 ~y:0 ~w:4 ~h:4;
                   r ~x:0 ~y:40 ~w:4 ~h:4; r ~x:10 ~y:40 ~w:4 ~h:4 |] in
  let offset = [| r ~x:10 ~y:0 ~w:4 ~h:4; r ~x:26 ~y:9 ~w:4 ~h:4;
                  r ~x:0 ~y:40 ~w:4 ~h:4; r ~x:10 ~y:40 ~w:4 ~h:4 |] in
  check_float "aligned pair free" 0.0 (Cost.symmetry_penalty c aligned);
  check_float "vertical offset costs" 9.0 (Cost.symmetry_penalty c offset)

let test_evaluate_includes_symmetry () =
  let c = with_groups [ Symmetry.Pair { left = 0; right = 1 } ] in
  let rects = [| r ~x:0 ~y:0 ~w:4 ~h:4; r ~x:10 ~y:9 ~w:4 ~h:4;
                 r ~x:30 ~y:0 ~w:4 ~h:4; r ~x:40 ~y:0 ~w:4 ~h:4 |] in
  let b = Cost.evaluate c ~die_w:100 ~die_h:100 rects in
  check_bool "breakdown exposes misalignment" true (b.Cost.symmetry_misalign > 0.0);
  let without = Cost.evaluate base_circuit ~die_w:100 ~die_h:100 rects in
  check_bool "symmetric term increases total" true (b.Cost.total > without.Cost.total)

(* Effect on the coordinate annealer: optimizing WITH the symmetry term
   must end more symmetric than optimizing without it. *)
let test_coord_opt_respects_symmetry () =
  let c =
    Circuit.with_symmetry base_circuit
      [ Symmetry.Pair { left = 0; right = 1 }; Symmetry.Self 2 ]
  in
  let die_w, die_h = Circuit.default_die c in
  let dims = Dimbox.center (Circuit.dim_bounds c) in
  let run weights seed =
    let config = { Mps_placement.Coord_opt.default_config with iterations = 2500; weights } in
    let r =
      Mps_placement.Coord_opt.optimize ~config ~rng:(Mps_rng.Rng.create ~seed) c ~die_w
        ~die_h dims
    in
    Cost.symmetry_penalty c r.Mps_placement.Coord_opt.rects
  in
  let strong = { Cost.default_weights with Cost.symmetry = 20.0 } in
  let off = { Cost.default_weights with Cost.symmetry = 0.0 } in
  let with_sym = run strong 5 and without_sym = run off 5 in
  check_bool "symmetry weight reduces misalignment" true (with_sym < without_sym +. 1e-9)

let test_benchmarks_carry_symmetry () =
  check_bool "mixer has groups" true (Benchmarks.mixer.Circuit.symmetry <> []);
  check_bool "tso has groups" true (Benchmarks.two_stage_opamp.Circuit.symmetry <> []);
  check_bool "synthetic has none" true (Benchmarks.circ01.Circuit.symmetry = [])

let prop_penalty_nonnegative =
  QCheck.Test.make ~name:"symmetry penalty is non-negative" ~count:300
    QCheck.(pair (int_range 0 10_000) (int_range 2 4))
    (fun (seed, n_groups) ->
      let rng = Rng.create ~seed in
      let groups =
        List.filteri (fun i _ -> i < n_groups)
          [ Symmetry.Pair { left = 0; right = 1 }; Symmetry.Self 2; Symmetry.Self 3 ]
      in
      let c = with_groups groups in
      let rects =
        Array.init 4 (fun _ ->
            r ~x:(Rng.int rng 100) ~y:(Rng.int rng 100) ~w:(Rng.int_in rng 1 20)
              ~h:(Rng.int_in rng 1 20))
      in
      Cost.symmetry_penalty c rects >= 0.0)

let suite =
  [
    ("validate: out of range", `Quick, test_validate_rejects_out_of_range);
    ("validate: duplicate membership", `Quick, test_validate_rejects_duplicates);
    ("validate: degenerate pair", `Quick, test_validate_rejects_degenerate_pair);
    ("group members", `Quick, test_members);
    ("penalty: zero without groups", `Quick, test_penalty_zero_without_groups);
    ("penalty: zero when symmetric", `Quick, test_penalty_zero_when_symmetric);
    ("penalty: positive when misaligned", `Quick, test_penalty_positive_when_misaligned);
    ("penalty: translation invariant", `Quick, test_penalty_translation_invariant);
    ("penalty: vertical offset counted", `Quick, test_penalty_vertical_offset_counted);
    ("evaluate includes the symmetry term", `Quick, test_evaluate_includes_symmetry);
    ("coordinate annealer respects symmetry", `Quick, test_coord_opt_respects_symmetry);
    ("benchmarks carry symmetry groups", `Quick, test_benchmarks_carry_symmetry);
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_penalty_nonnegative ]

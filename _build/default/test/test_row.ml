(* Tests for the interval rows of the multi-placement structure
   (paper Fig. 3): disjoint ascending interval objects carrying
   placement-index sets. *)

open Mps_geometry
open Mps_core

let iv = Interval.make

let set_of_list = Row.Int_set.of_list
let check_set name expected actual =
  Alcotest.(check (list int)) name expected (Row.Int_set.elements actual)

let test_empty () =
  Alcotest.(check bool) "empty" true (Row.is_empty Row.empty);
  check_set "find in empty" [] (Row.find Row.empty 5);
  check_set "find_range in empty" [] (Row.find_range Row.empty (iv 0 100))

let test_single_range () =
  let row = Row.add_range Row.empty (iv 10 20) 0 in
  check_set "inside" [ 0 ] (Row.find row 15);
  check_set "at lo" [ 0 ] (Row.find row 10);
  check_set "at hi" [ 0 ] (Row.find row 20);
  check_set "below" [] (Row.find row 9);
  check_set "above" [] (Row.find row 21)

let test_disjoint_ranges () =
  let row = Row.add_range (Row.add_range Row.empty (iv 0 5) 0) (iv 10 15) 1 in
  check_set "first" [ 0 ] (Row.find row 3);
  check_set "gap" [] (Row.find row 7);
  check_set "second" [ 1 ] (Row.find row 12);
  Alcotest.(check int) "two interval objects" 2 (List.length (Row.intervals row))

let test_overlapping_ranges_split () =
  (* Paper's Store Placement: inserting a second overlapping interval
     splits the existing interval object. *)
  let row = Row.add_range (Row.add_range Row.empty (iv 0 10) 0) (iv 5 15) 1 in
  check_set "left only 0" [ 0 ] (Row.find row 2);
  check_set "middle both" [ 0; 1 ] (Row.find row 7);
  check_set "right only 1" [ 1 ] (Row.find row 12);
  Alcotest.(check int) "three interval objects" 3 (List.length (Row.intervals row))

let test_nested_range () =
  let row = Row.add_range (Row.add_range Row.empty (iv 0 20) 0) (iv 8 12) 1 in
  check_set "left" [ 0 ] (Row.find row 5);
  check_set "nested" [ 0; 1 ] (Row.find row 10);
  check_set "right" [ 0 ] (Row.find row 15)

let test_range_covering_several () =
  let row =
    Row.add_range
      (Row.add_range (Row.add_range Row.empty (iv 0 4) 0) (iv 10 14) 1)
      (iv 2 12) 2
  in
  check_set "first alone" [ 0 ] (Row.find row 1);
  check_set "first+new" [ 0; 2 ] (Row.find row 3);
  check_set "gap now new" [ 2 ] (Row.find row 7);
  check_set "second+new" [ 1; 2 ] (Row.find row 11);
  check_set "second alone" [ 1 ] (Row.find row 14)

let test_same_range_twice () =
  let row = Row.add_range (Row.add_range Row.empty (iv 3 9) 0) (iv 3 9) 1 in
  check_set "both" [ 0; 1 ] (Row.find row 5);
  Alcotest.(check int) "single object" 1 (List.length (Row.intervals row))

let test_find_range_union () =
  let row = Row.add_range (Row.add_range Row.empty (iv 0 5) 0) (iv 10 15) 1 in
  check_set "spanning both" [ 0; 1 ] (Row.find_range row (iv 4 11));
  check_set "only gap" [] (Row.find_range row (iv 6 9));
  check_set "touching first" [ 0 ] (Row.find_range row (iv 5 8));
  check_set "everything" [ 0; 1 ] (Row.find_range row (iv 0 100))

let test_remove_id () =
  let row = Row.add_range (Row.add_range Row.empty (iv 0 10) 0) (iv 5 15) 1 in
  let row' = Row.remove_id row 0 in
  check_set "left gone" [] (Row.find row' 2);
  check_set "middle only 1" [ 1 ] (Row.find row' 7);
  check_set "right only 1" [ 1 ] (Row.find row' 12);
  (* 5..10 and 11..15 both hold {1}: they must merge back *)
  Alcotest.(check int) "merged back" 1 (List.length (Row.intervals row'))

let test_remove_missing_id_is_noop () =
  let row = Row.add_range Row.empty (iv 0 10) 0 in
  let row' = Row.remove_id row 42 in
  check_set "unchanged" [ 0 ] (Row.find row' 5);
  Alcotest.(check bool) "invariants" true (Row.invariants_ok row')

let test_ids () =
  let row = Row.add_range (Row.add_range Row.empty (iv 0 5) 3) (iv 2 9) 7 in
  check_set "ids" [ 3; 7 ] (Row.ids row)

(* Property tests: a row built from random (interval, id) insertions and
   removals behaves like the naive map value -> set of covering ids. *)

type op =
  | Add of int * int * int  (* lo, len, id *)
  | Remove of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map3 (fun lo len id -> Add (lo, len, id)) (int_range 0 60) (int_range 0 25)
             (int_range 0 9));
        (1, map (fun id -> Remove id) (int_range 0 9));
      ])

let print_op = function
  | Add (lo, len, id) -> Printf.sprintf "Add[%d..%d]#%d" lo (lo + len) id
  | Remove id -> Printf.sprintf "Remove#%d" id

let arb_ops = QCheck.make ~print:(fun l -> String.concat ";" (List.map print_op l))
    (QCheck.Gen.list_size (QCheck.Gen.int_range 0 25) op_gen)

(* Naive model: list of (interval, id) currently live. *)
let apply_ops ops =
  let step (row, model) = function
    | Add (lo, len, id) ->
      let range = iv lo (lo + len) in
      (Row.add_range row range id, (range, id) :: model)
    | Remove id -> (Row.remove_id row id, List.filter (fun (_, i) -> i <> id) model)
  in
  List.fold_left step (Row.empty, []) ops

let model_find model v =
  set_of_list (List.filter_map (fun (r, id) -> if Interval.contains r v then Some id else None) model)

let prop_row_matches_model =
  QCheck.Test.make ~name:"row find matches naive model" ~count:500 arb_ops (fun ops ->
      let row, model = apply_ops ops in
      let ok = ref true in
      for v = -2 to 92 do
        if not (Row.Int_set.equal (Row.find row v) (model_find model v)) then ok := false
      done;
      !ok)

let prop_row_invariants =
  QCheck.Test.make ~name:"row invariants hold under random ops" ~count:500 arb_ops
    (fun ops ->
      let row, _ = apply_ops ops in
      Row.invariants_ok row)

let prop_find_range_is_union =
  QCheck.Test.make ~name:"find_range equals union of finds" ~count:300
    (QCheck.pair arb_ops (QCheck.pair (QCheck.int_range 0 60) (QCheck.int_range 0 25)))
    (fun (ops, (lo, len)) ->
      let row, _ = apply_ops ops in
      let range = iv lo (lo + len) in
      let expected = ref Row.Int_set.empty in
      for v = lo to lo + len do
        expected := Row.Int_set.union !expected (Row.find row v)
      done;
      Row.Int_set.equal (Row.find_range row range) !expected)

let suite =
  [
    ("empty row", `Quick, test_empty);
    ("single range", `Quick, test_single_range);
    ("disjoint ranges", `Quick, test_disjoint_ranges);
    ("overlapping ranges split objects", `Quick, test_overlapping_ranges_split);
    ("nested range", `Quick, test_nested_range);
    ("range covering several objects and gaps", `Quick, test_range_covering_several);
    ("identical ranges share one object", `Quick, test_same_range_twice);
    ("find_range unions across objects", `Quick, test_find_range_union);
    ("remove_id splits back and merges", `Quick, test_remove_id);
    ("remove of unknown id is a no-op", `Quick, test_remove_missing_id_is_noop);
    ("ids collects everything", `Quick, test_ids);
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_row_matches_model; prop_row_invariants; prop_find_range_is_union ]

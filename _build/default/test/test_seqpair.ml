(* Tests for the sequence-pair representation and its annealing placer. *)

open Mps_rng
open Mps_geometry
open Mps_netlist
open Mps_placement

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let dims4 = Dims.of_pairs [| (4, 3); (2, 5); (6, 2); (3, 3) |]

let test_identity_row () =
  (* identity pair: every earlier block is left of every later one *)
  let sp = Seq_pair.identity 4 in
  let rects = Seq_pair.pack sp dims4 in
  check_int "x0" 0 rects.(0).Rect.x;
  check_int "x1" 4 rects.(1).Rect.x;
  check_int "x2" 6 rects.(2).Rect.x;
  check_int "x3" 12 rects.(3).Rect.x;
  Array.iter (fun r -> check_int "one row" 0 r.Rect.y) rects

let test_reversed_column () =
  (* Γ+ reversed, Γ- identity: every earlier block in Γ- is below *)
  let sp = Seq_pair.of_arrays ~pos:[| 3; 2; 1; 0 |] ~neg:[| 0; 1; 2; 3 |] in
  let rects = Seq_pair.pack sp dims4 in
  Array.iter (fun r -> check_int "one column" 0 r.Rect.x) rects;
  check_int "y0" 0 rects.(0).Rect.y;
  check_int "y1" 3 rects.(1).Rect.y;
  check_int "y2" 8 rects.(2).Rect.y;
  check_int "y3" 10 rects.(3).Rect.y

let test_two_blocks_relations () =
  let dims = Dims.of_pairs [| (2, 2); (3, 3) |] in
  let left_of = Seq_pair.of_arrays ~pos:[| 0; 1 |] ~neg:[| 0; 1 |] in
  let r = Seq_pair.pack left_of dims in
  check_bool "0 left of 1" true (Rect.right r.(0) <= r.(1).Rect.x);
  let below = Seq_pair.of_arrays ~pos:[| 1; 0 |] ~neg:[| 0; 1 |] in
  let r = Seq_pair.pack below dims in
  check_bool "0 below 1" true (Rect.top r.(0) <= r.(1).Rect.y)

let test_before_in_both () =
  let sp = Seq_pair.of_arrays ~pos:[| 0; 1; 2 |] ~neg:[| 1; 0; 2 |] in
  check_bool "0 before 2" true (Seq_pair.before_in_both sp 0 2);
  check_bool "0 not before 1" false (Seq_pair.before_in_both sp 0 1)

let test_of_arrays_validation () =
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Seq_pair: pos is not a permutation") (fun () ->
      ignore (Seq_pair.of_arrays ~pos:[| 0; 0 |] ~neg:[| 0; 1 |]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Seq_pair.of_arrays: length mismatch") (fun () ->
      ignore (Seq_pair.of_arrays ~pos:[| 0 |] ~neg:[| 0; 1 |]))

let prop_pack_overlap_free =
  QCheck.Test.make ~name:"sequence-pair packings are overlap-free" ~count:300
    QCheck.(pair small_int (int_range 0 10_000))
    (fun (n_raw, seed) ->
      let n = 1 + (n_raw mod 8) in
      let rng = Rng.create ~seed in
      let sp = Seq_pair.random rng n in
      let dims =
        Dims.of_pairs (Array.init n (fun _ -> (Rng.int_in rng 1 12, Rng.int_in rng 1 12)))
      in
      let rects = Seq_pair.pack sp dims in
      Rect.any_overlap rects = None
      && Array.for_all (fun r -> r.Rect.x >= 0 && r.Rect.y >= 0) rects)

let prop_perturb_stays_permutation =
  QCheck.Test.make ~name:"perturb keeps both sequences permutations" ~count:300
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let sp = ref (Seq_pair.random rng 6) in
      for _ = 1 to 20 do
        sp := Seq_pair.perturb rng !sp
      done;
      let is_perm a = List.sort Int.compare (Array.to_list a) = List.init 6 Fun.id in
      is_perm (Seq_pair.positive !sp) && is_perm (Seq_pair.negative !sp))

let test_swap_both_preserves_relative_others () =
  let rng = Rng.create ~seed:4 in
  let sp = Seq_pair.random rng 5 in
  let sp' = Seq_pair.apply_move rng Seq_pair.Swap_both sp in
  (* both sequences remain permutations of 0..4 *)
  let is_perm a = List.sort Int.compare (Array.to_list a) = List.init 5 Fun.id in
  check_bool "pos perm" true (is_perm (Seq_pair.positive sp'));
  check_bool "neg perm" true (is_perm (Seq_pair.negative sp'))

let test_single_block () =
  let sp = Seq_pair.identity 1 in
  let rects = Seq_pair.pack sp (Dims.of_pairs [| (7, 9) |]) in
  check_bool "at origin" true (rects.(0).Rect.x = 0 && rects.(0).Rect.y = 0);
  check_bool "perturb is identity" true (Seq_pair.equal sp (Seq_pair.perturb (Rng.create ~seed:0) sp))

(* Seqpair placer *)

let circuit = Benchmarks.circ01
let die_w, die_h = Circuit.default_die circuit

let test_placer_legal_and_improves () =
  let rng = Rng.create ~seed:6 in
  let dims = Dimbox.center (Circuit.dim_bounds circuit) in
  let config = { Mps_baselines.Seqpair_placer.default_config with iterations = 1200 } in
  let r = Mps_baselines.Seqpair_placer.place ~config ~rng circuit ~die_w ~die_h dims in
  check_bool "overlap-free" true (Rect.any_overlap r.Mps_baselines.Seqpair_placer.rects = None);
  check_bool "legal inside die" true r.Mps_baselines.Seqpair_placer.legal;
  (* beats a random sequence pair *)
  let random_cost =
    let sp = Seq_pair.random rng (Circuit.n_blocks circuit) in
    Mps_cost.Cost.total circuit ~die_w ~die_h (Seq_pair.pack sp dims)
  in
  check_bool "annealing improves" true (r.Mps_baselines.Seqpair_placer.cost <= random_cost)

let test_placer_deterministic () =
  let dims = Dimbox.center (Circuit.dim_bounds circuit) in
  let config = { Mps_baselines.Seqpair_placer.default_config with iterations = 500 } in
  let run seed =
    (Mps_baselines.Seqpair_placer.place ~config ~rng:(Rng.create ~seed) circuit ~die_w
       ~die_h dims)
      .Mps_baselines.Seqpair_placer.cost
  in
  Alcotest.(check (float 1e-12)) "deterministic" (run 3) (run 3)

let suite =
  [
    ("identity pair packs one row", `Quick, test_identity_row);
    ("reversed pair packs one column", `Quick, test_reversed_column);
    ("pairwise relations", `Quick, test_two_blocks_relations);
    ("before_in_both", `Quick, test_before_in_both);
    ("of_arrays validation", `Quick, test_of_arrays_validation);
    ("swap-both keeps permutations", `Quick, test_swap_both_preserves_relative_others);
    ("single block", `Quick, test_single_block);
    ("placer: legal and improving", `Quick, test_placer_legal_and_improves);
    ("placer: deterministic", `Quick, test_placer_deterministic);
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_pack_overlap_free; prop_perturb_stays_permutation ]

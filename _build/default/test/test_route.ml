(* Tests for the routing grid, the maze router and parasitic
   extraction. *)

open Mps_geometry
open Mps_netlist
open Mps_route

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Route_grid *)

let test_grid_shape () =
  let g = Route_grid.create ~die_w:40 ~die_h:20 ~cell:4 ~capacity:2 [||] in
  check_int "cols" 10 (Route_grid.cols g);
  check_int "rows" 5 (Route_grid.rows g);
  let g2 = Route_grid.create ~die_w:41 ~die_h:21 ~cell:4 ~capacity:2 [||] in
  check_int "cols rounded up" 11 (Route_grid.cols g2);
  check_int "rows rounded up" 6 (Route_grid.rows g2)

let test_grid_blocking () =
  let rects = [| Rect.make ~x:8 ~y:4 ~w:8 ~h:8 |] in
  let g = Route_grid.create ~die_w:40 ~die_h:20 ~cell:4 ~capacity:2 rects in
  check_bool "inside blocked" true (Route_grid.blocked g (3, 2));
  check_bool "outside free" false (Route_grid.blocked g (0, 0));
  check_bool "right of block free" false (Route_grid.blocked g (5, 2))

let test_grid_unblock () =
  let rects = [| Rect.make ~x:0 ~y:0 ~w:40 ~h:20 |] in
  let g = Route_grid.create ~die_w:40 ~die_h:20 ~cell:4 ~capacity:2 rects in
  check_bool "blocked" true (Route_grid.blocked g (2, 2));
  Route_grid.unblock g (2, 2);
  check_bool "carved" false (Route_grid.blocked g (2, 2))

let test_grid_cells_and_points () =
  let g = Route_grid.create ~die_w:40 ~die_h:20 ~cell:4 ~capacity:2 [||] in
  check_bool "cell of point" true (Route_grid.cell_of_point g ~x:9.0 ~y:5.0 = (2, 1));
  check_bool "clamped" true (Route_grid.cell_of_point g ~x:1000.0 ~y:(-3.0) = (9, 0));
  let x, y = Route_grid.center_of_cell g (2, 1) in
  check_bool "center" true (abs_float (x -. 10.0) < 1e-9 && abs_float (y -. 6.0) < 1e-9)

let test_grid_congestion () =
  let g = Route_grid.create ~die_w:8 ~die_h:8 ~cell:4 ~capacity:2 [||] in
  check_int "no overflow" 0 (Route_grid.overflow g);
  for _ = 1 to 5 do
    Route_grid.occupy g (0, 0)
  done;
  check_int "usage" 5 (Route_grid.usage g (0, 0));
  check_int "overflow = usage - capacity" 3 (Route_grid.overflow g)

let test_grid_neighbors () =
  let rects = [| Rect.make ~x:4 ~y:0 ~w:4 ~h:4 |] in
  let g = Route_grid.create ~die_w:12 ~die_h:8 ~cell:4 ~capacity:2 rects in
  (* (0,0): right neighbour (1,0) is blocked; up (0,1) is free *)
  Alcotest.(check (list (pair int int))) "corner neighbours" [ (0, 1) ]
    (Route_grid.neighbors g (0, 0))

(* Router on a hand-made two-block circuit *)

let two_block_circuit =
  Circuit.make ~name:"rt"
    ~blocks:
      [|
        Block.make_wh ~id:0 ~name:"a" ~w:(8, 16) ~h:(8, 16);
        Block.make_wh ~id:1 ~name:"b" ~w:(8, 16) ~h:(8, 16);
      |]
    ~nets:
      [|
        Net.make ~id:0 ~name:"n"
          ~pins:[ Net.block_pin ~fx:0.5 ~fy:0.5 0; Net.block_pin ~fx:0.5 ~fy:0.5 1 ];
      |]

let test_route_simple_net () =
  let rects = [| Rect.make ~x:0 ~y:0 ~w:8 ~h:8; Rect.make ~x:32 ~y:0 ~w:8 ~h:8 |] in
  let r = Router.route two_block_circuit ~die_w:60 ~die_h:40 rects in
  check_int "no failures" 0 r.Router.failed_nets;
  check_bool "routed" true r.Router.nets.(0).Router.routed;
  (* pins are ~32 units apart: the routed length must be at least that
     and not wildly more *)
  let len = r.Router.nets.(0).Router.length in
  check_bool "length sane" true (len >= 28.0 && len <= 80.0)

let test_route_detours_around_obstacle () =
  (* a third block sits exactly between the two pins: the route must be
     longer than the straight line *)
  let circuit =
    Circuit.make ~name:"rt3"
      ~blocks:
        [|
          Block.make_wh ~id:0 ~name:"a" ~w:(8, 16) ~h:(8, 16);
          Block.make_wh ~id:1 ~name:"b" ~w:(8, 16) ~h:(8, 16);
          Block.make_wh ~id:2 ~name:"wall" ~w:(8, 16) ~h:(8, 40);
        |]
      ~nets:
        [|
          Net.make ~id:0 ~name:"n"
            ~pins:[ Net.block_pin ~fx:0.5 ~fy:0.5 0; Net.block_pin ~fx:0.5 ~fy:0.5 1 ];
        |]
  in
  let straight =
    [| Rect.make ~x:0 ~y:16 ~w:8 ~h:8; Rect.make ~x:52 ~y:16 ~w:8 ~h:8;
       Rect.make ~x:24 ~y:28 ~w:8 ~h:8 |]
  in
  let blocked_mid =
    [| Rect.make ~x:0 ~y:16 ~w:8 ~h:8; Rect.make ~x:52 ~y:16 ~w:8 ~h:8;
       Rect.make ~x:24 ~y:0 ~w:8 ~h:40 |]
  in
  let len rects =
    (Router.route circuit ~die_w:60 ~die_h:48 rects).Router.nets.(0).Router.length
  in
  check_bool "wall forces a detour" true (len blocked_mid > len straight)

let test_route_benchmark_circuits () =
  (* every benchmark circuit routes at a reasonable floorplan without
     failed nets blowing up *)
  List.iter
    (fun c ->
      let die_w, die_h = Circuit.default_die c in
      let rng = Mps_rng.Rng.create ~seed:3 in
      let p = Mps_placement.Placement.random rng c ~die_w ~die_h in
      let rects = Mps_placement.Placement.rects p (Circuit.min_dims c) in
      let r = Router.route c ~die_w ~die_h rects in
      check_bool (c.Circuit.name ^ ": mostly routable") true
        (r.Router.failed_nets <= Circuit.n_nets c / 4);
      check_bool (c.Circuit.name ^ ": positive length") true (r.Router.total_length > 0.0);
      Array.iter
        (fun (net : Router.routed_net) ->
          check_bool "length non-negative" true (net.Router.length >= 0.0))
        r.Router.nets)
    [ Benchmarks.circ01; Benchmarks.two_stage_opamp; Benchmarks.mixer ]

let test_route_deterministic () =
  let c = Benchmarks.circ01 in
  let die_w, die_h = Circuit.default_die c in
  let rng = Mps_rng.Rng.create ~seed:3 in
  let p = Mps_placement.Placement.random rng c ~die_w ~die_h in
  let rects = Mps_placement.Placement.rects p (Circuit.min_dims c) in
  let r1 = Router.route c ~die_w ~die_h rects in
  let r2 = Router.route c ~die_w ~die_h rects in
  Alcotest.(check (float 1e-9)) "same total" r1.Router.total_length r2.Router.total_length

let test_route_longer_when_spread () =
  let compact = [| Rect.make ~x:0 ~y:0 ~w:8 ~h:8; Rect.make ~x:12 ~y:0 ~w:8 ~h:8 |] in
  let spread = [| Rect.make ~x:0 ~y:0 ~w:8 ~h:8; Rect.make ~x:48 ~y:28 ~w:8 ~h:8 |] in
  let len rects =
    (Router.route two_block_circuit ~die_w:60 ~die_h:40 rects).Router.total_length
  in
  check_bool "spread floorplan routes longer" true (len spread > len compact)

(* Extraction *)

let test_extraction_scales_with_length () =
  let compact = [| Rect.make ~x:0 ~y:0 ~w:8 ~h:8; Rect.make ~x:12 ~y:0 ~w:8 ~h:8 |] in
  let spread = [| Rect.make ~x:0 ~y:0 ~w:8 ~h:8; Rect.make ~x:48 ~y:28 ~w:8 ~h:8 |] in
  let cap rects =
    let r = Router.route two_block_circuit ~die_w:60 ~die_h:40 rects in
    (Extraction.extract two_block_circuit r).Extraction.total_capacitance_ff
  in
  check_bool "longer wires, more cap" true (cap spread > cap compact)

let test_extraction_pin_term () =
  (* zero-length net still pays the per-pin capacitance *)
  let rects = [| Rect.make ~x:0 ~y:0 ~w:8 ~h:8; Rect.make ~x:12 ~y:0 ~w:8 ~h:8 |] in
  let r = Router.route two_block_circuit ~die_w:60 ~die_h:40 rects in
  let e = Extraction.extract two_block_circuit r in
  let expected_min = 2.0 *. Extraction.default_constants.Extraction.c_ff_per_pin in
  check_bool "pin caps included" true
    (Extraction.net_capacitance e 0 >= expected_min -. 1e-9);
  Alcotest.check_raises "unknown net"
    (Invalid_argument "Extraction.net_capacitance: unknown net") (fun () ->
      ignore (Extraction.net_capacitance e 42))

let test_routed_performance_plausible () =
  let process = Mps_modgen.Process.default in
  let circuit = Mps_synthesis.Opamp.circuit process in
  let die_w, die_h = Circuit.default_die circuit in
  let sizing = Mps_synthesis.Opamp.nominal_sizing in
  let dims = Mps_synthesis.Opamp.dims process circuit sizing in
  let rng = Mps_rng.Rng.create ~seed:5 in
  let p = Mps_placement.Placement.random rng circuit ~die_w ~die_h in
  let rects = Mps_placement.Repack.instantiate ~die:(die_w, die_h)
      ~coords:p.Mps_placement.Placement.coords dims
  in
  let hpwl_perf = Mps_synthesis.Opamp.performance process circuit ~die_w ~die_h sizing rects in
  let routed_perf =
    Mps_synthesis.Opamp.performance_routed process circuit ~die_w ~die_h sizing rects
  in
  check_bool "routed wire cap positive" true
    (routed_perf.Mps_synthesis.Opamp.wire_cap_ff > 0.0);
  check_bool "same power model" true
    (abs_float
       (routed_perf.Mps_synthesis.Opamp.power_mw -. hpwl_perf.Mps_synthesis.Opamp.power_mw)
     < 1e-9)

let test_synth_loop_routed_mode () =
  let process = Mps_modgen.Process.default in
  let circuit = Mps_synthesis.Opamp.circuit process in
  let die_w, die_h = Circuit.default_die circuit in
  let structure, _ = Mps_core.Generator.generate ~config:Mps_core.Generator.fast_config circuit in
  let config =
    { Mps_synthesis.Synth_loop.default_config with
      iterations = 8;
      parasitics = Mps_synthesis.Synth_loop.Routed_extraction }
  in
  let r =
    Mps_synthesis.Synth_loop.run ~config process circuit ~die_w ~die_h
      (Mps_synthesis.Synth_loop.mps_placer structure)
  in
  check_bool "routed loop finishes" true (Float.is_finite r.Mps_synthesis.Synth_loop.best_cost)

let suite =
  [
    ("grid: shape", `Quick, test_grid_shape);
    ("grid: block interiors blocked", `Quick, test_grid_blocking);
    ("grid: pin cells can be carved", `Quick, test_grid_unblock);
    ("grid: point/cell mapping", `Quick, test_grid_cells_and_points);
    ("grid: congestion accounting", `Quick, test_grid_congestion);
    ("grid: neighbours skip obstacles", `Quick, test_grid_neighbors);
    ("router: simple two-pin net", `Quick, test_route_simple_net);
    ("router: detours around obstacles", `Quick, test_route_detours_around_obstacle);
    ("router: benchmark circuits route", `Quick, test_route_benchmark_circuits);
    ("router: deterministic", `Quick, test_route_deterministic);
    ("router: spread floorplans route longer", `Quick, test_route_longer_when_spread);
    ("extraction: capacitance grows with length", `Quick, test_extraction_scales_with_length);
    ("extraction: per-pin term and errors", `Quick, test_extraction_pin_term);
    ("opamp: routed performance plausible", `Quick, test_routed_performance_plausible);
    ("synthesis loop: routed parasitics mode", `Quick, test_synth_loop_routed_mode);
  ]

(* Tests for multi-placement structure persistence. *)

open Mps_geometry
open Mps_netlist
open Mps_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let circuit = Benchmarks.circ01

let structure =
  lazy (fst (Generator.generate ~config:Generator.fast_config circuit))

let test_roundtrip_string () =
  let s = Lazy.force structure in
  let doc = Codec.to_string s in
  let s' = Codec.of_string ~circuit doc in
  check_int "placement count survives" (Structure.n_placements s) (Structure.n_placements s');
  Alcotest.(check (float 1e-12)) "coverage survives" (Structure.coverage s) (Structure.coverage s');
  check_bool "die survives" true (Structure.die s = Structure.die s');
  (* stored placements identical field by field *)
  Array.iter2
    (fun a b ->
      check_bool "boxes equal" true (Dimbox.equal a.Stored.box b.Stored.box);
      check_bool "expansions equal" true (Dimbox.equal a.Stored.expansion b.Stored.expansion);
      check_bool "coords equal" true
        (Mps_placement.Placement.equal a.Stored.placement b.Stored.placement);
      check_bool "best dims equal" true (Dims.equal a.Stored.best_dims b.Stored.best_dims);
      Alcotest.(check (float 0.0)) "avg cost exact" a.Stored.avg_cost b.Stored.avg_cost;
      Alcotest.(check (float 0.0)) "best cost exact" a.Stored.best_cost b.Stored.best_cost)
    (Structure.placements s) (Structure.placements s');
  let ba = Structure.backup s and bb = Structure.backup s' in
  check_bool "backup survives" true
    (Mps_placement.Placement.equal ba.Stored.placement bb.Stored.placement)

let test_roundtrip_queries_agree () =
  let s = Lazy.force structure in
  let s' = Codec.of_string ~circuit (Codec.to_string s) in
  let probes = Mps_experiments.Experiments.probe_dims ~seed:5 ~n:300 s in
  Array.iter
    (fun dims ->
      let a1, _ = Structure.query s dims and a2, _ = Structure.query s' dims in
      check_bool "same answer" true (a1 = a2);
      let r1 = Structure.instantiate s dims and r2 = Structure.instantiate s' dims in
      check_bool "same floorplan" true (Array.for_all2 Rect.equal r1 r2))
    probes

let test_roundtrip_file () =
  let s = Lazy.force structure in
  let path = Filename.temp_file "mps_codec" ".mps" in
  Codec.save s ~path;
  let s' = Codec.load ~circuit ~path in
  Sys.remove path;
  check_int "count" (Structure.n_placements s) (Structure.n_placements s')

let test_wrong_circuit_rejected () =
  let s = Lazy.force structure in
  let doc = Codec.to_string s in
  check_bool "rejects another circuit" true
    (try
       ignore (Codec.of_string ~circuit:Benchmarks.circ02 doc);
       false
     with Failure _ -> true)

let test_bad_header () =
  check_bool "rejects garbage" true
    (try
       ignore (Codec.of_string ~circuit "not a structure\n");
       false
     with Failure _ -> true)

let test_truncated_document () =
  let s = Lazy.force structure in
  let doc = Codec.to_string s in
  let truncated = String.sub doc 0 (String.length doc / 2) in
  check_bool "rejects truncation" true
    (try
       ignore (Codec.of_string ~circuit truncated);
       false
     with Failure _ -> true)

let test_corrupted_interval () =
  let s = Lazy.force structure in
  let doc = Codec.to_string s in
  (* flip a box line into an inverted interval *)
  let corrupted =
    String.split_on_char '\n' doc
    |> List.map (fun l ->
           if String.length l > 6 && String.sub l 0 6 = "box.w " then "box.w 9 1" else l)
    |> String.concat "\n"
  in
  check_bool "rejects inverted interval" true
    (try
       ignore (Codec.of_string ~circuit corrupted);
       false
     with Failure _ -> true)

(* Format freeze: a hand-written v1 document must keep parsing in
   future versions. *)
let golden_v1 =
  String.concat "\n"
    [
      "mps-structure v1";
      "circuit 1 1 golden";
      "die 100 100";
      "placements 1";
      "placement 10 5 0";
      "coords 3 4";
      "box.w 2 8";
      "box.h 2 8";
      "expansion.w 1 20";
      "expansion.h 1 20";
      "best_dims 5 5";
      "backup";
      "placement 12 6 1";
      "coords 0 0";
      "box.w 1 50";
      "box.h 1 50";
      "expansion.w 1 30";
      "expansion.h 1 30";
      "best_dims 10 10";
      "";
    ]

let golden_circuit =
  Circuit.make ~name:"golden"
    ~blocks:[| Mps_netlist.Block.make_wh ~id:0 ~name:"a" ~w:(1, 50) ~h:(1, 50) |]
    ~nets:
      [| Mps_netlist.Net.make ~id:0 ~name:"n"
           ~pins:[ Mps_netlist.Net.block_pin 0; Mps_netlist.Net.pad ~px:0.0 ~py:0.0 ] |]

let test_golden_v1_parses () =
  let s = Codec.of_string ~circuit:golden_circuit golden_v1 in
  check_int "one placement" 1 (Structure.n_placements s);
  check_bool "backup is template-like" true (Structure.backup s).Stored.template_like;
  match Structure.query s (Mps_geometry.Dims.of_pairs [| (5, 5) |]) with
  | Structure.Stored_placement 0, _ -> ()
  | _ -> Alcotest.fail "golden query must hit placement 0"

let suite =
  [
    ("golden v1 document parses", `Quick, test_golden_v1_parses);
    ("round-trip via string", `Quick, test_roundtrip_string);
    ("round-trip answers identical queries", `Quick, test_roundtrip_queries_agree);
    ("round-trip via file", `Quick, test_roundtrip_file);
    ("wrong circuit rejected", `Quick, test_wrong_circuit_rejected);
    ("garbage header rejected", `Quick, test_bad_header);
    ("truncated document rejected", `Quick, test_truncated_document);
    ("corrupted interval rejected", `Quick, test_corrupted_interval);
  ]

(* Tests for slicing floorplans (normalized Polish expressions) and the
   slicing annealing placer. *)

open Mps_rng
open Mps_geometry
open Mps_netlist
open Mps_placement

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let dims3 = Dims.of_pairs [| (4, 3); (2, 5); (6, 2) |]

(* Construction and validation *)

let test_row_expression () =
  let t = Slicing.row 3 in
  check_int "three blocks" 3 (Slicing.n_blocks t);
  check_bool "normalized" true (Slicing.is_normalized (Slicing.elements t))

let test_of_elements_validation () =
  let bad_cases =
    [
      ("empty", [||]);
      ("operator first", [| Slicing.V; Slicing.Block 0 |]);
      ("duplicate block", [| Slicing.Block 0; Slicing.Block 0; Slicing.V |]);
      ("bad id", [| Slicing.Block 0; Slicing.Block 5; Slicing.V |]);
      ("missing operator", [| Slicing.Block 0; Slicing.Block 1 |]);
      ("adjacent equal operators",
       [| Slicing.Block 0; Slicing.Block 1; Slicing.V; Slicing.Block 2; Slicing.V;
          Slicing.Block 3; Slicing.V; Slicing.V |]);
    ]
  in
  List.iter
    (fun (name, elements) ->
      check_bool name false (Slicing.is_normalized elements))
    bad_cases;
  Alcotest.check_raises "of_elements rejects"
    (Invalid_argument "Slicing.of_elements: not a normalized Polish expression")
    (fun () -> ignore (Slicing.of_elements [| Slicing.V |]))

(* Packing semantics *)

let test_pack_vertical () =
  (* 0 1 V : blocks side by side *)
  let t = Slicing.of_elements [| Slicing.Block 0; Slicing.Block 1; Slicing.V |] in
  let dims = Dims.of_pairs [| (4, 3); (2, 5) |] in
  let rects = Slicing.pack t dims in
  check_bool "0 at origin" true (rects.(0).Rect.x = 0 && rects.(0).Rect.y = 0);
  check_bool "1 to the right" true (rects.(1).Rect.x = 4 && rects.(1).Rect.y = 0);
  check_bool "bounding" true (Slicing.bounding t dims = (6, 5))

let test_pack_horizontal () =
  (* 0 1 H : block 1 above block 0 *)
  let t = Slicing.of_elements [| Slicing.Block 0; Slicing.Block 1; Slicing.H |] in
  let dims = Dims.of_pairs [| (4, 3); (2, 5) |] in
  let rects = Slicing.pack t dims in
  check_bool "0 at origin" true (rects.(0).Rect.x = 0 && rects.(0).Rect.y = 0);
  check_bool "1 above" true (rects.(1).Rect.x = 0 && rects.(1).Rect.y = 3);
  check_bool "bounding" true (Slicing.bounding t dims = (4, 8))

let test_pack_nested () =
  (* (0 1 V) 2 H : 0 beside 1, block 2 stacked on top *)
  let t =
    Slicing.of_elements
      [| Slicing.Block 0; Slicing.Block 1; Slicing.V; Slicing.Block 2; Slicing.H |]
  in
  let rects = Slicing.pack t dims3 in
  check_bool "2 above the pair" true (rects.(2).Rect.y = 5);
  check_bool "no overlap" true (Rect.any_overlap rects = None);
  (* widths: max (4+2) 6 = 6; heights: max 3 5 + 2 = 7 *)
  check_bool "bounding" true (Slicing.bounding t dims3 = (6, 7))

let test_pack_single () =
  let t = Slicing.row 1 in
  let rects = Slicing.pack t (Dims.of_pairs [| (7, 9) |]) in
  check_bool "at origin" true (rects.(0).Rect.x = 0 && rects.(0).Rect.y = 0)

let prop_pack_overlap_free =
  QCheck.Test.make ~name:"slicing packings are overlap-free" ~count:300
    QCheck.(pair (int_range 1 8) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let t = ref (Slicing.random rng n) in
      for _ = 1 to 15 do
        t := Slicing.perturb rng !t
      done;
      let dims =
        Dims.of_pairs (Array.init n (fun _ -> (Rng.int_in rng 1 12, Rng.int_in rng 1 12)))
      in
      let rects = Slicing.pack !t dims in
      Rect.any_overlap rects = None
      && Array.for_all (fun r -> r.Rect.x >= 0 && r.Rect.y >= 0) rects)

let prop_perturb_stays_normalized =
  QCheck.Test.make ~name:"perturb preserves normalization" ~count:300
    QCheck.(pair (int_range 1 8) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let t = ref (Slicing.random rng n) in
      let ok = ref true in
      for _ = 1 to 25 do
        t := Slicing.perturb rng !t;
        if not (Slicing.is_normalized (Slicing.elements !t)) then ok := false
      done;
      !ok)

let prop_bounding_contains_blocks =
  QCheck.Test.make ~name:"bounding box covers every block" ~count:200
    QCheck.(pair (int_range 1 6) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let t = Slicing.random rng n in
      let dims =
        Dims.of_pairs (Array.init n (fun _ -> (Rng.int_in rng 1 9, Rng.int_in rng 1 9)))
      in
      let w, h = Slicing.bounding t dims in
      Array.for_all
        (fun r -> Rect.right r <= w && Rect.top r <= h)
        (Slicing.pack t dims))

(* Placer *)

let circuit = Benchmarks.circ01
let die_w, die_h = Circuit.default_die circuit

let test_placer_legal_and_improves () =
  let rng = Rng.create ~seed:6 in
  let dims = Dimbox.center (Circuit.dim_bounds circuit) in
  let config = { Mps_baselines.Slicing_placer.default_config with iterations = 1200 } in
  let r = Mps_baselines.Slicing_placer.place ~config ~rng circuit ~die_w ~die_h dims in
  check_bool "overlap-free" true
    (Rect.any_overlap r.Mps_baselines.Slicing_placer.rects = None);
  check_bool "inside die" true r.Mps_baselines.Slicing_placer.legal;
  let random_cost =
    let t = Slicing.random rng (Circuit.n_blocks circuit) in
    Mps_cost.Cost.total circuit ~die_w ~die_h (Slicing.pack t dims)
  in
  check_bool "annealing improves" true (r.Mps_baselines.Slicing_placer.cost <= random_cost)

let test_placer_deterministic () =
  let dims = Dimbox.center (Circuit.dim_bounds circuit) in
  let config = { Mps_baselines.Slicing_placer.default_config with iterations = 400 } in
  let run seed =
    (Mps_baselines.Slicing_placer.place ~config ~rng:(Rng.create ~seed) circuit ~die_w
       ~die_h dims)
      .Mps_baselines.Slicing_placer.cost
  in
  Alcotest.(check (float 1e-12)) "deterministic" (run 4) (run 4)

let test_placer_expression_matches_rects () =
  let rng = Rng.create ~seed:8 in
  let dims = Dimbox.center (Circuit.dim_bounds circuit) in
  let config = { Mps_baselines.Slicing_placer.default_config with iterations = 300 } in
  let r = Mps_baselines.Slicing_placer.place ~config ~rng circuit ~die_w ~die_h dims in
  let repacked = Slicing.pack r.Mps_baselines.Slicing_placer.expression dims in
  check_bool "expression reproduces the floorplan" true
    (Array.for_all2 Rect.equal repacked r.Mps_baselines.Slicing_placer.rects)

let suite =
  [
    ("row expression", `Quick, test_row_expression);
    ("validation", `Quick, test_of_elements_validation);
    ("pack: vertical cut", `Quick, test_pack_vertical);
    ("pack: horizontal cut", `Quick, test_pack_horizontal);
    ("pack: nested cuts", `Quick, test_pack_nested);
    ("pack: single block", `Quick, test_pack_single);
    ("placer: legal and improving", `Quick, test_placer_legal_and_improves);
    ("placer: deterministic", `Quick, test_placer_deterministic);
    ("placer: expression reproduces floorplan", `Quick, test_placer_expression_matches_rects);
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_pack_overlap_free; prop_perturb_stays_normalized; prop_bounding_contains_blocks ]

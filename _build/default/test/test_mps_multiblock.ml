(* Multi-block fuzz of the builder and compiled structure: random
   candidate boxes over a two-block circuit (a 4-D dimension space), the
   compiled query checked against the linear oracle and the disjointness
   invariant after every store. *)

open Mps_geometry
open Mps_netlist
open Mps_placement
open Mps_core

let iv = Interval.make

let circuit2 =
  Circuit.make ~name:"two"
    ~blocks:
      [|
        Block.make_wh ~id:0 ~name:"a" ~w:(1, 60) ~h:(1, 60);
        Block.make_wh ~id:1 ~name:"b" ~w:(1, 60) ~h:(1, 60);
      |]
    ~nets:[| Net.make ~id:0 ~name:"n" ~pins:[ Net.block_pin 0; Net.block_pin 1 ] |]

let expansion2 =
  Dimbox.make ~w:[| iv 1 60; iv 1 60 |] ~h:[| iv 1 60; iv 1 60 |]

let stored2 ~avg box =
  Stored.make ~template_like:false
    ~placement:(Placement.make ~coords:[| (0, 0); (70, 70) |] ~die_w:200 ~die_h:200)
    ~box ~expansion:expansion2 ~avg_cost:avg ~best_cost:(avg /. 2.0)
    ~best_dims:(Dimbox.center box)

(* generator for one random sub-box of the 4-D space *)
let box_gen =
  QCheck.Gen.(
    let ivl = map2 (fun lo len -> iv lo (min 60 (lo + len))) (int_range 1 55) (int_range 0 25) in
    let* w0 = ivl and* w1 = ivl and* h0 = ivl and* h1 = ivl in
    return (Dimbox.make ~w:[| w0; w1 |] ~h:[| h0; h1 |]))

let arb_workload =
  QCheck.make
    ~print:(fun l ->
      String.concat "; " (List.map (fun (b, a) -> Format.asprintf "%a @@%.1f" Dimbox.pp b a) l))
    QCheck.Gen.(
      list_size (int_range 1 15) (pair box_gen (float_range 1.0 50.0)))

let build workload =
  let b = Builder.create circuit2 in
  List.iter (fun (box, avg) -> ignore (Builder.resolve_and_store b (stored2 ~avg box))) workload;
  b

let prop_disjoint_and_consistent =
  QCheck.Test.make ~name:"2-block builder: disjoint boxes, consistent rows" ~count:150
    arb_workload (fun workload ->
      let b = build workload in
      Builder.boxes_disjoint b && Builder.rows_consistent b)

let prop_query_oracle =
  QCheck.Test.make ~name:"2-block compiled query equals linear oracle" ~count:150
    (QCheck.pair arb_workload
       (QCheck.make
          QCheck.Gen.(
            let* a = int_range 1 60 and* b = int_range 1 60 in
            let* c = int_range 1 60 and* d = int_range 1 60 in
            return (Dims.of_pairs [| (a, b); (c, d) |]))))
    (fun (workload, dims) ->
      let s = Structure.compile (build workload) in
      let a1, s1 = Structure.query s dims in
      let a2, s2 = Structure.query_linear s dims in
      a1 = a2 && s1 == s2)

let prop_coverage_monotone_bounded =
  QCheck.Test.make ~name:"2-block coverage stays in [0,1]" ~count:150 arb_workload
    (fun workload ->
      let c = Builder.coverage (build workload) in
      c >= 0.0 && c <= 1.0 +. 1e-9)

let prop_every_stored_self_findable =
  QCheck.Test.make ~name:"2-block: every live box found over itself" ~count:150
    arb_workload (fun workload ->
      let b = build workload in
      List.for_all
        (fun (id, s) -> List.mem id (Builder.overlapping b s.Stored.box))
        (Builder.live b))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_disjoint_and_consistent;
      prop_query_oracle;
      prop_coverage_monotone_bounded;
      prop_every_stored_self_findable;
    ]

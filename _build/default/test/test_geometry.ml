(* Tests for intervals, rectangles, dimension vectors and dimension boxes. *)

open Mps_geometry

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let iv = Interval.make

(* Interval *)

let test_interval_basic () =
  let t = iv 3 7 in
  check_int "lo" 3 (Interval.lo t);
  check_int "hi" 7 (Interval.hi t);
  check_int "length" 5 (Interval.length t);
  check_bool "contains lo" true (Interval.contains t 3);
  check_bool "contains hi" true (Interval.contains t 7);
  check_bool "outside" false (Interval.contains t 8);
  Alcotest.check_raises "inverted" (Invalid_argument "Interval.make: 5 > 4") (fun () ->
      ignore (iv 5 4))

let test_interval_point () =
  let t = Interval.point 4 in
  check_int "length 1" 1 (Interval.length t);
  check_bool "contains" true (Interval.contains t 4)

let test_interval_overlap () =
  check_bool "disjoint" false (Interval.overlaps (iv 0 3) (iv 4 9));
  check_bool "touching" true (Interval.overlaps (iv 0 4) (iv 4 9));
  check_bool "nested" true (Interval.overlaps (iv 0 9) (iv 3 4));
  check_int "overlap length" 1 (Interval.overlap_length (iv 0 4) (iv 4 9));
  check_int "no overlap length" 0 (Interval.overlap_length (iv 0 3) (iv 5 9))

let test_interval_inter_hull () =
  (match Interval.inter (iv 0 5) (iv 3 9) with
  | Some r -> check_bool "inter" true (Interval.equal r (iv 3 5))
  | None -> Alcotest.fail "expected overlap");
  check_bool "disjoint inter" true (Interval.inter (iv 0 2) (iv 5 9) = None);
  check_bool "hull" true (Interval.equal (Interval.hull (iv 0 2) (iv 5 9)) (iv 0 9))

let test_interval_before_after_split () =
  let t = iv 3 10 in
  check_bool "before" true
    (match Interval.before t ~limit:6 with Some r -> Interval.equal r (iv 3 5) | None -> false);
  check_bool "before empty" true (Interval.before t ~limit:3 = None);
  check_bool "after" true
    (match Interval.after t ~limit:6 with Some r -> Interval.equal r (iv 7 10) | None -> false);
  check_bool "after empty" true (Interval.after t ~limit:10 = None);
  (match Interval.split_at t 6 with
  | Some a, Some b ->
    check_bool "split left" true (Interval.equal a (iv 3 5));
    check_bool "split right" true (Interval.equal b (iv 6 10))
  | _ -> Alcotest.fail "expected two parts");
  (match Interval.split_at t 3 with
  | None, Some b -> check_bool "split at lo" true (Interval.equal b t)
  | _ -> Alcotest.fail "expected right part only");
  match Interval.split_at t 11 with
  | Some a, None -> check_bool "split past hi" true (Interval.equal a t)
  | _ -> Alcotest.fail "expected left part only"

let test_interval_clamp_midpoint () =
  let t = iv 3 10 in
  check_int "clamp below" 3 (Interval.clamp t 0);
  check_int "clamp above" 10 (Interval.clamp t 99);
  check_int "clamp inside" 7 (Interval.clamp t 7);
  check_int "midpoint" 6 (Interval.midpoint t);
  check_int "midpoint point" 4 (Interval.midpoint (Interval.point 4))

let test_interval_fraction () =
  Alcotest.(check (float 1e-9)) "half" 0.5 (Interval.fraction_of (iv 0 4) ~of_:(iv 0 9));
  Alcotest.(check (float 1e-9)) "disjoint" 0.0 (Interval.fraction_of (iv 20 30) ~of_:(iv 0 9));
  Alcotest.(check (float 1e-9)) "full" 1.0 (Interval.fraction_of (iv 0 9) ~of_:(iv 0 9))

(* Interval properties *)

let interval_gen =
  QCheck.Gen.(
    let* lo = int_range (-50) 50 in
    let* len = int_range 0 40 in
    return (Interval.make lo (lo + len)))

let arb_interval = QCheck.make ~print:Interval.to_string interval_gen

let prop_inter_commutes =
  QCheck.Test.make ~name:"interval intersection commutes" ~count:500
    (QCheck.pair arb_interval arb_interval) (fun (a, b) ->
      match (Interval.inter a b, Interval.inter b a) with
      | None, None -> true
      | Some x, Some y -> Interval.equal x y
      | _ -> false)

let prop_overlap_length_consistent =
  QCheck.Test.make ~name:"overlap_length matches inter" ~count:500
    (QCheck.pair arb_interval arb_interval) (fun (a, b) ->
      match Interval.inter a b with
      | None -> Interval.overlap_length a b = 0
      | Some r -> Interval.overlap_length a b = Interval.length r)

let prop_split_partitions =
  QCheck.Test.make ~name:"split_at partitions the interval" ~count:500
    (QCheck.pair arb_interval QCheck.(int_range (-60) 60)) (fun (t, v) ->
      let left, right = Interval.split_at t v in
      let len o = match o with Some r -> Interval.length r | None -> 0 in
      len left + len right = Interval.length t
      && (match left with Some r -> Interval.hi r < v | None -> true)
      && match right with Some r -> Interval.lo r >= v | None -> true)

let prop_hull_contains =
  QCheck.Test.make ~name:"hull contains both" ~count:500
    (QCheck.pair arb_interval arb_interval) (fun (a, b) ->
      let h = Interval.hull a b in
      Interval.contains_interval ~outer:h ~inner:a
      && Interval.contains_interval ~outer:h ~inner:b)

(* Rect *)

let r ~x ~y ~w ~h = Rect.make ~x ~y ~w ~h

let test_rect_basic () =
  let t = r ~x:2 ~y:3 ~w:4 ~h:5 in
  check_int "area" 20 (Rect.area t);
  check_int "right" 6 (Rect.right t);
  check_int "top" 8 (Rect.top t);
  check_bool "x span" true (Interval.equal (Rect.x_span t) (iv 2 5));
  check_bool "y span" true (Interval.equal (Rect.y_span t) (iv 3 7));
  let cx, cy = Rect.center t in
  Alcotest.(check (float 1e-9)) "cx" 4.0 cx;
  Alcotest.(check (float 1e-9)) "cy" 5.5 cy

let test_rect_overlap () =
  let a = r ~x:0 ~y:0 ~w:4 ~h:4 in
  check_bool "edge contact is not overlap" false (Rect.overlaps a (r ~x:4 ~y:0 ~w:2 ~h:2));
  check_bool "corner contact is not overlap" false (Rect.overlaps a (r ~x:4 ~y:4 ~w:2 ~h:2));
  check_bool "real overlap" true (Rect.overlaps a (r ~x:3 ~y:3 ~w:2 ~h:2));
  check_int "overlap area" 1 (Rect.overlap_area a (r ~x:3 ~y:3 ~w:2 ~h:2));
  check_int "disjoint area" 0 (Rect.overlap_area a (r ~x:9 ~y:9 ~w:2 ~h:2))

let test_rect_contains () =
  let a = r ~x:0 ~y:0 ~w:4 ~h:4 in
  check_bool "point in" true (Rect.contains_point a ~x:3 ~y:3);
  check_bool "point on right edge out" false (Rect.contains_point a ~x:4 ~y:0);
  check_bool "rect in" true (Rect.contains_rect ~outer:a ~inner:(r ~x:1 ~y:1 ~w:3 ~h:3));
  check_bool "rect out" false (Rect.contains_rect ~outer:a ~inner:(r ~x:1 ~y:1 ~w:4 ~h:3))

let test_rect_inside_die () =
  check_bool "inside" true (Rect.inside (r ~x:0 ~y:0 ~w:10 ~h:10) ~die_w:10 ~die_h:10);
  check_bool "sticks out" false (Rect.inside (r ~x:1 ~y:0 ~w:10 ~h:10) ~die_w:10 ~die_h:10);
  check_bool "negative corner" false (Rect.inside (r ~x:(-1) ~y:0 ~w:2 ~h:2) ~die_w:10 ~die_h:10)

let test_rect_bounding_box () =
  check_bool "empty" true (Rect.bounding_box [] = None);
  match Rect.bounding_box [ r ~x:0 ~y:0 ~w:2 ~h:2; r ~x:5 ~y:7 ~w:1 ~h:1 ] with
  | Some bb -> check_bool "bb" true (Rect.equal bb (r ~x:0 ~y:0 ~w:6 ~h:8))
  | None -> Alcotest.fail "expected bounding box"

let test_rect_any_overlap () =
  let free = [| r ~x:0 ~y:0 ~w:2 ~h:2; r ~x:2 ~y:0 ~w:2 ~h:2; r ~x:0 ~y:2 ~w:4 ~h:1 |] in
  check_bool "overlap-free" true (Rect.any_overlap free = None);
  let clash = [| r ~x:0 ~y:0 ~w:3 ~h:3; r ~x:5 ~y:5 ~w:2 ~h:2; r ~x:2 ~y:2 ~w:2 ~h:2 |] in
  check_bool "finds pair" true (Rect.any_overlap clash = Some (0, 2))

(* Dims *)

let test_dims_basic () =
  let d = Dims.make ~w:[| 3; 4 |] ~h:[| 5; 6 |] in
  check_int "n" 2 (Dims.n_blocks d);
  check_int "w0" 3 (Dims.width d 0);
  check_int "h1" 6 (Dims.height d 1);
  check_int "area" ((3 * 5) + (4 * 6)) (Dims.total_area d);
  let d2 = Dims.set_width d 0 9 in
  check_int "set_width copies" 3 (Dims.width d 0);
  check_int "new width" 9 (Dims.width d2 0);
  check_bool "equal" true (Dims.equal d (Dims.of_pairs [| (3, 5); (4, 6) |]))

let test_dims_invalid () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Dims.make: width/height arrays differ in length") (fun () ->
      ignore (Dims.make ~w:[| 1 |] ~h:[| 1; 2 |]));
  Alcotest.check_raises "zero width" (Invalid_argument "Dims.make: non-positive width")
    (fun () -> ignore (Dims.make ~w:[| 0 |] ~h:[| 1 |]))

let test_dims_map2_sum () =
  let a = Dims.of_pairs [| (3, 5); (4, 6) |] in
  let b = Dims.of_pairs [| (1, 2); (2, 2) |] in
  check_int "L1 distance" (2 + 3 + 2 + 4) (Dims.map2_sum a b ~f:(fun x y -> abs (x - y)))

(* Dimbox *)

let box2 =
  Dimbox.make ~w:[| iv 2 10; iv 4 8 |] ~h:[| iv 3 9; iv 5 5 |]

let test_dimbox_contains () =
  check_bool "center in" true (Dimbox.contains box2 (Dims.of_pairs [| (6, 6); (6, 5) |]));
  check_bool "w out" false (Dimbox.contains box2 (Dims.of_pairs [| (11, 6); (6, 5) |]));
  check_bool "h out" false (Dimbox.contains box2 (Dims.of_pairs [| (6, 2); (6, 5) |]));
  check_bool "corner lo" true (Dimbox.contains box2 (Dimbox.lower_corner box2));
  check_bool "corner hi" true (Dimbox.contains box2 (Dimbox.upper_corner box2))

let test_dimbox_overlap_axis () =
  let other = Dimbox.make ~w:[| iv 11 20; iv 4 8 |] ~h:[| iv 3 9; iv 5 5 |] in
  check_bool "disjoint" false (Dimbox.overlaps box2 other);
  check_bool "disjoint axis is w0" true
    (Dimbox.disjoint_axis box2 other = Some (Dimbox.Width 0));
  let overlapping = Dimbox.make ~w:[| iv 9 20; iv 4 8 |] ~h:[| iv 3 9; iv 4 20 |] in
  check_bool "overlaps" true (Dimbox.overlaps box2 overlapping);
  (* smallest positive overlap: w0 shares 2 points, w1 5, h0 7, h1 1 (5..5) *)
  check_bool "min overlap axis" true
    (Dimbox.min_overlap_axis box2 overlapping = Some (Dimbox.Height 1));
  let no_h1_tie = Dimbox.make ~w:[| iv 9 20; iv 4 8 |] ~h:[| iv 3 9; iv 5 5 |] in
  check_bool "min overlap axis among several" true
    (Dimbox.min_overlap_axis box2 no_h1_tie = Some (Dimbox.Height 1))

let test_dimbox_min_overlap_prefers_height () =
  let a = Dimbox.make ~w:[| iv 0 10 |] ~h:[| iv 0 10 |] in
  let b = Dimbox.make ~w:[| iv 5 15 |] ~h:[| iv 10 20 |] in
  check_bool "h0 has the smallest overlap" true
    (Dimbox.min_overlap_axis a b = Some (Dimbox.Height 0))

let test_dimbox_with_axis () =
  let t = Dimbox.with_axis box2 (Dimbox.Height 1) (iv 1 2) in
  check_bool "replaced" true (Interval.equal (Dimbox.h_interval t 1) (iv 1 2));
  check_bool "original intact" true (Interval.equal (Dimbox.h_interval box2 1) (iv 5 5))

let test_dimbox_inter () =
  let other = Dimbox.make ~w:[| iv 8 20; iv 4 8 |] ~h:[| iv 3 9; iv 5 5 |] in
  (match Dimbox.inter box2 other with
  | Some r -> check_bool "w0 intersected" true (Interval.equal (Dimbox.w_interval r 0) (iv 8 10))
  | None -> Alcotest.fail "expected intersection");
  let disjoint = Dimbox.make ~w:[| iv 11 20; iv 4 8 |] ~h:[| iv 3 9; iv 5 5 |] in
  check_bool "disjoint inter" true (Dimbox.inter box2 disjoint = None)

let test_dimbox_volume_fraction () =
  let bounds = Dimbox.make ~w:[| iv 0 9 |] ~h:[| iv 0 9 |] in
  let half = Dimbox.make ~w:[| iv 0 4 |] ~h:[| iv 0 9 |] in
  Alcotest.(check (float 1e-9)) "half" 0.5 (Dimbox.volume_fraction half ~bounds);
  Alcotest.(check (float 1e-9)) "full" 1.0 (Dimbox.volume_fraction bounds ~bounds);
  let quarter = Dimbox.make ~w:[| iv 0 4 |] ~h:[| iv 5 9 |] in
  Alcotest.(check (float 1e-9)) "quarter" 0.25 (Dimbox.volume_fraction quarter ~bounds)

let test_dimbox_clamp_center () =
  let c = Dimbox.center box2 in
  check_bool "center inside" true (Dimbox.contains box2 c);
  let far = Dims.of_pairs [| (100, 1); (1, 100) |] in
  let clamped = Dimbox.clamp box2 far in
  check_bool "clamped inside" true (Dimbox.contains box2 clamped);
  check_int "clamped w0" 10 (Dims.width clamped 0);
  check_int "clamped h0" 3 (Dims.height clamped 0)

let test_dimbox_random_dims () =
  let rng = Mps_rng.Rng.create ~seed:4 in
  for _ = 1 to 200 do
    check_bool "random inside" true (Dimbox.contains box2 (Dimbox.random_dims rng box2))
  done

let test_dimbox_axes () =
  Alcotest.(check int) "2N axes" 4 (List.length (Dimbox.axes box2))

(* Dimbox properties *)

let arb_dimbox n =
  let gen =
    QCheck.Gen.(
      let ivl = map2 (fun lo len -> Interval.make lo (lo + len)) (int_range 1 30) (int_range 0 20) in
      let* w = array_size (return n) ivl in
      let* h = array_size (return n) ivl in
      return (Dimbox.make ~w ~h))
  in
  QCheck.make ~print:(Format.asprintf "%a" Dimbox.pp) gen

let prop_dimbox_overlap_symmetric =
  QCheck.Test.make ~name:"dimbox overlap is symmetric" ~count:300
    (QCheck.pair (arb_dimbox 3) (arb_dimbox 3)) (fun (a, b) ->
      Dimbox.overlaps a b = Dimbox.overlaps b a)

let prop_dimbox_inter_contained =
  QCheck.Test.make ~name:"dimbox intersection is inside both" ~count:300
    (QCheck.pair (arb_dimbox 3) (arb_dimbox 3)) (fun (a, b) ->
      match Dimbox.inter a b with
      | None -> not (Dimbox.overlaps a b)
      | Some r -> Dimbox.contains_box ~outer:a ~inner:r && Dimbox.contains_box ~outer:b ~inner:r)

let prop_dimbox_center_contained =
  QCheck.Test.make ~name:"dimbox center is contained" ~count:300 (arb_dimbox 4) (fun t ->
      Dimbox.contains t (Dimbox.center t))

let qcheck_suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_inter_commutes;
      prop_overlap_length_consistent;
      prop_split_partitions;
      prop_hull_contains;
      prop_dimbox_overlap_symmetric;
      prop_dimbox_inter_contained;
      prop_dimbox_center_contained;
    ]

let suite =
  [
    ("interval: basics", `Quick, test_interval_basic);
    ("interval: point", `Quick, test_interval_point);
    ("interval: overlap", `Quick, test_interval_overlap);
    ("interval: inter and hull", `Quick, test_interval_inter_hull);
    ("interval: before/after/split", `Quick, test_interval_before_after_split);
    ("interval: clamp and midpoint", `Quick, test_interval_clamp_midpoint);
    ("interval: fraction_of", `Quick, test_interval_fraction);
    ("rect: basics", `Quick, test_rect_basic);
    ("rect: overlap semantics", `Quick, test_rect_overlap);
    ("rect: containment", `Quick, test_rect_contains);
    ("rect: inside die", `Quick, test_rect_inside_die);
    ("rect: bounding box", `Quick, test_rect_bounding_box);
    ("rect: any_overlap", `Quick, test_rect_any_overlap);
    ("dims: basics", `Quick, test_dims_basic);
    ("dims: invalid args", `Quick, test_dims_invalid);
    ("dims: map2_sum", `Quick, test_dims_map2_sum);
    ("dimbox: contains", `Quick, test_dimbox_contains);
    ("dimbox: overlap and disjoint axis", `Quick, test_dimbox_overlap_axis);
    ("dimbox: min overlap axis prefers smallest", `Quick, test_dimbox_min_overlap_prefers_height);
    ("dimbox: with_axis", `Quick, test_dimbox_with_axis);
    ("dimbox: intersection", `Quick, test_dimbox_inter);
    ("dimbox: volume fraction", `Quick, test_dimbox_volume_fraction);
    ("dimbox: clamp and center", `Quick, test_dimbox_clamp_center);
    ("dimbox: random dims inside", `Quick, test_dimbox_random_dims);
    ("dimbox: axes enumeration", `Quick, test_dimbox_axes);
  ]
  @ qcheck_suite

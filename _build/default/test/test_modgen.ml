(* Tests for the procedural module generators. *)

open Mps_geometry
open Mps_modgen

let check_bool = Alcotest.(check bool)
let p = Process.default

let test_to_grid () =
  Alcotest.(check int) "rounds up" 2 (Process.to_grid p 400.0);
  Alcotest.(check int) "exact" 1 (Process.to_grid p 350.0);
  Alcotest.(check int) "never below 1" 1 (Process.to_grid p 1.0);
  Alcotest.(check int) "um" 3 (Process.um_to_grid p 1.05)

let test_mos_realizations_nonempty () =
  let devices =
    [
      Device.Mos { w_um = 10.0; l_um = 0.35 };
      Device.Mos { w_um = 200.0; l_um = 1.0 };
      Device.Mos { w_um = 0.5; l_um = 0.35 };
      Device.Mos_pair { w_um = 20.0; l_um = 0.5 };
      Device.Mos_quad { w_um = 8.0; l_um = 0.35 };
      Device.Capacitor { c_ff = 500.0 };
      Device.Capacitor { c_ff = 2.0 };
      Device.Resistor { r_ohm = 10_000.0 };
      Device.Resistor { r_ohm = 10.0 };
    ]
  in
  List.iter
    (fun d ->
      let r = Module_gen.realizations p d in
      check_bool (Device.to_string d ^ " has realizations") true (r <> []);
      List.iter (fun (w, h) -> check_bool "positive dims" true (w > 0 && h > 0)) r)
    devices

let test_mos_folding_tradeoff () =
  (* more fingers -> wider and shorter: widths ascend while heights
     descend across the sorted realization list *)
  let r = Module_gen.realizations p (Device.Mos { w_um = 40.0; l_um = 0.35 }) in
  check_bool "several foldings" true (List.length r >= 4);
  let ws = List.map fst r and hs = List.map snd r in
  let rec sorted_up = function a :: b :: t -> a <= b && sorted_up (b :: t) | _ -> true in
  let rec sorted_down = function a :: b :: t -> a >= b && sorted_down (b :: t) | _ -> true in
  check_bool "widths ascend" true (sorted_up ws);
  check_bool "heights descend" true (sorted_down hs)

let test_area_roughly_conserved () =
  (* all foldings of the same device have comparable area *)
  let r = Module_gen.realizations p (Device.Mos { w_um = 40.0; l_um = 0.35 }) in
  let areas = List.map (fun (w, h) -> w * h) r in
  let lo = List.fold_left min max_int areas and hi = List.fold_left max 0 areas in
  check_bool "max/min area ratio < 4" true (float_of_int hi /. float_of_int lo < 4.0)

let test_realize_follows_hint () =
  let d = Device.Mos { w_um = 40.0; l_um = 0.35 } in
  let w_wide, h_wide = Module_gen.realize p d ~aspect_hint:4.0 in
  let w_tall, h_tall = Module_gen.realize p d ~aspect_hint:0.25 in
  check_bool "wide hint gives wider" true
    (float_of_int w_wide /. float_of_int h_wide
     > float_of_int w_tall /. float_of_int h_tall);
  Alcotest.check_raises "bad hint"
    (Invalid_argument "Module_gen.realize: non-positive aspect hint") (fun () ->
      ignore (Module_gen.realize p d ~aspect_hint:0.0))

let test_bounds_cover_realizations () =
  let d = Device.Mos_pair { w_um = 25.0; l_um = 0.5 } in
  let wb, hb = Module_gen.bounds p d in
  List.iter
    (fun (w, h) ->
      check_bool "w in bounds" true (Interval.contains wb w);
      check_bool "h in bounds" true (Interval.contains hb h))
    (Module_gen.realizations p d)

let test_block_of_device () =
  let d = Device.Capacitor { c_ff = 800.0 } in
  let blk = Module_gen.block_of_device p ~id:3 ~name:"cc" d in
  Alcotest.(check int) "id" 3 blk.Mps_netlist.Block.id;
  Alcotest.(check string) "name" "cc" blk.Mps_netlist.Block.name;
  List.iter
    (fun (w, h) ->
      check_bool "realization valid for block" true
        (Mps_netlist.Block.dims_valid blk ~w ~h))
    (Module_gen.realizations p d)

let test_dims_of_devices () =
  let devices =
    [| Device.Mos { w_um = 20.0; l_um = 0.35 }; Device.Capacitor { c_ff = 300.0 } |]
  in
  let dims = Module_gen.dims_of_devices p devices ~aspect_hints:[| 1.0; 1.0 |] in
  Alcotest.(check int) "two blocks" 2 (Dims.n_blocks dims);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Module_gen.dims_of_devices: array length mismatch") (fun () ->
      ignore (Module_gen.dims_of_devices p devices ~aspect_hints:[| 1.0 |]))

let test_scale_monotone () =
  (* scaling a device up never shrinks its minimum area realization *)
  let d = Device.Mos { w_um = 10.0; l_um = 0.35 } in
  let min_area dev =
    List.fold_left (fun acc (w, h) -> min acc (w * h)) max_int (Module_gen.realizations p dev)
  in
  check_bool "bigger device, bigger min area" true (min_area (Device.scale d 4.0) > min_area d);
  Alcotest.check_raises "bad factor" (Invalid_argument "Device.scale: non-positive factor")
    (fun () -> ignore (Device.scale d 0.0))

let prop_realize_within_bounds =
  QCheck.Test.make ~name:"realize stays within device bounds" ~count:200
    QCheck.(pair (float_range 1.0 100.0) (float_range 0.1 10.0))
    (fun (w_um, hint) ->
      let d = Device.Mos { w_um; l_um = 0.35 } in
      let w, h = Module_gen.realize p d ~aspect_hint:hint in
      let wb, hb = Module_gen.bounds p d in
      Interval.contains wb w && Interval.contains hb h)

let suite =
  [
    ("grid conversion", `Quick, test_to_grid);
    ("every device has realizations", `Quick, test_mos_realizations_nonempty);
    ("folding trades width for height", `Quick, test_mos_folding_tradeoff);
    ("area roughly conserved across foldings", `Quick, test_area_roughly_conserved);
    ("realize follows the aspect hint", `Quick, test_realize_follows_hint);
    ("bounds cover all realizations", `Quick, test_bounds_cover_realizations);
    ("block_of_device accepts all realizations", `Quick, test_block_of_device);
    ("dims_of_devices", `Quick, test_dims_of_devices);
    ("scaling grows the device", `Quick, test_scale_monotone);
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_realize_within_bounds ]

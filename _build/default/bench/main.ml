(* Benchmark harness.

   Part 1 (bechamel): micro-benchmarks — one Test.make per Table 2
   circuit for placement instantiation, the compiled-vs-linear query
   ablation, and the per-query cost of the baseline placers (the
   motivation for the whole paper).

   Part 2: regenerates every table and figure (Table 1, Table 2,
   Figures 5-7) and the ablation reports.  Pass --quick to use the
   reduced generation budget. *)

open Bechamel
open Toolkit
open Mps_netlist
open Mps_core

let budget =
  if Array.exists (String.equal "--quick") Sys.argv then
    Mps_experiments.Experiments.Quick
  else Mps_experiments.Experiments.Full

(* Pre-generate one structure per circuit (quick budget: the bechamel
   subject is the query, not the generation). *)
let structures =
  lazy
    (List.map
       (fun circuit ->
         let config =
           Mps_experiments.Experiments.generator_config Mps_experiments.Experiments.Quick
             circuit
         in
         let structure, _ = Generator.generate ~config circuit in
         let probes = Mps_experiments.Experiments.probe_dims ~seed:17 ~n:256 structure in
         (circuit, structure, probes))
       Benchmarks.all)

let instantiation_tests () =
  List.map
    (fun (circuit, structure, probes) ->
      let i = ref 0 in
      Test.make ~name:circuit.Circuit.name
        (Staged.stage (fun () ->
             let dims = probes.(!i land 255) in
             incr i;
             Sys.opaque_identity (Structure.instantiate structure dims))))
    (Lazy.force structures)

let query_tests () =
  let _, structure, probes =
    List.find
      (fun (c, _, _) -> String.equal c.Circuit.name "benchmark24")
      (Lazy.force structures)
  in
  let mk name f =
    let i = ref 0 in
    Test.make ~name
      (Staged.stage (fun () ->
           let dims = probes.(!i land 255) in
           incr i;
           Sys.opaque_identity (f structure dims)))
  in
  [ mk "compiled" Structure.query; mk "linear" Structure.query_linear ]

let baseline_tests () =
  let circuit = Benchmarks.two_stage_opamp in
  let _, structure, probes =
    List.find
      (fun (c, _, _) -> String.equal c.Circuit.name "TwoStage Opamp")
      (Lazy.force structures)
  in
  let die_w, die_h = Structure.die structure in
  let rng = Mps_rng.Rng.create ~seed:3 in
  let template = Mps_baselines.Template_placer.build ~rng circuit ~die_w ~die_h in
  let sa_config = { Mps_baselines.Sa_placer.default_config with iterations = 1000 } in
  let i = ref 0 in
  let next () =
    let dims = probes.(!i land 255) in
    incr i;
    dims
  in
  [
    Test.make ~name:"mps"
      (Staged.stage (fun () -> Sys.opaque_identity (Structure.instantiate structure (next ()))));
    Test.make ~name:"template"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Mps_baselines.Template_placer.instantiate template (next ()))));
    Test.make ~name:"sa-placer-1k"
      (Staged.stage (fun () ->
           Sys.opaque_identity
             (Mps_baselines.Sa_placer.place ~config:sa_config ~rng circuit ~die_w ~die_h
                (next ()))));
  ]

let run_group ~name tests =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let test = Test.make_grouped ~name ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "bench group: %s (ns/run, OLS on monotonic clock)\n" name;
  let rows = ref [] in
  Hashtbl.iter
    (fun test_name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> Printf.sprintf "%.0f" e
        | Some [] | None -> "n/a"
      in
      rows := (test_name, ns) :: !rows)
    results;
  List.iter
    (fun (test_name, ns) -> Printf.printf "  %-40s %12s ns\n" test_name ns)
    (List.sort compare !rows);
  print_newline ()

let () =
  print_endline "=== Micro-benchmarks (bechamel) ===";
  print_newline ();
  run_group ~name:"instantiate" (instantiation_tests ());
  run_group ~name:"query24" (query_tests ());
  run_group ~name:"placer" (baseline_tests ());
  let module E = Mps_experiments.Experiments in
  print_endline "=== Paper experiments ===";
  print_newline ();
  print_string (E.table1 ());
  print_newline ();
  print_string (snd (E.table2 ~budget ()));
  print_newline ();
  print_string (E.figure5 ~budget ());
  print_newline ();
  print_string (snd (E.figure6 ~budget ()));
  print_newline ();
  print_string (E.figure7 ~budget ());
  print_newline ();
  print_endline "=== Ablations ===";
  print_newline ();
  print_string (E.ablation_shrink ~budget ());
  print_newline ();
  print_string (E.ablation_explorer ~budget ());
  print_newline ();
  print_string (E.ablation_query ~budget ());
  print_newline ();
  print_string (E.ablation_fallback ~budget ());
  print_newline ();
  print_string (E.ablation_parasitics ~budget ());
  print_newline ();
  print_string (E.ablation_refine ~budget ());
  print_newline ();
  print_string (E.synthesis_comparison ~budget ())

open Mps_rng
open Mps_geometry
open Mps_netlist

let wrap v ~range =
  if range < 0 then invalid_arg "Perturb.wrap: negative range";
  if range = 0 then 0
  else
    let m = v mod (range + 1) in
    if m < 0 then m + range + 1 else m

(* A block whose minimum dimensions exceed the die can never be placed:
   without this check the failure surfaces as an opaque [Rng.int_in] /
   [wrap] range error (or a 500-try resampling timeout) deep inside the
   walk.  Fail fast and say which block is impossible. *)
let check_fits circuit ~min_dims ~die_w ~die_h ~where =
  for i = 0 to Circuit.n_blocks circuit - 1 do
    let w = Dims.width min_dims i and h = Dims.height min_dims i in
    if w > die_w || h > die_h then
      invalid_arg
        (Printf.sprintf
           "Perturb.%s: block %d (%s) minimum size %dx%d exceeds the %dx%d die" where i
           (Circuit.block circuit i).Block.name w h die_w die_h)
  done

(* Resample the positions of blocks whose min-dims rectangles clash
   until the placement is legal again. *)
let legalize rng circuit placement =
  let n = Circuit.n_blocks circuit in
  let min_dims = Circuit.min_dims circuit in
  let die_w = placement.Placement.die_w and die_h = placement.Placement.die_h in
  check_fits circuit ~min_dims ~die_w ~die_h ~where:"legalize";
  let coords = Array.copy placement.Placement.coords in
  let rect i =
    let x, y = coords.(i) in
    Rect.make ~x ~y ~w:(Dims.width min_dims i) ~h:(Dims.height min_dims i)
  in
  let clashes i =
    let r = rect i in
    let rec loop j =
      j < n && ((j <> i && Rect.overlaps r (rect j)) || loop (j + 1))
    in
    loop 0
  in
  let resample i =
    let w = Dims.width min_dims i and h = Dims.height min_dims i in
    let budget = 500 in
    let rec try_once k =
      if k >= budget then
        failwith "Perturb.legalize: could not re-legalize the perturbed placement"
      else begin
        coords.(i) <- (Rng.int_in rng 0 (die_w - w), Rng.int_in rng 0 (die_h - h));
        if clashes i then try_once (k + 1)
      end
    in
    try_once 0
  in
  for i = 0 to n - 1 do
    if clashes i then resample i
  done;
  Placement.make ~coords ~die_w ~die_h

let perturb rng circuit ~fraction ~max_shift placement =
  if fraction <= 0.0 || fraction > 1.0 then
    invalid_arg "Perturb.perturb: fraction must be in (0, 1]";
  if max_shift <= 0 then invalid_arg "Perturb.perturb: non-positive max_shift";
  let n = Circuit.n_blocks circuit in
  let min_dims = Circuit.min_dims circuit in
  check_fits circuit ~min_dims ~die_w:placement.Placement.die_w
    ~die_h:placement.Placement.die_h ~where:"perturb";
  let k = max 1 (int_of_float (ceil (fraction *. float_of_int n))) in
  let victims = Rng.sample_distinct rng ~k ~n in
  let coords = Array.copy placement.Placement.coords in
  let move i =
    let x, y = coords.(i) in
    let dx = Rng.int_in rng (-max_shift) max_shift in
    let dy = Rng.int_in rng (-max_shift) max_shift in
    let w = Dims.width min_dims i and h = Dims.height min_dims i in
    coords.(i) <-
      ( wrap (x + dx) ~range:(placement.Placement.die_w - w),
        wrap (y + dy) ~range:(placement.Placement.die_h - h) )
  in
  List.iter move victims;
  let moved =
    Placement.make ~coords ~die_w:placement.Placement.die_w
      ~die_h:placement.Placement.die_h
  in
  if Placement.is_legal moved min_dims then moved else legalize rng circuit moved

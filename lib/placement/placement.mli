(** Concrete placements: per-block coordinates on a die.

    A placement fixes the lower-left corner of every block; instantiating
    it with a dimension vector yields the floorplan rectangles.  Because
    blocks are anchored at their lower-left corner, shrinking any block
    keeps a legal floorplan legal — the monotonicity the Placement
    Expansion step (paper §3.1.2) relies on. *)

open Mps_rng
open Mps_geometry
open Mps_netlist

type t = {
  coords : (int * int) array;  (** Lower-left corner of each block. *)
  die_w : int;
  die_h : int;
}

val make : coords:(int * int) array -> die_w:int -> die_h:int -> t
(** @raise Invalid_argument on non-positive die dimensions. *)

val n_blocks : t -> int

val rects : t -> Dims.t -> Rect.t array
(** Floorplan instantiation: block [i] occupies the rectangle at
    [coords.(i)] with dimensions [dims.(i)].
    @raise Invalid_argument on block-count mismatch. *)

val rects_into : Rect.t array -> t -> Dims.t -> unit
(** {!rects} into a caller buffer of exactly [n_blocks] rectangles,
    refilled in place ([Rect.set]) — the allocation-free variant for
    per-worker scratch in sampling and evaluation loops.
    @raise Invalid_argument on a block-count or buffer-length
    mismatch. *)

val is_legal : t -> Dims.t -> bool
(** The instantiated floorplan has no overlaps and stays inside the die. *)

val random : Rng.t -> Circuit.t -> die_w:int -> die_h:int -> t
(** Random placement that is legal at the circuit's minimum dimensions
    (the Placement Selector's initial selection, §3.1.1).  Rejection
    sampling with restarts.
    @raise Failure when no legal placement is found (die too small). *)

val move_block : t -> int -> x:int -> y:int -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

open Mps_rng
open Mps_geometry
open Mps_netlist
open Mps_anneal

type config = {
  iterations : int;
  schedule : Schedule.t;
  weights : Mps_cost.Cost.weights;
  swap_probability : float;
  max_shift_fraction : float;
}

let default_config =
  {
    iterations = 4000;
    schedule = Schedule.geometric ~t0:2000.0 ~alpha:0.995 ~t_min:1e-3 ();
    weights = Mps_cost.Cost.default_weights;
    swap_probability = 0.25;
    max_shift_fraction = 0.5;
  }

type result = {
  placement : Placement.t;
  rects : Rect.t array;
  cost : float;
  legal : bool;
  evaluations : int;
}

(* All-float accumulator record: stored flat, so the per-move cost
   updates allocate nothing (a [float ref] boxes a fresh float on
   every [:=]). *)
type totals = { mutable cur : float; mutable staged : float }

(* The annealing state is one mutable Mps_cost.Incremental evaluator
   (the arena's, when given); moves are staged on it, costed as
   deltas, and either committed or undone.  Move bounds are compiled
   once per run into Move_lut tables, so a move draw is two array
   loads and an unchecked uniform draw — no rect, coordinate pair, or
   interval allocated per move. *)
let optimize ?(config = default_config) ?arena ?initial ~rng circuit ~die_w ~die_h dims =
  let n = Circuit.n_blocks circuit in
  if Dims.n_blocks dims <> n then invalid_arg "Coord_opt.optimize: block count mismatch";
  let max_shift =
    max 1 (int_of_float (config.max_shift_fraction *. float_of_int (max die_w die_h)))
  in
  (* Legal positions at these dimensions.  A block wider than the die
     pins to x = 0 (hi clamps to 0), exactly as the old
     [max 0 (min x (die_w - w))] arithmetic did. *)
  let lut_x =
    Move_lut.make ~n ~lo:(fun _ -> 0) ~hi:(fun i -> max 0 (die_w - Dims.width dims i))
  in
  let lut_y =
    Move_lut.make ~n ~lo:(fun _ -> 0) ~hi:(fun i -> max 0 (die_h - Dims.height dims i))
  in
  let init_x = Array.make n 0 and init_y = Array.make n 0 in
  (match initial with
  | Some coords ->
    if Array.length coords <> n then invalid_arg "Coord_opt.optimize: bad initial";
    for i = 0 to n - 1 do
      let x, y = coords.(i) in
      init_x.(i) <- Move_lut.clamp lut_x i x;
      init_y.(i) <- Move_lut.clamp lut_y i y
    done
  | None ->
    (* draw order pinned: y before x per block (the original built an
       [(x, y)] tuple, which OCaml evaluates right to left) *)
    for i = 0 to n - 1 do
      init_y.(i) <- Move_lut.draw lut_y rng i;
      init_x.(i) <- Move_lut.draw lut_x rng i
    done);
  let rect_buf =
    match arena with
    | Some a -> Arena.rect_buffer a ~slot:0 n
    | None -> Array.init n (fun _ -> Rect.make ~x:0 ~y:0 ~w:1 ~h:1)
  in
  for i = 0 to n - 1 do
    Rect.set rect_buf.(i) ~x:init_x.(i) ~y:init_y.(i) ~w:(Dims.width dims i)
      ~h:(Dims.height dims i)
  done;
  let eng =
    match arena with
    | Some a -> Arena.engine a ~weights:config.weights circuit ~die_w ~die_h rect_buf
    | None -> Mps_cost.Incremental.create ~weights:config.weights circuit ~die_w ~die_h rect_buf
  in
  (* One preallocated proposal buffer; [propose] overwrites it in place. *)
  let mv_swap = ref false and mv_i = ref 0 and mv_j = ref 0 in
  let mv_x = ref 0 and mv_y = ref 0 in
  let propose rng =
    if n >= 2 && Rng.bernoulli rng config.swap_probability then begin
      let i = Rng.int rng n in
      mv_swap := true;
      mv_i := i;
      mv_j := (i + 1 + Rng.int rng (n - 1)) mod n
    end
    else begin
      let i = Rng.int rng n in
      mv_swap := false;
      mv_i := i;
      (* y shift drawn before x, matching the original tuple order *)
      mv_y :=
        Move_lut.draw_shift lut_y rng i ~cur:(Mps_cost.Incremental.block_y eng i)
          ~max_shift;
      mv_x :=
        Move_lut.draw_shift lut_x rng i ~cur:(Mps_cost.Incremental.block_x eng i)
          ~max_shift
    end
  in
  let totals =
    let c = Mps_cost.Incremental.total eng in
    { cur = c; staged = c }
  in
  let delta_cost () =
    if !mv_swap then Mps_cost.Incremental.swap_blocks eng !mv_i !mv_j
    else Mps_cost.Incremental.move_block eng !mv_i ~x:!mv_x ~y:!mv_y;
    totals.staged <- Mps_cost.Incremental.total eng;
    totals.staged -. totals.cur
  in
  let commit () =
    Mps_cost.Incremental.commit eng;
    (* re-read rather than trust [staged]: the commit may have
       triggered the periodic anti-drift resync *)
    totals.cur <- Mps_cost.Incremental.total eng
  in
  let reject () = Mps_cost.Incremental.undo eng in
  let best_x = Array.copy init_x and best_y = Array.copy init_y in
  let snapshot_best () =
    for i = 0 to n - 1 do
      best_x.(i) <- Mps_cost.Incremental.block_x eng i;
      best_y.(i) <- Mps_cost.Incremental.block_y eng i
    done
  in
  let sa =
    Annealer.run_moves
      ~on_improve:(fun ~cost:_ ~step:_ -> snapshot_best ())
      ~rng ~schedule:config.schedule ~iterations:config.iterations
      ~initial_cost:totals.cur
      { Annealer.propose; delta_cost; commit; reject }
  in
  let rects =
    Array.init n (fun i ->
        Rect.make ~x:best_x.(i) ~y:best_y.(i) ~w:(Dims.width dims i)
          ~h:(Dims.height dims i))
  in
  let coords = Array.init n (fun i -> (best_x.(i), best_y.(i))) in
  {
    placement = Placement.make ~coords ~die_w ~die_h;
    rects;
    cost = Mps_cost.Cost.total ~weights:config.weights circuit ~die_w ~die_h rects;
    legal = Mps_cost.Cost.is_legal ~die_w ~die_h rects;
    evaluations = sa.Annealer.mv_evaluations;
  }

open Mps_rng
open Mps_geometry
open Mps_netlist
open Mps_anneal

type config = {
  iterations : int;
  schedule : Schedule.t;
  weights : Mps_cost.Cost.weights;
  swap_probability : float;
  max_shift_fraction : float;
}

let default_config =
  {
    iterations = 4000;
    schedule = Schedule.geometric ~t0:2000.0 ~alpha:0.995 ~t_min:1e-3 ();
    weights = Mps_cost.Cost.default_weights;
    swap_probability = 0.25;
    max_shift_fraction = 0.5;
  }

type result = {
  placement : Placement.t;
  rects : Rect.t array;
  cost : float;
  legal : bool;
  evaluations : int;
}

(* The annealing state is one mutable Mps_cost.Incremental evaluator;
   moves are staged on it, costed as deltas, and either committed or
   undone — no rect array or coordinate array is allocated per move. *)
let optimize ?(config = default_config) ?initial ~rng circuit ~die_w ~die_h dims =
  let n = Circuit.n_blocks circuit in
  if Dims.n_blocks dims <> n then invalid_arg "Coord_opt.optimize: block count mismatch";
  let max_shift =
    max 1 (int_of_float (config.max_shift_fraction *. float_of_int (max die_w die_h)))
  in
  let clamp_pos i (x, y) =
    ( max 0 (min x (die_w - Dims.width dims i)),
      max 0 (min y (die_h - Dims.height dims i)) )
  in
  let initial =
    match initial with
    | Some coords ->
      if Array.length coords <> n then invalid_arg "Coord_opt.optimize: bad initial";
      Array.mapi (fun i pos -> clamp_pos i pos) coords
    | None ->
      Array.init n (fun i ->
          ( Rng.int_in rng 0 (max 0 (die_w - Dims.width dims i)),
            Rng.int_in rng 0 (max 0 (die_h - Dims.height dims i)) ))
  in
  let rects_of coords =
    Array.mapi
      (fun i (x, y) -> Rect.make ~x ~y ~w:(Dims.width dims i) ~h:(Dims.height dims i))
      coords
  in
  let eng =
    Mps_cost.Incremental.create ~weights:config.weights circuit ~die_w ~die_h
      (rects_of initial)
  in
  (* One preallocated proposal buffer; [propose] overwrites it in place. *)
  let mv_swap = ref false and mv_i = ref 0 and mv_j = ref 0 in
  let mv_x = ref 0 and mv_y = ref 0 in
  let propose rng =
    if n >= 2 && Rng.bernoulli rng config.swap_probability then begin
      let i = Rng.int rng n in
      mv_swap := true;
      mv_i := i;
      mv_j := (i + 1 + Rng.int rng (n - 1)) mod n
    end
    else begin
      let i = Rng.int rng n in
      mv_swap := false;
      mv_i := i;
      let x, y =
        clamp_pos i
          ( Mps_cost.Incremental.block_x eng i + Rng.int_in rng (-max_shift) max_shift,
            Mps_cost.Incremental.block_y eng i + Rng.int_in rng (-max_shift) max_shift )
      in
      mv_x := x;
      mv_y := y
    end
  in
  let current_total = ref (Mps_cost.Incremental.total eng) in
  let staged_total = ref !current_total in
  let delta_cost () =
    if !mv_swap then Mps_cost.Incremental.swap_blocks eng !mv_i !mv_j
    else Mps_cost.Incremental.move_block eng !mv_i ~x:!mv_x ~y:!mv_y;
    staged_total := Mps_cost.Incremental.total eng;
    !staged_total -. !current_total
  in
  let commit () =
    Mps_cost.Incremental.commit eng;
    (* re-read rather than trust [staged_total]: the commit may have
       triggered the periodic anti-drift resync *)
    current_total := Mps_cost.Incremental.total eng
  in
  let reject () = Mps_cost.Incremental.undo eng in
  let best = Array.map (fun pos -> pos) initial in
  let snapshot_best () =
    for i = 0 to n - 1 do
      best.(i) <- (Mps_cost.Incremental.block_x eng i, Mps_cost.Incremental.block_y eng i)
    done
  in
  let sa =
    Annealer.run_moves
      ~on_improve:(fun ~cost:_ ~step:_ -> snapshot_best ())
      ~rng ~schedule:config.schedule ~iterations:config.iterations
      ~initial_cost:!current_total
      { Annealer.propose; delta_cost; commit; reject }
  in
  let rects = rects_of best in
  {
    placement = Placement.make ~coords:best ~die_w ~die_h;
    rects;
    cost = Mps_cost.Cost.total ~weights:config.weights circuit ~die_w ~die_h rects;
    legal = Mps_cost.Cost.is_legal ~die_w ~die_h rects;
    evaluations = sa.Annealer.mv_evaluations;
  }

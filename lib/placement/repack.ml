open Mps_geometry

(* Translate the packed floorplan back toward the origin so it fits the
   die when its bounding box allows (independently per axis). *)
let[@inline] shift_amount extent lo hi die =
  if extent <= die then max (-lo) (-(max 0 (hi - die))) else -lo

let fit_die_in_place ~die_w ~die_h out =
  let n = Array.length out in
  if n > 0 then begin
    let r0 = out.(0) in
    let min_x = ref r0.Rect.x and min_y = ref r0.Rect.y in
    let max_x = ref (Rect.right r0) and max_y = ref (Rect.top r0) in
    for i = 1 to n - 1 do
      let r = out.(i) in
      if r.Rect.x < !min_x then min_x := r.Rect.x;
      if r.Rect.y < !min_y then min_y := r.Rect.y;
      if Rect.right r > !max_x then max_x := Rect.right r;
      if Rect.top r > !max_y then max_y := Rect.top r
    done;
    let dx = shift_amount (!max_x - !min_x) !min_x !max_x die_w in
    let dy = shift_amount (!max_y - !min_y) !min_y !max_y die_h in
    if dx <> 0 || dy <> 0 then
      for i = 0 to n - 1 do
        let r = out.(i) in
        r.Rect.x <- r.Rect.x + dx;
        r.Rect.y <- r.Rect.y + dy
      done
  end

type scratch = { mutable sc_order : int array; mutable sc_placed : Bytes.t }

let scratch () = { sc_order = [||]; sc_placed = Bytes.empty }

(* The allocation-free kernel: instantiation runs in admission-test and
   template-averaging loops that re-pack hundreds of dimension samples
   per candidate, so the sort permutation, the placed flags, and the
   output rectangles all live in caller-owned buffers refilled in
   place.  Identical results to the allocating wrapper below: same
   visit order (same comparator over the same identity permutation),
   same settle predicate, same die translation. *)
let instantiate_into ~scratch ~out ?die ~coords dims =
  let n = Array.length coords in
  if Dims.n_blocks dims <> n then
    invalid_arg "Repack.instantiate_into: block count mismatch";
  if Array.length out <> n then invalid_arg "Repack.instantiate_into: bad buffer length";
  if Array.length scratch.sc_order <> n then begin
    scratch.sc_order <- Array.make n 0;
    scratch.sc_placed <- Bytes.make n '\000'
  end;
  let order = scratch.sc_order in
  for i = 0 to n - 1 do
    order.(i) <- i
  done;
  Array.sort
    (fun i j ->
      let xi, yi = coords.(i) and xj, yj = coords.(j) in
      match Int.compare xi xj with 0 -> Int.compare yi yj | c -> c)
    order;
  let placed = scratch.sc_placed in
  Bytes.fill placed 0 n '\000';
  for oi = 0 to n - 1 do
    let i = order.(oi) in
    let x, y = coords.(i) in
    let w = Dims.width dims i and h = Dims.height dims i in
    (* slide upward to the first y where (x, y, w, h) clashes with no
       already-placed block — integer compares against the filled
       prefix of [out], no candidate rect materialized per tried y *)
    let yy = ref y in
    let clash = ref true in
    while !clash do
      clash := false;
      let j = ref 0 in
      while (not !clash) && !j < n do
        if Bytes.unsafe_get placed !j <> '\000' then begin
          let r = Array.unsafe_get out !j in
          if x < r.Rect.x + r.Rect.w && r.Rect.x < x + w && !yy < r.Rect.y + r.Rect.h
             && r.Rect.y < !yy + h
          then clash := true
        end;
        incr j
      done;
      if !clash then incr yy
    done;
    Rect.set out.(i) ~x ~y:!yy ~w ~h;
    Bytes.set placed i '\001'
  done;
  match die with
  | None -> ()
  | Some (die_w, die_h) -> fit_die_in_place ~die_w ~die_h out

let instantiate ?die ~coords dims =
  let n = Array.length coords in
  if Dims.n_blocks dims <> n then invalid_arg "Repack.instantiate: block count mismatch";
  let out =
    Array.init n (fun i ->
        Rect.make ~x:0 ~y:0 ~w:(Dims.width dims i) ~h:(Dims.height dims i))
  in
  instantiate_into ~scratch:(scratch ()) ~out ?die ~coords dims;
  out

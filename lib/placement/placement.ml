open Mps_rng
open Mps_geometry
open Mps_netlist

type t = {
  coords : (int * int) array;
  die_w : int;
  die_h : int;
}

let make ~coords ~die_w ~die_h =
  if die_w <= 0 || die_h <= 0 then invalid_arg "Placement.make: non-positive die";
  { coords = Array.copy coords; die_w; die_h }

let n_blocks t = Array.length t.coords

let rects t dims =
  if Dims.n_blocks dims <> n_blocks t then
    invalid_arg "Placement.rects: block count mismatch";
  Array.mapi
    (fun i (x, y) -> Rect.make ~x ~y ~w:(Dims.width dims i) ~h:(Dims.height dims i))
    t.coords

let rects_into out t dims =
  let n = n_blocks t in
  if Dims.n_blocks dims <> n then invalid_arg "Placement.rects_into: block count mismatch";
  if Array.length out <> n then invalid_arg "Placement.rects_into: bad buffer length";
  for i = 0 to n - 1 do
    let x, y = t.coords.(i) in
    Rect.set out.(i) ~x ~y ~w:(Dims.width dims i) ~h:(Dims.height dims i)
  done

let is_legal t dims =
  let rs = rects t dims in
  Rect.any_overlap rs = None
  && Array.for_all (fun r -> Rect.inside r ~die_w:t.die_w ~die_h:t.die_h) rs

(* Random legal-at-min-dims placement by per-block rejection sampling
   with whole-placement restarts. *)
let random rng circuit ~die_w ~die_h =
  let n = Circuit.n_blocks circuit in
  let min_dims = Circuit.min_dims circuit in
  let tries_per_block = 200 and restarts = 50 in
  let place_all () =
    let placed = ref [] in
    let coords = Array.make n (0, 0) in
    let rec place_block i tries =
      if i >= n then Some coords
      else if tries > tries_per_block then None
      else begin
        let w = Dims.width min_dims i and h = Dims.height min_dims i in
        if w > die_w || h > die_h then
          failwith
            (Printf.sprintf "Placement.random: block %d min dims %dx%d exceed die" i w h);
        let x = Rng.int_in rng 0 (die_w - w) in
        let y = Rng.int_in rng 0 (die_h - h) in
        let r = Rect.make ~x ~y ~w ~h in
        if List.exists (Rect.overlaps r) !placed then place_block i (tries + 1)
        else begin
          placed := r :: !placed;
          coords.(i) <- (x, y);
          place_block (i + 1) 0
        end
      end
    in
    place_block 0 0
  in
  let rec attempt k =
    if k >= restarts then
      failwith "Placement.random: could not find a legal min-dims placement"
    else
      match place_all () with
      | Some coords -> { coords; die_w; die_h }
      | None -> attempt (k + 1)
  in
  attempt 0

let move_block t i ~x ~y =
  let coords = Array.copy t.coords in
  coords.(i) <- (x, y);
  { t with coords }

let equal a b = a.coords = b.coords && a.die_w = b.die_w && a.die_h = b.die_h

let pp fmt t =
  Format.fprintf fmt "@[<h>die %dx%d:" t.die_w t.die_h;
  Array.iteri (fun i (x, y) -> Format.fprintf fmt " %d@@(%d,%d)" i x y) t.coords;
  Format.fprintf fmt "@]"

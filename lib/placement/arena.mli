(** Per-worker evaluation arenas: preallocated scratch a domain reuses
    across candidate evaluations instead of re-allocating per call.

    Candidate evaluation used to build a fresh {!Mps_cost.Incremental}
    engine (O(n² + pins) of arrays), fresh rect arrays, and fresh
    dimension samples for every candidate and every admission sample.
    On OCaml 5 that minor-heap churn is not just serial overhead: every
    minor collection is a stop-the-world across {e all} domains, so one
    allocating worker stalls the whole pool — the measured cause of
    parallel generation scaling {e backwards} (DESIGN.md §9).  An arena
    gives each worker its own reusable state:

    - a cached {!Mps_cost.Incremental} engine, rebound to each new
      candidate with a bit-exact [reset] (cache key: circuit physical
      identity, die, weights — all stable within a generation run);
    - slot-indexed [Rect.t] and [int] buffers, refilled in place;
    - a {!Mps_placement.Repack.instantiate_into} working set.

    Ownership contract: an arena is single-threaded scratch.  Index a
    pool fan-out's arenas by the [map_chunked] worker slot — the pool
    guarantees no two concurrently running tasks share a slot.  Nothing
    reached through an arena may influence results (engine [reset] is
    bit-exact; buffers are fully overwritten before being read), so
    task output stays a pure function of the task — which worker's
    arena served it can never show in the structure. *)

open Mps_geometry
open Mps_netlist

type t

val create : unit -> t
(** An empty arena; everything inside is sized lazily on first use. *)

val engine :
  t ->
  weights:Mps_cost.Cost.weights ->
  Circuit.t ->
  die_w:int ->
  die_h:int ->
  Rect.t array ->
  Mps_cost.Incremental.t
(** The arena's incremental-cost engine bound to the given floorplan:
    a bit-exact [Incremental.reset] of the cached engine when the
    (circuit, die, weights) key matches — zero allocation — or a fresh
    [Incremental.create] (which replaces the cached engine) when it
    does not.  The engine stays owned by the arena; callers must be
    done with it before the next [engine] call. *)

val rect_buffer : t -> slot:int -> int -> Rect.t array
(** [rect_buffer t ~slot n] — the arena's rect scratch for [slot],
    of exactly [n] distinct rectangles with unspecified contents.
    Reused while the requested length is stable; distinct slots are
    distinct buffers, for call sites that need two floorplans alive at
    once.  @raise Invalid_argument on a negative slot. *)

val int_buffer : t -> slot:int -> int -> int array
(** Same, for int scratch (dimension samples, permutations). *)

val repack_scratch : t -> Repack.scratch
(** The arena's re-packing working set. *)

(** Simulated-annealing optimization of block coordinates for one fixed
    dimension vector.

    This primitive is both the optimization-based baseline placer
    (KOAN/ANAGRAM class) and the way the generator builds its
    template-like backup placement for uncovered dimension space. *)

open Mps_rng
open Mps_geometry
open Mps_netlist

type config = {
  iterations : int;
  schedule : Mps_anneal.Schedule.t;
  weights : Mps_cost.Cost.weights;
  swap_probability : float;  (** Chance a move swaps two blocks. *)
  max_shift_fraction : float;  (** Displacement range as a die fraction. *)
}

val default_config : config
(** 4000 iterations, geometric cooling. *)

type result = {
  placement : Placement.t;  (** Optimized coordinates. *)
  rects : Rect.t array;
  cost : float;
  legal : bool;
  evaluations : int;
}

val optimize :
  ?config:config ->
  ?arena:Arena.t ->
  ?initial:(int * int) array ->
  rng:Rng.t -> Circuit.t -> die_w:int -> die_h:int -> Dims.t -> result
(** Anneal coordinates for the given dimensions under the penalized
    cost function (overlap and out-of-bounds discouraged, not
    forbidden, so the walk can pass through illegal states).
    [initial] seeds the walk (random corners by default); useful for
    refining an existing arrangement with a short run.

    Move bounds are compiled once per run into {!Mps_anneal.Move_lut}
    tables, so each move draw is branch-free and allocation-free.
    [arena] supplies the incremental-cost engine and scratch buffers
    from per-worker reusable state; the result is bit-identical with
    or without it (fresh state is allocated when absent). *)

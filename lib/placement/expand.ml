open Mps_geometry
open Mps_netlist

(* Round-robin one-unit growth.  Each pass tries to widen then heighten
   every block by one unit; a unit is granted when the grown rectangle
   still fits the die, the block's designer maximum, and overlaps no
   other block at its current (already partly grown) dimensions. *)
let expand circuit placement =
  let n = Circuit.n_blocks circuit in
  if Placement.n_blocks placement <> n then
    invalid_arg "Expand.expand: block count mismatch";
  if not (Placement.is_legal placement (Circuit.min_dims circuit)) then
    invalid_arg "Expand.expand: placement illegal at minimum dimensions";
  let min_dims = Circuit.min_dims circuit in
  let w = Array.init n (Dims.width min_dims) in
  let h = Array.init n (Dims.height min_dims) in
  let xs = Array.init n (fun i -> fst placement.Placement.coords.(i)) in
  let ys = Array.init n (fun i -> snd placement.Placement.coords.(i)) in
  let die_w = placement.Placement.die_w and die_h = placement.Placement.die_h in
  (* Every granted unit re-checks the grown block against all others, so
     this runs O(n) times per unit across thousands of units: plain int
     comparisons on the coordinate arrays, no Rect allocation. *)
  let fits i cw ch =
    let x = xs.(i) and y = ys.(i) in
    x >= 0 && y >= 0 && x + cw <= die_w && y + ch <= die_h
    &&
    let rec no_clash j =
      j >= n
      || ((j = i
          || not
               (x < xs.(j) + w.(j) && xs.(j) < x + cw
               && y < ys.(j) + h.(j) && ys.(j) < y + ch))
         && no_clash (j + 1))
    in
    no_clash 0
  in
  let grow_w i =
    let blk = Circuit.block circuit i in
    if w.(i) >= Interval.hi blk.Block.w_bounds then false
    else if fits i (w.(i) + 1) h.(i) then begin
      w.(i) <- w.(i) + 1;
      true
    end
    else false
  in
  let grow_h i =
    let blk = Circuit.block circuit i in
    if h.(i) >= Interval.hi blk.Block.h_bounds then false
    else if fits i w.(i) (h.(i) + 1) then begin
      h.(i) <- h.(i) + 1;
      true
    end
    else false
  in
  let rec passes () =
    let changed = ref false in
    for i = 0 to n - 1 do
      if grow_w i then changed := true;
      if grow_h i then changed := true
    done;
    if !changed then passes ()
  in
  passes ();
  Dimbox.of_dims_range ~lo:min_dims ~hi:(Dims.make ~w ~h)

let max_dims circuit placement = Dimbox.upper_corner (expand circuit placement)

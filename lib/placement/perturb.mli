(** Perturb Placement (paper §3.1.4).

    A user-set fraction of the blocks receives a random coordinate
    variation; a move that leaves the die is not discarded but wraps the
    block to the opposite side of the floorplan ("to allow some shuffling
    of the circuit").  Because the explorer's expansion step requires a
    placement that is legal at minimum dimensions, the perturbation is
    followed by a legalization pass that resamples the positions of any
    blocks left overlapping. *)

open Mps_rng
open Mps_netlist

val wrap : int -> range:int -> int
(** [wrap v ~range] folds [v] into [[0, range]] toroidally (both
    directions); [range >= 0]. *)

val perturb :
  Rng.t -> Circuit.t -> fraction:float -> max_shift:int -> Placement.t -> Placement.t
(** Move [ceil (fraction * N)] randomly chosen blocks (at least one) by
    uniform shifts in [[-max_shift, max_shift]] per axis, wrapping at the
    die boundary, then legalize at minimum dimensions.
    @raise Invalid_argument when [fraction] is outside [(0, 1]], when
    [max_shift <= 0], or when some block's minimum dimensions exceed the
    die (the error names the block; checked up front in both [perturb]
    and the legalization pass rather than surfacing as an opaque range
    error mid-walk). *)

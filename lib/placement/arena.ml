open Mps_geometry
open Mps_netlist

(* One worker's reusable evaluation state.  The engine cache is keyed
   on (circuit physical identity, die, weights): within a generation
   run those never change, so after the first candidate every
   [engine] call is a bit-exact [Incremental.reset] instead of a fresh
   [create].  Buffers are keyed on (slot, length): generation works on
   one circuit, so lengths are stable and reallocation happens once. *)
type t = {
  mutable eng : Mps_cost.Incremental.t option;
  mutable eng_circuit : Circuit.t option;
  mutable eng_die_w : int;
  mutable eng_die_h : int;
  mutable eng_weights : Mps_cost.Cost.weights;
  mutable rect_bufs : Rect.t array array;
  mutable int_bufs : int array array;
  repack : Repack.scratch;
}

let create () =
  {
    eng = None;
    eng_circuit = None;
    eng_die_w = 0;
    eng_die_h = 0;
    eng_weights = Mps_cost.Cost.default_weights;
    rect_bufs = Array.make 4 [||];
    int_bufs = Array.make 4 [||];
    repack = Repack.scratch ();
  }

let engine t ~weights circuit ~die_w ~die_h rects =
  match t.eng with
  | Some eng
    when (match t.eng_circuit with Some c -> c == circuit | None -> false)
         && t.eng_die_w = die_w && t.eng_die_h = die_h && t.eng_weights = weights ->
    Mps_cost.Incremental.reset eng rects;
    eng
  | _ ->
    let eng = Mps_cost.Incremental.create ~weights circuit ~die_w ~die_h rects in
    t.eng <- Some eng;
    t.eng_circuit <- Some circuit;
    t.eng_die_w <- die_w;
    t.eng_die_h <- die_h;
    t.eng_weights <- weights;
    eng

let[@inline never] grow bufs slot empty =
  Array.append bufs (Array.make (slot + 1 - Array.length bufs) empty)

let rect_buffer t ~slot n =
  if slot < 0 then invalid_arg "Arena.rect_buffer: negative slot";
  if slot >= Array.length t.rect_bufs then t.rect_bufs <- grow t.rect_bufs slot [||];
  let buf = t.rect_bufs.(slot) in
  if Array.length buf = n then buf
  else begin
    (* distinct records: the whole point is refilling them in place *)
    let buf = Array.init n (fun _ -> Rect.make ~x:0 ~y:0 ~w:1 ~h:1) in
    t.rect_bufs.(slot) <- buf;
    buf
  end

let int_buffer t ~slot n =
  if slot < 0 then invalid_arg "Arena.int_buffer: negative slot";
  if slot >= Array.length t.int_bufs then t.int_bufs <- grow t.int_bufs slot [||];
  let buf = t.int_bufs.(slot) in
  if Array.length buf = n then buf
  else begin
    let buf = Array.make n 0 in
    t.int_bufs.(slot) <- buf;
    buf
  end

let repack_scratch t = t.repack

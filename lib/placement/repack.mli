(** Template-style greedy re-packing.

    Given reference block corners and new dimensions, blocks are visited
    in the reference left-to-right, bottom-to-top order and each one
    slides upward until it overlaps none of the already-packed blocks.
    This is how a fixed layout template absorbs size changes: the
    arrangement survives, optimality does not.  Used by the template
    baseline placer and by the multi-placement structure's fallback
    answer for uncovered dimension vectors. *)

open Mps_geometry

val instantiate : ?die:int * int -> coords:(int * int) array -> Dims.t -> Rect.t array
(** Overlap-free floorplan at exactly the requested dimensions.  With
    [?die:(die_w, die_h)] the packed floorplan is translated back
    toward the origin so it fits the die whenever its bounding box can
    (per axis); a bounding box larger than the die still sticks out —
    rigidity is the template's defining weakness.
    @raise Invalid_argument on block-count mismatch. *)

type scratch
(** Reusable working set for {!instantiate_into} (sort permutation and
    placed flags); sized lazily to the block count on first use and
    reused for free while the count is stable.  Not thread-safe — one
    per worker (see [Arena]). *)

val scratch : unit -> scratch

val instantiate_into :
  scratch:scratch ->
  out:Rect.t array ->
  ?die:int * int ->
  coords:(int * int) array ->
  Dims.t ->
  unit
(** {!instantiate} into a caller buffer of exactly one rectangle per
    block, refilled in place: the allocation-free variant for the
    admission-test and template-averaging loops, which re-pack
    hundreds of sampled dimension vectors per candidate.  Results are
    identical to {!instantiate}.
    @raise Invalid_argument on a block-count or buffer-length
    mismatch. *)

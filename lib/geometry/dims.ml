type t = { w : int array; h : int array }

let validate w h =
  if Array.length w <> Array.length h then
    invalid_arg "Dims.make: width/height arrays differ in length";
  Array.iter (fun v -> if v <= 0 then invalid_arg "Dims.make: non-positive width") w;
  Array.iter (fun v -> if v <= 0 then invalid_arg "Dims.make: non-positive height") h

let make ~w ~h =
  validate w h;
  { w = Array.copy w; h = Array.copy h }

let unsafe_of_arrays ~w ~h = { w; h }

let of_pairs pairs =
  let w = Array.map fst pairs and h = Array.map snd pairs in
  validate w h;
  { w; h }

let n_blocks t = Array.length t.w

let width t i = t.w.(i)
let height t i = t.h.(i)

let widths t = Array.copy t.w
let heights t = Array.copy t.h

let set_width t i w =
  if w <= 0 then invalid_arg "Dims.set_width: non-positive";
  let w' = Array.copy t.w in
  w'.(i) <- w;
  { t with w = w' }

let set_height t i h =
  if h <= 0 then invalid_arg "Dims.set_height: non-positive";
  let h' = Array.copy t.h in
  h'.(i) <- h;
  { t with h = h' }

let total_area t =
  let acc = ref 0 in
  for i = 0 to Array.length t.w - 1 do
    acc := !acc + (t.w.(i) * t.h.(i))
  done;
  !acc

let map2_sum a b ~f =
  if n_blocks a <> n_blocks b then invalid_arg "Dims.map2_sum: size mismatch";
  let acc = ref 0 in
  for i = 0 to n_blocks a - 1 do
    acc := !acc + f a.w.(i) b.w.(i) + f a.h.(i) b.h.(i)
  done;
  !acc

let equal a b = a.w = b.w && a.h = b.h

let pp fmt t =
  Format.fprintf fmt "@[<h>";
  Array.iteri (fun i w -> Format.fprintf fmt "%s%dx%d" (if i > 0 then " " else "") w t.h.(i)) t.w;
  Format.fprintf fmt "@]"

(** Axis-aligned integer rectangles.

    A placed block occupies the half-open region
    [[x, x+w) × [y, y+h)] of the layout grid; two blocks that merely
    share an edge do not overlap. *)

type t = { mutable x : int; mutable y : int; mutable w : int; mutable h : int }
(** Lower-left corner [(x, y)], width [w >= 1], height [h >= 1].

    Fields are mutable so hot paths (the query engine's
    [instantiate_into] scratch buffers) can refill a rectangle in place
    instead of allocating a fresh one per call; everywhere else rects
    are treated as immutable values and updated with {!make},
    {!translate} or [{ r with ... }]. *)

val make : x:int -> y:int -> w:int -> h:int -> t
(** @raise Invalid_argument when [w] or [h] is not positive. *)

val set : t -> x:int -> y:int -> w:int -> h:int -> unit
(** In-place overwrite of all four fields — the allocation-free
    counterpart of {!make} for reusable rect buffers.  Only use on
    rects you own (scratch buffers), never on rects handed out by a
    structure.  @raise Invalid_argument when [w] or [h] is not
    positive. *)

val area : t -> int

val x_span : t -> Interval.t
(** Inclusive interval of occupied columns: [[x .. x+w-1]]. *)

val y_span : t -> Interval.t
(** Inclusive interval of occupied rows: [[y .. y+h-1]]. *)

val right : t -> int
(** First free column: [x + w]. *)

val top : t -> int
(** First free row: [y + h]. *)

val center : t -> float * float
(** Geometric center. *)

val overlaps : t -> t -> bool
(** Positive-area intersection (edge contact is not overlap). *)

val overlap_area : t -> t -> int

val contains_point : t -> x:int -> y:int -> bool

val contains_rect : outer:t -> inner:t -> bool

val translate : t -> dx:int -> dy:int -> t

val inside : t -> die_w:int -> die_h:int -> bool
(** Fits entirely inside the die [[0, die_w) × [0, die_h)]. *)

val bounding_box : t list -> t option
(** Smallest rectangle enclosing all, [None] for the empty list. *)

val any_overlap : t array -> (int * int) option
(** First overlapping pair of distinct indices, if any. *)

val total_area : t array -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

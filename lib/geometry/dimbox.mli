(** Hyper-boxes in the block-dimension space.

    A stored placement [p_j] is valid exactly for dimension vectors inside
    its box: per block [i], an interval of widths [wstart..wend] and an
    interval of heights [hstart..hend] (the paper's eq. 2).  Equation 5
    ([|M(V)| = 1]) is enforced by keeping the boxes of all stored
    placements pairwise disjoint. *)

type t
(** Immutable box: one width interval and one height interval per block. *)

(** Identifies one axis of the dimension space: the width or the height
    of a particular block.  [Resolve Overlaps] shrinks a placement's box
    along one such axis. *)
type axis =
  | Width of int   (** width axis of block [i] *)
  | Height of int  (** height axis of block [i] *)

val make : w : Interval.t array -> h : Interval.t array -> t
(** @raise Invalid_argument when the arrays differ in length. *)

val of_dims_range : lo:Dims.t -> hi:Dims.t -> t
(** Box spanning [lo..hi] per axis.
    @raise Invalid_argument on any inverted axis. *)

val point : Dims.t -> t
(** Degenerate box containing only the given vector. *)

val n_blocks : t -> int

val w_interval : t -> int -> Interval.t
(** Width interval of block [i]. *)

val h_interval : t -> int -> Interval.t

val axis_interval : t -> axis -> Interval.t

val with_axis : t -> axis -> Interval.t -> t
(** Copy with one axis interval replaced. *)

val axes : t -> axis list
(** All [2N] axes in block order, width before height. *)

val contains : t -> Dims.t -> bool
(** Every width and height of the vector lies in its interval. *)

val contains_box : outer:t -> inner:t -> bool

val overlaps : t -> t -> bool
(** Boxes share a dimension vector: every axis pair overlaps. *)

val disjoint_axis : t -> t -> axis option
(** Some axis on which the two boxes are disjoint, if any ([None] means
    they overlap). *)

val min_overlap_axis : t -> t -> axis option
(** When the boxes overlap, the axis with the smallest positive overlap
    length (the paper's "smallest dimension (row) in which the two
    placements are overlapping"); [None] when disjoint. *)

val inter : t -> t -> t option

val lower_corner : t -> Dims.t
(** Vector of all per-axis lower bounds. *)

val upper_corner : t -> Dims.t

val center : t -> Dims.t
(** Per-axis integer midpoints. *)

val clamp : t -> Dims.t -> Dims.t
(** Closest vector of the box to the argument. *)

val volume_fraction : t -> bounds:t -> float
(** Product over axes of the covered fraction of [bounds] — the share of
    the total dimension search space this box covers.  Used by the
    explorer's percentage-coverage stopping criterion. *)

val random_dims : Mps_rng.Rng.t -> t -> Dims.t
(** Uniform sample inside the box.  Draw order is part of the
    deterministic contract: all heights (ascending by block), then all
    widths. *)

val random_dims_into : Mps_rng.Rng.t -> t -> w:int array -> h:int array -> unit
(** {!random_dims} into caller buffers (same draws, same order) —
    nothing allocated, for sampling loops that draw thousands of
    vectors against per-worker scratch.  The values are written raw;
    pair with [Dims.unsafe_of_arrays] only while the buffers are not
    being overwritten.
    @raise Invalid_argument on a buffer-length mismatch. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_axis : Format.formatter -> axis -> unit

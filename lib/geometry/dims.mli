(** Concrete dimension vectors.

    The input vector [V = (w_0, h_0, ..., w_{N-1}, h_{N-1})] of the paper's
    function [M] (eq. 1): one width and one height per block. *)

type t
(** Immutable vector of per-block widths and heights. *)

val make : w:int array -> h:int array -> t
(** @raise Invalid_argument when the arrays differ in length or any
    entry is not positive. *)

val unsafe_of_arrays : w:int array -> h:int array -> t
(** Wrap the arrays without copying or validating.  The caller owns the
    invariants ({!make}'s equal lengths and positive entries) and must
    not mutate the arrays while the value is live.  Exists for
    serving-rate decode loops that reuse one scratch pair per
    connection; everywhere else, use {!make}. *)

val of_pairs : (int * int) array -> t
(** [of_pairs [| (w0, h0); ... |]]. *)

val n_blocks : t -> int

val width : t -> int -> int
(** [width t i] is the width of block [i]. *)

val height : t -> int -> int

val widths : t -> int array
(** Fresh copy of the width vector. *)

val heights : t -> int array

val set_width : t -> int -> int -> t
(** [set_width t i w] is a copy of [t] with block [i]'s width replaced. *)

val set_height : t -> int -> int -> t

val total_area : t -> int
(** Sum over blocks of [w * h]. *)

val map2_sum : t -> t -> f:(int -> int -> int) -> int
(** [map2_sum a b ~f] sums [f] over corresponding width entries and
    corresponding height entries of [a] and [b]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

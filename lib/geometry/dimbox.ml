type t = { w : Interval.t array; h : Interval.t array }

type axis =
  | Width of int
  | Height of int

let make ~w ~h =
  if Array.length w <> Array.length h then
    invalid_arg "Dimbox.make: array length mismatch";
  { w = Array.copy w; h = Array.copy h }

let of_dims_range ~lo ~hi =
  let n = Dims.n_blocks lo in
  if Dims.n_blocks hi <> n then invalid_arg "Dimbox.of_dims_range: size mismatch";
  {
    w = Array.init n (fun i -> Interval.make (Dims.width lo i) (Dims.width hi i));
    h = Array.init n (fun i -> Interval.make (Dims.height lo i) (Dims.height hi i));
  }

let point dims = of_dims_range ~lo:dims ~hi:dims

let n_blocks t = Array.length t.w

let w_interval t i = t.w.(i)
let h_interval t i = t.h.(i)

let axis_interval t = function
  | Width i -> t.w.(i)
  | Height i -> t.h.(i)

let with_axis t axis iv =
  match axis with
  | Width i ->
    let w = Array.copy t.w in
    w.(i) <- iv;
    { t with w }
  | Height i ->
    let h = Array.copy t.h in
    h.(i) <- iv;
    { t with h }

let axes t =
  let n = n_blocks t in
  List.concat (List.init n (fun i -> [ Width i; Height i ]))

let contains t dims =
  let n = n_blocks t in
  if Dims.n_blocks dims <> n then false
  else
    let rec loop i =
      i >= n
      || (Interval.contains t.w.(i) (Dims.width dims i)
          && Interval.contains t.h.(i) (Dims.height dims i)
          && loop (i + 1))
    in
    loop 0

let contains_box ~outer ~inner =
  let n = n_blocks outer in
  n = n_blocks inner
  &&
  let rec loop i =
    i >= n
    || (Interval.contains_interval ~outer:outer.w.(i) ~inner:inner.w.(i)
        && Interval.contains_interval ~outer:outer.h.(i) ~inner:inner.h.(i)
        && loop (i + 1))
  in
  loop 0

let disjoint_axis a b =
  let n = n_blocks a in
  if n_blocks b <> n then invalid_arg "Dimbox.disjoint_axis: size mismatch";
  let rec loop i =
    if i >= n then None
    else if not (Interval.overlaps a.w.(i) b.w.(i)) then Some (Width i)
    else if not (Interval.overlaps a.h.(i) b.h.(i)) then Some (Height i)
    else loop (i + 1)
  in
  loop 0

let overlaps a b = Option.is_none (disjoint_axis a b)

let min_overlap_axis a b =
  if not (overlaps a b) then None
  else begin
    let best = ref None in
    let consider axis ov =
      match !best with
      | Some (_, best_ov) when best_ov <= ov -> ()
      | _ -> best := Some (axis, ov)
    in
    for i = 0 to n_blocks a - 1 do
      consider (Width i) (Interval.overlap_length a.w.(i) b.w.(i));
      consider (Height i) (Interval.overlap_length a.h.(i) b.h.(i))
    done;
    Option.map fst !best
  end

let inter a b =
  let n = n_blocks a in
  if n_blocks b <> n then invalid_arg "Dimbox.inter: size mismatch";
  let exception Disjoint in
  let isect x y =
    match Interval.inter x y with
    | Some iv -> iv
    | None -> raise Disjoint
  in
  try
    Some
      {
        w = Array.init n (fun i -> isect a.w.(i) b.w.(i));
        h = Array.init n (fun i -> isect a.h.(i) b.h.(i));
      }
  with Disjoint -> None

let lower_corner t =
  Dims.make ~w:(Array.map Interval.lo t.w) ~h:(Array.map Interval.lo t.h)

let upper_corner t =
  Dims.make ~w:(Array.map Interval.hi t.w) ~h:(Array.map Interval.hi t.h)

let center t =
  Dims.make ~w:(Array.map Interval.midpoint t.w) ~h:(Array.map Interval.midpoint t.h)

let clamp t dims =
  let n = n_blocks t in
  Dims.make
    ~w:(Array.init n (fun i -> Interval.clamp t.w.(i) (Dims.width dims i)))
    ~h:(Array.init n (fun i -> Interval.clamp t.h.(i) (Dims.height dims i)))

let volume_fraction t ~bounds =
  let n = n_blocks t in
  if n_blocks bounds <> n then invalid_arg "Dimbox.volume_fraction: size mismatch";
  let acc = ref 1.0 in
  for i = 0 to n - 1 do
    acc := !acc *. Interval.fraction_of t.w.(i) ~of_:bounds.w.(i);
    acc := !acc *. Interval.fraction_of t.h.(i) ~of_:bounds.h.(i)
  done;
  !acc

(* Draw order is pinned: all heights first, then all widths, each
   ascending by block.  (The original implementation built the two
   arrays as labeled arguments of one [Dims.make] call, which OCaml
   evaluates right to left — checkpoints and regression hashes replay
   that order, so it is now explicit.) *)
let random_dims_into rng t ~w ~h =
  let n = n_blocks t in
  if Array.length w <> n || Array.length h <> n then
    invalid_arg "Dimbox.random_dims_into: bad buffer length";
  let draw iv = Mps_rng.Rng.int_in rng (Interval.lo iv) (Interval.hi iv) in
  for i = 0 to n - 1 do
    h.(i) <- draw t.h.(i)
  done;
  for i = 0 to n - 1 do
    w.(i) <- draw t.w.(i)
  done

let random_dims rng t =
  let n = n_blocks t in
  let w = Array.make n 1 and h = Array.make n 1 in
  random_dims_into rng t ~w ~h;
  (* fresh arrays, never aliased — safe to adopt without the copy *)
  Dims.unsafe_of_arrays ~w ~h

let equal a b =
  n_blocks a = n_blocks b
  && Array.for_all2 Interval.equal a.w b.w
  && Array.for_all2 Interval.equal a.h b.h

let pp_axis fmt = function
  | Width i -> Format.fprintf fmt "w%d" i
  | Height i -> Format.fprintf fmt "h%d" i

let pp fmt t =
  Format.fprintf fmt "@[<h>";
  for i = 0 to n_blocks t - 1 do
    Format.fprintf fmt "%s%a x %a" (if i > 0 then " " else "") Interval.pp t.w.(i)
      Interval.pp t.h.(i)
  done;
  Format.fprintf fmt "@]"

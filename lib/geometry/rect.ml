type t = { mutable x : int; mutable y : int; mutable w : int; mutable h : int }

(* Int-specialized [min]/[max]: the polymorphic ones cost a generic
   compare call each, and [overlap_area] sits in O(n^2) cost loops. *)
let[@inline] imin (a : int) b = if a <= b then a else b
let[@inline] imax (a : int) b = if a >= b then a else b

let make ~x ~y ~w ~h =
  if w <= 0 || h <= 0 then
    invalid_arg (Printf.sprintf "Rect.make: non-positive size %dx%d" w h);
  { x; y; w; h }

let set t ~x ~y ~w ~h =
  if w <= 0 || h <= 0 then
    invalid_arg (Printf.sprintf "Rect.set: non-positive size %dx%d" w h);
  t.x <- x;
  t.y <- y;
  t.w <- w;
  t.h <- h

let area t = t.w * t.h

let x_span t = Interval.make t.x (t.x + t.w - 1)
let y_span t = Interval.make t.y (t.y + t.h - 1)

let right t = t.x + t.w
let top t = t.y + t.h

let center t =
  ( float_of_int t.x +. (float_of_int t.w /. 2.0),
    float_of_int t.y +. (float_of_int t.h /. 2.0) )

let overlaps a b =
  a.x < right b && b.x < right a && a.y < top b && b.y < top a

let overlap_area a b =
  let dx = imin (right a) (right b) - imax a.x b.x in
  let dy = imin (top a) (top b) - imax a.y b.y in
  if dx > 0 && dy > 0 then dx * dy else 0

let contains_point t ~x ~y = t.x <= x && x < right t && t.y <= y && y < top t

let contains_rect ~outer ~inner =
  outer.x <= inner.x && right inner <= right outer
  && outer.y <= inner.y && top inner <= top outer

let translate t ~dx ~dy = { t with x = t.x + dx; y = t.y + dy }

let inside t ~die_w ~die_h = t.x >= 0 && t.y >= 0 && right t <= die_w && top t <= die_h

let bounding_box = function
  | [] -> None
  | r :: rest ->
    let f acc r =
      let x = imin acc.x r.x and y = imin acc.y r.y in
      let xr = imax (right acc) (right r) and yt = imax (top acc) (top r) in
      { x; y; w = xr - x; h = yt - y }
    in
    Some (List.fold_left f r rest)

let any_overlap rects =
  let n = Array.length rects in
  let rec outer i =
    if i >= n then None
    else
      let rec inner j =
        if j >= n then outer (i + 1)
        else if overlaps rects.(i) rects.(j) then Some (i, j)
        else inner (j + 1)
      in
      inner (i + 1)
  in
  outer 0

let total_area rects = Array.fold_left (fun acc r -> acc + area r) 0 rects

let equal a b = a.x = b.x && a.y = b.y && a.w = b.w && a.h = b.h

let pp fmt t = Format.fprintf fmt "(%d,%d %dx%d)" t.x t.y t.w t.h

let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let line fields = String.concat "," (List.map escape fields) ^ "\n"

let render ~header ~rows =
  line header ^ String.concat "" (List.map line rows)

let save ~path ~header ~rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ~header ~rows))

let table2 rows =
  render
    ~header:
      [ "circuit"; "generation_s"; "placements"; "coverage"; "instantiation_s";
        "template_share" ]
    ~rows:
      (List.map
         (fun (r : Experiments.table2_row) ->
           [
             r.Experiments.circuit_name;
             Printf.sprintf "%.6f" r.Experiments.generation_seconds;
             string_of_int r.Experiments.placements;
             Printf.sprintf "%.6f" r.Experiments.coverage;
             Printf.sprintf "%.9f" r.Experiments.instantiation_seconds;
             Printf.sprintf "%.4f" r.Experiments.fallback_rate;
           ])
         rows)

let figure6 points =
  render
    ~header:[ "w0"; "mps_cost"; "mps_choice"; "envelope"; "envelope_argmin" ]
    ~rows:
      (List.map
         (fun (p : Experiments.figure6_point) ->
           let min_j, min_c =
             Array.fold_left
               (fun (bj, bc) (j, c) -> if c < bc then (j, c) else (bj, bc))
               (-1, infinity) p.Experiments.per_placement
           in
           [
             string_of_int p.Experiments.swept_value;
             Printf.sprintf "%.3f" p.Experiments.mps_cost;
             (match p.Experiments.mps_choice with
             | Mps_core.Structure.Stored_placement j -> string_of_int j
             | Mps_core.Structure.Fallback -> "fallback"
             | Mps_core.Structure.Out_of_domain -> "out-of-domain");
             Printf.sprintf "%.3f" min_c;
             string_of_int min_j;
           ])
         points)

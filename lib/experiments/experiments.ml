open Mps_rng
open Mps_geometry
open Mps_netlist
open Mps_core

type budget =
  | Quick
  | Full

let generator_config budget circuit =
  let n = Circuit.n_blocks circuit in
  (* Larger circuits get a little more exploration, mirroring the
     paper's growth of generation effort with circuit size. *)
  let scale = 1.0 +. (float_of_int n /. 12.0) in
  let base = Generator.default_config in
  match budget with
  | Quick ->
    {
      base with
      explorer_iterations = max 8 (int_of_float (10.0 *. scale));
      bdio = { base.bdio with Bdio.iterations = 120 };
      max_placements = 60;
      backup_iterations = 1500;
      refine_iterations = 400;
    }
  | Full ->
    {
      base with
      explorer_iterations = max 60 (int_of_float (90.0 *. scale));
      bdio = { base.bdio with Bdio.iterations = 500 };
      max_placements = 220;
      refine_iterations = 4000;
    }

(* Table 1 *)

let table1 () =
  let rows =
    List.map
      (fun c ->
        [
          c.Circuit.name;
          string_of_int (Circuit.n_blocks c);
          string_of_int (Circuit.n_nets c);
          string_of_int (Circuit.n_terminals c);
        ])
      Benchmarks.all
  in
  "Table 1: test benchmarks\n"
  ^ Text_table.render ~headers:[ "Circuit"; "Blocks"; "Nets"; "Terminals" ] ~rows

(* Probe workload *)

let probe_dims ~seed ~n structure =
  let rng = Rng.create ~seed in
  let circuit = Structure.circuit structure in
  let bounds = Circuit.dim_bounds circuit in
  let stored = Structure.placements structure in
  let jittered () =
    let s = stored.(Rng.int rng (Array.length stored)) in
    let base = s.Stored.best_dims in
    let nb = Dims.n_blocks base in
    let jitter dims i =
      let dims = Dims.set_width dims i (Dims.width dims i + Rng.int_in rng (-2) 2) in
      Dims.set_height dims i (Dims.height dims i + Rng.int_in rng (-2) 2)
    in
    let rec jiggle dims i = if i >= nb then dims else jiggle (jitter dims i) (i + 1) in
    (* keep the jittered vector inside the designer space *)
    let raw =
      try jiggle base 0 with Invalid_argument _ -> base
    in
    Dimbox.clamp bounds raw
  in
  Array.init n (fun k -> if k mod 2 = 0 then Dimbox.random_dims rng bounds else jittered ())

(* Table 2 *)

type table2_row = {
  circuit_name : string;
  generation_seconds : float;
  placements : int;  (** Explorer-discovered placements (Table 2). *)
  coverage : float;
  instantiation_seconds : float;
  fallback_rate : float;
      (** Share of probe queries answered template-style (backup
          territory or uncovered space). *)
}

let time_wall f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let table2_row ~budget circuit =
  let config = generator_config budget circuit in
  let (structure, stats), generation_seconds =
    time_wall (fun () -> Generator.generate ~config circuit)
  in
  let probes = probe_dims ~seed:(config.Generator.seed + 7) ~n:2000 structure in
  let fallbacks = ref 0 in
  let sink = ref 0 in
  let (), instantiation_total =
    time_wall (fun () ->
        Array.iter
          (fun dims ->
            (match Structure.query structure dims with
            | (Structure.Fallback | Structure.Out_of_domain), _ -> incr fallbacks
            | Structure.Stored_placement _, s ->
              if s.Stored.template_like then incr fallbacks);
            let rects = Structure.instantiate structure dims in
            sink := !sink + Array.length rects)
          probes)
  in
  ignore !sink;
  let n_probes = Array.length probes in
  ( {
      circuit_name = circuit.Circuit.name;
      generation_seconds;
      placements = Structure.n_explored structure;
      coverage = stats.Generator.coverage;
      instantiation_seconds = instantiation_total /. float_of_int n_probes;
      fallback_rate = float_of_int !fallbacks /. float_of_int n_probes;
    },
    structure )

let table2 ?(budget = Full) ?(circuits = Benchmarks.all) () =
  let rows = List.map (fun c -> fst (table2_row ~budget c)) circuits in
  let render_row r =
    [
      r.circuit_name;
      Text_table.seconds r.generation_seconds;
      string_of_int r.placements;
      Printf.sprintf "%.4f" r.coverage;
      Text_table.microseconds r.instantiation_seconds;
      Printf.sprintf "%.0f%%" (100.0 *. r.fallback_rate);
    ]
  in
  let report =
    "Table 2: generation and usage of the multi-placement structures\n"
    ^ Text_table.render
        ~headers:
          [ "Circuit"; "Generation"; "Placements"; "Coverage"; "Instantiation"; "Template" ]
        ~rows:(List.map render_row rows)
  in
  (rows, report)

(* Figure 5 *)

let figure5 ?(budget = Quick) () =
  let circuit = Benchmarks.two_stage_opamp in
  let config = generator_config budget circuit in
  let structure, _ = Generator.generate ~config circuit in
  let die_w, die_h = Structure.die structure in
  let stored = Structure.placements structure in
  (* two stored placements with different coordinates, at their own best
     dimensions: the paper's (a) and (b) *)
  let pick_two () =
    let explored = Array.of_list (List.filter (fun s -> not s.Stored.template_like) (Array.to_list stored)) in
    let pool = if Array.length explored >= 1 then explored else stored in
    let a = pool.(0) in
    let differs s = not (Mps_placement.Placement.equal s.Stored.placement a.Stored.placement) in
    let b =
      match Array.find_opt differs pool with Some s -> s | None -> pool.(Array.length pool - 1)
    in
    (a, b)
  in
  let a, b = pick_two () in
  let buf = Buffer.create 4096 in
  let show label rects =
    Buffer.add_string buf (Printf.sprintf "--- %s ---\n" label);
    Buffer.add_string buf (Mps_render.Ascii.render ~max_cols:48 circuit ~die_w ~die_h rects);
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf "Figure 5: two-stage op-amp floorplan instantiations\n\n";
  show "(a) MPS instantiation, sizing A" (Stored.instantiate a a.Stored.best_dims);
  show "(b) MPS instantiation, sizing B" (Stored.instantiate b b.Stored.best_dims);
  let rng = Rng.create ~seed:99 in
  let template =
    Mps_baselines.Template_placer.build ~rng circuit ~die_w ~die_h
  in
  show "(c) fixed template at sizing B"
    (Mps_baselines.Template_placer.instantiate template b.Stored.best_dims);
  Buffer.contents buf

(* Figure 6 *)

type figure6_point = {
  swept_value : int;
  per_placement : (int * float) array;
  mps_cost : float;
  mps_choice : Structure.answer;
}

let figure6 ?(budget = Quick) () =
  let circuit = Benchmarks.two_stage_opamp in
  let config = generator_config budget circuit in
  let structure, _ = Generator.generate ~config circuit in
  let die_w, die_h = Structure.die structure in
  let stored = Structure.placements structure in
  let weights = Mps_cost.Cost.default_weights in
  (* Base point: the best dims of the placement with the widest block-0
     width interval, so the sweep crosses several boxes. *)
  let base =
    let widest = ref stored.(0) in
    Array.iter
      (fun s ->
        if
          Interval.length (Dimbox.w_interval s.Stored.box 0)
          > Interval.length (Dimbox.w_interval !widest.Stored.box 0)
        then widest := s)
      stored;
    !widest.Stored.best_dims
  in
  let bounds = Circuit.dim_bounds circuit in
  let w0 = Dimbox.w_interval bounds 0 in
  let points = ref [] in
  for v = Interval.lo w0 to Interval.hi w0 do
    let dims = Dims.set_width base 0 v in
    (* cost of committing to placement j's coordinates for these dims —
       the paper's top plot; outside a placement's legal box the penalized
       cost of the resulting overlaps shows, as it would in the paper *)
    let per_placement =
      Array.mapi
        (fun j s ->
          let rects = Stored.instantiate s dims in
          (j, Mps_cost.Cost.total ~weights circuit ~die_w ~die_h rects))
        stored
    in
    let answer, _ = Structure.query structure dims in
    let rects = Structure.instantiate structure dims in
    let mps_cost = Mps_cost.Cost.total ~weights circuit ~die_w ~die_h rects in
    points := { swept_value = v; per_placement; mps_cost; mps_choice = answer } :: !points
  done;
  let points = List.rev !points in
  (* Lower-envelope check: on covered points the structure's placement
     cost must match the minimum over stored placements. *)
  let covered, matched = (ref 0, ref 0) in
  List.iter
    (fun p ->
      match p.mps_choice with
      | Structure.Stored_placement _ ->
        incr covered;
        let envelope = Array.fold_left (fun acc (_, c) -> Float.min acc c) infinity p.per_placement in
        if p.mps_cost <= envelope +. 1e-6 then incr matched
      | Structure.Fallback | Structure.Out_of_domain -> ())
    points;
  let rows =
    List.map
      (fun p ->
        let min_j, min_c =
          Array.fold_left
            (fun (bj, bc) (j, c) -> if c < bc then (j, c) else (bj, bc))
            (-1, infinity) p.per_placement
        in
        [
          string_of_int p.swept_value;
          Printf.sprintf "%.1f" min_c;
          string_of_int min_j;
          Printf.sprintf "%.1f" p.mps_cost;
          (match p.mps_choice with
          | Structure.Stored_placement j ->
            if stored.(j).Stored.template_like then Printf.sprintf "#%d (template)" j
            else Printf.sprintf "#%d" j
          | Structure.Fallback -> "fallback"
          | Structure.Out_of_domain -> "out-of-domain");
        ])
      points
  in
  let report =
    Printf.sprintf
      "Figure 6: lowest-cost selection for the two-stage op-amp\n\
       (sweeping block 0 width; %d explored placements + backup territory)\n"
      (Structure.n_explored structure)
    ^ Text_table.render
        ~headers:[ "w0"; "envelope"; "argmin"; "mps cost"; "mps choice" ]
        ~rows
    ^ Printf.sprintf "covered points: %d; lower-envelope matches: %d\n" !covered !matched
  in
  (points, report)

(* Figure 7 *)

let figure7 ?(budget = Quick) () =
  let circuit = Benchmarks.tso_cascode in
  let config = generator_config budget circuit in
  let structure, stats = Generator.generate ~config circuit in
  let die_w, die_h = Structure.die structure in
  let best = Structure.backup structure in
  let rects = Stored.instantiate best best.Stored.best_dims in
  Printf.sprintf
    "Figure 7: floorplan instantiation for 'tso-cascode' (21 modules)\n\
     (%d placements stored in %s; showing the best-cost placement)\n\n"
    stats.Generator.placements_stored
    (Text_table.seconds stats.Generator.generation_seconds)
  ^ Mps_render.Ascii.render ~max_cols:72 circuit ~die_w ~die_h rects

(* Ablations *)

let structure_metrics structure =
  let probes = probe_dims ~seed:4242 ~n:1000 structure in
  let circuit = Structure.circuit structure in
  let die_w, die_h = Structure.die structure in
  let weights = Mps_cost.Cost.default_weights in
  let fallbacks = ref 0 and cost_sum = ref 0.0 in
  Array.iter
    (fun dims ->
      (match Structure.query structure dims with
      | (Structure.Fallback | Structure.Out_of_domain), _ -> incr fallbacks
      | Structure.Stored_placement _, s ->
        if s.Stored.template_like then incr fallbacks);
      let rects = Structure.instantiate structure dims in
      cost_sum := !cost_sum +. Mps_cost.Cost.total ~weights circuit ~die_w ~die_h rects)
    probes;
  let n = float_of_int (Array.length probes) in
  ( float_of_int !fallbacks /. n,
    !cost_sum /. n )

let ablation_shrink ?(budget = Quick) () =
  let circuit = Benchmarks.two_stage_opamp in
  let base = generator_config budget circuit in
  let variants =
    [
      ("cost-ratio (paper)", Bdio.Cost_ratio);
      ("fixed 0.5", Bdio.Fixed 0.5);
      ("no shrink", Bdio.No_shrink);
    ]
  in
  let rows =
    List.map
      (fun (label, rule) ->
        let config = { base with Generator.bdio = { base.Generator.bdio with Bdio.shrink = rule } } in
        let structure, stats = Generator.generate ~config circuit in
        let fallback_rate, avg_cost = structure_metrics structure in
        [
          label;
          string_of_int stats.Generator.placements_stored;
          Printf.sprintf "%.4f" stats.Generator.coverage;
          Printf.sprintf "%.0f%%" (100.0 *. fallback_rate);
          Printf.sprintf "%.1f" avg_cost;
        ])
      variants
  in
  "Ablation A1: Optimize Ranges shrink rule (two-stage op-amp)\n"
  ^ Text_table.render
      ~headers:[ "Rule"; "Placements"; "Coverage"; "Fallback"; "Avg query cost" ]
      ~rows

let ablation_explorer ?(budget = Quick) () =
  let circuit = Benchmarks.two_stage_opamp in
  let config = generator_config budget circuit in
  let rows =
    List.map
      (fun (label, generate) ->
        let structure, stats = generate () in
        let fallback_rate, avg_cost = structure_metrics structure in
        [
          label;
          string_of_int stats.Generator.placements_stored;
          Printf.sprintf "%.4f" stats.Generator.coverage;
          Printf.sprintf "%.0f%%" (100.0 *. fallback_rate);
          Printf.sprintf "%.1f" avg_cost;
        ])
      [
        ("SA explorer (paper)", fun () -> Generator.generate ~config circuit);
        ("random restarts", fun () -> Generator.random_explorer ~config circuit);
      ]
  in
  "Ablation A2: placement explorer strategy (two-stage op-amp)\n"
  ^ Text_table.render
      ~headers:[ "Explorer"; "Placements"; "Coverage"; "Fallback"; "Avg query cost" ]
      ~rows

let ablation_fallback ?(budget = Quick) () =
  let circuit = Benchmarks.mixer in
  let config = generator_config budget circuit in
  let structure, _ = Generator.generate ~config circuit in
  let probes = probe_dims ~seed:4242 ~n:1000 structure in
  let die_w, die_h = Structure.die structure in
  let weights = Mps_cost.Cost.default_weights in
  let avg_cost instantiate =
    let total =
      Array.fold_left
        (fun acc dims ->
          acc +. Mps_cost.Cost.total ~weights circuit ~die_w ~die_h (instantiate dims))
        0.0 probes
    in
    total /. float_of_int (Array.length probes)
  in
  let rows =
    [
      [ "backup template (paper)";
        Printf.sprintf "%.1f" (avg_cost (Structure.instantiate structure)) ];
      [ "nearest stored box (extension)";
        Printf.sprintf "%.1f" (avg_cost (Structure.instantiate_nearest structure)) ];
    ]
  in
  "Ablation A5: fallback strategy for uncovered queries (Mixer)\n"
  ^ Text_table.render ~headers:[ "Strategy"; "Avg query cost" ] ~rows

let ablation_query ?(budget = Quick) () =
  let circuit = Benchmarks.benchmark24 in
  let config = generator_config budget circuit in
  let structure, _ = Generator.generate ~config circuit in
  let probes = probe_dims ~seed:7 ~n:5000 structure in
  let time_queries f =
    let (), t =
      time_wall (fun () -> Array.iter (fun dims -> ignore (f structure dims)) probes)
    in
    t /. float_of_int (Array.length probes)
  in
  let t_compiled = time_queries Structure.query in
  let t_linear = time_queries Structure.query_linear in
  "Ablation A3: query implementation (benchmark24, per query)\n"
  ^ Text_table.render
      ~headers:[ "Implementation"; "Time/query" ]
      ~rows:
        [
          [ "compiled bitset rows"; Text_table.microseconds t_compiled ];
          [ "linear box scan"; Text_table.microseconds t_linear ];
        ]

let ablation_refine ?(budget = Quick) () =
  let circuit = Benchmarks.two_stage_opamp in
  let base = generator_config budget circuit in
  let budgets = match budget with Quick -> [ 0; 120; 400 ] | Full -> [ 0; 400; 1500; 4000 ] in
  let rows =
    List.map
      (fun refine ->
        let config = { base with Generator.refine_iterations = refine } in
        let (structure, stats), seconds =
          time_wall (fun () -> Generator.generate ~config circuit)
        in
        let _, avg_cost = structure_metrics structure in
        [
          string_of_int refine;
          string_of_int (Structure.n_explored structure);
          string_of_int stats.Generator.candidates_dropped;
          Printf.sprintf "%.1f" avg_cost;
          Text_table.seconds seconds;
        ])
      budgets
  in
  "Ablation A7: per-candidate coordinate refinement (two-stage op-amp)\n\
   (0 = the paper's literal walk; admitted = placements that beat the template)\n"
  ^ Text_table.render
      ~headers:[ "Refine iters"; "Admitted"; "Dropped"; "Avg query cost"; "Generation" ]
      ~rows

let ablation_parasitics ?(budget = Quick) () =
  let process = Mps_modgen.Process.default in
  let circuit = Mps_synthesis.Opamp.circuit process in
  let die_w, die_h = Circuit.default_die circuit in
  let config = generator_config budget circuit in
  let structure, _ = Generator.generate ~config circuit in
  let placer = Mps_synthesis.Synth_loop.mps_placer structure in
  let iterations = match budget with Quick -> 30 | Full -> 80 in
  let run parasitics =
    Mps_synthesis.Synth_loop.run
      ~config:{ Mps_synthesis.Synth_loop.default_config with iterations; parasitics }
      process circuit ~die_w ~die_h placer
  in
  let rows =
    List.map
      (fun (label, parasitics) ->
        let r = run parasitics in
        [
          label;
          Printf.sprintf "%.2f" r.Mps_synthesis.Synth_loop.best_cost;
          Printf.sprintf "%.1f" r.Mps_synthesis.Synth_loop.best_perf.Mps_synthesis.Opamp.gbw_mhz;
          Printf.sprintf "%.0f" r.Mps_synthesis.Synth_loop.best_perf.Mps_synthesis.Opamp.wire_cap_ff;
          Text_table.seconds r.Mps_synthesis.Synth_loop.total_seconds;
        ])
      [
        ("HPWL estimate", Mps_synthesis.Synth_loop.Hpwl_estimate);
        ("maze route + RC extraction", Mps_synthesis.Synth_loop.Routed_extraction);
      ]
  in
  Printf.sprintf
    "Ablation A6: parasitic estimation inside the sizing loop (%d candidates)\n" iterations
  ^ Text_table.render
      ~headers:[ "Parasitics"; "Best cost"; "GBW MHz"; "Cwire fF"; "Loop time" ]
      ~rows

(* Synthesis comparison *)

let synthesis_comparison ?(budget = Quick) () =
  let process = Mps_modgen.Process.default in
  let circuit = Mps_synthesis.Opamp.circuit process in
  let die_w, die_h = Circuit.default_die circuit in
  let config = generator_config budget circuit in
  let (structure, _gen_stats), gen_time =
    time_wall (fun () -> Generator.generate ~config circuit)
  in
  let rng = Rng.create ~seed:5 in
  let template, template_time =
    time_wall (fun () -> Mps_baselines.Template_placer.build ~rng circuit ~die_w ~die_h)
  in
  let sa_config =
    match budget with
    | Quick -> { Mps_baselines.Sa_placer.default_config with iterations = 800 }
    | Full -> Mps_baselines.Sa_placer.default_config
  in
  let loop_iterations = match budget with Quick -> 60 | Full -> 150 in
  let loop_config = { Mps_synthesis.Synth_loop.default_config with iterations = loop_iterations } in
  let placers =
    [
      (Mps_synthesis.Synth_loop.mps_placer structure, gen_time);
      (Mps_synthesis.Synth_loop.template_placer template, template_time);
      ( Mps_synthesis.Synth_loop.sa_placer ~config:sa_config ~seed:11 circuit ~die_w ~die_h,
        0.0 );
    ]
  in
  let rows =
    List.map
      (fun (placer, setup_time) ->
        let r =
          Mps_synthesis.Synth_loop.run ~config:loop_config process circuit ~die_w ~die_h
            placer
        in
        [
          placer.Mps_synthesis.Synth_loop.name;
          Printf.sprintf "%.2f" r.Mps_synthesis.Synth_loop.best_cost;
          (if r.Mps_synthesis.Synth_loop.meets_spec then "yes" else "no");
          Printf.sprintf "%.1f" r.Mps_synthesis.Synth_loop.best_perf.Mps_synthesis.Opamp.gbw_mhz;
          Text_table.seconds r.Mps_synthesis.Synth_loop.placement_seconds;
          Text_table.seconds r.Mps_synthesis.Synth_loop.total_seconds;
          Text_table.seconds setup_time;
        ])
      placers
  in
  Printf.sprintf
    "Synthesis comparison (A4): layout-inclusive sizing, %d candidates\n\
     (MPS: %d explored placements, one-time generation amortized over every loop)\n"
    loop_iterations (Structure.n_explored structure)
  ^ Text_table.render
      ~headers:
        [ "Placer"; "Best cost"; "Spec met"; "GBW MHz"; "Placement time"; "Loop time";
          "One-time setup" ]
      ~rows

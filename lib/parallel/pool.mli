(** Dependency-free domain pool (stdlib [Domain]/[Mutex]/[Condition]/[Atomic]).

    A pool runs batches of independent tasks across a fixed set of
    domains.  Results are always delivered **in task order**, so the
    output of [map]/[map_reduce] is bit-identical regardless of how
    many domains the pool has or how the scheduler interleaves them —
    the cornerstone of deterministic parallel generation (DESIGN.md
    §9).  Determinism of the tasks themselves is the caller's job:
    each task must draw randomness from its own stream (see
    {!Mps_rng.Rng.split}) and must not share mutable state with other
    tasks.

    The calling domain participates in every batch, so a pool of
    [jobs] workers spawns [jobs - 1] domains.  Scratch buffers
    (per-worker error slots) are sized once at pool creation and
    reused across batches — no per-batch allocation beyond the result
    array. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] capped to 8 (and at least 1).
    The cap keeps oversubscription in check on large hosts; pass an
    explicit [jobs] to go wider. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains ([jobs]
    defaults to {!default_jobs}).  [jobs = 1] is a valid pool that
    runs every batch sequentially on the calling domain.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** Worker count, including the calling domain. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f tasks] applies [f] to every task and returns the
    results in task order.  Tasks run concurrently (work-stealing via
    an atomic counter); if any task raises, the exception of the
    {e lowest} failing task index is re-raised after the batch
    completes, so failures are deterministic too. *)

val map_reduce : t -> map:('a -> 'b) -> fold:('c -> 'b -> 'c) -> init:'c -> 'a array -> 'c
(** [map_reduce pool ~map ~fold ~init tasks] maps in parallel, then
    folds the results sequentially in task order. *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent.  The pool must not be used
    afterwards. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] brackets [create]/[shutdown] around [f],
    shutting down on exceptions as well. *)

(** Dependency-free domain pool (stdlib [Domain]/[Mutex]/[Condition]/[Atomic];
    no domainslib).

    A pool runs batches of independent tasks across a fixed set of
    domains with {b chunked deterministic work-stealing}: a batch's
    task indices are split into one contiguous range per participating
    worker, owners pop chunks from the front of their own range, and
    workers whose range has drained steal chunks from the back of a
    victim's range — every claim a single compare-and-set on a packed
    (lo, hi) word, so workers touch each other's cache lines only when
    they actually steal.

    Results are always delivered {b in task order}, so the output of
    [map]/[map_chunked]/[map_reduce] is bit-identical regardless of how
    many domains the pool has, how the scheduler interleaves them, or
    which worker steals what — the cornerstone of deterministic
    parallel generation (DESIGN.md §9).  Stealing moves {e where} a
    task runs, never what it computes: determinism of the tasks
    themselves is the caller's job.  Each task must draw randomness
    from its own stream (see {!Mps_rng.Rng.split}) and must not share
    mutable state with other tasks; per-worker state (arenas, scratch
    engines) is safe exactly when results do not depend on it — the
    [map_chunked] worker index exists for that reuse pattern.

    The calling domain participates in every batch, so a pool of
    [jobs] workers spawns [jobs - 1] domains.  Small batches wake only
    as many workers as there are chunks (each spawned worker has its
    own condition variable); scratch (deque atomics, error slots,
    stats) is sized once at pool creation and reused across batches —
    no per-batch allocation beyond the result array. *)

type t

val default_jobs : ?max_jobs:int -> unit -> int
(** [Domain.recommended_domain_count ()] clamped to at least 1 and to
    a cap.  The cap is, in priority order: [max_jobs] when given, the
    [MPS_MAX_JOBS] environment variable when set to a positive
    integer, else 8.

    Rationale for capping at all: generation tasks are heavyweight and
    memory-bound, and the structure fan-outs rarely expose more than a
    few dozen independent tasks — past that point extra domains only
    add stop-the-world minor-GC synchronization cost, which is pure
    loss when the host advertises many SMT threads.  The default cap
    of 8 keeps that oversubscription in check; large hosts that
    genuinely want wider pools raise it with [MPS_MAX_JOBS] (fleet
    config) or [~max_jobs] (code), or pass an explicit [jobs] to
    {!create}, which is never capped. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains ([jobs]
    defaults to {!default_jobs}).  [jobs = 1] is a valid pool that
    runs every batch sequentially on the calling domain.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** Worker count, including the calling domain. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f tasks] applies [f] to every task and returns the
    results in task order.  Tasks run concurrently under the chunked
    work-stealing scheduler (default grain: [n / (jobs * d)] tasks per
    chunk, at least 1, where [d] is the auto-tuned {!chunk_divisor});
    if any task raises, the exception of the {e lowest} failing task
    index is re-raised after the batch completes, so failures are
    deterministic too. *)

val chunk_divisor : t -> int
(** The divisor [d] behind the default scheduling grain
    [n / (jobs * d)].  Starts at 8 and is retuned after every
    default-grain parallel batch from that batch's steal/chunk ratio:
    above 25% stolen chunks the split was too coarse to balance and
    [d] doubles (finer chunks), below 5% the claim traffic is pure
    overhead and [d] halves (coarser chunks); clamped to [2 .. 32].
    Tuning moves only the scheduling grain — results are in task order
    and bit-identical under any divisor, and an explicit [?chunk]
    bypasses both the default and the tuning. *)

val map_chunked : t -> ?chunk:int -> (worker:int -> 'a -> 'b) -> 'a array -> 'b array
(** [map_chunked pool ~chunk f tasks] — like {!map}, with the
    scheduling grain under caller control and the worker slot exposed
    to the task.  [chunk] is how many consecutive tasks a worker
    claims (and a thief steals) at a time: small chunks balance load,
    large chunks amortize claim traffic; results are in task order
    either way.  [worker] is the slot (in [0 .. jobs-1]) running the
    task — no two concurrently running tasks see the same slot, so it
    may safely index per-worker scratch (arenas); anything reached
    through it must not influence results, or determinism across job
    counts is lost.
    @raise Invalid_argument if [chunk < 1]. *)

val map_reduce : t -> map:('a -> 'b) -> fold:('c -> 'b -> 'c) -> init:'c -> 'a array -> 'c
(** [map_reduce pool ~map ~fold ~init tasks] maps in parallel, then
    folds the results sequentially in task order. *)

(** Cumulative per-worker scheduling counters since pool creation (or
    the last {!reset_stats}) — the diagnosis surface for scaling
    regressions, reported by [--par-bench]. *)
type stats = {
  tasks : int;  (** Tasks this worker executed. *)
  chunks : int;  (** Chunks claimed (own-range pops plus steals). *)
  steals : int;  (** Chunks taken from another worker's range. *)
  batches : int;  (** Batches this worker participated in. *)
  minor_words : float;
      (** Minor-heap words this worker allocated while running tasks
          (domain-local [Gc.minor_words] delta) — the contention
          currency on OCaml 5, where every minor collection is a
          stop-the-world across domains. *)
  busy_seconds : float;  (** Wall time spent inside batches. *)
}

val stats : t -> stats array
(** One snapshot per worker slot; slot [jobs - 1] is (usually) the
    calling domain — on batches small enough to wake fewer workers the
    caller takes the last {e participating} slot instead, so slot
    attribution is exact per batch, approximate across batches.  Call
    outside a batch; the batch handshake makes worker writes visible. *)

val reset_stats : t -> unit
(** Zero all counters (e.g. between benchmark phases). *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent.  The pool must not be used
    afterwards. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] brackets [create]/[shutdown] around [f],
    shutting down on exceptions as well. *)

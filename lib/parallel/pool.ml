(* Domain pool over stdlib primitives only.

   Batches are published under [mutex]: the caller installs the batch
   closure, bumps [epoch] and broadcasts; workers wake on the epoch
   change, pull task indices from the atomic [next] counter, and run
   tasks with no lock held.  The final mutex handshake (worker
   decrements [active] under the lock, caller waits for it to reach
   zero) establishes the happens-before edge that makes the workers'
   plain writes into the result array visible to the caller — each
   task writes a distinct slot, so no two domains ever race on the
   same word.

   Per-worker scratch ([errors]) is allocated once at pool creation
   and reused for every batch (the pool-resident buffers the perf
   satellite asks for); a batch only allocates its result array. *)

type t = {
  size : int; (* workers including the calling domain *)
  mutex : Mutex.t;
  work : Condition.t; (* new batch or shutdown *)
  finished : Condition.t; (* all workers drained the batch *)
  mutable batch : (int -> unit) option;
  mutable n_tasks : int;
  next : int Atomic.t; (* next unclaimed task index *)
  mutable active : int; (* spawned workers still in the batch *)
  mutable epoch : int;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  errors : (int * exn) option array; (* per-worker: lowest failing task *)
}

let default_jobs_cap = 8

let default_jobs () =
  max 1 (min default_jobs_cap (Domain.recommended_domain_count ()))

let jobs t = t.size

(* Drain tasks from the shared counter.  [slot] indexes the per-worker
   error scratch; the calling domain uses the last slot. *)
let run_share t body ~slot =
  let n = t.n_tasks in
  let continue_ = ref true in
  while !continue_ do
    let i = Atomic.fetch_and_add t.next 1 in
    if i >= n then continue_ := false
    else
      try body i
      with exn -> (
        match t.errors.(slot) with
        | Some (j, _) when j < i -> ()
        | _ -> t.errors.(slot) <- Some (i, exn))
  done

let worker t slot =
  let rec loop seen =
    Mutex.lock t.mutex;
    while (not t.stopping) && t.epoch = seen do
      Condition.wait t.work t.mutex
    done;
    if t.stopping then Mutex.unlock t.mutex
    else begin
      let epoch = t.epoch in
      let body = Option.get t.batch in
      Mutex.unlock t.mutex;
      run_share t body ~slot;
      Mutex.lock t.mutex;
      t.active <- t.active - 1;
      if t.active = 0 then Condition.signal t.finished;
      Mutex.unlock t.mutex;
      loop epoch
    end
  in
  loop 0

let create ?jobs () =
  let size = match jobs with None -> default_jobs () | Some j -> j in
  if size < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      size;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      batch = None;
      n_tasks = 0;
      next = Atomic.make 0;
      active = 0;
      epoch = 0;
      stopping = false;
      workers = [];
      errors = Array.make size None;
    }
  in
  if size > 1 then
    t.workers <-
      List.init (size - 1) (fun slot -> Domain.spawn (fun () -> worker t slot));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Run [body 0 .. body (n-1)] across the pool and re-raise the failure
   of the lowest failing task index, if any. *)
let run_batch t ~n body =
  if t.stopping then invalid_arg "Pool: used after shutdown";
  if n <= 0 then ()
  else if t.size = 1 then
    (* sequential fast path: in order, exceptions propagate directly
       (the first to raise is necessarily the lowest index) *)
    for i = 0 to n - 1 do
      body i
    done
  else begin
    Array.fill t.errors 0 t.size None;
    Mutex.lock t.mutex;
    t.batch <- Some body;
    t.n_tasks <- n;
    Atomic.set t.next 0;
    t.active <- t.size - 1;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    run_share t body ~slot:(t.size - 1);
    Mutex.lock t.mutex;
    while t.active > 0 do
      Condition.wait t.finished t.mutex
    done;
    t.batch <- None;
    Mutex.unlock t.mutex;
    let first =
      Array.fold_left
        (fun acc e ->
          match (acc, e) with
          | Some (i, _), Some (j, _) -> if j < i then e else acc
          | None, e -> e
          | acc, None -> acc)
        None t.errors
    in
    match first with None -> () | Some (_, exn) -> raise exn
  end

let map t f tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run_batch t ~n (fun i -> out.(i) <- Some (f tasks.(i)));
    Array.map
      (function Some v -> v | None -> assert false (* run_batch raised *))
      out
  end

let map_reduce t ~map:f ~fold ~init tasks =
  Array.fold_left fold init (map t f tasks)

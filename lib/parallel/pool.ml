(* Domain pool over stdlib primitives only (plus Unix for the
   per-worker wall clocks).

   Scheduling is chunked work-stealing over per-worker ranges.  A batch
   of [n] tasks is split into [participants] contiguous spans, one per
   participating worker; each span lives in a packed (lo, hi) atomic.
   The owner pops chunks of [chunk] tasks from the *front* of its own
   range; a worker whose range has drained steals chunks from the
   *back* of a victim's range, scanning victims in a fixed order.  Both
   claims are a single compare-and-set on the packed word, so every
   task index is claimed exactly once and — because lo only ever grows
   and hi only ever shrinks within a batch — a stale CAS can never
   succeed.  In the common case the owner's CAS is uncontended: workers
   touch each other's cache lines only when they actually steal.

   Determinism is unaffected by stealing: a task's work is a function
   of its index (the caller's contract), each task writes its own
   result slot, and the caller folds results in index order.  Stealing
   only changes *which domain* runs an index, never what the index
   computes.

   Batches are published under [mutex]: the caller installs the batch
   closure, bumps [epoch] and signals exactly the participating
   workers on their own condition variables (workers a small batch
   does not need are never woken).  The final mutex handshake (worker
   decrements [active] under the lock, caller waits for it to reach
   zero) establishes the happens-before edge that makes the workers'
   plain writes into the result array — and into their stats records —
   visible to the caller.

   Per-worker scratch ([errors], [stats], the deque atomics) is
   allocated once at pool creation and reused for every batch; a batch
   allocates only its result array. *)

let[@inline] imin (a : int) b = if a <= b then a else b
let[@inline] imax (a : int) b = if a >= b then a else b

(* (lo, hi) ranges packed into one OCaml int: lo in the upper bits, hi
   in the lower 31.  Task counts are capped accordingly (far above any
   real batch). *)
let range_bits = 31
let range_mask = (1 lsl range_bits) - 1
let max_tasks = range_mask

let[@inline] pack ~lo ~hi = (lo lsl range_bits) lor hi
let[@inline] unpack_lo p = p lsr range_bits
let[@inline] unpack_hi p = p land range_mask

type worker_stats = {
  mutable st_tasks : int;
  mutable st_chunks : int;
  mutable st_steals : int;
  mutable st_batches : int;
  mutable st_minor_words : float;
  mutable st_busy : float;
}

type stats = {
  tasks : int;
  chunks : int;
  steals : int;
  batches : int;
  minor_words : float;
  busy_seconds : float;
}

type t = {
  size : int; (* workers including the calling domain *)
  mutex : Mutex.t;
  conds : Condition.t array; (* one per spawned worker: targeted wakeups *)
  finished : Condition.t; (* all participating workers drained the batch *)
  mutable batch : (int -> int -> unit) option; (* worker slot -> task index *)
  mutable n_tasks : int;
  mutable chunk : int; (* scheduling grain of the current batch *)
  mutable participants : int; (* worker slots 0 .. participants-1 are in the batch *)
  deques : int Atomic.t array; (* per-slot packed (lo, hi) ranges *)
  mutable active : int; (* spawned participants still in the batch *)
  mutable epoch : int;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  errors : (int * exn) option array; (* per-worker: lowest failing task *)
  stats : worker_stats array;
  (* Auto-tuned divisor behind the default scheduling grain
     [n / (size * chunk_divisor)].  Retuned after every default-grain
     batch from that batch's steal/chunk ratio: heavy stealing means
     the split was too coarse to balance (finer chunks), near-zero
     stealing means claim traffic is pure overhead (coarser chunks).
     Scheduling grain never affects results, so tuning is invisible in
     the output — only in the claim/steal counters. *)
  mutable chunk_divisor : int;
}

let min_chunk_divisor = 2
let max_chunk_divisor = 32

let default_jobs_cap = 8

let env_cap () =
  match Sys.getenv_opt "MPS_MAX_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some v when v >= 1 -> Some v
    | _ -> None)

let default_jobs ?max_jobs () =
  let cap =
    match max_jobs with
    | Some c when c >= 1 -> c
    | Some _ | None -> ( match env_cap () with Some c -> c | None -> default_jobs_cap)
  in
  max 1 (min cap (Domain.recommended_domain_count ()))

let jobs t = t.size

let fresh_stats () =
  {
    st_tasks = 0;
    st_chunks = 0;
    st_steals = 0;
    st_batches = 0;
    st_minor_words = 0.0;
    st_busy = 0.0;
  }

let stats t =
  Array.map
    (fun w ->
      {
        tasks = w.st_tasks;
        chunks = w.st_chunks;
        steals = w.st_steals;
        batches = w.st_batches;
        minor_words = w.st_minor_words;
        busy_seconds = w.st_busy;
      })
    t.stats

let reset_stats t =
  Array.iter
    (fun w ->
      w.st_tasks <- 0;
      w.st_chunks <- 0;
      w.st_steals <- 0;
      w.st_batches <- 0;
      w.st_minor_words <- 0.0;
      w.st_busy <- 0.0)
    t.stats

(* Run the tasks of [lo, hi) on worker [slot], recording the lowest
   failing index into the worker's error scratch. *)
let run_chunk t body ~slot ~lo ~hi =
  let st = t.stats.(slot) in
  st.st_chunks <- st.st_chunks + 1;
  st.st_tasks <- st.st_tasks + (hi - lo);
  for i = lo to hi - 1 do
    try body slot i
    with exn -> (
      match t.errors.(slot) with
      | Some (j, _) when j < i -> ()
      | _ -> t.errors.(slot) <- Some (i, exn))
  done

(* Pop one chunk from the front of [victim]'s range ([steal = false],
   owner path) or from the back ([steal = true], thief path).  Returns
   false when the range is empty. *)
let rec claim t body ~slot ~victim ~steal =
  let dq = t.deques.(victim) in
  let p = Atomic.get dq in
  let lo = unpack_lo p and hi = unpack_hi p in
  if lo >= hi then false
  else begin
    let c = imin t.chunk (hi - lo) in
    let p' = if steal then pack ~lo ~hi:(hi - c) else pack ~lo:(lo + c) ~hi in
    if Atomic.compare_and_set dq p p' then begin
      if steal then begin
        t.stats.(slot).st_steals <- t.stats.(slot).st_steals + 1;
        run_chunk t body ~slot ~lo:(hi - c) ~hi
      end
      else run_chunk t body ~slot ~lo ~hi:(lo + c);
      true
    end
    else claim t body ~slot ~victim ~steal (* lost the CAS; re-read the range *)
  end

(* Drain the batch from worker [slot]: own range first, then steal
   sweeps over the other participants in a fixed order.  Exits when a
   full sweep finds every range empty — at that point every task is
   claimed (claimed-but-running tasks finish on their claimant, which
   the caller's [active]/[finished] handshake waits out). *)
let run_share t ~slot =
  let body = Option.get t.batch in
  let st = t.stats.(slot) in
  let t0 = Unix.gettimeofday () in
  let w0 = Gc.minor_words () in
  st.st_batches <- st.st_batches + 1;
  while claim t body ~slot ~victim:slot ~steal:false do
    ()
  done;
  let parts = t.participants in
  if parts > 1 then begin
    let progress = ref true in
    while !progress do
      progress := false;
      for k = 1 to parts - 1 do
        let victim = (slot + k) mod parts in
        if claim t body ~slot ~victim ~steal:true then progress := true
      done
    done
  end;
  st.st_busy <- st.st_busy +. (Unix.gettimeofday () -. t0);
  st.st_minor_words <- st.st_minor_words +. (Gc.minor_words () -. w0)

let worker t slot =
  let rec loop seen =
    Mutex.lock t.mutex;
    while (not t.stopping) && t.epoch = seen do
      Condition.wait t.conds.(slot) t.mutex
    done;
    if t.stopping then Mutex.unlock t.mutex
    else begin
      let epoch = t.epoch in
      (* only participants were signalled, but guard anyway: a
         non-participant that wakes up just records the epoch *)
      let participating = slot < t.participants - 1 in
      Mutex.unlock t.mutex;
      if participating then begin
        run_share t ~slot;
        Mutex.lock t.mutex;
        t.active <- t.active - 1;
        if t.active = 0 then Condition.signal t.finished;
        Mutex.unlock t.mutex
      end;
      loop epoch
    end
  in
  loop 0

let create ?jobs () =
  let size = match jobs with None -> default_jobs () | Some j -> j in
  if size < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      size;
      mutex = Mutex.create ();
      conds = Array.init (max 1 (size - 1)) (fun _ -> Condition.create ());
      finished = Condition.create ();
      batch = None;
      n_tasks = 0;
      chunk = 1;
      participants = 0;
      deques = Array.init size (fun _ -> Atomic.make 0);
      active = 0;
      epoch = 0;
      stopping = false;
      workers = [];
      errors = Array.make size None;
      stats = Array.init size (fun _ -> fresh_stats ());
      chunk_divisor = 8;
    }
  in
  if size > 1 then
    t.workers <-
      List.init (size - 1) (fun slot -> Domain.spawn (fun () -> worker t slot));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Array.iter Condition.broadcast t.conds;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Run [body slot 0 .. body slot (n-1)] across the pool and re-raise
   the failure of the lowest failing task index, if any.  [chunk] is
   the scheduling grain: tasks are claimed (and stolen) [chunk] at a
   time. *)
let steal_chunk_totals t =
  Array.fold_left (fun (s, c) w -> (s + w.st_steals, c + w.st_chunks)) (0, 0) t.stats

(* One retuning step from the finished batch's steal ratio.  The
   thresholds bracket a wide dead band so the divisor settles instead
   of oscillating; doubling/halving converges in a few batches from
   either extreme. *)
let retune t ~steals ~chunks =
  if chunks > 0 then begin
    let ratio = float_of_int steals /. float_of_int chunks in
    if ratio > 0.25 then
      t.chunk_divisor <- imin max_chunk_divisor (t.chunk_divisor * 2)
    else if ratio < 0.05 then
      t.chunk_divisor <- imax min_chunk_divisor (t.chunk_divisor / 2)
  end

let chunk_divisor t = t.chunk_divisor

let run_batch t ?chunk ~n body =
  if t.stopping then invalid_arg "Pool: used after shutdown";
  if n > max_tasks then invalid_arg "Pool: batch too large";
  let auto = chunk = None in
  let chunk =
    match chunk with
    | Some c when c >= 1 -> c
    | Some _ -> invalid_arg "Pool: chunk must be >= 1"
    | None -> imax 1 (n / (t.size * t.chunk_divisor))
  in
  if n <= 0 then ()
  else if t.size = 1 then begin
    (* sequential fast path: in order, exceptions propagate directly
       (the first to raise is necessarily the lowest index) *)
    let st = t.stats.(0) in
    st.st_tasks <- st.st_tasks + n;
    st.st_chunks <- st.st_chunks + 1;
    st.st_batches <- st.st_batches + 1;
    let t0 = Unix.gettimeofday () in
    let w0 = Gc.minor_words () in
    for i = 0 to n - 1 do
      body 0 i
    done;
    st.st_busy <- st.st_busy +. (Unix.gettimeofday () -. t0);
    st.st_minor_words <- st.st_minor_words +. (Gc.minor_words () -. w0)
  end
  else begin
    Array.fill t.errors 0 t.size None;
    let steals0, chunks0 = if auto then steal_chunk_totals t else (0, 0) in
    (* Never wake more workers than there are chunks to run.  The
       caller always participates and takes the last slot, so slots
       0 .. parts-2 belong to spawned workers. *)
    let parts = imin t.size (imax 1 ((n + chunk - 1) / chunk)) in
    (* even contiguous split of [0, n) across the participants *)
    for p = 0 to parts - 1 do
      Atomic.set t.deques.(p) (pack ~lo:(p * n / parts) ~hi:((p + 1) * n / parts))
    done;
    Mutex.lock t.mutex;
    t.batch <- Some body;
    t.n_tasks <- n;
    t.chunk <- chunk;
    t.participants <- parts;
    t.active <- parts - 1;
    t.epoch <- t.epoch + 1;
    for w = 0 to parts - 2 do
      Condition.signal t.conds.(w)
    done;
    Mutex.unlock t.mutex;
    run_share t ~slot:(parts - 1);
    Mutex.lock t.mutex;
    while t.active > 0 do
      Condition.wait t.finished t.mutex
    done;
    t.batch <- None;
    Mutex.unlock t.mutex;
    (* the finished handshake above makes the workers' stats writes
       visible, so the batch's steal/chunk delta is exact *)
    (if auto && parts > 1 then begin
       let steals1, chunks1 = steal_chunk_totals t in
       retune t ~steals:(steals1 - steals0) ~chunks:(chunks1 - chunks0)
     end);
    let first =
      Array.fold_left
        (fun acc e ->
          match (acc, e) with
          | Some (i, _), Some (j, _) -> if j < i then e else acc
          | None, e -> e
          | acc, None -> acc)
        None t.errors
    in
    match first with None -> () | Some (_, exn) -> raise exn
  end

let map_chunked t ?chunk f tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run_batch t ?chunk ~n (fun worker i -> out.(i) <- Some (f ~worker tasks.(i)));
    Array.map
      (function Some v -> v | None -> assert false (* run_batch raised *))
      out
  end

let map t f tasks = map_chunked t (fun ~worker:_ x -> f x) tasks

let map_reduce t ~map:f ~fold ~init tasks =
  Array.fold_left fold init (map t f tasks)

open Mps_geometry
open Mps_netlist

type weights = {
  wirelength : float;
  area : float;
  overlap : float;
  out_of_bounds : float;
  symmetry : float;
}

let default_weights =
  { wirelength = 1.0; area = 0.05; overlap = 10.0; out_of_bounds = 10.0; symmetry = 0.5 }

type breakdown = {
  hpwl : float;
  bbox_area : int;
  overlap_area : int;
  oob_area : int;
  symmetry_misalign : float;
  total : float;
}

(* Misalignment about the group set's common vertical axis.  The axis is
   fitted (mean of per-group ideal axes) rather than fixed, so the
   penalty is translation-invariant. *)
let symmetry_penalty circuit rects =
  match circuit.Circuit.symmetry with
  | [] -> 0.0
  | groups ->
    let center i = fst (Rect.center rects.(i)) in
    let group_axis = function
      | Symmetry.Pair { left; right } -> (center left +. center right) /. 2.0
      | Symmetry.Self i -> center i
    in
    let axes = List.map group_axis groups in
    let axis = List.fold_left ( +. ) 0.0 axes /. float_of_int (List.length axes) in
    let group_error = function
      | Symmetry.Pair { left; right } ->
        let mirror = abs_float (center left +. center right -. (2.0 *. axis)) in
        let vertical = abs_float (float_of_int (rects.(left).Rect.y - rects.(right).Rect.y)) in
        mirror +. vertical
      | Symmetry.Self i -> abs_float (center i -. axis)
    in
    List.fold_left (fun acc g -> acc +. group_error g) 0.0 groups

let total_overlap_area rects =
  let n = Array.length rects in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      acc := !acc + Rect.overlap_area rects.(i) rects.(j)
    done
  done;
  !acc

let total_oob_area ~die_w ~die_h rects =
  let die = Rect.make ~x:0 ~y:0 ~w:die_w ~h:die_h in
  Array.fold_left (fun acc r -> acc + (Rect.area r - Rect.overlap_area r die)) 0 rects

let evaluate ?(weights = default_weights) circuit ~die_w ~die_h rects =
  if Array.length rects <> Circuit.n_blocks circuit then
    invalid_arg "Cost.evaluate: one rectangle per block required";
  let hpwl = Wirelength.total_hpwl circuit ~rects ~die_w ~die_h in
  (* direct fold over the array: no [Array.to_list] and no intermediate
     rects on what is the single hottest full-evaluation entry point *)
  let bbox_area =
    let n = Array.length rects in
    if n = 0 then 0
    else begin
      let r0 = rects.(0) in
      let min_x = ref r0.Rect.x and min_y = ref r0.Rect.y in
      let max_x = ref (Rect.right r0) and max_y = ref (Rect.top r0) in
      for i = 1 to n - 1 do
        let r = rects.(i) in
        if r.Rect.x < !min_x then min_x := r.Rect.x;
        if r.Rect.y < !min_y then min_y := r.Rect.y;
        let xr = Rect.right r and yt = Rect.top r in
        if xr > !max_x then max_x := xr;
        if yt > !max_y then max_y := yt
      done;
      (!max_x - !min_x) * (!max_y - !min_y)
    end
  in
  let overlap_area = total_overlap_area rects in
  let oob_area = total_oob_area ~die_w ~die_h rects in
  let symmetry_misalign = symmetry_penalty circuit rects in
  let total =
    (weights.wirelength *. hpwl)
    +. (weights.area *. float_of_int bbox_area)
    +. (weights.overlap *. float_of_int overlap_area)
    +. (weights.out_of_bounds *. float_of_int oob_area)
    +. (weights.symmetry *. symmetry_misalign)
  in
  { hpwl; bbox_area; overlap_area; oob_area; symmetry_misalign; total }

let total ?weights circuit ~die_w ~die_h rects =
  (evaluate ?weights circuit ~die_w ~die_h rects).total

let is_legal ~die_w ~die_h rects =
  Rect.any_overlap rects = None
  && Array.for_all (fun r -> Rect.inside r ~die_w ~die_h) rects

(** Incremental (delta) evaluation of the placement cost function.

    [Cost.evaluate] recomputes every term from scratch: O(n^2) pairwise
    overlap, HPWL over every net, plus a fresh [Rect.t array] per
    evaluation.  The nested annealing loops of MPS generation (Placement
    Explorer + BDIO, paper §3) evaluate millions of single-block
    perturbations, so this module maintains the same cost as mutable
    cached state repaired in O(n + incident nets) per changed block:

    - a per-net cached HPWL with a block → incident-net index,
    - a per-block overlap row sum ([sum_j overlap (i, j)]),
    - a per-block out-of-bounds contribution,
    - the die bounding box (grown O(1), lazily rescanned on shrink),
    - the symmetry penalty (O(groups), recomputed lazily when dirty).

    Geometry changes are transactional: [move_block] / [swap_blocks] /
    [resize_block] stage changes that an annealer either [commit]s
    (accept) or [undo]s (reject).  All integer terms are exact under any
    apply/undo sequence; the float HPWL total accumulates one rounding
    error per delta, so [commit] automatically resyncs from scratch
    every [resync_every] committed operations, keeping the drift far
    below any temperature an annealer cares about (property-tested
    against {!Cost.evaluate} to 1e-6). *)

open Mps_geometry
open Mps_netlist

type t
(** Mutable evaluator state.  Not thread-safe; one per annealing run. *)

val create :
  ?weights:Cost.weights ->
  ?resync_every:int ->
  Circuit.t ->
  die_w:int ->
  die_h:int ->
  Rect.t array ->
  t
(** Build the evaluator from an initial floorplan (copied, one rect per
    block).  [resync_every] (default 1024) bounds float drift: a full
    recompute runs after that many committed geometry changes.
    @raise Invalid_argument on a block-count mismatch or
    [resync_every < 1]. *)

val n_blocks : t -> int

val die : t -> int * int
(** [(die_w, die_h)]. *)

val block_x : t -> int -> int
val block_y : t -> int -> int
val block_w : t -> int -> int
val block_h : t -> int -> int

val rects : t -> Rect.t array
(** Fresh snapshot of the current floorplan. *)

val total : t -> float
(** Current weighted total, identical (within float drift, see
    [resync_every]) to [Cost.total] of {!rects}. *)

val breakdown : t -> Cost.breakdown
(** Itemized view of the cached terms. *)

val move_block : t -> int -> x:int -> y:int -> unit
(** Stage a position change for one block (size kept).  The new position
    is used as given — out-of-die positions are legal states and simply
    pay the penalty, exactly as with the full evaluator.
    @raise Invalid_argument on a bad block index. *)

val swap_blocks : t -> int -> int -> unit
(** Stage a position exchange of two blocks, each clamped into the die
    for its own dimensions (the Placement Explorer's swap move).  A
    self-swap is a no-op. *)

val resize_block : t -> int -> w:int -> h:int -> unit
(** Stage a dimension change for one block (position kept) — the BDIO's
    axis-redraw move.  @raise Invalid_argument on non-positive sizes. *)

val begin_batch : t -> unit
(** Enter batch mode: subsequent staged changes write geometry only
    (no per-change cache repair).  For a move that touches many blocks
    at once — the BDIO redraws ~30% of all axes per move — per-block
    O(n) repair costs more than one from-scratch pass, so [end_batch]
    rebuilds every cache in a single allocation-free sweep instead.
    @raise Invalid_argument when a batch is already open. *)

val end_batch : t -> unit
(** Close the batch and rebuild all caches.  The staged changes remain
    one undoable group.  @raise Invalid_argument when no batch is
    open. *)

val pending : t -> int
(** Number of staged geometry changes awaiting [commit] / [undo]. *)

val commit : t -> unit
(** Accept all staged changes.  Triggers the periodic full resync. *)

val undo : t -> unit
(** Revert all staged changes (LIFO), restoring every cached term. *)

val resync : t -> unit
(** Recompute every cache from the current geometry from scratch: the
    drift bound, and the reference the property tests compare against. *)

val reset : t -> Rect.t array -> unit
(** [reset t rects] rebinds the engine to a new floorplan of the same
    circuit/die/weights, discarding any staged changes and open batch.
    After [reset] the state is bit-identical to [create] on the same
    inputs, but nothing is allocated: the compiled pin and incidence
    arrays depend only on the circuit and die, so a per-worker arena
    can reuse one engine across thousands of candidate evaluations
    instead of paying [create]'s allocation each time — the minor-heap
    churn that stalls every domain on OCaml 5 (DESIGN.md §9).
    @raise Invalid_argument on a block-count mismatch. *)

open Mps_geometry
open Mps_netlist

(* The evaluator keeps the floorplan as four parallel int arrays (no
   Rect.t boxing on the hot path) plus one cached aggregate per cost
   term.  A single-block geometry change is repaired in O(n + deg)
   instead of the O(n^2 + nets) full evaluation:

   - overlap: [row.(i)] caches sum_j overlap(i, j).  Changing block i
     walks the other blocks once, updating each [row.(j)] by the pair
     delta and rebuilding [row.(i)]; the total moves by
     [new_row - old_row].
   - wirelength: [net_hpwl] caches each net's HPWL; only the nets
     incident to the changed block ([incident]) are re-measured.
   - out-of-bounds: [oob.(i)] caches each block's area outside the die.
   - bounding box: grown in O(1); a change that might shrink it (the old
     rect touched an edge) marks it dirty for a lazy O(n) rescan.
   - symmetry: O(groups) and touched by any member block, so it is
     simply recomputed lazily when dirty.

   Integer terms are exact under any apply/undo sequence; the float HPWL
   total accumulates one rounding per delta, so [commit] resyncs from
   scratch every [resync_every] committed operations to bound drift. *)

(* [Stdlib.min]/[max] are polymorphic (a generic-compare call each
   without flambda); the kernels below run millions of times, so they
   use int-specialized copies that compile to straight comparisons. *)
let[@inline] imin (a : int) b = if a <= b then a else b
let[@inline] imax (a : int) b = if a >= b then a else b

type t = {
  circuit : Circuit.t;
  weights : Cost.weights;
  die_w : int;
  die_h : int;
  n : int;
  x : int array;
  y : int array;
  w : int array;
  h : int array;
  incident : int array array;  (* block -> ids of incident nets *)
  (* pins compiled to net-concatenated parallel arrays (net [nid] owns
     slots [net_off.(nid), net_off.(nid+1))): for a block pin, [pin_blk]
     holds the block and [pin_fx]/[pin_fy] the fractional offsets; for a
     pad, [pin_blk] is -1 and [pin_fx]/[pin_fy] hold the absolute die
     coordinates.  Re-measuring a net then allocates nothing. *)
  pin_blk : int array;
  pin_fx : float array;
  pin_fy : float array;
  net_off : int array;
  net_hpwl : float array;
  mutable hpwl : float;
  row : int array;  (* row.(i) = sum_j<>i overlap_area (i, j) *)
  mutable overlap : int;
  oob : int array;
  mutable oob_total : int;
  mutable bb_min_x : int;
  mutable bb_min_y : int;
  mutable bb_max_x : int;  (* right edge *)
  mutable bb_max_y : int;  (* top edge *)
  mutable bb_dirty : bool;
  mutable sym : float;
  mutable sym_dirty : bool;
  (* LIFO log of pre-change geometries for the uncommitted operations *)
  mutable u_blk : int array;
  mutable u_x : int array;
  mutable u_y : int array;
  mutable u_w : int array;
  mutable u_h : int array;
  mutable u_len : int;
  mutable committed : int;  (* committed entries since the last resync *)
  resync_every : int;
  mutable batching : bool;
      (* inside [begin_batch]/[end_batch]: geometry writes are staged
         without repair; [end_batch] rebuilds every cache in one pass *)
}

let n_blocks t = t.n
let die t = (t.die_w, t.die_h)
let block_x t i = t.x.(i)
let block_y t i = t.y.(i)
let block_w t i = t.w.(i)
let block_h t i = t.h.(i)
let pending t = t.u_len

let rects t =
  Array.init t.n (fun i -> Rect.make ~x:t.x.(i) ~y:t.y.(i) ~w:t.w.(i) ~h:t.h.(i))

(* --- per-term primitives (these mirror Cost/Wirelength exactly) --- *)

let[@inline] pair_overlap t i j =
  let dx = imin (t.x.(i) + t.w.(i)) (t.x.(j) + t.w.(j)) - imax t.x.(i) t.x.(j) in
  let dy = imin (t.y.(i) + t.h.(i)) (t.y.(j) + t.h.(j)) - imax t.y.(i) t.y.(j) in
  if dx > 0 && dy > 0 then dx * dy else 0

(* overlap of an explicit old geometry of block [i] against block [j] *)
let[@inline] pair_overlap_old t ~ox ~oy ~ow ~oh j =
  let dx = imin (ox + ow) (t.x.(j) + t.w.(j)) - imax ox t.x.(j) in
  let dy = imin (oy + oh) (t.y.(j) + t.h.(j)) - imax oy t.y.(j) in
  if dx > 0 && dy > 0 then dx * dy else 0

let oob_of t i =
  let dx = imin (t.x.(i) + t.w.(i)) t.die_w - imax t.x.(i) 0 in
  let dy = imin (t.y.(i) + t.h.(i)) t.die_h - imax t.y.(i) 0 in
  let inside = if dx > 0 && dy > 0 then dx * dy else 0 in
  (t.w.(i) * t.h.(i)) - inside

(* Exactly [Wirelength.net_hpwl] over the compiled pin arrays: same pin
   order, same arithmetic (pad positions were pre-multiplied by the die
   at [create], the block-pin expression is term-for-term identical), so
   resynced totals match [Cost.evaluate] bit for bit.  No closures, no
   tuples: the min/max refs stay unboxed and a pin costs four loads. *)
let net_hpwl_of t nid =
  let lo = t.net_off.(nid) and hi = t.net_off.(nid + 1) in
  if hi - lo < 2 then 0.0
  else begin
    let min_x = ref infinity and max_x = ref neg_infinity in
    let min_y = ref infinity and max_y = ref neg_infinity in
    for k = lo to hi - 1 do
      let b = Array.unsafe_get t.pin_blk k in
      let px =
        if b >= 0 then
          float_of_int (Array.unsafe_get t.x b)
          +. (Array.unsafe_get t.pin_fx k *. float_of_int (Array.unsafe_get t.w b))
        else Array.unsafe_get t.pin_fx k
      in
      let py =
        if b >= 0 then
          float_of_int (Array.unsafe_get t.y b)
          +. (Array.unsafe_get t.pin_fy k *. float_of_int (Array.unsafe_get t.h b))
        else Array.unsafe_get t.pin_fy k
      in
      if px < !min_x then min_x := px;
      if px > !max_x then max_x := px;
      if py < !min_y then min_y := py;
      if py > !max_y then max_y := py
    done;
    !max_x -. !min_x +. (!max_y -. !min_y)
  end

let recompute_bb t =
  if t.n > 0 then begin
    t.bb_min_x <- t.x.(0);
    t.bb_min_y <- t.y.(0);
    t.bb_max_x <- t.x.(0) + t.w.(0);
    t.bb_max_y <- t.y.(0) + t.h.(0);
    for i = 1 to t.n - 1 do
      if t.x.(i) < t.bb_min_x then t.bb_min_x <- t.x.(i);
      if t.y.(i) < t.bb_min_y then t.bb_min_y <- t.y.(i);
      if t.x.(i) + t.w.(i) > t.bb_max_x then t.bb_max_x <- t.x.(i) + t.w.(i);
      if t.y.(i) + t.h.(i) > t.bb_max_y then t.bb_max_y <- t.y.(i) + t.h.(i)
    done
  end;
  t.bb_dirty <- false

let bbox_area t =
  if t.n = 0 then 0
  else begin
    if t.bb_dirty then recompute_bb t;
    (t.bb_max_x - t.bb_min_x) * (t.bb_max_y - t.bb_min_y)
  end

let recompute_sym t =
  (t.sym <-
     (match t.circuit.Circuit.symmetry with
     | [] -> 0.0
     | groups ->
       let center i = float_of_int t.x.(i) +. (float_of_int t.w.(i) /. 2.0) in
       let group_axis = function
         | Symmetry.Pair { left; right } -> (center left +. center right) /. 2.0
         | Symmetry.Self i -> center i
       in
       let axes = List.map group_axis groups in
       let axis = List.fold_left ( +. ) 0.0 axes /. float_of_int (List.length axes) in
       let group_error = function
         | Symmetry.Pair { left; right } ->
           let mirror = abs_float (center left +. center right -. (2.0 *. axis)) in
           let vertical = abs_float (float_of_int (t.y.(left) - t.y.(right))) in
           mirror +. vertical
         | Symmetry.Self i -> abs_float (center i -. axis)
       in
       List.fold_left (fun acc g -> acc +. group_error g) 0.0 groups));
  t.sym_dirty <- false

let symmetry t =
  if t.sym_dirty then recompute_sym t;
  t.sym

(* [resync] is itself a hot path: it backs [end_batch] and the
   rebuild-flavoured [undo], which the BDIO hits twice per rejected
   move.  The pair loop hoists block [i]'s geometry out of the inner
   loop and accumulates its row in a register. *)
let resync t =
  let n = t.n in
  let x = t.x and y = t.y and w = t.w and h = t.h and row = t.row in
  Array.fill row 0 n 0;
  let overlap = ref 0 in
  for i = 0 to n - 1 do
    let xi = Array.unsafe_get x i and yi = Array.unsafe_get y i in
    let xi2 = xi + Array.unsafe_get w i and yi2 = yi + Array.unsafe_get h i in
    let ri = ref (Array.unsafe_get row i) in
    for j = i + 1 to n - 1 do
      let xj = Array.unsafe_get x j in
      let dx = imin xi2 (xj + Array.unsafe_get w j) - imax xi xj in
      if dx > 0 then begin
        let yj = Array.unsafe_get y j in
        let dy = imin yi2 (yj + Array.unsafe_get h j) - imax yi yj in
        if dy > 0 then begin
          let ov = dx * dy in
          ri := !ri + ov;
          Array.unsafe_set row j (Array.unsafe_get row j + ov);
          overlap := !overlap + ov
        end
      end
    done;
    Array.unsafe_set row i !ri
  done;
  t.overlap <- !overlap;
  let oob_total = ref 0 in
  for i = 0 to n - 1 do
    let v = oob_of t i in
    t.oob.(i) <- v;
    oob_total := !oob_total + v
  done;
  t.oob_total <- !oob_total;
  let hpwl = ref 0.0 in
  for nid = 0 to Array.length t.net_hpwl - 1 do
    let v = net_hpwl_of t nid in
    t.net_hpwl.(nid) <- v;
    hpwl := !hpwl +. v
  done;
  t.hpwl <- !hpwl;
  recompute_bb t;
  recompute_sym t;
  t.committed <- 0

(* [reset] makes an engine reusable across candidates: [create] pays
   O(n + pins) allocation for the compiled pin/incidence arrays, which
   depend only on (circuit, die, weights) — not on the floorplan — so
   an arena can rebind the same engine to a new rect set with zero
   allocation.  [resync] rebuilds every cache from scratch, so the
   resulting state is bit-identical to a fresh [create] on the same
   inputs (property-tested). *)
let reset t rects =
  if Array.length rects <> t.n then
    invalid_arg "Incremental.reset: one rectangle per block required";
  for i = 0 to t.n - 1 do
    let r = Array.unsafe_get rects i in
    t.x.(i) <- r.Rect.x;
    t.y.(i) <- r.Rect.y;
    t.w.(i) <- r.Rect.w;
    t.h.(i) <- r.Rect.h
  done;
  t.u_len <- 0;
  t.batching <- false;
  resync t

let create ?(weights = Cost.default_weights) ?(resync_every = 1024) circuit ~die_w ~die_h
    rects =
  let n = Circuit.n_blocks circuit in
  if Array.length rects <> n then
    invalid_arg "Incremental.create: one rectangle per block required";
  if resync_every < 1 then invalid_arg "Incremental.create: resync_every must be >= 1";
  let nets = circuit.Circuit.nets in
  let incident =
    let lists = Array.make n [] in
    Array.iteri
      (fun nid net ->
        List.iter (fun b -> lists.(b) <- nid :: lists.(b)) (Net.blocks net))
      nets;
    Array.map (fun l -> Array.of_list (List.rev l)) lists
  in
  let total_pins =
    Array.fold_left (fun acc net -> acc + List.length net.Net.pins) 0 nets
  in
  let net_off = Array.make (Array.length nets + 1) 0 in
  let pin_blk = Array.make (max 1 total_pins) (-1) in
  let pin_fx = Array.make (max 1 total_pins) 0.0 in
  let pin_fy = Array.make (max 1 total_pins) 0.0 in
  let slot = ref 0 in
  Array.iteri
    (fun nid net ->
      net_off.(nid) <- !slot;
      List.iter
        (fun pin ->
          (match pin with
          | Net.Block_pin { block; fx; fy } ->
            pin_blk.(!slot) <- block;
            pin_fx.(!slot) <- fx;
            pin_fy.(!slot) <- fy
          | Net.Pad { px; py } ->
            pin_blk.(!slot) <- -1;
            pin_fx.(!slot) <- px *. float_of_int die_w;
            pin_fy.(!slot) <- py *. float_of_int die_h);
          incr slot)
        net.Net.pins)
    nets;
  net_off.(Array.length nets) <- !slot;
  let cap = max 8 ((2 * n) + 4) in
  let t =
    {
      circuit;
      weights;
      die_w;
      die_h;
      n;
      x = Array.map (fun r -> r.Rect.x) rects;
      y = Array.map (fun r -> r.Rect.y) rects;
      w = Array.map (fun r -> r.Rect.w) rects;
      h = Array.map (fun r -> r.Rect.h) rects;
      incident;
      pin_blk;
      pin_fx;
      pin_fy;
      net_off;
      net_hpwl = Array.make (Circuit.n_nets circuit) 0.0;
      hpwl = 0.0;
      row = Array.make n 0;
      overlap = 0;
      oob = Array.make n 0;
      oob_total = 0;
      bb_min_x = 0;
      bb_min_y = 0;
      bb_max_x = 0;
      bb_max_y = 0;
      bb_dirty = true;
      sym = 0.0;
      sym_dirty = true;
      u_blk = Array.make cap 0;
      u_x = Array.make cap 0;
      u_y = Array.make cap 0;
      u_w = Array.make cap 0;
      u_h = Array.make cap 0;
      u_len = 0;
      committed = 0;
      resync_every;
      batching = false;
    }
  in
  resync t;
  t

(* --- the delta kernel --- *)

let push_undo t i =
  let cap = Array.length t.u_blk in
  if t.u_len = cap then begin
    let grow a = Array.append a (Array.make cap 0) in
    t.u_blk <- grow t.u_blk;
    t.u_x <- grow t.u_x;
    t.u_y <- grow t.u_y;
    t.u_w <- grow t.u_w;
    t.u_h <- grow t.u_h
  end;
  t.u_blk.(t.u_len) <- i;
  t.u_x.(t.u_len) <- t.x.(i);
  t.u_y.(t.u_len) <- t.y.(i);
  t.u_w.(t.u_len) <- t.w.(i);
  t.u_h.(t.u_len) <- t.h.(i);
  t.u_len <- t.u_len + 1

let set_geom t i ~x:nx ~y:ny ~w:nw ~h:nh =
  let ox = t.x.(i) and oy = t.y.(i) and ow = t.w.(i) and oh = t.h.(i) in
  if ox <> nx || oy <> ny || ow <> nw || oh <> nh then
    if t.batching then begin
      (* staged: [end_batch] rebuilds every cache in one pass *)
      t.x.(i) <- nx;
      t.y.(i) <- ny;
      t.w.(i) <- nw;
      t.h.(i) <- nh
    end
    else begin
    t.x.(i) <- nx;
    t.y.(i) <- ny;
    t.w.(i) <- nw;
    t.h.(i) <- nh;
    (* overlap rows *)
    let new_row = ref 0 in
    for j = 0 to t.n - 1 do
      if j <> i then begin
        let ov_old = pair_overlap_old t ~ox ~oy ~ow ~oh j in
        let ov_new = pair_overlap t i j in
        if ov_old <> ov_new then t.row.(j) <- t.row.(j) + ov_new - ov_old;
        new_row := !new_row + ov_new
      end
    done;
    t.overlap <- t.overlap + !new_row - t.row.(i);
    t.row.(i) <- !new_row;
    (* out-of-bounds *)
    let nb = oob_of t i in
    t.oob_total <- t.oob_total + nb - t.oob.(i);
    t.oob.(i) <- nb;
    (* incident nets *)
    let inc = t.incident.(i) in
    for p = 0 to Array.length inc - 1 do
      let nid = Array.unsafe_get inc p in
      let v = net_hpwl_of t nid in
      t.hpwl <- t.hpwl +. v -. t.net_hpwl.(nid);
      t.net_hpwl.(nid) <- v
    done;
    (* bounding box: grow is O(1); a potential shrink (the old rect sat
       on an edge of the box) defers to a lazy rescan *)
    if not t.bb_dirty then begin
      if ox = t.bb_min_x || oy = t.bb_min_y || ox + ow = t.bb_max_x || oy + oh = t.bb_max_y
      then t.bb_dirty <- true
      else begin
        if nx < t.bb_min_x then t.bb_min_x <- nx;
        if ny < t.bb_min_y then t.bb_min_y <- ny;
        if nx + nw > t.bb_max_x then t.bb_max_x <- nx + nw;
        if ny + nh > t.bb_max_y then t.bb_max_y <- ny + nh
      end
    end;
    if t.circuit.Circuit.symmetry <> [] then t.sym_dirty <- true
  end

let check_block t i name =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Incremental.%s: block %d out of [0, %d)" name i t.n)

let move_block t i ~x ~y =
  check_block t i "move_block";
  push_undo t i;
  set_geom t i ~x ~y ~w:t.w.(i) ~h:t.h.(i)

let resize_block t i ~w ~h =
  check_block t i "resize_block";
  if w <= 0 || h <= 0 then
    invalid_arg (Printf.sprintf "Incremental.resize_block: non-positive size %dx%d" w h);
  push_undo t i;
  set_geom t i ~x:t.x.(i) ~y:t.y.(i) ~w ~h

let clamp_x t i v = imax 0 (imin v (t.die_w - t.w.(i)))
let clamp_y t i v = imax 0 (imin v (t.die_h - t.h.(i)))

let swap_blocks t i j =
  check_block t i "swap_blocks";
  check_block t j "swap_blocks";
  if i <> j then begin
    let oxi = t.x.(i) and oyi = t.y.(i) in
    let nxi = clamp_x t i t.x.(j) and nyi = clamp_y t i t.y.(j) in
    let nxj = clamp_x t j oxi and nyj = clamp_y t j oyi in
    push_undo t i;
    set_geom t i ~x:nxi ~y:nyi ~w:t.w.(i) ~h:t.h.(i);
    push_undo t j;
    set_geom t j ~x:nxj ~y:nyj ~w:t.w.(j) ~h:t.h.(j)
  end

let begin_batch t =
  if t.batching then invalid_arg "Incremental.begin_batch: batch already open";
  t.batching <- true

let end_batch t =
  if not t.batching then invalid_arg "Incremental.end_batch: no batch open";
  t.batching <- false;
  resync t

let undo t =
  if t.batching then invalid_arg "Incremental.undo: close the open batch first";
  if 4 * t.u_len > t.n then begin
    (* Reverting a large staged group: raw geometry restore plus one
       from-scratch rebuild beats per-entry O(n) repair. *)
    while t.u_len > 0 do
      t.u_len <- t.u_len - 1;
      let k = t.u_len in
      let i = t.u_blk.(k) in
      t.x.(i) <- t.u_x.(k);
      t.y.(i) <- t.u_y.(k);
      t.w.(i) <- t.u_w.(k);
      t.h.(i) <- t.u_h.(k)
    done;
    resync t
  end
  else
    while t.u_len > 0 do
      t.u_len <- t.u_len - 1;
      let k = t.u_len in
      set_geom t t.u_blk.(k) ~x:t.u_x.(k) ~y:t.u_y.(k) ~w:t.u_w.(k) ~h:t.u_h.(k)
    done

let commit t =
  if t.batching then invalid_arg "Incremental.commit: close the open batch first";
  t.committed <- t.committed + t.u_len;
  t.u_len <- 0;
  if t.committed >= t.resync_every then resync t

let total t =
  t.weights.Cost.wirelength *. t.hpwl
  +. (t.weights.Cost.area *. float_of_int (bbox_area t))
  +. (t.weights.Cost.overlap *. float_of_int t.overlap)
  +. (t.weights.Cost.out_of_bounds *. float_of_int t.oob_total)
  +. (t.weights.Cost.symmetry *. symmetry t)

let breakdown t =
  {
    Cost.hpwl = t.hpwl;
    bbox_area = bbox_area t;
    overlap_area = t.overlap;
    oob_area = t.oob_total;
    symmetry_misalign = symmetry t;
    total = total t;
  }

open Mps_core

type op = Read | Write | Rename | Fsync_dir | Remove

type action =
  | Fail
  | Truncate of float
  | Corrupt of int
  | Vanish

type injection = {
  op : op;
  skip : int;
  action : action;
  seed : int;
}

type plan = injection list

let op_to_string = function
  | Read -> "read"
  | Write -> "write"
  | Rename -> "rename"
  | Fsync_dir -> "fsync-dir"
  | Remove -> "remove"

let action_to_string = function
  | Fail -> "fail"
  | Truncate f -> Printf.sprintf "truncate to %.0f%%" (100.0 *. f)
  | Corrupt n -> Printf.sprintf "flip %d bits" n
  | Vanish -> "vanish"

let describe plan =
  String.concat "\n"
    (List.map
       (fun inj ->
         Printf.sprintf "fault: %s #%d: %s (seed %d)" (op_to_string inj.op)
           (inj.skip + 1)
           (action_to_string inj.action)
           inj.seed)
       plan)

let flip_bits ~seed ~flips ?(from = 0) s =
  let len = String.length s in
  if len <= from then s
  else begin
    let rng = Mps_rng.Rng.create ~seed in
    let bytes = Bytes.of_string s in
    for _ = 1 to flips do
      let pos = from + Mps_rng.Rng.int rng (len - from) in
      let bit = Mps_rng.Rng.int rng 8 in
      Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor (1 lsl bit)))
    done;
    Bytes.to_string bytes
  end

let truncated fraction s =
  let keep = int_of_float (fraction *. float_of_int (String.length s)) in
  String.sub s 0 (max 0 (min keep (String.length s)))

let random_action rng =
  match Mps_rng.Rng.int rng 4 with
  | 0 -> Fail
  | 1 -> Truncate (Mps_rng.Rng.float rng 0.95)
  | 2 -> Corrupt (1 + Mps_rng.Rng.int rng 16)
  | _ -> Vanish

let random_injection rng ops =
  {
    op = Mps_rng.Rng.choose rng ops;
    skip = Mps_rng.Rng.int rng 3;
    action = random_action rng;
    seed = Mps_rng.Rng.int rng 1_000_000;
  }

let plan_of rng ops =
  List.init (1 + Mps_rng.Rng.int rng 3) (fun _ -> random_injection rng ops)

let random_plan rng = plan_of rng [| Read; Write; Rename; Fsync_dir; Remove |]
let random_save_plan rng = plan_of rng [| Write; Rename; Fsync_dir |]
let random_read_plan rng = plan_of rng [| Read |]

let io_of_plan ?(base = Persist.default_io) plan =
  let counters = Hashtbl.create 8 in
  let fired = ref 0 in
  let pending = ref plan in
  (* Which injection, if any, fires on this invocation of [op]?  Each
     injection is armed for exactly one occurrence and then spent. *)
  let firing op =
    let n = try Hashtbl.find counters op with Not_found -> 0 in
    Hashtbl.replace counters op (n + 1);
    let rec pick acc = function
      | [] -> None
      | inj :: rest when inj.op = op && inj.skip = n ->
        pending := List.rev_append acc rest;
        incr fired;
        Some inj
      | inj :: rest -> pick (inj :: acc) rest
    in
    pick [] !pending
  in
  let fail path = raise (Sys_error (path ^ ": injected fault")) in
  let io =
    {
      Persist.read_file =
        (fun path ->
          match firing Read with
          | None -> base.Persist.read_file path
          | Some { action = Fail; _ } | Some { action = Vanish; _ } -> fail path
          | Some { action = Truncate f; _ } -> truncated f (base.Persist.read_file path)
          | Some { action = Corrupt n; seed; _ } ->
            flip_bits ~seed ~flips:n (base.Persist.read_file path));
      write_file =
        (fun path content ->
          match firing Write with
          | None -> base.Persist.write_file path content
          | Some { action = Fail; _ } | Some { action = Vanish; _ } -> fail path
          | Some { action = Truncate f; _ } ->
            (* crash mid-write: the prefix lands, then the failure *)
            base.Persist.write_file path (truncated f content);
            fail path
          | Some { action = Corrupt n; seed; _ } ->
            (* crash with media corruption, before any rename publishes it *)
            base.Persist.write_file path (flip_bits ~seed ~flips:n content);
            fail path);
      rename =
        (fun src dst ->
          match firing Rename with
          | None -> base.Persist.rename src dst
          | Some { action = Vanish; _ } -> () (* rename silently lost *)
          | Some _ -> fail dst);
      fsync_dir =
        (fun dir ->
          match firing Fsync_dir with
          | None -> base.Persist.fsync_dir dir
          | Some { action = Vanish; _ } -> () (* fsync silently skipped *)
          | Some _ -> fail dir);
      remove =
        (fun path ->
          match firing Remove with
          | None -> base.Persist.remove path
          | Some _ -> fail path);
    }
  in
  (io, fun () -> !fired)

let with_plan ?base plan f =
  let io, fired = io_of_plan ?base plan in
  let result =
    Persist.with_io io (fun () -> match f () with v -> Ok v | exception e -> Error e)
  in
  (result, fired ())

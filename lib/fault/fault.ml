open Mps_core

type op =
  | Read
  | Write
  | Rename
  | Fsync_dir
  | Remove
  | Map
  | Net_recv
  | Net_send
  | Net_accept
  | Worker_crash
  | Worker_stall
  | Shm_publish
  | Shm_heartbeat

type action =
  | Fail
  | Truncate of float
  | Corrupt of int
  | Vanish
  | Stall of float

type injection = {
  op : op;
  skip : int;
  action : action;
  seed : int;
}

type plan = injection list

let op_to_string = function
  | Read -> "read"
  | Write -> "write"
  | Rename -> "rename"
  | Fsync_dir -> "fsync-dir"
  | Remove -> "remove"
  | Map -> "map"
  | Net_recv -> "net-recv"
  | Net_send -> "net-send"
  | Net_accept -> "net-accept"
  | Worker_crash -> "worker-crash"
  | Worker_stall -> "worker-stall"
  | Shm_publish -> "shm-publish"
  | Shm_heartbeat -> "shm-heartbeat"

let action_to_string = function
  | Fail -> "fail"
  | Truncate f -> Printf.sprintf "truncate to %.0f%%" (100.0 *. f)
  | Corrupt n -> Printf.sprintf "flip %d bits" n
  | Vanish -> "vanish"
  | Stall s -> Printf.sprintf "stall %.0f ms" (1000.0 *. s)

let describe plan =
  String.concat "\n"
    (List.map
       (fun inj ->
         Printf.sprintf "fault: %s #%d: %s (seed %d)" (op_to_string inj.op)
           (inj.skip + 1)
           (action_to_string inj.action)
           inj.seed)
       plan)

let flip_bits ~seed ~flips ?(from = 0) s =
  let len = String.length s in
  if len <= from then s
  else begin
    let rng = Mps_rng.Rng.create ~seed in
    let bytes = Bytes.of_string s in
    for _ = 1 to flips do
      let pos = from + Mps_rng.Rng.int rng (len - from) in
      let bit = Mps_rng.Rng.int rng 8 in
      Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor (1 lsl bit)))
    done;
    Bytes.to_string bytes
  end

let truncated fraction s =
  let keep = int_of_float (fraction *. float_of_int (String.length s)) in
  String.sub s 0 (max 0 (min keep (String.length s)))

(* Seeded bit flips over a word view — the mmap-path counterpart of
   {!flip_bits}.  Flips land on bits 0..62 of each word (the 63 bits a
   stored word round-trips through the int bigarray kind), which is
   exactly the damage an in-place file flip produces as seen through
   an active mapping. *)
let flip_words ~seed ~flips (w : Mps_core.Persist.words) =
  let n = Bigarray.Array1.dim w in
  if n > 0 then begin
    let rng = Mps_rng.Rng.create ~seed in
    for _ = 1 to flips do
      let pos = Mps_rng.Rng.int rng n in
      let bit = Mps_rng.Rng.int rng 63 in
      w.{pos} <- w.{pos} lxor (1 lsl bit)
    done
  end

let random_action rng =
  match Mps_rng.Rng.int rng 4 with
  | 0 -> Fail
  | 1 -> Truncate (Mps_rng.Rng.float rng 0.95)
  | 2 -> Corrupt (1 + Mps_rng.Rng.int rng 16)
  | _ -> Vanish

(* Socket faults: no media corruption in the model (frames are either
   delivered intact, delivered short, delayed, or the peer is gone) —
   so no [Corrupt] here, and a [Stall] long enough to blow a typical
   test deadline instead. *)
let random_net_action rng =
  match Mps_rng.Rng.int rng 4 with
  | 0 -> Fail
  | 1 -> Truncate (Mps_rng.Rng.float rng 0.95)
  | 2 -> Vanish
  | _ -> Stall (0.02 +. Mps_rng.Rng.float rng 0.1)

let random_injection ?(net = false) rng ops =
  {
    op = Mps_rng.Rng.choose rng ops;
    skip = Mps_rng.Rng.int rng 3;
    action = (if net then random_net_action rng else random_action rng);
    seed = Mps_rng.Rng.int rng 1_000_000;
  }

let plan_of ?net rng ops =
  List.init (1 + Mps_rng.Rng.int rng 3) (fun _ -> random_injection ?net rng ops)

let random_plan rng = plan_of rng [| Read; Write; Rename; Fsync_dir; Remove |]
let random_save_plan rng = plan_of rng [| Write; Rename; Fsync_dir |]
let random_read_plan rng = plan_of rng [| Read |]
let random_net_plan rng = plan_of ~net:true rng [| Net_recv; Net_send; Net_accept |]

let io_of_plan ?(base = Persist.default_io) plan =
  let counters = Hashtbl.create 8 in
  let fired = ref 0 in
  let pending = ref plan in
  (* Which injection, if any, fires on this invocation of [op]?  Each
     injection is armed for exactly one occurrence and then spent. *)
  let firing op =
    let n = try Hashtbl.find counters op with Not_found -> 0 in
    Hashtbl.replace counters op (n + 1);
    let rec pick acc = function
      | [] -> None
      | inj :: rest when inj.op = op && inj.skip = n ->
        pending := List.rev_append acc rest;
        incr fired;
        Some inj
      | inj :: rest -> pick (inj :: acc) rest
    in
    pick [] !pending
  in
  let fail path = raise (Sys_error (path ^ ": injected fault")) in
  let io =
    {
      Persist.read_file =
        (fun path ->
          match firing Read with
          | None -> base.Persist.read_file path
          | Some { action = Fail; _ } | Some { action = Vanish; _ } -> fail path
          | Some { action = Truncate f; _ } -> truncated f (base.Persist.read_file path)
          | Some { action = Stall s; _ } ->
            Thread.delay s;
            base.Persist.read_file path
          | Some { action = Corrupt n; seed; _ } ->
            flip_bits ~seed ~flips:n (base.Persist.read_file path));
      write_file =
        (fun path content ->
          match firing Write with
          | None -> base.Persist.write_file path content
          | Some { action = Fail; _ } | Some { action = Vanish; _ } -> fail path
          | Some { action = Truncate f; _ } ->
            (* crash mid-write: the prefix lands, then the failure *)
            base.Persist.write_file path (truncated f content);
            fail path
          | Some { action = Stall s; _ } ->
            Thread.delay s;
            base.Persist.write_file path content
          | Some { action = Corrupt n; seed; _ } ->
            (* crash with media corruption, before any rename publishes it *)
            base.Persist.write_file path (flip_bits ~seed ~flips:n content);
            fail path);
      rename =
        (fun src dst ->
          match firing Rename with
          | None -> base.Persist.rename src dst
          | Some { action = Vanish; _ } -> () (* rename silently lost *)
          | Some { action = Stall s; _ } ->
            Thread.delay s;
            base.Persist.rename src dst
          | Some _ -> fail dst);
      fsync_dir =
        (fun dir ->
          match firing Fsync_dir with
          | None -> base.Persist.fsync_dir dir
          | Some { action = Vanish; _ } -> () (* fsync silently skipped *)
          | Some { action = Stall s; _ } ->
            Thread.delay s;
            base.Persist.fsync_dir dir
          | Some _ -> fail dir);
      remove =
        (fun path ->
          match firing Remove with
          | None -> base.Persist.remove path
          | Some { action = Stall s; _ } ->
            Thread.delay s;
            base.Persist.remove path
          | Some _ -> fail path);
      map_words =
        (fun path ->
          match firing Map with
          | None -> base.Persist.map_words path
          | Some { action = Fail; _ } | Some { action = Vanish; _ } -> fail path
          | Some { action = Stall s; _ } ->
            Thread.delay s;
            base.Persist.map_words path
          | Some { action = Truncate f; _ } ->
            (* a short mapping: the file lost its tail (truncated
               section table and all) *)
            let w, bytes = base.Persist.map_words path in
            let keep_bytes =
              max 0 (min (int_of_float (f *. float_of_int bytes)) bytes)
            in
            (Bigarray.Array1.sub w 0 (keep_bytes / 8), keep_bytes)
          | Some { action = Corrupt n; seed; _ } ->
            (* media corruption under the mapping: hand out a private
               flipped copy, so the damage is live in the very words
               the engine will read — the on-disk file is untouched *)
            let w, bytes = base.Persist.map_words path in
            let copy =
              Bigarray.Array1.create Bigarray.int Bigarray.c_layout
                (Bigarray.Array1.dim w)
            in
            Bigarray.Array1.blit w copy;
            flip_words ~seed ~flips:n copy;
            (copy, bytes));
    }
  in
  (io, fun () -> !fired)

module T = Mps_serve.Transport

(* Same firing bookkeeping as [io_of_plan] but behind a mutex: a
   transport is shared by the accept loop and every connection
   handler. *)
let make_firing plan =
  let mutex = Mutex.create () in
  let counters = Hashtbl.create 8 in
  let fired = ref 0 in
  let pending = ref plan in
  let firing op =
    Mutex.lock mutex;
    let n = try Hashtbl.find counters op with Not_found -> 0 in
    Hashtbl.replace counters op (n + 1);
    let rec pick acc = function
      | [] -> None
      | inj :: rest when inj.op = op && inj.skip = n ->
        pending := List.rev_append acc rest;
        incr fired;
        Some inj
      | inj :: rest -> pick (inj :: acc) rest
    in
    let hit = pick [] !pending in
    Mutex.unlock mutex;
    hit
  in
  let count () =
    Mutex.lock mutex;
    let n = !fired in
    Mutex.unlock mutex;
    n
  in
  (firing, count)

let transport_of_plan ?(base = T.default) plan =
  let firing, fired = make_firing plan in
  let short_len f len = min len (max 1 (int_of_float (f *. float_of_int len))) in
  let transport =
    {
      T.recv =
        (fun fd buf off len ->
          match firing Net_recv with
          | None -> base.T.recv fd buf off len
          | Some { action = Fail | Corrupt _; _ } ->
            (* no wire corruption in the model: a damaged segment is a
               dead connection, not flipped bits *)
            raise (Unix.Unix_error (Unix.ECONNRESET, "recv", "injected fault"))
          | Some { action = Vanish; _ } -> 0 (* peer gone: EOF *)
          | Some { action = Truncate f; _ } -> base.T.recv fd buf off (short_len f len)
          | Some { action = Stall s; _ } ->
            Thread.delay s;
            base.T.recv fd buf off len);
      send =
        (fun fd buf off len ->
          match firing Net_send with
          | None -> base.T.send fd buf off len
          | Some { action = Fail | Corrupt _; _ } ->
            raise (Unix.Unix_error (Unix.EPIPE, "send", "injected fault"))
          | Some { action = Vanish; _ } -> len (* bytes silently lost *)
          | Some { action = Truncate f; _ } -> base.T.send fd buf off (short_len f len)
          | Some { action = Stall s; _ } ->
            Thread.delay s;
            base.T.send fd buf off len);
      accept =
        (fun fd ->
          match firing Net_accept with
          | None -> base.T.accept fd
          | Some { action = Vanish; _ } ->
            (* the connection was there and is gone: accept it, drop it *)
            let conn, _ = base.T.accept fd in
            (try Unix.close conn with Unix.Unix_error _ -> ());
            raise (Unix.Unix_error (Unix.ECONNABORTED, "accept", "injected fault"))
          | Some { action = Stall s; _ } ->
            Thread.delay s;
            base.T.accept fd
          | Some _ ->
            raise (Unix.Unix_error (Unix.EMFILE, "accept", "injected fault")));
    }
  in
  (transport, fired)

(* Worker-level faults ride the supervisor's per-request hook.  A
   [Worker_stall] sleeps in the serving worker (exercising deadlines,
   hedging and health probes around a wedged domain); a [Worker_crash]
   raises {!Mps_serve.Supervisor.Worker_killed}, which the supervisor
   turns into a typed [Err_worker_lost] reply plus a supervised
   restart.  The [~worker] slot is deliberately ignored for firing —
   the plan speaks in occurrences ("the 3rd request served"), not
   slots, so a scenario stays deterministic under any dispatch. *)
let worker_hook_of_plan plan =
  let firing, fired = make_firing plan in
  let hook ~worker:_ =
    (match firing Worker_stall with
    | Some { action = Stall s; _ } -> Thread.delay s
    | Some _ -> Thread.delay 0.05
    | None -> ());
    match firing Worker_crash with
    | Some _ -> raise Mps_serve.Supervisor.Worker_killed
    | None -> ()
  in
  (hook, fired)

(* Ring-level faults for the shm fast path (DESIGN.md §13), riding the
   session's publish/heartbeat hooks.  A [Shm_publish] injection
   damages exactly one published frame — [Corrupt] flips stored bits,
   [Stall] delays the tail publication, and anything else tears the
   frame (a CRC that can never verify, the signature of a producer
   dead mid-write).  A [Shm_heartbeat] injection simulates a wedged
   peer: once fired, heartbeat stamps are suppressed for the [Stall]
   duration (or forever, for any other action) while ring traffic
   machinery otherwise keeps running — which is precisely what the
   stale-heartbeat reaper must catch. *)
let shm_hooks_of_plan plan =
  let firing, fired = make_firing plan in
  let mutex = Mutex.create () in
  let suppress_until = ref 0.0 in
  let hooks =
    {
      Mps_serve.Shm.on_publish =
        (fun () ->
          match firing Shm_publish with
          | None -> None
          | Some { action = Corrupt n; seed; _ } ->
            Some (Mps_serve.Shm.Publish_corrupt (seed, n))
          | Some { action = Stall s; _ } -> Some (Mps_serve.Shm.Publish_stall s)
          | Some { action = Fail | Vanish | Truncate _; _ } ->
            Some Mps_serve.Shm.Publish_torn);
      on_heartbeat =
        (fun () ->
          Mutex.lock mutex;
          let now = Unix.gettimeofday () in
          let suppress =
            if now < !suppress_until then true
            else
              match firing Shm_heartbeat with
              | None -> false
              | Some { action = Stall s; _ } ->
                suppress_until := now +. s;
                true
              | Some _ ->
                suppress_until := infinity;
                true
          in
          Mutex.unlock mutex;
          suppress);
    }
  in
  (hooks, fired)

let random_worker_injection rng =
  let crash = Mps_rng.Rng.int rng 2 = 0 in
  {
    op = (if crash then Worker_crash else Worker_stall);
    skip = Mps_rng.Rng.int rng 4;
    action = (if crash then Fail else Stall (0.02 +. Mps_rng.Rng.float rng 0.1));
    seed = Mps_rng.Rng.int rng 1_000_000;
  }

let random_worker_plan rng =
  List.init (1 + Mps_rng.Rng.int rng 2) (fun _ -> random_worker_injection rng)

let with_plan ?base plan f =
  let io, fired = io_of_plan ?base plan in
  let result =
    Persist.with_io io (fun () -> match f () with v -> Ok v | exception e -> Error e)
  in
  (result, fired ())

(** Deterministic fault injection for the persistence stack.

    A multi-placement structure is generated once and reloaded for
    years; the failures that matter happen on the storage path — torn
    writes, flipped bits, vanished files.  This module turns those
    failures into a reproducible test input: a {e fault plan} derived
    from a single integer seed, injected into {!Mps_core.Persist}
    through its pluggable {!Mps_core.Persist.io} backend, so the same
    seed replays the same failure forever.

    The fault model is crash-consistent: a faulted write aborts before
    the rename that would publish it (data may be missing, truncated or
    corrupted in the {e temporary} file, never in the destination), a
    faulted rename either fails loudly or is silently lost, and read
    faults corrupt only what the reader sees, not the file.  Under this
    model {!Mps_core.Persist.atomic_write} guarantees the destination
    always holds a complete old or complete new document — the property
    the chaos suite asserts.

    The same machinery covers the serving path: the [Net_*] ops target
    the daemon's injectable socket transport
    ({!Mps_serve.Transport.t}), modelling short reads and writes,
    stalls past a deadline, peers vanishing mid-request and failed
    accepts.  The socket model excludes corruption — a damaged TCP
    segment surfaces as a dead connection, never as flipped bits
    handed to the application — so [Corrupt] on a [Net_*] op
    degenerates to [Fail].

    Nothing here touches syscalls or processes; injection is a pure
    wrapper around an [io] or transport record, so plans compose with
    any backend. *)

(** The persistence, socket, or worker primitive a fault targets.
    [Worker_crash] / [Worker_stall] fire through the supervisor's
    per-request fault hook ({!worker_hook_of_plan}) rather than an IO
    record: a stall wedges the serving worker domain mid-request, a
    crash kills it (typed [Err_worker_lost] reply + supervised
    restart). *)
type op =
  | Read
  | Write
  | Rename
  | Fsync_dir
  | Remove
  | Map
      (** {!Mps_core.Persist.io}[.map_words] — the MPSZ zero-copy load
          path.  [Fail]/[Vanish] make the mapping fail ([Sys_error]);
          [Truncate] hands out a mapping of only the leading fraction
          of the file (a lost tail: truncated section table and all);
          [Corrupt] hands out a flipped {e private copy} of the words,
          so the damage sits live under the loader's feet while the
          on-disk file stays intact. *)
  | Net_recv
  | Net_send
  | Net_accept
  | Worker_crash
  | Worker_stall
  | Shm_publish
      (** One frame published on a shm ring ({!shm_hooks_of_plan}):
          [Corrupt] flips stored bits after the CRC, [Stall] delays the
          tail publication, anything else tears the frame outright. *)
  | Shm_heartbeat
      (** Suppress a session peer's heartbeat stamps — a wedged peer
          whose ring machinery still runs; what the stale-heartbeat
          reaper must catch. *)

(** What happens when the fault fires.

    Not every action is meaningful for every op; {!io_of_plan} applies
    the closest crash-consistent interpretation (e.g. a [Truncate] on a
    rename degenerates to [Fail]). *)
type action =
  | Fail  (** The primitive raises [Sys_error] having done nothing. *)
  | Truncate of float
      (** Reads return only this fraction of the bytes.  Writes put the
          prefix on disk and then raise — a crash mid-write. *)
  | Corrupt of int
      (** This many seeded bit flips.  Reads return the flipped bytes;
          writes put flipped bytes on disk and then raise — a crash
          with media corruption, caught before publication. *)
  | Vanish
      (** Reads fail as if the file were missing; a rename is silently
          lost (the destination keeps its old content).  On sockets the
          peer is gone: a recv sees EOF, sent bytes are silently
          dropped, an accepted connection is closed on the spot. *)
  | Stall of float
      (** The primitive sleeps this many seconds, then proceeds
          normally — a slow disk or a congested link.  Harmless on its
          own; what it exercises is every deadline around it. *)

type injection = {
  op : op;
  skip : int;  (** Fire on the [skip+1]-th invocation of [op]. *)
  action : action;
  seed : int;  (** Drives the bit-flip positions of [Corrupt]. *)
}

type plan = injection list

val describe : plan -> string
(** One line per injection, for failure diagnostics. *)

val random_plan : Mps_rng.Rng.t -> plan
(** One to three injections with random ops, actions and skips — the
    generic chaos generator.  Deterministic in the rng state. *)

val random_save_plan : Mps_rng.Rng.t -> plan
(** Like {!random_plan} but restricted to the ops a save touches
    ([Write], [Rename], [Fsync_dir]). *)

val random_read_plan : Mps_rng.Rng.t -> plan
(** Injections on [Read] only, for chaos over the load path. *)

val random_net_plan : Mps_rng.Rng.t -> plan
(** Injections on the socket ops only ([Net_recv], [Net_send],
    [Net_accept]) with socket-appropriate actions: [Fail], short
    [Truncate], [Vanish], or a [Stall] of 20–120 ms (long enough to
    blow a test deadline). *)

val flip_bits : seed:int -> flips:int -> ?from:int -> string -> string
(** [flips] seeded bit flips in [s], at byte offsets [>= from]
    (default 0).  Used both by [Corrupt] injections and directly by
    corruption tests.  Returns [s] unchanged when it is too short. *)

val flip_words : seed:int -> flips:int -> Mps_core.Persist.words -> unit
(** [flips] seeded bit flips {e in place} over a word view (bits 0..62
    of each word — what an on-disk flip looks like through the int
    bigarray kind).  Used by [Corrupt] on [Map] and directly by tests
    that damage a live mapping mid-session. *)

val io_of_plan : ?base:Mps_core.Persist.io -> plan -> Mps_core.Persist.io * (unit -> int)
(** An [io] backend that behaves like [base] (default
    {!Mps_core.Persist.default_io}) except where the plan injects a
    fault; each injection fires at most once.  The second component
    counts injections fired so far. *)

val transport_of_plan :
  ?base:Mps_serve.Transport.t -> plan -> Mps_serve.Transport.t * (unit -> int)
(** A socket transport that behaves like [base] (default
    {!Mps_serve.Transport.default}) except where the plan injects a
    [Net_*] fault; each injection fires at most once.  Unlike
    {!io_of_plan} the bookkeeping is thread-safe — one transport is
    shared by the daemon's accept loop and every connection handler.
    The second component counts injections fired so far. *)

val worker_hook_of_plan : plan -> (worker:int -> unit) * (unit -> int)
(** A hook for {!Mps_serve.Server.create}'s [?fault] (equivalently
    {!Mps_serve.Supervisor.create}) injecting the plan's
    [Worker_stall] / [Worker_crash] faults: the [skip+1]-th request
    served (across all workers — occurrences, not slots, keep a
    scenario deterministic under any dispatch) stalls and/or raises
    {!Mps_serve.Supervisor.Worker_killed}.  Thread-safe; each
    injection fires at most once.  The second component counts
    injections fired so far. *)

val shm_hooks_of_plan : plan -> Mps_serve.Shm.hooks * (unit -> int)
(** Ring-level fault hooks for {!Mps_serve.Server.create}'s
    [?shm_hooks] (equivalently {!Mps_serve.Supervisor.create}),
    injecting the plan's [Shm_publish] / [Shm_heartbeat] faults into
    every shm session the daemon creates.  A [Shm_publish] injection
    damages the [skip+1]-th frame published across all sessions:
    [Corrupt (n)] flips [n] seeded bits over the stored words {e after}
    the checksum (a persistent CRC mismatch — the consumer reports a
    torn frame and falls back to the socket), [Stall] sleeps before
    the tail publication, and [Fail]/[Vanish]/[Truncate] tear the
    frame outright.  A [Shm_heartbeat] injection, once fired,
    suppresses heartbeat stamps for the [Stall] duration (forever for
    other actions) so the peer looks wedged while its ring traffic
    machinery keeps running.  Thread-safe; each injection fires at
    most once.  The second component counts injections fired. *)

val random_worker_plan : Mps_rng.Rng.t -> plan
(** One or two worker-level injections: a [Worker_crash], or a
    [Worker_stall] of 20–120 ms. *)

val with_plan :
  ?base:Mps_core.Persist.io -> plan -> (unit -> 'a) -> ('a, exn) result * int
(** Run a thunk with the plan's backend installed
    ({!Mps_core.Persist.with_io}), capturing either its value or the
    exception it raised, plus the number of injections that fired.
    Never lets an exception escape. *)

(** Generic simulated-annealing engine.

    Both halves of the paper's nested algorithm — the Placement Explorer
    (§3.1, states are block coordinate assignments) and the Block
    Dimensions-Interval Optimizer (§3.2, states are concrete dimension
    vectors) — are instances of this engine, as is the KOAN/ANAGRAM-style
    baseline placer. *)

open Mps_rng

(** A problem instance over states of type ['a]. *)
type 'a problem = {
  initial : 'a;
  cost : 'a -> float;  (** Smaller is better. *)
  neighbor : Rng.t -> 'a -> 'a;  (** Random perturbation of a state. *)
}

(** Outcome statistics.  [average_cost] is the mean cost over every
    state evaluated during the run — the quantity the BDIO reports back
    to the explorer (paper §3.2). *)
type 'a result = {
  best : 'a;
  best_cost : float;
  final : 'a;  (** Last accepted state. *)
  final_cost : float;
  average_cost : float;
  evaluations : int;
  acceptances : int;
}

(** A problem whose state lives in the driver as mutable storage — the
    annealer only sees proposed moves of type ['m] and their cost
    deltas.  This is the interface the incremental delta-cost engine
    ({!Mps_cost.Incremental}) plugs into: [delta_cost] tentatively
    applies the move to the shared evaluator and returns the cost
    change; the annealer then either [commit]s it (accept) or
    [reject]s it (the driver undoes the tentative application).  No
    state is ever copied per move, which is what makes the nested
    generation loops allocation-free on the hot path. *)
type 'm move_problem = {
  propose : Rng.t -> 'm;  (** Draw the next candidate move. *)
  delta_cost : 'm -> float;
      (** Tentatively apply the move; return [cost after - cost before]. *)
  commit : 'm -> unit;  (** Keep the tentatively applied move. *)
  reject : 'm -> unit;  (** Undo the tentatively applied move. *)
}

(** Outcome statistics of a move-based run; the state itself lives in
    the driver (snapshot it from [on_improve] to track the best). *)
type move_result = {
  mv_best_cost : float;
  mv_final_cost : float;  (** Cost of the last accepted state. *)
  mv_average_cost : float;  (** Mean over every evaluated state. *)
  mv_evaluations : int;
  mv_acceptances : int;
}

val run_moves :
  ?on_improve:(cost:float -> step:int -> unit) ->
  ?should_stop:(best_cost:float -> step:int -> bool) ->
  rng:Rng.t ->
  schedule:Schedule.t ->
  iterations:int ->
  initial_cost:float ->
  'm move_problem ->
  move_result
(** Metropolis acceptance over mutable driver state, same semantics as
    {!run} (the initial state counts as one evaluation; the uphill
    acceptance draw is only consumed when [delta_cost > 0]).
    [on_improve] fires after a commit that produced a new best cost —
    the driver should snapshot its current state there.

    The move loop itself is allocation-free: accumulators live in a
    flat all-float record and geometric temperatures advance by one
    multiply per step (no [**], no boxed intermediates), so the only
    per-move work is whatever the [move_problem] callbacks do.
    @raise Invalid_argument on a negative iteration count. *)

val run :
  ?on_accept:('a -> cost:float -> step:int -> unit) ->
  ?should_stop:(best_cost:float -> step:int -> bool) ->
  rng:Rng.t ->
  schedule:Schedule.t ->
  iterations:int ->
  'a problem ->
  'a result
(** Metropolis acceptance: a candidate with cost increase [dc] at
    temperature [T] is accepted with probability [exp (-. dc /. T)]
    (always when [dc <= 0]).  [on_accept] fires on every acceptance;
    [should_stop] is polled each iteration and ends the run early when
    it returns [true].  [iterations] must be non-negative; the initial
    state counts as one evaluation. *)

open Mps_rng

(* Flat per-slot bounds.  [span] is redundant with [lo]/[hi] but keeps
   the draw to one load + one unchecked Random call; [hi] keeps the
   clamp to two int-specialized compares.  All three arrays are
   written once at build time and never mutated, so a LUT can be read
   from any domain. *)
type t = {
  n : int;
  lo : int array;
  hi : int array;
  span : int array; (* hi - lo + 1, always >= 1 *)
}

let[@inline] imin (a : int) b = if a <= b then a else b
let[@inline] imax (a : int) b = if a >= b then a else b

let make ~n ~lo:lo_f ~hi:hi_f =
  if n < 0 then invalid_arg "Move_lut.make: negative slot count";
  let lo = Array.make (max 1 n) 0 in
  let hi = Array.make (max 1 n) 0 in
  let span = Array.make (max 1 n) 1 in
  for i = 0 to n - 1 do
    let l = lo_f i and h = hi_f i in
    if l > h then
      invalid_arg (Printf.sprintf "Move_lut.make: empty range [%d, %d] at slot %d" l h i);
    lo.(i) <- l;
    hi.(i) <- h;
    span.(i) <- h - l + 1
  done;
  { n; lo; hi; span }

let slots t = t.n
let lo t i = t.lo.(i)
let hi t i = t.hi.(i)

let[@inline] draw t rng i =
  Array.unsafe_get t.lo i + Rng.unsafe_int rng (Array.unsafe_get t.span i)

let[@inline] clamp t i v = imin (Array.unsafe_get t.hi i) (imax (Array.unsafe_get t.lo i) v)

let[@inline] draw_shift t rng i ~cur ~max_shift =
  let v = cur - max_shift + Rng.unsafe_int rng ((2 * max_shift) + 1) in
  clamp t i v

(** Precomputed move-bound lookup tables for annealing hot loops
    (the Mapper2.jl [MoveLUT] idiom: trade a little memory at
    compile-a-run time for branch-free, allocation-free move draws).

    A table holds one inclusive integer range per {e slot} — a block's
    legal x positions at fixed dimensions, a dimension axis's interval
    inside a BDIO box — validated once at {!make}.  The per-move
    operations then reduce to array loads plus an unchecked uniform
    draw ({!Mps_rng.Rng.unsafe_int}): no interval records, no bound
    re-derivation, no [Invalid_argument] branches, and nothing
    allocated on the minor heap (property-pinned by a
    [Gc.minor_words] test).  That last point is what makes the tables
    matter for {e parallel} annealing: on OCaml 5 every minor
    collection stops all domains, so allocation-free draw paths are a
    scaling fix, not just a serial one (DESIGN.md §9).

    Tables are immutable after {!make} and safe to read from any
    domain; draws mutate only the caller's RNG.  Draw compatibility:
    [draw t rng i] consumes exactly the draw
    [Rng.int_in rng (lo t i) (hi t i)] would. *)

type t

val make : n:int -> lo:(int -> int) -> hi:(int -> int) -> t
(** [make ~n ~lo ~hi] compiles the table for slots [0 .. n-1]; every
    range must be non-empty ([lo i <= hi i]).
    @raise Invalid_argument on a negative [n] or an empty range. *)

val slots : t -> int

val lo : t -> int -> int

val hi : t -> int -> int

val draw : t -> Mps_rng.Rng.t -> int -> int
(** [draw t rng i] — uniform in [[lo i, hi i]]; one load of the
    precomputed span, one unchecked draw, zero allocation. *)

val clamp : t -> int -> int -> int
(** [clamp t i v] — [v] clamped into slot [i]'s range, two
    int-specialized compares (compiles branch-free). *)

val draw_shift : t -> Mps_rng.Rng.t -> int -> cur:int -> max_shift:int -> int
(** [draw_shift t rng i ~cur ~max_shift] — a uniform shift of [cur] by
    [[-max_shift, max_shift]], clamped into slot [i]'s range: the
    coordinate-annealing move, drawn exactly as
    [clamp t i (cur + Rng.int_in rng (-max_shift) max_shift)]. *)

open Mps_rng

type 'a problem = {
  initial : 'a;
  cost : 'a -> float;
  neighbor : Rng.t -> 'a -> 'a;
}

type 'a result = {
  best : 'a;
  best_cost : float;
  final : 'a;
  final_cost : float;
  average_cost : float;
  evaluations : int;
  acceptances : int;
}

type 'm move_problem = {
  propose : Rng.t -> 'm;
  delta_cost : 'm -> float;
  commit : 'm -> unit;
  reject : 'm -> unit;
}

type move_result = {
  mv_best_cost : float;
  mv_final_cost : float;
  mv_average_cost : float;
  mv_evaluations : int;
  mv_acceptances : int;
}

let run_moves ?(on_improve = fun ~cost:_ ~step:_ -> ())
    ?(should_stop = fun ~best_cost:_ ~step:_ -> false) ~rng ~schedule ~iterations
    ~initial_cost problem =
  if iterations < 0 then invalid_arg "Annealer.run_moves: negative iteration count";
  let current_cost = ref initial_cost in
  let best_cost = ref initial_cost in
  let cost_sum = ref initial_cost and evaluations = ref 1 in
  let acceptances = ref 0 in
  let step = ref 0 in
  let continue = ref true in
  while !continue && !step < iterations do
    if should_stop ~best_cost:!best_cost ~step:!step then continue := false
    else begin
      let m = problem.propose rng in
      let dc = problem.delta_cost m in
      let cost = !current_cost +. dc in
      cost_sum := !cost_sum +. cost;
      incr evaluations;
      let temp = Schedule.temperature schedule ~step:!step in
      let accept = dc <= 0.0 || Rng.float rng 1.0 < exp (-.dc /. temp) in
      if accept then begin
        problem.commit m;
        current_cost := cost;
        incr acceptances;
        if cost < !best_cost then begin
          best_cost := cost;
          on_improve ~cost ~step:!step
        end
      end
      else problem.reject m;
      incr step
    end
  done;
  {
    mv_best_cost = !best_cost;
    mv_final_cost = !current_cost;
    mv_average_cost = !cost_sum /. float_of_int !evaluations;
    mv_evaluations = !evaluations;
    mv_acceptances = !acceptances;
  }

let run ?(on_accept = fun _ ~cost:_ ~step:_ -> ()) ?(should_stop = fun ~best_cost:_ ~step:_ -> false)
    ~rng ~schedule ~iterations problem =
  if iterations < 0 then invalid_arg "Annealer.run: negative iteration count";
  let current = ref problem.initial in
  let current_cost = ref (problem.cost problem.initial) in
  let best = ref !current and best_cost = ref !current_cost in
  let cost_sum = ref !current_cost and evaluations = ref 1 in
  let acceptances = ref 0 in
  let step = ref 0 in
  let continue = ref true in
  while !continue && !step < iterations do
    if should_stop ~best_cost:!best_cost ~step:!step then continue := false
    else begin
      let candidate = problem.neighbor rng !current in
      let cost = problem.cost candidate in
      cost_sum := !cost_sum +. cost;
      incr evaluations;
      let dc = cost -. !current_cost in
      let temp = Schedule.temperature schedule ~step:!step in
      let accept = dc <= 0.0 || Rng.float rng 1.0 < exp (-.dc /. temp) in
      if accept then begin
        current := candidate;
        current_cost := cost;
        incr acceptances;
        on_accept candidate ~cost ~step:!step;
        if cost < !best_cost then begin
          best := candidate;
          best_cost := cost
        end
      end;
      incr step
    end
  done;
  {
    best = !best;
    best_cost = !best_cost;
    final = !current;
    final_cost = !current_cost;
    average_cost = !cost_sum /. float_of_int !evaluations;
    evaluations = !evaluations;
    acceptances = !acceptances;
  }

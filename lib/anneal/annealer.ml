open Mps_rng

type 'a problem = {
  initial : 'a;
  cost : 'a -> float;
  neighbor : Rng.t -> 'a -> 'a;
}

type 'a result = {
  best : 'a;
  best_cost : float;
  final : 'a;
  final_cost : float;
  average_cost : float;
  evaluations : int;
  acceptances : int;
}

type 'm move_problem = {
  propose : Rng.t -> 'm;
  delta_cost : 'm -> float;
  commit : 'm -> unit;
  reject : 'm -> unit;
}

type move_result = {
  mv_best_cost : float;
  mv_final_cost : float;
  mv_average_cost : float;
  mv_evaluations : int;
  mv_acceptances : int;
}

(* Loop accumulators.  An all-float record is stored flat (every field
   unboxed), so mutating it inside the move loop allocates nothing —
   unlike [float ref], whose every [:=] boxes a fresh float.  [traw]
   carries the geometric temperature, advanced by one multiply per
   step instead of recomputing [t0 *. alpha ** step] with a [**] per
   move. *)
type acc = {
  mutable cur : float; (* current cost *)
  mutable bst : float; (* best cost *)
  mutable sum : float; (* cost sum for the average *)
  mutable traw : float; (* geometric temperature before the t_min clamp *)
}

let traw0 = function Schedule.Geometric { t0; _ } -> t0 | _ -> 0.0

let[@inline] next_temp schedule acc ~step =
  match schedule with
  | Schedule.Geometric { alpha; t_min; _ } ->
      let v = Float.max t_min acc.traw in
      acc.traw <- acc.traw *. alpha;
      v
  | s -> Schedule.temperature s ~step

let run_moves ?(on_improve = fun ~cost:_ ~step:_ -> ())
    ?(should_stop = fun ~best_cost:_ ~step:_ -> false) ~rng ~schedule ~iterations
    ~initial_cost problem =
  if iterations < 0 then invalid_arg "Annealer.run_moves: negative iteration count";
  let a =
    { cur = initial_cost; bst = initial_cost; sum = initial_cost; traw = traw0 schedule }
  in
  let evaluations = ref 1 in
  let acceptances = ref 0 in
  let step = ref 0 in
  let continue = ref true in
  while !continue && !step < iterations do
    if should_stop ~best_cost:a.bst ~step:!step then continue := false
    else begin
      let m = problem.propose rng in
      let dc = problem.delta_cost m in
      let cost = a.cur +. dc in
      a.sum <- a.sum +. cost;
      incr evaluations;
      let temp = next_temp schedule a ~step:!step in
      let accept = dc <= 0.0 || Rng.float rng 1.0 < exp (-.dc /. temp) in
      if accept then begin
        problem.commit m;
        a.cur <- cost;
        incr acceptances;
        if cost < a.bst then begin
          a.bst <- cost;
          on_improve ~cost ~step:!step
        end
      end
      else problem.reject m;
      incr step
    end
  done;
  {
    mv_best_cost = a.bst;
    mv_final_cost = a.cur;
    mv_average_cost = a.sum /. float_of_int !evaluations;
    mv_evaluations = !evaluations;
    mv_acceptances = !acceptances;
  }

let run ?(on_accept = fun _ ~cost:_ ~step:_ -> ()) ?(should_stop = fun ~best_cost:_ ~step:_ -> false)
    ~rng ~schedule ~iterations problem =
  if iterations < 0 then invalid_arg "Annealer.run: negative iteration count";
  let current = ref problem.initial in
  let initial_cost = problem.cost problem.initial in
  let a =
    { cur = initial_cost; bst = initial_cost; sum = initial_cost; traw = traw0 schedule }
  in
  let best = ref !current in
  let evaluations = ref 1 in
  let acceptances = ref 0 in
  let step = ref 0 in
  let continue = ref true in
  while !continue && !step < iterations do
    if should_stop ~best_cost:a.bst ~step:!step then continue := false
    else begin
      let candidate = problem.neighbor rng !current in
      let cost = problem.cost candidate in
      a.sum <- a.sum +. cost;
      incr evaluations;
      let dc = cost -. a.cur in
      let temp = next_temp schedule a ~step:!step in
      let accept = dc <= 0.0 || Rng.float rng 1.0 < exp (-.dc /. temp) in
      if accept then begin
        current := candidate;
        a.cur <- cost;
        incr acceptances;
        on_accept candidate ~cost ~step:!step;
        if cost < a.bst then begin
          best := candidate;
          a.bst <- cost
        end
      end;
      incr step
    end
  done;
  {
    best = !best;
    best_cost = a.bst;
    final = !current;
    final_cost = a.cur;
    average_cost = a.sum /. float_of_int !evaluations;
    evaluations = !evaluations;
    acceptances = !acceptances;
  }

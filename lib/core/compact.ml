open Mps_geometry
open Mps_placement

type stats = {
  records_before : int;
  records_after : int;
  deduped : int;
  merged : int;
  absorbed : int;
  dropped : int;
  bytes_before : int;
  bytes_after : int;
  reverted : bool;
}

let stats_to_string s =
  Printf.sprintf
    "%d -> %d records (%d merged, %d absorbed, %d dropped, %d deduped); %d -> %d bytes%s"
    s.records_before s.records_after s.merged s.absorbed s.dropped s.deduped
    s.bytes_before s.bytes_after
    (if s.reverted then "; REVERTED (audit regressed)" else "")

let coords_equal (a : (int * int) array) b =
  Array.length a = Array.length b && Array.for_all2 ( = ) a b

(* Boxes equal on every axis except exactly one, where they touch
   (hi + 1 = lo in either direction): the shape under which the hull
   of the two boxes IS their union, so fusing them changes no answer
   and creates no new territory. *)
let adjacent_boxes a b =
  let axes = Dimbox.axes a in
  let differing =
    List.filter
      (fun ax ->
        not (Interval.equal (Dimbox.axis_interval a ax) (Dimbox.axis_interval b ax)))
      axes
  in
  match differing with
  | [ ax ] ->
    let ia = Dimbox.axis_interval a ax and ib = Dimbox.axis_interval b ax in
    Interval.hi ia + 1 = Interval.lo ib || Interval.hi ib + 1 = Interval.lo ia
  | _ -> false

let hull a b =
  let n = Dimbox.n_blocks a in
  Dimbox.make
    ~w:(Array.init n (fun i -> Interval.hull (Dimbox.w_interval a i) (Dimbox.w_interval b i)))
    ~h:(Array.init n (fun i -> Interval.hull (Dimbox.h_interval a i) (Dimbox.h_interval b i)))

(* Float volume: axis counts multiply far past [max_int] on big
   circuits, and only the ratio matters (average-cost weighting). *)
let volume box =
  List.fold_left
    (fun acc ax -> acc *. float_of_int (Interval.length (Dimbox.axis_interval box ax)))
    1.0 (Dimbox.axes box)

(* Rewrites.  Each takes the current record list and returns
   [Some better_list] on the first applicable opportunity (scanning in
   index order, so the pass is deterministic) or [None] at a local
   fixpoint. *)

let same_arrangement (a : Stored.t) (b : Stored.t) =
  a.Stored.placement == b.Stored.placement
  && a.Stored.template_like = b.Stored.template_like

(* Merge: same coordinates, same flag, same expansion, adjacent boxes.
   The fused record covers the union with the cheaper best point; its
   average cost is the volume-weighted mean of the parts. *)
let try_merge records =
  let arr = Array.of_list records in
  let n = Array.length arr in
  let found = ref None in
  (try
     for i = 0 to n - 2 do
       for j = i + 1 to n - 1 do
         let a = arr.(i) and b = arr.(j) in
         if
           same_arrangement a b
           && Dimbox.equal a.Stored.expansion b.Stored.expansion
           && adjacent_boxes a.Stored.box b.Stored.box
         then begin
           let va = volume a.Stored.box and vb = volume b.Stored.box in
           let cheap = if a.Stored.best_cost <= b.Stored.best_cost then a else b in
           let merged =
             Stored.make ~template_like:a.Stored.template_like
               ~placement:a.Stored.placement
               ~box:(hull a.Stored.box b.Stored.box)
               ~expansion:a.Stored.expansion
               ~avg_cost:
                 (((va *. a.Stored.avg_cost) +. (vb *. b.Stored.avg_cost))
                 /. (va +. vb))
               ~best_cost:cheap.Stored.best_cost ~best_dims:cheap.Stored.best_dims
           in
           arr.(i) <- merged;
           found :=
             Some (Array.to_list arr |> List.filteri (fun k _ -> k <> j));
           raise Exit
         end
       done
     done
   with Exit -> ());
  !found

(* Absorb: [b]'s box is annexed by a strictly cheaper non-template
   neighbor [a] whose expansion box contains it — every annexed vector
   keeps a legal arrangement (expansion-box guarantee) at a lower
   per-placement cost curve, so the Figure 6 lower envelope only
   improves.  The hull-equals-union shape keeps disjointness intact. *)
let try_absorb records =
  let arr = Array.of_list records in
  let n = Array.length arr in
  let found = ref None in
  (try
     for i = 0 to n - 1 do
       for j = 0 to n - 1 do
         if i <> j then begin
           let a = arr.(i) and b = arr.(j) in
           if
             (not a.Stored.template_like)
             && a.Stored.best_cost < b.Stored.best_cost
             && adjacent_boxes a.Stored.box b.Stored.box
             && Dimbox.contains_box ~outer:a.Stored.expansion ~inner:b.Stored.box
           then begin
             let va = volume a.Stored.box and vb = volume b.Stored.box in
             let annexed =
               Stored.make ~template_like:false ~placement:a.Stored.placement
                 ~box:(hull a.Stored.box b.Stored.box)
                 ~expansion:a.Stored.expansion
                 ~avg_cost:
                   (((va *. a.Stored.avg_cost) +. (vb *. b.Stored.avg_cost))
                   /. (va +. vb))
                 ~best_cost:a.Stored.best_cost ~best_dims:a.Stored.best_dims
             in
             arr.(i) <- annexed;
             found :=
               Some (Array.to_list arr |> List.filteri (fun k _ -> k <> j));
             raise Exit
           end
         end
       done
     done
   with Exit -> ());
  !found

(* Drop: a template piece that repeats the backup's coordinates and
   whose box never meets its expansion box answers only by greedy
   re-packing — bitwise what the fallback path would do without it. *)
let try_drop ~backup records =
  let is_dead (s : Stored.t) =
    s.Stored.template_like
    && s.Stored.placement == backup.Stored.placement
    && Dimbox.inter s.Stored.box s.Stored.expansion = None
  in
  if List.exists is_dead records && List.length records > 1 then begin
    let gone = ref false in
    Some
      (List.filter
         (fun s ->
           if (not !gone) && is_dead s then (
             gone := true;
             false)
           else true)
         records)
  end
  else None

let run ?(audit = true) ?(measure = true) structure =
  let circuit = Structure.circuit structure in
  let stored = Structure.placements structure in
  let backup0 = Structure.backup structure in
  let records_before = Array.length stored in
  (* Dedupe: rebind content-equal coordinate arrays to one canonical
     placement record (the backup's first, so its territory pieces
     collapse onto it), letting the MPSZ pool store each once. *)
  let canon : Placement.t list ref = ref [] in
  let deduped = ref 0 in
  let canonical (p : Placement.t) =
    match
      List.find_opt
        (fun (cp : Placement.t) ->
          coords_equal cp.Placement.coords p.Placement.coords
          && cp.Placement.die_w = p.Placement.die_w
          && cp.Placement.die_h = p.Placement.die_h)
        !canon
    with
    | Some cp -> cp
    | None ->
      canon := p :: !canon;
      p
  in
  let rebind (s : Stored.t) =
    let cp = canonical s.Stored.placement in
    if cp == s.Stored.placement then s
    else begin
      incr deduped;
      { s with Stored.placement = cp }
    end
  in
  let backup = rebind backup0 in
  let records = ref (Array.to_list (Array.map rebind stored)) in
  (* Fixpoint over the three structural rewrites; each fires at most
     once per iteration so the counters stay exact. *)
  let merged = ref 0 and absorbed = ref 0 and dropped = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    (match try_merge !records with
    | Some r ->
      records := r;
      incr merged;
      progress := true
    | None -> ());
    if not !progress then (
      match try_absorb !records with
      | Some r ->
        records := r;
        incr absorbed;
        progress := true
      | None -> ());
    if not !progress then
      match try_drop ~backup !records with
      | Some r ->
        records := r;
        incr dropped;
        progress := true
      | None -> ()
  done;
  let compacted =
    match Structure.of_placements ~backup circuit (Array.of_list !records) with
    | s -> Some s
    | exception Invalid_argument _ -> None
  in
  let accepted, reverted =
    match compacted with
    | None -> (structure, true)
    | Some c ->
      if not audit then (c, false)
      else begin
        (* Regression gate: the rewrite must not introduce findings the
           original did not have. *)
        let before = Audit.run structure and after = Audit.run c in
        let worse sev = Audit.count sev after > Audit.count sev before in
        if worse Audit.Fatal || worse Audit.Degraded then (structure, true)
        else (c, false)
      end
  in
  let bytes_before, bytes_after =
    if measure then
      ( String.length (Zcodec.to_string structure),
        String.length (Zcodec.to_string ~packed:true accepted) )
    else (0, 0)
  in
  ( accepted,
    {
      records_before;
      records_after = Structure.n_placements accepted;
      deduped = !deduped;
      merged = !merged;
      absorbed = !absorbed;
      dropped = !dropped;
      bytes_before;
      bytes_after;
      reverted;
    } )

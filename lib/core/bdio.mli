(** Block Dimensions-Intervals Optimizer (paper §3.2).

    Given a placement with fixed coordinates and its expanded dimension
    box, the BDIO runs a simulated annealing search over concrete
    dimension vectors inside the box (Dimensions Selector + Cost
    Calculator, §3.2.1–§3.2.2), then shrinks the box around the
    best-cost vector (Optimize Ranges, §3.2.3) and reports the average
    and best cost back to the Placement Explorer. *)

open Mps_rng
open Mps_geometry
open Mps_netlist
open Mps_placement

(** How Optimize Ranges shrinks the intervals (paper eq. 6; see
    DESIGN.md for the interpretation of the garbled formula). *)
type shrink_rule =
  | Cost_ratio
      (** Interval half-width scaled by [best_cost /. avg_cost]: the
          further the average sits from the best, the tighter the box
          hugs the best vector.  The paper's rule. *)
  | Fixed of float
      (** Constant shrink factor in [(0, 1]]; ablation baseline. *)
  | No_shrink  (** Keep the full expansion box; ablation baseline. *)

type config = {
  iterations : int;  (** SA steps (the paper's user-set iteration count). *)
  perturb_fraction : float;
      (** Share of the [2N] dimension entries re-drawn per move. *)
  schedule : Mps_anneal.Schedule.t;
  weights : Mps_cost.Cost.weights;
  shrink : shrink_rule;
}

val default_config : config
(** 400 iterations, 30% perturbation, geometric cooling, default cost
    weights, [Cost_ratio] shrinking. *)

type result = {
  box : Dimbox.t;  (** The reduced dimension intervals. *)
  avg_cost : float;
  best_cost : float;
  best_dims : Dims.t;
  evaluations : int;  (** Cost evaluations performed (initial + moves). *)
}

val cost_of_dims :
  weights:Mps_cost.Cost.weights -> Circuit.t -> Placement.t -> Dims.t -> float
(** The Cost Calculator: weighted wirelength + area of the instantiated
    floorplan. *)

val shrink_box :
  rule:shrink_rule ->
  box:Dimbox.t ->
  best_dims:Dims.t ->
  avg_cost:float ->
  best_cost:float ->
  Dimbox.t
(** Optimize Ranges: per axis, a sub-interval of [box] centred on the
    best value.  The result always contains [best_dims] and is contained
    in [box]. *)

val optimize :
  ?config:config ->
  ?arena:Arena.t ->
  rng:Rng.t -> Circuit.t -> Placement.t -> box:Dimbox.t -> result
(** Run the full BDIO on one expanded placement.  The returned box is
    contained in the input box and contains [best_dims]; [avg_cost >=
    best_cost].

    Axis intervals are compiled once per run into a
    {!Mps_anneal.Move_lut}, making each move's axis selection and
    value redraws allocation-free.  [arena] supplies the
    incremental-cost engine and scratch from per-worker reusable
    state; results are bit-identical with or without it. *)

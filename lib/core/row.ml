open Mps_geometry

module Int_set = Set.Make (Int)

type t = (Interval.t * Int_set.t) list

let empty = []

let is_empty t = t = []

let find t v =
  let rec loop = function
    | [] -> Int_set.empty
    | (iv, set) :: rest ->
      if v < Interval.lo iv then Int_set.empty
      else if Interval.contains iv v then set
      else loop rest
  in
  loop t

let find_range t range =
  let rec loop acc = function
    | [] -> acc
    | (iv, set) :: rest ->
      if Interval.hi range < Interval.lo iv then acc
      else if Interval.overlaps iv range then loop (Int_set.union acc set) rest
      else loop acc rest
  in
  loop Int_set.empty t

(* Allocation-free variant of [find_range] for the Resolve Overlaps hot
   path: visit every id whose interval meets the range (duplicates
   possible when an id spans several interval objects). *)
let iter_range t range ~f =
  let rec loop = function
    | [] -> ()
    | (iv, set) :: rest ->
      if Interval.hi range < Interval.lo iv then ()
      else begin
        if Interval.overlaps iv range then Int_set.iter f set;
        loop rest
      end
  in
  loop t

(* Merge neighbours that carry the same set and touch. *)
let normalize t =
  let rec loop = function
    | (iv1, s1) :: (iv2, s2) :: rest
      when Int_set.equal s1 s2 && Interval.hi iv1 + 1 = Interval.lo iv2 ->
      loop ((Interval.hull iv1 iv2, s1) :: rest)
    | entry :: rest -> entry :: loop rest
    | [] -> []
  in
  loop t

let add_range t range id =
  (* Walk the list keeping a cursor [pos]: the first value of [range]
     not yet covered by the output.  Gaps get fresh singleton objects,
     overlapped objects are split at the range boundaries. *)
  let rec loop pos t =
    match t with
    | [] ->
      if pos > Interval.hi range then []
      else [ (Interval.make pos (Interval.hi range), Int_set.singleton id) ]
    | ((iv, set) as entry) :: rest ->
      if pos > Interval.hi range then entry :: rest
      else if Interval.hi iv < pos then entry :: loop pos rest
      else begin
        (* A gap before this object that the range covers? *)
        if pos < Interval.lo iv then begin
          let gap_hi = min (Interval.hi range) (Interval.lo iv - 1) in
          (Interval.make pos gap_hi, Int_set.singleton id) :: loop (gap_hi + 1) (entry :: rest)
        end
        else begin
          (* pos is inside [iv]. Split off the part of [iv] below pos. *)
          let below, covered_and_above =
            ( Interval.make_opt (Interval.lo iv) (pos - 1),
              Interval.make (max (Interval.lo iv) pos) (Interval.hi iv) )
          in
          let cov_hi = min (Interval.hi covered_and_above) (Interval.hi range) in
          let covered = Interval.make (Interval.lo covered_and_above) cov_hi in
          let above = Interval.make_opt (cov_hi + 1) (Interval.hi iv) in
          let pieces =
            (match below with Some b -> [ (b, set) ] | None -> [])
            @ [ (covered, Int_set.add id set) ]
            @ (match above with Some a -> [ (a, set) ] | None -> [])
          in
          match above with
          | Some _ ->
            (* The range ended inside [iv]; nothing further changes. *)
            pieces @ rest
          | None -> pieces @ loop (cov_hi + 1) rest
        end
      end
  in
  normalize (loop (Interval.lo range) t)

let remove_id t id =
  let strip (iv, set) =
    let set = Int_set.remove id set in
    if Int_set.is_empty set then None else Some (iv, set)
  in
  normalize (List.filter_map strip t)

let intervals t = t

let ids t = List.fold_left (fun acc (_, set) -> Int_set.union acc set) Int_set.empty t

let invariants_ok t =
  let rec loop = function
    | [] | [ _ ] -> true
    | (iv1, s1) :: ((iv2, s2) :: _ as rest) ->
      Interval.hi iv1 < Interval.lo iv2
      && not (Int_set.equal s1 s2 && Interval.hi iv1 + 1 = Interval.lo iv2)
      && loop rest
  in
  List.for_all (fun (_, s) -> not (Int_set.is_empty s)) t && loop t

let pp fmt t =
  let pp_entry fmt (iv, set) =
    Format.fprintf fmt "%a{%s}" Interval.pp iv
      (String.concat "," (List.map string_of_int (Int_set.elements set)))
  in
  Format.fprintf fmt "@[<h>%a@]"
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " ") pp_entry)
    t

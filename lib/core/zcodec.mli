(** MPSZ: the zero-copy binary container for compiled structures
    (DESIGN.md §12).

    The text format ({!Codec}) stores placements and recompiles on
    load — parse, O(n²) overlap validation, row freeze, engine
    flattening.  MPSZ stores the {e compiled engine} itself: the flat
    int vectors of {!Structure.Engine} as little-endian 8-byte words,
    prefixed by a self-describing section table.  Loading maps the file
    read-only ({!Persist.map_words}) and wraps the mapped words as an
    engine ({!Structure.Engine.of_flat}) — no parsing, no
    recompilation, O(placements) work to rebuild the small
    {!Stored.t} records and O(1) for the bulk interval/bitset tables,
    which stay on the page cache and are shared by every process
    mapping the same file.

    Layout (every value one 8-byte little-endian word; ASCII tags and
    the circuit name are packed 4 bytes per word so no stored word ever
    sets bit 63, which the int-bigarray lens would drop):

    {v
    word 0   magic "MPSZ0001"
    word 1   format version (1)
    word 2   total words      word 3   header words
    word 4   n_blocks         word 5   n_nets
    word 6   die_w            word 7   die_h
    word 8   n_stored         word 9   n_pool
    word 10  words_per_set    word 11  skipped_rows
    word 12  name bytes, then the packed name
    section table: 12 x (tag, offset, length, crc32)
    header crc32, then the sections, contiguous and in table order
    v}

    Sections [ROWA ROWO LOWS HIGH SETW DOML DOMH BOXL BOXH BIND] are
    the {!Structure.Engine.flat} vectors verbatim.  [POOL] holds the
    deduplicated coordinate pool: placements sharing one coordinate
    array (the backup's template pieces, {!Compact}'s content-equal
    merges) store it once.  [PLCT] holds one fixed-stride record per
    stored placement — pool index, template flag, costs as split
    IEEE-754 words, best dims, validity and expansion boxes — with the
    backup template as the final record.  The last two slots may
    instead carry [POLH]/[PLCH]: the same payloads half-packed, two
    31-bit coordinate values per word ({!to_string} with
    [~packed:true], the layout [mpsgen compact] writes).

    Every CRC is computed through the same int lens the loader reads
    with ({!Persist.crc32_words}), so save-side and mapped-side
    checksums agree bit for bit.  A corrupted file is detected at load
    ([?verify], on by default) or, when damage lands {e under a live
    mapping}, degrades to wrong-but-in-bounds answers: the engine's
    shape guards make that memory-safe, and remapping re-verifies. *)

open Mps_netlist

(** Why a container could not be decoded. *)
type error =
  | Io_error of string  (** The file could not be read or mapped. *)
  | Corrupt of { section : string; reason : string }
      (** Malformed content; [section] is a table tag, ["header"] or
          ["engine"]. *)
  | Circuit_mismatch of string
      (** The container is intact but was generated for another
          circuit. *)

exception Error of error

val error_to_string : error -> string
(** One-line human-readable rendering (used verbatim by the CLI). *)

val format_version : int
(** The version {!to_string} writes (currently 1). *)

val magic : string
(** The 8-byte container magic, ["MPSZ0001"]. *)

val is_magic : string -> bool
(** The string starts with {!magic} — the sniff used to route a file
    between the text and binary codecs. *)

(** One section-table entry, for size accounting ([mpsgen stats]). *)
type section = { tag : string; off_words : int; len_words : int }

(** A loaded container: a ready engine plus the size breakdown. *)
type view = {
  engine : Structure.Engine.t;
      (** Query-ready; {!Structure.Engine.structure} materializes the
          full heap structure on demand. *)
  n_stored : int;  (** Stored placements (backup excluded). *)
  n_pool : int;  (** Distinct coordinate arrays in the pool. *)
  bytes : int;  (** Container size on disk. *)
  sections : section list;  (** In file order. *)
  record_off_words : int;
      (** Absolute word offset of the placement-record table (the
          [PLCT]/[PLCH] section). *)
  record_stride_words : int;  (** Words per placement record. *)
}

val record_span : view -> int -> int * int
(** [record_span v k] is the absolute [(offset, length)] word span of
    stored record [k] inside the container — what the serving daemon
    hands to a co-located shm client as a descriptor instead of
    copying the record.  Record [v.n_stored] is the backup template.
    @raise Invalid_argument when [k] is outside [0 .. n_stored]. *)

val to_string : ?packed:bool -> Structure.t -> string
(** Serialize: compiles the engine ({!Structure.Engine.create}) and
    writes its flat vectors plus the pooled placement records.

    [packed] (default [false]) selects the size-optimized archival
    layout: the coordinate payloads — pool entries and the 10n-value
    record tails — are stored two 31-bit values per word under the
    section tags [POLH]/[PLCH] (in the [POOL]/[PLCT] table slots).
    The engine sections, the record heads (pool index, flag, cost
    words) and every CRC are unchanged, and any value outside the
    31-bit range falls that section back to the plain layout, so a
    packed container decodes to the bit-identical structure.  The
    default layout keeps one value per word: it is what [mpsgen pack]
    and checkpoint saves write on the fast path; [mpsgen compact]
    writes packed output. *)

val save : ?packed:bool -> Structure.t -> path:string -> unit
(** {!to_string} through {!Persist.atomic_write}: crash-safe replace.
    @raise Error ([Io_error]) when the file cannot be written. *)

val of_string : ?verify:bool -> circuit:Circuit.t -> string -> view
(** Decode from bytes already in memory (copied into a private word
    array; the zero-copy path is {!load}).  [verify] (default [true])
    checks every section CRC; the header CRC is always checked.
    @raise Error on damage ([Corrupt]) or the wrong circuit
    ([Circuit_mismatch]). *)

val load : ?verify:bool -> circuit:Circuit.t -> string -> view
(** [load ~circuit path]: map the file at [path] and wrap it as an
    engine.  The bulk engine tables are
    zero-copy views of the mapping; only the per-placement records are
    materialized.  @raise Error — [Io_error] when the file cannot be
    mapped, otherwise as {!of_string}. *)

(** What a best-effort scan of a damaged container recovered; feed to
    {!Structure.of_placements_lenient} / {!Repair} to rebuild (that is
    what {!Codec.load_salvage} does when it routes here). *)
type recovered = {
  r_stored : Stored.t list;  (** Intact placement records, file order. *)
  r_backup : Stored.t option;  (** The backup record, if intact. *)
  r_claimed : int;  (** Stored-placement count the header claims. *)
  r_crc_ok : bool;  (** Header and every section CRC matched. *)
}

val words_of_string : string -> Persist.words
(** The in-memory counterpart of {!Persist.map_words}: copy a byte
    string into a word array through the same int lens a mapping uses
    (bit 63 of each stored word is dropped), so string and mapped
    parses agree on any input.  For feeding already-read bytes to
    {!salvage_parts}. *)

val salvage_parts :
  circuit:Circuit.t -> Persist.words -> bytes:int -> (recovered, error) result
(** Scan a (possibly damaged) container for intact placement records,
    skipping records that fail to decode.  Only the fixed header and
    the [POOL]/[PLCT] table entries must be usable; the engine sections
    may be arbitrarily damaged (salvage recompiles from placements
    anyway).  [Error] when the header is unusable ([Corrupt]) or the
    circuit does not match ([Circuit_mismatch]). *)

(** One-time multi-placement structure generation (paper §3, Fig. 4).

    The Placement Explorer walks placement space with simulated
    annealing: select / perturb coordinates, expand dimensions, hand the
    expanded placement to the BDIO, resolve overlaps against the
    structure, store — and use the BDIO's average cost as the annealing
    cost.  Every evaluated placement is stored (after overlap
    resolution); acceptance only steers the walk.  The run stops at the
    coverage target, the placement cap, or the iteration budget. *)

open Mps_netlist

type config = {
  seed : int;
  die_slack : float;
      (** Die area = (1 + slack) × total max block area (see
          {!Circuit.default_die}). *)
  explorer_iterations : int;
  explorer_schedule : Mps_anneal.Schedule.t;
  perturb_fraction : float;  (** Share of blocks moved per perturbation. *)
  max_shift_fraction : float;  (** Max coordinate shift as a die fraction. *)
  bdio : Bdio.config;
  coverage_target : float;
      (** Stop once this fraction of the dimension space is covered
          (100% "can never be reached", §3.1.4). *)
  max_placements : int;  (** Stop once this many placements are live. *)
  backup_iterations : int;
      (** Coordinate-annealing budget for the template-like backup
          placement built for uncovered dimension space. *)
  backup_restarts : int;
      (** Independent annealing restarts for the backup; the best one
          wins.  The backup is the quality floor for the whole
          structure (admission tests and every uncovered query compare
          against it), so one unlucky run must not set it. *)
  seed_walk_with_backup : bool;
      (** Start the explorer walk from the optimized backup placement
          instead of a fresh random placement (quality improvement over
          the paper's random initial selection; see DESIGN.md). *)
  refine_iterations : int;
      (** Short coordinate-annealing refinement applied to each explorer
          candidate, each toward its own random target sizing, before
          expansion and the BDIO; [0] disables it (the paper's literal
          walk).  See DESIGN.md §5. *)
  explorer_restarts : int;
      (** Independent explorer walks run by {!generate_par}, each a
          full [explorer_iterations]-step Metropolis walk on its own
          stream.  The sequential {!generate} ignores it (one walk).
          More walks mean more exploration — the work parallelism
          makes affordable (DESIGN.md §9). *)
  walk_chunk : int;
      (** Steps each parallel walk advances per lockstep round before
          results are merged into the builder in walk order.  Fixed by
          config (never by job count) so the merge order — and hence
          the structure — is identical at any [jobs].  Smaller chunks
          mean fresher stopping checks and finer checkpoints; larger
          chunks amortize scheduling.  Only {!generate_par} uses it. *)
  checkpoint_every : int;
      (** Snapshot the whole walk state to [checkpoint_path] every this
          many explorer steps ({!Checkpoint}) — or, under
          {!generate_par}, every this many lockstep rounds; [0] (the
          default) disables checkpointing. *)
  checkpoint_path : string option;
      (** Where the snapshot goes (written atomically); [None] (the
          default) disables checkpointing. *)
  max_seconds : float option;
      (** Wall-clock deadline: once this many seconds have elapsed the
          run stops gracefully at the next step boundary and returns
          the best structure so far, with {!stats.deadline_hit} set.
          [None] (the default) means no deadline.  On a resumed run the
          budget restarts with the process. *)
}

val default_config : config
(** seed 1, slack 1.0, 60 explorer iterations, 25% block moves, BDIO
    defaults, coverage target 0.5, at most 200 placements, 5000 backup
    iterations (best of 3 restarts), 2000 refinement iterations, walk
    seeded with the backup. *)

val fast_config : config
(** Reduced budgets for tests and demos (15 explorer iterations, 120
    BDIO iterations, at most 60 placements). *)

type stats = {
  placements_stored : int;
  coverage : float;
  explorer_steps : int;  (** Candidate placements evaluated. *)
  candidates_dropped : int;  (** Candidates fully absorbed by better ones. *)
  cost_evaluations : int;
      (** Placement cost evaluations performed during the run: SA moves
          across the backup / refinement / BDIO annealing loops plus
          admission-test sampling.  The generation-throughput benchmarks
          report this over wall time.  Restarts at zero on a resumed
          run, like [generation_seconds]. *)
  generation_seconds : float;  (** CPU time of the generation run. *)
  deadline_hit : bool;
      (** The run stopped early because [max_seconds] elapsed; the
          returned structure is valid but below its exploration
          budget — resume from the checkpoint (or {!extend}) to finish. *)
}

val generate : ?config:config -> Circuit.t -> Structure.t * stats
(** Build the multi-placement structure for a circuit topology. *)

val generate_builder : ?config:config -> Circuit.t -> Builder.t * stats
(** Same run, exposing the mutable builder (for tests and ablations). *)

val random_explorer : ?config:config -> Circuit.t -> Structure.t * stats
(** Ablation A2: the explorer degenerated to independent random
    placements (no annealing walk); same stopping criteria. *)

val extend : ?config:config -> Structure.t -> Structure.t * stats
(** Resume exploration on an existing (possibly reloaded) structure:
    thaw it, continue the annealing walk from its backup placement, and
    recompile.  Use a different [seed] (and a [max_placements] above
    the current count) to add coverage incrementally. *)

val resume : ?config:config -> Checkpoint.t -> Structure.t * stats
(** Continue an interrupted generation run from a {!Checkpoint}
    snapshot: reconstitute the builder, restore the walk's accepted
    placement, counters and exact RNG state, and continue the standard
    perturbation walk under the given config's stopping criteria.
    Determinism guarantee: resuming a run checkpointed at step K yields
    the same stored-placement set as the uninterrupted run with the
    same config (property-tested).
    @raise Invalid_argument on a {!generate_par} checkpoint — those
    carry per-walk streams and resume through {!resume_par}. *)

val generate_par :
  ?config:config ->
  ?jobs:int ->
  ?on_pool_stats:(Mps_parallel.Pool.stats array -> unit) ->
  Circuit.t ->
  Structure.t * stats
(** Parallel generation over a {!Mps_parallel.Pool} of [jobs] domains
    ([jobs] defaults to {!Mps_parallel.Pool.default_jobs}; [jobs = 1]
    runs the same algorithm on the calling domain).  The backup's
    [backup_restarts] annealing runs fan out one task each; the
    explorer runs [explorer_restarts] independent walks advanced in
    lockstep rounds of [walk_chunk] steps, merged into the builder in
    walk order.  Every task draws from its own {!Mps_rng.Rng.split}
    stream, so the returned structure is {b byte-identical at any job
    count} (property-tested) — parallelism only changes wall time.
    Checkpoints (when configured) record every walk's stream; a fresh
    run writes one right after the backup phase, then one per
    [checkpoint_every] rounds, plus a final one on a deadline stop.

    Fan-outs run under the pool's chunked work-stealing scheduler with
    one evaluation {!Mps_placement.Arena} per worker slot (engines and
    scratch reused across every chunk a slot runs); stealing and arena
    identity move {e where} a task runs, never what it computes.
    [on_pool_stats] receives the per-worker scheduling counters
    ({!Mps_parallel.Pool.stats}) just before the pool shuts down —
    the [--par-bench] diagnosis surface. *)

val resume_par :
  ?config:config ->
  ?jobs:int ->
  ?on_pool_stats:(Mps_parallel.Pool.stats array -> unit) ->
  Checkpoint.t ->
  Structure.t * stats
(** Continue an interrupted {!generate_par} run.  The checkpoint's
    recorded walk states and streams — not the job count — determine
    the continuation, so a run checkpointed under [--jobs 4] resumes
    byte-identically under any [jobs] (property-tested).
    @raise Invalid_argument on a sequential checkpoint (no parallel
    section — use {!resume}). *)

(** Persistence for compiled multi-placement structures.

    The whole point of a multi-placement structure is that it is
    generated {e once} per circuit topology (paper Fig. 1a) and reused
    across synthesis runs, so the saved artifact sits on the system's
    durability-critical path.  The format is a line-oriented text file;
    the circuit itself is not stored — loading requires the same
    circuit and validates its identity (name, block count, net count).

    Current format (v2):
    {v
    mps-structure v2
    checksum <8 hex digits>      CRC-32 of every byte after this line
    circuit <blocks> <nets> <name>
    die <w> <h>
    placements <count>
    <placement sections...>
    backup
    <placement section>
    v}

    Legacy compatibility: files whose first line is [mps-structure v1]
    (the seed format, no checksum line) and headerless files whose
    first line starts with [circuit ] (v0) still load.

    {!save} is atomic — a crash mid-save leaves the previous complete
    file in place, never a truncated mix — and {!load_salvage} degrades
    gracefully on a corrupt or truncated file by recovering every
    intact stored placement.

    Every decoding entry point sniffs the file magic and routes MPSZ
    binary containers ({!Zcodec}) transparently: {!load} decodes them
    into a full heap structure, {!load_salvage} scans their record
    table with the same graceful-degradation pipeline as the text
    path, and an unrecognized magic fails with a clean one-line
    [Corrupt] instead of a parse backtrace.  (To {e serve} an MPSZ
    file, prefer {!Zcodec.load}, which maps it zero-copy instead of
    recompiling.) *)

open Mps_netlist

(** Why a document could not be decoded. *)
type error =
  | Io_error of string  (** The file could not be read or written. *)
  | Corrupt of { lineno : int; reason : string }
      (** Malformed content: checksum mismatch, truncation, or a bad
          line.  [lineno] is 1-based in the physical file. *)
  | Circuit_mismatch of string
      (** The document is intact but was generated for another
          circuit. *)

exception Error of error

val error_to_string : error -> string
(** One-line human-readable rendering (used verbatim by the CLI). *)

val format_version : int
(** The version number {!to_string} writes (currently 2). *)

val to_string : Structure.t -> string
(** Serialize: version + checksum header, identity, die, every stored
    placement, backup. *)

val of_string : circuit:Circuit.t -> string -> Structure.t
(** Parse and recompile.  @raise Error on a malformed document
    ([Corrupt]) or a circuit mismatch ([Circuit_mismatch]). *)

val save : Structure.t -> path:string -> unit
(** Atomic replace: temp file in the same directory, fsync, rename.
    @raise Error ([Io_error]) when the file cannot be written. *)

val load : circuit:Circuit.t -> path:string -> Structure.t
(** @raise Error — [Io_error] when the file cannot be read, [Corrupt]
    on a malformed document, [Circuit_mismatch] on the wrong
    circuit. *)

(** Result of a graceful-degradation load from a damaged file. *)
type salvage = {
  structure : Structure.t;
      (** Recompiled from the intact placements only, then audited and
          repaired ({!Audit}, {!Repair}); queries over dropped or
          quarantined territory fall back to the backup placement. *)
  recovered : int;  (** Syntactically intact stored placements kept. *)
  dropped : int;  (** Stored placements lost to corruption or overlap. *)
  quarantined : int;
      (** Recovered placements that failed the semantic audit and were
          quarantined by the repair pass. *)
  backup_recovered : bool;
      (** Whether the backup section itself survived; when [false] the
          best recovered placement stands in. *)
  checksum_ok : bool;
      (** [false] when the checksum line is absent, unparseable or does
          not match — i.e. whenever {!load} would have refused. *)
  audit : Audit.report;
      (** Post-repair audit of [structure]; {!Audit.clean} here means
          the salvaged structure re-proves every invariant. *)
}

val salvage_of_string : circuit:Circuit.t -> string -> (salvage, error) result
(** Best-effort parse: scan the document for intact placement sections,
    skip damaged ones (resynchronizing on the next [placement] line),
    drop any placement whose validity box overlaps an already-recovered
    one — the result never violates eq. 5 — and recompile via
    {!Structure.of_placements}.  [Error] only when the identity header
    is unusable ([Corrupt]), the circuit does not match
    ([Circuit_mismatch]), or not a single placement survived. *)

val load_salvage : circuit:Circuit.t -> path:string -> (salvage, error) result
(** {!salvage_of_string} on a file; [Error (Io_error _)] when it cannot
    be read. *)

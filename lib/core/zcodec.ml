open Mps_geometry
open Mps_netlist
open Mps_placement

let format_version = 1
let magic = "MPSZ0001"
let magic_word = Int64.to_int (String.get_int64_le magic 0)
let is_magic raw = String.length raw >= 8 && String.sub raw 0 8 = magic

type error =
  | Io_error of string
  | Corrupt of { section : string; reason : string }
  | Circuit_mismatch of string

exception Error of error

let error_to_string = function
  | Io_error msg -> Printf.sprintf "io error: %s" msg
  | Corrupt { section; reason } ->
    Printf.sprintf "corrupt container: %s: %s" section reason
  | Circuit_mismatch msg -> Printf.sprintf "circuit mismatch: %s" msg

let corrupt section fmt =
  Printf.ksprintf (fun reason -> raise (Error (Corrupt { section; reason }))) fmt

type section = { tag : string; off_words : int; len_words : int }

type view = {
  engine : Structure.Engine.t;
  n_stored : int;
  n_pool : int;
  bytes : int;
  sections : section list;
  record_off_words : int;
  record_stride_words : int;
}

(* The absolute word span of stored record [k] inside the container —
   what the serving daemon hands to a co-located shm client as a
   (offset, length) descriptor instead of copying the record's bytes.
   Record [n_stored] is the backup. *)
let record_span v k =
  if k < 0 || k > v.n_stored then
    invalid_arg (Printf.sprintf "Zcodec.record_span: record %d of %d" k v.n_stored);
  (v.record_off_words + (k * v.record_stride_words), v.record_stride_words)

(* Words and bytes.

   Reading a mapped word through the int bigarray kind drops bit 63
   (OCaml ints are 63-bit), so the format never stores a word with it
   set: values are OCaml ints written as their sign-extended [Int64]
   image, ASCII (tags, the circuit name) is packed 4 bytes per word,
   and CRC words carry 32 bits.  Under that discipline the int lens is
   lossless, and [Persist.crc32_words] over mapped ints reproduces the
   writer's byte-level CRC exactly. *)

let add_word buf v = Buffer.add_int64_le buf (Int64.of_int v)
let crc_int c = Int32.to_int c land 0xFFFF_FFFF

let tag_word s =
  Char.code s.[0]
  lor (Char.code s.[1] lsl 8)
  lor (Char.code s.[2] lsl 16)
  lor (Char.code s.[3] lsl 24)

let tag_string v =
  String.init 4 (fun b -> Char.chr ((v lsr (8 * b)) land 0xff))

let float_words f =
  let b = Int64.bits_of_float f in
  ( Int64.to_int (Int64.shift_right_logical b 32),
    Int64.to_int (Int64.logand b 0xFFFF_FFFFL) )

let float_of_words hi lo =
  Int64.float_of_bits
    (Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo))

let section_tags =
  [ "ROWA"; "ROWO"; "LOWS"; "HIGH"; "SETW"; "DOML"; "DOMH"; "BOXL"; "BOXH";
    "BIND"; "POOL"; "PLCT" ]

(* The pool and record slots admit the half-packed variants the
   size-optimized writer emits ([to_string ~packed:true]). *)
let tag_matches canonical tag =
  tag = canonical
  || (canonical = "POOL" && tag = "POLH")
  || (canonical = "PLCT" && tag = "PLCH")

let n_sections = List.length section_tags
let record_stride n = 6 + (10 * n)
let record_stride_packed n = 6 + (5 * n)

(* Serialization *)

(* The six per-record scalars: pool index, template flag, and the two
   costs as split IEEE-754 words.  The cost halves use the full 32-bit
   range, so these words are never half-packed. *)
let record_head pool_idx (s : Stored.t) =
  let ahi, alo = float_words s.Stored.avg_cost in
  let bhi, blo = float_words s.Stored.best_cost in
  [ pool_idx; (if s.Stored.template_like then 1 else 0); ahi; alo; bhi; blo ]

(* The 10n per-record coordinates: best dims, then the validity and
   expansion boxes, each as lows then highs in axis-code order (2i =
   width of block i, 2i+1 = height) — the same flattening the engine
   tables use. *)
let record_tail ~n (s : Stored.t) =
  let out = Array.make (10 * n) 0 in
  let p = ref 0 in
  let push v =
    out.(!p) <- v;
    incr p
  in
  for i = 0 to n - 1 do
    push (Dims.width s.Stored.best_dims i);
    push (Dims.height s.Stored.best_dims i)
  done;
  let push_box box =
    for i = 0 to n - 1 do
      push (Interval.lo (Dimbox.w_interval box i));
      push (Interval.lo (Dimbox.h_interval box i))
    done;
    for i = 0 to n - 1 do
      push (Interval.hi (Dimbox.w_interval box i));
      push (Interval.hi (Dimbox.h_interval box i))
    done
  in
  push_box s.Stored.box;
  push_box s.Stored.expansion;
  out

(* Half-word packing: two non-negative 31-bit values per 8-byte word,
   low value in bits 0..31, high value in bits 32..62.  Keeping each
   value under 2^31 leaves bit 63 clear, so the int lens stays
   lossless.  Only the coordinate payloads (POOL entries, PLCT tails)
   qualify; the engine sections are the mapped hot path and stay one
   value per word. *)
let fits_half v = v >= 0 && v <= 0x7FFF_FFFF

let add_packed buf (vals : int array) =
  for k = 0 to (Array.length vals / 2) - 1 do
    add_word buf (vals.(2 * k) lor (vals.((2 * k) + 1) lsl 32))
  done

let to_string ?(packed = false) structure =
  let circuit = Structure.circuit structure in
  let n = Circuit.n_blocks circuit in
  let die_w, die_h = Structure.die structure in
  let engine = Structure.Engine.create structure in
  let f = Structure.Engine.flatten engine in
  let stored = Structure.placements structure in
  let backup = Structure.backup structure in
  (* The coordinate pool dedupes by physical identity: placements that
     share one coords array in memory (the backup's territory pieces,
     content-merged records after Compact) store it once. *)
  let assoc = ref [] and pool_rev = ref [] and pool_n = ref 0 in
  let idx_of (s : Stored.t) =
    let coords = s.Stored.placement.Placement.coords in
    match List.find_opt (fun (c, _) -> c == coords) !assoc with
    | Some (_, i) -> i
    | None ->
      let i = !pool_n in
      assoc := (coords, i) :: !assoc;
      pool_rev := coords :: !pool_rev;
      incr pool_n;
      i
  in
  let idxs = Array.map idx_of stored in
  let backup_idx = idx_of backup in
  let pool = Array.of_list (List.rev !pool_rev) in
  let words_section (v : Structure.Engine.ints) =
    let d = Bigarray.Array1.dim v in
    let buf = Buffer.create (8 * d) in
    for i = 0 to d - 1 do
      add_word buf v.{i}
    done;
    Buffer.contents buf
  in
  let pool_vals =
    let out = Array.make (Array.length pool * 2 * n) 0 in
    Array.iteri
      (fun e coords ->
        Array.iteri
          (fun i (x, y) ->
            out.((e * 2 * n) + (2 * i)) <- x;
            out.((e * 2 * n) + (2 * i) + 1) <- y)
          coords)
      pool;
    out
  in
  (* Packing is per section and best-effort: a value outside the 31-bit
     range (none arises from real die geometry) falls that section back
     to the plain one-word-per-value layout, still a valid container. *)
  let pool_packed = packed && Array.for_all fits_half pool_vals in
  let pool_buf = Buffer.create 1024 in
  if pool_packed then add_packed pool_buf pool_vals
  else Array.iter (add_word pool_buf) pool_vals;
  let records =
    Array.to_list (Array.mapi (fun k s -> (idxs.(k), s)) stored)
    @ [ (backup_idx, backup) ]
  in
  let tails = List.map (fun (_, s) -> record_tail ~n s) records in
  let plct_packed = packed && List.for_all (Array.for_all fits_half) tails in
  let plct_buf = Buffer.create 4096 in
  List.iter2
    (fun (idx, s) tail ->
      List.iter (add_word plct_buf) (record_head idx s);
      if plct_packed then add_packed plct_buf tail
      else Array.iter (add_word plct_buf) tail)
    records tails;
  let sections =
    [
      ("ROWA", words_section f.Structure.Engine.f_row_axis);
      ("ROWO", words_section f.Structure.Engine.f_row_off);
      ("LOWS", words_section f.Structure.Engine.f_lows);
      ("HIGH", words_section f.Structure.Engine.f_highs);
      ("SETW", words_section f.Structure.Engine.f_set_words);
      ("DOML", words_section f.Structure.Engine.f_dom_lo);
      ("DOMH", words_section f.Structure.Engine.f_dom_hi);
      ("BOXL", words_section f.Structure.Engine.f_box_lo);
      ("BOXH", words_section f.Structure.Engine.f_box_hi);
      ("BIND", words_section f.Structure.Engine.f_box_in_domain);
      ((if pool_packed then "POLH" else "POOL"), Buffer.contents pool_buf);
      ((if plct_packed then "PLCH" else "PLCT"), Buffer.contents plct_buf);
    ]
  in
  let name = circuit.Circuit.name in
  let name_len = String.length name in
  let nw = (name_len + 3) / 4 in
  let header_words = 13 + nw + (n_sections * 4) + 1 in
  let section_lens = List.map (fun (_, c) -> String.length c / 8) sections in
  let total_words = header_words + List.fold_left ( + ) 0 section_lens in
  let buf = Buffer.create (total_words * 8) in
  Buffer.add_string buf magic;
  List.iter (add_word buf)
    [
      format_version; total_words; header_words; n; Circuit.n_nets circuit;
      die_w; die_h; Array.length stored; Array.length pool;
      f.Structure.Engine.f_words_per_set; f.Structure.Engine.f_skipped_rows;
      name_len;
    ];
  for j = 0 to nw - 1 do
    let w = ref 0 in
    for b = 0 to 3 do
      let p = (4 * j) + b in
      if p < name_len then w := !w lor (Char.code name.[p] lsl (8 * b))
    done;
    add_word buf !w
  done;
  let off = ref header_words in
  List.iter2
    (fun (tag, contents) len ->
      add_word buf (tag_word tag);
      add_word buf !off;
      add_word buf len;
      add_word buf (crc_int (Persist.crc32 contents));
      off := !off + len)
    sections section_lens;
  add_word buf (crc_int (Persist.crc32 (Buffer.contents buf)));
  List.iter (fun (_, contents) -> Buffer.add_string buf contents) sections;
  Buffer.contents buf

let save ?packed structure ~path =
  try Persist.atomic_write ~path (to_string ?packed structure)
  with Sys_error msg -> raise (Error (Io_error msg))

(* Parsing *)

type header = {
  h_total : int;
  h_header_words : int;
  h_size_ok : bool;  (** header's total-words claim matches the file size *)
  h_n_blocks : int;
  h_n_nets : int;
  h_die_w : int;
  h_die_h : int;
  h_n_stored : int;
  h_n_pool : int;
  h_words_per_set : int;
  h_skipped : int;
  h_name : string;
  h_table : (string * int * int * int) list;  (** tag, off, len, crc *)
  h_crc_ok : bool;
}

(* The fixed header plus the section table; raises only when the
   header itself is unusable — damage past it is for the caller (and
   recorded in [h_size_ok] / [h_crc_ok], which salvage tolerates). *)
let parse_header (w : Persist.words) ~bytes =
  let dim = Bigarray.Array1.dim w in
  if dim < 13 then corrupt "header" "file too short (%d bytes)" bytes;
  if w.{0} <> magic_word then corrupt "header" "bad magic";
  let version = w.{1} in
  if version <> format_version then
    corrupt "header" "unsupported container version %d" version;
  let total = w.{2} and header_words = w.{3} in
  let name_len = w.{12} in
  if name_len < 0 || name_len > 4096 then
    corrupt "header" "implausible circuit-name length %d" name_len;
  let nw = (name_len + 3) / 4 in
  if header_words <> 13 + nw + (n_sections * 4) + 1 || header_words > dim then
    corrupt "header" "malformed header geometry";
  let name =
    String.init name_len (fun p ->
        Char.chr ((w.{13 + (p / 4)} lsr (8 * (p mod 4))) land 0xff))
  in
  let table_base = 13 + nw in
  let table =
    List.init n_sections (fun k ->
        let b = table_base + (4 * k) in
        (tag_string (w.{b} land 0xFFFF_FFFF), w.{b + 1}, w.{b + 2}, w.{b + 3}))
  in
  let crc_ok =
    w.{header_words - 1}
    = crc_int (Persist.crc32_words w ~pos:0 ~len:(header_words - 1))
  in
  {
    h_total = total;
    h_header_words = header_words;
    h_size_ok = total * 8 = bytes && total = dim;
    h_n_blocks = w.{4};
    h_n_nets = w.{5};
    h_die_w = w.{6};
    h_die_h = w.{7};
    h_n_stored = w.{8};
    h_n_pool = w.{9};
    h_words_per_set = w.{10};
    h_skipped = w.{11};
    h_name = name;
    h_table = table;
    h_crc_ok = crc_ok;
  }

let check_circuit h ~circuit =
  if
    h.h_n_blocks <> Circuit.n_blocks circuit
    || h.h_n_nets <> Circuit.n_nets circuit
    || h.h_name <> circuit.Circuit.name
  then
    raise
      (Error
         (Circuit_mismatch
            (Printf.sprintf "container was generated for %s (%d blocks), not %s"
               h.h_name h.h_n_blocks circuit.Circuit.name)))

let decode_record ~(pool : Persist.words) ~pool_packed ~n_pool ~n ~die_w
    ~die_h ~(plct : Persist.words) ~plct_packed k =
  let stride = if plct_packed then record_stride_packed n else record_stride n in
  let base = k * stride in
  (* The six head words are always plain; a packed tail holds two
     coordinates per word, low value first. *)
  let g =
    if plct_packed then fun i ->
      if i < 6 then plct.{base + i}
      else
        let j = i - 6 in
        (plct.{base + 6 + (j lsr 1)} lsr (32 * (j land 1))) land 0xFFFF_FFFF
    else fun i -> plct.{base + i}
  in
  let pool_at idx j =
    if pool_packed then
      (pool.{(idx * n) + (j lsr 1)} lsr (32 * (j land 1))) land 0xFFFF_FFFF
    else pool.{(idx * 2 * n) + j}
  in
  let pool_idx = g 0 in
  if pool_idx < 0 || pool_idx >= n_pool then
    invalid_arg (Printf.sprintf "pool index %d out of range" pool_idx);
  let coords =
    Array.init n (fun i -> (pool_at pool_idx (2 * i), pool_at pool_idx ((2 * i) + 1)))
  in
  let placement = Placement.make ~coords ~die_w ~die_h in
  let template_like = g 1 <> 0 in
  let word32 i =
    let v = g i in
    if v < 0 || v > 0xFFFF_FFFF then invalid_arg "cost word out of range";
    v
  in
  let avg_cost = float_of_words (word32 2) (word32 3) in
  let best_cost = float_of_words (word32 4) (word32 5) in
  let best_dims =
    Dims.make
      ~w:(Array.init n (fun i -> g (6 + (2 * i))))
      ~h:(Array.init n (fun i -> g (6 + (2 * i) + 1)))
  in
  let box_at o =
    let wiv =
      Array.init n (fun i -> Interval.make (g (o + (2 * i))) (g (o + (2 * n) + (2 * i))))
    in
    let hiv =
      Array.init n (fun i ->
          Interval.make (g (o + (2 * i) + 1)) (g (o + (2 * n) + (2 * i) + 1)))
    in
    Dimbox.make ~w:wiv ~h:hiv
  in
  let box = box_at (6 + (2 * n)) in
  let expansion = box_at (6 + (6 * n)) in
  Stored.make ~template_like ~placement ~box ~expansion ~avg_cost ~best_cost
    ~best_dims

let parse ~verify ~circuit (w : Persist.words) ~bytes =
  let h = parse_header w ~bytes in
  if not h.h_size_ok then
    corrupt "header" "size mismatch: header says %d words, file has %d bytes"
      h.h_total bytes;
  if not h.h_crc_ok then corrupt "header" "header checksum mismatch";
  check_circuit h ~circuit;
  if h.h_n_stored <= 0 then corrupt "header" "no stored placements";
  if h.h_n_pool <= 0 then corrupt "header" "empty coordinate pool";
  if h.h_skipped < 0 then corrupt "header" "negative skipped-row count";
  let off = ref h.h_header_words in
  List.iter2
    (fun etag (tag, o, l, _) ->
      if not (tag_matches etag tag) then
        corrupt etag "section tag %S out of order" tag;
      if o <> !off || l < 0 || o + l > h.h_total then
        corrupt etag "bad section bounds (%d + %d words)" o l;
      off := o + l)
    section_tags h.h_table;
  if !off <> h.h_total then corrupt "header" "sections do not cover the file";
  if verify then
    List.iter
      (fun (tag, o, l, c) ->
        if crc_int (Persist.crc32_words w ~pos:o ~len:l) <> c then
          corrupt tag "section checksum mismatch")
      h.h_table;
  let sec tag =
    let _, o, l, _ = List.find (fun (t, _, _, _) -> t = tag) h.h_table in
    Bigarray.Array1.sub w o l
  in
  let n = h.h_n_blocks in
  let pool_tag, po, pl, _ = List.nth h.h_table 10 in
  let plct_tag, ro, rl, _ = List.nth h.h_table 11 in
  let pool = Bigarray.Array1.sub w po pl
  and plct = Bigarray.Array1.sub w ro rl in
  let pool_packed = pool_tag = "POLH"
  and plct_packed = plct_tag = "PLCH" in
  if Bigarray.Array1.dim pool <> h.h_n_pool * (if pool_packed then n else 2 * n)
  then corrupt pool_tag "pool length disagrees with the header";
  let stride = if plct_packed then record_stride_packed n else record_stride n in
  if Bigarray.Array1.dim plct <> (h.h_n_stored + 1) * stride then
    corrupt plct_tag "record-table length disagrees with the header";
  let record k =
    match
      decode_record ~pool ~pool_packed ~n_pool:h.h_n_pool ~n ~die_w:h.h_die_w
        ~die_h:h.h_die_h ~plct ~plct_packed k
    with
    | s -> s
    | exception Invalid_argument msg -> corrupt plct_tag "record %d: %s" k msg
  in
  let stored = Array.init h.h_n_stored record in
  let backup = record h.h_n_stored in
  let flat =
    {
      Structure.Engine.f_capacity = h.h_n_stored;
      f_words_per_set = h.h_words_per_set;
      f_skipped_rows = h.h_skipped;
      f_row_axis = sec "ROWA";
      f_row_off = sec "ROWO";
      f_lows = sec "LOWS";
      f_highs = sec "HIGH";
      f_set_words = sec "SETW";
      f_dom_lo = sec "DOML";
      f_dom_hi = sec "DOMH";
      f_box_lo = sec "BOXL";
      f_box_hi = sec "BOXH";
      f_box_in_domain = sec "BIND";
    }
  in
  let engine =
    match
      Structure.Engine.of_flat ~circuit ~stored ~backup
        ~die:(h.h_die_w, h.h_die_h) flat
    with
    | e -> e
    | exception Invalid_argument msg -> corrupt "engine" "%s" msg
  in
  {
    engine;
    n_stored = h.h_n_stored;
    n_pool = h.h_n_pool;
    bytes;
    sections =
      List.map
        (fun (tag, o, l, _) -> { tag; off_words = o; len_words = l })
        h.h_table;
    record_off_words = ro;
    record_stride_words = stride;
  }

let words_of_string raw =
  let nwords = String.length raw / 8 in
  let b = Bigarray.Array1.create Bigarray.int Bigarray.c_layout nwords in
  for i = 0 to nwords - 1 do
    (* [Int64.to_int] drops bit 63 exactly like the int lens over a
       mapped file, so in-memory and mapped parses agree on any input *)
    b.{i} <- Int64.to_int (String.get_int64_le raw (i * 8))
  done;
  b

let of_string ?(verify = true) ~circuit raw =
  parse ~verify ~circuit (words_of_string raw) ~bytes:(String.length raw)

let load ?(verify = true) ~circuit path =
  let w, bytes =
    try Persist.map_words ~path
    with Sys_error msg -> raise (Error (Io_error msg))
  in
  parse ~verify ~circuit w ~bytes

(* Salvage *)

type recovered = {
  r_stored : Stored.t list;
  r_backup : Stored.t option;
  r_claimed : int;
  r_crc_ok : bool;
}

let salvage_parts ~circuit (w : Persist.words) ~bytes =
  match parse_header w ~bytes with
  | exception Error e -> Result.Error e
  | h -> (
    match check_circuit h ~circuit with
    | exception Error e -> Result.Error e
    | () ->
      let dim = Bigarray.Array1.dim w in
      let n = h.h_n_blocks in
      (* Only the pool and record table matter here: salvage recompiles
         from placements, so the engine sections may be arbitrary
         garbage.  Bound every count by what the file actually holds
         rather than trusting the header. *)
      let find tags =
        List.find_opt
          (fun (t, o, l, _) ->
            List.mem t tags && o >= 0 && l >= 0 && o + l <= dim)
          h.h_table
      in
      (match (find [ "POOL"; "POLH" ], find [ "PLCT"; "PLCH" ]) with
      | Some (ptag, po, pl, _), Some (rtag, ro, rl, _) when n > 0 ->
        let pool = Bigarray.Array1.sub w po pl in
        let plct = Bigarray.Array1.sub w ro rl in
        let pool_packed = ptag = "POLH"
        and plct_packed = rtag = "PLCH" in
        let crc_ok =
          h.h_crc_ok && h.h_size_ok
          && List.for_all
               (fun (_, o, l, c) ->
                 o >= 0 && l >= 0 && o + l <= dim
                 && crc_int (Persist.crc32_words w ~pos:o ~len:l) = c)
               h.h_table
        in
        let n_pool =
          min h.h_n_pool (pl / (if pool_packed then n else 2 * n))
        in
        let stride =
          if plct_packed then record_stride_packed n else record_stride n
        in
        let n_records = min (h.h_n_stored + 1) (rl / stride) in
        let record k =
          match
            decode_record ~pool ~pool_packed ~n_pool ~n ~die_w:h.h_die_w
              ~die_h:h.h_die_h ~plct ~plct_packed k
          with
          | s -> Some s
          | exception Invalid_argument _ -> None
        in
        let stored = ref [] in
        for k = min h.h_n_stored n_records - 1 downto 0 do
          match record k with Some s -> stored := s :: !stored | None -> ()
        done;
        let backup =
          if n_records > h.h_n_stored then record h.h_n_stored else None
        in
        Result.Ok
          {
            r_stored = !stored;
            r_backup = backup;
            r_claimed = h.h_n_stored;
            r_crc_ok = crc_ok;
          }
      | _ ->
        Result.Error
          (Corrupt
             {
               section = "header";
               reason = "no recoverable placement records";
             })))

open Mps_rng
open Mps_geometry
open Mps_placement
open Mps_anneal

type shrink_rule =
  | Cost_ratio
  | Fixed of float
  | No_shrink

type config = {
  iterations : int;
  perturb_fraction : float;
  schedule : Schedule.t;
  weights : Mps_cost.Cost.weights;
  shrink : shrink_rule;
}

let default_config =
  {
    iterations = 400;
    perturb_fraction = 0.3;
    schedule = Schedule.geometric ~t0:200.0 ~alpha:0.97 ~t_min:1e-3 ();
    weights = Mps_cost.Cost.default_weights;
    shrink = Cost_ratio;
  }

type result = {
  box : Dimbox.t;
  avg_cost : float;
  best_cost : float;
  best_dims : Dims.t;
  evaluations : int;
}

let cost_of_dims ~weights circuit placement dims =
  let rects = Placement.rects placement dims in
  Mps_cost.Cost.total ~weights circuit ~die_w:placement.Placement.die_w
    ~die_h:placement.Placement.die_h rects

let shrink_interval ~factor iv best =
  let half =
    int_of_float (ceil (factor *. float_of_int (Interval.length iv) /. 2.0))
  in
  let lo = max (Interval.lo iv) (best - half) in
  let hi = min (Interval.hi iv) (best + half) in
  Interval.make (min lo best) (max hi best)

let shrink_box ~rule ~box ~best_dims ~avg_cost ~best_cost =
  match rule with
  | No_shrink -> box
  | Cost_ratio | Fixed _ ->
    let factor =
      match rule with
      | Fixed f ->
        if f <= 0.0 || f > 1.0 then invalid_arg "Bdio.shrink_box: factor must be in (0,1]";
        f
      | Cost_ratio ->
        if avg_cost <= 0.0 then 1.0
        else Float.min 1.0 (Float.max 0.0 (best_cost /. avg_cost))
      | No_shrink -> assert false
    in
    let n = Dimbox.n_blocks box in
    let w =
      Array.init n (fun i ->
          shrink_interval ~factor (Dimbox.w_interval box i) (Dims.width best_dims i))
    in
    let h =
      Array.init n (fun i ->
          shrink_interval ~factor (Dimbox.h_interval box i) (Dims.height best_dims i))
    in
    Dimbox.make ~w ~h

(* All-float accumulator record: stored flat, so per-move updates
   allocate nothing (a [float ref] boxes a fresh float per [:=]). *)
type totals = { mutable cur : float }

(* The Dimensions Selector runs on one mutable Mps_cost.Incremental
   evaluator (the arena's, when given): each move redraws a random
   subset of the 2N axes in place (resize deltas, no Dims copies), and
   is committed or undone whole.  The axis intervals are compiled once
   per run into a Move_lut over the 2N axes (widths then heights), so
   a value redraw is two array loads and an unchecked uniform draw. *)
let optimize ?(config = default_config) ?arena ~rng circuit placement ~box =
  if config.iterations < 1 then invalid_arg "Bdio.optimize: need at least one iteration";
  let initial = Dimbox.random_dims rng box in
  let n = Dims.n_blocks initial in
  let n_axes = 2 * n in
  let die_w = placement.Placement.die_w and die_h = placement.Placement.die_h in
  let init_rects =
    match arena with
    | Some a ->
      let buf = Arena.rect_buffer a ~slot:0 n in
      Placement.rects_into buf placement initial;
      buf
    | None -> Placement.rects placement initial
  in
  let eng =
    match arena with
    | Some a -> Arena.engine a ~weights:config.weights circuit ~die_w ~die_h init_rects
    | None -> Mps_cost.Incremental.create ~weights:config.weights circuit ~die_w ~die_h init_rects
  in
  let lut =
    Move_lut.make ~n:n_axes
      ~lo:(fun a ->
        Interval.lo
          (if a < n then Dimbox.w_interval box a else Dimbox.h_interval box (a - n)))
      ~hi:(fun a ->
        Interval.hi
          (if a < n then Dimbox.w_interval box a else Dimbox.h_interval box (a - n)))
  in
  let k =
    max 1 (int_of_float (ceil (config.perturb_fraction *. float_of_int n_axes)))
  in
  if k > n_axes then
    invalid_arg "Bdio.optimize: perturb_fraction selects more axes than exist";
  (* Preallocated proposal buffers: the axes hit this move and their
     redrawn values, overwritten in place by [propose]; [perm] backs
     the distinct-axis sampling. *)
  let mv_axes = Array.make k 0 and mv_vals = Array.make k 0 in
  let perm =
    match arena with
    | Some a -> Arena.int_buffer a ~slot:0 n_axes
    | None -> Array.make n_axes 0
  in
  let propose rng =
    (* partial Fisher-Yates over a reinitialized identity permutation:
       draw-for-draw identical to [Rng.sample_distinct], without its
       per-move array-plus-list allocation *)
    for a = 0 to n_axes - 1 do
      Array.unsafe_set perm a a
    done;
    for i = 0 to k - 1 do
      let j = i + Rng.unsafe_int rng (n_axes - i) in
      let tmp = Array.unsafe_get perm i in
      Array.unsafe_set perm i (Array.unsafe_get perm j);
      Array.unsafe_set perm j tmp
    done;
    for slot = 0 to k - 1 do
      let axis = Array.unsafe_get perm slot in
      mv_axes.(slot) <- axis;
      mv_vals.(slot) <- Move_lut.draw lut rng axis
    done
  in
  let totals = { cur = Mps_cost.Incremental.total eng } in
  (* A move redrawing more than ~n/4 axes is cheaper as one staged
     batch with a single cache rebuild than as per-axis O(n) repairs. *)
  let use_batch = 4 * k > n in
  let delta_cost () =
    if use_batch then Mps_cost.Incremental.begin_batch eng;
    for slot = 0 to k - 1 do
      let axis = mv_axes.(slot) and v = mv_vals.(slot) in
      if axis < n then
        Mps_cost.Incremental.resize_block eng axis ~w:v
          ~h:(Mps_cost.Incremental.block_h eng axis)
      else
        Mps_cost.Incremental.resize_block eng (axis - n)
          ~w:(Mps_cost.Incremental.block_w eng (axis - n))
          ~h:v
    done;
    if use_batch then Mps_cost.Incremental.end_batch eng;
    Mps_cost.Incremental.total eng -. totals.cur
  in
  let commit () =
    Mps_cost.Incremental.commit eng;
    totals.cur <- Mps_cost.Incremental.total eng
  in
  let reject () = Mps_cost.Incremental.undo eng in
  let best_w = Array.init n (Dims.width initial) in
  let best_h = Array.init n (Dims.height initial) in
  let snapshot_best () =
    for i = 0 to n - 1 do
      best_w.(i) <- Mps_cost.Incremental.block_w eng i;
      best_h.(i) <- Mps_cost.Incremental.block_h eng i
    done
  in
  let sa =
    Annealer.run_moves
      ~on_improve:(fun ~cost:_ ~step:_ -> snapshot_best ())
      ~rng ~schedule:config.schedule ~iterations:config.iterations
      ~initial_cost:totals.cur
      { Annealer.propose; delta_cost; commit; reject }
  in
  let best_dims = Dims.make ~w:best_w ~h:best_h in
  (* the reported best is a fresh full evaluation (exact, no delta
     drift); the average keeps the annealer's bookkeeping, floored so
     the [avg_cost >= best_cost] contract survives float drift *)
  let best_cost = cost_of_dims ~weights:config.weights circuit placement best_dims in
  let avg_cost = Float.max sa.Annealer.mv_average_cost best_cost in
  let reduced = shrink_box ~rule:config.shrink ~box ~best_dims ~avg_cost ~best_cost in
  {
    box = reduced;
    avg_cost;
    best_cost;
    best_dims;
    evaluations = sa.Annealer.mv_evaluations;
  }

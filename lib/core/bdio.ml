open Mps_rng
open Mps_geometry
open Mps_placement
open Mps_anneal

type shrink_rule =
  | Cost_ratio
  | Fixed of float
  | No_shrink

type config = {
  iterations : int;
  perturb_fraction : float;
  schedule : Schedule.t;
  weights : Mps_cost.Cost.weights;
  shrink : shrink_rule;
}

let default_config =
  {
    iterations = 400;
    perturb_fraction = 0.3;
    schedule = Schedule.geometric ~t0:200.0 ~alpha:0.97 ~t_min:1e-3 ();
    weights = Mps_cost.Cost.default_weights;
    shrink = Cost_ratio;
  }

type result = {
  box : Dimbox.t;
  avg_cost : float;
  best_cost : float;
  best_dims : Dims.t;
  evaluations : int;
}

let cost_of_dims ~weights circuit placement dims =
  let rects = Placement.rects placement dims in
  Mps_cost.Cost.total ~weights circuit ~die_w:placement.Placement.die_w
    ~die_h:placement.Placement.die_h rects

let shrink_interval ~factor iv best =
  let half =
    int_of_float (ceil (factor *. float_of_int (Interval.length iv) /. 2.0))
  in
  let lo = max (Interval.lo iv) (best - half) in
  let hi = min (Interval.hi iv) (best + half) in
  Interval.make (min lo best) (max hi best)

let shrink_box ~rule ~box ~best_dims ~avg_cost ~best_cost =
  match rule with
  | No_shrink -> box
  | Cost_ratio | Fixed _ ->
    let factor =
      match rule with
      | Fixed f ->
        if f <= 0.0 || f > 1.0 then invalid_arg "Bdio.shrink_box: factor must be in (0,1]";
        f
      | Cost_ratio ->
        if avg_cost <= 0.0 then 1.0
        else Float.min 1.0 (Float.max 0.0 (best_cost /. avg_cost))
      | No_shrink -> assert false
    in
    let n = Dimbox.n_blocks box in
    let w =
      Array.init n (fun i ->
          shrink_interval ~factor (Dimbox.w_interval box i) (Dims.width best_dims i))
    in
    let h =
      Array.init n (fun i ->
          shrink_interval ~factor (Dimbox.h_interval box i) (Dims.height best_dims i))
    in
    Dimbox.make ~w ~h

(* The Dimensions Selector runs on one mutable Mps_cost.Incremental
   evaluator: each move redraws a random subset of the 2N axes in place
   (resize deltas, no Dims copies), and is committed or undone whole. *)
let optimize ?(config = default_config) ~rng circuit placement ~box =
  if config.iterations < 1 then invalid_arg "Bdio.optimize: need at least one iteration";
  let initial = Dimbox.random_dims rng box in
  let n = Dims.n_blocks initial in
  let n_axes = 2 * n in
  let eng =
    Mps_cost.Incremental.create ~weights:config.weights circuit
      ~die_w:placement.Placement.die_w ~die_h:placement.Placement.die_h
      (Placement.rects placement initial)
  in
  let k =
    max 1 (int_of_float (ceil (config.perturb_fraction *. float_of_int n_axes)))
  in
  (* Preallocated proposal buffers: the axes hit this move and their
     redrawn values, overwritten in place by [propose]. *)
  let mv_axes = Array.make k 0 and mv_vals = Array.make k 0 in
  let propose rng =
    let victims = Rng.sample_distinct rng ~k ~n:n_axes in
    List.iteri
      (fun slot axis ->
        mv_axes.(slot) <- axis;
        mv_vals.(slot) <-
          (if axis < n then
             let iv = Dimbox.w_interval box axis in
             Rng.int_in rng (Interval.lo iv) (Interval.hi iv)
           else
             let iv = Dimbox.h_interval box (axis - n) in
             Rng.int_in rng (Interval.lo iv) (Interval.hi iv)))
      victims
  in
  let current_total = ref (Mps_cost.Incremental.total eng) in
  (* A move redrawing more than ~n/4 axes is cheaper as one staged
     batch with a single cache rebuild than as per-axis O(n) repairs. *)
  let use_batch = 4 * k > n in
  let delta_cost () =
    if use_batch then Mps_cost.Incremental.begin_batch eng;
    for slot = 0 to k - 1 do
      let axis = mv_axes.(slot) and v = mv_vals.(slot) in
      if axis < n then
        Mps_cost.Incremental.resize_block eng axis ~w:v
          ~h:(Mps_cost.Incremental.block_h eng axis)
      else
        Mps_cost.Incremental.resize_block eng (axis - n)
          ~w:(Mps_cost.Incremental.block_w eng (axis - n))
          ~h:v
    done;
    if use_batch then Mps_cost.Incremental.end_batch eng;
    Mps_cost.Incremental.total eng -. !current_total
  in
  let commit () =
    Mps_cost.Incremental.commit eng;
    current_total := Mps_cost.Incremental.total eng
  in
  let reject () = Mps_cost.Incremental.undo eng in
  let best_w = Array.init n (Dims.width initial) in
  let best_h = Array.init n (Dims.height initial) in
  let snapshot_best () =
    for i = 0 to n - 1 do
      best_w.(i) <- Mps_cost.Incremental.block_w eng i;
      best_h.(i) <- Mps_cost.Incremental.block_h eng i
    done
  in
  let sa =
    Annealer.run_moves
      ~on_improve:(fun ~cost:_ ~step:_ -> snapshot_best ())
      ~rng ~schedule:config.schedule ~iterations:config.iterations
      ~initial_cost:!current_total
      { Annealer.propose; delta_cost; commit; reject }
  in
  let best_dims = Dims.make ~w:best_w ~h:best_h in
  (* the reported best is a fresh full evaluation (exact, no delta
     drift); the average keeps the annealer's bookkeeping, floored so
     the [avg_cost >= best_cost] contract survives float drift *)
  let best_cost = cost_of_dims ~weights:config.weights circuit placement best_dims in
  let avg_cost = Float.max sa.Annealer.mv_average_cost best_cost in
  let reduced = shrink_box ~rule:config.shrink ~box ~best_dims ~avg_cost ~best_cost in
  {
    box = reduced;
    avg_cost;
    best_cost;
    best_dims;
    evaluations = sa.Annealer.mv_evaluations;
  }

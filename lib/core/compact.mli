(** Structure compaction: dedupe, merge and prune stored placements
    without changing what the structure answers (DESIGN.md §12).

    Generation over-fragments: Resolve Overlaps shrinks boxes one axis
    at a time, leaving grids of adjacent boxes that carry the same
    placement, and the backup template's territory pieces repeat the
    backup's coordinates once per piece.  Compaction runs four
    answer-preserving rewrites to a fixpoint:

    - {b Dedupe}: placements with bit-identical coordinates share one
      coordinate array, so the MPSZ pool ({!Zcodec}) stores it once.
      Purely representational.
    - {b Merge}: two records with the same coordinates, template flag
      and expansion box whose validity boxes are adjacent along exactly
      one axis (equal on every other) fuse into one record over the
      hull — which equals the union, so coverage and instantiation are
      unchanged; the cheaper best cost survives and the average cost is
      volume-weighted.
    - {b Absorb} (dominated-box pruning): a box adjacent to a
      non-template neighbor with strictly cheaper best cost, and lying
      inside that neighbor's expansion box, is annexed by it.  The
      absorbed territory keeps a valid answer (legality inside the
      expansion box is the Placement Expansion guarantee) and moves to
      the {e lower} of the two per-placement cost curves, preserving
      the Figure 6 lower-envelope property.
    - {b Drop}: a template piece that repeats the backup's coordinates
      and whose box misses its expansion box entirely answers every
      query by greedy re-packing — exactly what the fallback path does
      — so the record is dead weight and is removed.

    The compacted structure is rebuilt through
    {!Structure.of_placements} (re-proving box disjointness) and then
    re-audited; if the audit comes back worse than the original's, the
    rewrite is discarded and the original returned ([reverted]). *)

type stats = {
  records_before : int;  (** Stored records (backup excluded). *)
  records_after : int;
  deduped : int;  (** Records rebound to a shared coordinate array. *)
  merged : int;  (** Records removed by equal-placement merges. *)
  absorbed : int;  (** Records removed by dominated-box pruning. *)
  dropped : int;  (** Dead template pieces removed. *)
  bytes_before : int;
      (** MPSZ container size before compaction (plain layout, what
          [mpsgen pack] writes). *)
  bytes_after : int;
      (** … and after, in the half-packed archival layout compaction
          writes ({!Zcodec.to_string} [~packed:true]); 0 when
          [measure] is false. *)
  reverted : bool;  (** The post-audit was worse; original kept. *)
}

val stats_to_string : stats -> string
(** One-line summary for CLI output. *)

val run : ?audit:bool -> ?measure:bool -> Structure.t -> Structure.t * stats
(** Compact to a fixpoint.  [audit] (default [true]) re-audits the
    result against the original and reverts on regression; [measure]
    (default [true]) serializes both forms to report container bytes —
    skip it when only the structure is wanted. *)

(** Mutable multi-placement structure under construction.

    Holds the stored placements and the per-block interval rows, and
    implements the paper's Resolve Overlaps + Store Placement routines
    (§3.1.3): before a candidate placement enters the structure, its
    dimension box is made disjoint from every stored box — the lower
    average-cost placement keeps the contested region — so that eq. 5
    ([|M(V)| <= 1]) holds by construction.  Shrinking can fork a
    placement in two when its interval strictly contains the other's on
    the chosen axis, and drops a placement whose box is entirely
    contained in the other's. *)

open Mps_geometry
open Mps_netlist

type t

val create : ?weights:Mps_cost.Cost.weights -> Circuit.t -> t
(** [weights] (default {!Mps_cost.Cost.default_weights}) are the cost
    weights the stored quality fields were computed under; when Resolve
    Overlaps shrinks a box and the clamp moves a placement's
    [best_dims], its [best_cost] is recomputed under these weights so
    the (vector, cost) pair stays re-verifiable ({!Audit}). *)

val circuit : t -> Circuit.t

val bounds : t -> Dimbox.t
(** The designer dimension search space. *)

val n_live : t -> int
(** Number of placements currently stored. *)

val live : t -> (int * Stored.t) list
(** Stored placements with their indices, ascending. *)

val get : t -> int -> Stored.t option
(** [None] for removed (shrunk-away) or out-of-range indices. *)

val overlapping : t -> Dimbox.t -> int list
(** Indices of stored placements whose box overlaps the given box,
    computed through the rows' range queries (the paper's [I] set). *)

val overlapping_any : t -> Dimbox.t -> int option
(** Smallest id in {!overlapping}, without materializing the list: the
    Resolve Overlaps loop peels one conflict at a time, and this query
    runs once per work-queue item (scratch bitsets instead of tree-set
    unions per axis). *)

val w_row : t -> int -> Row.t
val h_row : t -> int -> Row.t

(** Outcome of shrinking a victim box against an overlapping box. *)
type shrink_outcome =
  | Dropped  (** Victim contained in the other box on every axis. *)
  | Shrunk of Dimbox.t
  | Forked of Dimbox.t * Dimbox.t

val shrink_box_against : victim:Dimbox.t -> other:Dimbox.t -> shrink_outcome
(** Resolve one overlap: on the overlapping axis with the smallest
    overlap where the victim is not contained in the other interval,
    cut the victim's interval back to the side(s) of the other's.
    Requires the boxes to overlap.  The result boxes are disjoint from
    [other] and contained in [victim]. *)

val resolve_and_store : t -> Stored.t -> int list
(** The candidate placement enters the structure after all overlaps are
    resolved; returns the indices it was stored under ([] when it was
    dropped, two or more when forked).  Stored placements with a higher
    average cost than the candidate — and template-like backup
    territory unconditionally — are shrunk (possibly forked or removed)
    instead. *)

val coverage : t -> float
(** Exact covered fraction of the dimension search space: the sum of
    the live boxes' volume fractions (valid because boxes are
    disjoint).  The explorer's stopping criterion (§3.1.4). *)

val boxes_disjoint : t -> bool
(** Invariant check: every pair of live boxes is disjoint. *)

val rows_consistent : t -> bool
(** Invariant check: the rows map exactly the live boxes. *)

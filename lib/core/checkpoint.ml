open Mps_netlist
open Mps_placement

let magic = "mps-checkpoint v1"

type t = {
  step : int;
  dropped : int;
  current : Placement.t;
  current_cost : float;
  rng : Mps_rng.Rng.t;
  structure : Structure.t;
}

let to_string cp =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "step %d" cp.step;
  line "dropped %d" cp.dropped;
  line "current_cost %.17g" cp.current_cost;
  line "current %s"
    (String.concat " "
       (List.map
          (fun (x, y) -> Printf.sprintf "%d %d" x y)
          (Array.to_list cp.current.Placement.coords)));
  line "rng %s" (Mps_rng.Rng.to_string cp.rng);
  Buffer.add_string buf (Codec.to_string cp.structure);
  let payload = Buffer.contents buf in
  Printf.sprintf "%s\nchecksum %s\n%s" magic (Persist.crc32_hex payload) payload

let corrupt lineno fmt =
  Printf.ksprintf
    (fun reason -> raise (Codec.Error (Codec.Corrupt { lineno; reason })))
    fmt

(* [take_line s from] returns the line starting at byte [from] and the
   offset just past its newline. *)
let take_line s from =
  let len = String.length s in
  if from >= len then None
  else
    match String.index_from_opt s from '\n' with
    | Some i -> Some (String.sub s from (i - from), i + 1)
    | None -> Some (String.sub s from (len - from), len)

let field ~lineno ~prefix line =
  let plen = String.length prefix in
  if String.length line >= plen && String.sub line 0 plen = prefix then
    String.trim (String.sub line plen (String.length line - plen))
  else corrupt lineno "expected %S, got %S" prefix line

let of_string ~circuit raw =
  (* header + checksum over the rest, mirroring the codec's framing *)
  let l1, o1 =
    match take_line raw 0 with Some v -> v | None -> corrupt 1 "empty checkpoint"
  in
  if l1 <> magic then corrupt 1 "bad header %S" l1;
  let l2, o2 =
    match take_line raw o1 with Some v -> v | None -> corrupt 2 "missing checksum line"
  in
  let expected = field ~lineno:2 ~prefix:"checksum " l2 in
  let payload = String.sub raw o2 (String.length raw - o2) in
  let actual = Persist.crc32_hex payload in
  if String.lowercase_ascii expected <> actual then
    corrupt 2 "checksum mismatch: header %s, payload %s" expected actual;
  let get lineno prefix from =
    match take_line payload from with
    | Some (l, next) -> (field ~lineno ~prefix l, next)
    | None -> corrupt lineno "unexpected end of checkpoint"
  in
  let step_s, o = get 3 "step " 0 in
  let dropped_s, o = get 4 "dropped " o in
  let cost_s, o = get 5 "current_cost " o in
  let coords_s, o = get 6 "current " o in
  let rng_s, o = get 7 "rng " o in
  let int_field lineno s =
    match int_of_string_opt s with
    | Some v when v >= 0 -> v
    | _ -> corrupt lineno "expected a non-negative integer, got %S" s
  in
  let step = int_field 3 step_s in
  let dropped = int_field 4 dropped_s in
  let current_cost =
    match float_of_string_opt cost_s with
    | Some v -> v
    | None -> corrupt 5 "expected a float, got %S" cost_s
  in
  let rng =
    match Mps_rng.Rng.of_string rng_s with
    | Some r -> r
    | None -> corrupt 7 "unreadable rng state"
  in
  let structure =
    Codec.of_string ~circuit (String.sub payload o (String.length payload - o))
  in
  let die_w, die_h = Structure.die structure in
  let coords =
    let ints =
      List.filter_map
        (fun t -> if t = "" then None else Some t)
        (String.split_on_char ' ' coords_s)
      |> List.map (fun t ->
             match int_of_string_opt t with
             | Some v -> v
             | None -> corrupt 6 "expected an integer, got %S" t)
    in
    let rec pair_up = function
      | [] -> []
      | a :: b :: rest -> (a, b) :: pair_up rest
      | [ _ ] -> corrupt 6 "odd number of coordinates"
    in
    Array.of_list (pair_up ints)
  in
  if Array.length coords <> Circuit.n_blocks circuit then
    corrupt 6 "expected %d coordinates" (Circuit.n_blocks circuit);
  let current =
    match Placement.make ~coords ~die_w ~die_h with
    | p -> p
    | exception Invalid_argument msg -> corrupt 6 "bad current placement: %s" msg
  in
  { step; dropped; current; current_cost; rng; structure }

let save cp ~path =
  try Persist.atomic_write ~path (to_string cp)
  with Sys_error msg -> raise (Codec.Error (Codec.Io_error msg))

let load ~circuit ~path =
  let raw =
    try Persist.read_file ~path
    with Sys_error msg -> raise (Codec.Error (Codec.Io_error msg))
  in
  of_string ~circuit raw

open Mps_netlist
open Mps_placement

let magic = "mps-checkpoint v1"

type walk = {
  w_step : int;
  w_cost : float;
  w_current : Placement.t;
  w_rng : Mps_rng.Rng.t;
}

type par = { restarts : int; chunk : int; walks : walk array }

type t = {
  step : int;
  dropped : int;
  current : Placement.t;
  current_cost : float;
  rng : Mps_rng.Rng.t;
  par : par option;
  structure : Structure.t;
}

let coords_line coords =
  String.concat " "
    (List.map (fun (x, y) -> Printf.sprintf "%d %d" x y) (Array.to_list coords))

let to_string cp =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "step %d" cp.step;
  line "dropped %d" cp.dropped;
  line "current_cost %.17g" cp.current_cost;
  line "current %s" (coords_line cp.current.Placement.coords);
  line "rng %s" (Mps_rng.Rng.to_string cp.rng);
  (match cp.par with
  | None -> ()
  | Some { restarts; chunk; walks } ->
      line "par %d %d" restarts chunk;
      Array.iter
        (fun w ->
          line "walk %d %.17g %s" w.w_step w.w_cost
            (coords_line w.w_current.Placement.coords);
          line "walk_rng %s" (Mps_rng.Rng.to_string w.w_rng))
        walks);
  Buffer.add_string buf (Codec.to_string cp.structure);
  let payload = Buffer.contents buf in
  Printf.sprintf "%s\nchecksum %s\n%s" magic (Persist.crc32_hex payload) payload

let corrupt lineno fmt =
  Printf.ksprintf
    (fun reason -> raise (Codec.Error (Codec.Corrupt { lineno; reason })))
    fmt

(* [take_line s from] returns the line starting at byte [from] and the
   offset just past its newline. *)
let take_line s from =
  let len = String.length s in
  if from >= len then None
  else
    match String.index_from_opt s from '\n' with
    | Some i -> Some (String.sub s from (i - from), i + 1)
    | None -> Some (String.sub s from (len - from), len)

let field ~lineno ~prefix line =
  let plen = String.length prefix in
  if String.length line >= plen && String.sub line 0 plen = prefix then
    String.trim (String.sub line plen (String.length line - plen))
  else corrupt lineno "expected %S, got %S" prefix line

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let parse_coords ~lineno ~circuit s =
  let ints =
    List.filter_map
      (fun t -> if t = "" then None else Some t)
      (String.split_on_char ' ' s)
    |> List.map (fun t ->
           match int_of_string_opt t with
           | Some v -> v
           | None -> corrupt lineno "expected an integer, got %S" t)
  in
  let rec pair_up = function
    | [] -> []
    | a :: b :: rest -> (a, b) :: pair_up rest
    | [ _ ] -> corrupt lineno "odd number of coordinates"
  in
  let coords = Array.of_list (pair_up ints) in
  if Array.length coords <> Circuit.n_blocks circuit then
    corrupt lineno "expected %d coordinates" (Circuit.n_blocks circuit);
  coords

let of_string ~circuit raw =
  (* header + checksum over the rest, mirroring the codec's framing *)
  let l1, o1 =
    match take_line raw 0 with Some v -> v | None -> corrupt 1 "empty checkpoint"
  in
  if l1 <> magic then corrupt 1 "bad header %S" l1;
  let l2, o2 =
    match take_line raw o1 with Some v -> v | None -> corrupt 2 "missing checksum line"
  in
  let expected = field ~lineno:2 ~prefix:"checksum " l2 in
  let payload = String.sub raw o2 (String.length raw - o2) in
  let actual = Persist.crc32_hex payload in
  if String.lowercase_ascii expected <> actual then
    corrupt 2 "checksum mismatch: header %s, payload %s" expected actual;
  let get lineno prefix from =
    match take_line payload from with
    | Some (l, next) -> (field ~lineno ~prefix l, next)
    | None -> corrupt lineno "unexpected end of checkpoint"
  in
  let step_s, o = get 3 "step " 0 in
  let dropped_s, o = get 4 "dropped " o in
  let cost_s, o = get 5 "current_cost " o in
  let coords_s, o = get 6 "current " o in
  let rng_s, o = get 7 "rng " o in
  let int_field lineno s =
    match int_of_string_opt s with
    | Some v when v >= 0 -> v
    | _ -> corrupt lineno "expected a non-negative integer, got %S" s
  in
  let float_field lineno s =
    match float_of_string_opt s with
    | Some v -> v
    | None -> corrupt lineno "expected a float, got %S" s
  in
  let rng_field lineno s =
    match Mps_rng.Rng.of_string s with
    | Some r -> r
    | None -> corrupt lineno "unreadable rng state"
  in
  let step = int_field 3 step_s in
  let dropped = int_field 4 dropped_s in
  let current_cost = float_field 5 cost_s in
  let rng = rng_field 7 rng_s in
  (* optional parallel-walk section: peek before the embedded document *)
  let raw_par, o =
    match take_line payload o with
    | Some (l, next) when starts_with ~prefix:"par " l ->
        let spec = field ~lineno:8 ~prefix:"par " l in
        let restarts, chunk =
          match String.split_on_char ' ' spec with
          | [ r; c ] -> (int_field 8 r, int_field 8 c)
          | _ -> corrupt 8 "expected 'par <restarts> <chunk>', got %S" l
        in
        if restarts < 1 || chunk < 1 then
          corrupt 8 "par section needs restarts >= 1 and chunk >= 1";
        let o = ref next in
        let walks =
          Array.init restarts (fun w ->
              let lineno = 9 + (2 * w) in
              let walk_s, next = get lineno "walk " !o in
              let wstep, wcost, wcoords =
                match String.index_opt walk_s ' ' with
                | None -> corrupt lineno "expected 'walk <step> <cost> <coords>'"
                | Some i -> (
                    let rest = String.sub walk_s (i + 1) (String.length walk_s - i - 1) in
                    match String.index_opt rest ' ' with
                    | None -> corrupt lineno "expected 'walk <step> <cost> <coords>'"
                    | Some j ->
                        ( int_field lineno (String.sub walk_s 0 i),
                          float_field lineno (String.sub rest 0 j),
                          String.sub rest (j + 1) (String.length rest - j - 1) ))
              in
              let rng_s, next = get (lineno + 1) "walk_rng " next in
              o := next;
              (wstep, wcost, wcoords, rng_field (lineno + 1) rng_s))
        in
        (Some (restarts, chunk, walks), !o)
    | _ -> (None, o)
  in
  let structure =
    Codec.of_string ~circuit (String.sub payload o (String.length payload - o))
  in
  let die_w, die_h = Structure.die structure in
  let placement_of_coords lineno coords_s =
    let coords = parse_coords ~lineno ~circuit coords_s in
    match Placement.make ~coords ~die_w ~die_h with
    | p -> p
    | exception Invalid_argument msg -> corrupt lineno "bad placement: %s" msg
  in
  let current = placement_of_coords 6 coords_s in
  let par =
    Option.map
      (fun (restarts, chunk, raw_walks) ->
        let walks =
          Array.mapi
            (fun w (wstep, wcost, wcoords, wrng) ->
              {
                w_step = wstep;
                w_cost = wcost;
                w_current = placement_of_coords (9 + (2 * w)) wcoords;
                w_rng = wrng;
              })
            raw_walks
        in
        { restarts; chunk; walks })
      raw_par
  in
  { step; dropped; current; current_cost; rng; par; structure }

let save cp ~path =
  try Persist.atomic_write ~path (to_string cp)
  with Sys_error msg -> raise (Codec.Error (Codec.Io_error msg))

let load ~circuit ~path =
  let raw =
    try Persist.read_file ~path
    with Sys_error msg -> raise (Codec.Error (Codec.Io_error msg))
  in
  of_string ~circuit raw

open Mps_geometry
open Mps_netlist

type t = {
  circuit : Circuit.t;
  bounds : Dimbox.t;
  weights : Mps_cost.Cost.weights;
      (** Cost weights the stored quality fields were computed under;
          used to refresh [best_cost] when shrinking moves a
          placement's [best_dims]. *)
  mutable slots : Stored.t option array;
  mutable n_slots : int;  (** Slots ever allocated; tombstones included. *)
  w_rows : Row.t array;  (** One width row per block, mutated in place. *)
  h_rows : Row.t array;
}

let create ?(weights = Mps_cost.Cost.default_weights) circuit =
  let n = Circuit.n_blocks circuit in
  {
    circuit;
    bounds = Circuit.dim_bounds circuit;
    weights;
    slots = Array.make 16 None;
    n_slots = 0;
    w_rows = Array.make n Row.empty;
    h_rows = Array.make n Row.empty;
  }

let circuit t = t.circuit
let bounds t = t.bounds

let n_live t =
  let acc = ref 0 in
  for i = 0 to t.n_slots - 1 do
    if Option.is_some t.slots.(i) then incr acc
  done;
  !acc

let live t =
  let acc = ref [] in
  for i = t.n_slots - 1 downto 0 do
    match t.slots.(i) with
    | Some s -> acc := (i, s) :: !acc
    | None -> ()
  done;
  !acc

let get t i = if i < 0 || i >= t.n_slots then None else t.slots.(i)

(* Rows bookkeeping: a placement id covers, in each block's rows, the
   intervals of its box. *)

let rows_add t id (box : Dimbox.t) =
  for i = 0 to Circuit.n_blocks t.circuit - 1 do
    t.w_rows.(i) <- Row.add_range t.w_rows.(i) (Dimbox.w_interval box i) id;
    t.h_rows.(i) <- Row.add_range t.h_rows.(i) (Dimbox.h_interval box i) id
  done

let rows_remove t id =
  for i = 0 to Circuit.n_blocks t.circuit - 1 do
    t.w_rows.(i) <- Row.remove_id t.w_rows.(i) id;
    t.h_rows.(i) <- Row.remove_id t.h_rows.(i) id
  done

let insert t stored =
  if t.n_slots >= Array.length t.slots then begin
    let bigger = Array.make (2 * Array.length t.slots) None in
    Array.blit t.slots 0 bigger 0 t.n_slots;
    t.slots <- bigger
  end;
  let id = t.n_slots in
  t.slots.(id) <- Some stored;
  t.n_slots <- t.n_slots + 1;
  rows_add t id stored.Stored.box;
  id

let remove t id =
  match get t id with
  | None -> invalid_arg "Builder.remove: no such placement"
  | Some _ ->
    t.slots.(id) <- None;
    rows_remove t id

(* The paper's [I] set: placements overlapping a candidate box, found by
   intersecting the rows' range answers over all 2N axes. *)
let overlapping t box =
  let n = Circuit.n_blocks t.circuit in
  if n = 0 then []
  else begin
    let acc = ref (Row.find_range t.w_rows.(0) (Dimbox.w_interval box 0)) in
    for i = 0 to n - 1 do
      if not (Row.Int_set.is_empty !acc) then begin
        if i > 0 then
          acc := Row.Int_set.inter !acc (Row.find_range t.w_rows.(i) (Dimbox.w_interval box i));
        acc := Row.Int_set.inter !acc (Row.find_range t.h_rows.(i) (Dimbox.h_interval box i))
      end
    done;
    Row.Int_set.elements !acc
  end

(* The resolver only ever needs the smallest overlapping id (or none),
   and the tree-set unions/intersections of [overlapping] dominated its
   profile; two scratch bitsets turn the same 2N-axis search into word
   operations. *)
let overlapping_any t box =
  let n = Circuit.n_blocks t.circuit in
  if n = 0 || t.n_slots = 0 then None
  else begin
    let acc = Bitset.create ~capacity:t.n_slots in
    let axis = Bitset.create ~capacity:t.n_slots in
    let restrict row iv =
      Bitset.clear axis;
      Row.iter_range row iv ~f:(Bitset.add axis);
      Bitset.inter_into acc axis
    in
    Row.iter_range t.w_rows.(0) (Dimbox.w_interval box 0) ~f:(Bitset.add acc);
    (try
       for i = 0 to n - 1 do
         if Bitset.is_empty acc then raise Exit;
         if i > 0 then restrict t.w_rows.(i) (Dimbox.w_interval box i);
         restrict t.h_rows.(i) (Dimbox.h_interval box i)
       done
     with Exit -> ());
    Bitset.choose acc
  end

let w_row t i = t.w_rows.(i)
let h_row t i = t.h_rows.(i)

type shrink_outcome =
  | Dropped
  | Shrunk of Dimbox.t
  | Forked of Dimbox.t * Dimbox.t

(* Axes ordered by overlap length, smallest first (paper: "the smallest
   dimension (row) in which the two placements are overlapping"). *)
let axes_by_overlap victim other =
  let overlap axis =
    Interval.overlap_length (Dimbox.axis_interval victim axis)
      (Dimbox.axis_interval other axis)
  in
  let axes = Dimbox.axes victim in
  List.sort (fun a b -> Int.compare (overlap a) (overlap b)) axes

let shrink_box_against ~victim ~other =
  if not (Dimbox.overlaps victim other) then
    invalid_arg "Builder.shrink_box_against: boxes are disjoint";
  let cuttable axis =
    let v = Dimbox.axis_interval victim axis and o = Dimbox.axis_interval other axis in
    not (Interval.contains_interval ~outer:o ~inner:v)
  in
  match List.find_opt cuttable (axes_by_overlap victim other) with
  | None -> Dropped
  | Some axis ->
    let v = Dimbox.axis_interval victim axis and o = Dimbox.axis_interval other axis in
    let below = Interval.before v ~limit:(Interval.lo o) in
    let above = Interval.after v ~limit:(Interval.hi o) in
    (match (below, above) with
    | Some b, Some a -> Forked (Dimbox.with_axis victim axis b, Dimbox.with_axis victim axis a)
    | Some b, None -> Shrunk (Dimbox.with_axis victim axis b)
    | None, Some a -> Shrunk (Dimbox.with_axis victim axis a)
    | None, None -> assert false (* [cuttable axis] ruled this out *))

(* Shrink a placement's box, keeping its quality fields honest: when
   the clamp moves [best_dims], the recorded [best_cost] no longer
   belongs to the recorded vector — recompute it at the clamped point
   (and keep [avg_cost >= best_cost]).  This is what lets the auditor
   re-verify the cost fields of any structure within tolerance. *)
let with_box_refreshed t stored box =
  let shrunk = Stored.with_box stored box in
  if Dims.equal shrunk.Stored.best_dims stored.Stored.best_dims then shrunk
  else
    let p = shrunk.Stored.placement in
    let rects = Mps_placement.Placement.rects p shrunk.Stored.best_dims in
    let best_cost =
      Mps_cost.Cost.total ~weights:t.weights t.circuit
        ~die_w:p.Mps_placement.Placement.die_w ~die_h:p.Mps_placement.Placement.die_h
        rects
    in
    { shrunk with Stored.best_cost; avg_cost = Float.max shrunk.Stored.avg_cost best_cost }

let resolve_and_store t candidate =
  let stored_ids = ref [] in
  let work = Queue.create () in
  Queue.add candidate work;
  while not (Queue.is_empty work) do
    let c = Queue.pop work in
    match overlapping_any t c.Stored.box with
    | None -> stored_ids := insert t c :: !stored_ids
    | Some idx ->
      let pi =
        match get t idx with
        | Some s -> s
        | None -> assert false (* rows only hold live ids *)
      in
      if pi.Stored.template_like || pi.Stored.avg_cost > c.Stored.avg_cost then begin
        (* The stored placement loses the contested region.  Backup
           territory always yields: a candidate only reaches this point
           after the generator's local-dominance admission test proved
           it beats the template inside its own box. *)
        remove t idx;
        (match shrink_box_against ~victim:pi.Stored.box ~other:c.Stored.box with
        | Dropped -> ()
        | Shrunk box -> ignore (insert t (with_box_refreshed t pi box))
        | Forked (b1, b2) ->
          ignore (insert t (with_box_refreshed t pi b1));
          ignore (insert t (with_box_refreshed t pi b2)));
        Queue.add c work
      end
      else begin
        match shrink_box_against ~victim:c.Stored.box ~other:pi.Stored.box with
        | Dropped -> ()
        | Shrunk box -> Queue.add (with_box_refreshed t c box) work
        | Forked (b1, b2) ->
          Queue.add (with_box_refreshed t c b1) work;
          Queue.add (with_box_refreshed t c b2) work
      end
  done;
  List.rev !stored_ids

let coverage t =
  (* template-like placements (the backup's territory) do not count as
     covered space: coverage measures what the explorer discovered *)
  List.fold_left
    (fun acc (_, s) ->
      if s.Stored.template_like then acc
      else acc +. Dimbox.volume_fraction s.Stored.box ~bounds:t.bounds)
    0.0 (live t)

let boxes_disjoint t =
  let all = live t in
  List.for_all
    (fun (i, a) ->
      List.for_all
        (fun (j, b) -> i >= j || not (Dimbox.overlaps a.Stored.box b.Stored.box))
        all)
    all

let rows_consistent t =
  let n = Circuit.n_blocks t.circuit in
  let ok = ref true in
  for i = 0 to n - 1 do
    ok := !ok && Row.invariants_ok t.w_rows.(i) && Row.invariants_ok t.h_rows.(i)
  done;
  (* Every live placement is found by a range query over its own box,
     and rows contain no dead ids. *)
  let live_ids = List.map fst (live t) in
  let row_ids =
    Array.fold_left
      (fun acc row -> Row.Int_set.union acc (Row.ids row))
      Row.Int_set.empty
      (Array.append t.w_rows t.h_rows)
  in
  !ok
  && Row.Int_set.subset row_ids (Row.Int_set.of_list live_ids)
  && List.for_all
       (fun (id, s) -> List.mem id (overlapping t s.Stored.box))
       (live t)

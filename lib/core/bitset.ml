type t = { capacity : int; words : int array }

let bits_per_word = Sys.int_size

let n_words capacity = (capacity + bits_per_word - 1) / bits_per_word

let create ~capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { capacity; words = Array.make (n_words capacity) 0 }

let full ~capacity =
  let t = create ~capacity in
  let words = t.words in
  let n = Array.length words in
  if n > 0 then begin
    Array.fill words 0 n (-1);
    (* Mask the tail word so bits beyond [capacity] stay clear. *)
    let used = capacity mod bits_per_word in
    if used > 0 then words.(n - 1) <- (1 lsl used) - 1
  end;
  t

let capacity t = t.capacity

let copy t = { capacity = t.capacity; words = Array.copy t.words }

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let check t i =
  if i < 0 || i >= t.capacity then
    invalid_arg (Printf.sprintf "Bitset: index %d out of [0, %d)" i t.capacity)

let add t i =
  check t i;
  t.words.(i / bits_per_word) <- t.words.(i / bits_per_word) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  t.words.(i / bits_per_word) <-
    t.words.(i / bits_per_word) land lnot (1 lsl (i mod bits_per_word))

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let popcount w =
  let rec loop w acc = if w = 0 then acc else loop (w land (w - 1)) (acc + 1) in
  loop w 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let inter_into acc s =
  if acc.capacity <> s.capacity then invalid_arg "Bitset.inter_into: capacity mismatch";
  for k = 0 to Array.length acc.words - 1 do
    acc.words.(k) <- acc.words.(k) land s.words.(k)
  done

let choose t =
  let n = Array.length t.words in
  let rec word k =
    if k >= n then None
    else if t.words.(k) = 0 then word (k + 1)
    else begin
      let w = t.words.(k) in
      let rec bit b = if w land (1 lsl b) <> 0 then b else bit (b + 1) in
      Some ((k * bits_per_word) + bit 0)
    end
  in
  word 0

(* Word-by-word: zero words (the common case for sparse sets) cost one
   test, and set bits are peeled with low-bit tricks instead of probing
   every index.  Visits members in ascending order, like the naive
   per-index loop it replaces. *)
let iter t ~f =
  let words = t.words in
  for k = 0 to Array.length words - 1 do
    let w = ref words.(k) in
    if !w <> 0 then begin
      let base = k * bits_per_word in
      while !w <> 0 do
        let low = !w land (- !w) in
        f (base + popcount (low - 1));
        w := !w land (!w - 1)
      done
    end
  done

let to_list t =
  let acc = ref [] in
  iter t ~f:(fun i -> acc := i :: !acc);
  List.rev !acc

let of_list ~capacity l =
  let t = create ~capacity in
  List.iter (add t) l;
  t

let equal a b = a.capacity = b.capacity && a.words = b.words

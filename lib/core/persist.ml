(* CRC-32, IEEE 802.3 reflected polynomial 0xedb88320 (the zlib/PNG
   variant), table-driven one byte at a time.  The state and the table
   live in unboxed native ints (the value always fits 32 bits) — this
   is the hot loop of container verification, and boxed [Int32]
   arithmetic costs an allocation per byte. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFF_FFFF in
  for p = 0 to String.length s - 1 do
    crc := Array.unsafe_get table ((!crc lxor Char.code (String.unsafe_get s p)) land 0xff) lxor (!crc lsr 8)
  done;
  Int32.of_int (!crc lxor 0xFFFF_FFFF)

let crc32_hex s = Printf.sprintf "%08lx" (crc32 s)

(* A read-only word view of a file: every 8 bytes, little-endian, is
   one OCaml int.  This is the substrate of the MPSZ zero-copy format
   (Zcodec): the file is mapped once and the engine's flat arrays are
   [Array1.sub] views into it. *)
type words = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(* CRC-32 of a word range "through the int lens": each word contributes
   the 8 little-endian bytes of its [Int64.of_int] image.  The writer
   serializes words exactly that way ([Buffer.add_int64_le] of
   [Int64.of_int v]), so the CRC of the stored bytes and the CRC of the
   mapped ints agree for every value that round-trips through the
   63-bit int kind — and a stored word whose top bit is set (never
   produced by the writer, only by corruption) fails the comparison,
   which is exactly what we want. *)
(* Slicing-by-8: [tables.(k).(b)] is the CRC contribution of byte [b]
   followed by [k] zero bytes.  One 8-byte word per iteration, eight
   independent lookups — container verification is the cold-load hot
   loop, and the byte-at-a-time dependency chain would dominate it. *)
let crc_tables8 =
  lazy
    (let t0 = Lazy.force crc_table in
     let t = Array.init 8 (fun k -> if k = 0 then t0 else Array.make 256 0) in
     for k = 1 to 7 do
       for i = 0 to 255 do
         let p = t.(k - 1).(i) in
         t.(k).(i) <- (p lsr 8) lxor t0.(p land 0xff)
       done
     done;
     t)

let crc32_words (w : words) ~pos ~len =
  let t = Lazy.force crc_tables8 in
  let t0 = t.(0) and t1 = t.(1) and t2 = t.(2) and t3 = t.(3) in
  let t4 = t.(4) and t5 = t.(5) and t6 = t.(6) and t7 = t.(7) in
  let g = Array.unsafe_get in
  let crc = ref 0xFFFF_FFFF in
  for i = pos to pos + len - 1 do
    let v = w.{i} in
    let x = !crc lxor (v land 0xFFFF_FFFF) in
    crc :=
      g t7 (x land 0xff)
      lxor g t6 ((x lsr 8) land 0xff)
      lxor g t5 ((x lsr 16) land 0xff)
      lxor g t4 ((x lsr 24) land 0xff)
      lxor g t3 ((v lsr 32) land 0xff)
      lxor g t2 ((v lsr 40) land 0xff)
      lxor g t1 ((v lsr 48) land 0xff)
      (* byte 7 of the [Int64.of_int] image: bits 56..62 plus the
         sign bit replicated into bit 63 — [asr] reproduces it *)
      lxor g t0 ((v asr 56) land 0xff)
  done;
  Int32.of_int (!crc lxor 0xFFFF_FFFF)

(* Injectable I/O backend.  Every primitive the persistence stack
   touches goes through the current [io] record, so a fault-injection
   harness (Mps_fault) can deterministically fail or corrupt any single
   operation without patching syscalls.  All primitives raise
   [Sys_error] on failure, like their stdlib counterparts. *)

type io = {
  read_file : string -> string;
  write_file : string -> string -> unit;
      (** Create/truncate the file and write all bytes, flushed and
          fsynced. *)
  rename : string -> string -> unit;
  fsync_dir : string -> unit;
  remove : string -> unit;
  map_words : string -> words * int;
      (** Map the whole file read-only as little-endian 8-byte words,
          returning the view and the exact file size in bytes. *)
}

let real_read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let real_write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc content;
      flush oc;
      (* fsync before rename: the rename must not become durable
         before the data it points at. *)
      try Unix.fsync (Unix.descr_of_out_channel oc)
      with Unix.Unix_error _ -> () (* fsync unsupported (some FS): best effort *))

let real_fsync_dir dir =
  (* Durability of the rename itself: without a directory fsync the
     new directory entry can be lost on power failure even though the
     file data was synced.  Best effort where unsupported. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* The mapping is private (MAP_PRIVATE over an O_RDONLY fd — the only
   read-only mapping [Unix.map_file] can express, since it always asks
   for write protection): nothing we do can reach the file through the
   view, and [atomic_write]'s rename-replacement leaves existing
   mappings on the old inode untouched (hot reload simply maps the new
   file).  The fault suite models damage landing under an active
   mapping by flipping words of a private copy, not the file. *)
let real_map_words path =
  let fd =
    match Unix.openfile path [ Unix.O_RDONLY ] 0 with
    | fd -> fd
    | exception Unix.Unix_error (err, fn, _) ->
      raise (Sys_error (Printf.sprintf "%s: %s(%s)" path (Unix.error_message err) fn))
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let bytes =
        match (Unix.fstat fd).Unix.st_size with
        | n -> n
        | exception Unix.Unix_error (err, fn, _) ->
          raise (Sys_error (Printf.sprintf "%s: %s(%s)" path (Unix.error_message err) fn))
      in
      let nwords = bytes / 8 in
      match Unix.map_file fd Bigarray.int Bigarray.c_layout false [| nwords |] with
      | genarray -> (Bigarray.array1_of_genarray genarray, bytes)
      | exception Unix.Unix_error (err, fn, _) ->
        raise (Sys_error (Printf.sprintf "%s: %s(%s)" path (Unix.error_message err) fn)))

(* A read-write MAP_SHARED word view — the substrate of the shm ring
   transport (Mps_serve.Shm): both sides of a session map the same
   file-backed ring and stores become visible to the peer without a
   syscall.  [size = Some n] creates (or truncates) the file at [n]
   bytes first, which is the server/owner side; [size = None] maps an
   existing file as-is, the client/attach side.  Deliberately NOT part
   of the injectable {!io} record: ring faults are modelled at the
   frame level (Mps_serve.Shm hooks), not the mapping level. *)
let map_shared ?size ~path () =
  let flags, perm =
    match size with
    | Some _ -> ([ Unix.O_RDWR; Unix.O_CREAT ], 0o600)
    | None -> ([ Unix.O_RDWR ], 0)
  in
  let fd =
    match Unix.openfile path flags perm with
    | fd -> fd
    | exception Unix.Unix_error (err, fn, _) ->
      raise (Sys_error (Printf.sprintf "%s: %s(%s)" path (Unix.error_message err) fn))
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match
        let bytes =
          match size with
          | Some n ->
            Unix.ftruncate fd n;
            n
          | None -> (Unix.fstat fd).Unix.st_size
        in
        let nwords = bytes / 8 in
        ( Bigarray.array1_of_genarray
            (Unix.map_file fd Bigarray.int Bigarray.c_layout true [| nwords |]),
          bytes )
      with
      | view -> view
      | exception Unix.Unix_error (err, fn, _) ->
        raise (Sys_error (Printf.sprintf "%s: %s(%s)" path (Unix.error_message err) fn)))

let default_io =
  {
    read_file = real_read_file;
    write_file = real_write_file;
    rename = Sys.rename;
    fsync_dir = real_fsync_dir;
    remove = Sys.remove;
    map_words = real_map_words;
  }

let io_ref = ref default_io

let current_io () = !io_ref
let set_io io = io_ref := io

let with_io io f =
  let saved = !io_ref in
  io_ref := io;
  Fun.protect ~finally:(fun () -> io_ref := saved) f

(* Temp names must be unique per writer: pid separates processes,
   the atomic counter separates threads and domains within one.  (The
   previous Filename.temp_file scheme also pre-created the file
   through the real filesystem, bypassing the injected io.) *)
let tmp_counter = Atomic.make 0

let atomic_write ~path content =
  let io = !io_ref in
  let dir = Filename.dirname path in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  match
    io.write_file tmp content;
    io.rename tmp path;
    io.fsync_dir dir
  with
  | () -> ()
  | exception e ->
    (* No stale temp litter: whether the write or the rename failed,
       the temporary file is unlinked before the error surfaces.  Use
       the real remove — the injected one may be the failing op. *)
    (try Sys.remove tmp with Sys_error _ -> ());
    (match e with
    | Sys_error _ -> raise e
    | Unix.Unix_error (err, fn, _) ->
      raise (Sys_error (Printf.sprintf "%s: %s(%s)" path (Unix.error_message err) fn))
    | e -> raise e)

let read_file ~path = !io_ref.read_file path
let map_words ~path = !io_ref.map_words path

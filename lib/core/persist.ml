(* CRC-32, IEEE 802.3 reflected polynomial 0xedb88320 (the zlib/PNG
   variant), table-driven one byte at a time. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xedb88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let crc = ref 0xffffffffl in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code ch))) 0xffl) in
      crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8))
    s;
  Int32.logxor !crc 0xffffffffl

let crc32_hex s = Printf.sprintf "%08lx" (crc32 s)

let atomic_write ~path content =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path ^ ".tmp.") "" in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc content;
        flush oc;
        (* fsync before rename: the rename must not become durable
           before the data it points at. *)
        try Unix.fsync (Unix.descr_of_out_channel oc)
        with Unix.Unix_error _ -> () (* fsync unsupported (some FS): best effort *));
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    (match e with
    | Sys_error _ -> raise e
    | Unix.Unix_error (err, fn, _) ->
      raise (Sys_error (Printf.sprintf "%s: %s(%s)" path (Unix.error_message err) fn))
    | e -> raise e)

let read_file ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* CRC-32, IEEE 802.3 reflected polynomial 0xedb88320 (the zlib/PNG
   variant), table-driven one byte at a time. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xedb88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let crc = ref 0xffffffffl in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code ch))) 0xffl) in
      crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8))
    s;
  Int32.logxor !crc 0xffffffffl

let crc32_hex s = Printf.sprintf "%08lx" (crc32 s)

(* Injectable I/O backend.  Every primitive the persistence stack
   touches goes through the current [io] record, so a fault-injection
   harness (Mps_fault) can deterministically fail or corrupt any single
   operation without patching syscalls.  All primitives raise
   [Sys_error] on failure, like their stdlib counterparts. *)

type io = {
  read_file : string -> string;
  write_file : string -> string -> unit;
      (** Create/truncate the file and write all bytes, flushed and
          fsynced. *)
  rename : string -> string -> unit;
  fsync_dir : string -> unit;
  remove : string -> unit;
}

let real_read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let real_write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc content;
      flush oc;
      (* fsync before rename: the rename must not become durable
         before the data it points at. *)
      try Unix.fsync (Unix.descr_of_out_channel oc)
      with Unix.Unix_error _ -> () (* fsync unsupported (some FS): best effort *))

let real_fsync_dir dir =
  (* Durability of the rename itself: without a directory fsync the
     new directory entry can be lost on power failure even though the
     file data was synced.  Best effort where unsupported. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let default_io =
  {
    read_file = real_read_file;
    write_file = real_write_file;
    rename = Sys.rename;
    fsync_dir = real_fsync_dir;
    remove = Sys.remove;
  }

let io_ref = ref default_io

let current_io () = !io_ref
let set_io io = io_ref := io

let with_io io f =
  let saved = !io_ref in
  io_ref := io;
  Fun.protect ~finally:(fun () -> io_ref := saved) f

(* Temp names must be unique per writer: pid separates processes,
   the atomic counter separates threads and domains within one.  (The
   previous Filename.temp_file scheme also pre-created the file
   through the real filesystem, bypassing the injected io.) *)
let tmp_counter = Atomic.make 0

let atomic_write ~path content =
  let io = !io_ref in
  let dir = Filename.dirname path in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  match
    io.write_file tmp content;
    io.rename tmp path;
    io.fsync_dir dir
  with
  | () -> ()
  | exception e ->
    (* No stale temp litter: whether the write or the rename failed,
       the temporary file is unlinked before the error surfaces.  Use
       the real remove — the injected one may be the failing op. *)
    (try Sys.remove tmp with Sys_error _ -> ());
    (match e with
    | Sys_error _ -> raise e
    | Unix.Unix_error (err, fn, _) ->
      raise (Sys_error (Printf.sprintf "%s: %s(%s)" path (Unix.error_message err) fn))
    | e -> raise e)

let read_file ~path = !io_ref.read_file path

(** Block rows of the multi-placement structure (paper Fig. 3).

    A row answers "which stored placements accept value [v] for this
    block's width (or height)?".  It is an ascending list of disjoint
    integer intervals, each carrying the set of placement indices whose
    dimension interval covers that whole sub-interval — the paper's
    linked list of interval objects with their [Arr(i,n)] arrays, i.e.
    the functions [W_i] / [H_i] of eq. 3.

    Inserting a placement's interval splits boundary interval objects so
    the list stays disjoint and ascending (the paper's Store Placement
    routine). *)

module Int_set : Set.S with type elt = int

type t
(** Persistent row. *)

val empty : t

val is_empty : t -> bool

val find : t -> int -> Int_set.t
(** Placements whose interval contains the value; empty when the value
    falls in a gap. *)

val find_range : t -> Mps_geometry.Interval.t -> Int_set.t
(** Union of the sets over all intervals meeting the range: every
    placement whose interval overlaps it.  This powers the Resolve
    Overlaps search for placements overlapping a candidate box. *)

val iter_range : t -> Mps_geometry.Interval.t -> f:(int -> unit) -> unit
(** [find_range] without building a set: calls [f] on every id whose
    interval meets the range.  An id spanning several interval objects
    is visited once per object, so [f] must be idempotent (the Resolve
    Overlaps search accumulates into a {!Bitset}). *)

val add_range : t -> Mps_geometry.Interval.t -> int -> t
(** Register placement [id] over the whole range, splitting existing
    interval objects at the boundaries and creating fresh ones over
    gaps. *)

val remove_id : t -> int -> t
(** Erase a placement everywhere (used when a stored placement is
    shrunk, forked or dropped); empty interval objects disappear and
    adjacent objects with equal sets merge back. *)

val intervals : t -> (Mps_geometry.Interval.t * Int_set.t) list
(** The interval objects, ascending. *)

val ids : t -> Int_set.t
(** All placement indices present in the row. *)

val invariants_ok : t -> bool
(** Ascending, pairwise disjoint, no empty sets, no mergeable
    neighbours (used by property tests). *)

val pp : Format.formatter -> t -> unit

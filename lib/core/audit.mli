(** Typed invariant auditor for compiled/loaded structures.

    A multi-placement structure is generated once and then served inside
    a synthesis loop for millions of queries; a single corrupted or
    invariant-violating stored placement silently poisons every sizing
    run that lands in its hyper-box.  The auditor re-proves, on any
    {!Structure.t} regardless of where it came from, the properties the
    generator established by construction:

    - pairwise disjointness of the stored validity boxes (paper eq. 5);
    - per placement: [box] contained in [expansion] (unless
      template-like), [best_dims] inside [box], boxes inside the
      designer dimension space;
    - legality of each placement's floorplan at its box corners plus
      seeded samples — no block overlap, nothing outside the die,
      symmetry scored through {!Mps_cost.Cost.evaluate};
    - cost-field re-verification: the recorded [best_cost] matches the
      cost function re-evaluated at [best_dims] within tolerance, and
      [avg_cost >= best_cost];
    - the backup template is legal at the circuit's minimum dimensions
      and over its expansion box;
    - seeded whole-space query samples, answered through the compiled
      {!Structure.Engine} (the path production queries take) and
      cross-checked against the linear reference oracle: every answer
      instantiates
      overlap-free.

    Findings carry a machine-readable code and a severity; the report
    serializes to JSON for CI artifacts ({!to_json}). *)

open Mps_cost

(** How bad a finding is.  [Fatal] means the structure can answer a
    query with an illegal or wrong placement (quarantine it); [Degraded]
    means answers stay legal but quality metadata or territory
    accounting is wrong (repairable in place); [Info] is advisory. *)
type severity = Info | Degraded | Fatal

(** What a finding is about. *)
type subject =
  | Structure_wide
  | Placement of int  (** Index into {!Structure.placements}. *)
  | Backup

type finding = {
  severity : severity;
  subject : subject;
  code : string;  (** Machine-readable, e.g. ["box-overlap"]. *)
  detail : string;  (** Human-readable specifics. *)
}

type report = {
  circuit_name : string;
  placements : int;
  explored : int;
  samples_per_box : int;
  query_samples : int;
  findings : finding list;  (** Worst first. *)
}

val run :
  ?pool:Mps_parallel.Pool.t ->
  ?weights:Cost.weights ->
  ?samples_per_box:int ->
  ?query_samples:int ->
  ?seed:int ->
  ?tolerance:float ->
  Structure.t ->
  report
(** Audit a structure.  [weights] (default
    {!Mps_cost.Cost.default_weights}) must be the weights the structure
    was generated under for the cost re-verification to be meaningful.
    [samples_per_box] (default 12) seeded legality samples per stored
    box, [query_samples] (default 64) whole-space query probes, [seed]
    (default 7) drives both, [tolerance] (default 1e-6) is the relative
    tolerance of the cost re-verification.  Never raises.

    Every audited subject draws from its own {!Mps_rng.Rng.split}
    stream of [seed], so passing [pool] fans the per-placement checks
    out across domains and returns the {e identical} report a
    sequential audit produces. *)

val clean : report -> bool
(** No [Fatal] and no [Degraded] finding ([Info] findings allowed). *)

val worst : report -> severity option
(** Highest severity present, [None] on a finding-free report. *)

val count : severity -> report -> int

val severity_to_string : severity -> string
val subject_to_string : subject -> string

val to_string : report -> string
(** Multi-line human-readable report. *)

val to_json : report -> string
(** Machine-readable report (stable schema, used as a CI artifact). *)

(** Crash-safe snapshots of an in-flight generation run.

    {!Generator} writes one of these every [checkpoint_every] explorer
    steps; after a crash or kill, {!Generator.resume} reconstitutes the
    builder from the snapshot and continues the annealing walk.  The
    snapshot captures {e everything} the walk depends on — the interim
    structure (live placements + backup), the accepted placement and
    its cost, the step counters, and the exact RNG state — so a resumed
    run replays the uninterrupted run's stored-placement set step for
    step (property-tested).

    File layout (one section after the integrity header, then a full
    embedded {!Codec} document):
    {v
    mps-checkpoint v1
    checksum <8 hex digits>
    step <n>
    dropped <n>
    current_cost <float>
    current <x y pairs>
    rng <hex token>
    mps-structure v2
    ...
    v}

    A checkpoint written by the parallel generator
    ({!Generator.generate_par}) additionally carries one [par] section
    between the [rng] line and the embedded document — the restart
    count, the merge chunk size, and one [walk]/[walk_rng] line pair
    per explorer restart (step, cost, accepted placement, and the
    walk's private stream state).  Recording every per-task stream is
    what makes resume deterministic at {e any} job count: the walks
    are data, the domain pool is just scheduling.  Checkpoints written
    by the sequential generator have no [par] section and still parse
    ([par = None]).

    Saving is atomic ({!Mps_core.Persist.atomic_write}); loading
    verifies the checksum and the embedded document end to end, and
    raises {!Codec.Error} on any damage — a checkpoint is either whole
    or rejected, there is no salvage path (the previous checkpoint or a
    fresh run is always available). *)

open Mps_netlist
open Mps_placement

type walk = {
  w_step : int;  (** Explorer steps this walk has taken. *)
  w_cost : float;  (** BDIO average cost of the accepted placement. *)
  w_current : Placement.t;  (** The walk's accepted placement. *)
  w_rng : Mps_rng.Rng.t;  (** The walk's private stream state. *)
}
(** One explorer restart of a parallel run. *)

type par = {
  restarts : int;  (** Number of explorer walks (fixed by config). *)
  chunk : int;  (** Steps merged per walk per lockstep round. *)
  walks : walk array;  (** One entry per restart, in task order. *)
}

type t = {
  step : int;  (** Explorer steps already taken. *)
  dropped : int;  (** Candidates dropped so far (for stats continuity). *)
  current : Placement.t;  (** The walk's accepted placement. *)
  current_cost : float;  (** Its BDIO average cost. *)
  rng : Mps_rng.Rng.t;  (** Exact generator state at the snapshot. *)
  par : par option;  (** Parallel-walk states; [None] for sequential runs. *)
  structure : Structure.t;  (** Interim structure: live placements + backup. *)
}

val to_string : t -> string

val of_string : circuit:Circuit.t -> string -> t
(** @raise Codec.Error on a damaged snapshot or circuit mismatch. *)

val save : t -> path:string -> unit
(** Atomic replace.  @raise Codec.Error ([Io_error]) when the file
    cannot be written. *)

val load : circuit:Circuit.t -> path:string -> t
(** @raise Codec.Error — [Io_error] when unreadable, [Corrupt] on any
    integrity failure, [Circuit_mismatch] on the wrong circuit. *)

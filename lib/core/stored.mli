(** A placement as stored in a multi-placement structure.

    Pairs the block coordinates with the dimension hyper-box over which
    this placement is the structure's answer (paper eq. 2), plus the
    quality data the Block Dimensions-Interval Optimizer attached to it:
    best and average cost, and the dimension vector attaining the best
    cost. *)

open Mps_geometry
open Mps_placement

type t = {
  placement : Placement.t;  (** Block coordinates and die. *)
  box : Dimbox.t;  (** Validity box: shrunk [w/h start..end] intervals. *)
  expansion : Dimbox.t;
      (** The expansion box the placement is legal over at its raw
          coordinates.  For ordinary placements [box] is contained in
          [expansion]; a [template_like] placement may claim more. *)
  avg_cost : float;  (** BDIO average cost (the explorer's cost signal). *)
  best_cost : float;
  best_dims : Dims.t;  (** Dimension vector that attained [best_cost]. *)
  template_like : bool;
      (** The placement answers dimensions beyond its expansion box by
          greedy re-packing (the backup template's behaviour); its box
          may exceed the expansion box. *)
}

val make :
  template_like:bool ->
  placement:Placement.t ->
  box:Dimbox.t ->
  expansion:Dimbox.t ->
  avg_cost:float ->
  best_cost:float ->
  best_dims:Dims.t ->
  t
(** @raise Invalid_argument when [best_dims] lies outside [box], or —
    unless [template_like] — when [box] is not contained in
    [expansion]. *)

val with_box : t -> Dimbox.t -> t
(** Replace the validity box (after Resolve Overlaps shrinking); the
    best dimension vector is clamped into the new box. *)

val n_blocks : t -> int

val instantiate : t -> Dims.t -> Rect.t array
(** Floorplan at the given dimensions using this placement's
    coordinates. *)

val instantiate_clamped : t -> Dims.t -> Rect.t array
(** Floorplan with the dimensions clamped into the placement's
    expansion box, hence always legal and inside the die — but at
    adjusted dimensions. *)

val instantiate_repacked : t -> Dims.t -> Rect.t array
(** Template-like behaviour at the *requested* dimensions: keep this
    placement's arrangement and greedily re-pack
    ({!Mps_placement.Repack}).  Always overlap-free; used for fallback
    answers on uncovered dimension vectors (paper §3.1.4). *)

val instantiate_into : t -> out:Rect.t array -> Dims.t -> unit
(** {!instantiate} into a caller buffer (one rect per block, refilled
    in place) — for sampling loops running against per-worker scratch.
    @raise Invalid_argument on a buffer-length mismatch. *)

val instantiate_repacked_into :
  t -> scratch:Repack.scratch -> out:Rect.t array -> Dims.t -> unit
(** {!instantiate_repacked} into a caller buffer, allocation-free (see
    {!Mps_placement.Repack.instantiate_into}). *)

val instantiate_auto : t -> Dims.t -> Rect.t array
(** "Commit to this placement for these dimensions": raw coordinates
    when the vector lies inside the expansion box (legal by
    monotonicity), {!instantiate_repacked} otherwise.  Always
    overlap-free — the cost of using placement [j] for any sizing,
    which is what the Figure 6 per-placement curves compare. *)

val pp : Format.formatter -> t -> unit

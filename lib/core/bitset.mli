(** Fixed-capacity bitsets over placement indices.

    The compiled multi-placement structure answers a query by
    intersecting the [2N] placement-index sets returned by the per-block
    rows (paper eq. 4); bitsets make that intersection a handful of word
    ANDs, which is what keeps instantiation in the milliseconds band of
    Table 2. *)

type t
(** Mutable set of integers in [0 .. capacity-1]. *)

val create : capacity:int -> t
(** Empty set.  [capacity >= 0]. *)

val full : capacity:int -> t
(** Set containing all of [0 .. capacity-1]. *)

val capacity : t -> int

val copy : t -> t

val clear : t -> unit
(** Remove every member (capacity unchanged). *)

val add : t -> int -> unit
(** @raise Invalid_argument when out of range. *)

val remove : t -> int -> unit

val mem : t -> int -> bool

val is_empty : t -> bool

val cardinal : t -> int

val inter_into : t -> t -> unit
(** [inter_into acc s] replaces [acc] with [acc ∩ s].
    @raise Invalid_argument on capacity mismatch. *)

val choose : t -> int option
(** Smallest member, if any. *)

val iter : t -> f:(int -> unit) -> unit
(** Members in ascending order. *)

val to_list : t -> int list

val of_list : capacity:int -> int list -> t

val equal : t -> t -> bool

open Mps_rng
open Mps_geometry
open Mps_netlist
open Mps_placement
open Mps_anneal

type config = {
  seed : int;
  die_slack : float;
  explorer_iterations : int;
  explorer_schedule : Schedule.t;
  perturb_fraction : float;
  max_shift_fraction : float;
  bdio : Bdio.config;
  coverage_target : float;
  max_placements : int;
  backup_iterations : int;
  backup_restarts : int;
      (** Independent coordinate-annealing restarts for the backup
          template; the best one wins.  The backup is the quality floor
          for the whole structure (admission tests and every uncovered
          query compare against it), so one unlucky annealing run must
          not be allowed to set it. *)
  seed_walk_with_backup : bool;
  refine_iterations : int;
      (** Short coordinate-annealing refinement applied to each explorer
          candidate, each toward its own random target sizing; [0]
          disables it (the paper's literal walk). *)
  explorer_restarts : int;
  walk_chunk : int;
  checkpoint_every : int;
  checkpoint_path : string option;
  max_seconds : float option;
}

let default_config =
  {
    seed = 1;
    die_slack = 1.0;
    explorer_iterations = 60;
    explorer_schedule = Schedule.geometric ~t0:500.0 ~alpha:0.93 ~t_min:1e-3 ();
    perturb_fraction = 0.25;
    max_shift_fraction = 0.35;
    bdio = Bdio.default_config;
    coverage_target = 0.5;
    max_placements = 200;
    backup_iterations = 5000;
    backup_restarts = 3;
    seed_walk_with_backup = true;
    refine_iterations = 2000;
    explorer_restarts = 4;
    walk_chunk = 4;
    checkpoint_every = 0;
    checkpoint_path = None;
    max_seconds = None;
  }

let fast_config =
  {
    default_config with
    explorer_iterations = 15;
    bdio = { Bdio.default_config with iterations = 120 };
    max_placements = 60;
    backup_iterations = 600;
    refine_iterations = 120;
  }

type stats = {
  placements_stored : int;
  coverage : float;
  explorer_steps : int;
  candidates_dropped : int;
  cost_evaluations : int;
  generation_seconds : float;
  deadline_hit : bool;
}

(* Local-dominance admission test: over the candidate's claimed box,
   does using the candidate (raw coordinates) beat re-packing the backup
   template at the same dimension vectors?  Point-matched sampling, so
   neither side gets to average over friendlier territory. *)
let beats_backup_locally config rng circuit backup candidate ~arena ~evals =
  let samples = 32 in
  evals := !evals + (2 * samples);
  let die_w = candidate.Stored.placement.Placement.die_w in
  let die_h = candidate.Stored.placement.Placement.die_h in
  let weights = config.bdio.Bdio.weights in
  (* Full evaluations go through the arena engine's [reset] (a
     from-scratch resync, bit-identical to [Cost.total] — the
     incremental evaluator mirrors its arithmetic term for term) so
     the 64 evaluations per candidate allocate nothing. *)
  let cost rects =
    Mps_cost.Incremental.total (Arena.engine arena ~weights circuit ~die_w ~die_h rects)
  in
  (* Arena scratch: both floorplans and the sampled dimension vector
     live in per-worker buffers refilled per sample — this loop runs
     64 instantiations per candidate.  (Int slot 0 is the BDIO's axis
     permutation; rect slot 0 doubles as the engine-init buffer, which
     is dead by now.) *)
  let n = Stored.n_blocks candidate in
  let dw = Arena.int_buffer arena ~slot:1 n and dh = Arena.int_buffer arena ~slot:2 n in
  let cand_buf = Arena.rect_buffer arena ~slot:0 n in
  let back_buf = Arena.rect_buffer arena ~slot:1 n in
  let scratch = Arena.repack_scratch arena in
  let candidate_total = ref 0.0 and backup_total = ref 0.0 in
  for _ = 1 to samples do
    Dimbox.random_dims_into rng candidate.Stored.box ~w:dw ~h:dh;
    let dims = Dims.unsafe_of_arrays ~w:dw ~h:dh in
    Stored.instantiate_into candidate ~out:cand_buf dims;
    candidate_total := !candidate_total +. cost cand_buf;
    Stored.instantiate_repacked_into backup ~scratch ~out:back_buf dims;
    backup_total := !backup_total +. cost back_buf
  done;
  !candidate_total <= !backup_total

(* Expand a placement, optimize its dimension intervals, and run the
   admission test — everything about a candidate except touching the
   builder.  This is the unit of work a parallel walk can do on its own
   domain: it draws only from [rng], and all mutable evaluation state
   (the [Incremental] engine, scratch buffers) comes from the worker's
   own [arena].  Returns the made candidate, the BDIO result (the
   explorer's cost signal), and the admission verdict. *)
let evaluate_candidate config rng circuit backup placement ~arena ~evals =
  let expansion = Expand.expand circuit placement in
  let bdio =
    Bdio.optimize ~config:config.bdio ~arena ~rng circuit placement ~box:expansion
  in
  evals := !evals + bdio.Bdio.evaluations;
  let candidate =
    Stored.make ~template_like:false ~placement ~box:bdio.Bdio.box ~expansion
      ~avg_cost:bdio.Bdio.avg_cost ~best_cost:bdio.Bdio.best_cost
      ~best_dims:bdio.Bdio.best_dims
  in
  let admitted = beats_backup_locally config rng circuit backup candidate ~arena ~evals in
  (candidate, bdio, admitted)

(* Same, then merge the admitted candidate into the structure.  Returns
   the BDIO result and whether the candidate was stored. *)
let evaluate_and_store builder config rng circuit backup placement ~arena ~evals =
  let candidate, bdio, admitted =
    evaluate_candidate config rng circuit backup placement ~arena ~evals
  in
  if admitted then
    let ids = Builder.resolve_and_store builder candidate in
    (bdio, ids <> [])
  else (bdio, false)

(* Refine a candidate's coordinates with a short annealing run toward
   a random target sizing: explored placements become locally good
   arrangements for diverse dimension regions. *)
let refine_candidate cfg rng circuit ~die_w ~die_h ~arena ~evals placement =
  if cfg.refine_iterations <= 0 then placement
  else begin
    let target = Dimbox.random_dims rng (Circuit.dim_bounds circuit) in
    let coord_config =
      {
        Coord_opt.default_config with
        Coord_opt.iterations = cfg.refine_iterations;
        weights = cfg.bdio.Bdio.weights;
        max_shift_fraction = 0.2;
      }
    in
    let refined =
      Coord_opt.optimize ~config:coord_config ~arena ~initial:placement.Placement.coords
        ~rng circuit ~die_w ~die_h target
    in
    evals := !evals + refined.Coord_opt.evaluations;
    if Placement.is_legal refined.Coord_opt.placement (Circuit.min_dims circuit) then
      refined.Coord_opt.placement
    else placement
  end

(* The template-like backup placement for uncovered dimension space
   (paper §3.1.4): coordinates annealed at the nominal dimensions,
   valid over its whole expansion box.  Split into the best-of-restarts
   search and the finalization so the parallel path can fan the
   restarts out and reuse the tail. *)

let backup_coord_config config =
  {
    Coord_opt.default_config with
    Coord_opt.iterations = config.backup_iterations;
    weights = config.bdio.Bdio.weights;
  }

let finalize_backup config rng circuit ~die_w ~die_h ~arena ~evals
    (optimized : Coord_opt.result) =
  let placement =
    if Placement.is_legal optimized.Coord_opt.placement (Circuit.min_dims circuit) then
      optimized.Coord_opt.placement
    else Placement.random rng circuit ~die_w ~die_h
  in
  let expansion = Expand.expand circuit placement in
  let bdio_config = { config.bdio with Bdio.shrink = Bdio.No_shrink } in
  let bdio =
    Bdio.optimize ~config:bdio_config ~arena ~rng circuit placement ~box:expansion
  in
  evals := !evals + bdio.Bdio.evaluations;
  (* The backup claims the whole designer dimension space (re-packing
     outside its expansion box), so an explorer placement only wins
     territory by beating it — the structure's quality floor.  Its
     competitive average is the template's true cost over that whole
     space (sampled, re-packed), not the flattering average over its
     own expansion box: a candidate survives Resolve Overlaps exactly
     when its regional average beats using the template everywhere. *)
  let bounds = Circuit.dim_bounds circuit in
  let template_avg =
    let samples = 200 in
    evals := !evals + samples;
    let n = Placement.n_blocks placement in
    let dw = Arena.int_buffer arena ~slot:1 n and dh = Arena.int_buffer arena ~slot:2 n in
    let buf = Arena.rect_buffer arena ~slot:1 n in
    let scratch = Arena.repack_scratch arena in
    let total = ref 0.0 in
    for _ = 1 to samples do
      Dimbox.random_dims_into rng bounds ~w:dw ~h:dh;
      let dims = Dims.unsafe_of_arrays ~w:dw ~h:dh in
      Repack.instantiate_into ~scratch ~out:buf ~die:(die_w, die_h)
        ~coords:placement.Placement.coords dims;
      (* allocation-free full evaluation, bit-identical to [Cost.total]
         (see [beats_backup_locally]) *)
      total :=
        !total
        +. Mps_cost.Incremental.total
             (Arena.engine arena ~weights:config.bdio.Bdio.weights circuit ~die_w ~die_h
                buf)
    done;
    !total /. float_of_int samples
  in
  Stored.make ~template_like:true ~placement ~box:bounds ~expansion
    ~avg_cost:(Float.max template_avg bdio.Bdio.avg_cost)
    ~best_cost:bdio.Bdio.best_cost ~best_dims:bdio.Bdio.best_dims

let build_backup config rng circuit ~die_w ~die_h ~arena ~evals =
  let nominal = Dimbox.center (Circuit.dim_bounds circuit) in
  let coord_config = backup_coord_config config in
  let optimized =
    let best =
      ref (Coord_opt.optimize ~config:coord_config ~arena ~rng circuit ~die_w ~die_h nominal)
    in
    evals := !evals + !best.Coord_opt.evaluations;
    for _ = 2 to max 1 config.backup_restarts do
      let r =
        Coord_opt.optimize ~config:coord_config ~arena ~rng circuit ~die_w ~die_h nominal
      in
      evals := !evals + r.Coord_opt.evaluations;
      if r.Coord_opt.cost < !best.Coord_opt.cost then best := r
    done;
    !best
  in
  finalize_backup config rng circuit ~die_w ~die_h ~arena ~evals optimized

let run_explorer ?builder ?backup ?resume ~next_candidate ?config:(cfg = default_config)
    circuit =
  let t_start = Sys.time () in
  let t_wall = Unix.gettimeofday () in
  (* Placement cost evaluations performed by this run (SA moves across
     the backup/refine/BDIO loops plus admission sampling); restarts at
     zero on resume, like the timing stats. *)
  let evals = ref 0 in
  (* The sequential explorer is a one-worker pool: one arena, reused
     across every candidate — same serial allocation win, no domains. *)
  let arena = Arena.create () in
  let builder, backup, rng, resumed_state =
    match resume with
    | Some cp ->
      if cp.Checkpoint.par <> None then
        invalid_arg "Generator.resume: parallel checkpoint (use resume_par)";
      (* Reconstitute the builder from the snapshot.  The snapshot's
         placement order is the builder's live order at checkpoint
         time, so re-inserting preserves the relative id order that
         Resolve Overlaps keys its choices on — the resumed walk
         replays the uninterrupted run exactly. *)
      let builder = Structure.to_builder cp.Checkpoint.structure in
      let backup = Structure.backup cp.Checkpoint.structure in
      ( builder,
        backup,
        Rng.copy cp.Checkpoint.rng,
        Some
          ( cp.Checkpoint.step,
            cp.Checkpoint.dropped,
            cp.Checkpoint.current,
            cp.Checkpoint.current_cost ) )
    | None ->
      let rng = Rng.create ~seed:cfg.seed in
      let die_w, die_h = Circuit.default_die ~slack:cfg.die_slack circuit in
      let builder =
        match builder with
        | Some b -> b
        | None -> Builder.create ~weights:cfg.bdio.Bdio.weights circuit
      in
      let backup =
        match backup with
        | Some b -> b
        | None -> build_backup cfg rng circuit ~die_w ~die_h ~arena ~evals
      in
      (builder, backup, rng, None)
  in
  (* when resuming or extending, inherit the die the existing
     placements were built on *)
  let die_w = backup.Stored.placement.Placement.die_w in
  let die_h = backup.Stored.placement.Placement.die_h in
  let current, current_cost, steps, dropped =
    match resumed_state with
    | Some (step, dropped, current, current_cost) ->
      (* the snapshot's structure already holds the backup's territory *)
      (ref current, ref current_cost, ref step, ref dropped)
    | None ->
      (* The backup enters the structure first, owning its whole
         expansion box: a walk candidate only wins dimension territory
         by beating it (or a previous winner) on average cost in
         Resolve Overlaps.  This guarantees covered queries never
         answer worse than the fallback would. *)
      ignore (Builder.resolve_and_store builder backup);
      let current =
        ref
          (if cfg.seed_walk_with_backup then backup.Stored.placement
           else Placement.random rng circuit ~die_w ~die_h)
      in
      let bdio0, _ =
        evaluate_and_store builder cfg rng circuit backup !current ~arena ~evals
      in
      (current, ref bdio0.Bdio.avg_cost, ref 1, ref 0)
  in
  let max_shift =
    max 1 (int_of_float (cfg.max_shift_fraction *. float_of_int (max die_w die_h)))
  in
  let deadline_hit = ref false in
  let finished () =
    let deadline_exceeded =
      match cfg.max_seconds with
      | Some s -> Unix.gettimeofday () -. t_wall >= s
      | None -> false
    in
    if deadline_exceeded then deadline_hit := true;
    deadline_exceeded
    || !steps >= cfg.explorer_iterations
    || Builder.n_live builder >= cfg.max_placements
    || Builder.coverage builder >= cfg.coverage_target
  in
  (* Snapshot the whole walk state — structure, accepted placement,
     counters, exact RNG state — so a kill between two checkpoints
     costs at most [checkpoint_every] steps of work. *)
  let write_checkpoint path =
    Checkpoint.save
      {
        Checkpoint.step = !steps;
        dropped = !dropped;
        current = !current;
        current_cost = !current_cost;
        rng;
        par = None;
        structure = Structure.compile ~backup builder;
      }
      ~path
  in
  let maybe_checkpoint () =
    match cfg.checkpoint_path with
    | Some path when cfg.checkpoint_every > 0 && !steps mod cfg.checkpoint_every = 0 ->
      write_checkpoint path
    | _ -> ()
  in
  let refine placement =
    refine_candidate cfg rng circuit ~die_w ~die_h ~arena ~evals placement
  in
  while not (finished ()) do
    let candidate = refine (next_candidate rng builder ~max_shift !current) in
    let bdio, survived =
      evaluate_and_store builder cfg rng circuit backup candidate ~arena ~evals
    in
    if not survived then incr dropped;
    (* Metropolis acceptance on the BDIO average cost (Fig. 4's
       "Accept New Placement?" check). *)
    let dc = bdio.Bdio.avg_cost -. !current_cost in
    let temp = Schedule.temperature cfg.explorer_schedule ~step:!steps in
    if dc <= 0.0 || Rng.float rng 1.0 < exp (-.dc /. temp) then begin
      current := candidate;
      current_cost := bdio.Bdio.avg_cost
    end;
    incr steps;
    maybe_checkpoint ()
  done;
  (* A deadline stop snapshots the final state so resuming loses no
     work at all (not just up to the last periodic checkpoint). *)
  (match cfg.checkpoint_path with
  | Some path when !deadline_hit -> write_checkpoint path
  | _ -> ());
  let stats =
    {
      placements_stored = Builder.n_live builder;
      coverage = Builder.coverage builder;
      explorer_steps = !steps;
      candidates_dropped = !dropped;
      cost_evaluations = !evals;
      generation_seconds = Sys.time () -. t_start;
      deadline_hit = !deadline_hit;
    }
  in
  (builder, backup, stats)

(* The two explorer variants differ only in how the next candidate is
   chosen: a perturbation of the accepted placement (the paper), or a
   fresh random placement (ablation A2). *)

let generate_builder ?(config = default_config) circuit =
  let next rng _builder ~max_shift current =
    Perturb.perturb rng circuit ~fraction:config.perturb_fraction ~max_shift current
  in
  let builder, _backup, stats = run_explorer ~next_candidate:next ~config circuit in
  (builder, stats)

let generate ?(config = default_config) circuit =
  let next rng _builder ~max_shift current =
    Perturb.perturb rng circuit ~fraction:config.perturb_fraction ~max_shift current
  in
  let builder, backup, stats = run_explorer ~next_candidate:next ~config circuit in
  (Structure.compile ~backup builder, stats)

let random_explorer ?(config = default_config) circuit =
  let die_w, die_h = Circuit.default_die ~slack:config.die_slack circuit in
  let next rng _builder ~max_shift:_ _current =
    Placement.random rng circuit ~die_w ~die_h
  in
  let builder, backup, stats = run_explorer ~next_candidate:next ~config circuit in
  (Structure.compile ~backup builder, stats)

let extend ?(config = default_config) structure =
  let circuit = Structure.circuit structure in
  let builder = Structure.to_builder structure in
  let backup = Structure.backup structure in
  let next rng _builder ~max_shift current =
    Perturb.perturb rng circuit ~fraction:config.perturb_fraction ~max_shift current
  in
  let builder, backup, stats =
    run_explorer ~builder ~backup ~next_candidate:next ~config circuit
  in
  (Structure.compile ~backup builder, stats)

let resume ?(config = default_config) checkpoint =
  let circuit = Structure.circuit checkpoint.Checkpoint.structure in
  let next rng _builder ~max_shift current =
    Perturb.perturb rng circuit ~fraction:config.perturb_fraction ~max_shift current
  in
  let builder, backup, stats =
    run_explorer ~resume:checkpoint ~next_candidate:next ~config circuit
  in
  (Structure.compile ~backup builder, stats)

(* ---- Deterministic parallel generation (DESIGN.md §9) ----

   The task list is fixed by the config alone: [backup_restarts]
   coordinate-annealing tasks, then [explorer_restarts] independent
   Metropolis walks advanced in lockstep rounds of [walk_chunk] steps
   each.  Every task draws from its own stream ([Rng.split] by task
   id), and results are merged into the builder in (round, walk, step)
   order — so the structure is a pure function of the config, never of
   the job count or the scheduler.  Each task builds its own
   [Incremental] engine inside [Bdio.optimize]/[Coord_opt.optimize]:
   no mutable cost state ever crosses a domain. *)

module Pool = Mps_parallel.Pool

(* One explorer restart.  Mutated only by the domain that owns it for
   the current round; the pool's batch handshake publishes the writes
   before the merge reads them. *)
type walk_state = {
  mutable ws_step : int;
  mutable ws_current : Placement.t;
  mutable ws_cost : float;
  ws_rng : Rng.t;
}

let build_backup_par pool arenas config root circuit ~die_w ~die_h ~evals =
  let nominal = Dimbox.center (Circuit.dim_bounds circuit) in
  let coord_config = backup_coord_config config in
  let restarts = max 1 config.backup_restarts in
  (* chunk 1: a handful of heavyweight annealing runs — maximum
     balance, negligible claim traffic.  The worker slot picks the
     arena; stealing moves a restart to another worker's arena, never
     changes its result. *)
  let results =
    Pool.map_chunked pool ~chunk:1
      (fun ~worker k ->
        let rng = Rng.split root k in
        Coord_opt.optimize ~config:coord_config ~arena:arenas.(worker) ~rng circuit
          ~die_w ~die_h nominal)
      (Array.init restarts Fun.id)
  in
  Array.iter (fun r -> evals := !evals + r.Coord_opt.evaluations) results;
  (* strict [<]: ties go to the lowest restart index *)
  let optimized =
    Array.fold_left
      (fun best r -> if r.Coord_opt.cost < best.Coord_opt.cost then r else best)
      results.(0) results
  in
  (* finalization runs on the calling domain — its usual slot is the
     last one, but any arena would do (results never depend on one) *)
  finalize_backup config (Rng.split root restarts) circuit ~die_w ~die_h
    ~arena:arenas.(Array.length arenas - 1) ~evals optimized

(* Advance one walk by at most [chunk] steps, collecting the evaluated
   candidates (with their admission verdicts) in step order.  Walk step
   0 is the evaluation of the initial placement, mirroring the
   sequential explorer; afterwards each step is perturb -> refine ->
   evaluate -> Metropolis at the walk's own step temperature.  Runs
   entirely on the walk's private stream; returns the candidates and
   the cost evaluations spent (each task counts into its own
   accumulator — the shared total is summed at merge time). *)
let advance_walk cfg circuit backup ~die_w ~die_h ~max_shift ~chunk ~arena st =
  let evals = ref 0 in
  let out = ref [] in
  let rng = st.ws_rng in
  let budget = ref chunk in
  if st.ws_step = 0 && !budget > 0 then begin
    let candidate, bdio, admitted =
      evaluate_candidate cfg rng circuit backup st.ws_current ~arena ~evals
    in
    out := (candidate, admitted) :: !out;
    st.ws_cost <- bdio.Bdio.avg_cost;
    st.ws_step <- 1;
    decr budget
  end;
  while !budget > 0 && st.ws_step < cfg.explorer_iterations do
    let proposed =
      Perturb.perturb rng circuit ~fraction:cfg.perturb_fraction ~max_shift st.ws_current
    in
    let proposed = refine_candidate cfg rng circuit ~die_w ~die_h ~arena ~evals proposed in
    let candidate, bdio, admitted =
      evaluate_candidate cfg rng circuit backup proposed ~arena ~evals
    in
    out := (candidate, admitted) :: !out;
    let dc = bdio.Bdio.avg_cost -. st.ws_cost in
    let temp = Schedule.temperature cfg.explorer_schedule ~step:st.ws_step in
    if dc <= 0.0 || Rng.float rng 1.0 < exp (-.dc /. temp) then begin
      st.ws_current <- proposed;
      st.ws_cost <- bdio.Bdio.avg_cost
    end;
    st.ws_step <- st.ws_step + 1;
    decr budget
  done;
  (List.rev !out, !evals)

let run_par pool ?resume ~cfg circuit =
  let t_start = Sys.time () in
  let t_wall = Unix.gettimeofday () in
  let evals = ref 0 in
  (* Stream scheme: the root is never drawn from — child 0 seeds the
     backup restarts (task k -> stream k, finalization -> stream
     [restarts]), child 1 seeds the walks (walk w -> stream w). *)
  let root = Rng.create ~seed:cfg.seed in
  (* One arena per worker slot, reused across every chunk and round the
     slot ever runs (the whole point: candidate evaluation allocates
     nothing after warm-up, so domains stop triggering each other's
     stop-the-world minor collections). *)
  let arenas = Array.init (Pool.jobs pool) (fun _ -> Arena.create ()) in
  let builder, backup, walks, chunk, steps, dropped =
    match resume with
    | Some cp ->
      let ps =
        match cp.Checkpoint.par with
        | Some ps -> ps
        | None ->
          invalid_arg "Generator.resume_par: sequential checkpoint (use resume)"
      in
      let builder = Structure.to_builder cp.Checkpoint.structure in
      let backup = Structure.backup cp.Checkpoint.structure in
      let walks =
        Array.map
          (fun w ->
            {
              ws_step = w.Checkpoint.w_step;
              ws_current = w.Checkpoint.w_current;
              ws_cost = w.Checkpoint.w_cost;
              ws_rng = Rng.copy w.Checkpoint.w_rng;
            })
          ps.Checkpoint.walks
      in
      ( builder,
        backup,
        walks,
        ps.Checkpoint.chunk,
        ref cp.Checkpoint.step,
        ref cp.Checkpoint.dropped )
    | None ->
      let die_w, die_h = Circuit.default_die ~slack:cfg.die_slack circuit in
      let backup =
        build_backup_par pool arenas cfg (Rng.split root 0) circuit ~die_w ~die_h ~evals
      in
      let builder = Builder.create ~weights:cfg.bdio.Bdio.weights circuit in
      ignore (Builder.resolve_and_store builder backup);
      let walk_root = Rng.split root 1 in
      let walks =
        Array.init (max 1 cfg.explorer_restarts) (fun w ->
            let rng = Rng.split walk_root w in
            let current =
              if cfg.seed_walk_with_backup then backup.Stored.placement
              else
                Placement.random rng circuit ~die_w ~die_h
            in
            { ws_step = 0; ws_current = current; ws_cost = 0.0; ws_rng = rng })
      in
      (builder, backup, walks, max 1 cfg.walk_chunk, ref 0, ref 0)
  in
  let die_w = backup.Stored.placement.Placement.die_w in
  let die_h = backup.Stored.placement.Placement.die_h in
  let max_shift =
    max 1 (int_of_float (cfg.max_shift_fraction *. float_of_int (max die_w die_h)))
  in
  let deadline_hit = ref false in
  let stop = ref false in
  let limits_reached () =
    Builder.n_live builder >= cfg.max_placements
    || Builder.coverage builder >= cfg.coverage_target
  in
  let write_checkpoint path =
    Checkpoint.save
      {
        Checkpoint.step = !steps;
        dropped = !dropped;
        current = backup.Stored.placement;
        current_cost = backup.Stored.avg_cost;
        rng = root;
        par =
          Some
            {
              Checkpoint.restarts = Array.length walks;
              chunk;
              walks =
                Array.map
                  (fun st ->
                    {
                      Checkpoint.w_step = st.ws_step;
                      w_cost = st.ws_cost;
                      w_current = st.ws_current;
                      w_rng = Rng.copy st.ws_rng;
                    })
                  walks;
            };
        structure = Structure.compile ~backup builder;
      }
      ~path
  in
  (* A fresh run checkpoints immediately after the backup phase, so a
     kill during the (long) first rounds already has something to
     resume from. *)
  (match (cfg.checkpoint_path, resume) with
  | Some path, None when cfg.checkpoint_every > 0 -> write_checkpoint path
  | _ -> ());
  let rounds = ref 0 in
  let unfinished st = st.ws_step < cfg.explorer_iterations in
  if limits_reached () then stop := true;
  while (not !stop) && Array.exists unfinished walks do
    let live = Array.of_list (List.filter unfinished (Array.to_list walks)) in
    (* scheduling chunk 1: each walk advance is a heavyweight task
       (refine + BDIO + admission per step), so per-task claims cost
       nothing relative to the work and idle workers steal whole walks *)
    let outs =
      Pool.map_chunked pool ~chunk:1
        (fun ~worker st ->
          advance_walk cfg circuit backup ~die_w ~die_h ~max_shift ~chunk
            ~arena:arenas.(worker) st)
        live
    in
    (* Merge in (walk, step) order; stopping limits are re-checked
       before each record exactly like the sequential explorer.  A
       record arriving after the limits trip is discarded — at every
       job count, because the merge order never depends on jobs. *)
    Array.iter
      (fun (records, ev) ->
        evals := !evals + ev;
        List.iter
          (fun (candidate, admitted) ->
            if not !stop then begin
              if limits_reached () then stop := true
              else begin
                let survived =
                  admitted && Builder.resolve_and_store builder candidate <> []
                in
                if not survived then incr dropped;
                incr steps
              end
            end)
          records)
      outs;
    incr rounds;
    (match cfg.max_seconds with
    | Some s when Unix.gettimeofday () -. t_wall >= s ->
      deadline_hit := true;
      stop := true
    | _ -> ());
    (match cfg.checkpoint_path with
    | Some path
      when !deadline_hit
           || (cfg.checkpoint_every > 0 && !rounds mod cfg.checkpoint_every = 0) ->
      write_checkpoint path
    | _ -> ())
  done;
  let stats =
    {
      placements_stored = Builder.n_live builder;
      coverage = Builder.coverage builder;
      explorer_steps = !steps;
      candidates_dropped = !dropped;
      cost_evaluations = !evals;
      generation_seconds = Sys.time () -. t_start;
      deadline_hit = !deadline_hit;
    }
  in
  (Structure.compile ~backup builder, stats)

let generate_par ?(config = default_config) ?jobs ?on_pool_stats circuit =
  Pool.with_pool ?jobs (fun pool ->
      let r = run_par pool ~cfg:config circuit in
      (match on_pool_stats with Some f -> f (Pool.stats pool) | None -> ());
      r)

let resume_par ?(config = default_config) ?jobs ?on_pool_stats checkpoint =
  let circuit = Structure.circuit checkpoint.Checkpoint.structure in
  Pool.with_pool ?jobs (fun pool ->
      let r = run_par pool ~resume:checkpoint ~cfg:config circuit in
      (match on_pool_stats with Some f -> f (Pool.stats pool) | None -> ());
      r)

open Mps_geometry
open Mps_netlist
open Mps_placement
open Mps_cost

type severity = Info | Degraded | Fatal

type subject =
  | Structure_wide
  | Placement of int
  | Backup

type finding = {
  severity : severity;
  subject : subject;
  code : string;
  detail : string;
}

type report = {
  circuit_name : string;
  placements : int;
  explored : int;
  samples_per_box : int;
  query_samples : int;
  findings : finding list;
}

let severity_rank = function Info -> 0 | Degraded -> 1 | Fatal -> 2

let severity_to_string = function
  | Info -> "info"
  | Degraded -> "degraded"
  | Fatal -> "fatal"

let subject_to_string = function
  | Structure_wide -> "structure"
  | Placement i -> Printf.sprintf "placement %d" i
  | Backup -> "backup"

let clean report =
  List.for_all (fun f -> f.severity = Info) report.findings

let worst report =
  List.fold_left
    (fun acc f ->
      match acc with
      | Some s when severity_rank s >= severity_rank f.severity -> acc
      | _ -> Some f.severity)
    None report.findings

let count severity report =
  List.length (List.filter (fun f -> f.severity = severity) report.findings)

(* The checks.

   Each check appends findings to an accumulator; nothing raises — the
   auditor must survive any structure a salvage pass can produce. *)

let legal_breakdown ~weights circuit ~die_w ~die_h rects =
  let b = Cost.evaluate ~weights circuit ~die_w ~die_h rects in
  (b.Cost.overlap_area, b.Cost.oob_area)

let run ?pool ?(weights = Cost.default_weights) ?(samples_per_box = 12)
    ?(query_samples = 64) ?(seed = 7) ?(tolerance = 1e-6) structure =
  let circuit = Structure.circuit structure in
  let die_w, die_h = Structure.die structure in
  let bounds = Circuit.dim_bounds circuit in
  let stored = Structure.placements structure in
  let backup = Structure.backup structure in
  (* Every audited subject samples from its own stream (query probes =
     stream 0, backup = stream 1, placement i = stream 2+i), so the
     per-placement checks can fan out across a domain pool and still
     produce the identical report a sequential audit does. *)
  let root = Mps_rng.Rng.create ~seed in
  let add findings severity subject code fmt =
    Printf.ksprintf
      (fun detail -> findings := { severity; subject; code; detail } :: !findings)
      fmt
  in
  (* eq. 5: stored validity boxes pairwise disjoint.  Blame the
     higher-average-cost placement of an overlapping pair — that is the
     one quarantine will drop. *)
  let pair_findings =
    let acc = ref [] in
    Array.iteri
      (fun i a ->
        Array.iteri
          (fun j b ->
            if i < j && Dimbox.overlaps a.Stored.box b.Stored.box then begin
              let loser = if a.Stored.avg_cost <= b.Stored.avg_cost then j else i in
              let other = if loser = j then i else j in
              add acc Fatal (Placement loser) "box-overlap"
                "validity box overlaps placement %d (eq. 5 violated)" other
            end)
          stored)
      stored;
    List.rev !acc
  in
  (* Per-placement shape and legality checks; [rng] is the subject's
     private stream, [findings] its private accumulator. *)
  let check_placement rng findings subject (s : Stored.t) =
    let add severity subject code fmt = add findings severity subject code fmt in
    let p = s.Stored.placement in
    if p.Placement.die_w <> die_w || p.Placement.die_h <> die_h then
      add Fatal subject "die-mismatch" "placement die %dx%d, structure die %dx%d"
        p.Placement.die_w p.Placement.die_h die_w die_h;
    if Stored.n_blocks s <> Circuit.n_blocks circuit then
      add Fatal subject "block-count-mismatch" "%d blocks, circuit has %d"
        (Stored.n_blocks s) (Circuit.n_blocks circuit)
    else begin
      if
        (not s.Stored.template_like)
        && not (Dimbox.contains_box ~outer:s.Stored.expansion ~inner:s.Stored.box)
      then add Fatal subject "box-exceeds-expansion" "validity box exceeds the expansion box";
      if not (Dimbox.contains s.Stored.box s.Stored.best_dims) then
        add Fatal subject "best-dims-outside-box" "best_dims outside the validity box";
      (match Dimbox.inter s.Stored.box bounds with
      | Some i when Dimbox.equal i s.Stored.box -> ()
      | _ ->
        add Degraded subject "box-outside-domain"
          "validity box leaves the designer dimension space");
      (* Legality at the box corners plus seeded samples.  Inside the
         expansion box the raw coordinates must be legal (monotonicity);
         outside it (template-like territory) the placement answers by
         greedy re-packing, which guarantees no overlap but may exceed
         the die — the template's documented weakness, reported as
         Info. *)
      let check_point tag dims =
        let in_expansion = Dimbox.contains s.Stored.expansion dims in
        let rects =
          if in_expansion then Stored.instantiate s dims
          else Stored.instantiate_repacked s dims
        in
        let overlap, oob = legal_breakdown ~weights circuit ~die_w ~die_h rects in
        if overlap > 0 then
          add Fatal subject "illegal-floorplan" "%s: %d units of block overlap" tag overlap;
        if oob > 0 then
          if in_expansion then
            add Fatal subject "illegal-floorplan" "%s: %d units outside the die" tag oob
          else
            add Info subject "repack-outside-die"
              "%s: re-packed floorplan exceeds the die by %d units" tag oob
      in
      check_point "box lower corner" (Dimbox.lower_corner s.Stored.box);
      check_point "box upper corner" (Dimbox.upper_corner s.Stored.box);
      for k = 1 to samples_per_box do
        check_point
          (Printf.sprintf "sample %d" k)
          (Dimbox.random_dims rng s.Stored.box)
      done;
      (* Cost-field re-verification: the recorded best cost must be the
         cost function re-evaluated at the recorded best vector. *)
      if
        (not (Float.is_finite s.Stored.avg_cost))
        || not (Float.is_finite s.Stored.best_cost)
      then add Degraded subject "non-finite-cost" "avg/best cost not finite"
      else begin
        let recomputed = Bdio.cost_of_dims ~weights circuit p s.Stored.best_dims in
        if
          Float.abs (recomputed -. s.Stored.best_cost)
          > tolerance *. Float.max 1.0 (Float.abs s.Stored.best_cost)
        then
          add Degraded subject "best-cost-drift"
            "recorded best cost %.6g, re-evaluated %.6g at best_dims" s.Stored.best_cost
            recomputed;
        if s.Stored.avg_cost < s.Stored.best_cost -. 1e-9 then
          add Degraded subject "avg-below-best" "avg cost %.6g below best cost %.6g"
            s.Stored.avg_cost s.Stored.best_cost
      end
    end
  in
  (* The per-placement sweep is the audit's O(n · samples) hot loop;
     with a pool it fans out one task per stored placement, merged back
     in placement order. *)
  let placement_findings =
    let check i =
      let acc = ref [] in
      check_placement (Mps_rng.Rng.split root (2 + i)) acc (Placement i) stored.(i);
      List.rev !acc
    in
    let tasks = Array.init (Array.length stored) Fun.id in
    match pool with
    | Some pool -> Mps_parallel.Pool.map pool check tasks
    | None -> Array.map check tasks
  in
  let backup_findings =
    let acc = ref [] in
    check_placement (Mps_rng.Rng.split root 1) acc Backup backup;
    (* The backup is the quality floor for every uncovered query: it
       must at least be legal at the circuit's minimum dimensions, the
       anchor of the re-packing monotonicity argument. *)
    if Stored.n_blocks backup = Circuit.n_blocks circuit then begin
      if not (Placement.is_legal backup.Stored.placement (Circuit.min_dims circuit))
      then
        add acc Fatal Backup "backup-illegal-at-min"
          "backup placement illegal at the minimum dimension vector"
    end;
    List.rev !acc
  in
  (* Whole-space query probes, run through the compiled engine (the
     path production queries take): answering must be total, every
     answer must instantiate without block overlap, and the engine must
     agree with the linear reference oracle on every probe. *)
  let query_findings =
    let acc = ref [] in
    let rng = Mps_rng.Rng.split root 0 in
    let engine = Structure.Engine.create structure in
    let session = Structure.Engine.new_session () in
    for k = 1 to query_samples do
      let dims = Dimbox.random_dims rng bounds in
      (match Structure.Engine.instantiate_into engine session dims with
      | rects -> (
        match Rect.any_overlap rects with
        | Some (a, b) ->
          add acc Fatal Structure_wide "query-overlap"
            "query sample %d: blocks %d and %d overlap in the answer" k a b
        | None -> ())
      | exception e ->
        add acc Fatal Structure_wide "query-exception" "query sample %d raised %s" k
          (Printexc.to_string e));
      match
        ( fst (Structure.Engine.query engine session dims),
          fst (Structure.query_linear structure dims) )
      with
      | a1, a2 when a1 = a2 -> ()
      | a1, a2 ->
        add acc Fatal Structure_wide "engine-mismatch"
          "query sample %d: engine answered %s, linear oracle %s" k
          (Structure.answer_to_string a1)
          (Structure.answer_to_string a2)
      | exception e ->
        add acc Fatal Structure_wide "query-exception"
          "query sample %d: oracle comparison raised %s" k (Printexc.to_string e)
    done;
    List.rev !acc
  in
  let ordered =
    List.stable_sort
      (fun a b -> Int.compare (severity_rank b.severity) (severity_rank a.severity))
      (pair_findings
      @ List.concat (Array.to_list placement_findings)
      @ backup_findings @ query_findings)
  in
  {
    circuit_name = circuit.Circuit.name;
    placements = Array.length stored;
    explored = Structure.n_explored structure;
    samples_per_box;
    query_samples;
    findings = ordered;
  }

let to_string report =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "audit of %s: %s" report.circuit_name
    (if clean report then "CLEAN" else "FINDINGS");
  line "  placements: %d (%d explored)" report.placements report.explored;
  line "  checks: %d samples/box, %d query probes" report.samples_per_box
    report.query_samples;
  line "  findings: %d fatal, %d degraded, %d info" (count Fatal report)
    (count Degraded report) (count Info report);
  List.iter
    (fun f ->
      line "  [%s] %s: %s: %s"
        (String.uppercase_ascii (severity_to_string f.severity))
        (subject_to_string f.subject) f.code f.detail)
    report.findings;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json report =
  let finding f =
    Printf.sprintf
      "    { \"severity\": \"%s\", \"subject\": \"%s\", \"code\": \"%s\", \"detail\": \
       \"%s\" }"
      (severity_to_string f.severity)
      (json_escape (subject_to_string f.subject))
      (json_escape f.code) (json_escape f.detail)
  in
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  \"circuit\": \"%s\"," (json_escape report.circuit_name);
      Printf.sprintf "  \"clean\": %b," (clean report);
      Printf.sprintf "  \"placements\": %d," report.placements;
      Printf.sprintf "  \"explored\": %d," report.explored;
      Printf.sprintf "  \"samples_per_box\": %d," report.samples_per_box;
      Printf.sprintf "  \"query_samples\": %d," report.query_samples;
      Printf.sprintf "  \"fatal\": %d," (count Fatal report);
      Printf.sprintf "  \"degraded\": %d," (count Degraded report);
      Printf.sprintf "  \"info\": %d," (count Info report);
      "  \"findings\": [";
      String.concat ",\n" (List.map finding report.findings);
      "  ]";
      "}";
      "";
    ]

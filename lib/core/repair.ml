open Mps_geometry
open Mps_netlist
open Mps_placement
open Mps_cost

type config = {
  weights : Cost.weights;
  samples_per_box : int;
  query_samples : int;
  seed : int;
  tolerance : float;
  reanneal_iterations : int;
  max_reanneals : int;
}

let default_config =
  {
    weights = Cost.default_weights;
    samples_per_box = 12;
    query_samples = 64;
    seed = 7;
    tolerance = 1e-6;
    reanneal_iterations = 0;
    max_reanneals = 4;
  }

type outcome = {
  structure : Structure.t;
  before : Audit.report;
  after : Audit.report;
  quarantined : int list;
  repaired_in_place : int;
  reannealed : int;
  backup_rebuilt : bool;
}

let clean outcome = Audit.clean outcome.after

let audit ?pool config structure =
  Audit.run ?pool ~weights:config.weights ~samples_per_box:config.samples_per_box
    ~query_samples:config.query_samples ~seed:config.seed ~tolerance:config.tolerance
    structure

(* Findings indexed by subject. *)
let findings_for subject report =
  List.filter (fun f -> f.Audit.subject = subject) report.Audit.findings

let has_fatal subject report =
  List.exists (fun f -> f.Audit.severity = Audit.Fatal) (findings_for subject report)

let has_degraded subject report =
  List.exists (fun f -> f.Audit.severity = Audit.Degraded) (findings_for subject report)

(* In-place repair of Degraded cost/box findings: clamp the box into the
   designer domain and re-evaluate the cost fields at (the possibly
   re-clamped) best_dims. *)
let refresh config circuit bounds (s : Stored.t) =
  match Dimbox.inter s.Stored.box bounds with
  | None -> None (* box entirely outside the domain: unrepairable in place *)
  | Some box ->
    let best_dims = Dimbox.clamp box s.Stored.best_dims in
    let best_cost =
      Bdio.cost_of_dims ~weights:config.weights circuit s.Stored.placement best_dims
    in
    if not (Float.is_finite best_cost) then None
    else
      let avg_cost =
        if Float.is_finite s.Stored.avg_cost then Float.max s.Stored.avg_cost best_cost
        else best_cost
      in
      (match
         Stored.make ~template_like:s.Stored.template_like ~placement:s.Stored.placement
           ~box ~expansion:s.Stored.expansion ~avg_cost ~best_cost ~best_dims
       with
      | repaired -> Some repaired
      | exception Invalid_argument _ -> None)

(* A fresh template-like backup: coordinates annealed at the nominal
   dimensions under the given budget, claiming the whole designer
   space.  Mirrors Generator.build_backup, with a bounded budget. *)
let reanneal_backup config rng circuit ~die_w ~die_h =
  let bounds = Circuit.dim_bounds circuit in
  let nominal = Dimbox.center bounds in
  let coord_config =
    {
      Coord_opt.default_config with
      Coord_opt.iterations = config.reanneal_iterations;
      weights = config.weights;
    }
  in
  let r = Coord_opt.optimize ~config:coord_config ~rng circuit ~die_w ~die_h nominal in
  let placement =
    if Placement.is_legal r.Coord_opt.placement (Circuit.min_dims circuit) then
      Some r.Coord_opt.placement
    else
      (* bounded budget may not reach legality; fall back to rejection
         sampling, which raises only on an impossible die *)
      (try Some (Placement.random rng circuit ~die_w ~die_h) with Failure _ -> None)
  in
  match placement with
  | None -> None
  | Some placement ->
    let expansion = Expand.expand circuit placement in
    let best_dims = Dimbox.clamp expansion nominal in
    let best_cost = Bdio.cost_of_dims ~weights:config.weights circuit placement best_dims in
    let avg_cost =
      let samples = 32 in
      let total = ref 0.0 in
      for _ = 1 to samples do
        let dims = Dimbox.random_dims rng bounds in
        let rects =
          Repack.instantiate ~die:(die_w, die_h) ~coords:placement.Placement.coords dims
        in
        total := !total +. Cost.total ~weights:config.weights circuit ~die_w ~die_h rects
      done;
      Float.max (!total /. float_of_int samples) best_cost
    in
    Some
      (Stored.make ~template_like:true ~placement ~box:bounds ~expansion ~avg_cost
         ~best_cost ~best_dims)

(* Promote the best surviving min-legal placement to template duty. *)
let promote_backup circuit bounds survivors =
  let candidates =
    List.filter
      (fun (s : Stored.t) ->
        Stored.n_blocks s = Circuit.n_blocks circuit
        && Placement.is_legal s.Stored.placement (Circuit.min_dims circuit))
      survivors
  in
  match
    List.sort
      (fun (a : Stored.t) b -> Float.compare a.Stored.best_cost b.Stored.best_cost)
      candidates
  with
  | [] -> None
  | best :: _ ->
    Some
      (Stored.make ~template_like:true ~placement:best.Stored.placement ~box:bounds
         ~expansion:best.Stored.expansion ~avg_cost:best.Stored.avg_cost
         ~best_cost:best.Stored.best_cost
         ~best_dims:(Dimbox.clamp bounds best.Stored.best_dims))

(* Re-anneal one quarantined box: short coordinate annealing toward the
   box center (on the incremental delta-cost engine inside Coord_opt),
   admitted back only when legal, expandable and disjoint from every
   kept box. *)
let reanneal_box config rng circuit ~die_w ~die_h kept_boxes (lost : Stored.t) =
  let bounds = Circuit.dim_bounds circuit in
  match Dimbox.inter lost.Stored.box bounds with
  | None -> None
  | Some territory ->
    if List.exists (Dimbox.overlaps territory) kept_boxes then None
    else
      let target = Dimbox.center territory in
      let coord_config =
        {
          Coord_opt.default_config with
          Coord_opt.iterations = config.reanneal_iterations;
          weights = config.weights;
        }
      in
      let r =
        Coord_opt.optimize ~config:coord_config
          ~initial:lost.Stored.placement.Placement.coords ~rng circuit ~die_w ~die_h
          target
      in
      if not (Placement.is_legal r.Coord_opt.placement (Circuit.min_dims circuit)) then
        None
      else
        let placement = r.Coord_opt.placement in
        let expansion = Expand.expand circuit placement in
        (match Dimbox.inter territory expansion with
        | None -> None
        | Some box ->
          let best_dims = Dimbox.clamp box target in
          let best_cost =
            Bdio.cost_of_dims ~weights:config.weights circuit placement best_dims
          in
          let avg_cost =
            let samples = 16 in
            let total = ref 0.0 in
            for _ = 1 to samples do
              let dims = Dimbox.random_dims rng box in
              total :=
                !total
                +. Bdio.cost_of_dims ~weights:config.weights circuit placement dims
            done;
            Float.max (!total /. float_of_int samples) best_cost
          in
          Some
            (Stored.make ~template_like:false ~placement ~box ~expansion ~avg_cost
               ~best_cost ~best_dims))

let run ?pool ?(config = default_config) structure =
  let before = audit ?pool config structure in
  if Audit.clean before then
    {
      structure;
      before;
      after = before;
      quarantined = [];
      repaired_in_place = 0;
      reannealed = 0;
      backup_rebuilt = false;
    }
  else
    try
    begin
    let circuit = Structure.circuit structure in
    let bounds = Circuit.dim_bounds circuit in
    let die_w, die_h = Structure.die structure in
    let stored = Structure.placements structure in
    (* Stream scheme mirroring the auditor: backup rebuild = stream 0,
       quarantined placement i = stream 1+i — so the reanneal fan-out
       below gives the same result with or without a pool. *)
    let root = Mps_rng.Rng.create ~seed:config.seed in
    let quarantined = ref [] and repaired_in_place = ref 0 in
    (* 1. Quarantine Fatal placements; repair Degraded ones in place. *)
    let survivors =
      Array.to_list stored
      |> List.mapi (fun i s -> (i, s))
      |> List.filter_map (fun (i, s) ->
             if has_fatal (Audit.Placement i) before then begin
               quarantined := i :: !quarantined;
               None
             end
             else if has_degraded (Audit.Placement i) before then
               match refresh config circuit bounds s with
               | Some repaired ->
                 incr repaired_in_place;
                 Some (i, repaired)
               | None ->
                 quarantined := i :: !quarantined;
                 None
             else Some (i, s))
    in
    (* 2. Rebuild the backup when it failed its audit. *)
    let backup0 = Structure.backup structure in
    let backup, backup_rebuilt =
      if has_fatal Audit.Backup before then
        let rebuilt =
          if config.reanneal_iterations > 0 then
            reanneal_backup config (Mps_rng.Rng.split root 0) circuit ~die_w ~die_h
          else None
        in
        match rebuilt with
        | Some b -> (b, true)
        | None -> (
          match promote_backup circuit bounds (List.map snd survivors) with
          | Some b -> (b, true)
          | None -> (backup0, false) (* nothing better: keep, stays non-clean *))
      else if has_degraded Audit.Backup before then
        match refresh config circuit bounds backup0 with
        | Some b -> (b, true)
        | None -> (backup0, false)
      else (backup0, false)
    in
    (* 3. Optionally re-anneal quarantined territory under the bounded
       budget and re-admit what comes back legal and disjoint. *)
    let reannealed = ref 0 in
    let recovered =
      if config.reanneal_iterations <= 0 then []
      else begin
        (* Fan the annealing runs out (one task per quarantined box, on
           its own stream, against the survivors' boxes), then admit
           sequentially in ascending quarantine order.  Admission
           re-checks disjointness against everything already kept —
           quarantined boxes may overlap each other — and enforces the
           [max_reanneals] cap, so the outcome matches at any job
           count. *)
        let survivor_boxes = List.map (fun (_, s) -> s.Stored.box) survivors in
        let order = Array.of_list (List.rev !quarantined) in
        let candidate i =
          let s = stored.(i) in
          if s.Stored.template_like then None
          else
            reanneal_box config
              (Mps_rng.Rng.split root (1 + i))
              circuit ~die_w ~die_h survivor_boxes s
        in
        let candidates =
          match pool with
          | Some pool -> Mps_parallel.Pool.map pool candidate order
          | None -> Array.map candidate order
        in
        let kept_boxes = ref survivor_boxes in
        Array.to_list candidates
        |> List.filter_map (fun c ->
               match c with
               | Some fresh
                 when !reannealed < config.max_reanneals
                      && not
                           (List.exists
                              (Dimbox.overlaps fresh.Stored.box)
                              !kept_boxes) ->
                 incr reannealed;
                 kept_boxes := fresh.Stored.box :: !kept_boxes;
                 Some fresh
               | _ -> None)
      end
    in
    (* 4. Recompile leniently — belt and braces against residual
       overlaps — and re-audit. *)
    let admitted = Array.of_list (List.map snd survivors @ recovered) in
    let structure' =
      match Structure.of_placements_lenient ~backup circuit admitted with
      | s, _residual -> s
      | exception Invalid_argument _ -> (
        (* nothing admissible at all: serve the backup alone if it is
           well-formed, else give the original back un-repaired *)
        match Structure.of_placements ~backup circuit [| backup |] with
        | s -> s
        | exception Invalid_argument _ -> structure)
    in
    let after = audit ?pool config structure' in
    {
      structure = structure';
      before;
      after;
      quarantined = List.sort Int.compare !quarantined;
      repaired_in_place = !repaired_in_place;
      reannealed = !reannealed;
      backup_rebuilt;
    }
    end
    with _ ->
      (* the repair pass must never raise: an unexpected failure leaves
         the original structure un-repaired, visibly non-clean *)
      {
        structure;
        before;
        after = before;
        quarantined = [];
        repaired_in_place = 0;
        reannealed = 0;
        backup_rebuilt = false;
      }

let describe outcome =
  Printf.sprintf
    "repair: %d quarantined, %d repaired in place, %d re-annealed, backup %s; before: \
     %d fatal / %d degraded; after: %s"
    (List.length outcome.quarantined)
    outcome.repaired_in_place outcome.reannealed
    (if outcome.backup_rebuilt then "rebuilt" else "kept")
    (Audit.count Audit.Fatal outcome.before)
    (Audit.count Audit.Degraded outcome.before)
    (if Audit.clean outcome.after then "CLEAN" else "still flawed")

(** Low-level durability primitives shared by {!Codec} and
    {!Checkpoint}: payload checksums and crash-safe file replacement.

    Nothing here knows about the structure format; it only moves bytes
    safely.  All file errors surface as [Sys_error] so callers can map
    them into their own typed errors. *)

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3 polynomial, the zlib/PNG checksum) of the whole
    string. *)

val crc32_hex : string -> string
(** {!crc32} rendered as 8 lowercase hex digits — the token written on
    checksum lines. *)

val atomic_write : path:string -> string -> unit
(** Replace the file at [path] with the given contents atomically:
    write a fresh temporary file in the {e same} directory, flush and
    fsync it, then [rename] over the destination.  A crash at any point
    leaves either the old complete file or the new complete file, never
    a truncated mix.  @raise Sys_error when the directory is not
    writable or the rename fails. *)

val read_file : path:string -> string
(** The whole file as a string.  @raise Sys_error when the file is
    missing or unreadable. *)

(** Low-level durability primitives shared by {!Codec} and
    {!Checkpoint}: payload checksums and crash-safe file replacement.

    Nothing here knows about the structure format; it only moves bytes
    safely.  All file errors surface as [Sys_error] so callers can map
    them into their own typed errors.

    Every file operation routes through an injectable {!io} backend so
    a fault-injection harness ({!Mps_fault.Fault}) can deterministically
    fail, truncate or corrupt any single primitive — the foundation of
    the chaos test suite. *)

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3 polynomial, the zlib/PNG checksum) of the whole
    string. *)

val crc32_hex : string -> string
(** {!crc32} rendered as 8 lowercase hex digits — the token written on
    checksum lines. *)

type words = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** A read-only word view of a file: every 8 little-endian bytes is one
    OCaml int.  The substrate of the MPSZ zero-copy format
    ({!Zcodec}). *)

val crc32_words : words -> pos:int -> len:int -> int32
(** CRC-32 of [len] words starting at [pos], each word contributing the
    8 little-endian bytes of its [Int64.of_int] image — byte-identical
    to {!crc32} of the same range as serialized by the MPSZ writer, so
    save-side (string) and load-side (mapped ints) checksums agree. *)

(** The pluggable I/O backend.  Each primitive raises [Sys_error] on
    failure, like its stdlib counterpart. *)
type io = {
  read_file : string -> string;  (** Whole file as a string. *)
  write_file : string -> string -> unit;
      (** Create/truncate and write all bytes, flushed and fsynced. *)
  rename : string -> string -> unit;
  fsync_dir : string -> unit;
      (** Fsync a directory so a completed rename survives power loss;
          best effort where unsupported. *)
  remove : string -> unit;
  map_words : string -> words * int;
      (** Map the whole file read-only as little-endian 8-byte words
          (a private mapping: the file cannot be modified through the
          view, and an {!atomic_write} rename replaces the inode
          without disturbing existing views).  Returns the view and
          the exact file size in bytes (the view covers the largest
          whole-word prefix). *)
}

val default_io : io
(** The real filesystem. *)

val current_io : unit -> io

val set_io : io -> unit
(** Install a backend globally (tests/fault injection).  Prefer
    {!with_io} for scoped use. *)

val with_io : io -> (unit -> 'a) -> 'a
(** Run a thunk with the given backend installed, restoring the
    previous backend afterwards (also on exceptions). *)

val atomic_write : path:string -> string -> unit
(** Replace the file at [path] with the given contents atomically:
    write a fresh temporary file in the {e same} directory, flush and
    fsync it, [rename] over the destination, then fsync the containing
    directory so the replacement itself is durable.  A crash at any
    point leaves either the old complete file or the new complete file,
    never a truncated mix; a failed write or rename unlinks the
    temporary file before the error surfaces (no [*.tmp] litter).
    Temporary names embed the writer's pid and a process-wide atomic
    counter, so concurrent writers — threads, domains or separate
    processes racing on the same [path] — never share a temporary
    file: the destination always ends up as {e some} writer's complete
    document.
    @raise Sys_error when the directory is not writable or the rename
    fails. *)

val read_file : path:string -> string
(** The whole file as a string.  @raise Sys_error when the file is
    missing or unreadable. *)

val map_words : path:string -> words * int
(** The whole file as a mapped word view plus its byte size, through
    the current {!io} backend.  @raise Sys_error when the file is
    missing or the mapping fails. *)

val map_shared : ?size:int -> path:string -> unit -> words * int
(** A {e read-write, MAP_SHARED} word view of the file: stores through
    the view land in the shared pages and are visible to every other
    process mapping the same file — the substrate of the shm ring
    transport ({!Mps_serve.Shm}).  [size = Some n] creates the file if
    needed and truncates it to [n] bytes first (the ring owner);
    [size = None] maps the existing file as-is (the attaching peer).
    Bypasses the injectable {!io} backend on purpose: ring faults are
    injected at the frame level, not the mapping level.
    @raise Sys_error when the open, truncate or mapping fails. *)

open Mps_geometry
open Mps_netlist

(* A frozen row: interval objects sorted by lower end, each with the
   bitset of placement indices valid on it. *)
type frozen_row = {
  lows : int array;
  highs : int array;
  sets : Bitset.t array;
}

type t = {
  circuit : Circuit.t;
  stored : Stored.t array;
  w_rows : frozen_row array;
  h_rows : frozen_row array;
  backup : Stored.t;
  space : Dimbox.t;
  die_w : int;
  die_h : int;
}

let freeze_row ~capacity row =
  let entries = Row.intervals row in
  let n = List.length entries in
  let lows = Array.make n 0 and highs = Array.make n 0 in
  let sets = Array.init n (fun _ -> Bitset.create ~capacity) in
  List.iteri
    (fun k (iv, ids) ->
      lows.(k) <- Interval.lo iv;
      highs.(k) <- Interval.hi iv;
      Row.Int_set.iter (fun id -> Bitset.add sets.(k) id) ids)
    entries;
  { lows; highs; sets }

let of_placements ?backup circuit stored =
  if Array.length stored = 0 then invalid_arg "Structure.of_placements: no placements";
  let n_blocks = Circuit.n_blocks circuit in
  Array.iter
    (fun s ->
      if Stored.n_blocks s <> n_blocks then
        invalid_arg "Structure.of_placements: block count mismatch")
    stored;
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i < j && Dimbox.overlaps a.Stored.box b.Stored.box then
            invalid_arg "Structure.of_placements: overlapping validity boxes")
        stored)
    stored;
  let capacity = Array.length stored in
  (* Re-register every live placement under its compact index. *)
  let w_rows_builder = Array.make n_blocks Row.empty in
  let h_rows_builder = Array.make n_blocks Row.empty in
  Array.iteri
    (fun id s ->
      for i = 0 to n_blocks - 1 do
        w_rows_builder.(i) <-
          Row.add_range w_rows_builder.(i) (Dimbox.w_interval s.Stored.box i) id;
        h_rows_builder.(i) <-
          Row.add_range h_rows_builder.(i) (Dimbox.h_interval s.Stored.box i) id
      done)
    stored;
  let best = ref 0 in
  Array.iteri
    (fun id s ->
      if s.Stored.best_cost < stored.(!best).Stored.best_cost then best := id)
    stored;
  let backup = match backup with Some b -> b | None -> stored.(!best) in
  if Stored.n_blocks backup <> n_blocks then
    invalid_arg "Structure.of_placements: backup block count mismatch";
  let die_w, die_h =
    let p = stored.(0).Stored.placement in
    (p.Mps_placement.Placement.die_w, p.Mps_placement.Placement.die_h)
  in
  {
    circuit;
    stored = Array.copy stored;
    w_rows = Array.map (freeze_row ~capacity) w_rows_builder;
    h_rows = Array.map (freeze_row ~capacity) h_rows_builder;
    backup;
    space = Circuit.dim_bounds circuit;
    die_w;
    die_h;
  }

let compile ?backup builder =
  let entries = Builder.live builder in
  if entries = [] then invalid_arg "Structure.compile: empty builder";
  of_placements ?backup (Builder.circuit builder) (Array.of_list (List.map snd entries))

(* Lenient compilation for quarantine/repair: instead of refusing a
   flawed placement set, keep the largest well-formed disjoint subset —
   better (lower average-cost) placements win contested territory — and
   report what was dropped.  Queries over dropped territory fall back to
   the backup template, the paper's answer for uncovered space. *)
let of_placements_lenient ?backup circuit stored =
  let n_blocks = Circuit.n_blocks circuit in
  let backup =
    match backup with
    | Some b when Stored.n_blocks b = n_blocks -> Some b
    | _ -> None
  in
  let indexed = Array.to_list (Array.mapi (fun i s -> (i, s)) stored) in
  let by_quality =
    List.stable_sort
      (fun (_, a) (_, b) -> Float.compare a.Stored.avg_cost b.Stored.avg_cost)
      indexed
  in
  let kept = ref [] and dropped = ref [] in
  List.iter
    (fun (i, s) ->
      let admissible =
        Stored.n_blocks s = n_blocks
        && (s.Stored.template_like
           || Dimbox.contains_box ~outer:s.Stored.expansion ~inner:s.Stored.box)
        && Dimbox.contains s.Stored.box s.Stored.best_dims
        && not
             (List.exists
                (fun (_, k) -> Dimbox.overlaps k.Stored.box s.Stored.box)
                !kept)
      in
      if admissible then kept := (i, s) :: !kept else dropped := i :: !dropped)
    by_quality;
  let kept = List.sort (fun (i, _) (j, _) -> Int.compare i j) !kept in
  let survivors = Array.of_list (List.map snd kept) in
  let survivors =
    if Array.length survivors > 0 then survivors
    else match backup with Some b -> [| b |] | None -> [||]
  in
  if Array.length survivors = 0 then
    invalid_arg "Structure.of_placements_lenient: no admissible placement";
  (of_placements ?backup circuit survivors, List.sort Int.compare !dropped)

let circuit t = t.circuit
let n_placements t = Array.length t.stored

let n_explored t =
  Array.fold_left (fun acc s -> if s.Stored.template_like then acc else acc + 1) 0 t.stored
let placements t = Array.copy t.stored
let backup t = t.backup
let die t = (t.die_w, t.die_h)

let coverage t =
  Array.fold_left
    (fun acc s ->
      if s.Stored.template_like then acc
      else acc +. Dimbox.volume_fraction s.Stored.box ~bounds:t.space)
    0.0 t.stored

let coverage_sampled ~seed ~samples t =
  if samples <= 0 then invalid_arg "Structure.coverage_sampled: need samples";
  let rng = Mps_rng.Rng.create ~seed in
  let hits = ref 0 in
  for _ = 1 to samples do
    let dims = Dimbox.random_dims rng t.space in
    let covered =
      Array.exists
        (fun s -> (not s.Stored.template_like) && Dimbox.contains s.Stored.box dims)
        t.stored
    in
    if covered then incr hits
  done;
  float_of_int !hits /. float_of_int samples

let describe t =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "structure for %s" t.circuit.Circuit.name;
  line "  die: %dx%d" t.die_w t.die_h;
  line "  placements: %d explored + %d template pieces"
    (Array.fold_left (fun acc s -> if s.Stored.template_like then acc else acc + 1) 0 t.stored)
    (Array.fold_left (fun acc s -> if s.Stored.template_like then acc + 1 else acc) 0 t.stored);
  line "  coverage (explored): %.6f" (coverage t);
  let objects rows =
    Array.fold_left (fun acc row -> acc + Array.length row.lows) 0 rows
  in
  line "  interval objects: %d width / %d height over %d blocks"
    (objects t.w_rows) (objects t.h_rows) (Circuit.n_blocks t.circuit);
  let best = ref t.stored.(0) in
  Array.iter (fun s -> if s.Stored.best_cost < !best.Stored.best_cost then best := s) t.stored;
  line "  best stored cost: %.1f (avg %.1f)" !best.Stored.best_cost !best.Stored.avg_cost;
  Buffer.contents buf

(* Largest index with lows.(k) <= v, or -1. *)
let row_lookup row v =
  let n = Array.length row.lows in
  let rec bsearch lo hi =
    if lo > hi then hi
    else
      let mid = (lo + hi) / 2 in
      if row.lows.(mid) <= v then bsearch (mid + 1) hi else bsearch lo (mid - 1)
  in
  let k = bsearch 0 (n - 1) in
  if k >= 0 && row.highs.(k) >= v then Some row.sets.(k) else None

type answer =
  | Stored_placement of int
  | Fallback
  | Out_of_domain

let query t dims =
  if Dims.n_blocks dims <> Circuit.n_blocks t.circuit then
    invalid_arg "Structure.query: block count mismatch";
  if not (Circuit.dims_valid t.circuit dims) then (Out_of_domain, t.backup)
  else
  let n = Circuit.n_blocks t.circuit in
  let acc = Bitset.full ~capacity:(Array.length t.stored) in
  let exception Miss in
  let narrow row v =
    match row_lookup row v with
    | Some set ->
      Bitset.inter_into acc set;
      if Bitset.is_empty acc then raise Miss
    | None -> raise Miss
  in
  try
    for i = 0 to n - 1 do
      narrow t.w_rows.(i) (Dims.width dims i);
      narrow t.h_rows.(i) (Dims.height dims i)
    done;
    match Bitset.choose acc with
    | Some id ->
      assert (Bitset.cardinal acc = 1) (* eq. 5: boxes are disjoint *);
      (Stored_placement id, t.stored.(id))
    | None -> (Fallback, t.backup)
  with Miss -> (Fallback, t.backup)

let query_linear t dims =
  if Dims.n_blocks dims <> Circuit.n_blocks t.circuit then
    invalid_arg "Structure.query_linear: block count mismatch";
  if not (Circuit.dims_valid t.circuit dims) then (Out_of_domain, t.backup)
  else
  let n = Array.length t.stored in
  let rec scan id =
    if id >= n then (Fallback, t.backup)
    else if Dimbox.contains t.stored.(id).Stored.box dims then
      (Stored_placement id, t.stored.(id))
    else scan (id + 1)
  in
  scan 0

let instantiate t dims =
  match query t dims with
  | Stored_placement _, s -> Stored.instantiate_auto s dims
  | (Fallback | Out_of_domain), s -> Stored.instantiate_repacked s dims

(* L1 distance from a vector to a box: sum over axes of the distance to
   the axis interval. *)
let box_distance box dims =
  let n = Dimbox.n_blocks box in
  let axis_distance iv v =
    let lo = Interval.lo iv and hi = Interval.hi iv in
    if v < lo then lo - v else if v > hi then v - hi else 0
  in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + axis_distance (Dimbox.w_interval box i) (Dims.width dims i);
    acc := !acc + axis_distance (Dimbox.h_interval box i) (Dims.height dims i)
  done;
  !acc

let nearest t dims =
  if Dims.n_blocks dims <> Circuit.n_blocks t.circuit then
    invalid_arg "Structure.nearest: block count mismatch";
  let best = ref 0 and best_d = ref max_int in
  Array.iteri
    (fun id s ->
      let d = box_distance s.Stored.box dims in
      if
        d < !best_d
        || (d = !best_d && s.Stored.best_cost < t.stored.(!best).Stored.best_cost)
      then begin
        best := id;
        best_d := d
      end)
    t.stored;
  !best

let instantiate_nearest t dims =
  match query t dims with
  | Stored_placement _, s -> Stored.instantiate_auto s dims
  | (Fallback | Out_of_domain), _ ->
    Stored.instantiate_repacked t.stored.(nearest t dims) dims

let to_builder t =
  let builder = Builder.create t.circuit in
  Array.iter (fun s -> ignore (Builder.resolve_and_store builder s)) t.stored;
  builder

let instantiate_cost ?(weights = Mps_cost.Cost.default_weights) t dims =
  let rects = instantiate t dims in
  let cost = Mps_cost.Cost.total ~weights t.circuit ~die_w:t.die_w ~die_h:t.die_h rects in
  (rects, cost)

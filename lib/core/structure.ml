open Mps_geometry
open Mps_netlist

(* A frozen row: interval objects sorted by lower end, each with the
   bitset of placement indices valid on it. *)
type frozen_row = {
  lows : int array;
  highs : int array;
  sets : Bitset.t array;
}

type t = {
  circuit : Circuit.t;
  stored : Stored.t array;
  w_rows : frozen_row array;
  h_rows : frozen_row array;
  backup : Stored.t;
  space : Dimbox.t;
  die_w : int;
  die_h : int;
}

let freeze_row ~capacity row =
  let entries = Row.intervals row in
  let n = List.length entries in
  let lows = Array.make n 0 and highs = Array.make n 0 in
  let sets = Array.init n (fun _ -> Bitset.create ~capacity) in
  List.iteri
    (fun k (iv, ids) ->
      lows.(k) <- Interval.lo iv;
      highs.(k) <- Interval.hi iv;
      Row.Int_set.iter (fun id -> Bitset.add sets.(k) id) ids)
    entries;
  { lows; highs; sets }

let of_placements ?backup circuit stored =
  if Array.length stored = 0 then invalid_arg "Structure.of_placements: no placements";
  let n_blocks = Circuit.n_blocks circuit in
  Array.iter
    (fun s ->
      if Stored.n_blocks s <> n_blocks then
        invalid_arg "Structure.of_placements: block count mismatch")
    stored;
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i < j && Dimbox.overlaps a.Stored.box b.Stored.box then
            invalid_arg "Structure.of_placements: overlapping validity boxes")
        stored)
    stored;
  let capacity = Array.length stored in
  (* Re-register every live placement under its compact index. *)
  let w_rows_builder = Array.make n_blocks Row.empty in
  let h_rows_builder = Array.make n_blocks Row.empty in
  Array.iteri
    (fun id s ->
      for i = 0 to n_blocks - 1 do
        w_rows_builder.(i) <-
          Row.add_range w_rows_builder.(i) (Dimbox.w_interval s.Stored.box i) id;
        h_rows_builder.(i) <-
          Row.add_range h_rows_builder.(i) (Dimbox.h_interval s.Stored.box i) id
      done)
    stored;
  let best = ref 0 in
  Array.iteri
    (fun id s ->
      if s.Stored.best_cost < stored.(!best).Stored.best_cost then best := id)
    stored;
  let backup = match backup with Some b -> b | None -> stored.(!best) in
  if Stored.n_blocks backup <> n_blocks then
    invalid_arg "Structure.of_placements: backup block count mismatch";
  let die_w, die_h =
    let p = stored.(0).Stored.placement in
    (p.Mps_placement.Placement.die_w, p.Mps_placement.Placement.die_h)
  in
  {
    circuit;
    stored = Array.copy stored;
    w_rows = Array.map (freeze_row ~capacity) w_rows_builder;
    h_rows = Array.map (freeze_row ~capacity) h_rows_builder;
    backup;
    space = Circuit.dim_bounds circuit;
    die_w;
    die_h;
  }

let compile ?backup builder =
  let entries = Builder.live builder in
  if entries = [] then invalid_arg "Structure.compile: empty builder";
  of_placements ?backup (Builder.circuit builder) (Array.of_list (List.map snd entries))

(* Lenient compilation for quarantine/repair: instead of refusing a
   flawed placement set, keep the largest well-formed disjoint subset —
   better (lower average-cost) placements win contested territory — and
   report what was dropped.  Queries over dropped territory fall back to
   the backup template, the paper's answer for uncovered space. *)
let of_placements_lenient ?backup circuit stored =
  let n_blocks = Circuit.n_blocks circuit in
  let backup =
    match backup with
    | Some b when Stored.n_blocks b = n_blocks -> Some b
    | _ -> None
  in
  let indexed = Array.to_list (Array.mapi (fun i s -> (i, s)) stored) in
  let by_quality =
    List.stable_sort
      (fun (_, a) (_, b) -> Float.compare a.Stored.avg_cost b.Stored.avg_cost)
      indexed
  in
  let kept = ref [] and dropped = ref [] in
  List.iter
    (fun (i, s) ->
      let admissible =
        Stored.n_blocks s = n_blocks
        && (s.Stored.template_like
           || Dimbox.contains_box ~outer:s.Stored.expansion ~inner:s.Stored.box)
        && Dimbox.contains s.Stored.box s.Stored.best_dims
        && not
             (List.exists
                (fun (_, k) -> Dimbox.overlaps k.Stored.box s.Stored.box)
                !kept)
      in
      if admissible then kept := (i, s) :: !kept else dropped := i :: !dropped)
    by_quality;
  let kept = List.sort (fun (i, _) (j, _) -> Int.compare i j) !kept in
  let survivors = Array.of_list (List.map snd kept) in
  let survivors =
    if Array.length survivors > 0 then survivors
    else match backup with Some b -> [| b |] | None -> [||]
  in
  if Array.length survivors = 0 then
    invalid_arg "Structure.of_placements_lenient: no admissible placement";
  (of_placements ?backup circuit survivors, List.sort Int.compare !dropped)

let circuit t = t.circuit
let n_placements t = Array.length t.stored

let n_explored t =
  Array.fold_left (fun acc s -> if s.Stored.template_like then acc else acc + 1) 0 t.stored
let placements t = Array.copy t.stored
let backup t = t.backup
let die t = (t.die_w, t.die_h)

let coverage t =
  Array.fold_left
    (fun acc s ->
      if s.Stored.template_like then acc
      else acc +. Dimbox.volume_fraction s.Stored.box ~bounds:t.space)
    0.0 t.stored

let coverage_sampled ~seed ~samples t =
  if samples <= 0 then invalid_arg "Structure.coverage_sampled: need samples";
  let rng = Mps_rng.Rng.create ~seed in
  let hits = ref 0 in
  for _ = 1 to samples do
    let dims = Dimbox.random_dims rng t.space in
    let covered =
      Array.exists
        (fun s -> (not s.Stored.template_like) && Dimbox.contains s.Stored.box dims)
        t.stored
    in
    if covered then incr hits
  done;
  float_of_int !hits /. float_of_int samples

let describe t =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "structure for %s" t.circuit.Circuit.name;
  line "  die: %dx%d" t.die_w t.die_h;
  let explored = ref 0 and template = ref 0 in
  Array.iter
    (fun s -> if s.Stored.template_like then incr template else incr explored)
    t.stored;
  line "  placements: %d explored + %d template pieces" !explored !template;
  line "  coverage (explored): %.6f" (coverage t);
  let objects rows =
    Array.fold_left (fun acc row -> acc + Array.length row.lows) 0 rows
  in
  line "  interval objects: %d width / %d height over %d blocks"
    (objects t.w_rows) (objects t.h_rows) (Circuit.n_blocks t.circuit);
  let best = ref t.stored.(0) in
  Array.iter (fun s -> if s.Stored.best_cost < !best.Stored.best_cost then best := s) t.stored;
  line "  best stored cost: %.1f (avg %.1f)" !best.Stored.best_cost !best.Stored.avg_cost;
  Buffer.contents buf

(* Index of the interval containing [v], or -1: binary search for the
   largest k with [lows.(k) <= v], then one inclusion test.  Returns a
   bare index so the hit path allocates no option. *)
let row_lookup_idx row v =
  let lows = row.lows in
  let l = ref 0 and h = ref (Array.length lows - 1) and k = ref (-1) in
  while !l <= !h do
    let mid = (!l + !h) / 2 in
    if lows.(mid) <= v then begin
      k := mid;
      l := mid + 1
    end
    else h := mid - 1
  done;
  if !k >= 0 && row.highs.(!k) >= v then !k else -1

type answer =
  | Stored_placement of int
  | Fallback
  | Out_of_domain

let answer_to_string = function
  | Stored_placement id -> Printf.sprintf "stored:%d" id
  | Fallback -> "fallback"
  | Out_of_domain -> "out-of-domain"

(* Hoisted out of [query] so the hot path neither defines a fresh
   exception constructor per call nor pays a backtrace on the miss
   path ([raise_notrace] below). *)
exception Miss

let query t dims =
  if Dims.n_blocks dims <> Circuit.n_blocks t.circuit then
    invalid_arg "Structure.query: block count mismatch";
  if not (Circuit.dims_valid t.circuit dims) then (Out_of_domain, t.backup)
  else
  let n = Circuit.n_blocks t.circuit in
  let acc = Bitset.full ~capacity:(Array.length t.stored) in
  let narrow row v =
    let k = row_lookup_idx row v in
    if k < 0 then raise_notrace Miss;
    Bitset.inter_into acc row.sets.(k);
    if Bitset.is_empty acc then raise_notrace Miss
  in
  try
    for i = 0 to n - 1 do
      narrow t.w_rows.(i) (Dims.width dims i);
      narrow t.h_rows.(i) (Dims.height dims i)
    done;
    (* eq. 5 guarantees at most one member; the disjointness invariant
       itself is re-proved by [Audit.run] and the test suite, not
       re-checked per query. *)
    match Bitset.choose acc with
    | Some id -> (Stored_placement id, t.stored.(id))
    | None -> (Fallback, t.backup)
  with Miss -> (Fallback, t.backup)

let query_linear t dims =
  if Dims.n_blocks dims <> Circuit.n_blocks t.circuit then
    invalid_arg "Structure.query_linear: block count mismatch";
  if not (Circuit.dims_valid t.circuit dims) then (Out_of_domain, t.backup)
  else
  let n = Array.length t.stored in
  let rec scan id =
    if id >= n then (Fallback, t.backup)
    else if Dimbox.contains t.stored.(id).Stored.box dims then
      (Stored_placement id, t.stored.(id))
    else scan (id + 1)
  in
  scan 0

let instantiate t dims =
  match query t dims with
  | Stored_placement _, s -> Stored.instantiate_auto s dims
  | (Fallback | Out_of_domain), s -> Stored.instantiate_repacked s dims

(* L1 distance from a vector to a box: sum over axes of the distance to
   the axis interval. *)
let box_distance box dims =
  let n = Dimbox.n_blocks box in
  let axis_distance iv v =
    let lo = Interval.lo iv and hi = Interval.hi iv in
    if v < lo then lo - v else if v > hi then v - hi else 0
  in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + axis_distance (Dimbox.w_interval box i) (Dims.width dims i);
    acc := !acc + axis_distance (Dimbox.h_interval box i) (Dims.height dims i)
  done;
  !acc

let nearest t dims =
  if Dims.n_blocks dims <> Circuit.n_blocks t.circuit then
    invalid_arg "Structure.nearest: block count mismatch";
  let best = ref 0 and best_d = ref max_int in
  Array.iteri
    (fun id s ->
      let d = box_distance s.Stored.box dims in
      if
        d < !best_d
        || (d = !best_d && s.Stored.best_cost < t.stored.(!best).Stored.best_cost)
      then begin
        best := id;
        best_d := d
      end)
    t.stored;
  !best

let instantiate_nearest t dims =
  match query t dims with
  | Stored_placement _, s -> Stored.instantiate_auto s dims
  | (Fallback | Out_of_domain), _ ->
    Stored.instantiate_repacked t.stored.(nearest t dims) dims

let to_builder t =
  let builder = Builder.create t.circuit in
  Array.iter (fun s -> ignore (Builder.resolve_and_store builder s)) t.stored;
  builder

let instantiate_cost ?(weights = Mps_cost.Cost.default_weights) t dims =
  let rects = instantiate t dims in
  let cost = Mps_cost.Cost.total ~weights t.circuit ~die_w:t.die_w ~die_h:t.die_h rects in
  (rects, cost)

(* ------------------------------------------------------------------ *)
(* The compiled query engine (DESIGN.md §10).

   [query] above walks the frozen rows in fixed block order, allocates
   a fresh full bitset per call and intersects through boxed [Bitset.t]
   objects.  The engine compiles the same rows once into contiguous int
   arrays (interval bounds and set words flattened side by side),
   orders the narrowing sequence by selectivity, drops rows that can
   never narrow, and keeps all per-query scratch in a reusable
   [session] — so a steady-state query allocates nothing.  A hot-box
   cache answers the common sizing-loop case (consecutive queries
   landing in the same validity box) with one [Dimbox.contains].
   [query]/[query_linear] remain the reference oracles. *)

module Engine = struct
  let bits_per_word = Sys.int_size

  type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

  (* What the engine actually needs of its origin: the stored records
     (for instantiation), the backup, circuit and die.  The full
     structure — frozen rows included — is only materialized on demand
     ([structure] below), so an engine loaded from an MPSZ mapping
     (Zcodec) never pays the O(n²) overlap re-validation and row
     rebuild unless somebody asks for the heap structure. *)
  type source = {
    s_circuit : Circuit.t;
    s_stored : Stored.t array;
    s_backup : Stored.t;
    s_space : Dimbox.t;
    s_die_w : int;
    s_die_h : int;
    mutable s_full : t option;
  }

  type t = {
    src : source;
    n_blocks : int;
    capacity : int;  (** number of stored placements *)
    words_per_set : int;
    tail_mask : int;  (** mask for the last word of a full set *)
    n_rows : int;
    lows_len : int;
        (** usable interval slots: caps binary-search indices so even
            garbage offsets read under a corrupted mapping stay inside
            [lows]/[highs]/[set_words] *)
    (* The narrowing plan, selectivity-ordered.  Row [r] tests axis
       [row_axis.{r}] (code [2i] = width of block [i], [2i+1] = height)
       against intervals [row_off.{r} .. row_off.{r+1} - 1] of the flat
       arrays; interval [k]'s placement set occupies words
       [k * words_per_set ..) of [set_words].  The arrays are int
       bigarrays so they can either live on the heap (built by
       [create]) or be zero-copy views into a read-only file mapping
       ([of_flat]); the query kernel is the same either way. *)
    row_axis : ints;
    row_off : ints;
    lows : ints;
    highs : ints;
    set_words : ints;
    skipped_rows : int;
    (* Designer dimension space flattened per axis code (2i = width of
       block i, 2i+1 = height): [Circuit.dims_valid] is exactly
       containment in these bounds, checked here without going through
       the block records. *)
    dom_lo : ints;
    dom_hi : ints;
    (* Every validity box flattened the same way ([box id * 2n + code]),
       so the hot-box test is pure int-array compares; [box_in_domain]
       (0/1 words) marks boxes fully inside the designer space, for
       which box membership implies domain membership and the domain
       check can be skipped. *)
    box_lo : ints;
    box_hi : ints;
    box_in_domain : ints;
  }

  let ints_of_array (a : int array) : ints =
    let b = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (Array.length a) in
    Array.iteri (fun i v -> Bigarray.Array1.unsafe_set b i v) a;
    b

  let usable_intervals ~lows ~set_words ~words_per_set =
    min (Bigarray.Array1.dim lows) (Bigarray.Array1.dim set_words / words_per_set)

  type session = {
    mutable owner : t option;  (** engine the scratch is currently sized for *)
    mutable acc : int array;  (** scratch intersection words *)
    mutable rects : Rect.t array;  (** scratch floorplan buffer *)
    mutable last : int;  (** hot-box cache: last stored hit, [-1] if none *)
    mutable queries : int;
    mutable cache_hits : int;
    mutable stored_hits : int;
    mutable fallbacks : int;
    mutable out_of_domain : int;
  }

  type stats = {
    queries : int;
    cache_hits : int;
    stored_hits : int;
    fallbacks : int;
    out_of_domain : int;
  }

  let create src =
    let n_blocks = Circuit.n_blocks src.circuit in
    let capacity = Array.length src.stored in
    let words_per_set = max 1 ((capacity + bits_per_word - 1) / bits_per_word) in
    let tail_mask =
      let used = capacity mod bits_per_word in
      if used = 0 then -1 else (1 lsl used) - 1
    in
    (* One candidate row per axis: (code, frozen_row, designer-space
       axis interval). *)
    let candidates =
      List.concat
        (List.init n_blocks (fun i ->
             [
               (2 * i, src.w_rows.(i), Dimbox.w_interval src.space i);
               ((2 * i) + 1, src.h_rows.(i), Dimbox.h_interval src.space i);
             ]))
    in
    (* A row narrows nothing when its single interval spans the whole
       designer axis with every placement on it: any in-domain value
       maps to the full set.  Skip it. *)
    let narrows (_, (row : frozen_row), bounds_iv) =
      not
        (Array.length row.lows = 1
        && row.lows.(0) <= Interval.lo bounds_iv
        && row.highs.(0) >= Interval.hi bounds_iv
        && Bitset.cardinal row.sets.(0) = capacity)
    in
    let active, skipped = List.partition narrows candidates in
    (* Most selective first: smallest average set, then more intervals,
       then axis code for determinism. *)
    let avg_set (_, (row : frozen_row), _) =
      let total = Array.fold_left (fun a s -> a + Bitset.cardinal s) 0 row.sets in
      float_of_int total /. float_of_int (max 1 (Array.length row.sets))
    in
    let ordered =
      List.stable_sort
        (fun ((ca, (ra : frozen_row), _) as a) ((cb, (rb : frozen_row), _) as b) ->
          match Float.compare (avg_set a) (avg_set b) with
          | 0 -> (
            match Int.compare (Array.length rb.lows) (Array.length ra.lows) with
            | 0 -> Int.compare ca cb
            | c -> c)
          | c -> c)
        active
    in
    let n_rows = List.length ordered in
    let n_intervals =
      List.fold_left
        (fun a (_, (row : frozen_row), _) -> a + Array.length row.lows)
        0 ordered
    in
    let row_axis = Array.make n_rows 0 in
    let row_off = Array.make (n_rows + 1) 0 in
    let lows = Array.make (max 1 n_intervals) 0 in
    let highs = Array.make (max 1 n_intervals) 0 in
    let set_words = Array.make (max 1 (n_intervals * words_per_set)) 0 in
    let cursor = ref 0 in
    List.iteri
      (fun r (code, (row : frozen_row), _) ->
        row_axis.(r) <- code;
        row_off.(r) <- !cursor;
        Array.iteri
          (fun j lo ->
            let k = !cursor + j in
            lows.(k) <- lo;
            highs.(k) <- row.highs.(j);
            Bitset.iter row.sets.(j) ~f:(fun id ->
                let w = (k * words_per_set) + (id / bits_per_word) in
                set_words.(w) <- set_words.(w) lor (1 lsl (id mod bits_per_word))))
          row.lows;
        cursor := !cursor + Array.length row.lows)
      ordered;
    row_off.(n_rows) <- !cursor;
    let dom_lo = Array.make (2 * n_blocks) 0 and dom_hi = Array.make (2 * n_blocks) 0 in
    for i = 0 to n_blocks - 1 do
      let wi = Dimbox.w_interval src.space i and hi_ = Dimbox.h_interval src.space i in
      dom_lo.(2 * i) <- Interval.lo wi;
      dom_hi.(2 * i) <- Interval.hi wi;
      dom_lo.((2 * i) + 1) <- Interval.lo hi_;
      dom_hi.((2 * i) + 1) <- Interval.hi hi_
    done;
    let box_lo = Array.make (capacity * 2 * n_blocks) 0 in
    let box_hi = Array.make (capacity * 2 * n_blocks) 0 in
    let box_in_domain = Array.make capacity 0 in
    Array.iteri
      (fun id s ->
        let box = s.Stored.box in
        let base = id * 2 * n_blocks in
        for i = 0 to n_blocks - 1 do
          let wi = Dimbox.w_interval box i and hi_ = Dimbox.h_interval box i in
          box_lo.(base + (2 * i)) <- Interval.lo wi;
          box_hi.(base + (2 * i)) <- Interval.hi wi;
          box_lo.(base + (2 * i) + 1) <- Interval.lo hi_;
          box_hi.(base + (2 * i) + 1) <- Interval.hi hi_
        done;
        box_in_domain.(id) <-
          (if Dimbox.contains_box ~outer:src.space ~inner:box then 1 else 0))
      src.stored;
    let lows = ints_of_array lows
    and highs = ints_of_array highs
    and set_words = ints_of_array set_words in
    {
      src =
        {
          s_circuit = src.circuit;
          s_stored = src.stored;
          s_backup = src.backup;
          s_space = src.space;
          s_die_w = src.die_w;
          s_die_h = src.die_h;
          s_full = Some src;
        };
      n_blocks;
      capacity;
      words_per_set;
      tail_mask;
      n_rows;
      lows_len = usable_intervals ~lows ~set_words ~words_per_set;
      row_axis = ints_of_array row_axis;
      row_off = ints_of_array row_off;
      lows;
      highs;
      set_words;
      skipped_rows = List.length skipped;
      dom_lo = ints_of_array dom_lo;
      dom_hi = ints_of_array dom_hi;
      box_lo = ints_of_array box_lo;
      box_hi = ints_of_array box_hi;
      box_in_domain = ints_of_array box_in_domain;
    }

  (* Materialize the full structure (frozen rows included) for callers
     that need the reference paths.  O(1) for [create]d engines; an
     engine loaded from a flat mapping compiles it on first demand and
     memoizes. *)
  let structure t =
    match t.src.s_full with
    | Some s -> s
    | None ->
      let s = of_placements ~backup:t.src.s_backup t.src.s_circuit t.src.s_stored in
      t.src.s_full <- Some s;
      s

  let circuit t = t.src.s_circuit
  let backup t = t.src.s_backup
  let n_stored t = t.capacity
  let stored_at t id = t.src.s_stored.(id)
  let die t = (t.src.s_die_w, t.src.s_die_h)
  let n_active_rows t = t.n_rows
  let n_skipped_rows t = t.skipped_rows

  let new_session () =
    {
      owner = None;
      acc = [||];
      rects = [||];
      last = -1;
      queries = 0;
      cache_hits = 0;
      stored_hits = 0;
      fallbacks = 0;
      out_of_domain = 0;
    }

  (* (Re)size the scratch for [t].  A session is engine-agnostic: the
     first query against a different engine rebinds it (and drops the
     hot-box entry, which indexes the previous engine's placements). *)
  let bind t session =
    match session.owner with
    | Some o when o == t -> ()
    | _ ->
      if Array.length session.acc < t.words_per_set then
        session.acc <- Array.make t.words_per_set 0;
      if Array.length session.rects <> t.n_blocks then
        session.rects <- Array.init t.n_blocks (fun _ -> Rect.make ~x:0 ~y:0 ~w:1 ~h:1);
      session.owner <- Some t;
      session.last <- -1

  (* [dims] inside the validity box of stored placement [id]?  Pure
     int-array compares over the flattened box bounds. *)
  let box_contains t id dims =
    let n = t.n_blocks in
    let base = id * 2 * n in
    let box_lo = t.box_lo and box_hi = t.box_hi in
    let rec go i =
      i >= n
      ||
      let w = Dims.width dims i in
      let j = base + (2 * i) in
      w >= box_lo.{j}
      && w <= box_hi.{j}
      &&
      let h = Dims.height dims i in
      h >= box_lo.{j + 1} && h <= box_hi.{j + 1} && go (i + 1)
    in
    go 0

  (* Equivalent to [Circuit.dims_valid] (designer bounds containment),
     over the flattened bounds. *)
  let in_domain t dims =
    let n = t.n_blocks in
    let dom_lo = t.dom_lo and dom_hi = t.dom_hi in
    let rec go i =
      i >= n
      ||
      let w = Dims.width dims i in
      let j = 2 * i in
      w >= dom_lo.{j}
      && w <= dom_hi.{j}
      &&
      let h = Dims.height dims i in
      h >= dom_lo.{j + 1} && h <= dom_hi.{j + 1} && go (i + 1)
    in
    go 0

  (* The zero-allocation primitive: the stored-placement index on a
     hit, [-1] for fallback, [-2] for out-of-domain. *)
  let query_id t session dims =
    if Dims.n_blocks dims <> t.n_blocks then
      invalid_arg "Structure.Engine.query: block count mismatch";
    bind t session;
    session.queries <- session.queries + 1;
    let last = session.last in
    (* Hot-box fast path: a box fully inside the designer space that
       contains the vector answers immediately — membership implies
       domain validity, so even the domain check is skipped. *)
    if last >= 0 && t.box_in_domain.{last} <> 0 && box_contains t last dims then begin
      session.cache_hits <- session.cache_hits + 1;
      session.stored_hits <- session.stored_hits + 1;
      last
    end
    else if not (in_domain t dims) then begin
      session.out_of_domain <- session.out_of_domain + 1;
      session.last <- -1;
      -2
    end
    else begin
      (* Hot-box slow path: a box that sticks out of the designer space
         (degraded structures) may only answer after the domain check. *)
      if last >= 0 && t.box_in_domain.{last} = 0 && box_contains t last dims
      then begin
        session.cache_hits <- session.cache_hits + 1;
        session.stored_hits <- session.stored_hits + 1;
        last
      end
      else begin
        let acc = session.acc in
        let wps = t.words_per_set in
        Array.fill acc 0 wps (-1);
        acc.(wps - 1) <- t.tail_mask;
        let n_rows = t.n_rows in
        let lows = t.lows and highs = t.highs and set_words = t.set_words in
        let lows_len = t.lows_len in
        let rec narrow r =
          r >= n_rows
          ||
          (* The plan may be a view into a file mapping that gets
             corrupted underneath us: a garbage axis code or interval
             range must turn into a miss (fallback), never an
             out-of-bounds access — hence the code guard and the
             clamped binary-search range. *)
          let code = t.row_axis.{r} in
          code >= 0
          && code lsr 1 < t.n_blocks
          &&
          let v =
            if code land 1 = 0 then Dims.width dims (code lsr 1)
            else Dims.height dims (code lsr 1)
          in
          (* Largest k in the row's interval range with lows.{k} <= v. *)
          let l = ref (max 0 t.row_off.{r})
          and h = ref (min t.row_off.{r + 1} lows_len - 1) in
          let k = ref (-1) in
          while !l <= !h do
            let mid = (!l + !h) / 2 in
            if lows.{mid} <= v then begin
              k := mid;
              l := mid + 1
            end
            else h := mid - 1
          done;
          !k >= 0
          && highs.{!k} >= v
          &&
          let base = !k * wps in
          let any = ref 0 in
          for w = 0 to wps - 1 do
            let x = acc.(w) land set_words.{base + w} in
            acc.(w) <- x;
            any := !any lor x
          done;
          !any <> 0 && narrow (r + 1)
        in
        if narrow 0 then begin
          (* Non-empty by construction; eq. 5 makes the member unique. *)
          let id = ref (-1) and w = ref 0 in
          while !id < 0 do
            if acc.(!w) <> 0 then begin
              let word = acc.(!w) in
              let b = ref 0 in
              while word land (1 lsl !b) = 0 do
                incr b
              done;
              id := (!w * bits_per_word) + !b
            end
            else incr w
          done;
          if !id < t.capacity then begin
            session.last <- !id;
            session.stored_hits <- session.stored_hits + 1;
            !id
          end
          else begin
            (* A phantom bit past capacity: only set-word corruption can
               put one there (the tail mask clears them on a healthy
               engine).  Fall back rather than index out of range. *)
            session.fallbacks <- session.fallbacks + 1;
            session.last <- -1;
            -1
          end
        end
        else begin
          session.fallbacks <- session.fallbacks + 1;
          session.last <- -1;
          -1
        end
      end
    end

  let query t session dims =
    match query_id t session dims with
    | -2 -> (Out_of_domain, t.src.s_backup)
    | -1 -> (Fallback, t.src.s_backup)
    | id -> (Stored_placement id, t.src.s_stored.(id))

  (* Fill the session's rect buffer in place and return it: valid until
     the session's next [instantiate_into].  Fallback and template-like
     answers re-pack (which allocates) — by construction those are the
     rare, uncovered-space cases. *)
  let instantiate_into t session dims =
    let id = query_id t session dims in
    if id >= 0 then begin
      let s = t.src.s_stored.(id) in
      if Dimbox.contains s.Stored.expansion dims then begin
        let coords = s.Stored.placement.Mps_placement.Placement.coords in
        let rects = session.rects in
        for i = 0 to t.n_blocks - 1 do
          let x, y = coords.(i) in
          Rect.set rects.(i) ~x ~y ~w:(Dims.width dims i) ~h:(Dims.height dims i)
        done;
        rects
      end
      else Stored.instantiate_repacked s dims
    end
    else Stored.instantiate_repacked t.src.s_backup dims

  (* Freshly allocated floorplan (safe to retain), same answers. *)
  let instantiate t session dims =
    let id = query_id t session dims in
    if id >= 0 then Stored.instantiate_auto t.src.s_stored.(id) dims
    else Stored.instantiate_repacked t.src.s_backup dims

  let instantiate_cost ?(weights = Mps_cost.Cost.default_weights) t session dims =
    let rects = instantiate_into t session dims in
    let cost =
      Mps_cost.Cost.total ~weights t.src.s_circuit ~die_w:t.src.s_die_w
        ~die_h:t.src.s_die_h rects
    in
    (rects, cost)

  (* Batch serving: fan contiguous chunks across the pool in task
     order.  Each chunk gets its own session, so chunks keep hot-box
     locality and share no mutable state; answers are independent of
     session state, so the output is identical at any job count. *)
  let batch ?pool ~f dims_arr =
    let n = Array.length dims_arr in
    let run (lo, len) =
      let session = new_session () in
      Array.init len (fun k -> f session dims_arr.(lo + k))
    in
    match pool with
    | None -> run (0, n)
    | Some pool ->
      let chunks = min n (max 1 (Mps_parallel.Pool.jobs pool * 4)) in
      if chunks <= 1 then run (0, n)
      else begin
        let ranges =
          Array.init chunks (fun c ->
              let lo = c * n / chunks and hi = (c + 1) * n / chunks in
              (lo, hi - lo))
        in
        Array.concat (Array.to_list (Mps_parallel.Pool.map pool run ranges))
      end

  let query_batch ?pool t dims_arr = batch ?pool ~f:(fun s d -> query t s d) dims_arr

  let instantiate_batch ?pool t dims_arr =
    batch ?pool ~f:(fun s d -> instantiate t s d) dims_arr

  let stats (session : session) : stats =
    {
      queries = session.queries;
      cache_hits = session.cache_hits;
      stored_hits = session.stored_hits;
      fallbacks = session.fallbacks;
      out_of_domain = session.out_of_domain;
    }

  let reset_stats (session : session) =
    session.queries <- 0;
    session.cache_hits <- 0;
    session.stored_hits <- 0;
    session.fallbacks <- 0;
    session.out_of_domain <- 0

  let describe t session =
    let buf = Buffer.create 512 in
    Buffer.add_string buf (describe (structure t));
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
    line "  engine: %d narrowing rows (%d skipped as non-selective), %d intervals"
      (n_active_rows t) t.skipped_rows t.row_off.{t.n_rows};
    let s = stats session in
    line "  queries: %d (%d stored hits, %d fallbacks, %d out-of-domain)" s.queries
      s.stored_hits s.fallbacks s.out_of_domain;
    line "  hot-box cache: %d hits / %d queries (%.1f%%)" s.cache_hits s.queries
      (if s.queries = 0 then 0.0
       else 100.0 *. float_of_int s.cache_hits /. float_of_int s.queries);
    Buffer.contents buf

  (* ---------------------------------------------------------------- *)
  (* Flat exchange form: the engine's plan as bare int vectors, for the
     MPSZ container (Zcodec).  [flatten] exposes the live arrays (the
     caller copies them out when serializing); [of_flat] wraps existing
     vectors — typically zero-copy sub-views of a file mapping —
     after validating every shape invariant the query kernel relies on
     for memory safety, so a crafted or damaged file can make queries
     {e wrong} at worst (the CRCs catch that), never out-of-bounds. *)

  type flat = {
    f_capacity : int;
    f_words_per_set : int;
    f_skipped_rows : int;
    f_row_axis : ints;
    f_row_off : ints;
    f_lows : ints;
    f_highs : ints;
    f_set_words : ints;
    f_dom_lo : ints;
    f_dom_hi : ints;
    f_box_lo : ints;
    f_box_hi : ints;
    f_box_in_domain : ints;
  }

  let flatten t =
    {
      f_capacity = t.capacity;
      f_words_per_set = t.words_per_set;
      f_skipped_rows = t.skipped_rows;
      f_row_axis = t.row_axis;
      f_row_off = t.row_off;
      f_lows = t.lows;
      f_highs = t.highs;
      f_set_words = t.set_words;
      f_dom_lo = t.dom_lo;
      f_dom_hi = t.dom_hi;
      f_box_lo = t.box_lo;
      f_box_hi = t.box_hi;
      f_box_in_domain = t.box_in_domain;
    }

  let of_flat ~circuit ~stored ~backup ~die f =
    let fail fmt = Printf.ksprintf invalid_arg ("Engine.of_flat: " ^^ fmt) in
    let dim = Bigarray.Array1.dim in
    let n_blocks = Circuit.n_blocks circuit in
    let capacity = f.f_capacity in
    if capacity <= 0 || capacity <> Array.length stored then
      fail "capacity %d vs %d stored placements" capacity (Array.length stored);
    Array.iter
      (fun s -> if Stored.n_blocks s <> n_blocks then fail "stored block count mismatch")
      stored;
    if Stored.n_blocks backup <> n_blocks then fail "backup block count mismatch";
    let wps = f.f_words_per_set in
    if wps < 1 || wps < (capacity + bits_per_word - 1) / bits_per_word then
      fail "words_per_set %d too small for %d placements" wps capacity;
    let n_rows = dim f.f_row_axis in
    if dim f.f_row_off <> n_rows + 1 then
      fail "row_off length %d for %d rows" (dim f.f_row_off) n_rows;
    if dim f.f_lows <> dim f.f_highs then fail "lows/highs length mismatch";
    let n_intervals = if n_rows = 0 then 0 else f.f_row_off.{n_rows} in
    if n_intervals > dim f.f_lows then fail "row offsets exceed the interval table";
    if dim f.f_set_words < n_intervals * wps then fail "set-word table too short";
    let prev = ref 0 in
    for r = 0 to n_rows - 1 do
      let code = f.f_row_axis.{r} in
      if code < 0 || code >= 2 * n_blocks then fail "axis code %d out of range" code;
      let off = f.f_row_off.{r} and stop = f.f_row_off.{r + 1} in
      if off <> !prev || stop < off then fail "non-contiguous row offsets";
      prev := stop;
      for k = off + 1 to stop - 1 do
        if f.f_lows.{k - 1} > f.f_lows.{k} then fail "unsorted interval row"
      done
    done;
    if dim f.f_dom_lo <> 2 * n_blocks || dim f.f_dom_hi <> 2 * n_blocks then
      fail "domain table length mismatch";
    let space = Circuit.dim_bounds circuit in
    for i = 0 to n_blocks - 1 do
      let wi = Dimbox.w_interval space i and hi_ = Dimbox.h_interval space i in
      if
        f.f_dom_lo.{2 * i} <> Interval.lo wi
        || f.f_dom_hi.{2 * i} <> Interval.hi wi
        || f.f_dom_lo.{(2 * i) + 1} <> Interval.lo hi_
        || f.f_dom_hi.{(2 * i) + 1} <> Interval.hi hi_
      then fail "domain bounds disagree with the circuit"
    done;
    if dim f.f_box_lo <> capacity * 2 * n_blocks || dim f.f_box_hi <> capacity * 2 * n_blocks
    then fail "box table length mismatch";
    if dim f.f_box_in_domain <> capacity then fail "box_in_domain length mismatch";
    let die_w, die_h = die in
    let tail_mask =
      let used = capacity mod bits_per_word in
      if used = 0 then -1 else (1 lsl used) - 1
    in
    {
      src =
        {
          s_circuit = circuit;
          s_stored = Array.copy stored;
          s_backup = backup;
          s_space = space;
          s_die_w = die_w;
          s_die_h = die_h;
          s_full = None;
        };
      n_blocks;
      capacity;
      words_per_set = wps;
      tail_mask;
      n_rows;
      lows_len = usable_intervals ~lows:f.f_lows ~set_words:f.f_set_words ~words_per_set:wps;
      row_axis = f.f_row_axis;
      row_off = f.f_row_off;
      lows = f.f_lows;
      highs = f.f_highs;
      set_words = f.f_set_words;
      skipped_rows = f.f_skipped_rows;
      dom_lo = f.f_dom_lo;
      dom_hi = f.f_dom_hi;
      box_lo = f.f_box_lo;
      box_hi = f.f_box_hi;
      box_in_domain = f.f_box_in_domain;
    }
end

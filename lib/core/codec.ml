open Mps_geometry
open Mps_netlist
open Mps_placement

let format_version = 2
let magic_v2 = "mps-structure v2"
let magic_v1 = "mps-structure v1"

type error =
  | Io_error of string
  | Corrupt of { lineno : int; reason : string }
  | Circuit_mismatch of string

exception Error of error

let error_to_string = function
  | Io_error msg -> Printf.sprintf "io error: %s" msg
  | Corrupt { lineno; reason } -> Printf.sprintf "corrupt document: line %d: %s" lineno reason
  | Circuit_mismatch msg -> Printf.sprintf "circuit mismatch: %s" msg

let corrupt lineno fmt =
  Printf.ksprintf (fun reason -> raise (Error (Corrupt { lineno; reason }))) fmt

(* Serialization *)

let box_lines prefix box =
  let n = Dimbox.n_blocks box in
  let per axis_interval =
    String.concat " "
      (List.init n (fun i ->
           let iv = axis_interval i in
           Printf.sprintf "%d %d" (Interval.lo iv) (Interval.hi iv)))
  in
  [
    Printf.sprintf "%s.w %s" prefix (per (Dimbox.w_interval box));
    Printf.sprintf "%s.h %s" prefix (per (Dimbox.h_interval box));
  ]

let payload_of structure =
  let circuit = Structure.circuit structure in
  let die_w, die_h = Structure.die structure in
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "circuit %d %d %s" (Circuit.n_blocks circuit) (Circuit.n_nets circuit)
    circuit.Circuit.name;
  line "die %d %d" die_w die_h;
  let write_placement s =
    line "placement %.17g %.17g %d" s.Stored.avg_cost s.Stored.best_cost
      (if s.Stored.template_like then 1 else 0);
    line "coords %s"
      (String.concat " "
         (List.map
            (fun (x, y) -> Printf.sprintf "%d %d" x y)
            (Array.to_list s.Stored.placement.Placement.coords)));
    List.iter (line "%s") (box_lines "box" s.Stored.box);
    List.iter (line "%s") (box_lines "expansion" s.Stored.expansion);
    let n = Stored.n_blocks s in
    line "best_dims %s"
      (String.concat " "
         (List.init n (fun i ->
              Printf.sprintf "%d %d" (Dims.width s.Stored.best_dims i)
                (Dims.height s.Stored.best_dims i))))
  in
  let stored = Structure.placements structure in
  line "placements %d" (Array.length stored);
  Array.iter write_placement stored;
  line "backup";
  write_placement (Structure.backup structure);
  Buffer.contents buf

let to_string structure =
  let payload = payload_of structure in
  Printf.sprintf "%s\nchecksum %s\n%s" magic_v2 (Persist.crc32_hex payload) payload

(* Parsing.

   The cursor carries the absolute 1-based line number so every error is
   line-accurate in the physical file regardless of how many header
   lines preceded the payload. *)

type cursor = { mutable lines : string list; mutable lineno : int }

let fail cursor fmt = Printf.ksprintf (fun s -> corrupt (cursor.lineno + 1) "%s" s) fmt

let next cursor =
  match cursor.lines with
  | [] -> fail cursor "unexpected end of document"
  | l :: rest ->
    cursor.lines <- rest;
    cursor.lineno <- cursor.lineno + 1;
    l

let peek cursor = match cursor.lines with [] -> None | l :: _ -> Some l

let skip cursor =
  match cursor.lines with
  | [] -> ()
  | _ :: rest ->
    cursor.lines <- rest;
    cursor.lineno <- cursor.lineno + 1

let expect_prefix cursor prefix =
  let l = next cursor in
  match String.length l >= String.length prefix && String.sub l 0 (String.length prefix) = prefix with
  | true -> String.trim (String.sub l (String.length prefix) (String.length l - String.length prefix))
  | false -> corrupt cursor.lineno "expected %S, got %S" prefix l

let ints_of cursor s =
  List.map
    (fun tok ->
      match int_of_string_opt tok with
      | Some v -> v
      | None -> corrupt cursor.lineno "expected an integer, got %S" tok)
    (String.split_on_char ' ' (String.trim s) |> List.filter (fun t -> t <> ""))

let pairs_of cursor s =
  let rec pair_up = function
    | [] -> []
    | a :: b :: rest -> (a, b) :: pair_up rest
    | [ _ ] -> corrupt cursor.lineno "odd number of integers"
  in
  pair_up (ints_of cursor s)

let intervals_of cursor n s =
  let pairs = pairs_of cursor s in
  if List.length pairs <> n then
    corrupt cursor.lineno "expected %d intervals, got %d" n (List.length pairs);
  Array.of_list
    (List.map
       (fun (lo, hi) ->
         if lo > hi then corrupt cursor.lineno "inverted interval %d..%d" lo hi
         else Interval.make lo hi)
       pairs)

let box_of cursor n prefix =
  let w = intervals_of cursor n (expect_prefix cursor (prefix ^ ".w ")) in
  let h = intervals_of cursor n (expect_prefix cursor (prefix ^ ".h ")) in
  Dimbox.make ~w ~h

let read_placement cursor ~n ~die_w ~die_h =
  let costs = expect_prefix cursor "placement " in
  let avg_cost, best_cost, template_like =
    match
      String.split_on_char ' ' (String.trim costs)
      |> List.filter (fun t -> t <> "")
      |> List.map float_of_string_opt
    with
    | [ Some a; Some b; Some flag ] -> (a, b, flag <> 0.0)
    | _ -> corrupt cursor.lineno "malformed placement costs"
  in
  let coords = pairs_of cursor (expect_prefix cursor "coords ") in
  if List.length coords <> n then corrupt cursor.lineno "expected %d coordinates" n;
  let box = box_of cursor n "box" in
  let expansion = box_of cursor n "expansion" in
  let best_pairs = pairs_of cursor (expect_prefix cursor "best_dims ") in
  if List.length best_pairs <> n then corrupt cursor.lineno "expected %d best dims" n;
  let best_dims = Dims.of_pairs (Array.of_list best_pairs) in
  let placement =
    match Placement.make ~coords:(Array.of_list coords) ~die_w ~die_h with
    | p -> p
    | exception Invalid_argument msg -> corrupt cursor.lineno "bad placement: %s" msg
  in
  match
    Stored.make ~template_like ~placement ~box ~expansion ~avg_cost ~best_cost ~best_dims
  with
  | s -> s
  | exception Invalid_argument msg -> corrupt cursor.lineno "inconsistent placement: %s" msg

(* Identity header: circuit line (validated against the caller's
   circuit) and die line.  Shared by strict parsing and salvage. *)

let read_identity cursor ~circuit =
  let id = expect_prefix cursor "circuit " in
  (match String.split_on_char ' ' id with
  | blocks :: nets :: name_parts ->
    let name = String.concat " " name_parts in
    (match (int_of_string_opt blocks, int_of_string_opt nets) with
    | Some _, Some _ -> ()
    | _ -> corrupt cursor.lineno "malformed circuit line");
    if
      int_of_string_opt blocks <> Some (Circuit.n_blocks circuit)
      || int_of_string_opt nets <> Some (Circuit.n_nets circuit)
      || name <> circuit.Circuit.name
    then
      raise
        (Error
           (Circuit_mismatch
              (Printf.sprintf "structure was generated for %s (%s blocks), not %s" name
                 blocks circuit.Circuit.name)))
  | _ -> corrupt cursor.lineno "malformed circuit line");
  let die = ints_of cursor (expect_prefix cursor "die ") in
  match die with [ w; h ] -> (w, h) | _ -> corrupt cursor.lineno "malformed die line"

(* Split the raw document into (payload, payload's line offset,
   checksum status).  The checksum covers the exact bytes after the
   checksum line, so it is verified on the raw string before any line
   splitting. *)

type checksum_status =
  | Ok_checksum
  | No_checksum  (** legacy v0/v1 document *)
  | Bad_checksum of { lineno : int; reason : string }

let split_header raw =
  let len = String.length raw in
  let line_end from =
    match String.index_from_opt raw from '\n' with Some i -> i | None -> len
  in
  let rest_after e = if e >= len then "" else String.sub raw (e + 1) (len - e - 1) in
  let e1 = line_end 0 in
  let first = String.sub raw 0 e1 in
  if first = magic_v2 then
    let e2 = line_end (min len (e1 + 1)) in
    let second = if e1 >= len then "" else String.sub raw (e1 + 1) (e2 - e1 - 1) in
    if String.length second >= 9 && String.sub second 0 9 = "checksum " then
      let payload = rest_after e2 in
      let expected = String.trim (String.sub second 9 (String.length second - 9)) in
      let actual = Persist.crc32_hex payload in
      let status =
        if String.lowercase_ascii expected = actual then Ok_checksum
        else
          Bad_checksum
            { lineno = 2;
              reason = Printf.sprintf "checksum mismatch: header %s, payload %s" expected actual }
      in
      (payload, 2, status)
    else
      (* checksum line damaged or gone: for salvage, keep everything
         after the magic line scannable *)
      (rest_after e1, 1, Bad_checksum { lineno = 2; reason = "missing checksum line" })
  else if first = magic_v1 then (rest_after e1, 1, No_checksum)
  else if String.length first >= 8 && String.sub first 0 8 = "circuit " then
    (* v0: headerless, the document starts directly at the identity *)
    (raw, 0, No_checksum)
  else
    (* Unknown magic: one clean line, never a dump of binary junk. *)
    ( "",
      0,
      Bad_checksum
        {
          lineno = 1;
          reason =
            "unrecognized format (expected mps-structure v1/v2 or an MPSZ \
             container)";
        } )

let cursor_of ~payload ~offset =
  { lines = String.split_on_char '\n' payload; lineno = offset }

let parse_payload ~circuit cursor =
  let die_w, die_h = read_identity cursor ~circuit in
  let count =
    match ints_of cursor (expect_prefix cursor "placements ") with
    | [ c ] when c > 0 -> c
    | _ -> corrupt cursor.lineno "malformed placements line"
  in
  let n = Circuit.n_blocks circuit in
  let stored = Array.init count (fun _ -> read_placement cursor ~n ~die_w ~die_h) in
  let backup =
    match next cursor with
    | "backup" -> read_placement cursor ~n ~die_w ~die_h
    | other -> corrupt cursor.lineno "expected backup section, got %S" other
  in
  match Structure.of_placements ~backup circuit stored with
  | s -> s
  | exception Invalid_argument msg -> corrupt cursor.lineno "%s" msg

(* MPSZ routing: the binary container has its own codec (Zcodec); this
   module sniffs the magic so every entry point — strict load, verify,
   salvage — accepts either format transparently. *)

let of_zcodec_error = function
  | Zcodec.Io_error msg -> Io_error msg
  | Zcodec.Corrupt { section; reason } ->
    Corrupt { lineno = 0; reason = Printf.sprintf "MPSZ %s: %s" section reason }
  | Zcodec.Circuit_mismatch msg -> Circuit_mismatch msg

let of_string ~circuit raw =
  if Zcodec.is_magic raw then
    match Zcodec.of_string ~circuit raw with
    | v -> Structure.Engine.structure v.Zcodec.engine
    | exception Zcodec.Error e -> raise (Error (of_zcodec_error e))
  else
    match split_header raw with
    | _, _, Bad_checksum { lineno; reason } -> corrupt lineno "%s" reason
    | payload, offset, _ -> parse_payload ~circuit (cursor_of ~payload ~offset)

let save structure ~path =
  try Persist.atomic_write ~path (to_string structure)
  with Sys_error msg -> raise (Error (Io_error msg))

let load ~circuit ~path =
  let raw =
    try Persist.read_file ~path with Sys_error msg -> raise (Error (Io_error msg))
  in
  of_string ~circuit raw

(* Graceful degradation: scan for intact placement sections, skip the
   damaged ones, keep the disjoint subset. *)

type salvage = {
  structure : Structure.t;
  recovered : int;
  dropped : int;
  quarantined : int;
  backup_recovered : bool;
  checksum_ok : bool;
  audit : Audit.report;
}

(* MPSZ salvage: Zcodec scans the pool and record table for intact
   records; the tail — overlap filtering, recompile, audit-and-repair —
   is the same graceful-degradation pipeline the text path runs. *)
let salvage_of_zwords ~circuit words ~bytes =
  match Zcodec.salvage_parts ~circuit words ~bytes with
  | Result.Error e -> Result.Error (of_zcodec_error e)
  | Result.Ok r ->
    let kept = ref [] and overlapped = ref 0 in
    List.iter
      (fun (s : Stored.t) ->
        if List.exists (fun k -> Dimbox.overlaps k.Stored.box s.Stored.box) !kept
        then incr overlapped
        else kept := s :: !kept)
      r.Zcodec.r_stored;
    let kept = List.rev !kept in
    let backup = r.Zcodec.r_backup in
    let stored =
      match (kept, backup) with
      | [], None -> [||]
      | [], Some b -> [| b |]
      | ks, _ -> Array.of_list ks
    in
    if Array.length stored = 0 then
      Result.Error (Corrupt { lineno = 0; reason = "no intact placement recovered" })
    else
      let structure =
        match Structure.of_placements ?backup circuit stored with
        | s -> s
        | exception Invalid_argument _ ->
          (* kept boxes are pairwise disjoint by construction — but
             never let salvage blow up *)
          Structure.of_placements circuit [| stored.(0) |]
      in
      let recovered = List.length kept in
      let outcome = Repair.run structure in
      Result.Ok
        {
          structure = outcome.Repair.structure;
          recovered;
          dropped = max (r.Zcodec.r_claimed - recovered) 0;
          quarantined = List.length outcome.Repair.quarantined;
          backup_recovered = backup <> None;
          checksum_ok = r.Zcodec.r_crc_ok;
          audit = outcome.Repair.after;
        }

let salvage_of_string ~circuit raw =
  if Zcodec.is_magic raw then
    salvage_of_zwords ~circuit (Zcodec.words_of_string raw) ~bytes:(String.length raw)
  else
  match split_header raw with
  | _, _, Bad_checksum { lineno = 1; reason } ->
    (* not even the format header survived: nothing to scan *)
    Result.Error (Corrupt { lineno = 1; reason })
  | payload, offset, status -> (
    let checksum_ok = status = Ok_checksum in
    let cursor = cursor_of ~payload ~offset in
    match
      let die_w, die_h = read_identity cursor ~circuit in
      let claimed =
        (* a corrupt count line is survivable: we scan rather than trust it *)
        match peek cursor with
        | Some l when String.length l >= 11 && String.sub l 0 11 = "placements " -> (
          skip cursor;
          match int_of_string_opt (String.trim (String.sub l 11 (String.length l - 11))) with
          | Some c when c >= 0 -> Some c
          | _ -> None)
        | _ -> None
      in
      (die_w, die_h, claimed)
    with
    | exception Error e -> Result.Error e
    | die_w, die_h, claimed ->
      let n = Circuit.n_blocks circuit in
      let kept = ref [] and failed = ref 0 and overlapped = ref 0 in
      let backup = ref None in
      let try_placement () =
        let snapshot_lines = cursor.lines and snapshot_lineno = cursor.lineno in
        match read_placement cursor ~n ~die_w ~die_h with
        | s -> Some s
        | exception Error _ ->
          cursor.lines <- snapshot_lines;
          cursor.lineno <- snapshot_lineno;
          None
      in
      let is_placement l = String.length l >= 10 && String.sub l 0 10 = "placement " in
      let finished = ref false in
      while not !finished do
        match peek cursor with
        | None -> finished := true
        | Some "backup" ->
          skip cursor;
          backup := try_placement ();
          if !backup = None then incr failed;
          finished := true
        | Some l when is_placement l -> (
          match try_placement () with
          | Some s ->
            if List.exists (fun k -> Dimbox.overlaps k.Stored.box s.Stored.box) !kept then
              incr overlapped
            else kept := s :: !kept
          | None ->
            incr failed;
            skip cursor (* resynchronize past the damaged section head *))
        | Some _ -> skip cursor
      done;
      let kept = List.rev !kept in
      let stored =
        match (kept, !backup) with
        | [], None -> [||]
        | [], Some b -> [| b |]
        | ks, _ -> Array.of_list ks
      in
      if Array.length stored = 0 then
        Result.Error
          (Corrupt { lineno = cursor.lineno; reason = "no intact placement recovered" })
      else
        let structure =
          match Structure.of_placements ?backup:!backup circuit stored with
          | s -> s
          | exception Invalid_argument msg ->
            (* cannot happen: kept boxes are pairwise disjoint by
               construction — but never let salvage blow up *)
            ignore msg;
            Structure.of_placements circuit [| stored.(0) |]
        in
        let recovered = List.length kept in
        let dropped =
          match claimed with
          | Some c -> max (c - recovered) 0
          | None -> !failed + !overlapped
        in
        (* Syntactically intact is not semantically sound: audit the
           recovered structure and quarantine/repair what fails its
           invariants (re-annealing stays off on the load path). *)
        let outcome = Repair.run structure in
        Result.Ok
          {
            structure = outcome.Repair.structure;
            recovered;
            dropped;
            quarantined = List.length outcome.Repair.quarantined;
            backup_recovered = !backup <> None;
            checksum_ok;
            audit = outcome.Repair.after;
          })

let load_salvage ~circuit ~path =
  match Persist.read_file ~path with
  | raw -> salvage_of_string ~circuit raw
  | exception Sys_error msg -> Result.Error (Io_error msg)

(** The compiled multi-placement structure — the paper's function
    [M : V -> Π] (eqs. 1 and 4).

    Generated once per circuit topology and then queried repeatedly
    inside a synthesis loop: a query walks one width row and one height
    row per block (binary search over the frozen interval objects of
    Fig. 3), intersects the returned placement-index bitsets, and yields
    the single valid placement — or the backup template placement when
    the dimensions fall in uncovered space (§3.1.4). *)

open Mps_geometry
open Mps_netlist

type t

val compile : ?backup:Stored.t -> Builder.t -> t
(** Freeze a builder.  [backup] is the template-like placement answering
    queries in uncovered dimension space (paper §3.1.4); it defaults to
    the stored placement with the lowest best cost.
    @raise Invalid_argument on an empty builder. *)

val of_placements : ?backup:Stored.t -> Circuit.t -> Stored.t array -> t
(** Compile directly from stored placements (used when loading a saved
    structure).  @raise Invalid_argument when the array is empty, a
    placement's block count mismatches the circuit, or two validity
    boxes overlap (eq. 5 would break). *)

val of_placements_lenient :
  ?backup:Stored.t -> Circuit.t -> Stored.t array -> t * int list
(** Quarantining variant of {!of_placements}: instead of refusing a
    flawed placement set, keep the largest well-formed pairwise-disjoint
    subset (lower average-cost placements win contested territory, block
    count / box-vs-expansion / best-dims violations are dropped) and
    return the indices of the quarantined placements.  Queries over
    quarantined territory fall back to the backup template (§3.1.4).  A
    backup with the wrong block count is ignored.
    @raise Invalid_argument only when no placement at all is
    admissible. *)

val circuit : t -> Circuit.t

val n_placements : t -> int
(** All stored placements, the backup template's territory pieces
    included. *)

val n_explored : t -> int
(** Explorer-discovered placements only (template-like pieces of the
    backup excluded) — Table 2's "Placements" column. *)

val placements : t -> Stored.t array
(** All stored placements (fresh copy). *)

val backup : t -> Stored.t
(** The template-like placement answering uncovered queries. *)

val coverage : t -> float
(** Covered fraction of the dimension search space (exact sum over the
    disjoint explorer boxes; template territory excluded). *)

val coverage_sampled : seed:int -> samples:int -> t -> float
(** Monte-Carlo estimate of {!coverage}: the share of uniform dimension
    vectors answered by an explorer-discovered placement.  Agrees with
    the exact sum within sampling error (property-tested); useful as an
    independent check of the row/box machinery. *)

val describe : t -> string
(** Multi-line human-readable summary: placement counts, coverage, die,
    interval-object statistics of the frozen rows. *)

(** How a query was answered. *)
type answer =
  | Stored_placement of int  (** Index of the unique covering placement. *)
  | Fallback  (** Dimensions in uncovered space; template backup used. *)
  | Out_of_domain
      (** Dimensions outside the designer min/max space entirely; the
          backup template is returned so answering stays total, but the
          caller should treat the sizing point as invalid. *)

val answer_to_string : answer -> string
(** ["stored:<id>"], ["fallback"] or ["out-of-domain"] — for logs,
    audits and benchmark reports. *)

val query : t -> Dims.t -> answer * Stored.t
(** The placement to use for the given dimension vector.  When the
    vector lies in some stored box the answer is unique (boxes are
    disjoint); otherwise the backup template placement is returned —
    with {!Out_of_domain} instead of {!Fallback} when the vector is not
    even inside the designer dimension space.  Total for any vector
    with the right block count.

    This is the reference compiled path; serving-scale callers should
    prefer {!Engine.query}, which answers identically but allocates
    nothing in steady state.
    @raise Invalid_argument on block-count mismatch. *)

val instantiate : t -> Dims.t -> Rect.t array
(** Floorplan instantiation at the requested dimensions: the selected
    placement's coordinates on a hit; on a fallback answer, the backup
    template placement greedily re-packed for these dimensions
    ({!Stored.instantiate_repacked}) — template-like behaviour for the
    uncovered share of the space.  Always overlap-free. *)

val instantiate_cost :
  ?weights:Mps_cost.Cost.weights -> t -> Dims.t -> Rect.t array * float
(** {!instantiate} plus the cost of the resulting floorplan. *)

val query_linear : t -> Dims.t -> answer * Stored.t
(** Reference implementation scanning all stored boxes; used for the
    compiled-vs-linear ablation and as a test oracle. *)

val nearest : t -> Dims.t -> int
(** Index of the stored placement whose validity box is closest to the
    vector (L1 box distance, ties broken by lower best cost); [0]
    distance means the vector is covered.  An extension beyond the
    paper's single backup template: uncovered queries can reuse the
    locally best arrangement instead. *)

val instantiate_nearest : t -> Dims.t -> Rect.t array
(** Like {!instantiate}, but uncovered queries re-pack the {!nearest}
    stored placement instead of the backup template. *)

val to_builder : t -> Builder.t
(** Thaw into a builder so more placements can be explored and stored
    incrementally ({!Generator.extend}). *)

val die : t -> int * int

(** The compiled zero-allocation query engine (DESIGN.md §10).

    [Engine.create] flattens the frozen per-block rows into contiguous
    int arrays (interval bounds plus bitset words side by side), orders
    the narrowing sequence by selectivity (smallest average placement
    set first), and drops rows that cannot narrow (a single interval
    spanning the whole designer axis with every placement on it).  All
    per-query scratch lives in a reusable {!Engine.session}, so
    steady-state queries and {!Engine.instantiate_into} allocate
    nothing; a hot-box cache answers consecutive queries landing in the
    same validity box — the dominant sizing-loop case — with a single
    [Dimbox.contains].

    Answers are always identical to {!query} / {!query_linear}
    (property-tested on every Table 1 circuit and re-checked by the
    audit's query probes). *)
module Engine : sig
  type structure := t

  type t
  (** The compiled plan.  Immutable and safe to share across domains. *)

  type session
  (** Mutable per-caller scratch: intersection words, a rect buffer,
      the hot-box cache and query counters.  Not thread-safe — use one
      session per domain.  A session is engine-agnostic: it may be
      reused across engines (even interleaved); rebinding to a
      different engine resizes the scratch and drops the hot-box
      entry. *)

  type stats = {
    queries : int;
    cache_hits : int;  (** Queries answered by the hot-box cache. *)
    stored_hits : int;  (** Queries answered by a stored placement. *)
    fallbacks : int;
    out_of_domain : int;
  }

  val create : structure -> t
  (** Compile the narrowing plan.  O(total interval objects); done once
      per structure, amortized over every query that follows. *)

  val structure : t -> structure
  (** The full heap structure behind the engine.  O(1) for engines
      built by {!create}; an engine loaded from a flat mapping
      ({!of_flat} via {!Zcodec}) compiles it on first demand (the
      O(n²) validation and row rebuild the flat path exists to avoid)
      and memoizes the result. *)

  val circuit : t -> Circuit.t
  val backup : t -> Stored.t
  (** The template placement answering fallback queries — O(1), no
      structure materialization. *)

  val n_stored : t -> int
  (** Stored placements (backup territory pieces included) — the valid
      range of {!query_id} hits. *)

  val stored_at : t -> int -> Stored.t
  (** The stored placement behind a {!query_id} hit. *)

  val die : t -> int * int

  val new_session : unit -> session

  val query : t -> session -> Dims.t -> answer * Stored.t
  (** Same contract and answers as {!Structure.query}; allocates only
      the result pair.  @raise Invalid_argument on block-count
      mismatch. *)

  val query_id : t -> session -> Dims.t -> int
  (** The allocation-free primitive behind {!query}: the stored
      placement index on a hit, [-1] for fallback, [-2] for
      out-of-domain. *)

  val instantiate_into : t -> session -> Dims.t -> Rect.t array
  (** Floorplan at the requested dimensions, written into the session's
      reusable rect buffer — the returned array (and the rects inside
      it) are valid until the session's next call.  Allocation-free on
      stored hits inside the expansion box; fallback answers re-pack
      (and allocate) exactly like {!Structure.instantiate}. *)

  val instantiate : t -> session -> Dims.t -> Rect.t array
  (** Like {!instantiate_into} but returns a freshly allocated
      floorplan that is safe to retain. *)

  val instantiate_cost :
    ?weights:Mps_cost.Cost.weights -> t -> session -> Dims.t -> Rect.t array * float
  (** {!instantiate_into} plus the cost of the resulting floorplan. *)

  val query_batch :
    ?pool:Mps_parallel.Pool.t -> t -> Dims.t array -> (answer * Stored.t) array
  (** Answer a batch of dimension vectors, fanning contiguous chunks
      across the pool (when given) in deterministic task order: the
      result is bit-identical at any job count, including none.  Each
      chunk runs on its own session, preserving hot-box locality. *)

  val instantiate_batch :
    ?pool:Mps_parallel.Pool.t -> t -> Dims.t array -> Rect.t array array
  (** Batched {!instantiate} (fresh floorplans), same determinism
      contract as {!query_batch}. *)

  val stats : session -> stats
  val reset_stats : session -> unit

  val n_active_rows : t -> int
  (** Rows in the narrowing plan after the skip rule. *)

  val n_skipped_rows : t -> int
  (** Rows dropped because they could never narrow. *)

  val describe : t -> session -> string
  (** {!Structure.describe} of the source plus plan shape and the
      session's query / hot-box-cache hit-rate counters. *)

  type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
  (** The engine's array substrate: plain heap vectors for {!create}d
      engines, zero-copy sub-views of a read-only file mapping for
      engines loaded through {!Zcodec}.  The query kernel is identical
      either way. *)

  (** The compiled plan as bare int vectors — the exchange form the
      MPSZ container stores verbatim.  Row [r] tests axis
      [f_row_axis.{r}] (code [2i] = width of block [i], [2i+1] =
      height) against intervals [f_row_off.{r} .. f_row_off.{r+1} - 1];
      interval [k]'s placement bitset occupies words
      [k * f_words_per_set ..) of [f_set_words]; [f_dom_*] flatten the
      designer space and [f_box_*]/[f_box_in_domain] the per-placement
      validity boxes, all indexed by axis code. *)
  type flat = {
    f_capacity : int;
    f_words_per_set : int;
    f_skipped_rows : int;
    f_row_axis : ints;
    f_row_off : ints;
    f_lows : ints;
    f_highs : ints;
    f_set_words : ints;
    f_dom_lo : ints;
    f_dom_hi : ints;
    f_box_lo : ints;
    f_box_hi : ints;
    f_box_in_domain : ints;
  }

  val flatten : t -> flat
  (** The engine's live arrays (no copy) — for serialization. *)

  val of_flat :
    circuit:Circuit.t ->
    stored:Stored.t array ->
    backup:Stored.t ->
    die:int * int ->
    flat ->
    t
  (** Wrap flat vectors (typically mapped file views) as a ready
      engine, without recompiling anything.  Validates every shape
      invariant the kernel needs for memory safety — lengths, row
      offsets, axis codes, per-row sortedness, domain bounds against
      the circuit — so a damaged container can at worst answer wrongly
      (which the container CRCs detect), never crash.
      @raise Invalid_argument on any violated invariant. *)
end

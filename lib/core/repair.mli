(** Quarantine & repair for flawed multi-placement structures.

    Takes any {!Structure.t} — typically one recovered by
    {!Codec.load_salvage} — and drives it toward an audit-clean state:

    - placements with [Fatal] findings ({!Audit}) are quarantined
      (dropped); their dimension territory falls to the backup template,
      the paper's §3.1.4 answer for uncovered space (greedy re-packing);
    - [Degraded] cost-field findings are repaired in place: the box is
      clamped into the designer domain and [best_cost] is re-evaluated
      at [best_dims];
    - a broken backup is rebuilt — re-annealed from scratch when a
      re-annealing budget is configured, otherwise the best surviving
      placement that is legal at the minimum dimensions is promoted to
      template duty;
    - optionally, quarantined territory is re-annealed under a bounded
      budget (coordinate annealing on the incremental delta-cost
      engine) and re-admitted when the result is legal and disjoint;
    - the rebuilt structure is re-audited.

    Never raises: when nothing at all can be rebuilt the original
    structure is returned with a non-clean [after] report. *)

open Mps_cost

type config = {
  weights : Cost.weights;
  samples_per_box : int;  (** Audit legality samples per box. *)
  query_samples : int;  (** Audit whole-space query probes. *)
  seed : int;
  tolerance : float;  (** Relative cost re-verification tolerance. *)
  reanneal_iterations : int;
      (** Coordinate-annealing budget per quarantined box (and for a
          backup rebuild); [0] disables re-annealing — quarantined
          territory is simply left to the backup template. *)
  max_reanneals : int;  (** At most this many quarantined boxes re-annealed. *)
}

val default_config : config
(** Default audit parameters, re-annealing off. *)

type outcome = {
  structure : Structure.t;  (** The repaired structure. *)
  before : Audit.report;
  after : Audit.report;  (** Audit of [structure]. *)
  quarantined : int list;
      (** Indices (into the input structure's placement array) that
          were dropped. *)
  repaired_in_place : int;  (** Placements with refreshed cost fields/boxes. *)
  reannealed : int;  (** Quarantined boxes re-annealed and re-admitted. *)
  backup_rebuilt : bool;
}

val clean : outcome -> bool
(** The [after] report is audit-clean. *)

val run : ?pool:Mps_parallel.Pool.t -> ?config:config -> Structure.t -> outcome
(** Audit, quarantine, repair, re-audit.  The input structure is not
    mutated.  Returns the input structure unchanged (with [after =
    before]) when it is already clean.

    [pool] fans out the audits (per stored placement) and the
    re-annealing of quarantined boxes (one task per box, each on its
    own {!Mps_rng.Rng.split} stream of [seed], admitted back in
    ascending quarantine order) — the outcome is identical with or
    without a pool, at any job count. *)

val describe : outcome -> string
(** One-paragraph human-readable summary. *)

open Mps_geometry
open Mps_placement

type t = {
  placement : Placement.t;
  box : Dimbox.t;
  expansion : Dimbox.t;
  avg_cost : float;
  best_cost : float;
  best_dims : Dims.t;
  template_like : bool;
}

let make ~template_like ~placement ~box ~expansion ~avg_cost ~best_cost ~best_dims =
  if (not template_like) && not (Dimbox.contains_box ~outer:expansion ~inner:box) then
    invalid_arg "Stored.make: validity box exceeds the expansion box";
  if not (Dimbox.contains box best_dims) then
    invalid_arg "Stored.make: best_dims outside the validity box";
  { placement; box; expansion; avg_cost; best_cost; best_dims; template_like }

let with_box t box =
  if (not t.template_like) && not (Dimbox.contains_box ~outer:t.expansion ~inner:box)
  then invalid_arg "Stored.with_box: box exceeds the expansion box";
  { t with box; best_dims = Dimbox.clamp box t.best_dims }

let n_blocks t = Placement.n_blocks t.placement

let instantiate t dims = Placement.rects t.placement dims

let instantiate_clamped t dims = Placement.rects t.placement (Dimbox.clamp t.expansion dims)

let instantiate_repacked t dims =
  Repack.instantiate
    ~die:(t.placement.Placement.die_w, t.placement.Placement.die_h)
    ~coords:t.placement.Placement.coords dims

let instantiate_into t ~out dims = Placement.rects_into out t.placement dims

let instantiate_repacked_into t ~scratch ~out dims =
  Repack.instantiate_into ~scratch ~out
    ~die:(t.placement.Placement.die_w, t.placement.Placement.die_h)
    ~coords:t.placement.Placement.coords dims

let instantiate_auto t dims =
  if Dimbox.contains t.expansion dims then instantiate t dims
  else instantiate_repacked t dims

let pp fmt t =
  Format.fprintf fmt "@[<v>placement %a@ box %a@ avg %.2f best %.2f@]" Placement.pp
    t.placement Dimbox.pp t.box t.avg_cost t.best_cost

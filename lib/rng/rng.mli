(** Deterministic pseudo-random number helpers.

    Every stochastic component of the library threads a value of type {!t}
    explicitly, so that whole experiments are reproducible from a single
    integer seed.  Draws come from a standard-library [Random.State];
    each generator additionally carries an immutable 64-bit stream key
    from which {!split} derives independent child streams. *)

type t
(** Mutable generator state plus an immutable stream key. *)

val create : seed:int -> t
(** [create ~seed] returns a fresh generator determined by [seed]. *)

val split : t -> int -> t
(** [split t id] derives the [id]-th child stream of [t] ([id >= 0]).
    The child's seed is a splitmix64 mix of [t]'s stream key and [id],
    so:
    {ul
    {- it is a pure function of [(seed path, id)] — the same parent
       and id always yield the identical stream, no matter how many
       draws [t] has made before or makes after (splitting never
       touches the parent's state);}
    {- distinct ids (and distinct parents) give statistically
       independent streams.}}
    This is what hands every parallel task its own deterministic
    stream by task id (DESIGN.md §9).
    @raise Invalid_argument if [id < 0]. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy replays the same
    stream as [t] would. *)

val to_string : t -> string
(** Serialize the exact generator state (draw state and stream key) as
    a single printable token (no whitespace).  [of_string (to_string
    t)] replays the same stream as [t] and splits identically — the
    foundation of checkpoint/resume determinism. *)

val of_string : string -> t option
(** Rehydrate a state written by {!to_string}; [None] when the token is
    malformed or from an incompatible runtime.  Tokens written before
    stream keys existed still parse (with a zero key). *)

val int : t -> int -> int
(** [int t n] draws uniformly from [0 .. n-1].  [n] must be positive. *)

val unsafe_int : t -> int -> int
(** [int] without the bound check — same draw, same stream position.
    For compiled move tables ({!Mps_anneal.Move_lut}) whose spans are
    validated once at build time; the behaviour is undefined when
    [n < 1].  Anywhere else, use {!int}. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from the inclusive range [lo .. hi].
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t x] draws uniformly from [[0, x)]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] draws uniformly from [[lo, hi)]. *)

val bool : t -> bool
(** A fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Box-Muller normal draw. *)

val choose : t -> 'a array -> 'a
(** Uniform draw from a non-empty array.  @raise Invalid_argument on
    an empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniform draw from a non-empty list.  @raise Invalid_argument on an
    empty list. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val shuffle : t -> 'a list -> 'a list
(** Functional shuffle of a list. *)

val sample_distinct : t -> k:int -> n:int -> int list
(** [sample_distinct t ~k ~n] draws [k] distinct values from
    [0 .. n-1], in random order.  Requires [0 <= k <= n]. *)

(* A generator is a mutable Random.State plus an immutable 64-bit
   stream key.  Draws come from the state; [split] derives child
   streams from the key alone (splitmix64 mixing), so splitting is
   pure — it neither consumes nor disturbs the parent's draw sequence.
   That is what lets parallel tasks get their streams by task id while
   the sequential path replays byte-for-byte. *)

type t = { state : Random.State.t; key : int64 }

(* splitmix64 finalizer (Steele, Lea & Flood 2014): a bijective mixer
   whose output passes BigCrush even on sequential inputs — exactly
   what turning (key, task_id) into an uncorrelated child seed
   needs. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let golden = 0x9e3779b97f4a7c15L

let create ~seed =
  (* The state construction predates the stream key and is pinned:
     checkpoints and tests depend on the sequential draw sequence. *)
  { state = Random.State.make [| seed; 0x6d70732d; 0x72657072 |];
    key = mix64 (Int64.add (Int64.of_int seed) golden) }

let split t id =
  if id < 0 then invalid_arg "Rng.split: stream id must be >= 0";
  let key = mix64 (Int64.add t.key (Int64.mul golden (Int64.of_int (id + 1)))) in
  let s0 = mix64 (Int64.logxor key 0x243f6a8885a308d3L) in
  let s1 = mix64 (Int64.add key golden) in
  let lo v = Int64.to_int (Int64.logand v 0xffffffffL) in
  let hi v = Int64.to_int (Int64.shift_right_logical v 32) in
  { state = Random.State.make [| lo s0; hi s0; lo s1; hi s1 |]; key }

let copy t = { state = Random.State.copy t.state; key = t.key }

(* The state is opaque, so serialization goes through Marshal; hex
   encoding keeps the token printable and whitespace-free for the
   line-oriented checkpoint format.  Marshal round-trips Random.State
   bit-exactly (property-tested), which is what resume determinism
   needs.  The token is "<16-hex-digit key>.<hex marshal blob>"; a
   bare blob with no '.' (written before streams had keys) still
   parses, with a zero key. *)

let to_string t =
  let blob = Marshal.to_string (Random.State.copy t.state) [] in
  let buf = Buffer.create (17 + (2 * String.length blob)) in
  Buffer.add_string buf (Printf.sprintf "%016Lx." t.key);
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) blob;
  Buffer.contents buf

let hex c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let state_of_hex s =
  let len = String.length s in
  if len = 0 || len mod 2 <> 0 then None
  else
    let blob = Bytes.create (len / 2) in
    let ok = ref true in
    for i = 0 to (len / 2) - 1 do
      match (hex s.[2 * i], hex s.[(2 * i) + 1]) with
      | Some hi, Some lo -> Bytes.set blob i (Char.chr ((hi lsl 4) lor lo))
      | _ -> ok := false
    done;
    if not !ok then None
    else
      match (Marshal.from_string (Bytes.to_string blob) 0 : Random.State.t) with
      | state -> Some state
      | exception _ -> None

let key_of_hex s =
  if String.length s <> 16 then None
  else
    let rec go i acc =
      if i >= 16 then Some acc
      else
        match hex s.[i] with
        | Some d ->
            go (i + 1) (Int64.logor (Int64.shift_left acc 4) (Int64.of_int d))
        | None -> None
    in
    go 0 0L

let of_string s =
  match String.index_opt s '.' with
  | Some i -> (
      match
        ( key_of_hex (String.sub s 0 i),
          state_of_hex (String.sub s (i + 1) (String.length s - i - 1)) )
      with
      | Some key, Some state -> Some { state; key }
      | _ -> None)
  | None -> (
      (* legacy token: marshal blob only, stream key unknown *)
      match state_of_hex s with
      | Some state -> Some { state; key = 0L }
      | None -> None)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  Random.State.int t.state n

let[@inline] unsafe_int t n = Random.State.int t.state n

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: empty range";
  lo + Random.State.int t.state (hi - lo + 1)

let float t x = Random.State.float t.state x

let float_in t lo hi =
  if lo > hi then invalid_arg "Rng.float_in: empty range";
  lo +. Random.State.float t.state (hi -. lo)

let bool t = Random.State.bool t.state

let bernoulli t p =
  if p >= 1.0 then true
  else if p <= 0.0 then false
  else Random.State.float t.state 1.0 < p

let gaussian t ~mu ~sigma =
  (* Box-Muller; guard against log 0. *)
  let u1 = max epsilon_float (Random.State.float t.state 1.0) in
  let u2 = Random.State.float t.state 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(Random.State.int t.state (Array.length a))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Rng.choose_list: empty list"
  | _ -> List.nth l (Random.State.int t.state (List.length l))

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t.state (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle t l =
  let a = Array.of_list l in
  shuffle_in_place t a;
  Array.to_list a

let sample_distinct t ~k ~n =
  if k < 0 || k > n then invalid_arg "Rng.sample_distinct";
  let a = Array.init n (fun i -> i) in
  (* Partial Fisher-Yates: the first k slots end up as the sample. *)
  for i = 0 to k - 1 do
    let j = i + Random.State.int t.state (n - i) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list (Array.sub a 0 k)

type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x6d70732d; 0x72657072 |]

let split t = Random.State.split t

let copy t = Random.State.copy t

(* The state is opaque, so serialization goes through Marshal; hex
   encoding keeps the token printable and whitespace-free for the
   line-oriented checkpoint format.  Marshal round-trips Random.State
   bit-exactly (property-tested), which is what resume determinism
   needs. *)

let to_string t =
  let blob = Marshal.to_string (Random.State.copy t) [] in
  let buf = Buffer.create (2 * String.length blob) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) blob;
  Buffer.contents buf

let of_string s =
  let len = String.length s in
  if len = 0 || len mod 2 <> 0 then None
  else
    let hex c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
      | _ -> None
    in
    let blob = Bytes.create (len / 2) in
    let ok = ref true in
    for i = 0 to (len / 2) - 1 do
      match (hex s.[2 * i], hex s.[(2 * i) + 1]) with
      | Some hi, Some lo -> Bytes.set blob i (Char.chr ((hi lsl 4) lor lo))
      | _ -> ok := false
    done;
    if not !ok then None
    else
      match (Marshal.from_string (Bytes.to_string blob) 0 : Random.State.t) with
      | state -> Some state
      | exception _ -> None

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  Random.State.int t n

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: empty range";
  lo + Random.State.int t (hi - lo + 1)

let float t x = Random.State.float t x

let float_in t lo hi =
  if lo > hi then invalid_arg "Rng.float_in: empty range";
  lo +. Random.State.float t (hi -. lo)

let bool t = Random.State.bool t

let bernoulli t p =
  if p >= 1.0 then true
  else if p <= 0.0 then false
  else Random.State.float t 1.0 < p

let gaussian t ~mu ~sigma =
  (* Box-Muller; guard against log 0. *)
  let u1 = max epsilon_float (Random.State.float t 1.0) in
  let u2 = Random.State.float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(Random.State.int t (Array.length a))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Rng.choose_list: empty list"
  | _ -> List.nth l (Random.State.int t (List.length l))

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle t l =
  let a = Array.of_list l in
  shuffle_in_place t a;
  Array.to_list a

let sample_distinct t ~k ~n =
  if k < 0 || k > n then invalid_arg "Rng.sample_distinct";
  let a = Array.init n (fun i -> i) in
  (* Partial Fisher-Yates: the first k slots end up as the sample. *)
  for i = 0 to k - 1 do
    let j = i + Random.State.int t (n - i) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list (Array.sub a 0 k)

open Mps_rng
open Mps_geometry
open Mps_anneal

type placer = {
  name : string;
  place : Dims.t -> Rect.t array;
}

(* One compiled engine + session per placer: the sizing loop calls
   [place] thousands of times with slightly perturbed dims, exactly the
   workload the hot-box cache and the reusable rect buffer exist for.
   The returned floorplan is the session's scratch buffer — valid until
   the next [place] call, which is all the cost evaluation needs. *)
let mps_placer structure =
  let engine = Mps_core.Structure.Engine.create structure in
  let session = Mps_core.Structure.Engine.new_session () in
  {
    name = "mps";
    place = (fun dims -> Mps_core.Structure.Engine.instantiate_into engine session dims);
  }

let template_placer template =
  {
    name = "template";
    place = (fun dims -> Mps_baselines.Template_placer.instantiate template dims);
  }

let sa_placer ?(config = Mps_baselines.Sa_placer.default_config) ~seed circuit ~die_w
    ~die_h =
  let rng = Rng.create ~seed in
  {
    name = "sa-placer";
    place =
      (fun dims ->
        (Mps_baselines.Sa_placer.place ~config ~rng circuit ~die_w ~die_h dims)
          .Mps_baselines.Sa_placer.rects);
  }

type parasitics =
  | Hpwl_estimate
  | Routed_extraction

type config = {
  seed : int;
  iterations : int;
  schedule : Schedule.t;
  spec : Opamp.spec;
  step : float;
  parasitics : parasitics;
  optimize_aspect : bool;
}

let default_config =
  {
    seed = 42;
    iterations = 150;
    schedule = Schedule.geometric ~t0:50.0 ~alpha:0.96 ~t_min:1e-3 ();
    spec = Opamp.default_spec;
    step = 0.35;
    parasitics = Hpwl_estimate;
    optimize_aspect = true;
  }

type result = {
  best_sizing : Opamp.sizing;
  best_aspect_hints : float array;
  best_perf : Opamp.perf;
  best_cost : float;
  meets_spec : bool;
  evaluations : int;
  placement_seconds : float;
  total_seconds : float;
  history : float array;
}

(* The annealing state: electrical sizes plus per-block aspect hints
   (folding choices). *)
type state = {
  sizing : Opamp.sizing;
  hints : float array;
}

let min_hint = 0.25
let max_hint = 4.0

let perturb_sizing rng ~step (s : Opamp.sizing) =
  let bump v = v *. exp (Rng.float_in rng (-.step) step) in
  let pick = Rng.int rng 5 in
  let s' =
    match pick with
    | 0 -> { s with Opamp.w1_um = bump s.Opamp.w1_um }
    | 1 -> { s with Opamp.w3_um = bump s.Opamp.w3_um }
    | 2 -> { s with Opamp.w5_um = bump s.Opamp.w5_um }
    | 3 -> { s with Opamp.w6_um = bump s.Opamp.w6_um }
    | _ -> { s with Opamp.cc_ff = bump s.Opamp.cc_ff }
  in
  Opamp.clamp_sizing s'

let perturb_state rng ~step ~optimize_aspect state =
  if optimize_aspect && Rng.bernoulli rng 0.3 then begin
    let hints = Array.copy state.hints in
    let i = Rng.int rng (Array.length hints) in
    let bumped = hints.(i) *. exp (Rng.float_in rng (-0.5) 0.5) in
    hints.(i) <- Float.max min_hint (Float.min max_hint bumped);
    { state with hints }
  end
  else { state with sizing = perturb_sizing rng ~step state.sizing }

let run ?(config = default_config) process circuit ~die_w ~die_h placer =
  let t0 = Unix.gettimeofday () in
  let rng = Rng.create ~seed:config.seed in
  let placement_seconds = ref 0.0 in
  let history = ref [] in
  let best_perf = ref None in
  let evaluate state =
    let dims = Opamp.dims ~aspect_hints:state.hints process circuit state.sizing in
    let tp = Unix.gettimeofday () in
    let rects = placer.place dims in
    placement_seconds := !placement_seconds +. (Unix.gettimeofday () -. tp);
    let perf =
      match config.parasitics with
      | Hpwl_estimate -> Opamp.performance process circuit ~die_w ~die_h state.sizing rects
      | Routed_extraction ->
        Opamp.performance_routed process circuit ~die_w ~die_h state.sizing rects
    in
    (perf, Opamp.spec_cost config.spec perf)
  in
  let cost state =
    let perf, c = evaluate state in
    (match !history with
    | [] -> history := [ (c, perf) ]
    | (best_c, _) :: _ ->
      if c < best_c then history := (c, perf) :: !history
      else history := List.hd !history :: !history);
    (match !best_perf with
    | Some (bc, _) when bc <= c -> ()
    | _ -> best_perf := Some (c, perf));
    c
  in
  let sa =
    Annealer.run ~rng ~schedule:config.schedule ~iterations:config.iterations
      {
        Annealer.initial =
          { sizing = Opamp.nominal_sizing;
            hints = Array.make (Mps_netlist.Circuit.n_blocks circuit) 1.0 };
        cost;
        neighbor =
          (fun rng s ->
            perturb_state rng ~step:config.step ~optimize_aspect:config.optimize_aspect s);
      }
  in
  let best_cost, best_perf =
    match !best_perf with Some (c, p) -> (c, p) | None -> assert false
  in
  {
    best_sizing = sa.Annealer.best.sizing;
    best_aspect_hints = Array.copy sa.Annealer.best.hints;
    best_perf;
    best_cost;
    meets_spec = Opamp.meets_spec config.spec best_perf;
    evaluations = sa.Annealer.evaluations;
    placement_seconds = !placement_seconds;
    total_seconds = Unix.gettimeofday () -. t0;
    history = Array.of_list (List.rev_map fst !history);
  }

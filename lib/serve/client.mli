(** Client for the mpsd wire protocol: deadline-aware retry, request
    pipelining, and hedged queries.

    A client owns one connection (lazily opened, transparently
    re-opened after a failure) plus the per-connection circuit handles
    the server hands out.  Replies are matched to requests by id
    through an in-flight table, so requests may be {e pipelined}:
    several frames on the wire at once, replies consumed in whatever
    order the server produces them ({!query_ids_pipelined}).

    Any transport-level failure — EOF, a torn frame, a reply for an
    unknown request — {e poisons} the connection: it is closed, the
    handle table dropped, and every in-flight request failed, so the
    next call starts from a clean connect + re-open.  That makes every
    operation safe to retry, which {!with_retry} does with exponential
    backoff and deterministic jitter — but only when the last frame
    sent was {e idempotent} ({!Wire.idempotent}): a [Reload] is never
    blindly re-issued, and a successful-but-degraded answer is an
    answer, never retried.

    {!hedged_query_ids} races two connections: when the primary has
    not answered within a p99-derived delay (from this client's own
    latency history), the same idempotent query is re-issued on a
    lazily-opened second connection and the first answer wins — the
    tail-latency insurance for a query stuck behind a stalled or
    crashed worker.

    Deadline semantics: [?budget] (seconds) bounds one attempt
    end-to-end on the client side {e and} travels to the server as the
    request's microsecond budget, so both sides give up around the
    same time — the server with a typed [Err_timeout] reply, the
    client by poisoning the connection and reporting {!Timed_out}
    (whichever happens first). *)

open Mps_geometry

type t

(** Why a call failed.  [Refused] carries a typed server reply —
    the request was received and answered, just not with data.
    [Timed_out] and [Disconnected] are client-side: the attempt died
    somewhere in the transport and the connection was poisoned. *)
type error =
  | Refused of Wire.status * string
  | Timed_out
  | Disconnected of string

val error_to_string : error -> string

val retryable : error -> bool
(** Worth retrying: [Timed_out], [Disconnected], and refusals that are
    about the moment rather than the request ([Err_overloaded],
    [Err_timeout], [Err_shutting_down], [Err_worker_lost]).
    [Err_bad_request], [Err_unknown_circuit] and [Err_store] will fail
    the same way again and are not retryable. *)

(** Reply metadata: the answering entry's generation epoch and whether
    the entry was degraded (backup-template answers). *)
type meta = { epoch : int; degraded : bool }

(** Client-side counters: how much work the resilience machinery did. *)
type stats = {
  connects : int;  (** Sockets opened (reconnects included). *)
  retries : int;  (** Re-issues by {!with_retry}. *)
  hedges : int;  (** Hedge requests launched. *)
  hedge_wins : int;  (** Races where the hedge answered first. *)
  pipelined : int;  (** Frames sent while another was already in flight. *)
  ring_requests : int;  (** Requests routed over the shm ring. *)
}

val connect :
  ?transport:Transport.t -> ?max_frame_bytes:int -> ?shm:bool -> Server.addr -> t
(** Create a client for the address.  No I/O happens until the first
    call (so this never fails); [max_frame_bytes] caps reply frames
    (default {!Wire.max_frame_default}).

    [~shm:true] asks for the shared-memory fast path (DESIGN.md §13)
    on every fresh connection: one [Shm_hello] roundtrip, then the
    client maps the per-session ring file the server created and
    routes batch queries through it — no syscall per request, and
    MPSZ-backed answers arrive as descriptors into the container the
    client maps read-only.  Only sensible for a client co-located with
    the daemon (the ring file must be the same file on both sides).
    The socket stays open as the control channel; requests that do not
    fit the ring, and every non-batch request, use it.  A declined
    negotiation or a dead ring falls back to the socket; after 3
    failures the client stops asking. *)

val ring_active : t -> bool
(** The current connection carries a negotiated shm ring. *)

val close : t -> unit
(** Close the underlying connection and the hedge connection if one
    was opened (idempotent; the client may still be used afterwards —
    the next call reconnects). *)

val stats : t -> stats

val ping : ?budget:float -> t -> (meta, error) result

val health : ?budget:float -> t -> (Wire.health, error) result
(** The daemon's liveness/readiness snapshot.  Note that a daemon
    whose workers are all down cannot serve even this — the resulting
    [Refused]/[Disconnected] {e is} the not-ready signal, exactly as
    an orchestrator's probe would see it. *)

val query_ids :
  ?budget:float -> t -> circuit:string -> Dims.t array -> (int array * meta, error) result
(** Placement ids for a batch of dimension vectors ([>= 0] stored
    index, [-1] fallback-to-backup, [-2] out-of-domain), opening the
    circuit on this connection first when needed.  All vectors must
    have the circuit's block count. *)

val query_ids_pipelined :
  ?budget:float ->
  ?depth:int ->
  t ->
  circuit:string ->
  Dims.t array array ->
  (int array * meta, error) result array
(** {!query_ids} for several batches with up to [depth] (default 8)
    request frames in flight at once — one connection, no per-request
    round-trip stall.  Results arrive positionally.  [?budget] covers
    the whole call.  A connection failure fails the in-flight and
    unsent tail; completed results are kept. *)

val instantiate :
  ?budget:float ->
  t ->
  circuit:string ->
  Dims.t array ->
  (Rect.t array array * meta, error) result
(** Instantiated floorplans (one rect per block) for a batch of
    dimension vectors. *)

val hedged_query_ids :
  ?budget:float ->
  ?hedge_after:float ->
  ?peers:Server.addr list ->
  t ->
  circuit:string ->
  Dims.t array ->
  (int array * meta, error) result
(** {!query_ids}, hedged: when no answer arrives within
    [hedge_after] seconds (default: p99 of this client's recent
    request latencies, x1.5, floor 2 ms), re-issue the query on a
    second connection and take the first [Ok].  The loser's
    connection is poisoned (its late reply must not desync a later
    call) — only the loser: the winning connection is untouched.
    Only ever sends idempotent frames, and always over the socket
    (never the shm ring).

    [peers] hedges {e across daemons}: the hedge connection goes to
    one of the listed addresses (round-robin across calls) instead of
    a second connection to this client's own daemon — so a whole
    stalled daemon, not just a slow worker, is raced.  The hedge
    connection is reused while the chosen address is stable and
    replaced (old one poisoned) when it changes. *)

val reload : ?budget:float -> t -> circuit:string -> (meta, error) result
(** Ask the server to reload the circuit from disk (epoch bump).
    Deliberately {e not} idempotent: {!with_retry} will not re-issue
    it. *)

val server_stats : ?budget:float -> t -> (string * meta, error) result
(** The server's human-readable stats/store report. *)

val with_retry :
  ?attempts:int ->
  ?base_delay:float ->
  ?max_delay:float ->
  rng:Mps_rng.Rng.t ->
  t ->
  (unit -> ('a, error) result) ->
  ('a, error) result
(** Run [f], retrying {!retryable} errors up to [attempts] times
    (default 6) with exponential backoff from [base_delay] (default
    10 ms) capped at [max_delay] (default 1 s), each delay jittered to
    [50..100]% by draws from [rng] so synchronized clients do not
    stampede a recovering server.  Retries only when the last frame
    [t] sent was idempotent ([Reload] is not), and never after a
    success — degraded or not.  Each retry is counted in {!stats}.
    Returns the first success or the last error. *)

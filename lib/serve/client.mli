(** Client for the mpsd wire protocol, with deadline-aware retry.

    A client owns one connection (lazily opened, transparently
    re-opened after a failure) plus the per-connection circuit handles
    the server hands out.  Any transport-level failure — EOF, a torn
    frame, a reply for the wrong request — {e poisons} the connection:
    it is closed and the handle table dropped, so the next call starts
    from a clean connect + re-open.  That makes every operation safe
    to retry, which {!with_retry} does with exponential backoff and
    deterministic jitter.

    Deadline semantics: [?budget] (seconds) bounds one attempt
    end-to-end on the client side {e and} travels to the server as the
    request's microsecond budget, so both sides give up around the
    same time — the server with a typed [Err_timeout] reply, the
    client by poisoning the connection and reporting {!Timed_out}
    (whichever happens first). *)

open Mps_geometry

type t

(** Why a call failed.  [Refused] carries a typed server reply —
    the request was received and answered, just not with data.
    [Timed_out] and [Disconnected] are client-side: the attempt died
    somewhere in the transport and the connection was poisoned. *)
type error =
  | Refused of Wire.status * string
  | Timed_out
  | Disconnected of string

val error_to_string : error -> string

val retryable : error -> bool
(** Worth retrying: [Timed_out], [Disconnected], and refusals that are
    about the moment rather than the request ([Err_overloaded],
    [Err_timeout], [Err_shutting_down]).  [Err_bad_request],
    [Err_unknown_circuit] and [Err_store] will fail the same way again
    and are not retryable. *)

(** Reply metadata: the answering entry's generation epoch and whether
    the entry was degraded (backup-template answers). *)
type meta = { epoch : int; degraded : bool }

val connect :
  ?transport:Transport.t -> ?max_frame_bytes:int -> Server.addr -> t
(** Create a client for the address.  No I/O happens until the first
    call (so this never fails); [max_frame_bytes] caps reply frames
    (default {!Wire.max_frame_default}). *)

val close : t -> unit
(** Close the underlying connection (idempotent; the client may still
    be used afterwards — the next call reconnects). *)

val ping : ?budget:float -> t -> (meta, error) result

val query_ids :
  ?budget:float -> t -> circuit:string -> Dims.t array -> (int array * meta, error) result
(** Placement ids for a batch of dimension vectors ([>= 0] stored
    index, [-1] fallback-to-backup, [-2] out-of-domain), opening the
    circuit on this connection first when needed.  All vectors must
    have the circuit's block count. *)

val instantiate :
  ?budget:float ->
  t ->
  circuit:string ->
  Dims.t array ->
  (Rect.t array array * meta, error) result
(** Instantiated floorplans (one rect per block) for a batch of
    dimension vectors. *)

val reload : ?budget:float -> t -> circuit:string -> (meta, error) result
(** Ask the server to reload the circuit from disk (epoch bump). *)

val server_stats : ?budget:float -> t -> (string * meta, error) result
(** The server's human-readable stats/store report. *)

val with_retry :
  ?attempts:int ->
  ?base_delay:float ->
  ?max_delay:float ->
  rng:Mps_rng.Rng.t ->
  (unit -> ('a, error) result) ->
  ('a, error) result
(** Run [f], retrying {!retryable} errors up to [attempts] times
    (default 6) with exponential backoff from [base_delay] (default
    10 ms) capped at [max_delay] (default 1 s), each delay jittered to
    [50..100]% by draws from [rng] so synchronized clients do not
    stampede a recovering server.  Returns the first success or the
    last error. *)

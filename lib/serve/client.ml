open Mps_geometry

type error =
  | Refused of Wire.status * string
  | Timed_out
  | Disconnected of string

let error_to_string = function
  | Refused (status, msg) ->
    Printf.sprintf "server refused: %s (%s)" (Wire.status_to_string status) msg
  | Timed_out -> "client-side deadline expired"
  | Disconnected msg -> Printf.sprintf "disconnected: %s" msg

let retryable = function
  | Timed_out | Disconnected _ -> true
  | Refused
      ( ( Wire.Err_overloaded | Wire.Err_timeout | Wire.Err_shutting_down
        | Wire.Err_worker_lost ),
        _ ) ->
    true
  | Refused _ -> false

type meta = { epoch : int; degraded : bool }

type stats = {
  connects : int;
  retries : int;
  hedges : int;
  hedge_wins : int;
  pipelined : int;
  ring_requests : int;
}

(* The client-side view of a server container (DESIGN.md §13): where
   the [*.mpsz] file behind a circuit lives, so descriptor replies can
   be validated (and read) against our own read-only mapping of the
   same inode.  Mapped lazily on the first descriptor reply; remapped
   when the reply epoch moves past the mapping (a reload republished
   the file). *)
type container = {
  c_path : string;
  mutable c_words : int;  (* descriptor bound: the mapping size once mapped *)
  mutable c_epoch : int;
  mutable c_map : Mps_core.Persist.words option;
}

(* A parked in-flight request.  The reply pump routes each frame to
   its slot by request id; the slot's continuations write the caller's
   result cell, so replies may arrive in any order. *)
type slot = {
  s_parse : Bytes.t -> len:int -> meta -> unit;  (* may raise Wire.Truncated *)
  s_refuse : Wire.status -> string -> unit;
  s_fail : error -> unit;
}

type t = {
  addr : Server.addr;
  transport : Transport.t;
  max_frame_bytes : int;
  mutable fd : Unix.file_descr option;
  mutable next_req_id : int;
  (* circuit name -> (handle, n_blocks); valid for the current
     connection only *)
  handles : (string, int * int) Hashtbl.t;
  inflight : (int, slot) Hashtbl.t;
  inbuf : Bytes.t ref;
  outbuf : Bytes.t ref;
  (* shm fast path: ask for a ring on connect, give up after repeated
     failures, and keep the per-circuit container views across
     reconnects (the mapping outlives the session) *)
  want_shm : bool;
  mutable ring : Shm.t option;
  mutable ring_failed : int;
  containers : (string, container) Hashtbl.t;
  (* stats *)
  mutable s_connects : int;
  mutable s_retries : int;
  mutable s_hedges : int;
  mutable s_hedge_wins : int;
  mutable s_pipelined : int;
  mutable s_ring_requests : int;
  (* whether the most recent frame sent may be blindly re-issued — the
     retry/hedge gate *)
  mutable last_idempotent : bool;
  (* recent request latencies (ring), for the p99-derived hedge delay *)
  lat : float array;
  mutable lat_n : int;
  mutable lat_i : int;
  (* lazily-opened second connection for hedged requests *)
  mutable hedge_peer : t option;
}

let connect ?(transport = Transport.default) ?(max_frame_bytes = Wire.max_frame_default)
    ?(shm = false) addr =
  (* A daemon that dies mid-request must surface as EPIPE (mapped to
     [Disconnected]), never kill the client process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  {
    addr;
    transport;
    max_frame_bytes;
    fd = None;
    next_req_id = 1;
    handles = Hashtbl.create 4;
    inflight = Hashtbl.create 8;
    inbuf = ref (Bytes.create 4096);
    outbuf = ref (Bytes.create 4096);
    want_shm = shm;
    ring = None;
    ring_failed = 0;
    containers = Hashtbl.create 4;
    s_connects = 0;
    s_retries = 0;
    s_hedges = 0;
    s_hedge_wins = 0;
    s_pipelined = 0;
    s_ring_requests = 0;
    last_idempotent = true;
    lat = Array.make 64 0.0;
    lat_n = 0;
    lat_i = 0;
    hedge_peer = None;
  }

let stats t =
  {
    connects = t.s_connects;
    retries = t.s_retries;
    hedges = t.s_hedges;
    hedge_wins = t.s_hedge_wins;
    pipelined = t.s_pipelined;
    ring_requests = t.s_ring_requests;
  }

let ring_active t = t.ring <> None

(* Drop the connection and fail everything still in flight on it with
   [err] — a transport failure or desync taints every outstanding
   reply, not just the one we were pumping for. *)
let poison_with t err =
  (* The ring session dies with the connection: closing the socket is
     the server's immediate reap signal, and the closed flag covers the
     case where it is still polling the ring. *)
  (match t.ring with
  | Some ring ->
    (try Shm.close ring with Shm.Dead _ -> ());
    t.ring <- None
  | None -> ());
  (match t.fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  t.fd <- None;
  Hashtbl.reset t.handles;
  let slots = Hashtbl.fold (fun _ s acc -> s :: acc) t.inflight [] in
  Hashtbl.reset t.inflight;
  List.iter (fun s -> s.s_fail err) slots

let close t =
  poison_with t (Disconnected "closed by caller");
  match t.hedge_peer with
  | Some p ->
    poison_with p (Disconnected "closed by caller");
    t.hedge_peer <- None
  | None -> ()

(* The ring itself failed (torn frame, stale server heartbeat, dead
   mapping): count it against further negotiation attempts and poison
   the whole connection — reconnecting renegotiates (or gives up and
   stays on the socket). *)
let ring_dead t msg =
  t.ring_failed <- t.ring_failed + 1;
  poison_with t (Disconnected ("shm session dead: " ^ msg))

let sockaddr_of = function
  | Server.Unix_path path -> Unix.ADDR_UNIX path
  | Server.Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found | Invalid_argument _ ->
          raise (Unix.Unix_error (Unix.EINVAL, "gethostbyname", host)))
    in
    Unix.ADDR_INET (inet, port)

let prefix = Wire.frame_prefix_bytes
let req_header = Wire.request_header_bytes
let rep_header = Wire.reply_header_bytes

let record_latency t dt =
  let cap = Array.length t.lat in
  t.lat.(t.lat_i) <- dt;
  t.lat_i <- (t.lat_i + 1) mod cap;
  if t.lat_n < cap then t.lat_n <- t.lat_n + 1

(* The p99-derived hedge delay: generous before any samples exist,
   never below 2 ms (a hedge cheaper than a scheduler quantum is just
   double load). *)
let hedge_delay t =
  if t.lat_n = 0 then 0.05
  else begin
    let n = t.lat_n in
    let copy = Array.sub t.lat 0 n in
    Array.sort compare copy;
    let p99 = copy.(min (n - 1) (n * 99 / 100)) in
    Float.max 0.002 (p99 *. 1.5)
  end

(* Deliver one received reply (already in [t.inbuf], payload at offset
   0 — both the socket and the ring present frames this way) to its
   slot.  Any protocol desync poisons the connection. *)
let deliver t ~len =
  (
    let b = !(t.inbuf) in
    match
      let status_i = Wire.get_u8 b ~len 0 in
      let rep_id = Wire.get_u32 b ~len 1 in
      let epoch = Wire.get_u32 b ~len 5 in
      (Wire.status_of_int status_i, rep_id, epoch)
    with
    | exception Wire.Truncated msg ->
      poison_with t (Disconnected ("short reply header: " ^ msg))
    | None, _, _ -> poison_with t (Disconnected "unknown reply status")
    | Some status, rep_id, epoch -> (
      let error_body () =
        match Wire.get_string16 b ~len rep_header with
        | s, _ -> s
        | exception Wire.Truncated _ -> ""
      in
      if rep_id = 0 then
        (* a shed / shutting-down farewell answers everything we have
           in flight, and the server closes after it *)
        match status with
        | Wire.Ok | Wire.Ok_degraded ->
          poison_with t (Disconnected "success reply with request id 0")
        | err_status ->
          let msg = error_body () in
          let slots = Hashtbl.fold (fun _ s acc -> s :: acc) t.inflight [] in
          Hashtbl.reset t.inflight;
          List.iter (fun s -> s.s_refuse err_status msg) slots;
          poison_with t (Disconnected "server sent a farewell")
      else
        match Hashtbl.find_opt t.inflight rep_id with
        | None ->
          poison_with t
            (Disconnected (Printf.sprintf "reply for unknown request %d" rep_id))
        | Some slot -> (
          Hashtbl.remove t.inflight rep_id;
          match status with
          | Wire.Ok | Wire.Ok_degraded -> (
            let meta = { epoch; degraded = status = Wire.Ok_degraded } in
            match slot.s_parse b ~len meta with
            | () -> ()
            | exception Wire.Truncated msg ->
              let e = Disconnected ("malformed reply body: " ^ msg) in
              slot.s_fail e;
              poison_with t e)
          | err_status ->
            slot.s_refuse err_status (error_body ());
            (* the worker serving this connection is gone; the server
               severs it next, so start the next call fresh *)
            if err_status = Wire.Err_worker_lost then
              poison_with t (Disconnected "worker lost"))))

(* Receive one frame from the socket and deliver it.  Any transport
   failure poisons the connection (failing every in-flight slot), so a
   caller looping on an unresolved cell always makes progress. *)
let pump_one t fd ~deadline =
  match
    Wire.recv_frame t.transport ?deadline ~max_bytes:t.max_frame_bytes ~buf:t.inbuf fd
  with
  | exception Wire.Timed_out -> poison_with t Timed_out
  | exception Wire.Closed -> poison_with t (Disconnected "connection closed by server")
  | exception Wire.Truncated msg -> poison_with t (Disconnected msg)
  | exception Wire.Too_large n ->
    poison_with t (Disconnected (Printf.sprintf "oversized reply frame (%d bytes)" n))
  | exception Unix.Unix_error (err, fn, _) ->
    poison_with t (Disconnected (Printf.sprintf "%s: %s" fn (Unix.error_message err)))
  | len -> deliver t ~len

(* Ring-aware pump: spin on the reply ring (the hot path is
   syscall-free), then fall into a sleep phase whose select doubles as
   the socket poll — the socket still carries control replies,
   oversized replies and farewells, and its readability is also how a
   dead server is noticed fastest. *)
let pump_ring t ring fd ~deadline =
  let rec go spins =
    match Shm.try_recv ring ~buf:t.inbuf with
    | exception Shm.Dead msg -> ring_dead t msg
    | Some len -> deliver t ~len
    | None ->
      if spins < 200 then begin
        Domain.cpu_relax ();
        go (spins + 1)
      end
      else if spins < 232 then begin
        (* middle gear (see [Shm.wait_step]): on a core shared with
           the daemon, hand it the core instead of blocking 200 us in
           select while it is runnable *)
        Thread.yield ();
        go (spins + 1)
      end
      else begin
        Shm.heartbeat ring;
        if Shm.peer_closed ring then ring_dead t "server closed the session"
        else if not (Shm.peer_alive ring ~timeout:3.0) then
          ring_dead t "server heartbeat stale"
        else
          match deadline with
          | Some d when Unix.gettimeofday () > d -> poison_with t Timed_out
          | _ -> (
            match Unix.select [ fd ] [] [] 0.0002 with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go spins
            | [], _, _ -> go spins
            | _ready, _, _ -> pump_one t fd ~deadline)
      end
  in
  go 0

let pump t fd ~deadline =
  match t.ring with
  | Some ring -> pump_ring t ring fd ~deadline
  | None -> pump_one t fd ~deadline

(* Register [slot] and send one request frame.  On a send failure the
   connection is poisoned — but a daemon that died mid-send may have
   left a farewell in the socket buffer, so salvage it first: a typed
   refusal is a better answer than "broken pipe". *)
let issue ?(via_ring = false) t fd ~opcode ~deadline ~build slot =
  t.last_idempotent <- Wire.idempotent opcode;
  let req_id = t.next_req_id in
  t.next_req_id <- (if req_id >= 0xffffffff then 1 else req_id + 1);
  if Hashtbl.length t.inflight > 0 then t.s_pipelined <- t.s_pipelined + 1;
  Hashtbl.replace t.inflight req_id slot;
  let deadline_us =
    match deadline with
    | None -> 0
    | Some d ->
      let remaining = d -. Unix.gettimeofday () in
      max 1 (int_of_float (remaining *. 1e6)) land 0xffffffff
  in
  match
    let payload_len = req_header + build t.outbuf in
    let b = !(t.outbuf) in
    Wire.set_u8 b prefix (Wire.opcode_to_int opcode);
    Wire.set_u32 b (prefix + 1) req_id;
    Wire.set_u32 b (prefix + 5) deadline_us;
    (* A ring-routed request is answered in ring reply format whichever
       channel carries the reply, so the route must be decided before
       the parse closure is built — [via_ring] comes from the caller,
       never inferred here. *)
    match (if via_ring then t.ring else None) with
    | Some ring ->
      t.s_ring_requests <- t.s_ring_requests + 1;
      Shm.send ?deadline ring b ~off:prefix ~len:payload_len
    | None ->
      if via_ring then
        (* the caller routed to a ring that vanished meanwhile: the
           reply format would desync, so fail fast instead *)
        raise (Shm.Dead "ring vanished before send");
      Wire.send_frame t.transport fd b ~payload_len
  with
  | () -> ()
  | exception Shm.Timeout -> poison_with t Timed_out
  | exception Shm.Dead msg -> ring_dead t msg
  | exception Unix.Unix_error (((Unix.EPIPE | Unix.ECONNRESET) as err), fn, _) ->
    let salvage = Unix.gettimeofday () +. 0.2 in
    let salvage = match deadline with Some d -> Float.min d salvage | None -> salvage in
    (* drain, not peek: data replies may sit ahead of the farewell, and
       every one of them resolves an in-flight request typed.  Each
       pump either resolves a slot, delivers the farewell (which
       poisons), or hits EOF (which poisons) — so this terminates. *)
    while t.fd <> None && Hashtbl.length t.inflight > 0 && Unix.gettimeofday () < salvage
    do
      pump_one t fd ~deadline:(Some salvage)
    done;
    poison_with t (Disconnected (Printf.sprintf "%s: %s" fn (Unix.error_message err)))
  | exception Unix.Unix_error (err, fn, _) ->
    poison_with t (Disconnected (Printf.sprintf "%s: %s" fn (Unix.error_message err)))

(* Negotiate the shm fast path on a fresh connection: one Shm_hello
   roundtrip on the socket; on acceptance, attach the ring file the
   server created for this session.  A decline or a failed attach
   counts against [ring_failed] — after 3 strikes the client stops
   asking and stays on the socket for good. *)
let negotiate_ring t fd =
  let cell = ref None in
  let deadline = Some (Unix.gettimeofday () +. 5.0) in
  let slot =
    {
      s_parse =
        (fun b ~len _meta ->
          if Wire.get_u8 b ~len rep_header = 1 then
            let path, _ = Wire.get_string16 b ~len (rep_header + 5) in
            cell := Some (Some path)
          else cell := Some None);
      s_refuse = (fun _ _ -> cell := Some None);
      s_fail = (fun _ -> if !cell = None then cell := Some None);
    }
  in
  issue t fd ~opcode:Wire.Shm_hello ~deadline ~build:(fun _ -> 0) slot;
  while !cell = None && t.fd <> None do
    pump_one t fd ~deadline
  done;
  match !cell with
  | Some (Some path) -> (
    match Shm.attach ~path () with
    | ring ->
      Shm.heartbeat ring;
      t.ring <- Some ring
    | exception Shm.Dead _ -> t.ring_failed <- t.ring_failed + 1)
  | _ -> t.ring_failed <- t.ring_failed + 1

let ensure_connected t =
  match t.fd with
  | Some fd -> Ok fd
  | None -> (
    match
      let fd =
        Unix.socket ~cloexec:true
          (match t.addr with Server.Unix_path _ -> Unix.PF_UNIX | _ -> Unix.PF_INET)
          Unix.SOCK_STREAM 0
      in
      (try
         Unix.connect fd (sockaddr_of t.addr);
         try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ()
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
    with
    | fd -> (
      t.fd <- Some fd;
      t.s_connects <- t.s_connects + 1;
      if t.want_shm && t.ring_failed < 3 then negotiate_ring t fd;
      (* negotiation may have poisoned the connection under us *)
      match t.fd with
      | Some fd -> Ok fd
      | None -> Error (Disconnected "connection lost during shm negotiation"))
    | exception Unix.Unix_error (err, fn, _) ->
      Error (Disconnected (Printf.sprintf "connect: %s: %s" fn (Unix.error_message err)))
    )

(* Pump until the cell resolves.  Poisoning fails every registered
   slot, so each iteration either resolves the cell or strictly
   shrinks what is still pending. *)
let await t cell ~deadline =
  let rec go () =
    match !cell with
    | Some r -> r
    | None -> (
      match t.fd with
      | None -> Error (Disconnected "connection poisoned")
      | Some fd ->
        pump t fd ~deadline;
        go ())
  in
  go ()

let roundtrip ?budget ?(via_ring = false) t ~opcode ~build ~parse =
  match ensure_connected t with
  | Error e ->
    t.last_idempotent <- Wire.idempotent opcode;
    Error e
  | Ok fd ->
    let start = Unix.gettimeofday () in
    let deadline = Option.map (fun b -> start +. b) budget in
    let cell = ref None in
    let slot =
      {
        s_parse = (fun b ~len meta -> cell := Some (Ok (parse b ~len meta)));
        s_refuse = (fun st msg -> cell := Some (Error (Refused (st, msg))));
        s_fail = (fun e -> if !cell = None then cell := Some (Error e));
      }
    in
    issue t fd ~via_ring ~opcode ~deadline ~build slot;
    let r = await t cell ~deadline in
    (match r with
    | Ok _ -> record_latency t (Unix.gettimeofday () -. start)
    | Error _ -> ());
    r

let ping ?budget t =
  roundtrip ?budget t ~opcode:Wire.Ping
    ~build:(fun _ -> 0)
    ~parse:(fun _ ~len:_ meta -> meta)

let health ?budget t =
  roundtrip ?budget t ~opcode:Wire.Health
    ~build:(fun _ -> 0)
    ~parse:(fun b ~len _meta -> Wire.get_health b ~len rep_header)

(* Open (or look up) this connection's handle for a circuit.  The open
   reply's container trailer (DESIGN.md §13) tells us where the mpsz
   file behind the entry lives, so descriptor replies can be validated
   against our own mapping of it. *)
let handle_for ?budget t circuit =
  match Hashtbl.find_opt t.handles circuit with
  | Some hb -> Ok hb
  | None -> (
    match
      roundtrip ?budget t ~opcode:Wire.Open_circuit
        ~build:(fun outbuf ->
          Wire.put_string16 outbuf (prefix + req_header) circuit - (prefix + req_header))
        ~parse:(fun b ~len meta ->
          let handle = Wire.get_u16 b ~len rep_header in
          let n_blocks = Wire.get_u16 b ~len (rep_header + 3) in
          (if len > rep_header + 9 && Wire.get_u8 b ~len (rep_header + 9) = 1 then begin
             let words = Wire.get_u32 b ~len (rep_header + 10) in
             let path, _ = Wire.get_string16 b ~len (rep_header + 14) in
             (* drop any previous mapping: one mmap per (re)open is
                cheap and always matches the entry we just opened *)
             Hashtbl.replace t.containers circuit
               { c_path = path; c_words = words; c_epoch = meta.epoch; c_map = None }
           end);
          (handle, n_blocks))
    with
    | Ok hb ->
      Hashtbl.replace t.handles circuit hb;
      Ok hb
    | Error _ as e -> e)

(* Dims are u16 on the wire; anything outside that range cannot be a
   designer dimension and is the caller's bug, not a transport
   problem. *)
let put_dim b off v =
  if v < 1 || v > 0xffff then
    invalid_arg (Printf.sprintf "Client: dimension %d outside the u16 wire range" v);
  Bytes.set_uint16_le b off v

let put_batch_request outbuf ~handle ~n dims =
  let count = Array.length dims in
  let body = 6 + (count * 4 * n) in
  Wire.ensure outbuf (prefix + req_header + body);
  let b = !outbuf in
  let base = prefix + req_header in
  Wire.set_u16 b base handle;
  Wire.set_u32 b (base + 2) count;
  Array.iteri
    (fun i d ->
      let off = base + 6 + (i * 4 * n) in
      for j = 0 to n - 1 do
        put_dim b (off + (j * 4)) (Dims.width d j);
        put_dim b (off + (j * 4) + 2) (Dims.height d j)
      done)
    dims;
  body

let check_count b ~len expected =
  let count = Wire.get_u32 b ~len rep_header in
  if count <> expected then
    raise
      (Wire.Truncated (Printf.sprintf "%d results for %d queries" count expected));
  ()

let parse_ids b ~len count =
  check_count b ~len count;
  let base = rep_header + 4 in
  Array.init count (fun i -> Wire.get_i32 b ~len (base + (i * 4)))

(* ---- the shm fast path ------------------------------------------- *)

(* Route a batch through the ring only when both directions can carry
   it: the request frame, and the worst-case reply (descriptor triples
   for queries, rect payloads for instantiation).  Anything bigger
   stays on the socket. *)
let ring_for_batch t ~count ~n ~instantiate =
  match t.ring with
  | None -> false
  | Some ring ->
    let req = req_header + 6 + (count * 4 * n) in
    let rep = rep_header + 5 + (count * (if instantiate then 16 * n else 12)) in
    Shm.tx_fits ring ~len:req && Shm.rx_fits ring ~len:rep

(* The container view a descriptor reply points into, mapped on first
   use and remapped when the reply epoch moved past the mapping (a
   reload republished the file).  Raises [Wire.Truncated] — i.e. the
   reply is undeliverable — when there is no container or it cannot be
   mapped; the pump turns that into a typed [Disconnected]. *)
let container_view t ~circuit ~epoch =
  match Hashtbl.find_opt t.containers circuit with
  | None -> raise (Wire.Truncated "descriptor reply for an unmapped container")
  | Some c ->
    if c.c_map = None || epoch <> c.c_epoch then
      (match Mps_core.Persist.map_words ~path:c.c_path with
      | words, _bytes ->
        c.c_map <- Some words;
        c.c_words <- Bigarray.Array1.dim words;
        c.c_epoch <- epoch
      | exception (Sys_error _ | Unix.Unix_error _) ->
        raise
          (Wire.Truncated
             (Printf.sprintf "container %s cannot be mapped" c.c_path)));
    c

(* Bounds-check one descriptor against the mapped container, then read
   through the mapping: the zero-copy answer is the record's words in
   the server's own mpsz file, not bytes copied over a channel. *)
let check_descr c ~off ~words =
  if off < 0 || words <= 0 || off + words > c.c_words then
    raise
      (Wire.Truncated
         (Printf.sprintf "descriptor [%d, +%d) outside container (%d words)" off
            words c.c_words));
  match c.c_map with
  | Some m ->
    ignore (Bigarray.Array1.get m off : int);
    ignore (Bigarray.Array1.get m (off + words - 1) : int)
  | None -> ()

(* A ring-routed batch reply: a kind byte (0 inline, 1 descriptors),
   then the counted items.  Descriptors are validated against (and
   read through) the client's own mapping of the server's container. *)
let parse_ring_ids t ~circuit ~epoch b ~len count =
  let kind = Wire.get_u8 b ~len rep_header in
  let base = rep_header + 1 in
  let got = Wire.get_u32 b ~len base in
  if got <> count then
    raise (Wire.Truncated (Printf.sprintf "%d results for %d queries" got count));
  match kind with
  | 0 -> Array.init count (fun i -> Wire.get_i32 b ~len (base + 4 + (i * 4)))
  | 1 ->
    let c = container_view t ~circuit ~epoch in
    Array.init count (fun i ->
        let off = base + 4 + (i * 12) in
        let id = Wire.get_i32 b ~len off in
        if id >= 0 then
          check_descr c
            ~off:(Wire.get_u32 b ~len (off + 4))
            ~words:(Wire.get_u32 b ~len (off + 8));
        id)
  | k -> raise (Wire.Truncated (Printf.sprintf "unknown ring reply kind %d" k))

let query_ids ?budget t ~circuit dims =
  match handle_for ?budget t circuit with
  | Error _ as e -> e
  | Ok (handle, n) ->
    let count = Array.length dims in
    let via_ring = ring_for_batch t ~count ~n ~instantiate:false in
    roundtrip ?budget ~via_ring t ~opcode:Wire.Query_batch
      ~build:(fun outbuf -> put_batch_request outbuf ~handle ~n dims)
      ~parse:(fun b ~len meta ->
        ( (if via_ring then parse_ring_ids t ~circuit ~epoch:meta.epoch b ~len count
           else parse_ids b ~len count),
          meta ))

let instantiate ?budget t ~circuit dims =
  match handle_for ?budget t circuit with
  | Error _ as e -> e
  | Ok (handle, n) ->
    let count = Array.length dims in
    let via_ring = ring_for_batch t ~count ~n ~instantiate:true in
    roundtrip ?budget ~via_ring t ~opcode:Wire.Instantiate_batch
      ~build:(fun outbuf -> put_batch_request outbuf ~handle ~n dims)
      ~parse:(fun b ~len meta ->
        (* instantiation answers are always inline rects; a ring reply
           only differs by its kind byte in front of the count *)
        let head =
          if via_ring then begin
            let kind = Wire.get_u8 b ~len rep_header in
            if kind <> 0 then
              raise
                (Wire.Truncated
                   (Printf.sprintf "descriptor reply (kind %d) to instantiate" kind));
            rep_header + 1
          end
          else rep_header
        in
        let got = Wire.get_u32 b ~len head in
        if got <> count then
          raise
            (Wire.Truncated (Printf.sprintf "%d results for %d queries" got count));
        let base = head + 4 in
        let item = 16 * n in
        (Array.init count (fun i ->
             Array.init n (fun j ->
                 let off = base + (i * item) + (j * 16) in
                 Rect.make
                   ~x:(Wire.get_i32 b ~len off)
                   ~y:(Wire.get_i32 b ~len (off + 4))
                   ~w:(Wire.get_i32 b ~len (off + 8))
                   ~h:(Wire.get_i32 b ~len (off + 12)))),
         meta))

let reload ?budget t ~circuit =
  roundtrip ?budget t ~opcode:Wire.Reload
    ~build:(fun outbuf ->
      Wire.put_string16 outbuf (prefix + req_header) circuit - (prefix + req_header))
    ~parse:(fun _ ~len:_ meta -> meta)

let server_stats ?budget t =
  roundtrip ?budget t ~opcode:Wire.Stats
    ~build:(fun _ -> 0)
    ~parse:(fun b ~len meta ->
      let text, _ = Wire.get_string16 b ~len rep_header in
      (text, meta))

(* ---- pipelining -------------------------------------------------- *)

let query_ids_pipelined ?budget ?(depth = 8) t ~circuit batches =
  let nb = Array.length batches in
  if depth < 1 then invalid_arg "Client.query_ids_pipelined: depth < 1";
  match handle_for ?budget t circuit with
  | Error e -> Array.make nb (Error e)
  | Ok (handle, n) ->
    let deadline = Option.map (fun b -> Unix.gettimeofday () +. b) budget in
    let cells = Array.init nb (fun _ -> ref None) in
    let resolved = ref 0 in
    let set c r =
      if !c = None then begin
        c := Some r;
        incr resolved
      end
    in
    let slot_for ~ring i =
      let c = cells.(i) in
      {
        s_parse =
          (fun b ~len meta ->
            let count = Array.length batches.(i) in
            set c
              (Ok
                 ( (if ring then
                      parse_ring_ids t ~circuit ~epoch:meta.epoch b ~len count
                    else parse_ids b ~len count),
                   meta )));
        s_refuse = (fun st msg -> set c (Error (Refused (st, msg))));
        s_fail = (fun e -> set c (Error e));
      }
    in
    let next = ref 0 in
    let rec drive () =
      if !resolved < nb then
        match t.fd with
        | None ->
          (* poisoned: in-flight cells were failed by the poison;
             never-sent ones inherit the disconnect *)
          for i = !next to nb - 1 do
            set cells.(i) (Error (Disconnected "connection poisoned"))
          done
        | Some fd ->
          if !next < nb && Hashtbl.length t.inflight < depth then begin
            let i = !next in
            incr next;
            let via_ring =
              ring_for_batch t ~count:(Array.length batches.(i)) ~n
                ~instantiate:false
            in
            issue t fd ~via_ring ~opcode:Wire.Query_batch ~deadline
              ~build:(fun outbuf -> put_batch_request outbuf ~handle ~n batches.(i))
              (slot_for ~ring:via_ring i);
            drive ()
          end
          else begin
            pump t fd ~deadline;
            drive ()
          end
    in
    drive ();
    Array.map
      (fun c ->
        match !c with
        | Some r -> r
        | None -> Error (Disconnected "connection poisoned"))
      cells

(* ---- hedging ----------------------------------------------------- *)

(* The hedge connection is socket-only by construction ([connect]
   without [~shm]): the race machinery selects on fds, and a hedge is
   for when the primary daemon is slow — often a different daemon
   entirely, where no shared memory exists. *)
let hedge_peer t addr =
  match t.hedge_peer with
  | Some p when p.addr = addr -> p
  | prev ->
    (match prev with
    | Some p -> poison_with p (Disconnected "hedge peer replaced")
    | None -> ());
    let p = connect ~transport:t.transport ~max_frame_bytes:t.max_frame_bytes addr in
    t.hedge_peer <- Some p;
    p

let hedged_query_ids ?budget ?hedge_after ?(peers = []) t ~circuit dims =
  match handle_for ?budget t circuit with
  | Error _ as e -> e
  | Ok (handle, n) -> (
    match ensure_connected t with
    | Error _ as e -> e
    | Ok fd ->
      let start = Unix.gettimeofday () in
      let deadline = Option.map (fun b -> start +. b) budget in
      let count = Array.length dims in
      let cell_a = ref None and cell_b = ref None in
      let slot_of cell =
        {
          s_parse =
            (fun b ~len meta -> cell := Some (Ok (parse_ids b ~len count, meta)));
          s_refuse = (fun st msg -> cell := Some (Error (Refused (st, msg))));
          s_fail = (fun e -> if !cell = None then cell := Some (Error e));
        }
      in
      issue t fd ~opcode:Wire.Query_batch ~deadline
        ~build:(fun outbuf -> put_batch_request outbuf ~handle ~n dims)
        (slot_of cell_a);
      let delay = match hedge_after with Some d -> d | None -> hedge_delay t in
      let hedge_at =
        let at = start +. delay in
        match deadline with Some d -> Float.min d at | None -> at
      in
      (* which daemon the hedge goes to: round-robin over [peers]
         across calls, or a second connection to our own daemon *)
      let peer_addr =
        match peers with
        | [] -> t.addr
        | _ -> List.nth peers (t.s_hedges mod List.length peers)
      in
      let hedged = ref false in
      let launch_hedge () =
        hedged := true;
        t.s_hedges <- t.s_hedges + 1;
        let p = hedge_peer t peer_addr in
        let remaining = Option.map (fun d -> d -. Unix.gettimeofday ()) deadline in
        match remaining with
        | Some r when r <= 0.0 -> cell_b := Some (Error Timed_out)
        | _ -> (
          match handle_for ?budget:remaining p circuit with
          | Error e -> cell_b := Some (Error e)
          | Ok (h2, n2) -> (
            match ensure_connected p with
            | Error e -> cell_b := Some (Error e)
            | Ok pfd ->
              issue p pfd ~opcode:Wire.Query_batch ~deadline
                ~build:(fun outbuf -> put_batch_request outbuf ~handle:h2 ~n:n2 dims)
                (slot_of cell_b)))
      in
      let is_ok c = match !c with Some (Ok _) -> true | _ -> false in
      let abandon c =
        (* the loser's reply (if any) will never be matched: drop its
           connection rather than desync the next call *)
        if Hashtbl.length c.inflight > 0 then
          poison_with c (Disconnected "lost the hedge race")
      in
      let rec race () =
        if is_ok cell_a then begin
          (match t.hedge_peer with Some p when !hedged -> abandon p | _ -> ());
          record_latency t (Unix.gettimeofday () -. start);
          Option.get !cell_a
        end
        else if is_ok cell_b then begin
          t.s_hedge_wins <- t.s_hedge_wins + 1;
          abandon t;
          Option.get !cell_b
        end
        else if !cell_a <> None && not !hedged then begin
          (* the primary failed before the hedge point: hedge now *)
          launch_hedge ();
          race ()
        end
        else if !cell_a <> None && !cell_b <> None then
          (* both failed: the primary's error is the canonical one *)
          Option.get !cell_a
        else begin
          let now = Unix.gettimeofday () in
          match deadline with
          | Some d when now > d ->
            if Hashtbl.length t.inflight > 0 then poison_with t Timed_out;
            (match t.hedge_peer with
            | Some p when Hashtbl.length p.inflight > 0 -> poison_with p Timed_out
            | _ -> ());
            (match (!cell_a, !cell_b) with
            | Some r, _ | _, Some r -> r
            | None, None -> Error Timed_out)
          | _ ->
            if (not !hedged) && now >= hedge_at then begin
              launch_hedge ();
              race ()
            end
            else begin
              let fds =
                (if !cell_a = None then
                   match t.fd with Some f -> [ (f, t) ] | None -> []
                 else [])
                @
                if !hedged && !cell_b = None then
                  match t.hedge_peer with
                  | Some p -> ( match p.fd with Some f -> [ (f, p) ] | None -> [])
                  | None -> []
                else []
              in
              match fds with
              | [] ->
                (* both connections are gone but a cell is unresolved —
                   cannot happen (poison fails registered slots), but
                   never spin on it *)
                Error (Disconnected "connection poisoned")
              | _ ->
                let until =
                  if !hedged then
                    match deadline with Some d -> d | None -> now +. 1.0
                  else hedge_at
                in
                let timeout = Float.max 0.0 (until -. now) in
                (match Unix.select (List.map fst fds) [] [] timeout with
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                | ready, _, _ ->
                  List.iter
                    (fun (f, c) ->
                      if List.mem f ready then pump_one c f ~deadline)
                    fds);
                race ()
            end
        end
      in
      race ())

(* ---- retry ------------------------------------------------------- *)

let with_retry ?(attempts = 6) ?(base_delay = 0.01) ?(max_delay = 1.0) ~rng t f =
  let rec go attempt =
    match f () with
    | Ok _ as ok ->
      (* a degraded answer is still an answer — never re-issued *)
      ok
    | Error e when attempt + 1 < attempts && retryable e && t.last_idempotent ->
      t.s_retries <- t.s_retries + 1;
      let cap = min max_delay (base_delay *. (2.0 ** float_of_int attempt)) in
      (* jitter into [cap/2, cap): synchronized clients desynchronize *)
      Thread.delay (cap *. Mps_rng.Rng.float_in rng 0.5 1.0);
      go (attempt + 1)
    | Error _ as e -> e
  in
  go 0

open Mps_geometry

type error =
  | Refused of Wire.status * string
  | Timed_out
  | Disconnected of string

let error_to_string = function
  | Refused (status, msg) ->
    Printf.sprintf "server refused: %s (%s)" (Wire.status_to_string status) msg
  | Timed_out -> "client-side deadline expired"
  | Disconnected msg -> Printf.sprintf "disconnected: %s" msg

let retryable = function
  | Timed_out | Disconnected _ -> true
  | Refused ((Wire.Err_overloaded | Wire.Err_timeout | Wire.Err_shutting_down), _) ->
    true
  | Refused _ -> false

type meta = { epoch : int; degraded : bool }

type t = {
  addr : Server.addr;
  transport : Transport.t;
  max_frame_bytes : int;
  mutable fd : Unix.file_descr option;
  mutable next_req_id : int;
  (* circuit name -> (handle, n_blocks); valid for the current
     connection only *)
  handles : (string, int * int) Hashtbl.t;
  inbuf : Bytes.t ref;
  outbuf : Bytes.t ref;
}

let connect ?(transport = Transport.default) ?(max_frame_bytes = Wire.max_frame_default)
    addr =
  (* A daemon that dies mid-request must surface as EPIPE (mapped to
     [Disconnected]), never kill the client process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  {
    addr;
    transport;
    max_frame_bytes;
    fd = None;
    next_req_id = 1;
    handles = Hashtbl.create 4;
    inbuf = ref (Bytes.create 4096);
    outbuf = ref (Bytes.create 4096);
  }

let poison t =
  (match t.fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  t.fd <- None;
  Hashtbl.reset t.handles

let close = poison

let sockaddr_of = function
  | Server.Unix_path path -> Unix.ADDR_UNIX path
  | Server.Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found | Invalid_argument _ ->
          raise (Unix.Unix_error (Unix.EINVAL, "gethostbyname", host)))
    in
    Unix.ADDR_INET (inet, port)

let ensure_connected t =
  match t.fd with
  | Some fd -> Ok fd
  | None -> (
    match
      let fd =
        Unix.socket ~cloexec:true
          (match t.addr with Server.Unix_path _ -> Unix.PF_UNIX | _ -> Unix.PF_INET)
          Unix.SOCK_STREAM 0
      in
      (try
         Unix.connect fd (sockaddr_of t.addr);
         try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ()
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
    with
    | fd ->
      t.fd <- Some fd;
      Ok fd
    | exception Unix.Unix_error (err, fn, _) ->
      Error (Disconnected (Printf.sprintf "connect: %s: %s" fn (Unix.error_message err)))
    )

let prefix = Wire.frame_prefix_bytes
let req_header = Wire.request_header_bytes
let rep_header = Wire.reply_header_bytes

(* One request/reply exchange.  [build] writes the request body at
   [prefix + req_header] into [t.outbuf] and returns the payload
   length; [parse] reads the reply body out of [t.inbuf].  Any
   transport failure or protocol desync poisons the connection. *)
let roundtrip ?budget t ~opcode ~build ~parse =
  match ensure_connected t with
  | Error _ as e -> e
  | Ok fd -> (
    let deadline = Option.map (fun b -> Unix.gettimeofday () +. b) budget in
    let deadline_us =
      match budget with
      | None -> 0
      | Some b -> max 1 (int_of_float (b *. 1e6)) land 0xffffffff
    in
    let req_id = t.next_req_id in
    t.next_req_id <- (if req_id >= 0xffffffff then 1 else req_id + 1);
    let recv_and_parse deadline =
      match
        Wire.recv_frame t.transport ?deadline ~max_bytes:t.max_frame_bytes
          ~buf:t.inbuf fd
      with
      | exception Wire.Timed_out ->
        poison t;
        Error Timed_out
      | exception Wire.Closed ->
        poison t;
        Error (Disconnected "connection closed by server")
      | exception Wire.Truncated msg ->
        poison t;
        Error (Disconnected msg)
      | exception Wire.Too_large n ->
        poison t;
        Error (Disconnected (Printf.sprintf "oversized reply frame (%d bytes)" n))
      | exception Unix.Unix_error (err, fn, _) ->
        poison t;
        Error (Disconnected (Printf.sprintf "%s: %s" fn (Unix.error_message err)))
      | len -> (
        let b = !(t.inbuf) in
        match
          let status_i = Wire.get_u8 b ~len 0 in
          let rep_id = Wire.get_u32 b ~len 1 in
          let epoch = Wire.get_u32 b ~len 5 in
          (Wire.status_of_int status_i, rep_id, epoch)
        with
        | exception Wire.Truncated msg ->
          poison t;
          Error (Disconnected ("short reply header: " ^ msg))
        | None, _, _ ->
          poison t;
          Error (Disconnected "unknown reply status")
        | Some status, rep_id, epoch ->
          (* a shed / shutting-down farewell is stamped request id 0 —
             it answers whatever we were waiting for *)
          if rep_id <> req_id && rep_id <> 0 then begin
            poison t;
            Error
              (Disconnected
                 (Printf.sprintf "reply for request %d while waiting on %d" rep_id
                    req_id))
          end
          else
            match status with
            | Wire.Ok | Wire.Ok_degraded -> (
              let meta = { epoch; degraded = status = Wire.Ok_degraded } in
              match parse b ~len meta with
              | v -> Ok v
              | exception Wire.Truncated msg ->
                poison t;
                Error (Disconnected ("malformed reply body: " ^ msg)))
            | err_status ->
              let msg =
                match Wire.get_string16 b ~len rep_header with
                | s, _ -> s
                | exception Wire.Truncated _ -> ""
              in
              Error (Refused (err_status, msg)))
    in
    match
      let payload_len = req_header + build t.outbuf in
      let b = !(t.outbuf) in
      Wire.set_u8 b prefix (Wire.opcode_to_int opcode);
      Wire.set_u32 b (prefix + 1) req_id;
      Wire.set_u32 b (prefix + 5) deadline_us;
      Wire.send_frame t.transport fd b ~payload_len
    with
    | () -> recv_and_parse deadline
    | exception Unix.Unix_error (((Unix.EPIPE | Unix.ECONNRESET) as err), fn, _) ->
      (* The daemon writes its shed / shutting-down farewell before it
         closes, and those bytes survive in the socket buffer even
         when our own send broke mid-way.  Salvage the farewell so the
         caller learns the real reason; only a refusal is trustworthy
         here — anything else reports the send failure. *)
      let salvage = Unix.gettimeofday () +. 0.2 in
      let salvage = match deadline with Some d -> Float.min d salvage | None -> salvage in
      let result = recv_and_parse (Some salvage) in
      poison t;
      (match result with
      | Error (Refused _) as refused -> refused
      | _ -> Error (Disconnected (Printf.sprintf "%s: %s" fn (Unix.error_message err))))
    | exception Unix.Unix_error (err, fn, _) ->
      poison t;
      Error (Disconnected (Printf.sprintf "%s: %s" fn (Unix.error_message err))))

let ping ?budget t =
  roundtrip ?budget t ~opcode:Wire.Ping
    ~build:(fun _ -> 0)
    ~parse:(fun _ ~len:_ meta -> meta)

(* Open (or look up) this connection's handle for a circuit. *)
let handle_for ?budget t circuit =
  match Hashtbl.find_opt t.handles circuit with
  | Some hb -> Ok hb
  | None -> (
    match
      roundtrip ?budget t ~opcode:Wire.Open_circuit
        ~build:(fun outbuf ->
          Wire.put_string16 outbuf (prefix + req_header) circuit - (prefix + req_header))
        ~parse:(fun b ~len _meta ->
          let handle = Wire.get_u16 b ~len rep_header in
          let n_blocks = Wire.get_u16 b ~len (rep_header + 3) in
          (handle, n_blocks))
    with
    | Ok hb ->
      Hashtbl.replace t.handles circuit hb;
      Ok hb
    | Error _ as e -> e)

(* Dims are u16 on the wire; anything outside that range cannot be a
   designer dimension and is the caller's bug, not a transport
   problem. *)
let put_dim b off v =
  if v < 1 || v > 0xffff then
    invalid_arg (Printf.sprintf "Client: dimension %d outside the u16 wire range" v);
  Bytes.set_uint16_le b off v

let put_batch_request outbuf ~handle ~n dims =
  let count = Array.length dims in
  let body = 6 + (count * 4 * n) in
  Wire.ensure outbuf (prefix + req_header + body);
  let b = !outbuf in
  let base = prefix + req_header in
  Wire.set_u16 b base handle;
  Wire.set_u32 b (base + 2) count;
  Array.iteri
    (fun i d ->
      let off = base + 6 + (i * 4 * n) in
      for j = 0 to n - 1 do
        put_dim b (off + (j * 4)) (Dims.width d j);
        put_dim b (off + (j * 4) + 2) (Dims.height d j)
      done)
    dims;
  body

let check_count b ~len expected =
  let count = Wire.get_u32 b ~len rep_header in
  if count <> expected then
    raise
      (Wire.Truncated (Printf.sprintf "%d results for %d queries" count expected));
  ()

let query_ids ?budget t ~circuit dims =
  match handle_for ?budget t circuit with
  | Error _ as e -> e
  | Ok (handle, n) ->
    roundtrip ?budget t ~opcode:Wire.Query_batch
      ~build:(fun outbuf -> put_batch_request outbuf ~handle ~n dims)
      ~parse:(fun b ~len meta ->
        check_count b ~len (Array.length dims);
        let base = rep_header + 4 in
        (Array.init (Array.length dims) (fun i -> Wire.get_i32 b ~len (base + (i * 4))),
         meta))

let instantiate ?budget t ~circuit dims =
  match handle_for ?budget t circuit with
  | Error _ as e -> e
  | Ok (handle, n) ->
    roundtrip ?budget t ~opcode:Wire.Instantiate_batch
      ~build:(fun outbuf -> put_batch_request outbuf ~handle ~n dims)
      ~parse:(fun b ~len meta ->
        check_count b ~len (Array.length dims);
        let base = rep_header + 4 in
        let item = 16 * n in
        (Array.init (Array.length dims) (fun i ->
             Array.init n (fun j ->
                 let off = base + (i * item) + (j * 16) in
                 Rect.make
                   ~x:(Wire.get_i32 b ~len off)
                   ~y:(Wire.get_i32 b ~len (off + 4))
                   ~w:(Wire.get_i32 b ~len (off + 8))
                   ~h:(Wire.get_i32 b ~len (off + 12)))),
         meta))

let reload ?budget t ~circuit =
  roundtrip ?budget t ~opcode:Wire.Reload
    ~build:(fun outbuf ->
      Wire.put_string16 outbuf (prefix + req_header) circuit - (prefix + req_header))
    ~parse:(fun _ ~len:_ meta -> meta)

let server_stats ?budget t =
  roundtrip ?budget t ~opcode:Wire.Stats
    ~build:(fun _ -> 0)
    ~parse:(fun b ~len meta ->
      let text, _ = Wire.get_string16 b ~len rep_header in
      (text, meta))

let with_retry ?(attempts = 6) ?(base_delay = 0.01) ?(max_delay = 1.0) ~rng f =
  let rec go attempt =
    match f () with
    | Ok _ as ok -> ok
    | Error e when attempt + 1 < attempts && retryable e ->
      let cap = min max_delay (base_delay *. (2.0 ** float_of_int attempt)) in
      (* jitter into [cap/2, cap): synchronized clients desynchronize *)
      Thread.delay (cap *. Mps_rng.Rng.float_in rng 0.5 1.0);
      go (attempt + 1)
    | Error _ as e -> e
  in
  go 0

(** The mpsd supervision tree: N crash-isolated worker domains behind
    the accept loop.

    The accept loop (owned by {!Server}) hands each accepted socket to
    {!dispatch}, which places it on the least-loaded up worker's
    {e bounded} queue — a full set of queues is backpressure, answered
    with [Err_overloaded] at the door instead of unbounded buffering.
    Each worker is an OCaml domain that pops sockets off its queue and
    serves every connection on a domain-local thread, so request
    handling runs in true parallel across workers while one worker's
    threads interleave cheaply.

    {b Crash isolation.}  A worker crash — an injected
    {!Worker_killed}, or any escape from the dispatch loop — kills the
    worker's {e generation}, never the daemon: in-flight requests on
    that worker are answered with a typed [Err_worker_lost] (safe to
    retry), its connections are severed, and the slot is respawned
    under an exponential-backoff restart policy.  A restart storm
    (more than [breaker_max_restarts] crashes inside
    [breaker_window] seconds) trips a circuit breaker that parks every
    slot but 0 — degraded single-worker mode — rather than burning the
    host on a crash loop.

    {b Health.}  {!health} snapshots readiness (not draining, at least
    one worker up), per-worker state, restart counts, queue depths and
    spawn epochs; it is served on the wire as the [Health] frame.

    The connection/request handling itself (deadlines, admission,
    batch queries, store access) lives here too — the supervisor {e is}
    the serving layer; {!Server} is the listener in front of it. *)

exception Worker_killed
(** Raised inside a worker to simulate (or propagate) its death; the
    fault hook raises it to drive the chaos scenarios. *)

type config = {
  workers : int;  (** Worker domains ([>= 1]). *)
  queue_capacity : int;  (** Pending connections per worker queue. *)
  max_connections : int;  (** Accepted connections beyond this are shed. *)
  max_inflight : int;  (** Concurrently served requests beyond this are shed. *)
  max_batch : int;  (** Queries per batch request. *)
  max_frame_bytes : int;  (** Hard cap on any frame payload. *)
  idle_timeout : float;
      (** Seconds a connection may sit silent (or dribble a partial
          frame) before it is dropped. *)
  drain_timeout : float;  (** Seconds a graceful stop waits before forcing. *)
  accept_retry_delay : float;  (** Back-off after a failed [accept]. *)
  restart_base_delay : float;  (** First respawn delay after a crash. *)
  restart_max_delay : float;  (** Backoff cap. *)
  breaker_window : float;  (** Sliding window for the restart storm count. *)
  breaker_max_restarts : int;
      (** Crashes inside the window beyond this trip the breaker. *)
  shm : bool;
      (** Accept {!Wire.Shm_hello} negotiations (DESIGN.md §13).  Off,
          every hello is declined and clients stay on the socket. *)
  shm_dir : string option;
      (** Where per-session ring files live; [None] derives
          [<store dir>/.shm].  Created on demand and swept of stale
          ring files at startup; if that fails, shm is disabled. *)
  shm_ring_words : int;  (** Data words per ring direction (default 64Ki). *)
  shm_heartbeat_timeout : float;
      (** Seconds a session peer's heartbeat may go stale before the
          session is reaped (the kill -9 detector). *)
}

val default_config : config
(** 1 worker, 16-deep queues, 64 connections, 32 in-flight,
    65536-query batches, 32 MiB frames, 30 s idle, 10 s drain, 50 ms
    accept back-off; restarts 50 ms doubling to 2 s, breaker at 5
    crashes / 10 s; shm on, 64Ki-word rings, 3 s heartbeat timeout. *)

(** Monotonic counters, readable at any time. *)
type stats = {
  accepted : int;
  shed_connections : int;
  requests_served : int;  (** Replies with status [Ok] / [Ok_degraded]. *)
  queries_served : int;  (** Individual queries inside served batches. *)
  degraded_served : int;  (** Requests answered [Ok_degraded]. *)
  timeouts : int;
  overloaded : int;
  bad_requests : int;
  store_errors : int;
  connection_crashes : int;
  accept_failures : int;
  dispatched : int;  (** Connections placed on a worker queue. *)
  worker_crashes : int;  (** Generations killed. *)
  worker_restarts : int;  (** Slots respawned. *)
  worker_lost_replies : int;  (** Requests answered [Err_worker_lost]. *)
  breaker_trips : int;
  shm_sessions : int;  (** Ring sessions negotiated. *)
  shm_served : int;  (** Requests that arrived over a ring. *)
  shm_reaped : int;  (** Sessions torn down (any cause). *)
}

(** The raw counters, for the accept loop to bump. *)
type counters = {
  c_accepted : int Atomic.t;
  c_shed_connections : int Atomic.t;
  c_requests_served : int Atomic.t;
  c_queries_served : int Atomic.t;
  c_degraded_served : int Atomic.t;
  c_timeouts : int Atomic.t;
  c_overloaded : int Atomic.t;
  c_bad_requests : int Atomic.t;
  c_store_errors : int Atomic.t;
  c_connection_crashes : int Atomic.t;
  c_accept_failures : int Atomic.t;
  c_dispatched : int Atomic.t;
  c_worker_crashes : int Atomic.t;
  c_worker_restarts : int Atomic.t;
  c_worker_lost_replies : int Atomic.t;
  c_breaker_trips : int Atomic.t;
  c_shm_sessions : int Atomic.t;
  c_shm_served : int Atomic.t;
  c_shm_reaped : int Atomic.t;
}

type t

val create :
  ?fault:(worker:int -> unit) ->
  ?shm_hooks:Shm.hooks ->
  config:config ->
  transport:Transport.t ->
  store:Store.t ->
  stopping:bool Atomic.t ->
  unit ->
  t
(** Spawn the worker domains and the supervision thread immediately.
    [stopping] is shared with the accept loop: setting it (plus
    {!notify_stop}) begins the drain everywhere at once.  [fault] is
    called before each request with the serving worker's slot — the
    chaos suite's hook; raising {!Worker_killed} from it crashes that
    worker after the in-flight request is answered [Err_worker_lost].
    [shm_hooks] injects ring-level faults into every session this
    daemon creates ({!Mps_fault.Fault.shm_hooks_of_plan} builds one
    from a plan).
    @raise Invalid_argument on [workers < 1] or [queue_capacity < 1]. *)

val stats : t -> stats
val counters : t -> counters

(** Outcome of routing one accepted connection. *)
type verdict =
  | Dispatched  (** Queued on an up worker. *)
  | Backpressure  (** Every up worker's queue is full — shed at the door. *)
  | No_worker  (** No worker is up (all restarting/disabled). *)

val dispatch : t -> Unix.file_descr -> verdict
(** Route to the least-loaded (queue + live connections) up worker
    with queue space, round-robin on ties.  On anything but
    [Dispatched] the caller still owns the fd. *)

val conn_count : t -> int
(** Connections queued or live across all workers. *)

val health : t -> Wire.health
(** Snapshot for the [Health] frame and the CLI probe. *)

val kill_worker : t -> int -> bool
(** Simulate a hard crash of the given worker slot (chaos surface):
    its generation dies exactly as if a handler had raised
    {!Worker_killed}.  Returns [false] when the slot is out of range
    or not currently up. *)

val farewell : t -> Unix.file_descr -> Wire.status -> string -> unit
(** Best-effort one-frame reply (request id 0) and close — for
    connections shed before reaching a worker. *)

val notify_stop : t -> unit
(** Wake every worker blocked on its queue so they observe [stopping]. *)

val begin_drain : t -> unit
(** Farewell queued-but-unserved connections and sever the receive
    side of live ones: in-flight requests finish, nothing new starts. *)

val sever_all : t -> unit
(** Hard-sever every live connection (abort / blown drain deadline). *)

val join : t -> unit
(** Final teardown once [stopping] is set and the drain budget is
    spent: close still-queued sockets, join the supervision thread and
    every worker domain.  Idempotent. *)

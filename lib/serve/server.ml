open Mps_geometry
open Mps_netlist
open Mps_core

type addr =
  | Unix_path of string
  | Tcp of string * int

type config = {
  max_connections : int;
  max_inflight : int;
  max_batch : int;
  max_frame_bytes : int;
  idle_timeout : float;
  drain_timeout : float;
  accept_retry_delay : float;
}

let default_config =
  {
    max_connections = 64;
    max_inflight = 32;
    max_batch = 65536;
    max_frame_bytes = Wire.max_frame_default;
    idle_timeout = 30.0;
    drain_timeout = 10.0;
    accept_retry_delay = 0.05;
  }

type stats = {
  accepted : int;
  shed_connections : int;
  requests_served : int;
  queries_served : int;
  degraded_served : int;
  timeouts : int;
  overloaded : int;
  bad_requests : int;
  store_errors : int;
  connection_crashes : int;
  accept_failures : int;
}

type counters = {
  c_accepted : int Atomic.t;
  c_shed_connections : int Atomic.t;
  c_requests_served : int Atomic.t;
  c_queries_served : int Atomic.t;
  c_degraded_served : int Atomic.t;
  c_timeouts : int Atomic.t;
  c_overloaded : int Atomic.t;
  c_bad_requests : int Atomic.t;
  c_store_errors : int Atomic.t;
  c_connection_crashes : int Atomic.t;
  c_accept_failures : int Atomic.t;
}

type conn = { conn_id : int; fd : Unix.file_descr }

type t = {
  config : config;
  transport : Transport.t;
  the_store : Store.t;
  listen_fd : Unix.file_descr;
  addr : addr;
  stopping : bool Atomic.t;
  aborted : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  conns : (int, conn) Hashtbl.t;
  conns_mutex : Mutex.t;
  next_conn_id : int Atomic.t;
  inflight : int Atomic.t;
  c : counters;
}

let bump a = Atomic.incr a
let add a n = ignore (Atomic.fetch_and_add a n)

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found | Invalid_argument _ ->
      raise (Unix.Unix_error (Unix.EINVAL, "gethostbyname", host)))

let create ?(config = default_config) ?(transport = Transport.default) ~store addr =
  (* A peer that vanishes mid-reply must surface as EPIPE on the
     write, never kill the process — the daemon cannot operate under
     the default SIGPIPE disposition, so creating one claims it. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd, addr =
    match addr with
    | Unix_path path ->
      (* a stale socket file from a previous run would make bind fail *)
      (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.bind fd (Unix.ADDR_UNIX path)
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      (fd, Unix_path path)
    | Tcp (host, port) ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (resolve_host host, port))
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      let port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      (fd, Tcp (host, port))
  in
  Unix.listen listen_fd (max 64 config.max_connections);
  (* Non-blocking listener: a connection that vanishes between select
     and accept must not block the whole accept loop. *)
  Unix.set_nonblock listen_fd;
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  {
    config;
    transport;
    the_store = store;
    listen_fd;
    addr;
    stopping = Atomic.make false;
    aborted = Atomic.make false;
    wake_r;
    wake_w;
    conns = Hashtbl.create 32;
    conns_mutex = Mutex.create ();
    next_conn_id = Atomic.make 1;
    inflight = Atomic.make 0;
    c =
      {
        c_accepted = Atomic.make 0;
        c_shed_connections = Atomic.make 0;
        c_requests_served = Atomic.make 0;
        c_queries_served = Atomic.make 0;
        c_degraded_served = Atomic.make 0;
        c_timeouts = Atomic.make 0;
        c_overloaded = Atomic.make 0;
        c_bad_requests = Atomic.make 0;
        c_store_errors = Atomic.make 0;
        c_connection_crashes = Atomic.make 0;
        c_accept_failures = Atomic.make 0;
      };
  }

let bound_addr t = t.addr
let store t = t.the_store

let stats t =
  {
    accepted = Atomic.get t.c.c_accepted;
    shed_connections = Atomic.get t.c.c_shed_connections;
    requests_served = Atomic.get t.c.c_requests_served;
    queries_served = Atomic.get t.c.c_queries_served;
    degraded_served = Atomic.get t.c.c_degraded_served;
    timeouts = Atomic.get t.c.c_timeouts;
    overloaded = Atomic.get t.c.c_overloaded;
    bad_requests = Atomic.get t.c.c_bad_requests;
    store_errors = Atomic.get t.c.c_store_errors;
    connection_crashes = Atomic.get t.c.c_connection_crashes;
    accept_failures = Atomic.get t.c.c_accept_failures;
  }

let wake t = try ignore (Unix.write t.wake_w (Bytes.make 1 'w') 0 1) with Unix.Unix_error _ -> ()

let stop t =
  if not (Atomic.exchange t.stopping true) then wake t

let shutdown_conn ?(how = Unix.SHUTDOWN_ALL) conn =
  try Unix.shutdown conn.fd how with Unix.Unix_error _ -> ()

let abort t =
  Atomic.set t.aborted true;
  Atomic.set t.stopping true;
  (* Hard-sever every connection from here; the handler threads wake
     with EOF/EPIPE and close their own fds. *)
  Mutex.lock t.conns_mutex;
  Hashtbl.iter (fun _ conn -> shutdown_conn conn) t.conns;
  Mutex.unlock t.conns_mutex;
  wake t

let install_sigterm t =
  (* Keep the handler minimal (atomic flag + pipe write): the full
     drain happens on the accept thread, never in signal context. *)
  let handle = Sys.Signal_handle (fun _ -> stop t) in
  Sys.set_signal Sys.sigterm handle;
  Sys.set_signal Sys.sigint handle

(* ---- replies ---------------------------------------------------- *)

let prefix = Wire.frame_prefix_bytes
let header = Wire.reply_header_bytes

(* Fill the reply header at the front of [outbuf] and send the frame. *)
let send_reply t fd outbuf ~status ~req_id ~epoch ~payload_len =
  Wire.ensure outbuf (prefix + payload_len);
  let b = !outbuf in
  Wire.set_u8 b prefix (Wire.status_to_int status);
  Wire.set_u32 b (prefix + 1) req_id;
  Wire.set_u32 b (prefix + 5) epoch;
  Wire.send_frame t.transport fd b ~payload_len

let send_error t fd outbuf ~status ~req_id msg =
  let payload_len = Wire.put_string16 outbuf (prefix + header) msg - prefix in
  (match status with
  | Wire.Err_timeout -> bump t.c.c_timeouts
  | Wire.Err_overloaded -> bump t.c.c_overloaded
  | Wire.Err_bad_request -> bump t.c.c_bad_requests
  | Wire.Err_unknown_circuit | Wire.Err_store -> bump t.c.c_store_errors
  | _ -> ());
  send_reply t fd outbuf ~status ~req_id ~epoch:0 ~payload_len

(* Farewell on a shed or draining connection: best effort, then close. *)
let farewell_and_close t fd status msg =
  let outbuf = ref (Bytes.create 64) in
  (try
     let payload_len = Wire.put_string16 outbuf (prefix + header) msg - prefix in
     let b = !outbuf in
     Wire.set_u8 b prefix (Wire.status_to_int status);
     Wire.set_u32 b (prefix + 1) 0;
     Wire.set_u32 b (prefix + 5) 0;
     Wire.send_frame t.transport fd b ~payload_len
   with Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ---- request handling ------------------------------------------- *)

exception Deadline_hit

(* Per-connection state: one engine session (engine-agnostic, rebinds
   across store entries), the open-circuit handle table, reusable
   frame buffers and dimension scratch. *)
type conn_state = {
  session : Structure.Engine.session;
  handles : (int, string) Hashtbl.t;
  mutable next_handle : int;
  inbuf : Bytes.t ref;
  outbuf : Bytes.t ref;
  mutable w_scratch : int array;
  mutable h_scratch : int array;
}

let scratch_for state n =
  if Array.length state.w_scratch <> n then begin
    state.w_scratch <- Array.make n 1;
    state.h_scratch <- Array.make n 1
  end;
  (state.w_scratch, state.h_scratch)

let store_error_reply t fd outbuf ~req_id err =
  let status =
    match err with
    | Store.Unknown_circuit _ -> Wire.Err_unknown_circuit
    | Store.Unreadable _ | Store.Corrupt _ -> Wire.Err_store
  in
  send_error t fd outbuf ~status ~req_id (Store.error_to_string err)

let served t ~degraded ~queries =
  bump t.c.c_requests_served;
  add t.c.c_queries_served queries;
  if degraded then bump t.c.c_degraded_served

(* Decode the dims of query [i] straight out of the validated payload
   (bounds were checked once for the whole batch; dims are u16 on the
   wire).  The scratch arrays are aliased into the [Dims.t] without a
   copy — the engine reads dims only for the duration of the call, so
   the next query may safely overwrite them.  The zero-dim check is
   folded into the decode loop: [v - 1] is negative exactly when a u16
   is zero, and a bad request surfaces as [Invalid_argument]. *)
let dims_at buf ~base ~n i (w, h) =
  let off = base + (i * 4 * n) in
  let acc = ref 0 in
  for j = 0 to n - 1 do
    let wv = Bytes.get_uint16_le buf (off + (j * 4)) in
    let hv = Bytes.get_uint16_le buf (off + (j * 4) + 2) in
    w.(j) <- wv;
    h.(j) <- hv;
    acc := !acc lor (wv - 1) lor (hv - 1)
  done;
  if !acc < 0 then invalid_arg "zero dimension on the wire";
  Dims.unsafe_of_arrays ~w ~h

let check_deadline deadline =
  match deadline with
  | Some d when Unix.gettimeofday () > d -> raise Deadline_hit
  | _ -> ()

let handle_batch t fd state ~req_id ~deadline ~len ~instantiate =
  let buf = !(state.inbuf) in
  let handle = Wire.get_u16 buf ~len 9 in
  let count = Wire.get_u32 buf ~len 11 in
  match Hashtbl.find_opt state.handles handle with
  | None ->
    send_error t fd state.outbuf ~status:Wire.Err_bad_request ~req_id
      (Printf.sprintf "unknown handle %d (open the circuit first)" handle)
  | Some name -> (
    match Store.get t.the_store name with
    | Error err -> store_error_reply t fd state.outbuf ~req_id err
    | Ok entry ->
      let n = Circuit.n_blocks entry.Store.circuit in
      let expected = 15 + (count * 4 * n) in
      if count > t.config.max_batch then
        send_error t fd state.outbuf ~status:Wire.Err_bad_request ~req_id
          (Printf.sprintf "batch of %d exceeds the %d-query cap" count
             t.config.max_batch)
      else if len <> expected then
        send_error t fd state.outbuf ~status:Wire.Err_bad_request ~req_id
          (Printf.sprintf "payload is %d bytes, %d expected for %d %d-block queries"
             len expected count n)
      else begin
        let scratch = scratch_for state n in
        let item = if instantiate then 16 * n else 4 in
        let body = header + 4 + (count * item) in
        Wire.ensure state.outbuf (prefix + body);
        let out = !(state.outbuf) in
        Wire.set_u32 out (prefix + header) count;
        let base = 15 in
        let out_base = prefix + header + 4 in
        let backup = Structure.backup entry.Store.structure in
        match
          for i = 0 to count - 1 do
            if i land 255 = 0 then check_deadline deadline;
            let dims = dims_at buf ~base ~n i scratch in
            if instantiate then begin
              let rects =
                if entry.Store.backup_only then Stored.instantiate_repacked backup dims
                else
                  Structure.Engine.instantiate_into entry.Store.engine state.session
                    dims
              in
              let off = out_base + (i * item) in
              for j = 0 to n - 1 do
                let r = rects.(j) in
                Wire.set_i32 out (off + (j * 16)) r.Rect.x;
                Wire.set_i32 out (off + (j * 16) + 4) r.Rect.y;
                Wire.set_i32 out (off + (j * 16) + 8) r.Rect.w;
                Wire.set_i32 out (off + (j * 16) + 12) r.Rect.h
              done
            end
            else begin
              let id =
                if entry.Store.backup_only then
                  if Circuit.dims_valid entry.Store.circuit dims then -1 else -2
                else Structure.Engine.query_id entry.Store.engine state.session dims
              in
              Wire.set_i32 out (out_base + (i * 4)) id
            end
          done
        with
        | () ->
          let degraded = entry.Store.degraded in
          served t ~degraded ~queries:count;
          send_reply t fd state.outbuf
            ~status:(if degraded then Wire.Ok_degraded else Wire.Ok)
            ~req_id ~epoch:entry.Store.epoch ~payload_len:body
        | exception Deadline_hit ->
          send_error t fd state.outbuf ~status:Wire.Err_timeout ~req_id
            "deadline expired mid-batch"
        | exception Invalid_argument m ->
          send_error t fd state.outbuf ~status:Wire.Err_bad_request ~req_id
            (Printf.sprintf "bad dimension vector: %s" m)
      end)

let handle_open t fd state ~req_id ~len =
  let buf = !(state.inbuf) in
  let name, _ = Wire.get_string16 buf ~len 9 in
  match Store.get t.the_store name with
  | Error err -> store_error_reply t fd state.outbuf ~req_id err
  | Ok entry ->
    if state.next_handle > 0xffff then
      send_error t fd state.outbuf ~status:Wire.Err_bad_request ~req_id
        "handle space exhausted on this connection"
    else begin
      let handle = state.next_handle in
      state.next_handle <- handle + 1;
      Hashtbl.replace state.handles handle name;
      let body = header + 9 in
      Wire.ensure state.outbuf (prefix + body);
      let out = !(state.outbuf) in
      Wire.set_u16 out (prefix + header) handle;
      Wire.set_u8 out (prefix + header + 2) (if entry.Store.degraded then 1 else 0);
      Wire.set_u16 out (prefix + header + 3) (Circuit.n_blocks entry.Store.circuit);
      Wire.set_u32 out (prefix + header + 5)
        (Structure.n_placements entry.Store.structure);
      served t ~degraded:entry.Store.degraded ~queries:0;
      send_reply t fd state.outbuf
        ~status:(if entry.Store.degraded then Wire.Ok_degraded else Wire.Ok)
        ~req_id ~epoch:entry.Store.epoch ~payload_len:body
    end

let handle_reload t fd state ~req_id ~len =
  let buf = !(state.inbuf) in
  let name, _ = Wire.get_string16 buf ~len 9 in
  match Store.reload t.the_store name with
  | Error err -> store_error_reply t fd state.outbuf ~req_id err
  | Ok entry ->
    let body = header + 1 in
    Wire.ensure state.outbuf (prefix + body);
    Wire.set_u8 !(state.outbuf) (prefix + header)
      (if entry.Store.degraded then 1 else 0);
    served t ~degraded:entry.Store.degraded ~queries:0;
    send_reply t fd state.outbuf
      ~status:(if entry.Store.degraded then Wire.Ok_degraded else Wire.Ok)
      ~req_id ~epoch:entry.Store.epoch ~payload_len:body

let stats_text t =
  let s = stats t in
  Store.describe t.the_store
  ^ Printf.sprintf
      "accepted %d, shed %d, served %d requests / %d queries (%d degraded), timeouts \
       %d, overloaded %d, bad %d, store errors %d, conn crashes %d, accept failures %d\n"
      s.accepted s.shed_connections s.requests_served s.queries_served s.degraded_served
      s.timeouts s.overloaded s.bad_requests s.store_errors s.connection_crashes
      s.accept_failures

let handle_request t conn state ~len =
  let fd = conn.fd in
  let buf = !(state.inbuf) in
  let now = Unix.gettimeofday () in
  match
    let opcode_i = Wire.get_u8 buf ~len 0 in
    let req_id = Wire.get_u32 buf ~len 1 in
    let deadline_us = Wire.get_u32 buf ~len 5 in
    (opcode_i, req_id, deadline_us)
  with
  | exception Wire.Truncated _ ->
    bump t.c.c_bad_requests;
    send_reply t fd state.outbuf ~status:Wire.Err_bad_request ~req_id:0 ~epoch:0
      ~payload_len:
        (Wire.put_string16 state.outbuf (prefix + header) "short request header"
        - prefix)
  | opcode_i, req_id, deadline_us -> (
    let deadline =
      if deadline_us = 0 then None else Some (now +. (float_of_int deadline_us *. 1e-6))
    in
    let inflight = 1 + Atomic.fetch_and_add t.inflight 1 in
    Fun.protect
      ~finally:(fun () -> Atomic.decr t.inflight)
      (fun () ->
        if Atomic.get t.stopping then
          send_error t fd state.outbuf ~status:Wire.Err_shutting_down ~req_id
            "daemon is draining"
        else if inflight > t.config.max_inflight then
          send_error t fd state.outbuf ~status:Wire.Err_overloaded ~req_id
            (Printf.sprintf "%d requests in flight (limit %d)" inflight
               t.config.max_inflight)
        else
          match Wire.opcode_of_int opcode_i with
          | None ->
            send_error t fd state.outbuf ~status:Wire.Err_bad_request ~req_id
              (Printf.sprintf "unknown opcode %d" opcode_i)
          | Some _ when deadline <> None && Unix.gettimeofday () > Option.get deadline
            ->
            (* expired before any work (queueing, a store load ahead of
               us): a typed timeout, not a late answer *)
            send_error t fd state.outbuf ~status:Wire.Err_timeout ~req_id
              "deadline expired before serving"
          | Some Wire.Ping ->
            served t ~degraded:false ~queries:0;
            send_reply t fd state.outbuf ~status:Wire.Ok ~req_id ~epoch:0
              ~payload_len:header
          | Some Wire.Open_circuit -> (
            match handle_open t fd state ~req_id ~len with
            | () -> ()
            | exception Wire.Truncated m ->
              send_error t fd state.outbuf ~status:Wire.Err_bad_request ~req_id m)
          | Some Wire.Reload -> (
            match handle_reload t fd state ~req_id ~len with
            | () -> ()
            | exception Wire.Truncated m ->
              send_error t fd state.outbuf ~status:Wire.Err_bad_request ~req_id m)
          | Some Wire.Stats ->
            let text = stats_text t in
            let payload_len =
              Wire.put_string16 state.outbuf (prefix + header) text - prefix
            in
            served t ~degraded:false ~queries:0;
            send_reply t fd state.outbuf ~status:Wire.Ok ~req_id ~epoch:0 ~payload_len
          | Some ((Wire.Query_batch | Wire.Instantiate_batch) as op) -> (
            let instantiate = op = Wire.Instantiate_batch in
            match handle_batch t fd state ~req_id ~deadline ~len ~instantiate with
            | () -> ()
            | exception Wire.Truncated m ->
              send_error t fd state.outbuf ~status:Wire.Err_bad_request ~req_id m)))

(* ---- connection lifecycle --------------------------------------- *)

let unregister t conn =
  Mutex.lock t.conns_mutex;
  Hashtbl.remove t.conns conn.conn_id;
  Mutex.unlock t.conns_mutex

let serve_conn t conn =
  let state =
    {
      session = Structure.Engine.new_session ();
      handles = Hashtbl.create 4;
      next_handle = 1;
      inbuf = ref (Bytes.create 4096);
      outbuf = ref (Bytes.create 4096);
      w_scratch = [||];
      h_scratch = [||];
    }
  in
  (try
     let continue = ref true in
     while !continue do
       let idle_deadline = Unix.gettimeofday () +. t.config.idle_timeout in
       match
         Wire.recv_frame t.transport ~deadline:idle_deadline
           ~max_bytes:t.config.max_frame_bytes ~buf:state.inbuf conn.fd
       with
       | exception Wire.Closed -> continue := false
       | exception Wire.Timed_out ->
         (* idle or dribbling a frame for idle_timeout: drop it *)
         continue := false
       | len -> handle_request t conn state ~len
     done
   with
  | Wire.Truncated _ | Wire.Too_large _ | Unix.Unix_error _ | Sys_error _ ->
    (* torn frame, abusive length or transport failure: this
       connection is done, the daemon is not *)
    bump t.c.c_connection_crashes
  | _ ->
    (* anything else (engine invariant, decode bug): same isolation *)
    bump t.c.c_connection_crashes);
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  unregister t conn

let register_and_spawn t fd =
  let conn = { conn_id = Atomic.fetch_and_add t.next_conn_id 1; fd } in
  Mutex.lock t.conns_mutex;
  Hashtbl.replace t.conns conn.conn_id conn;
  Mutex.unlock t.conns_mutex;
  ignore (Thread.create (fun () -> serve_conn t conn) ())

let conn_count t =
  Mutex.lock t.conns_mutex;
  let n = Hashtbl.length t.conns in
  Mutex.unlock t.conns_mutex;
  n

let do_accept t =
  match t.transport.Transport.accept t.listen_fd with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
    () (* the pending connection vanished between select and accept *)
  | exception Unix.Unix_error _ ->
    (* EMFILE, injected fault, ...: count, back off, keep accepting *)
    bump t.c.c_accept_failures;
    Thread.delay t.config.accept_retry_delay
  | fd, _ ->
    bump t.c.c_accepted;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    if Atomic.get t.stopping then begin
      bump t.c.c_shed_connections;
      farewell_and_close t fd Wire.Err_shutting_down "daemon is draining"
    end
    else if conn_count t >= t.config.max_connections then begin
      bump t.c.c_shed_connections;
      farewell_and_close t fd Wire.Err_overloaded
        (Printf.sprintf "connection limit %d reached" t.config.max_connections)
    end
    else register_and_spawn t fd

let drain_wake t =
  let scratch = Bytes.create 64 in
  try ignore (Unix.read t.wake_r scratch 0 64) with Unix.Unix_error _ -> ()

let close_listener t =
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  match t.addr with
  | Unix_path path -> (
    try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ()

let run t =
  while not (Atomic.get t.stopping) do
    match Unix.select [ t.listen_fd; t.wake_r ] [] [] 0.5 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) ->
      (* listener closed under us (abort): fall out via the flag *)
      Atomic.set t.stopping true
    | ready, _, _ ->
      if List.mem t.wake_r ready then drain_wake t;
      if List.mem t.listen_fd ready && not (Atomic.get t.stopping) then do_accept t
  done;
  close_listener t;
  if Atomic.get t.aborted then begin
    (* simulated crash: sever everything, no drain, no farewells *)
    Mutex.lock t.conns_mutex;
    Hashtbl.iter (fun _ conn -> shutdown_conn conn) t.conns;
    Mutex.unlock t.conns_mutex
  end
  else begin
    (* graceful drain: no new requests (handlers answer
       Err_shutting_down), in-flight ones finish; connections close as
       their clients see EOF on the receive side *)
    Mutex.lock t.conns_mutex;
    Hashtbl.iter (fun _ conn -> shutdown_conn ~how:Unix.SHUTDOWN_RECEIVE conn) t.conns;
    Mutex.unlock t.conns_mutex;
    let deadline = Unix.gettimeofday () +. t.config.drain_timeout in
    while conn_count t > 0 && Unix.gettimeofday () < deadline do
      Thread.delay 0.01
    done;
    if conn_count t > 0 then begin
      (* drain deadline blown: force the stragglers *)
      Mutex.lock t.conns_mutex;
      Hashtbl.iter (fun _ conn -> shutdown_conn conn) t.conns;
      Mutex.unlock t.conns_mutex;
      let force_deadline = Unix.gettimeofday () +. 1.0 in
      while conn_count t > 0 && Unix.gettimeofday () < force_deadline do
        Thread.delay 0.01
      done
    end
  end

let start t = Thread.create run t

type addr =
  | Unix_path of string
  | Tcp of string * int

(* The knobs and counters live with the supervisor (which owns the
   workers and the request path); re-exporting the records here keeps
   [Server.default_config] / field access working for callers. *)
type config = Supervisor.config = {
  workers : int;
  queue_capacity : int;
  max_connections : int;
  max_inflight : int;
  max_batch : int;
  max_frame_bytes : int;
  idle_timeout : float;
  drain_timeout : float;
  accept_retry_delay : float;
  restart_base_delay : float;
  restart_max_delay : float;
  breaker_window : float;
  breaker_max_restarts : int;
  shm : bool;
  shm_dir : string option;
  shm_ring_words : int;
  shm_heartbeat_timeout : float;
}

let default_config = Supervisor.default_config

type stats = Supervisor.stats = {
  accepted : int;
  shed_connections : int;
  requests_served : int;
  queries_served : int;
  degraded_served : int;
  timeouts : int;
  overloaded : int;
  bad_requests : int;
  store_errors : int;
  connection_crashes : int;
  accept_failures : int;
  dispatched : int;
  worker_crashes : int;
  worker_restarts : int;
  worker_lost_replies : int;
  breaker_trips : int;
  shm_sessions : int;
  shm_served : int;
  shm_reaped : int;
}

type t = {
  config : config;
  transport : Transport.t;
  the_store : Store.t;
  listen_fd : Unix.file_descr;
  addr : addr;
  stopping : bool Atomic.t;
  aborted : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  sup : Supervisor.t;
}

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found | Invalid_argument _ ->
      raise (Unix.Unix_error (Unix.EINVAL, "gethostbyname", host)))

(* A restarting daemon racing its predecessor's TIME_WAIT (or its own
   not-yet-unlinked socket) must not die on the bind: retry EADDRINUSE
   briefly — SO_REUSEADDR covers the common case, this covers the race. *)
let bind_retrying fd sockaddr =
  let deadline = Unix.gettimeofday () +. 1.0 in
  let rec go () =
    match Unix.bind fd sockaddr with
    | () -> ()
    | exception Unix.Unix_error (Unix.EADDRINUSE, _, _)
      when Unix.gettimeofday () < deadline ->
      Thread.delay 0.02;
      go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let create ?(config = default_config) ?transport:(tr = Transport.default) ?fault
    ?shm_hooks ~store addr =
  (* A peer that vanishes mid-reply must surface as EPIPE on the
     write, never kill the process — the daemon cannot operate under
     the default SIGPIPE disposition, so creating one claims it. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd, addr =
    match addr with
    | Unix_path path ->
      (* a stale socket file from a previous run would make bind fail *)
      (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try bind_retrying fd (Unix.ADDR_UNIX path)
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      (fd, Unix_path path)
    | Tcp (host, port) ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         bind_retrying fd (Unix.ADDR_INET (resolve_host host, port))
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      let port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      (fd, Tcp (host, port))
  in
  Unix.listen listen_fd (max 64 config.max_connections);
  (* Non-blocking listener: a connection that vanishes between select
     and accept must not block the whole accept loop. *)
  Unix.set_nonblock listen_fd;
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  let stopping = Atomic.make false in
  let sup =
    Supervisor.create ?fault ?shm_hooks ~config ~transport:tr ~store ~stopping ()
  in
  {
    config;
    transport = tr;
    the_store = store;
    listen_fd;
    addr;
    stopping;
    aborted = Atomic.make false;
    wake_r;
    wake_w;
    sup;
  }

let bound_addr t = t.addr
let store t = t.the_store
let stats t = Supervisor.stats t.sup
let health t = Supervisor.health t.sup
let kill_worker t slot = Supervisor.kill_worker t.sup slot

let wake t =
  try ignore (Unix.write t.wake_w (Bytes.make 1 'w') 0 1) with Unix.Unix_error _ -> ()

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    Supervisor.notify_stop t.sup;
    wake t
  end

let abort t =
  Atomic.set t.aborted true;
  Atomic.set t.stopping true;
  (* Hard-sever every connection from here; the handler threads wake
     with EOF/EPIPE and close their own fds. *)
  Supervisor.sever_all t.sup;
  Supervisor.notify_stop t.sup;
  wake t

let install_sigterm t =
  (* Keep the handler minimal (atomic flag + pipe write): the full
     drain happens on the accept thread, never in signal context. *)
  let handle = Sys.Signal_handle (fun _ -> stop t) in
  Sys.set_signal Sys.sigterm handle;
  Sys.set_signal Sys.sigint handle

let do_accept t =
  let c = Supervisor.counters t.sup in
  match t.transport.Transport.accept t.listen_fd with
  | exception
      Unix.Unix_error
        ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _) ->
    () (* the pending connection vanished between select and accept *)
  | exception Unix.Unix_error _ ->
    (* EMFILE, injected fault, ...: count, back off, keep accepting *)
    Atomic.incr c.Supervisor.c_accept_failures;
    Thread.delay t.config.accept_retry_delay
  | fd, _ ->
    Atomic.incr c.Supervisor.c_accepted;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    let shed status msg =
      Atomic.incr c.Supervisor.c_shed_connections;
      Supervisor.farewell t.sup fd status msg
    in
    if Atomic.get t.stopping then shed Wire.Err_shutting_down "daemon is draining"
    else if Supervisor.conn_count t.sup >= t.config.max_connections then
      shed Wire.Err_overloaded
        (Printf.sprintf "connection limit %d reached" t.config.max_connections)
    else
      match Supervisor.dispatch t.sup fd with
      | Supervisor.Dispatched -> ()
      | Supervisor.Backpressure ->
        shed Wire.Err_overloaded "every worker queue is full"
      | Supervisor.No_worker ->
        shed Wire.Err_worker_lost "no worker available (restarting)"

let drain_wake t =
  let scratch = Bytes.create 64 in
  try ignore (Unix.read t.wake_r scratch 0 64) with Unix.Unix_error _ -> ()

let close_listener t =
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  match t.addr with
  | Unix_path path -> (
    try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ()

let run t =
  while not (Atomic.get t.stopping) do
    match Unix.select [ t.listen_fd; t.wake_r ] [] [] 0.5 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) ->
      (* listener closed under us (abort): fall out via the flag *)
      Atomic.set t.stopping true
    | ready, _, _ ->
      if List.mem t.wake_r ready then drain_wake t;
      if List.mem t.listen_fd ready && not (Atomic.get t.stopping) then do_accept t
  done;
  close_listener t;
  if Atomic.get t.aborted then
    (* simulated crash: sever everything, no drain, no farewells *)
    Supervisor.sever_all t.sup
  else begin
    (* graceful drain: no new requests (handlers answer
       Err_shutting_down), in-flight ones finish; connections close as
       their clients see EOF on the receive side *)
    Supervisor.begin_drain t.sup;
    let deadline = Unix.gettimeofday () +. t.config.drain_timeout in
    while Supervisor.conn_count t.sup > 0 && Unix.gettimeofday () < deadline do
      Thread.delay 0.01
    done;
    if Supervisor.conn_count t.sup > 0 then begin
      (* drain deadline blown: force the stragglers *)
      Supervisor.sever_all t.sup;
      let force_deadline = Unix.gettimeofday () +. 1.0 in
      while Supervisor.conn_count t.sup > 0 && Unix.gettimeofday () < force_deadline do
        Thread.delay 0.01
      done
    end
  end;
  (* join the supervision thread and every worker domain *)
  Supervisor.join t.sup

let start t = Thread.create run t

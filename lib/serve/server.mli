(** mpsd: the multi-placement-structure serving daemon.

    One accept loop in front of a {!Supervisor} — N crash-isolated
    worker domains, each serving its connections on domain-local
    threads — and one {!Store.t} of compiled engines behind them.  The
    design goal is that no single client {e or worker} — slow,
    malicious, crashed, or unlucky — can take the daemon or its other
    clients down:

    - {b Deadlines.}  Every request may carry a microsecond budget;
      the server stamps it on receipt and re-checks it between batch
      chunks, replying [Err_timeout] instead of returning a stale
      answer late.
    - {b Load shedding.}  Admission is bounded three times: beyond
      [max_connections] a fresh connection is told [Err_overloaded]
      and closed instead of queueing, a full set of worker queues is
      backpressure (shed at the door), and beyond [max_inflight]
      concurrently-served requests each extra request is shed with
      [Err_overloaded] instead of growing an unbounded queue.
    - {b Crash isolation, supervised.}  A connection handler that dies
      is counted and contained.  A whole {e worker} that dies has its
      in-flight requests answered with a typed [Err_worker_lost], is
      respawned under exponential backoff, and a restart storm trips a
      circuit breaker into degraded single-worker mode — see
      {!Supervisor}.
    - {b Health.}  The [Health] frame (and {!health}) reports
      readiness, per-worker state, restart counts, queue depths and
      spawn epochs, so an orchestrator can probe liveness/readiness on
      the same wire it queries on.
    - {b Graceful drain.}  {!stop} (wired to SIGTERM by
      {!install_sigterm}) stops accepting, lets in-flight requests
      finish and answers anything arriving during the drain with
      [Err_shutting_down]; {!run} returns once the last connection is
      gone (or [drain_timeout] forces it) and every worker domain is
      joined.
    - {b Degradation.}  Store entries with audit findings serve from
      the backup template and every reply from a degraded entry is
      flagged, so a client is never silently handed a wrong answer.

    The transport is injectable ({!Transport.t}), and worker faults
    are injectable through [?fault], which is how the chaos suite
    drives short reads, stalls, disconnects, worker crashes and
    restart storms through the full stack deterministically. *)

type addr =
  | Unix_path of string
  | Tcp of string * int  (** host, port; port [0] picks a free port. *)

type config = Supervisor.config = {
  workers : int;  (** Worker domains behind the accept loop. *)
  queue_capacity : int;  (** Pending connections per worker queue. *)
  max_connections : int;  (** Accepted connections beyond this are shed. *)
  max_inflight : int;  (** Concurrently served requests beyond this are shed. *)
  max_batch : int;  (** Queries per batch request. *)
  max_frame_bytes : int;  (** Hard cap on any frame payload. *)
  idle_timeout : float;
      (** Seconds a connection may sit silent (or dribble a partial
          frame) before it is dropped. *)
  drain_timeout : float;  (** Seconds {!stop} waits before forcing. *)
  accept_retry_delay : float;  (** Back-off after a failed [accept]. *)
  restart_base_delay : float;  (** First respawn delay after a worker crash. *)
  restart_max_delay : float;  (** Backoff cap. *)
  breaker_window : float;  (** Sliding window for the restart storm count. *)
  breaker_max_restarts : int;
      (** Crashes inside the window beyond this trip the breaker. *)
  shm : bool;  (** Accept shm fast-path negotiations (DESIGN.md §13). *)
  shm_dir : string option;
      (** Ring-file directory; [None] derives [<store dir>/.shm]. *)
  shm_ring_words : int;  (** Data words per ring direction. *)
  shm_heartbeat_timeout : float;
      (** Staleness budget before a session peer is declared dead. *)
}

val default_config : config
(** See {!Supervisor.default_config}. *)

(** Monotonic counters, readable at any time. *)
type stats = Supervisor.stats = {
  accepted : int;
  shed_connections : int;
  requests_served : int;  (** Replies with status [Ok] / [Ok_degraded]. *)
  queries_served : int;  (** Individual queries inside served batches. *)
  degraded_served : int;  (** Requests answered [Ok_degraded]. *)
  timeouts : int;
  overloaded : int;
  bad_requests : int;
  store_errors : int;
  connection_crashes : int;
  accept_failures : int;
  dispatched : int;  (** Connections placed on a worker queue. *)
  worker_crashes : int;  (** Worker generations killed. *)
  worker_restarts : int;  (** Worker slots respawned. *)
  worker_lost_replies : int;  (** Requests answered [Err_worker_lost]. *)
  breaker_trips : int;
  shm_sessions : int;  (** Shm ring sessions negotiated. *)
  shm_served : int;  (** Requests that arrived over a ring. *)
  shm_reaped : int;  (** Ring sessions torn down (any cause). *)
}

type t

val create :
  ?config:config ->
  ?transport:Transport.t ->
  ?fault:(worker:int -> unit) ->
  ?shm_hooks:Shm.hooks ->
  store:Store.t ->
  addr ->
  t
(** Bind and listen immediately (so a caller may connect before
    {!run} is entered), but accept nothing until {!run}.  The worker
    domains and supervision thread spawn here.  Sets the process's
    SIGPIPE disposition to ignore — the daemon cannot operate under
    the default (a vanished peer would kill it on the next reply
    write).  [fault] is the per-request worker fault hook (chaos
    suite); see {!Supervisor.create}.  Binding retries [EADDRINUSE]
    briefly so a restart under load cannot lose the bind race.
    @raise Unix.Unix_error when the address cannot be bound. *)

val bound_addr : t -> addr
(** The address actually bound — [Tcp] with the resolved port when
    port [0] was requested. *)

val store : t -> Store.t
val stats : t -> stats

val health : t -> Wire.health
(** In-process health snapshot (the [Health] frame serves the same). *)

val kill_worker : t -> int -> bool
(** Chaos surface: simulate a hard crash of one worker slot.  [false]
    when the slot is out of range or not up.  See
    {!Supervisor.kill_worker}. *)

val run : t -> unit
(** Serve until {!stop} or {!abort}, then drain, join every worker
    domain and release every socket.  Never raises: all
    per-connection and per-worker failures are contained and counted. *)

val start : t -> Thread.t
(** {!run} on a background thread (tests, benches). *)

val stop : t -> unit
(** Begin a graceful drain.  Safe from any thread and from a signal
    handler; idempotent. *)

val abort : t -> unit
(** Simulated [kill -9]: hard-close the listener and every connection
    with no drain and no farewell replies.  What a real crash looks
    like to clients — the chaos suite's crash scenarios use it. *)

val install_sigterm : t -> unit
(** Route SIGTERM (and SIGINT) to {!stop} for clean drain-on-SIGTERM. *)

(** mpsd: the multi-placement-structure serving daemon.

    One accept loop, one lightweight thread per connection, one
    {!Store.t} of compiled engines behind them.  The design goal is
    that no single client — slow, malicious, or unlucky — can take the
    daemon or its other clients down:

    - {b Deadlines.}  Every request may carry a microsecond budget;
      the server stamps it on receipt and re-checks it between batch
      chunks, replying [Err_timeout] instead of returning a stale
      answer late.
    - {b Load shedding.}  Admission is bounded twice: beyond
      [max_connections] a fresh connection is told [Err_overloaded]
      and closed instead of queueing, and beyond [max_inflight]
      concurrently-served requests each extra request is shed with
      [Err_overloaded] instead of growing an unbounded queue.
    - {b Crash isolation.}  A connection handler that dies — protocol
      garbage, an injected transport fault, an engine invariant — is
      counted, its socket closed, and the daemon carries on.  Accept
      failures back off and retry; they never tear the loop down.
    - {b Graceful drain.}  {!stop} (wired to SIGTERM by
      {!install_sigterm}) stops accepting, lets in-flight requests
      finish and answers anything arriving during the drain with
      [Err_shutting_down]; {!run} returns once the last connection is
      gone (or [drain_timeout] forces it).
    - {b Degradation.}  Store entries with audit findings serve from
      the backup template and every reply from a degraded entry is
      flagged, so a client is never silently handed a wrong answer.

    The transport is injectable ({!Transport.t}), which is how the
    chaos suite drives short reads, stalls, mid-request disconnects
    and accept failures through the full stack deterministically. *)

type addr =
  | Unix_path of string
  | Tcp of string * int  (** host, port; port [0] picks a free port. *)

type config = {
  max_connections : int;  (** Accepted connections beyond this are shed. *)
  max_inflight : int;  (** Concurrently served requests beyond this are shed. *)
  max_batch : int;  (** Queries per batch request. *)
  max_frame_bytes : int;  (** Hard cap on any frame payload. *)
  idle_timeout : float;
      (** Seconds a connection may sit silent (or dribble a partial
          frame) before it is dropped. *)
  drain_timeout : float;  (** Seconds {!stop} waits before forcing. *)
  accept_retry_delay : float;  (** Back-off after a failed [accept]. *)
}

val default_config : config
(** 64 connections, 32 in-flight, 65536-query batches, 32 MiB frames,
    30 s idle, 10 s drain, 50 ms accept back-off. *)

(** Monotonic counters, readable at any time. *)
type stats = {
  accepted : int;
  shed_connections : int;
  requests_served : int;  (** Replies with status [Ok] / [Ok_degraded]. *)
  queries_served : int;  (** Individual queries inside served batches. *)
  degraded_served : int;  (** Requests answered [Ok_degraded]. *)
  timeouts : int;
  overloaded : int;
  bad_requests : int;
  store_errors : int;
  connection_crashes : int;
  accept_failures : int;
}

type t

val create : ?config:config -> ?transport:Transport.t -> store:Store.t -> addr -> t
(** Bind and listen immediately (so a caller may connect before
    {!run} is entered), but accept nothing until {!run}.  Sets the
    process's SIGPIPE disposition to ignore — the daemon cannot
    operate under the default (a vanished peer would kill it on the
    next reply write).
    @raise Unix.Unix_error when the address cannot be bound. *)

val bound_addr : t -> addr
(** The address actually bound — [Tcp] with the resolved port when
    port [0] was requested. *)

val store : t -> Store.t
val stats : t -> stats

val run : t -> unit
(** Serve until {!stop} or {!abort}, then drain and release every
    socket.  Never raises: all per-connection failures are contained
    and counted. *)

val start : t -> Thread.t
(** {!run} on a background thread (tests, benches). *)

val stop : t -> unit
(** Begin a graceful drain.  Safe from any thread and from a signal
    handler; idempotent. *)

val abort : t -> unit
(** Simulated [kill -9]: hard-close the listener and every connection
    with no drain and no farewell replies.  What a real crash looks
    like to clients — the chaos suite's crash scenarios use it. *)

val install_sigterm : t -> unit
(** Route SIGTERM (and SIGINT) to {!stop} for clean drain-on-SIGTERM. *)

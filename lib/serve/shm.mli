(** The shared-memory fast path for co-located clients (DESIGN.md §13).

    One session is one file-backed mapping (under the daemon's session
    directory) holding a pair of single-producer/single-consumer
    rings: client→server for requests and server→client for replies.
    Both sides map the same file [MAP_SHARED], so a frame moves by one
    memcpy out of the ring — no syscall on the hot path.  The session
    is negotiated over the socket ({!Wire.Shm_hello}); the socket
    stays open as the control channel and the universal fallback.

    Frames are self-verifying: a length word, a CRC32 over the stored
    words, the payload (one 8-byte little-endian word each, with a
    sidecar carrying each word's bit 63 past the int-bigarray lens).
    The CRC doubles as the publication protocol — OCaml exposes no
    user-level fences, so a reader that races a writer retries the
    checksum briefly; a {e persistent} mismatch is a torn write and
    raises {!Dead}, never returns wrong bytes.

    Liveness is cooperative: both sides stamp a heartbeat word while
    waiting or serving, and waiting is spin-then-nanosleep — futex
    free, so a kill -9'd peer leaves the survivor free-running, the
    stale heartbeat is noticed ({!peer_alive}), and the session is
    reaped.  Frame payloads are capped at half a ring
    ({!tx_fits}/{!rx_fits}); anything larger stays on the socket. *)

(** What a fault hook may do to the frame being published (the chaos
    suite's shm failure modes; see {!Mps_fault.Fault.shm_hooks_of_plan}). *)
type publish_fault =
  | Publish_torn
      (** Damage one stored word {e after} the CRC was computed — the
          consumer sees a persistent checksum mismatch, exactly as if
          the producer died mid-frame. *)
  | Publish_corrupt of int * int
      (** [(seed, flips)]: flip bits across the stored frame words
          after the CRC. *)
  | Publish_stall of float  (** Sleep this long before publishing. *)

type hooks = {
  on_publish : unit -> publish_fault option;
      (** Consulted once per {!send}, after the frame is written but
          before the tail moves. *)
  on_heartbeat : unit -> bool;
      (** [true] suppresses this heartbeat stamp (simulates a wedged
          peer without stopping its ring traffic). *)
}

val no_hooks : hooks

exception Dead of string
(** The session is unusable — peer closed or heartbeat stale, a torn
    or corrupted frame, a malformed ring file.  The caller falls back
    to the socket; the server reaps the session. *)

exception Timeout
(** The caller's deadline passed while waiting for ring space or data. *)

type t

val create : ?hooks:hooks -> ?ring_words:int -> path:string -> unit -> t
(** Server side: create (or truncate) the ring file at [path] with
    [ring_words] data words per direction (default 64Ki ≈ 512 KiB per
    ring) and initialize the header.  @raise Sys_error when the file
    cannot be created or mapped, [Invalid_argument] when [ring_words]
    is below 256. *)

val attach : ?hooks:hooks -> path:string -> unit -> t
(** Client side: map an existing ring file and validate its geometry.
    @raise Dead when the file is missing, runt, or malformed. *)

val path : t -> string
val ring_words_of_t : t -> int
  [@@ocaml.doc "Data words per direction (for the hello reply)."]

val frame_words : len:int -> int
(** Ring words a payload of [len] bytes occupies (length + CRC +
    payload + bit-63 sidecar). *)

val tx_fits : t -> len:int -> bool
(** The payload can ever be sent on this side's transmit ring (at most
    half the ring).  Callers route larger frames over the socket. *)

val rx_fits : t -> len:int -> bool
(** Same bound for the receive direction — the client checks the
    {e expected reply} size before routing a request to the ring. *)

val send : ?deadline:float -> ?hb_timeout:float -> t -> Bytes.t -> off:int -> len:int -> unit
(** Publish [len] bytes at [off] as one frame, blocking (spin, then
    nanosleep) while the ring is full.  [deadline] is an absolute
    instant; [hb_timeout] (default 3 s) bounds how stale the peer's
    heartbeat may grow before the wait gives up.  Stamps our own
    heartbeat while waiting.  @raise Timeout / Dead as documented,
    [Invalid_argument] when the frame can never fit (see {!tx_fits}). *)

val try_recv : t -> buf:Bytes.t ref -> int option
(** Non-blocking: consume the next frame into [buf] (grown as needed,
    payload at offset 0) and return its length, or [None] when the
    ring is empty.  @raise Dead on a torn/corrupt frame or when the
    peer closed with nothing left to read. *)

val recv : ?deadline:float -> ?hb_timeout:float -> t -> buf:Bytes.t ref -> int
(** Blocking {!try_recv} with the same backoff, heartbeat stamping and
    typed failures as {!send}. *)

val heartbeat : t -> unit
(** Stamp our liveness word (call periodically while serving). *)

val peer_started : t -> bool
(** The peer has stamped at least once — lets the server grant a
    fresh session an attach grace before liveness judgement. *)

val peer_alive : t -> timeout:float -> bool
(** The peer's heartbeat is at most [timeout] seconds old. *)

val peer_closed : t -> bool
(** The peer set its closed flag (clean shutdown). *)

val close : t -> unit
(** Set our closed flag.  Idempotent; does not unlink the file. *)

val remove : t -> unit
(** Unlink the backing file (the owner, when reaping).  A peer still
    mapping it keeps a valid view of the dead inode — degradation is
    typed errors, never SIGBUS. *)

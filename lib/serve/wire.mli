(** The mpsd wire protocol: length-prefixed binary frames.

    A frame is a 4-byte little-endian payload length followed by the
    payload.  Request payloads start with a fixed header —

    {v
    u8  opcode        u32 request id        u32 deadline (microseconds, 0 = none)
    v}

    — and reply payloads mirror it:

    {v
    u8  status        u32 request id        u32 store epoch (0 when not applicable)
    v}

    The deadline is a {e relative} budget: the server stamps it against
    its own clock when the frame has been fully received, so no clock
    synchronization between client and server is needed.  Integers are
    little-endian throughout.  Dimension vectors travel as flat [u16]
    arrays — a block dimension is bounded by the designer ranges, far
    below 65536, and the query path is hot enough that halving the
    frame bytes is measurable — while floorplan rectangles travel as
    [i32] (re-packed fallback coordinates are not range-bounded).

    This module owns the byte-level concerns only — framing with short
    read/write tolerance, per-read deadlines, bounds-checked field
    access — and is shared verbatim by server, client and the chaos
    tests, so an encoding bug cannot hide as a matching decode bug. *)

(** Typed request kinds (the [u8] opcode on the wire). *)
type opcode =
  | Ping
  | Open_circuit  (** body: string16 circuit name *)
  | Query_batch
      (** body: u16 handle, u32 count, count * 2*n_blocks u16 dims
          (w0 h0 w1 h1 ...) *)
  | Instantiate_batch  (** same body as {!Query_batch} *)
  | Stats  (** no body *)
  | Reload  (** body: string16 circuit name *)
  | Health  (** no body; reply carries a {!health} record *)
  | Shm_hello
      (** Negotiate the shared-memory fast path (DESIGN.md §13).  No
          body.  Reply body: u8 accepted; when 1, u32 ring words and a
          string16 path to the session's ring file for the client to
          map.  The socket carrying the hello stays open as the
          session's control channel and universal fallback. *)

(** Typed reply statuses (the [u8] status on the wire).  Anything but
    [Ok] / [Ok_degraded] carries a string16 diagnostic as its body. *)
type status =
  | Ok
  | Ok_degraded
      (** The answer is valid but served under the store's degradation
          policy (backup template / salvaged structure) — never
          silently wrong. *)
  | Err_timeout  (** The request's deadline expired server-side. *)
  | Err_overloaded  (** Shed by the admission or connection limiter. *)
  | Err_bad_request
  | Err_unknown_circuit
  | Err_store  (** The structure file is missing or beyond salvage. *)
  | Err_shutting_down  (** The daemon is draining. *)
  | Err_worker_lost
      (** The worker domain serving this connection crashed mid-request;
          the request was not (fully) served and is safe to retry on a
          fresh connection. *)

val opcode_to_int : opcode -> int
val opcode_of_int : int -> opcode option

val idempotent : opcode -> bool
(** Whether re-executing the request cannot change server state — the
    frames a client may hedge or blindly retry.  [Reload] (bumps the
    store epoch) and [Shm_hello] (allocates a ring session) are the
    opcodes that are not. *)

val status_to_int : status -> int
val status_of_int : int -> status option
val status_to_string : status -> string

val request_header_bytes : int
val reply_header_bytes : int

val max_frame_default : int
(** Default cap on a single frame's payload (32 MiB). *)

(** {1 Framing} *)

exception Closed
(** The peer closed the connection at a frame boundary. *)

exception Truncated of string
(** EOF mid-frame, or a field read past the payload end. *)

exception Timed_out
(** The [deadline] passed while waiting for bytes. *)

exception Too_large of int
(** Advertised payload length exceeds [max_bytes] (or is negative). *)

val recv_frame :
  Transport.t ->
  ?deadline:float ->
  max_bytes:int ->
  buf:Bytes.t ref ->
  Unix.file_descr ->
  int
(** Read one frame, growing [buf] as needed, and return the payload
    length ([buf] holds the payload at offset 0).  [deadline] is an
    absolute [Unix.gettimeofday] instant enforced with [select] before
    every read, so a stalled peer cannot hold the caller hostage.
    @raise Closed / Truncated / Timed_out / Too_large as documented,
    [Unix.Unix_error] on transport failure. *)

val send_frame : Transport.t -> Unix.file_descr -> Bytes.t -> payload_len:int -> unit
(** Send [buf.(4 .. 4+payload_len)] as one frame.  The caller builds
    the payload at offset {!frame_prefix_bytes}; this writes the length
    prefix in place and loops over short writes.
    @raise Unix.Unix_error on transport failure. *)

val frame_prefix_bytes : int
(** Bytes to reserve at the front of a send buffer (4). *)

(** {1 Bounds-checked field access}

    Getters take the payload length and raise {!Truncated} instead of
    [Invalid_argument] on overrun, so a malformed frame surfaces as a
    protocol error, never a crash. *)

val ensure : Bytes.t ref -> int -> unit
(** Grow the buffer (amortized doubling) to at least the given size. *)

val get_u8 : Bytes.t -> len:int -> int -> int
val get_u16 : Bytes.t -> len:int -> int -> int
val get_u32 : Bytes.t -> len:int -> int -> int
val get_i32 : Bytes.t -> len:int -> int -> int
val get_string16 : Bytes.t -> len:int -> int -> string * int
(** Returns the string and the offset just past it. *)

val set_u8 : Bytes.t -> int -> int -> unit
val set_u16 : Bytes.t -> int -> int -> unit
val set_u32 : Bytes.t -> int -> int -> unit
val set_i32 : Bytes.t -> int -> int -> unit

val put_string16 : Bytes.t ref -> int -> string -> int
(** Write a u16 length + bytes at the offset (growing the buffer);
    returns the offset just past it.  @raise Invalid_argument when the
    string exceeds 65535 bytes. *)

(** {1 The Health frame}

    Liveness/readiness probes travel on the same wire as queries.  The
    reply body is

    {v
    u8 ready   u8 draining   u8 breaker   u8 n_workers   u32 epoch
    n_workers * (u8 state, u16 restarts, u16 queue, u16 conns, u32 epoch)
    v}

    [ready] means the daemon can serve a query {e right now}: it is not
    draining and at least one worker is up.  [epoch] counts worker
    spawns since the daemon started, so a probe can tell two
    encounters with the "same" worker slot apart across a restart. *)

(** One worker slot's condition. *)
type worker_state =
  | W_up  (** Accepting and serving connections. *)
  | W_restarting  (** Crashed; a backoff-delayed respawn is pending. *)
  | W_disabled  (** Parked by the circuit breaker (degraded mode). *)

val worker_state_to_int : worker_state -> int
val worker_state_of_int : int -> worker_state option
val worker_state_to_string : worker_state -> string

type worker_health = {
  w_state : worker_state;
  w_restarts : int;  (** Times this slot has been respawned. *)
  w_queue : int;  (** Connections queued, not yet picked up. *)
  w_conns : int;  (** Connections live on this worker. *)
  w_epoch : int;  (** Spawn generation of the current domain. *)
}

type health = {
  ready : bool;
  draining : bool;
  breaker : bool;  (** Restart storm tripped the breaker. *)
  epoch : int;  (** Total worker spawns since daemon start. *)
  workers : worker_health array;
}

val put_health : Bytes.t ref -> int -> health -> int
(** Encode at the offset (growing the buffer); returns the offset just
    past the record.  @raise Invalid_argument beyond 255 workers. *)

val get_health : Bytes.t -> len:int -> int -> health
(** Decode; @raise Truncated on a short or malformed body. *)

val health_to_string : health -> string
(** One line for logs and the CLI health check. *)

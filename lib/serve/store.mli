(** The daemon's structure store: many compiled engines, one per
    circuit, loaded from a directory of [*.mpsz] containers and/or
    [*.mps] text files.

    For each circuit the MPSZ container is preferred when present: it
    is mapped zero-copy ({!Mps_core.Zcodec.load}) — no parsing, no
    recompilation, the bulk engine tables served straight off the page
    cache — and its CRC verification stands in for the load-time
    audit, because the container stores the already-audited compiled
    engine bit-exact.  A damaged container falls back, typed, to the
    text document beside it (or to salvaging the container's own
    record table when there is none).  Hot reloads of a container
    {e remap} instead of recompiling, so picking up a repaired or
    regenerated [*.mpsz] costs O(1).

    Each entry pairs a {!Mps_core.Structure.Engine.t} with a
    {e generation epoch}: every (re)load of a circuit bumps its epoch,
    and replies stamp the epoch they were served from, so a client can
    tell when a [repair] run has been picked up.  Reloads are
    {e hot} — the store publishes the new entry while requests already
    holding the old one finish on it (entries are immutable; the old
    engine stays alive exactly as long as someone references it).

    Degradation policy (never silently wrong):
    - a file that loads strictly and audits clean serves normally;
    - audit findings on an intact file demote the entry to
      {e backup-only}: every query is answered by the backup template
      ({!Mps_core.Structure.Fallback} semantics) and flagged degraded;
    - a corrupt file is salvaged ({!Mps_core.Codec.load_salvage});
      if the post-repair audit is clean the salvaged engine serves,
      still flagged degraded (territory was lost), otherwise
      backup-only;
    - a file that is unreadable or beyond salvage yields a typed
      {!error}, which the server maps to an [Err_store] reply.

    Entries are evicted least-recently-used beyond [capacity]; epochs
    survive eviction so a later reload of the same circuit continues
    the sequence.  All operations are thread-safe; a slow load happens
    outside the store lock, with concurrent requests for the same
    circuit waiting on it rather than loading twice. *)

open Mps_netlist
open Mps_core

type error =
  | Unknown_circuit of string
      (** Not a Table 1 circuit name — nothing to validate against. *)
  | Unreadable of { path : string; reason : string }
      (** Missing or unreadable file ([mpsgen verify] exit 2). *)
  | Corrupt of { path : string; reason : string }
      (** Malformed beyond salvage, or for another circuit
          ([mpsgen verify] exit 1). *)

val error_to_string : error -> string

(** Geometry of a mapped container, for the shm fast path's descriptor
    replies (DESIGN.md §13): a query answer can be the [(offset,
    length)] word span of the winning placement record inside this
    file, because a co-located client maps the same inode read-only
    and reads the record there instead of receiving copied bytes. *)
type container = {
  c_path : string;  (** The [*.mpsz] file backing the mapping. *)
  c_words : int;
      (** Total container words — every descriptor must fall inside. *)
  c_record_off : int;
      (** Absolute word offset of the placement-record table. *)
  c_record_stride : int;  (** Words per record; the descriptor length. *)
}

(** An immutable snapshot of one loaded circuit.  Requests resolve an
    entry once and use it for their whole lifetime, even if a reload
    publishes a newer epoch meanwhile. *)
type entry = {
  name : string;  (** Circuit name (store key). *)
  path : string;  (** File the entry was loaded from. *)
  circuit : Circuit.t;
  engine : Structure.Engine.t;
      (** Query-ready; for structure-level metadata use the engine
          accessors ({!Structure.Engine.backup},
          {!Structure.Engine.n_stored}, ...) — they are O(1) and do not
          materialize the heap structure. *)
  epoch : int;  (** Monotonic per circuit, starting at 1. *)
  degraded : bool;  (** Replies from this entry carry the degraded flag. *)
  backup_only : bool;
      (** Audit findings: answer every query from the backup template. *)
  findings : int;  (** Audit finding count behind the demotion. *)
  salvaged : bool;  (** The file needed {!Codec.load_salvage}. *)
  mapped : bool;
      (** Served from a zero-copy container mapping ([*.mpsz]) rather
          than a recompiled heap engine. *)
  bytes : int;  (** Size on disk; counts against [max_mapped_bytes]
                    when [mapped]. *)
  mtime : float;
      (** Mtime of the {e preferred} source file at load (the
          container when one existed, even if the entry fell back to
          the text document), for hot-reload detection. *)
  container : container option;
      (** Present exactly when [mapped]: what the serving layer needs
          to hand out descriptor replies into the container. *)
}

type t

val create :
  ?capacity:int ->
  ?stat_interval:float ->
  ?max_mapped_bytes:int ->
  ?audit_samples:int ->
  ?audit_query_samples:int ->
  ?audit_seed:int ->
  dir:string ->
  unit ->
  t
(** [stat_interval] (default 0) debounces hot-reload detection: an
    entry's source file is re-stat'ed at most once per [stat_interval]
    seconds, so at serving rates {!get} costs no syscall on the vast
    majority of requests and a repaired file is still picked up within
    the interval.  [0] stats on every {!get} (the conservative
    default; [mpsgen serve] runs with a small nonzero interval).
    [capacity] (default 8) live engines before LRU eviction;
    [max_mapped_bytes] (default 512 MiB) total on-disk bytes of mapped
    containers the store keeps referenced — beyond it, mapped entries
    are evicted least-recently-used (the mapping itself is released
    when the last in-flight request drops the entry; the most recently
    used entry is never evicted, so one oversized container still
    serves).  [audit_samples] (default 4) / [audit_query_samples]
    (default 32) / [audit_seed] (default 7) parameterize the
    load-time audit of text-format loads. *)

val dir : t -> string

val path_for : t -> string -> string
(** Where a circuit's text structure file lives: [dir/<name>.mps] with
    spaces mapped to underscores (the layout [mpsgen generate -o]
    should target). *)

val zpath_for : t -> string -> string
(** Where a circuit's MPSZ container lives: [dir/<name>.mpsz].  When
    both files exist the container is preferred. *)

val source_for : t -> string -> string
(** The file a (re)load would read right now: {!zpath_for} when that
    file exists, else {!path_for}. *)

val get : t -> string -> (entry, error) result
(** The current entry for a circuit, loading (and auditing) it on
    first use and hot-reloading when the file's mtime changed since
    the entry was built. *)

val reload : t -> string -> (entry, error) result
(** Force a fresh load and epoch bump, regardless of mtime (the
    [reload] wire request). *)

val loaded : t -> entry list
(** Live entries, most recently used first. *)

val describe : t -> string
(** One line per live entry (epoch, mode, findings) for the [stats]
    reply and logs. *)

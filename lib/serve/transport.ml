type t = {
  recv : Unix.file_descr -> Bytes.t -> int -> int -> int;
  send : Unix.file_descr -> Bytes.t -> int -> int -> int;
  accept : Unix.file_descr -> Unix.file_descr * Unix.sockaddr;
}

let default =
  {
    recv = Unix.read;
    send = Unix.write;
    accept = (fun fd -> Unix.accept ~cloexec:true fd);
  }

(** The injectable socket layer under the serving daemon.

    Every byte the daemon moves goes through one of these three
    primitives, mirroring {!Mps_core.Persist.io} on the persistence
    side: the production record ({!default}) is a thin veneer over
    [Unix], and the chaos harness ({!Mps_fault.Fault.transport_of_plan})
    wraps any base record to deterministically shorten, stall or sever
    a single call — which is how the network-fault scenarios drive the
    daemon end-to-end without a flaky network in the loop.

    [recv]/[send] have [Unix.read]/[Unix.write]-style contracts: they
    may move fewer bytes than asked (framing must loop), return [0] on
    a peer gone away ([recv]), and raise [Unix.Unix_error] on failure.
    Unlike {!Mps_core.Persist.io} there is no global instance: a
    transport is passed explicitly to each server and client, so one
    endpoint can run faulted while its peer runs clean. *)

type t = {
  recv : Unix.file_descr -> Bytes.t -> int -> int -> int;
      (** [recv fd buf off len] reads at most [len] bytes into [buf] at
          [off]; [0] means the peer closed the connection. *)
  send : Unix.file_descr -> Bytes.t -> int -> int -> int;
      (** [send fd buf off len] writes at most [len] bytes; callers
          loop on short writes. *)
  accept : Unix.file_descr -> Unix.file_descr * Unix.sockaddr;
}

val default : t
(** The real socket layer ([Unix.read]/[Unix.write]/[Unix.accept],
    with [accept] marking the connection close-on-exec). *)

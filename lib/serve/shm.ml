(* The shared-memory fast path for co-located clients (DESIGN.md §13).

   A session is one file-backed mapping holding a pair of
   single-producer/single-consumer rings: client->server (requests)
   and server->client (replies).  Both sides map the same file
   MAP_SHARED ({!Mps_core.Persist.map_shared}), so moving a frame is
   pointer arithmetic plus one memcpy out of the ring — no syscall, no
   kernel buffer, no wakeup.  The negotiating socket stays open as the
   control channel and the universal fallback; nothing here replaces
   it.

   Layout (8-byte little-endian words; head/tail/heartbeat words sit
   on their own 64-byte cache line so the two sides never false-share):

     word 0   magic            word 1   version
     word 2   request-ring data words   word 3   reply-ring data words
     word 8   client heartbeat          word 16  server heartbeat
     word 24  request head (consumer)   word 32  request tail (producer)
     word 40  reply head                word 48  reply tail
     word 56  flags (bit 0 server closed, bit 1 client closed)
     word 64  request ring data, then reply ring data

   Head and tail are absolute monotonic word counters (position =
   counter mod capacity); a frame never wraps — a producer that cannot
   fit one before the ring's end publishes a skip marker (-1 length
   word) and continues at the boundary, and the consumer derives the
   same skip length from its own position.

   Frames carry their own integrity: [len_bytes][crc32][payload
   words][sidecar words].  The payload crosses the int-bigarray lens,
   which drops bit 63 of every word, so each sidecar word carries the
   bit-63s of up to 63 payload words and the reader reassembles exact
   bytes.  The CRC (over the stored payload+sidecar words, computed
   with {!Mps_core.Persist.crc32_words} on both sides) is the
   publication protocol: OCaml has no user-level memory fences, so a
   reader that catches a frame before all its stores landed sees a CRC
   mismatch, retries briefly, and — if the mismatch persists (a torn
   write: the producer died or was corrupted mid-frame) — surfaces a
   typed {!Dead}, never a wrong answer.

   Liveness is heartbeats, not futexes: each side stamps its
   heartbeat word with the wall clock while waiting or serving, and
   {!peer_alive} compares against a staleness budget.  A peer that was
   kill -9'd stops stamping; the survivor reaps the session.  Waiting
   is spin-then-[Thread.delay] (nanosleep) backoff — futex-free, so a
   dead peer can never leave the survivor parked in the kernel. *)

open Mps_core

let magic = 0x4D50_5352 (* "MPSR" *)
let version = 1
let header_words = 64
let default_ring_words = 64 * 1024 (* 512 KiB of data per direction *)

(* header word indices *)
let i_magic = 0
let i_version = 1
let i_req_cap = 2
let i_rep_cap = 3
let i_client_hb = 8
let i_server_hb = 16
let i_req_head = 24
let i_req_tail = 32
let i_rep_head = 40
let i_rep_tail = 48
let i_flags = 56

let flag_server_closed = 1
let flag_client_closed = 2

type publish_fault =
  | Publish_torn  (** damage one stored word after the CRC: a torn write *)
  | Publish_corrupt of int * int  (** seed, bit flips across the frame *)
  | Publish_stall of float  (** wedge before publishing *)

type hooks = {
  on_publish : unit -> publish_fault option;
  on_heartbeat : unit -> bool;  (** [true]: suppress this stamp *)
}

let no_hooks = { on_publish = (fun () -> None); on_heartbeat = (fun () -> false) }

exception Dead of string
exception Timeout

type role = Owner | Peer

type t = {
  path : string;
  role : role;
  a : Persist.words;
  tx_base : int;  (* data offset of the ring this side produces into *)
  tx_cap : int;
  tx_head : int;  (* header word indices *)
  tx_tail : int;
  rx_base : int;
  rx_cap : int;
  rx_head : int;
  rx_tail : int;
  own_hb : int;
  peer_hb : int;
  own_closed : int;  (* flag bit *)
  peer_closed_bit : int;
  hooks : hooks;
  mutable closed : bool;
}

let path t = t.path
let ring_words_of_t t = t.tx_cap

(* words a payload of [len] bytes occupies on the ring *)
let frame_words ~len =
  let nw = (len + 7) / 8 in
  let ns = (nw + 62) / 63 in
  2 + nw + ns

(* A frame larger than half the ring could deadlock the producer
   against its own skip padding; both sides enforce the same cap. *)
let tx_max_frame_words t = t.tx_cap / 2
let rx_max_frame_words t = t.rx_cap / 2
let tx_fits t ~len = frame_words ~len <= tx_max_frame_words t
let rx_fits t ~len = frame_words ~len <= rx_max_frame_words t

let now () = Unix.gettimeofday ()

(* Heartbeat words hold the wall clock's IEEE-754 image through the
   int lens.  Epoch-scale floats set bit 62, so the stored 63-bit int
   is negative; reading back through [Int64.of_int] would sign-extend
   that into bit 63 — mask it off (the float is positive, its true
   bit 63 is 0). *)
let stamp t =
  if not (t.hooks.on_heartbeat ()) then
    t.a.{t.own_hb} <- Int64.to_int (Int64.bits_of_float (now ()))

let heartbeat = stamp

let read_clock t i =
  let v = t.a.{i} in
  if v = 0 then None
  else Some (Int64.float_of_bits (Int64.logand (Int64.of_int v) Int64.max_int))

let peer_started t = t.a.{t.peer_hb} <> 0

let peer_alive t ~timeout =
  match read_clock t t.peer_hb with
  | None -> false
  | Some stamp -> now () -. stamp <= timeout

let peer_closed t = t.a.{i_flags} land t.peer_closed_bit <> 0

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.a.{i_flags} <- t.a.{i_flags} lor t.own_closed
  end

(* Unlink the backing file (the owner, when reaping the session).  The
   peer's live mapping stays valid on the dead inode — same rule as
   the MPSZ hot-reload path — so a racing reader degrades to typed
   errors, never SIGBUS. *)
let remove t = try Sys.remove t.path with Sys_error _ -> ()

let file_words ~ring_words = header_words + (2 * ring_words)

let make ~path ~role ~hooks a ~req_cap ~rep_cap =
  let owner = role = Owner in
  let t =
    {
      path;
      role;
      a;
      (* the server produces replies and consumes requests *)
      tx_base = (if owner then header_words + req_cap else header_words);
      tx_cap = (if owner then rep_cap else req_cap);
      tx_head = (if owner then i_rep_head else i_req_head);
      tx_tail = (if owner then i_rep_tail else i_req_tail);
      rx_base = (if owner then header_words else header_words + req_cap);
      rx_cap = (if owner then req_cap else rep_cap);
      rx_head = (if owner then i_req_head else i_rep_head);
      rx_tail = (if owner then i_req_tail else i_rep_tail);
      own_hb = (if owner then i_server_hb else i_client_hb);
      peer_hb = (if owner then i_client_hb else i_server_hb);
      own_closed = (if owner then flag_server_closed else flag_client_closed);
      peer_closed_bit = (if owner then flag_client_closed else flag_server_closed);
      hooks;
      closed = false;
    }
  in
  stamp t;
  t

let create ?(hooks = no_hooks) ?(ring_words = default_ring_words) ~path () =
  if ring_words < 256 then invalid_arg "Shm.create: ring_words < 256";
  let total = file_words ~ring_words in
  let a, _ = Persist.map_shared ~size:(total * 8) ~path () in
  Bigarray.Array1.fill a 0;
  a.{i_req_cap} <- ring_words;
  a.{i_rep_cap} <- ring_words;
  a.{i_version} <- version;
  a.{i_magic} <- magic;
  make ~path ~role:Owner ~hooks a ~req_cap:ring_words ~rep_cap:ring_words

let attach ?(hooks = no_hooks) ~path () =
  let a, bytes =
    try Persist.map_shared ~path ()
    with Sys_error msg -> raise (Dead ("shm attach: " ^ msg))
  in
  if Bigarray.Array1.dim a < header_words then raise (Dead "shm attach: runt file");
  if a.{i_magic} <> magic then raise (Dead "shm attach: bad magic");
  if a.{i_version} <> version then raise (Dead "shm attach: unsupported version");
  let req_cap = a.{i_req_cap} and rep_cap = a.{i_rep_cap} in
  if
    req_cap < 256 || rep_cap < 256
    || (header_words + req_cap + rep_cap) * 8 <> bytes
  then raise (Dead "shm attach: malformed ring geometry");
  make ~path ~role:Peer ~hooks a ~req_cap ~rep_cap

(* ---- frame encode / decode -------------------------------------- *)

(* Payload word [i] as the Int64 of bytes [off + 8i ..]; the last word
   is zero-padded past [len]. *)
let word_of_bytes b ~off ~len i =
  let p = off + (i * 8) in
  if p + 8 <= off + len then Bytes.get_int64_le b p
  else begin
    let v = ref 0L in
    for k = off + len - 1 downto p do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (Bytes.get b k)))
    done;
    !v
  end

let seeded_flips ~seed ~flips a ~pos ~len =
  let rng = Mps_rng.Rng.create ~seed in
  for _ = 1 to flips do
    let i = pos + Mps_rng.Rng.int rng len in
    let bit = Mps_rng.Rng.int rng 63 in
    a.{i} <- a.{i} lxor (1 lsl bit)
  done

(* Spin-then-nanosleep while the producer waits for ring space.  The
   deadline and peer liveness are re-checked on every backoff step, so
   a dead or wedged consumer surfaces as a typed error, never a hang. *)
let wait_step t ~spins ~deadline ~hb_timeout =
  if t.closed then raise (Dead "shm session closed");
  if peer_closed t then raise (Dead "shm peer closed");
  (match deadline with Some d when now () > d -> raise Timeout | _ -> ());
  stamp t;
  if peer_started t && not (peer_alive t ~timeout:hb_timeout) then
    raise (Dead "shm peer heartbeat stale");
  if !spins < 200 then begin
    incr spins;
    Domain.cpu_relax ()
  end
  else if !spins < 232 then begin
    (* middle gear for oversubscribed hosts: when the peer shares this
       core, spinning only burns the timeslice it needs and a 200 us
       nanosleep overshoots a burst that drains in tens — sched_yield
       hands the core straight to the runnable peer *)
    incr spins;
    Thread.yield ()
  end
  else Thread.delay 0.0002

let send ?deadline ?(hb_timeout = 3.0) t b ~off ~len =
  if t.closed then raise (Dead "shm session closed");
  let nw = (len + 7) / 8 in
  let ns = (nw + 62) / 63 in
  let fw = 2 + nw + ns in
  if fw > tx_max_frame_words t then
    invalid_arg
      (Printf.sprintf "Shm.send: %d-byte frame exceeds the ring (check tx_fits)" len);
  let a = t.a in
  let cap = t.tx_cap in
  (* wait for contiguous space (including skip padding to the boundary) *)
  let spins = ref 0 in
  let rec reserve () =
    let head = a.{t.tx_head} in
    let tail = a.{t.tx_tail} in
    let pos = tail mod cap in
    let room = cap - pos in
    let need = if fw <= room then fw else room + fw in
    if tail - head + need <= cap then (tail, pos, room)
    else begin
      wait_step t ~spins ~deadline ~hb_timeout;
      reserve ()
    end
  in
  let tail, pos, room = reserve () in
  let tail, pos =
    if fw <= room then (tail, pos)
    else begin
      (* skip marker: the frame would wrap; pad to the boundary *)
      a.{t.tx_base + pos} <- -1;
      a.{t.tx_tail} <- tail + room;
      (tail + room, 0)
    end
  in
  let slot = t.tx_base + pos in
  let data = slot + 2 in
  for i = 0 to nw - 1 do
    let w = word_of_bytes b ~off ~len i in
    Bigarray.Array1.unsafe_set a (data + i) (Int64.to_int w);
    if Int64.logand w Int64.min_int <> 0L then begin
      let s = data + nw + (i / 63) in
      a.{s} <- a.{s} lor (1 lsl (i mod 63))
    end
  done;
  (* sidecar words not touched by the loop above must not inherit
     stale ring content *)
  for j = 0 to ns - 1 do
    let s = data + nw + j in
    let base = j * 63 in
    let mask = ref 0 in
    for k = 0 to 62 do
      let i = base + k in
      if i < nw && Int64.logand (word_of_bytes b ~off ~len i) Int64.min_int <> 0L
      then mask := !mask lor (1 lsl k)
    done;
    a.{s} <- !mask
  done;
  let crc =
    Int32.to_int (Persist.crc32_words a ~pos:data ~len:(nw + ns)) land 0xFFFF_FFFF
  in
  a.{slot + 1} <- crc;
  a.{slot} <- len;
  (match t.hooks.on_publish () with
  | None -> ()
  | Some (Publish_stall s) -> Thread.delay s
  | Some Publish_torn ->
    (* a word of the frame never lands (producer torn mid-write): the
       consumer must see a CRC mismatch, not a wrong answer *)
    a.{data} <- a.{data} lxor 0x5A5A_5A5A
  | Some (Publish_corrupt (seed, flips)) ->
    seeded_flips ~seed ~flips a ~pos:data ~len:(nw + ns));
  a.{t.tx_tail} <- tail + fw;
  stamp t

(* Reconstruct payload bytes from stored words plus the bit-63
   sidecar. *)
let copy_out t ~slot ~len ~nw buf =
  Wire.ensure buf len;
  let b = !buf in
  let a = t.a in
  let data = slot + 2 in
  for i = 0 to nw - 1 do
    let stored = Bigarray.Array1.unsafe_get a (data + i) in
    let hi =
      a.{data + nw + (i / 63)} lsr (i mod 63) land 1
    in
    let w =
      Int64.logor
        (Int64.logand (Int64.of_int stored) Int64.max_int)
        (if hi = 1 then Int64.min_int else 0L)
    in
    let p = i * 8 in
    if p + 8 <= len then Bytes.set_int64_le b p w
    else
      for k = p to len - 1 do
        Bytes.set b k
          (Char.chr (Int64.to_int (Int64.shift_right_logical w (8 * (k - p))) land 0xff))
      done
  done

(* One non-blocking receive attempt.  [None] when the ring is empty; a
   frame that stays CRC-inconsistent through the retry window (or
   claims an impossible geometry) raises [Dead] — the producer tore
   mid-write or the ring was corrupted, and no answer is better than a
   wrong one. *)
let try_recv t ~buf =
  if t.closed then raise (Dead "shm session closed");
  let a = t.a in
  let cap = t.rx_cap in
  let rec go () =
    let head = a.{t.rx_head} in
    let tail = a.{t.rx_tail} in
    if tail - head <= 0 then begin
      if peer_closed t then raise (Dead "shm peer closed") else None
    end
    else begin
      let pos = head mod cap in
      let lenw = a.{t.rx_base + pos} in
      if lenw = -1 then begin
        (* skip padding to the ring boundary *)
        a.{t.rx_head} <- head + (cap - pos);
        go ()
      end
      else begin
        let geometry_ok len =
          len >= 0 && frame_words ~len <= rx_max_frame_words t
          && frame_words ~len <= tail - head
        in
        (* CRC-retry publication: without fences a reader can observe
           the tail before the frame's stores; a transient mismatch
           heals in a few spins, a persistent one is a torn write *)
        let rec check attempts =
          let len = a.{t.rx_base + pos} in
          if not (geometry_ok len) then
            if attempts > 0 then begin
              Domain.cpu_relax ();
              check (attempts - 1)
            end
            else raise (Dead "shm ring: torn frame (bad geometry)")
          else begin
            let nw = (len + 7) / 8 in
            let ns = (nw + 62) / 63 in
            let slot = t.rx_base + pos in
            let crc =
              Int32.to_int (Persist.crc32_words a ~pos:(slot + 2) ~len:(nw + ns))
              land 0xFFFF_FFFF
            in
            if crc = a.{slot + 1} then (len, nw, slot)
            else if attempts > 0 then begin
              if attempts land 15 = 0 then Thread.delay 0.0002
              else Domain.cpu_relax ();
              check (attempts - 1)
            end
            else raise (Dead "shm ring: torn frame (crc mismatch)")
          end
        in
        let len, nw, slot = check 64 in
        copy_out t ~slot ~len ~nw buf;
        a.{t.rx_head} <- head + frame_words ~len;
        Some len
      end
    end
  in
  go ()

(* Blocking receive with the same spin-then-nanosleep backoff and the
   same typed outcomes as the send path. *)
let recv ?deadline ?(hb_timeout = 3.0) t ~buf =
  let spins = ref 0 in
  let rec go () =
    match try_recv t ~buf with
    | Some len -> len
    | None ->
      wait_step t ~spins ~deadline ~hb_timeout;
      go ()
  in
  go ()

open Mps_netlist
open Mps_core

type error =
  | Unknown_circuit of string
  | Unreadable of { path : string; reason : string }
  | Corrupt of { path : string; reason : string }

let error_to_string = function
  | Unknown_circuit name -> Printf.sprintf "unknown circuit %S" name
  | Unreadable { path; reason } -> Printf.sprintf "%s: unreadable: %s" path reason
  | Corrupt { path; reason } -> Printf.sprintf "%s: corrupt: %s" path reason

type entry = {
  name : string;
  path : string;
  circuit : Circuit.t;
  structure : Structure.t;
  engine : Structure.Engine.t;
  epoch : int;
  degraded : bool;
  backup_only : bool;
  findings : int;
  salvaged : bool;
  mtime : float;
}

(* A slot is [Loading] while some thread builds the entry outside the
   lock; everyone else waits on [cond] instead of loading twice. *)
type slot =
  | Ready of entry * (* last-used stamp *) int ref
  | Loading

type t = {
  dir : string;
  capacity : int;
  audit_samples : int;
  audit_query_samples : int;
  audit_seed : int;
  mutex : Mutex.t;
  cond : Condition.t;
  slots : (string, slot) Hashtbl.t;
  epochs : (string, int) Hashtbl.t;  (* survives eviction *)
  clock : int ref;  (* LRU stamp source *)
}

let create ?(capacity = 8) ?(audit_samples = 4) ?(audit_query_samples = 32)
    ?(audit_seed = 7) ~dir () =
  if capacity < 1 then invalid_arg "Store.create: capacity < 1";
  {
    dir;
    capacity;
    audit_samples;
    audit_query_samples;
    audit_seed;
    mutex = Mutex.create ();
    cond = Condition.create ();
    slots = Hashtbl.create 16;
    epochs = Hashtbl.create 16;
    clock = ref 0;
  }

let dir t = t.dir

let sanitize name = String.map (function ' ' -> '_' | c -> c) name

let path_for t name = Filename.concat t.dir (sanitize name ^ ".mps")

(* Build an entry from disk: strict load, audit, degradation policy.
   Runs outside the store lock — may take a while on big structures. *)
let build t name =
  match Benchmarks.by_name name with
  | exception Not_found -> Error (Unknown_circuit name)
  | circuit -> (
    let path = path_for t name in
    match Unix.stat path with
    | exception Unix.Unix_error (err, _, _) ->
      Error (Unreadable { path; reason = Unix.error_message err })
    | st -> (
      let mtime = st.Unix.st_mtime in
      let audit structure =
        Audit.run ~samples_per_box:t.audit_samples
          ~query_samples:t.audit_query_samples ~seed:t.audit_seed structure
      in
      let entry ~structure ~salvaged ~territory_lost ~report =
        let clean = Audit.clean report in
        let findings = List.length report.Audit.findings in
        Ok
          {
            name;
            path;
            circuit;
            structure;
            engine = Structure.Engine.create structure;
            epoch = 0 (* stamped under the lock *);
            degraded = (not clean) || salvaged || territory_lost;
            backup_only = not clean;
            findings;
            salvaged;
            mtime;
          }
      in
      match Codec.load ~circuit ~path with
      | structure ->
        entry ~structure ~salvaged:false ~territory_lost:false ~report:(audit structure)
      | exception Codec.Error (Codec.Io_error reason) ->
        Error (Unreadable { path; reason })
      | exception Codec.Error (Codec.Circuit_mismatch reason) ->
        Error (Corrupt { path; reason })
      | exception Codec.Error (Codec.Corrupt _) -> (
        (* Damaged file: salvage what is intact (the salvage pass
           audits and repairs internally) and re-audit the result. *)
        match Codec.load_salvage ~circuit ~path with
        | Ok sv ->
          entry ~structure:sv.Codec.structure ~salvaged:true
            ~territory_lost:(sv.Codec.dropped > 0 || sv.Codec.quarantined > 0)
            ~report:sv.Codec.audit
        | Error e -> Error (Corrupt { path; reason = Codec.error_to_string e })
        | exception Sys_error reason -> Error (Unreadable { path; reason }))))

let touch t stamp =
  incr t.clock;
  stamp := !(t.clock)

let evict_beyond_capacity t =
  let ready = ref [] in
  Hashtbl.iter
    (fun name -> function Ready (_, stamp) -> ready := (name, !stamp) :: !ready
      | Loading -> ())
    t.slots;
  let excess = List.length !ready - t.capacity in
  if excess > 0 then
    List.sort (fun (_, a) (_, b) -> compare a b) !ready
    |> List.filteri (fun i _ -> i < excess)
    |> List.iter (fun (name, _) -> Hashtbl.remove t.slots name)

(* Publish a finished load (or clear the Loading marker on failure)
   and wake the waiters. *)
let publish t name result =
  Mutex.lock t.mutex;
  let result =
    match result with
    | Ok entry ->
      let epoch = 1 + (try Hashtbl.find t.epochs name with Not_found -> 0) in
      Hashtbl.replace t.epochs name epoch;
      let entry = { entry with epoch } in
      let stamp = ref 0 in
      touch t stamp;
      Hashtbl.replace t.slots name (Ready (entry, stamp));
      evict_beyond_capacity t;
      Ok entry
    | Error _ ->
      Hashtbl.remove t.slots name;
      result
  in
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  result

(* Never leave a [Loading] marker behind: an unexpected exception out
   of the load path becomes a typed [Corrupt] error (the server maps it
   to an [Err_store] reply) instead of wedging every waiter. *)
let load_and_publish t name =
  let result =
    try build t name
    with e ->
      Error
        (Corrupt
           { path = path_for t name; reason = "load exception: " ^ Printexc.to_string e })
  in
  publish t name result

let rec get_with ~force t name =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.slots name with
  | Some Loading ->
    (* someone else is loading this circuit: wait for the publish *)
    Condition.wait t.cond t.mutex;
    Mutex.unlock t.mutex;
    get_with ~force t name
  | Some (Ready (entry, stamp)) ->
    let stale =
      force
      ||
      match Unix.stat entry.path with
      | st -> st.Unix.st_mtime <> entry.mtime
      | exception Unix.Unix_error _ -> true
      (* file vanished: reload to surface the typed error *)
    in
    if not stale then begin
      touch t stamp;
      Mutex.unlock t.mutex;
      Ok entry
    end
    else begin
      Hashtbl.replace t.slots name Loading;
      Mutex.unlock t.mutex;
      load_and_publish t name
    end
  | None ->
    Hashtbl.replace t.slots name Loading;
    Mutex.unlock t.mutex;
    load_and_publish t name

let get t name = get_with ~force:false t name
let reload t name = get_with ~force:true t name

let loaded t =
  Mutex.lock t.mutex;
  let entries = ref [] in
  Hashtbl.iter
    (fun _ -> function Ready (e, stamp) -> entries := (e, !stamp) :: !entries
      | Loading -> ())
    t.slots;
  Mutex.unlock t.mutex;
  List.sort (fun (_, a) (_, b) -> compare b a) !entries |> List.map fst

let describe t =
  let lines =
    loaded t
    |> List.map (fun e ->
           Printf.sprintf "%s: epoch %d, %s%s%d findings, %d placements" e.name e.epoch
             (if e.backup_only then "backup-only, "
              else if e.degraded then "degraded, "
              else "serving, ")
             (if e.salvaged then "salvaged, " else "")
             e.findings
             (Structure.n_placements e.structure))
  in
  match lines with
  | [] -> Printf.sprintf "store %s: no circuits loaded\n" t.dir
  | ls -> String.concat "\n" ls ^ "\n"

open Mps_netlist
open Mps_core

type error =
  | Unknown_circuit of string
  | Unreadable of { path : string; reason : string }
  | Corrupt of { path : string; reason : string }

let error_to_string = function
  | Unknown_circuit name -> Printf.sprintf "unknown circuit %S" name
  | Unreadable { path; reason } -> Printf.sprintf "%s: unreadable: %s" path reason
  | Corrupt { path; reason } -> Printf.sprintf "%s: corrupt: %s" path reason

(* Geometry of a mapped MPSZ container, for descriptor replies on the
   shm fast path: a query answer can be a word span into this file
   instead of copied bytes, because the client maps the same inode
   read-only. *)
type container = {
  c_path : string;
  c_words : int;  (* total container words; descriptor bounds *)
  c_record_off : int;  (* absolute word offset of the record table *)
  c_record_stride : int;  (* words per placement record *)
}

type entry = {
  name : string;
  path : string;
  circuit : Circuit.t;
  engine : Structure.Engine.t;
  epoch : int;
  degraded : bool;
  backup_only : bool;
  findings : int;
  salvaged : bool;
  mapped : bool;
  bytes : int;
  mtime : float;
  container : container option;
}

(* A slot is [Loading] while some thread builds the entry outside the
   lock; everyone else waits on [cond] instead of loading twice. *)
type slot =
  | Ready of entry * (* last-used stamp *) int ref * (* last staleness stat *) float ref
  | Loading

type t = {
  dir : string;
  capacity : int;
  stat_interval : float;
  max_mapped_bytes : int;
  audit_samples : int;
  audit_query_samples : int;
  audit_seed : int;
  mutex : Mutex.t;
  cond : Condition.t;
  slots : (string, slot) Hashtbl.t;
  epochs : (string, int) Hashtbl.t;  (* survives eviction *)
  clock : int ref;  (* LRU stamp source *)
}

let create ?(capacity = 8) ?(stat_interval = 0.0)
    ?(max_mapped_bytes = 512 * 1024 * 1024) ?(audit_samples = 4)
    ?(audit_query_samples = 32) ?(audit_seed = 7) ~dir () =
  if capacity < 1 then invalid_arg "Store.create: capacity < 1";
  if stat_interval < 0.0 then invalid_arg "Store.create: stat_interval < 0";
  if max_mapped_bytes < 1 then invalid_arg "Store.create: max_mapped_bytes < 1";
  {
    dir;
    capacity;
    stat_interval;
    max_mapped_bytes;
    audit_samples;
    audit_query_samples;
    audit_seed;
    mutex = Mutex.create ();
    cond = Condition.create ();
    slots = Hashtbl.create 16;
    epochs = Hashtbl.create 16;
    clock = ref 0;
  }

let dir t = t.dir

let sanitize name = String.map (function ' ' -> '_' | c -> c) name

let path_for t name = Filename.concat t.dir (sanitize name ^ ".mps")
let zpath_for t name = Filename.concat t.dir (sanitize name ^ ".mpsz")

(* The file a (re)load would read right now: the MPSZ container when
   present, else the text document.  Also drives the staleness check —
   an entry whose source is no longer the preferred file reloads. *)
let source_for t name =
  let zpath = zpath_for t name in
  if Sys.file_exists zpath then zpath else path_for t name

let file_bytes path =
  match Unix.stat path with
  | st -> st.Unix.st_size
  | exception Unix.Unix_error _ -> 0

(* Build an entry from disk: strict load, audit, degradation policy.
   Runs outside the store lock — may take a while on big structures.

   The MPSZ container is preferred when present: it maps zero-copy
   ({!Zcodec.load}) instead of recompiling, and the CRC verification
   stands in for the load-time audit — the container stores the
   already-audited compiled engine bit-exact, so re-auditing at load
   would re-prove what the checksum just proved.  A damaged container
   falls back to the text document beside it when one exists, else to
   salvaging the container itself; every step is typed, never a
   crash. *)
let build t name =
  match Benchmarks.by_name name with
  | exception Not_found -> Error (Unknown_circuit name)
  | circuit -> (
    let source = source_for t name in
    match Unix.stat source with
    | exception Unix.Unix_error (err, _, _) ->
      Error (Unreadable { path = source; reason = Unix.error_message err })
    | st ->
      (* the staleness check re-stats [source_for]; stamping the
         source's mtime (even when a broken container falls back to
         the text file) makes a later fix of the container get picked
         up on the next [get] *)
      let mtime = st.Unix.st_mtime in
      let audit structure =
        Audit.run ~samples_per_box:t.audit_samples
          ~query_samples:t.audit_query_samples ~seed:t.audit_seed structure
      in
      let heap_entry ~path ~structure ~salvaged ~territory_lost ~report =
        let clean = Audit.clean report in
        let findings = List.length report.Audit.findings in
        Ok
          {
            name;
            path;
            circuit;
            engine = Structure.Engine.create structure;
            epoch = 0 (* stamped under the lock *);
            degraded = (not clean) || salvaged || territory_lost;
            backup_only = not clean;
            findings;
            salvaged;
            mapped = false;
            bytes = file_bytes path;
            mtime;
            container = None;
          }
      in
      let load_text path =
        match Codec.load ~circuit ~path with
        | structure ->
          heap_entry ~path ~structure ~salvaged:false ~territory_lost:false
            ~report:(audit structure)
        | exception Codec.Error (Codec.Io_error reason) ->
          Error (Unreadable { path; reason })
        | exception Codec.Error (Codec.Circuit_mismatch reason) ->
          Error (Corrupt { path; reason })
        | exception Codec.Error (Codec.Corrupt _) -> (
          (* Damaged file: salvage what is intact (the salvage pass
             audits and repairs internally) and re-audit the result. *)
          match Codec.load_salvage ~circuit ~path with
          | Ok sv ->
            heap_entry ~path ~structure:sv.Codec.structure ~salvaged:true
              ~territory_lost:(sv.Codec.dropped > 0 || sv.Codec.quarantined > 0)
              ~report:sv.Codec.audit
          | Error e -> Error (Corrupt { path; reason = Codec.error_to_string e })
          | exception Sys_error reason -> Error (Unreadable { path; reason }))
      in
      if Filename.check_suffix source ".mpsz" then begin
        match Zcodec.load ~circuit source with
        | view ->
          Ok
            {
              name;
              path = source;
              circuit;
              engine = view.Zcodec.engine;
              epoch = 0;
              degraded = false;
              backup_only = false;
              findings = 0;
              salvaged = false;
              mapped = true;
              bytes = view.Zcodec.bytes;
              mtime;
              container =
                Some
                  {
                    c_path = source;
                    c_words = view.Zcodec.bytes / 8;
                    c_record_off = view.Zcodec.record_off_words;
                    c_record_stride = view.Zcodec.record_stride_words;
                  };
            }
        | exception Zcodec.Error ze -> (
          let tpath = path_for t name in
          match ze with
          | Zcodec.Circuit_mismatch reason when not (Sys.file_exists tpath) ->
            Error (Corrupt { path = source; reason })
          | _ when Sys.file_exists tpath ->
            (* clean fallback: a complete text document lives beside
               the damaged container *)
            load_text tpath
          | Zcodec.Io_error reason -> Error (Unreadable { path = source; reason })
          | _ -> (
            (* no text fallback: salvage the container's record table *)
            match Codec.load_salvage ~circuit ~path:source with
            | Ok sv ->
              heap_entry ~path:source ~structure:sv.Codec.structure ~salvaged:true
                ~territory_lost:(sv.Codec.dropped > 0 || sv.Codec.quarantined > 0)
                ~report:sv.Codec.audit
            | Error e ->
              Error (Corrupt { path = source; reason = Codec.error_to_string e })
            | exception Sys_error reason ->
              Error (Unreadable { path = source; reason })))
      end
      else load_text source)

let touch t stamp =
  incr t.clock;
  stamp := !(t.clock)

(* LRU eviction on two budgets: entry count and total mapped bytes.
   Evicting only drops the table's reference — an engine (and its
   file mapping) stays alive exactly as long as some in-flight request
   still holds the entry; the mapping is released when the last
   reference dies.  The most recently used entry is never evicted, so
   a single container bigger than the byte budget still serves. *)
let evict_beyond_capacity t =
  let ready = ref [] in
  Hashtbl.iter
    (fun name -> function
      | Ready (e, stamp, _) -> ready := (name, !stamp, e) :: !ready
      | Loading -> ())
    t.slots;
  let by_lru =
    List.sort (fun (_, a, _) (_, b, _) -> compare a b) !ready
    (* oldest first *)
  in
  let total = List.length by_lru in
  let mapped_bytes =
    List.fold_left (fun acc (_, _, e) -> if e.mapped then acc + e.bytes else acc) 0 by_lru
  in
  let excess_entries = ref (total - t.capacity) in
  let excess_bytes = ref (mapped_bytes - t.max_mapped_bytes) in
  List.iteri
    (fun i (name, _, e) ->
      let keep_last = i = total - 1 in
      if
        (not keep_last)
        && (!excess_entries > 0 || (!excess_bytes > 0 && e.mapped))
      then begin
        decr excess_entries;
        if e.mapped then excess_bytes := !excess_bytes - e.bytes;
        Hashtbl.remove t.slots name
      end)
    by_lru

(* Publish a finished load (or clear the Loading marker on failure)
   and wake the waiters. *)
let publish t name result =
  Mutex.lock t.mutex;
  let result =
    match result with
    | Ok entry ->
      let epoch = 1 + (try Hashtbl.find t.epochs name with Not_found -> 0) in
      Hashtbl.replace t.epochs name epoch;
      let entry = { entry with epoch } in
      let stamp = ref 0 in
      touch t stamp;
      Hashtbl.replace t.slots name (Ready (entry, stamp, ref (Unix.gettimeofday ())));
      evict_beyond_capacity t;
      Ok entry
    | Error _ ->
      Hashtbl.remove t.slots name;
      result
  in
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  result

(* Never leave a [Loading] marker behind: an unexpected exception out
   of the load path becomes a typed [Corrupt] error (the server maps it
   to an [Err_store] reply) instead of wedging every waiter. *)
let load_and_publish t name =
  let result =
    try build t name
    with e ->
      Error
        (Corrupt
           { path = path_for t name; reason = "load exception: " ^ Printexc.to_string e })
  in
  publish t name result

let rec get_with ~force t name =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.slots name with
  | Some Loading ->
    (* someone else is loading this circuit: wait for the publish *)
    Condition.wait t.cond t.mutex;
    Mutex.unlock t.mutex;
    get_with ~force t name
  | Some (Ready (entry, stamp, checked)) ->
    let stale =
      force
      ||
      (* Watch the *preferred* source, not necessarily the loaded
         file: a container appearing, vanishing or being repaired next
         to the text document triggers a hot reload — which remaps the
         container in O(1) instead of recompiling.  The stat is
         debounced to one per [stat_interval] per entry: at serving
         rates a syscall on every request is the single largest
         non-engine cost, and a reload picked up within the interval
         is all hot reload ever promised. *)
      let now = Unix.gettimeofday () in
      if t.stat_interval > 0.0 && now -. !checked < t.stat_interval then false
      else begin
        checked := now;
        match Unix.stat (source_for t name) with
        | st -> st.Unix.st_mtime <> entry.mtime
        | exception Unix.Unix_error _ -> true
        (* file vanished: reload to surface the typed error *)
      end
    in
    if not stale then begin
      touch t stamp;
      Mutex.unlock t.mutex;
      Ok entry
    end
    else begin
      Hashtbl.replace t.slots name Loading;
      Mutex.unlock t.mutex;
      load_and_publish t name
    end
  | None ->
    Hashtbl.replace t.slots name Loading;
    Mutex.unlock t.mutex;
    load_and_publish t name

let get t name = get_with ~force:false t name
let reload t name = get_with ~force:true t name

let loaded t =
  Mutex.lock t.mutex;
  let entries = ref [] in
  Hashtbl.iter
    (fun _ -> function Ready (e, stamp, _) -> entries := (e, !stamp) :: !entries
      | Loading -> ())
    t.slots;
  Mutex.unlock t.mutex;
  List.sort (fun (_, a) (_, b) -> compare b a) !entries |> List.map fst

let describe t =
  let lines =
    loaded t
    |> List.map (fun e ->
           Printf.sprintf "%s: epoch %d, %s%s%s%d findings, %d placements, %d bytes"
             e.name e.epoch
             (if e.backup_only then "backup-only, "
              else if e.degraded then "degraded, "
              else "serving, ")
             (if e.salvaged then "salvaged, " else "")
             (if e.mapped then "mapped, " else "")
             e.findings
             (Structure.Engine.n_stored e.engine)
             e.bytes)
  in
  match lines with
  | [] -> Printf.sprintf "store %s: no circuits loaded\n" t.dir
  | ls -> String.concat "\n" ls ^ "\n"

type opcode =
  | Ping
  | Open_circuit
  | Query_batch
  | Instantiate_batch
  | Stats
  | Reload
  | Health
  | Shm_hello

type status =
  | Ok
  | Ok_degraded
  | Err_timeout
  | Err_overloaded
  | Err_bad_request
  | Err_unknown_circuit
  | Err_store
  | Err_shutting_down
  | Err_worker_lost

let opcode_to_int = function
  | Ping -> 1
  | Open_circuit -> 2
  | Query_batch -> 3
  | Instantiate_batch -> 4
  | Stats -> 5
  | Reload -> 6
  | Health -> 7
  | Shm_hello -> 8

let opcode_of_int = function
  | 1 -> Some Ping
  | 2 -> Some Open_circuit
  | 3 -> Some Query_batch
  | 4 -> Some Instantiate_batch
  | 5 -> Some Stats
  | 6 -> Some Reload
  | 7 -> Some Health
  | 8 -> Some Shm_hello
  | _ -> None

(* Only these may be hedged or blindly retried: re-executing them
   cannot change server state ([Reload] bumps the store epoch;
   [Shm_hello] allocates a ring session). *)
let idempotent = function
  | Ping | Open_circuit | Query_batch | Instantiate_batch | Stats | Health -> true
  | Reload | Shm_hello -> false

let status_to_int = function
  | Ok -> 0
  | Ok_degraded -> 1
  | Err_timeout -> 2
  | Err_overloaded -> 3
  | Err_bad_request -> 4
  | Err_unknown_circuit -> 5
  | Err_store -> 6
  | Err_shutting_down -> 7
  | Err_worker_lost -> 8

let status_of_int = function
  | 0 -> Some Ok
  | 1 -> Some Ok_degraded
  | 2 -> Some Err_timeout
  | 3 -> Some Err_overloaded
  | 4 -> Some Err_bad_request
  | 5 -> Some Err_unknown_circuit
  | 6 -> Some Err_store
  | 7 -> Some Err_shutting_down
  | 8 -> Some Err_worker_lost
  | _ -> None

let status_to_string = function
  | Ok -> "ok"
  | Ok_degraded -> "ok-degraded"
  | Err_timeout -> "timeout"
  | Err_overloaded -> "overloaded"
  | Err_bad_request -> "bad-request"
  | Err_unknown_circuit -> "unknown-circuit"
  | Err_store -> "store-error"
  | Err_shutting_down -> "shutting-down"
  | Err_worker_lost -> "worker-lost"

let request_header_bytes = 9
let reply_header_bytes = 9
let frame_prefix_bytes = 4
let max_frame_default = 32 * 1024 * 1024

exception Closed
exception Truncated of string
exception Timed_out
exception Too_large of int

let ensure buf n =
  if Bytes.length !buf < n then begin
    let cap = ref (max 256 (Bytes.length !buf)) in
    while !cap < n do
      cap := !cap * 2
    done;
    let fresh = Bytes.create !cap in
    Bytes.blit !buf 0 fresh 0 (Bytes.length !buf);
    buf := fresh
  end

(* Wait for readability up to the absolute deadline.  EINTR retries
   with the remaining budget; a passed deadline raises. *)
let wait_readable fd deadline =
  match deadline with
  | None -> ()
  | Some d ->
    let rec wait () =
      let remaining = d -. Unix.gettimeofday () in
      if remaining <= 0.0 then raise Timed_out;
      match Unix.select [ fd ] [] [] remaining with
      | [], _, _ -> raise Timed_out
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
    in
    wait ()

let recv_exactly transport ?deadline fd buf off len =
  let got = ref 0 in
  while !got < len do
    wait_readable fd deadline;
    match transport.Transport.recv fd buf (off + !got) (len - !got) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | 0 ->
      if !got = 0 && off = 0 then raise Closed
      else raise (Truncated (Printf.sprintf "eof after %d of %d bytes" !got len))
    | n -> got := !got + n
  done

let recv_frame transport ?deadline ~max_bytes ~buf fd =
  let header = Bytes.create 4 in
  (* EOF before the first header byte is a clean close (recv_exactly
     raises Closed there); EOF anywhere later is a torn frame. *)
  recv_exactly transport ?deadline fd header 0 4;
  let len = Int32.to_int (Bytes.get_int32_le header 0) in
  if len < 0 || len > max_bytes then raise (Too_large len);
  ensure buf len;
  (try recv_exactly transport ?deadline fd !buf 0 len
   with Closed -> raise (Truncated "eof inside frame payload"));
  len

let send_frame transport fd buf ~payload_len =
  Bytes.set_int32_le buf 0 (Int32.of_int payload_len);
  let total = frame_prefix_bytes + payload_len in
  let sent = ref 0 in
  while !sent < total do
    let n =
      try transport.Transport.send fd buf !sent (total - !sent)
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    sent := !sent + n
  done

let check len off n =
  if off < 0 || off + n > len then
    raise (Truncated (Printf.sprintf "field at %d+%d past payload end %d" off n len))

let get_u8 b ~len off =
  check len off 1;
  Char.code (Bytes.get b off)

let get_u16 b ~len off =
  check len off 2;
  Bytes.get_uint16_le b off

let get_i32 b ~len off =
  check len off 4;
  Int32.to_int (Bytes.get_int32_le b off)

let get_u32 b ~len off =
  let v = get_i32 b ~len off in
  v land 0xffffffff

let get_string16 b ~len off =
  let n = get_u16 b ~len off in
  check len (off + 2) n;
  (Bytes.sub_string b (off + 2) n, off + 2 + n)

let set_u8 b off v = Bytes.set b off (Char.chr (v land 0xff))
let set_u16 b off v = Bytes.set_uint16_le b off (v land 0xffff)
let set_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)
let set_i32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

let put_string16 buf off s =
  let n = String.length s in
  if n > 0xffff then invalid_arg "Wire.put_string16: string too long";
  ensure buf (off + 2 + n);
  set_u16 !buf off n;
  Bytes.blit_string s 0 !buf (off + 2) n;
  off + 2 + n

(* ---- the Health frame ------------------------------------------- *)

type worker_state = W_up | W_restarting | W_disabled

let worker_state_to_int = function W_up -> 0 | W_restarting -> 1 | W_disabled -> 2

let worker_state_of_int = function
  | 0 -> Some W_up
  | 1 -> Some W_restarting
  | 2 -> Some W_disabled
  | _ -> None

let worker_state_to_string = function
  | W_up -> "up"
  | W_restarting -> "restarting"
  | W_disabled -> "disabled"

type worker_health = {
  w_state : worker_state;
  w_restarts : int;
  w_queue : int;
  w_conns : int;
  w_epoch : int;
}

type health = {
  ready : bool;
  draining : bool;
  breaker : bool;
  epoch : int;
  workers : worker_health array;
}

let worker_health_bytes = 11

let put_health buf off h =
  let n = Array.length h.workers in
  if n > 0xff then invalid_arg "Wire.put_health: too many workers";
  let body = 8 + (n * worker_health_bytes) in
  ensure buf (off + body);
  let b = !buf in
  set_u8 b off (if h.ready then 1 else 0);
  set_u8 b (off + 1) (if h.draining then 1 else 0);
  set_u8 b (off + 2) (if h.breaker then 1 else 0);
  set_u8 b (off + 3) n;
  set_u32 b (off + 4) h.epoch;
  Array.iteri
    (fun i w ->
      let o = off + 8 + (i * worker_health_bytes) in
      set_u8 b o (worker_state_to_int w.w_state);
      set_u16 b (o + 1) (min 0xffff w.w_restarts);
      set_u16 b (o + 3) (min 0xffff w.w_queue);
      set_u16 b (o + 5) (min 0xffff w.w_conns);
      set_u32 b (o + 7) w.w_epoch)
    h.workers;
  off + body

let get_health b ~len off =
  let ready = get_u8 b ~len off = 1 in
  let draining = get_u8 b ~len (off + 1) = 1 in
  let breaker = get_u8 b ~len (off + 2) = 1 in
  let n = get_u8 b ~len (off + 3) in
  let epoch = get_u32 b ~len (off + 4) in
  let workers =
    Array.init n (fun i ->
        let o = off + 8 + (i * worker_health_bytes) in
        let w_state =
          match worker_state_of_int (get_u8 b ~len o) with
          | Some s -> s
          | None -> raise (Truncated "unknown worker state on the wire")
        in
        {
          w_state;
          w_restarts = get_u16 b ~len (o + 1);
          w_queue = get_u16 b ~len (o + 3);
          w_conns = get_u16 b ~len (o + 5);
          w_epoch = get_u32 b ~len (o + 7);
        })
  in
  { ready; draining; breaker; epoch; workers }

let health_to_string h =
  Printf.sprintf "%s%s%s epoch %d [%s]"
    (if h.ready then "ready" else "not-ready")
    (if h.draining then " draining" else "")
    (if h.breaker then " breaker-tripped" else "")
    h.epoch
    (String.concat "; "
       (Array.to_list
          (Array.mapi
             (fun i w ->
               Printf.sprintf "w%d %s restarts %d queue %d conns %d epoch %d" i
                 (worker_state_to_string w.w_state)
                 w.w_restarts w.w_queue w.w_conns w.w_epoch)
             h.workers)))

open Mps_geometry
open Mps_netlist
open Mps_core

exception Worker_killed

type config = {
  workers : int;
  queue_capacity : int;
  max_connections : int;
  max_inflight : int;
  max_batch : int;
  max_frame_bytes : int;
  idle_timeout : float;
  drain_timeout : float;
  accept_retry_delay : float;
  restart_base_delay : float;
  restart_max_delay : float;
  breaker_window : float;
  breaker_max_restarts : int;
  shm : bool;
  shm_dir : string option;
  shm_ring_words : int;
  shm_heartbeat_timeout : float;
}

let default_config =
  {
    workers = 1;
    queue_capacity = 16;
    max_connections = 64;
    max_inflight = 32;
    max_batch = 65536;
    max_frame_bytes = Wire.max_frame_default;
    idle_timeout = 30.0;
    drain_timeout = 10.0;
    accept_retry_delay = 0.05;
    restart_base_delay = 0.05;
    restart_max_delay = 2.0;
    breaker_window = 10.0;
    breaker_max_restarts = 5;
    shm = true;
    shm_dir = None;
    shm_ring_words = 64 * 1024;
    shm_heartbeat_timeout = 3.0;
  }

type stats = {
  accepted : int;
  shed_connections : int;
  requests_served : int;
  queries_served : int;
  degraded_served : int;
  timeouts : int;
  overloaded : int;
  bad_requests : int;
  store_errors : int;
  connection_crashes : int;
  accept_failures : int;
  dispatched : int;
  worker_crashes : int;
  worker_restarts : int;
  worker_lost_replies : int;
  breaker_trips : int;
  shm_sessions : int;
  shm_served : int;
  shm_reaped : int;
}

type counters = {
  c_accepted : int Atomic.t;
  c_shed_connections : int Atomic.t;
  c_requests_served : int Atomic.t;
  c_queries_served : int Atomic.t;
  c_degraded_served : int Atomic.t;
  c_timeouts : int Atomic.t;
  c_overloaded : int Atomic.t;
  c_bad_requests : int Atomic.t;
  c_store_errors : int Atomic.t;
  c_connection_crashes : int Atomic.t;
  c_accept_failures : int Atomic.t;
  c_dispatched : int Atomic.t;
  c_worker_crashes : int Atomic.t;
  c_worker_restarts : int Atomic.t;
  c_worker_lost_replies : int Atomic.t;
  c_breaker_trips : int Atomic.t;
  c_shm_sessions : int Atomic.t;
  c_shm_served : int Atomic.t;
  c_shm_reaped : int Atomic.t;
}

let bump a = Atomic.incr a
let add a n = ignore (Atomic.fetch_and_add a n)

type conn = { conn_id : int; fd : Unix.file_descr }

(* One spawn of a worker domain.  Connection handlers capture the
   generation they were spawned under; a crash kills the generation
   (the atomic flips false), never the slot — the slot is respawned
   with a fresh generation and the old handlers see only their own. *)
type generation = { g_epoch : int; g_alive : bool Atomic.t }

type worker = {
  slot : int;
  q : Unix.file_descr Queue.t;  (* accepted, not yet picked up; bounded *)
  mutable gen : generation;
  mutable state : Wire.worker_state;
  mutable restarts : int;
  mutable restart_at : float;  (* when [W_restarting]: earliest respawn *)
  mutable domain : unit Domain.t option;
  conns : (int, conn) Hashtbl.t;  (* live on this worker *)
  threads : (int, Thread.t) Hashtbl.t;  (* handler threads, joined by the domain *)
}

type t = {
  config : config;
  transport : Transport.t;
  the_store : Store.t;
  stopping : bool Atomic.t;  (* shared with the accept loop: drain flag *)
  fault : (worker:int -> unit) option;
  mutex : Mutex.t;
  cond : Condition.t;
  workers : worker array;
  mutable rr : int;  (* round-robin tiebreak for dispatch *)
  mutable breaker : bool;
  mutable total_spawns : int;
  crash_log : float Queue.t;  (* crash instants inside the breaker window *)
  next_conn_id : int Atomic.t;
  inflight : int Atomic.t;
  c : counters;
  shm_dir : string option;  (* session directory; [None] = shm disabled *)
  shm_hooks : Shm.hooks;
  mutable sup_thread : Thread.t option;
  joined : bool Atomic.t;
}

let stats t =
  {
    accepted = Atomic.get t.c.c_accepted;
    shed_connections = Atomic.get t.c.c_shed_connections;
    requests_served = Atomic.get t.c.c_requests_served;
    queries_served = Atomic.get t.c.c_queries_served;
    degraded_served = Atomic.get t.c.c_degraded_served;
    timeouts = Atomic.get t.c.c_timeouts;
    overloaded = Atomic.get t.c.c_overloaded;
    bad_requests = Atomic.get t.c.c_bad_requests;
    store_errors = Atomic.get t.c.c_store_errors;
    connection_crashes = Atomic.get t.c.c_connection_crashes;
    accept_failures = Atomic.get t.c.c_accept_failures;
    dispatched = Atomic.get t.c.c_dispatched;
    worker_crashes = Atomic.get t.c.c_worker_crashes;
    worker_restarts = Atomic.get t.c.c_worker_restarts;
    worker_lost_replies = Atomic.get t.c.c_worker_lost_replies;
    breaker_trips = Atomic.get t.c.c_breaker_trips;
    shm_sessions = Atomic.get t.c.c_shm_sessions;
    shm_served = Atomic.get t.c.c_shm_served;
    shm_reaped = Atomic.get t.c.c_shm_reaped;
  }

let counters t = t.c

(* ---- replies ---------------------------------------------------- *)

let prefix = Wire.frame_prefix_bytes
let header = Wire.reply_header_bytes

(* Where a reply goes: the connection's socket, or its shm ring (with
   the socket kept as fallback for replies the ring cannot carry — a
   ring frame is capped at half the ring, a socket frame at
   [max_frame_bytes], and the client matches replies by request id on
   both channels at once). *)
type reply_via =
  | Via_sock of Unix.file_descr
  | Via_ring of Shm.t * Unix.file_descr

let send_reply t via outbuf ~status ~req_id ~epoch ~payload_len =
  Wire.ensure outbuf (prefix + payload_len);
  let b = !outbuf in
  Wire.set_u8 b prefix (Wire.status_to_int status);
  Wire.set_u32 b (prefix + 1) req_id;
  Wire.set_u32 b (prefix + 5) epoch;
  match via with
  | Via_sock fd -> Wire.send_frame t.transport fd b ~payload_len
  | Via_ring (ring, fd) ->
    if Shm.tx_fits ring ~len:payload_len then
      Shm.send ring b ~off:prefix ~len:payload_len
        ~hb_timeout:t.config.shm_heartbeat_timeout
    else Wire.send_frame t.transport fd b ~payload_len

let send_error t via outbuf ~status ~req_id msg =
  let payload_len = Wire.put_string16 outbuf (prefix + header) msg - prefix in
  (match status with
  | Wire.Err_timeout -> bump t.c.c_timeouts
  | Wire.Err_overloaded -> bump t.c.c_overloaded
  | Wire.Err_bad_request -> bump t.c.c_bad_requests
  | Wire.Err_unknown_circuit | Wire.Err_store -> bump t.c.c_store_errors
  | Wire.Err_worker_lost -> bump t.c.c_worker_lost_replies
  | _ -> ());
  send_reply t via outbuf ~status ~req_id ~epoch:0 ~payload_len

(* Farewell on a shed or draining connection: best effort, then close. *)
let farewell t fd status msg =
  let outbuf = ref (Bytes.create 64) in
  (try
     let payload_len = Wire.put_string16 outbuf (prefix + header) msg - prefix in
     let b = !outbuf in
     Wire.set_u8 b prefix (Wire.status_to_int status);
     Wire.set_u32 b (prefix + 1) 0;
     Wire.set_u32 b (prefix + 5) 0;
     Wire.send_frame t.transport fd b ~payload_len
   with Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let shutdown_fd ?(how = Unix.SHUTDOWN_ALL) fd =
  try Unix.shutdown fd how with Unix.Unix_error _ -> ()

(* ---- crash, backoff, breaker ------------------------------------ *)

(* All under [t.mutex]. *)

let prune_crash_log t now =
  while
    (not (Queue.is_empty t.crash_log))
    && Queue.peek t.crash_log < now -. t.config.breaker_window
  do
    ignore (Queue.pop t.crash_log)
  done

let trip_breaker t =
  if not t.breaker then begin
    t.breaker <- true;
    bump t.c.c_breaker_trips;
    (* Degraded single-worker mode: every slot but 0 is parked.  Their
       live connections finish what is in flight (receive side severed,
       send side left open for typed farewells) and then close. *)
    Array.iter
      (fun w ->
        if w.slot > 0 then begin
          (match w.state with
          | Wire.W_up ->
            Atomic.set w.gen.g_alive false;
            Hashtbl.iter (fun _ c -> shutdown_fd ~how:Unix.SHUTDOWN_RECEIVE c.fd) w.conns
          | Wire.W_restarting | Wire.W_disabled -> ());
          w.state <- Wire.W_disabled
        end)
      t.workers
  end

(* First observer of a dead generation marks it, severs the worker's
   receive sides (handlers wake with EOF; mid-batch handlers answer
   [Err_worker_lost] at their next checkpoint) and schedules the
   exponential-backoff respawn.  Idempotent per generation. *)
let crash t w gen =
  Mutex.lock t.mutex;
  (if w.gen == gen && Atomic.get gen.g_alive then begin
     Atomic.set gen.g_alive false;
     bump t.c.c_worker_crashes;
     let now = Unix.gettimeofday () in
     prune_crash_log t now;
     Queue.push now t.crash_log;
     let recent = Queue.length t.crash_log in
     let delay =
       Float.min t.config.restart_max_delay
         (t.config.restart_base_delay *. (2.0 ** float_of_int (max 0 (recent - 1))))
     in
     w.state <- Wire.W_restarting;
     w.restart_at <- now +. delay;
     Hashtbl.iter (fun _ c -> shutdown_fd ~how:Unix.SHUTDOWN_RECEIVE c.fd) w.conns;
     if recent > t.config.breaker_max_restarts then trip_breaker t;
     Condition.broadcast t.cond
   end);
  Mutex.unlock t.mutex

let kill_worker t slot =
  if slot < 0 || slot >= Array.length t.workers then false
  else begin
    let w = t.workers.(slot) in
    Mutex.lock t.mutex;
    let gen = w.gen in
    let up = w.state = Wire.W_up in
    Mutex.unlock t.mutex;
    if up then crash t w gen;
    up
  end

(* ---- request handling ------------------------------------------- *)

exception Deadline_hit
exception Worker_lost_hit

type conn_state = {
  session : Structure.Engine.session;
  handles : (int, string) Hashtbl.t;
  mutable next_handle : int;
  inbuf : Bytes.t ref;
  outbuf : Bytes.t ref;
  mutable w_scratch : int array;
  mutable h_scratch : int array;
  mutable ring : Shm.t option;  (* set by an accepted [Shm_hello] *)
}

let scratch_for state n =
  if Array.length state.w_scratch <> n then begin
    state.w_scratch <- Array.make n 1;
    state.h_scratch <- Array.make n 1
  end;
  (state.w_scratch, state.h_scratch)

let store_error_reply t via outbuf ~req_id err =
  let status =
    match err with
    | Store.Unknown_circuit _ -> Wire.Err_unknown_circuit
    | Store.Unreadable _ | Store.Corrupt _ -> Wire.Err_store
  in
  send_error t via outbuf ~status ~req_id (Store.error_to_string err)

let served t ~degraded ~queries =
  bump t.c.c_requests_served;
  add t.c.c_queries_served queries;
  if degraded then bump t.c.c_degraded_served

(* Decode the dims of query [i] straight out of the validated payload
   (bounds were checked once for the whole batch; dims are u16 on the
   wire).  The scratch arrays are aliased into the [Dims.t] without a
   copy — the engine reads dims only for the duration of the call, so
   the next query may safely overwrite them.  The zero-dim check is
   folded into the decode loop: [v - 1] is negative exactly when a u16
   is zero, and a bad request surfaces as [Invalid_argument]. *)
let dims_at buf ~base ~n i (w, h) =
  let off = base + (i * 4 * n) in
  let acc = ref 0 in
  for j = 0 to n - 1 do
    let wv = Bytes.get_uint16_le buf (off + (j * 4)) in
    let hv = Bytes.get_uint16_le buf (off + (j * 4) + 2) in
    w.(j) <- wv;
    h.(j) <- hv;
    acc := !acc lor (wv - 1) lor (hv - 1)
  done;
  if !acc < 0 then invalid_arg "zero dimension on the wire";
  Dims.unsafe_of_arrays ~w ~h

(* Batch checkpoint: the deadline and the worker's generation — a
   request on a dying worker stops with a typed [Err_worker_lost]
   instead of burning a dead domain's time. *)
let check_progress gen deadline =
  (match deadline with
  | Some d when Unix.gettimeofday () > d -> raise Deadline_hit
  | _ -> ());
  if not (Atomic.get gen.g_alive) then raise Worker_lost_hit

let handle_batch t gen via state ~req_id ~deadline ~len ~instantiate =
  let buf = !(state.inbuf) in
  let handle = Wire.get_u16 buf ~len 9 in
  let count = Wire.get_u32 buf ~len 11 in
  match Hashtbl.find_opt state.handles handle with
  | None ->
    send_error t via state.outbuf ~status:Wire.Err_bad_request ~req_id
      (Printf.sprintf "unknown handle %d (open the circuit first)" handle)
  | Some name -> (
    match Store.get t.the_store name with
    | Error err -> store_error_reply t via state.outbuf ~req_id err
    | Ok entry ->
      let n = Circuit.n_blocks entry.Store.circuit in
      let expected = 15 + (count * 4 * n) in
      if count > t.config.max_batch then
        send_error t via state.outbuf ~status:Wire.Err_bad_request ~req_id
          (Printf.sprintf "batch of %d exceeds the %d-query cap" count
             t.config.max_batch)
      else if len <> expected then
        send_error t via state.outbuf ~status:Wire.Err_bad_request ~req_id
          (Printf.sprintf "payload is %d bytes, %d expected for %d %d-block queries"
             len expected count n)
      else begin
        let scratch = scratch_for state n in
        let ring = match via with Via_ring _ -> true | Via_sock _ -> false in
        (* On the ring, batch replies carry a kind byte after the
           header: 0 = inline payload (ids / rects), 1 = descriptors —
           [(id, word offset, word length)] spans of the winning
           placement records inside the mapped container the client
           reads directly.  Descriptors need the entry mapped and not
           demoted to backup-only (the backup's answer is not a stored
           record). *)
        let descr =
          if ring && not instantiate && not entry.Store.backup_only then
            entry.Store.container
          else None
        in
        let kb = if ring then 1 else 0 in
        let item =
          if instantiate then 16 * n else if descr <> None then 12 else 4
        in
        let body = header + kb + (4 + (count * item)) in
        Wire.ensure state.outbuf (prefix + body);
        let out = !(state.outbuf) in
        if ring then
          Wire.set_u8 out (prefix + header) (if descr <> None then 1 else 0);
        Wire.set_u32 out (prefix + header + kb) count;
        let base = 15 in
        let out_base = prefix + header + kb + 4 in
        let backup = Structure.Engine.backup entry.Store.engine in
        match
          for i = 0 to count - 1 do
            if i land 255 = 0 then check_progress gen deadline;
            let dims = dims_at buf ~base ~n i scratch in
            if instantiate then begin
              let rects =
                if entry.Store.backup_only then Stored.instantiate_repacked backup dims
                else
                  Structure.Engine.instantiate_into entry.Store.engine state.session
                    dims
              in
              let off = out_base + (i * item) in
              for j = 0 to n - 1 do
                let r = rects.(j) in
                Wire.set_i32 out (off + (j * 16)) r.Rect.x;
                Wire.set_i32 out (off + (j * 16) + 4) r.Rect.y;
                Wire.set_i32 out (off + (j * 16) + 8) r.Rect.w;
                Wire.set_i32 out (off + (j * 16) + 12) r.Rect.h
              done
            end
            else begin
              let id =
                if entry.Store.backup_only then
                  if Circuit.dims_valid entry.Store.circuit dims then -1 else -2
                else Structure.Engine.query_id entry.Store.engine state.session dims
              in
              let off = out_base + (i * item) in
              Wire.set_i32 out off id;
              match descr with
              | None -> ()
              | Some c ->
                let roff, rlen =
                  if id >= 0 then
                    (c.Store.c_record_off + (id * c.Store.c_record_stride),
                     c.Store.c_record_stride)
                  else (0, 0)
                in
                Wire.set_u32 out (off + 4) roff;
                Wire.set_u32 out (off + 8) rlen
            end
          done
        with
        | () ->
          let degraded = entry.Store.degraded in
          served t ~degraded ~queries:count;
          send_reply t via state.outbuf
            ~status:(if degraded then Wire.Ok_degraded else Wire.Ok)
            ~req_id ~epoch:entry.Store.epoch ~payload_len:body
        | exception Deadline_hit ->
          send_error t via state.outbuf ~status:Wire.Err_timeout ~req_id
            "deadline expired mid-batch"
        | exception Worker_lost_hit ->
          send_error t via state.outbuf ~status:Wire.Err_worker_lost ~req_id
            "worker lost mid-batch"
        | exception Invalid_argument m ->
          send_error t via state.outbuf ~status:Wire.Err_bad_request ~req_id
            (Printf.sprintf "bad dimension vector: %s" m)
      end)

let handle_open t via state ~req_id ~len =
  let buf = !(state.inbuf) in
  let name, _ = Wire.get_string16 buf ~len 9 in
  match Store.get t.the_store name with
  | Error err -> store_error_reply t via state.outbuf ~req_id err
  | Ok entry ->
    if state.next_handle > 0xffff then
      send_error t via state.outbuf ~status:Wire.Err_bad_request ~req_id
        "handle space exhausted on this connection"
    else begin
      let handle = state.next_handle in
      state.next_handle <- handle + 1;
      Hashtbl.replace state.handles handle name;
      (* The fixed head, then the container trailer (u8 present, and
         when 1: u32 total words + string16 path) — appended on both
         channels; pre-trailer clients read fixed offsets only, so the
         extra bytes are invisible to them. *)
      let o = prefix + header + 9 in
      let body_end =
        match entry.Store.container with
        | None ->
          Wire.ensure state.outbuf (o + 1);
          o + 1
        | Some c -> Wire.put_string16 state.outbuf (o + 5) c.Store.c_path
      in
      let out = !(state.outbuf) in
      Wire.set_u16 out (prefix + header) handle;
      Wire.set_u8 out (prefix + header + 2) (if entry.Store.degraded then 1 else 0);
      Wire.set_u16 out (prefix + header + 3) (Circuit.n_blocks entry.Store.circuit);
      Wire.set_u32 out (prefix + header + 5)
        (Structure.Engine.n_stored entry.Store.engine);
      (match entry.Store.container with
      | None -> Wire.set_u8 out o 0
      | Some c ->
        Wire.set_u8 out o 1;
        Wire.set_u32 out (o + 1) c.Store.c_words);
      served t ~degraded:entry.Store.degraded ~queries:0;
      send_reply t via state.outbuf
        ~status:(if entry.Store.degraded then Wire.Ok_degraded else Wire.Ok)
        ~req_id ~epoch:entry.Store.epoch ~payload_len:(body_end - prefix)
    end

let handle_reload t via state ~req_id ~len =
  let buf = !(state.inbuf) in
  let name, _ = Wire.get_string16 buf ~len 9 in
  match Store.reload t.the_store name with
  | Error err -> store_error_reply t via state.outbuf ~req_id err
  | Ok entry ->
    let body = header + 1 in
    Wire.ensure state.outbuf (prefix + body);
    Wire.set_u8 !(state.outbuf) (prefix + header)
      (if entry.Store.degraded then 1 else 0);
    served t ~degraded:entry.Store.degraded ~queries:0;
    send_reply t via state.outbuf
      ~status:(if entry.Store.degraded then Wire.Ok_degraded else Wire.Ok)
      ~req_id ~epoch:entry.Store.epoch ~payload_len:body

(* Negotiate the shm fast path: allocate this connection's ring file
   and tell the client where to map it.  Declined — typed, on the
   wire, accepted=0 — when shm is disabled, when the hello did not
   arrive on the socket, or when the session already has a ring; the
   client then simply stays on the socket. *)
let handle_shm_hello t conn state ~req_id ~via =
  let answer ring =
    let o = prefix + header in
    let body_end =
      match ring with
      | None ->
        Wire.ensure state.outbuf (o + 1);
        o + 1
      | Some r -> Wire.put_string16 state.outbuf (o + 5) (Shm.path r)
    in
    let out = !(state.outbuf) in
    (match ring with
    | None -> Wire.set_u8 out o 0
    | Some r ->
      Wire.set_u8 out o 1;
      Wire.set_u32 out (o + 1) (Shm.ring_words_of_t r));
    served t ~degraded:false ~queries:0;
    send_reply t via state.outbuf ~status:Wire.Ok ~req_id ~epoch:0
      ~payload_len:(body_end - prefix)
  in
  match (t.shm_dir, via, state.ring) with
  | Some dir, Via_sock _, None -> (
    let path = Filename.concat dir (Printf.sprintf "sess-%d.ring" conn.conn_id) in
    match
      Shm.create ~hooks:t.shm_hooks ~ring_words:t.config.shm_ring_words ~path ()
    with
    | ring ->
      state.ring <- Some ring;
      bump t.c.c_shm_sessions;
      answer (Some ring)
    | exception (Sys_error _ | Invalid_argument _) -> answer None)
  | _ -> answer None

(* ---- health ------------------------------------------------------ *)

let health t =
  Mutex.lock t.mutex;
  let workers =
    Array.map
      (fun w ->
        {
          Wire.w_state = w.state;
          w_restarts = w.restarts;
          w_queue = Queue.length w.q;
          w_conns = Hashtbl.length w.conns;
          w_epoch = w.gen.g_epoch;
        })
      t.workers
  in
  let draining = Atomic.get t.stopping in
  let ready =
    (not draining) && Array.exists (fun w -> w.Wire.w_state = Wire.W_up) workers
  in
  let h =
    { Wire.ready; draining; breaker = t.breaker; epoch = t.total_spawns; workers }
  in
  Mutex.unlock t.mutex;
  h

let handle_health t via state ~req_id =
  let h = health t in
  let payload_len = Wire.put_health state.outbuf (prefix + header) h - prefix in
  served t ~degraded:false ~queries:0;
  send_reply t via state.outbuf ~status:Wire.Ok ~req_id ~epoch:0 ~payload_len

let stats_text t =
  let s = stats t in
  let h = health t in
  Store.describe t.the_store
  ^ Printf.sprintf
      "accepted %d, shed %d, served %d requests / %d queries (%d degraded), timeouts \
       %d, overloaded %d, bad %d, store errors %d, conn crashes %d, accept failures \
       %d\n\
       workers: %s\n\
       dispatched %d, worker crashes %d, restarts %d, worker-lost replies %d, breaker \
       trips %d\n\
       shm: %d sessions, %d requests served, %d reaped\n"
      s.accepted s.shed_connections s.requests_served s.queries_served s.degraded_served
      s.timeouts s.overloaded s.bad_requests s.store_errors s.connection_crashes
      s.accept_failures (Wire.health_to_string h) s.dispatched s.worker_crashes
      s.worker_restarts s.worker_lost_replies s.breaker_trips s.shm_sessions
      s.shm_served s.shm_reaped

let apply_fault t w =
  match t.fault with None -> () | Some hook -> hook ~worker:w.slot

let handle_request t w gen conn state ~via ~len =
  let buf = !(state.inbuf) in
  let now = Unix.gettimeofday () in
  match
    let opcode_i = Wire.get_u8 buf ~len 0 in
    let req_id = Wire.get_u32 buf ~len 1 in
    let deadline_us = Wire.get_u32 buf ~len 5 in
    (opcode_i, req_id, deadline_us)
  with
  | exception Wire.Truncated _ ->
    bump t.c.c_bad_requests;
    send_reply t via state.outbuf ~status:Wire.Err_bad_request ~req_id:0 ~epoch:0
      ~payload_len:
        (Wire.put_string16 state.outbuf (prefix + header) "short request header"
        - prefix)
  | opcode_i, req_id, deadline_us -> (
    let deadline =
      if deadline_us = 0 then None else Some (now +. (float_of_int deadline_us *. 1e-6))
    in
    let inflight = 1 + Atomic.fetch_and_add t.inflight 1 in
    Fun.protect
      ~finally:(fun () -> Atomic.decr t.inflight)
      (fun () ->
        if Atomic.get t.stopping then
          send_error t via state.outbuf ~status:Wire.Err_shutting_down ~req_id
            "daemon is draining"
        else if not (Atomic.get gen.g_alive) then
          (* this worker died while the request was queued on the
             socket: a typed, retryable answer, not silence *)
          send_error t via state.outbuf ~status:Wire.Err_worker_lost ~req_id
            "worker crashed before serving"
        else if inflight > t.config.max_inflight then
          send_error t via state.outbuf ~status:Wire.Err_overloaded ~req_id
            (Printf.sprintf "%d requests in flight (limit %d)" inflight
               t.config.max_inflight)
        else
          match Wire.opcode_of_int opcode_i with
          | None ->
            send_error t via state.outbuf ~status:Wire.Err_bad_request ~req_id
              (Printf.sprintf "unknown opcode %d" opcode_i)
          | Some _ when deadline <> None && Unix.gettimeofday () > Option.get deadline
            ->
            (* expired before any work (queueing, a store load ahead of
               us): a typed timeout, not a late answer *)
            send_error t via state.outbuf ~status:Wire.Err_timeout ~req_id
              "deadline expired before serving"
          | Some opcode -> (
            match apply_fault t w with
            | exception Worker_killed ->
              (* the injected crash: answer the in-flight request with
                 the typed loss, then take the worker down *)
              send_error t via state.outbuf ~status:Wire.Err_worker_lost ~req_id
                "worker crashed mid-request";
              raise Worker_killed
            | () -> (
              match opcode with
              | Wire.Ping ->
                served t ~degraded:false ~queries:0;
                send_reply t via state.outbuf ~status:Wire.Ok ~req_id ~epoch:0
                  ~payload_len:header
              | Wire.Health -> handle_health t via state ~req_id
              | Wire.Shm_hello -> handle_shm_hello t conn state ~req_id ~via
              | Wire.Open_circuit -> (
                match handle_open t via state ~req_id ~len with
                | () -> ()
                | exception Wire.Truncated m ->
                  send_error t via state.outbuf ~status:Wire.Err_bad_request ~req_id m)
              | Wire.Reload -> (
                match handle_reload t via state ~req_id ~len with
                | () -> ()
                | exception Wire.Truncated m ->
                  send_error t via state.outbuf ~status:Wire.Err_bad_request ~req_id m)
              | Wire.Stats ->
                let text = stats_text t in
                let payload_len =
                  Wire.put_string16 state.outbuf (prefix + header) text - prefix
                in
                served t ~degraded:false ~queries:0;
                send_reply t via state.outbuf ~status:Wire.Ok ~req_id ~epoch:0
                  ~payload_len
              | (Wire.Query_batch | Wire.Instantiate_batch) as op -> (
                let instantiate = op = Wire.Instantiate_batch in
                match handle_batch t gen via state ~req_id ~deadline ~len ~instantiate with
                | () -> ()
                | exception Wire.Truncated m ->
                  send_error t via state.outbuf ~status:Wire.Err_bad_request ~req_id m))
            )))

(* ---- connection lifecycle --------------------------------------- *)

let unregister t w conn =
  Mutex.lock t.mutex;
  Hashtbl.remove w.conns conn.conn_id;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

(* Ring-serving mode, entered after an accepted [Shm_hello]: drain the
   request ring, poll the socket (now the control channel) when the
   ring runs dry, and judge peer liveness by heartbeat.  Exits — and
   reaps the session: close flag, unlink — on client close (flag or
   socket EOF), stale heartbeat (the kill -9 case), idle timeout,
   generation death or drain.  The loop spins briefly before backing
   off to nanosleep, so a streaming client is served with no syscall
   per request while an idle session costs one [select] per sleep. *)
let serve_ring t w gen conn state ring =
  let via = Via_ring (ring, conn.fd) in
  let hb_to = t.config.shm_heartbeat_timeout in
  let attach_grace = Unix.gettimeofday () +. (2.0 *. hb_to) in
  let idle_deadline = ref (Unix.gettimeofday () +. t.config.idle_timeout) in
  let continue = ref true in
  let spins = ref 0 in
  (try
     while !continue && Atomic.get gen.g_alive && not (Atomic.get t.stopping) do
       Shm.heartbeat ring;
       match Shm.try_recv ring ~buf:state.inbuf with
       | Some len -> (
         spins := 0;
         idle_deadline := Unix.gettimeofday () +. t.config.idle_timeout;
         bump t.c.c_shm_served;
         match handle_request t w gen conn state ~via ~len with
         | () -> ()
         | exception Worker_killed ->
           crash t w gen;
           continue := false)
       | None ->
         if !spins < 200 then begin
           incr spins;
           Domain.cpu_relax ()
         end
         else if !spins < 232 then begin
           (* same middle gear as [Shm.wait_step]: on a core shared
              with the client, yield beats both spinning and the
              200 us sleep *)
           incr spins;
           Thread.yield ()
         end
         else begin
           (match Unix.select [ conn.fd ] [] [] 0.0 with
           | [], _, _ -> ()
           | _, _, _ -> (
             match
               Wire.recv_frame t.transport ~max_bytes:t.config.max_frame_bytes
                 ~buf:state.inbuf conn.fd
             with
             | len -> (
               idle_deadline := Unix.gettimeofday () +. t.config.idle_timeout;
               match
                 handle_request t w gen conn state ~via:(Via_sock conn.fd) ~len
               with
               | () -> ()
               | exception Worker_killed ->
                 crash t w gen;
                 continue := false)
             | exception Wire.Closed ->
               (* clean exit or kill -9: either way the socket EOF is
                  the immediate reap signal *)
               continue := false)
           | exception Unix.Unix_error _ -> continue := false);
           let now = Unix.gettimeofday () in
           if Shm.peer_closed ring then continue := false
           else if now > !idle_deadline then continue := false
           else if Shm.peer_started ring then begin
             if not (Shm.peer_alive ring ~timeout:hb_to) then continue := false
           end
           else if now > attach_grace then continue := false;
           if !continue then Thread.delay 0.0002
         end
     done
   with
  | Shm.Dead _ | Shm.Timeout -> ()
  | Wire.Truncated _ | Wire.Too_large _ | Unix.Unix_error _ | Sys_error _ ->
    bump t.c.c_connection_crashes);
  bump t.c.c_shm_reaped;
  Shm.close ring;
  Shm.remove ring

let serve_conn t w gen conn =
  let state =
    {
      session = Structure.Engine.new_session ();
      handles = Hashtbl.create 4;
      next_handle = 1;
      inbuf = ref (Bytes.create 4096);
      outbuf = ref (Bytes.create 4096);
      w_scratch = [||];
      h_scratch = [||];
      ring = None;
    }
  in
  (try
     let continue = ref true in
     while !continue && Atomic.get gen.g_alive do
       let idle_deadline = Unix.gettimeofday () +. t.config.idle_timeout in
       match
         Wire.recv_frame t.transport ~deadline:idle_deadline
           ~max_bytes:t.config.max_frame_bytes ~buf:state.inbuf conn.fd
       with
       | exception Wire.Closed -> continue := false
       | exception Wire.Timed_out ->
         (* idle or dribbling a frame for idle_timeout: drop it *)
         continue := false
       | len -> (
         match handle_request t w gen conn state ~via:(Via_sock conn.fd) ~len with
         | () -> (
           match state.ring with
           | Some ring ->
             (* the hello was accepted: the rest of this connection is
                served off the ring, then the session dies with it *)
             serve_ring t w gen conn state ring;
             continue := false
           | None -> ())
         | exception Worker_killed ->
           (* this handler observed the injected worker crash (and has
              already answered its request Err_worker_lost): initiate
              the supervised restart and put this connection down *)
           crash t w gen;
           continue := false)
     done
   with
  | Wire.Truncated _ | Wire.Too_large _ | Unix.Unix_error _ | Sys_error _ ->
    (* torn frame, abusive length or transport failure: this
       connection is done, the daemon is not *)
    bump t.c.c_connection_crashes
  | _ ->
    (* anything else (engine invariant, decode bug): same isolation *)
    bump t.c.c_connection_crashes);
  (match state.ring with
  | Some ring ->
    Shm.close ring;
    Shm.remove ring
  | None -> ());
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  unregister t w conn

(* The worker domain: pick accepted connections off this slot's queue
   and serve each on its own (domain-local) thread.  On the way out —
   crash, breaker, or daemon stop — join every handler thread spawned
   in this generation so the domain never exits under live threads. *)
let worker_main t w gen =
  let finished = ref [] in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while
      Queue.is_empty w.q
      && Atomic.get gen.g_alive
      && not (Atomic.get t.stopping)
    do
      Condition.wait t.cond t.mutex
    done;
    if (not (Atomic.get gen.g_alive)) || Atomic.get t.stopping then begin
      running := false;
      Mutex.unlock t.mutex
    end
    else begin
      let fd = Queue.pop w.q in
      let conn = { conn_id = Atomic.fetch_and_add t.next_conn_id 1; fd } in
      Hashtbl.replace w.conns conn.conn_id conn;
      let th = Thread.create (fun () -> serve_conn t w gen conn) () in
      Hashtbl.replace w.threads conn.conn_id th;
      (* sweep handler threads whose connection is gone, so the table
         stays bounded by live connections on a long-lived worker *)
      Hashtbl.iter
        (fun id th -> if not (Hashtbl.mem w.conns id) then finished := (id, th) :: !finished)
        w.threads;
      List.iter (fun (id, _) -> Hashtbl.remove w.threads id) !finished;
      Mutex.unlock t.mutex;
      List.iter (fun (_, th) -> Thread.join th) !finished;
      finished := []
    end
  done;
  Mutex.lock t.mutex;
  let remaining = Hashtbl.fold (fun _ th acc -> th :: acc) w.threads [] in
  Hashtbl.reset w.threads;
  Mutex.unlock t.mutex;
  List.iter Thread.join remaining

(* ---- spawn / respawn / supervision ------------------------------ *)

(* Under [t.mutex]. *)
let spawn_locked t w =
  t.total_spawns <- t.total_spawns + 1;
  let gen = { g_epoch = t.total_spawns; g_alive = Atomic.make true } in
  w.gen <- gen;
  w.state <- Wire.W_up;
  w.domain <- Some (Domain.spawn (fun () -> worker_main t w gen))

(* Respawn a crashed slot: hard-sever whatever connections its dead
   generation still holds (a handler stuck in a blocking send must not
   stall the restart), join the old domain outside the lock, then
   spawn the replacement. *)
let respawn t w =
  Mutex.lock t.mutex;
  Hashtbl.iter (fun _ c -> shutdown_fd c.fd) w.conns;
  Condition.broadcast t.cond;
  let old = w.domain in
  w.domain <- None;
  Mutex.unlock t.mutex;
  (match old with Some d -> Domain.join d | None -> ());
  Mutex.lock t.mutex;
  if (not (Atomic.get t.stopping)) && w.state = Wire.W_restarting then begin
    w.restarts <- w.restarts + 1;
    bump t.c.c_worker_restarts;
    spawn_locked t w
  end;
  Mutex.unlock t.mutex

(* Connections stranded on a queue no live worker will drain: try to
   re-dispatch to an up worker with queue space, else shed with the
   typed loss so the client's retry reconnects. *)
let rescue_queued t w =
  let orphans = ref [] in
  Mutex.lock t.mutex;
  while not (Queue.is_empty w.q) do
    orphans := Queue.pop w.q :: !orphans
  done;
  let orphans = List.rev !orphans in
  let requeued =
    List.filter
      (fun fd ->
        let target =
          Array.fold_left
            (fun best cand ->
              if cand.state = Wire.W_up && Queue.length cand.q < t.config.queue_capacity
              then
                match best with
                | Some b when Queue.length b.q <= Queue.length cand.q -> best
                | _ -> Some cand
              else best)
            None t.workers
        in
        match target with
        | Some cand ->
          Queue.push fd cand.q;
          false
        | None -> true)
      orphans
  in
  if orphans <> [] then Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  List.iter
    (fun fd ->
      bump t.c.c_shed_connections;
      farewell t fd Wire.Err_worker_lost "no worker available (restarting)")
    requeued

let supervision_loop t =
  while not (Atomic.get t.stopping) do
    let now = Unix.gettimeofday () in
    let due = ref [] in
    Mutex.lock t.mutex;
    Array.iter
      (fun w ->
        match w.state with
        | Wire.W_restarting ->
          if t.breaker && w.slot > 0 then w.state <- Wire.W_disabled
          else if now >= w.restart_at then due := w :: !due
        | Wire.W_up | Wire.W_disabled -> ())
      t.workers;
    Mutex.unlock t.mutex;
    List.iter
      (fun w ->
        rescue_queued t w;
        respawn t w)
      !due;
    Array.iter
      (fun w -> if w.state <> Wire.W_up then rescue_queued t w)
      t.workers;
    Thread.delay 0.002
  done

let create ?fault ?(shm_hooks = Shm.no_hooks) ~(config : config) ~transport ~store
    ~stopping () =
  if config.workers < 1 then invalid_arg "Supervisor.create: workers < 1";
  if config.queue_capacity < 1 then invalid_arg "Supervisor.create: queue_capacity < 1";
  (* The session directory: daemon-owned, created on demand, swept of
     ring files a previous daemon life left behind (their sessions
     cannot be live — the negotiating sockets died with the daemon).
     Any failure here degrades to shm-disabled, never a dead daemon. *)
  let shm_dir =
    if not config.shm then None
    else begin
      let dir =
        match config.shm_dir with
        | Some d -> d
        | None -> Filename.concat (Store.dir store) ".shm"
      in
      match
        (try Unix.mkdir dir 0o700
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        Array.iter
          (fun f ->
            if Filename.check_suffix f ".ring" then
              try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
          (Sys.readdir dir)
      with
      | () -> Some dir
      | exception (Unix.Unix_error _ | Sys_error _) -> None
    end
  in
  let t =
    {
      config;
      transport;
      the_store = store;
      stopping;
      fault;
      mutex = Mutex.create ();
      cond = Condition.create ();
      workers =
        Array.init config.workers (fun slot ->
            {
              slot;
              q = Queue.create ();
              gen = { g_epoch = 0; g_alive = Atomic.make false };
              state = Wire.W_restarting;
              restarts = 0;
              restart_at = 0.0;
              domain = None;
              conns = Hashtbl.create 8;
              threads = Hashtbl.create 8;
            });
      rr = 0;
      breaker = false;
      total_spawns = 0;
      crash_log = Queue.create ();
      next_conn_id = Atomic.make 1;
      inflight = Atomic.make 0;
      c =
        {
          c_accepted = Atomic.make 0;
          c_shed_connections = Atomic.make 0;
          c_requests_served = Atomic.make 0;
          c_queries_served = Atomic.make 0;
          c_degraded_served = Atomic.make 0;
          c_timeouts = Atomic.make 0;
          c_overloaded = Atomic.make 0;
          c_bad_requests = Atomic.make 0;
          c_store_errors = Atomic.make 0;
          c_connection_crashes = Atomic.make 0;
          c_accept_failures = Atomic.make 0;
          c_dispatched = Atomic.make 0;
          c_worker_crashes = Atomic.make 0;
          c_worker_restarts = Atomic.make 0;
          c_worker_lost_replies = Atomic.make 0;
          c_breaker_trips = Atomic.make 0;
          c_shm_sessions = Atomic.make 0;
          c_shm_served = Atomic.make 0;
          c_shm_reaped = Atomic.make 0;
        };
      shm_dir;
      shm_hooks;
      sup_thread = None;
      joined = Atomic.make false;
    }
  in
  Mutex.lock t.mutex;
  Array.iter (fun w -> spawn_locked t w) t.workers;
  Mutex.unlock t.mutex;
  t.sup_thread <- Some (Thread.create supervision_loop t);
  t

(* ---- dispatch ---------------------------------------------------- *)

type verdict = Dispatched | Backpressure | No_worker

let dispatch t fd =
  Mutex.lock t.mutex;
  let n = Array.length t.workers in
  let best = ref None in
  let any_up = ref false in
  for i = 0 to n - 1 do
    let w = t.workers.((t.rr + i) mod n) in
    if w.state = Wire.W_up then begin
      any_up := true;
      if Queue.length w.q < t.config.queue_capacity then begin
        let load = Queue.length w.q + Hashtbl.length w.conns in
        match !best with
        | Some (_, l) when l <= load -> ()
        | _ -> best := Some (w, load)
      end
    end
  done;
  t.rr <- (t.rr + 1) mod n;
  let verdict =
    match !best with
    | Some (w, _) ->
      Queue.push fd w.q;
      bump t.c.c_dispatched;
      Condition.broadcast t.cond;
      Dispatched
    | None -> if !any_up then Backpressure else No_worker
  in
  Mutex.unlock t.mutex;
  verdict

let conn_count t =
  Mutex.lock t.mutex;
  let n =
    Array.fold_left
      (fun acc w -> acc + Queue.length w.q + Hashtbl.length w.conns)
      0 t.workers
  in
  Mutex.unlock t.mutex;
  n

let notify_stop t =
  Mutex.lock t.mutex;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

(* ---- drain / shutdown -------------------------------------------- *)

let sever t ~how =
  Mutex.lock t.mutex;
  Array.iter
    (fun w -> Hashtbl.iter (fun _ c -> shutdown_fd ~how c.fd) w.conns)
    t.workers;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let begin_drain t =
  (* connections accepted but never picked up by a worker get the
     draining farewell instead of a silent close *)
  let queued = ref [] in
  Mutex.lock t.mutex;
  Array.iter
    (fun w ->
      while not (Queue.is_empty w.q) do
        queued := Queue.pop w.q :: !queued
      done)
    t.workers;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  List.iter
    (fun fd ->
      bump t.c.c_shed_connections;
      farewell t fd Wire.Err_shutting_down "daemon is draining")
    !queued;
  sever t ~how:Unix.SHUTDOWN_RECEIVE

let sever_all t = sever t ~how:Unix.SHUTDOWN_ALL

(* Final teardown: assumes [t.stopping] is already set and, for a
   graceful stop, that the caller has waited out its drain budget.
   Close queued-but-never-served fds, join the supervision thread and
   every worker domain.  Idempotent. *)
let join t =
  if not (Atomic.exchange t.joined true) then begin
    Mutex.lock t.mutex;
    Array.iter
      (fun w ->
        while not (Queue.is_empty w.q) do
          let fd = Queue.pop w.q in
          try Unix.close fd with Unix.Unix_error _ -> ()
        done)
      t.workers;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    (match t.sup_thread with Some th -> Thread.join th | None -> ());
    Array.iter
      (fun w ->
        match w.domain with
        | Some d ->
          Domain.join d;
          w.domain <- None
        | None -> ())
      t.workers
  end

(* Quickstart: generate a multi-placement structure for the two-stage
   op-amp, then instantiate floorplans for two different sizings.

   Run with: dune exec examples/quickstart.exe *)

open Mps_geometry
open Mps_netlist
open Mps_core

let () =
  let circuit = Benchmarks.two_stage_opamp in
  Format.printf "Circuit: %a@." Circuit.pp circuit;

  (* One-time generation (Fig. 1a). *)
  Format.printf "Generating the multi-placement structure...@.";
  let structure, stats = Generator.generate ~config:Generator.fast_config circuit in
  Format.printf "  stored %d placements, coverage %.4f, %.2fs CPU@."
    stats.Generator.placements_stored stats.Generator.coverage
    stats.Generator.generation_seconds;

  (* Use in synthesis (Fig. 1b): feed dimension vectors, get floorplans. *)
  let show label dims =
    let rects, cost = Structure.instantiate_cost structure dims in
    let answer, _ = Structure.query structure dims in
    let kind =
      match answer with
      | Structure.Stored_placement id -> Printf.sprintf "placement #%d" id
      | Structure.Fallback -> "fallback template"
      | Structure.Out_of_domain -> "out-of-domain (backup template)"
    in
    Format.printf "@.%s -> %s, cost %.1f@." label kind cost;
    Array.iteri
      (fun i r ->
        Format.printf "  %-12s %a@." (Circuit.block circuit i).Block.name Rect.pp r)
      rects
  in
  let small = Circuit.min_dims circuit in
  let mid = Dimbox.center (Circuit.dim_bounds circuit) in
  show "small devices" small;
  show "mid-range devices" mid

(* Benchmark harness.

   Part 1 (bechamel): micro-benchmarks — one Test.make per Table 2
   circuit for placement instantiation, the compiled-vs-linear query
   ablation, and the per-query cost of the baseline placers (the
   motivation for the whole paper).

   Part 2: regenerates every table and figure (Table 1, Table 2,
   Figures 5-7) and the ablation reports.  Pass --quick to use the
   reduced generation budget.

   Standalone modes (nothing else runs):
   --gen-bench    times one quick-budget generation per Table 1 circuit
                  and writes machine-readable BENCH_GEN.json (circuit,
                  cost evaluations, wall seconds, evaluations/sec) for
                  the CI throughput artifact.
   --query-bench  measures per-call query and instantiation latency
                  (p50/p99 over 2048 seeded probes per circuit) and
                  writes BENCH_QUERY.json for the CI latency artifact.
   --par-bench    sweeps the parallel generator over jobs in {1,2,4,8}
                  on circ06, tso-cascode and benchmark24 (quick budget)
                  and writes BENCH_PAR.json: wall seconds, speedup,
                  per-worker scheduler counters (tasks/steals/minor
                  words) and the structure hash per job count — the
                  hashes must all be equal per circuit, which CI
                  asserts — plus a seed_baseline block with the
                  pre-work-stealing benchmark24 walls for
                  cross-revision speedup.
   --load-bench   times cold load-to-query-ready for the text format
                  (parse + recompile) vs the MPSZ container (mmap) per
                  Table 1 circuit, measures the size win of compaction,
                  cross-checks mapped vs heap answers on 4096 probes
                  each, and writes BENCH_LOAD.json — CI gates the
                  benchmark24 row (>= 10x load speedup, >= 20% bytes
                  after compact, zero mismatches).
   --shm-bench    measures the shared-memory ring (DESIGN.md §13) in
                  isolation against an echo peer in a second domain:
                  round-trip latency p50/p99 per frame size, and
                  pipelined throughput with a full window in flight.
                  Writes BENCH_SHM.json — the transport-level bound on
                  what the serve-layer fast path can deliver here.
   --jobs N       runs --gen-bench generation through the domain pool
                  with N workers. *)

open Bechamel
open Toolkit
open Mps_netlist
open Mps_core

let budget =
  if Array.exists (String.equal "--quick") Sys.argv then
    Mps_experiments.Experiments.Quick
  else Mps_experiments.Experiments.Full

(* Pre-generate one structure per circuit (quick budget: the bechamel
   subject is the query, not the generation). *)
let structures =
  lazy
    (List.map
       (fun circuit ->
         let config =
           Mps_experiments.Experiments.generator_config Mps_experiments.Experiments.Quick
             circuit
         in
         let structure, _ = Generator.generate ~config circuit in
         let probes = Mps_experiments.Experiments.probe_dims ~seed:17 ~n:256 structure in
         (circuit, structure, probes))
       Benchmarks.all)

let instantiation_tests () =
  List.map
    (fun (circuit, structure, probes) ->
      let i = ref 0 in
      Test.make ~name:circuit.Circuit.name
        (Staged.stage (fun () ->
             let dims = probes.(!i land 255) in
             incr i;
             Sys.opaque_identity (Structure.instantiate structure dims))))
    (Lazy.force structures)

let query_tests () =
  let _, structure, probes =
    List.find
      (fun (c, _, _) -> String.equal c.Circuit.name "benchmark24")
      (Lazy.force structures)
  in
  let mk name f =
    let i = ref 0 in
    Test.make ~name
      (Staged.stage (fun () ->
           let dims = probes.(!i land 255) in
           incr i;
           Sys.opaque_identity (f structure dims)))
  in
  let engine = Structure.Engine.create structure in
  let session = Structure.Engine.new_session () in
  [
    mk "compiled" Structure.query;
    mk "linear" Structure.query_linear;
    mk "engine" (fun _ dims -> Structure.Engine.query engine session dims);
  ]

let baseline_tests () =
  let circuit = Benchmarks.two_stage_opamp in
  let _, structure, probes =
    List.find
      (fun (c, _, _) -> String.equal c.Circuit.name "TwoStage Opamp")
      (Lazy.force structures)
  in
  let die_w, die_h = Structure.die structure in
  let rng = Mps_rng.Rng.create ~seed:3 in
  let template = Mps_baselines.Template_placer.build ~rng circuit ~die_w ~die_h in
  let sa_config = { Mps_baselines.Sa_placer.default_config with iterations = 1000 } in
  let i = ref 0 in
  let next () =
    let dims = probes.(!i land 255) in
    incr i;
    dims
  in
  [
    Test.make ~name:"mps"
      (Staged.stage (fun () -> Sys.opaque_identity (Structure.instantiate structure (next ()))));
    Test.make ~name:"template"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Mps_baselines.Template_placer.instantiate template (next ()))));
    Test.make ~name:"sa-placer-1k"
      (Staged.stage (fun () ->
           Sys.opaque_identity
             (Mps_baselines.Sa_placer.place ~config:sa_config ~rng circuit ~die_w ~die_h
                (next ()))));
  ]

let run_group ~name tests =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let test = Test.make_grouped ~name ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "bench group: %s (ns/run, OLS on monotonic clock)\n" name;
  let rows = ref [] in
  Hashtbl.iter
    (fun test_name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> Printf.sprintf "%.0f" e
        | Some [] | None -> "n/a"
      in
      rows := (test_name, ns) :: !rows)
    results;
  List.iter
    (fun (test_name, ns) -> Printf.printf "  %-40s %12s ns\n" test_name ns)
    (List.sort compare !rows);
  print_newline ()

(* Generation throughput: the headline number for the incremental
   delta-cost engine.  The baseline block records the same quick-budget
   benchmark24 run measured on this machine just before the engine
   landed, so the JSON carries its own speedup denominator. *)
let baseline_evaluations = 19001
let baseline_wall_seconds = 0.613

(* Optional worker count for the generation benches: "--jobs N" routes
   generation through the domain pool. *)
let jobs_arg () =
  let rec scan i =
    if i >= Array.length Sys.argv - 1 then None
    else if String.equal Sys.argv.(i) "--jobs" then int_of_string_opt Sys.argv.(i + 1)
    else scan (i + 1)
  in
  scan 1

let gen_bench () =
  let module E = Mps_experiments.Experiments in
  let jobs = jobs_arg () in
  let run circuit =
    let config = E.generator_config E.Quick circuit in
    let t0 = Unix.gettimeofday () in
    let _, stats =
      match jobs with
      | Some jobs -> Generator.generate_par ~config ~jobs circuit
      | None -> Generator.generate ~config circuit
    in
    let wall = Unix.gettimeofday () -. t0 in
    (stats.Generator.cost_evaluations, wall)
  in
  (* one warm-up generation so the first row is not charged for cold
     code paths *)
  ignore (run Benchmarks.circ01);
  let measured =
    List.map
      (fun circuit ->
        let evals, wall = run circuit in
        let rate = float_of_int evals /. wall in
        Printf.printf "%-16s %8d evals  %7.3f s  %10.0f evals/s\n%!"
          circuit.Circuit.name evals wall rate;
        (circuit.Circuit.name, evals, wall, rate))
      Benchmarks.all
  in
  let rows =
    List.map
      (fun (name, evals, wall, rate) ->
        Printf.sprintf
          "    { \"circuit\": %S, \"evaluations\": %d, \"wall_seconds\": %.4f, \
           \"evals_per_sec\": %.0f }"
          name evals wall rate)
      measured
  in
  let _, _, _, rate24 =
    List.find (fun (name, _, _, _) -> String.equal name "benchmark24") measured
  in
  let baseline_rate = float_of_int baseline_evaluations /. baseline_wall_seconds in
  let speedup = rate24 /. baseline_rate in
  let oc = open_out "BENCH_GEN.json" in
  Printf.fprintf oc "{\n  \"budget\": \"quick\",\n  \"rows\": [\n%s\n  ],\n"
    (String.concat ",\n" rows);
  Printf.fprintf oc
    "  \"baseline\": { \"circuit\": \"benchmark24\", \"evaluations\": %d, \
     \"wall_seconds\": %.4f, \"evals_per_sec\": %.0f },\n"
    baseline_evaluations baseline_wall_seconds baseline_rate;
  Printf.fprintf oc "  \"speedup_benchmark24\": %.2f\n}\n" speedup;
  close_out oc;
  Printf.printf "benchmark24 speedup vs pre-engine baseline: %.2fx\n" speedup;
  print_endline "wrote BENCH_GEN.json"

(* Sizing-loop workload: a sequential random walk of slightly perturbed
   dimension vectors, the traffic pattern a synthesis loop produces —
   each candidate differs from the previous one by a small bump on one
   block axis, with an occasional jump to a different operating region.
   Consecutive probes usually land in the same validity box, which is
   what the engine's hot-box cache exploits. *)
let sizing_walk ~seed ~n structure =
  let module G = Mps_geometry in
  let rng = Mps_rng.Rng.create ~seed in
  let circuit = Structure.circuit structure in
  let bounds = Circuit.dim_bounds circuit in
  let stored = Structure.placements structure in
  let jump () = stored.(Mps_rng.Rng.int rng (Array.length stored)).Stored.best_dims in
  let current = ref (jump ()) in
  Array.init n (fun _ ->
      (if Mps_rng.Rng.int rng 64 = 0 then current := jump ()
       else begin
         let d = !current in
         let i = Mps_rng.Rng.int rng (G.Dims.n_blocks d) in
         let delta = if Mps_rng.Rng.int rng 2 = 0 then 1 else -1 in
         let d' =
           if Mps_rng.Rng.int rng 2 = 0 then
             G.Dims.set_width d i (max 1 (G.Dims.width d i + delta))
           else G.Dims.set_height d i (max 1 (G.Dims.height d i + delta))
         in
         current := G.Dimbox.clamp bounds d'
       end);
      !current)

(* Query-path latency and throughput: per-circuit p50/p99 of a single
   query and of a full instantiation for both the reference compiled
   path ([Structure.query]) and the zero-allocation engine, plus
   queries/sec on the sizing-loop walk — the serving-path counterpart
   of the generation-throughput numbers above.  Every probe is answered
   by the old path, the engine and the linear oracle; any disagreement
   is counted and fails the run (exit 1), which is the CI smoke
   contract for BENCH_QUERY.json. *)
let query_bench () =
  let module E = Mps_experiments.Experiments in
  let percentile sorted p =
    let n = Array.length sorted in
    sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  let time_calls f probes =
    let samples =
      Array.map
        (fun dims ->
          let t0 = Unix.gettimeofday () in
          ignore (Sys.opaque_identity (f dims));
          Unix.gettimeofday () -. t0)
        probes
    in
    Array.sort compare samples;
    (percentile samples 0.50 *. 1e6, percentile samples 0.99 *. 1e6)
  in
  (* Throughput over the walk, several passes for a stable number. *)
  let walk_reps = 5 in
  let qps f walk =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to walk_reps do
      Array.iter (fun d -> ignore (Sys.opaque_identity (f d))) walk
    done;
    let wall = Unix.gettimeofday () -. t0 in
    float_of_int (walk_reps * Array.length walk) /. wall
  in
  let mismatches_total = ref 0 in
  let results =
    List.map
      (fun circuit ->
        let config = E.generator_config E.Quick circuit in
        let structure, _ = Generator.generate ~config circuit in
        let engine = Structure.Engine.create structure in
        let probes = E.probe_dims ~seed:23 ~n:2048 structure in
        let walk = sizing_walk ~seed:29 ~n:20000 structure in
        (* Answer agreement on every probe of both workloads. *)
        let mismatches = ref 0 in
        let vsession = Structure.Engine.new_session () in
        let check d =
          let a_old = fst (Structure.query structure d) in
          let a_new = fst (Structure.Engine.query engine vsession d) in
          let a_lin = fst (Structure.query_linear structure d) in
          if a_old <> a_lin || a_new <> a_lin then incr mismatches
        in
        Array.iter check probes;
        Array.iter check walk;
        mismatches_total := !mismatches_total + !mismatches;
        (* Per-call latency on uniform probes. *)
        let session = Structure.Engine.new_session () in
        Array.iter
          (fun d ->
            ignore (Structure.instantiate structure d);
            ignore (Structure.Engine.instantiate_into engine session d))
          (Array.sub probes 0 64);
        let q50, q99 = time_calls (fun d -> Structure.query structure d) probes in
        let e50, e99 =
          time_calls (fun d -> Structure.Engine.query engine session d) probes
        in
        let i50, i99 = time_calls (fun d -> Structure.instantiate structure d) probes in
        let n50, n99 =
          time_calls (fun d -> Structure.Engine.instantiate_into engine session d) probes
        in
        (* Sizing-loop throughput, old path vs engine. *)
        let qps_old = qps (fun d -> Structure.query structure d) walk in
        let wsession = Structure.Engine.new_session () in
        let qps_new = qps (fun d -> Structure.Engine.query engine wsession d) walk in
        let wstats = Structure.Engine.stats wsession in
        let hit_rate =
          float_of_int wstats.Structure.Engine.cache_hits
          /. float_of_int (max 1 wstats.Structure.Engine.queries)
        in
        let speedup = qps_new /. qps_old in
        Printf.printf
          "%-20s query p50 %6.2f->%5.2f us  p99 %6.2f->%5.2f us   walk %9.0f -> %9.0f \
           q/s (%4.1fx, cache %4.1f%%)  mismatches %d\n\
           %!"
          circuit.Circuit.name q50 e50 q99 e99 qps_old qps_new speedup
          (100.0 *. hit_rate) !mismatches;
        let row =
          Printf.sprintf
            "    { \"circuit\": %S, \"probes\": %d, \"query_p50_us\": %.3f, \
             \"query_p99_us\": %.3f, \"engine_query_p50_us\": %.3f, \
             \"engine_query_p99_us\": %.3f, \"instantiate_p50_us\": %.3f, \
             \"instantiate_p99_us\": %.3f, \"engine_instantiate_p50_us\": %.3f, \
             \"engine_instantiate_p99_us\": %.3f, \"walk_qps_old\": %.0f, \
             \"walk_qps_engine\": %.0f, \"walk_speedup\": %.2f, \
             \"cache_hit_rate\": %.4f, \"mismatches\": %d }"
            circuit.Circuit.name (Array.length probes) q50 q99 e50 e99 i50 i99 n50 n99
            qps_old qps_new speedup hit_rate !mismatches
        in
        (circuit.Circuit.name, speedup, row))
      Benchmarks.all
  in
  let _, speedup24, _ =
    List.find (fun (name, _, _) -> String.equal name "benchmark24") results
  in
  let oc = open_out "BENCH_QUERY.json" in
  Printf.fprintf oc
    "{\n\
    \  \"budget\": \"quick\",\n\
    \  \"rows\": [\n\
     %s\n\
    \  ],\n\
    \  \"walk_speedup_benchmark24\": %.2f,\n\
    \  \"mismatches_total\": %d\n\
     }\n"
    (String.concat ",\n" (List.map (fun (_, _, row) -> row) results))
    speedup24 !mismatches_total;
  close_out oc;
  Printf.printf "benchmark24 sizing-walk speedup (engine vs query): %.2fx\n" speedup24;
  Printf.printf "answer mismatches across all circuits: %d\n" !mismatches_total;
  print_endline "wrote BENCH_QUERY.json";
  if !mismatches_total > 0 then exit 1

(* Parallel generation scaling: one quick-budget run per (circuit, job
   count).  The structure hash (CRC-32 of the serialized structure)
   must be identical at every job count per circuit — that is the
   determinism contract of Generator.generate_par, and CI fails if it
   breaks.  Speedups are relative to jobs=1 on this host; host_cores
   records how much hardware was actually available (on a 1-core host
   the sweep still proves determinism and measures scheduler overhead,
   it just cannot show parallel speedup).  Per-worker scheduler
   counters (tasks, chunks, steals, minor words, busy seconds) come
   from the pool via on_pool_stats — the diagnosis surface for scaling
   regressions: rising minor_words means allocation churn is back in
   the hot path, and every minor collection is a stop-the-world across
   domains. *)

(* Zero-copy load benchmark: per Table 1 circuit, time "cold load to
   query-ready" for the text document (parse + overlap validation +
   engine compilation) against the MPSZ container (map + record
   decode), measure the size win of `mpsgen compact`, and cross-check
   the mapped engine against the heap engine probe for probe.  Emits
   BENCH_LOAD.json; the CI load-bench job gates the benchmark24 row:
   >= 10x cold-load speedup, >= 20% bytes after compaction, zero
   query mismatches. *)
let load_bench () =
  let module E = Mps_experiments.Experiments in
  let percentile sorted p =
    let n = Array.length sorted in
    sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  let time_calls f probes =
    let samples =
      Array.map
        (fun dims ->
          let t0 = Unix.gettimeofday () in
          ignore (Sys.opaque_identity (f dims));
          Unix.gettimeofday () -. t0)
        probes
    in
    Array.sort compare samples;
    (percentile samples 0.50 *. 1e6, percentile samples 0.99 *. 1e6)
  in
  let median f reps =
    let samples =
      Array.init reps (fun _ ->
          let t0 = Unix.gettimeofday () in
          ignore (Sys.opaque_identity (f ()));
          Unix.gettimeofday () -. t0)
    in
    Array.sort compare samples;
    samples.(reps / 2)
  in
  let file_bytes path = (Unix.stat path).Unix.st_size in
  let dir = Filename.temp_file "mps_loadbench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let mismatches_total = ref 0 in
  let rows =
    List.map
      (fun circuit ->
        let config = E.generator_config E.Quick circuit in
        let structure, _ = Generator.generate ~config circuit in
        let tpath = Filename.concat dir "s.mps" in
        let zpath = Filename.concat dir "s.mpsz" in
        let cpath = Filename.concat dir "c.mpsz" in
        Codec.save structure ~path:tpath;
        Zcodec.save structure ~path:zpath;
        let compacted, _ = Compact.run structure in
        Zcodec.save ~packed:true compacted ~path:cpath;
        let text_bytes = file_bytes tpath
        and mpsz_bytes = file_bytes zpath
        and compact_bytes = file_bytes cpath in
        let reduction =
          1.0 -. (float_of_int compact_bytes /. float_of_int mpsz_bytes)
        in
        (* cold load to query-ready: the text path must recompile, the
           container just maps and decodes the record table *)
        let reps = 15 in
        let text_s =
          median
            (fun () -> Structure.Engine.create (Codec.load ~circuit ~path:tpath))
            reps
        in
        let mpsz_s = median (fun () -> Zcodec.load ~circuit zpath) reps in
        let speedup = text_s /. mpsz_s in
        (* mapped vs heap engine: identical answers on every probe *)
        let heap = Structure.Engine.create compacted in
        let view = Zcodec.load ~circuit cpath in
        let mapped = view.Zcodec.engine in
        let probes = E.probe_dims ~seed:31 ~n:4096 compacted in
        let hs = Structure.Engine.new_session ()
        and ms = Structure.Engine.new_session () in
        let mismatches = ref 0 in
        Array.iter
          (fun d ->
            if
              Structure.Engine.query_id heap hs d
              <> Structure.Engine.query_id mapped ms d
            then incr mismatches)
          probes;
        mismatches_total := !mismatches_total + !mismatches;
        let hsession = Structure.Engine.new_session () in
        let msession = Structure.Engine.new_session () in
        let h50, h99 =
          time_calls (fun d -> Structure.Engine.query heap hsession d) probes
        in
        let m50, m99 =
          time_calls (fun d -> Structure.Engine.query mapped msession d) probes
        in
        List.iter Sys.remove [ tpath; zpath; cpath ];
        Printf.printf
          "%-20s cold %7.2f -> %6.3f ms (%5.1fx)   bytes %6d -> %6d -> %6d \
           (-%4.1f%%)   query p50 %5.2f/%5.2f us p99 %5.2f/%5.2f us   mismatches %d\n\
           %!"
          circuit.Circuit.name (text_s *. 1e3) (mpsz_s *. 1e3) speedup text_bytes
          mpsz_bytes compact_bytes (100. *. reduction) h50 m50 h99 m99 !mismatches;
        let row =
          Printf.sprintf
            "    { \"circuit\": %S, \"text_bytes\": %d, \"mpsz_bytes\": %d, \
             \"compact_bytes\": %d, \"bytes_reduction\": %.4f, \
             \"cold_load_text_ms\": %.4f, \"cold_load_mpsz_ms\": %.4f, \
             \"load_speedup\": %.2f, \"probes\": %d, \"mismatches\": %d, \
             \"heap_query_p50_us\": %.3f, \"heap_query_p99_us\": %.3f, \
             \"mapped_query_p50_us\": %.3f, \"mapped_query_p99_us\": %.3f }"
            circuit.Circuit.name text_bytes mpsz_bytes compact_bytes reduction
            (text_s *. 1e3) (mpsz_s *. 1e3) speedup (Array.length probes)
            !mismatches h50 h99 m50 m99
        in
        (circuit.Circuit.name, speedup, reduction, row))
      Benchmarks.all
  in
  Unix.rmdir dir;
  let _, speedup24, reduction24, _ =
    List.find (fun (name, _, _, _) -> String.equal name "benchmark24") rows
  in
  let oc = open_out "BENCH_LOAD.json" in
  Printf.fprintf oc
    "{\n\
    \  \"budget\": \"quick\",\n\
    \  \"rows\": [\n\
     %s\n\
    \  ],\n\
    \  \"load_speedup_benchmark24\": %.2f,\n\
    \  \"bytes_reduction_benchmark24\": %.4f,\n\
    \  \"mismatches_total\": %d\n\
     }\n"
    (String.concat ",\n" (List.map (fun (_, _, _, row) -> row) rows))
    speedup24 reduction24 !mismatches_total;
  close_out oc;
  Printf.printf "benchmark24 cold-load speedup (mpsz vs text): %.2fx\n" speedup24;
  Printf.printf "benchmark24 bytes reduction after compact: %.1f%%\n"
    (100. *. reduction24);
  Printf.printf "query mismatches across all circuits: %d\n" !mismatches_total;
  print_endline "wrote BENCH_LOAD.json";
  if !mismatches_total > 0 then exit 1

(* The seed_baseline block records the same quick-budget benchmark24
   sweep measured on this host just before the work-stealing pool,
   per-worker arenas and move LUTs landed, so the JSON carries its own
   cross-revision denominator ("speedup_vs_seed"). *)
let seed_baseline_walls = [ (1, 0.336); (2, 0.364); (4, 0.540); (8, 0.780) ]
let seed_baseline_evaluations = 73540
let seed_baseline_hash = "5a8a8386"

let par_bench () =
  let module E = Mps_experiments.Experiments in
  let job_counts = [ 1; 2; 4; 8 ] in
  let circuits = [ Benchmarks.circ06; Benchmarks.tso_cascode; Benchmarks.benchmark24 ] in
  let run circuit jobs =
    let config = E.generator_config E.Quick circuit in
    let pool_stats = ref [||] in
    let t0 = Unix.gettimeofday () in
    let structure, stats =
      Generator.generate_par ~config ~jobs
        ~on_pool_stats:(fun s -> pool_stats := s)
        circuit
    in
    let wall = Unix.gettimeofday () -. t0 in
    let hash = Persist.crc32_hex (Codec.to_string structure) in
    (jobs, wall, stats.Generator.cost_evaluations, hash, !pool_stats)
  in
  ignore (run Benchmarks.circ06 2) (* warm-up: cold code paths and domain spawning *);
  let worker_json stats =
    String.concat ", "
      (Array.to_list
         (Array.mapi
            (fun slot (s : Mps_parallel.Pool.stats) ->
              Printf.sprintf
                "{ \"slot\": %d, \"tasks\": %d, \"chunks\": %d, \"steals\": %d, \
                 \"batches\": %d, \"minor_words\": %.0f, \"busy_seconds\": %.4f }"
                slot s.Mps_parallel.Pool.tasks s.chunks s.steals s.batches
                s.minor_words s.busy_seconds)
            stats))
  in
  let per_circuit =
    List.map
      (fun circuit ->
        let name = circuit.Circuit.name in
        let rows = List.map (run circuit) job_counts in
        let _, base_wall, _, base_hash, _ =
          List.find (fun (jobs, _, _, _, _) -> jobs = 1) rows
        in
        let hash_equal =
          List.for_all (fun (_, _, _, hash, _) -> String.equal hash base_hash) rows
        in
        Printf.printf "%s:\n" name;
        List.iter
          (fun (jobs, wall, evals, hash, stats) ->
            let steals =
              Array.fold_left (fun acc s -> acc + s.Mps_parallel.Pool.steals) 0 stats
            in
            Printf.printf "  jobs=%d  %7.3f s  %8d evals  %5.2fx  steals %4d  hash %s\n%!"
              jobs wall evals (base_wall /. wall) steals hash)
          rows;
        let json_rows =
          List.map
            (fun (jobs, wall, evals, hash, stats) ->
              let vs_seed =
                if String.equal name "benchmark24" then
                  match List.assoc_opt jobs seed_baseline_walls with
                  | Some seed_wall ->
                    Printf.sprintf ", \"speedup_vs_seed\": %.3f" (seed_wall /. wall)
                  | None -> ""
                else ""
              in
              Printf.sprintf
                "        { \"jobs\": %d, \"wall_seconds\": %.4f, \"evaluations\": %d, \
                 \"speedup\": %.3f%s, \"structure_hash\": \"%s\",\n\
                \          \"workers\": [ %s ] }"
                jobs wall evals (base_wall /. wall) vs_seed hash (worker_json stats))
            rows
        in
        let block =
          Printf.sprintf
            "    { \"circuit\": %S, \"hash_equal\": %b, \"rows\": [\n%s\n    ] }"
            name hash_equal
            (String.concat ",\n" json_rows)
        in
        (name, hash_equal, block))
      circuits
  in
  let all_equal = List.for_all (fun (_, eq, _) -> eq) per_circuit in
  let seed_rows =
    String.concat ", "
      (List.map
         (fun (jobs, wall) ->
           Printf.sprintf "{ \"jobs\": %d, \"wall_seconds\": %.4f }" jobs wall)
         seed_baseline_walls)
  in
  let oc = open_out "BENCH_PAR.json" in
  Printf.fprintf oc
    "{\n\
    \  \"budget\": \"quick\",\n\
    \  \"host_cores\": %d,\n\
    \  \"circuits\": [\n\
     %s\n\
    \  ],\n\
    \  \"seed_baseline\": { \"circuit\": \"benchmark24\", \"evaluations\": %d, \
     \"structure_hash\": \"%s\", \"host_cores\": 1,\n\
    \                     \"rows\": [ %s ] },\n\
    \  \"structure_hash_equal\": %b\n\
     }\n"
    (Domain.recommended_domain_count ())
    (String.concat ",\n" (List.map (fun (_, _, block) -> block) per_circuit))
    seed_baseline_evaluations seed_baseline_hash seed_rows all_equal;
  close_out oc;
  Printf.printf "structure hashes %s across job counts\n"
    (if all_equal then "identical" else "DIFFER");
  print_endline "wrote BENCH_PAR.json";
  if not all_equal then exit 1

let main () =
  print_endline "=== Micro-benchmarks (bechamel) ===";
  print_newline ();
  run_group ~name:"instantiate" (instantiation_tests ());
  run_group ~name:"query24" (query_tests ());
  run_group ~name:"placer" (baseline_tests ());
  let module E = Mps_experiments.Experiments in
  print_endline "=== Paper experiments ===";
  print_newline ();
  print_string (E.table1 ());
  print_newline ();
  print_string (snd (E.table2 ~budget ()));
  print_newline ();
  print_string (E.figure5 ~budget ());
  print_newline ();
  print_string (snd (E.figure6 ~budget ()));
  print_newline ();
  print_string (E.figure7 ~budget ());
  print_newline ();
  print_endline "=== Ablations ===";
  print_newline ();
  print_string (E.ablation_shrink ~budget ());
  print_newline ();
  print_string (E.ablation_explorer ~budget ());
  print_newline ();
  print_string (E.ablation_query ~budget ());
  print_newline ();
  print_string (E.ablation_fallback ~budget ());
  print_newline ();
  print_string (E.ablation_parasitics ~budget ());
  print_newline ();
  print_string (E.ablation_refine ~budget ());
  print_newline ();
  print_string (E.synthesis_comparison ~budget ())

(* --shm-bench: the ring transport in isolation.  An echo peer runs in
   its own domain; every frame the main domain sends comes straight
   back, so a round trip is two publishes and two consumes with no
   serving work in between — the floor under the serve layer's
   per-request cost over shm. *)
let shm_bench () =
  let module Shm = Mps_serve.Shm in
  let percentile sorted p =
    let n = Array.length sorted in
    sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  let dir = Filename.temp_file "mps_shmbench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "ring" in
  let ring_words = 64 * 1024 in
  let server = Shm.create ~ring_words ~path () in
  let sizes = [ 32; 256; 2048 ] in
  let rtts = 4096 in
  let pipe_frames = 65536 in
  let pipe_window = 256 in
  let pipe_bytes = 32 in
  let echo =
    Domain.spawn (fun () ->
        let client = Shm.attach ~path () in
        let buf = ref (Bytes.create 4096) in
        let total = (List.length sizes * rtts) + pipe_frames in
        (try
           for _ = 1 to total do
             let len =
               Shm.recv ~deadline:(Unix.gettimeofday () +. 120.0) client ~buf
             in
             Shm.send client !buf ~off:0 ~len
           done
         with Shm.Dead _ | Shm.Timeout -> ());
        Shm.close client)
  in
  let buf = ref (Bytes.create 4096) in
  let payload = Bytes.make 4096 'x' in
  let rtt_rows =
    List.map
      (fun size ->
        let samples =
          Array.init rtts (fun _ ->
              let t0 = Unix.gettimeofday () in
              Shm.send server payload ~off:0 ~len:size;
              ignore
                (Shm.recv ~deadline:(Unix.gettimeofday () +. 120.0) server ~buf);
              Unix.gettimeofday () -. t0)
        in
        Array.sort compare samples;
        let p50 = percentile samples 0.50 *. 1e6 in
        let p99 = percentile samples 0.99 *. 1e6 in
        Printf.printf "shm rtt %5d B  p50 %7.2f us  p99 %7.2f us\n%!" size p50 p99;
        (size, p50, p99))
      sizes
  in
  let t0 = Unix.gettimeofday () in
  let sent = ref 0 and got = ref 0 in
  while !got < pipe_frames do
    if !sent < pipe_frames && !sent - !got < pipe_window then begin
      Shm.send server payload ~off:0 ~len:pipe_bytes;
      incr sent
    end
    else begin
      ignore (Shm.recv ~deadline:(Unix.gettimeofday () +. 120.0) server ~buf);
      incr got
    end
  done;
  let pipe_secs = Unix.gettimeofday () -. t0 in
  let fps = float_of_int pipe_frames /. pipe_secs in
  Printf.printf "shm pipelined %d B x %d in flight: %d frames in %.3f s (%.0f frames/s)\n%!"
    pipe_bytes pipe_window pipe_frames pipe_secs fps;
  Domain.join echo;
  Shm.close server;
  Shm.remove server;
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  let oc = open_out "BENCH_SHM.json" in
  Printf.fprintf oc "{\n  \"ring_words\": %d,\n  \"round_trip\": [\n%s\n  ],\n"
    ring_words
    (String.concat ",\n"
       (List.map
          (fun (size, p50, p99) ->
            Printf.sprintf
              "    { \"frame_bytes\": %d, \"rtt_p50_us\": %.2f, \"rtt_p99_us\": %.2f }"
              size p50 p99)
          rtt_rows));
  Printf.fprintf oc
    "  \"pipelined\": { \"frame_bytes\": %d, \"window\": %d, \"frames_per_sec\": %.0f }\n}\n"
    pipe_bytes pipe_window fps;
  close_out oc;
  print_endline "wrote BENCH_SHM.json"

let () =
  if Array.exists (String.equal "--gen-bench") Sys.argv then gen_bench ()
  else if Array.exists (String.equal "--query-bench") Sys.argv then query_bench ()
  else if Array.exists (String.equal "--par-bench") Sys.argv then par_bench ()
  else if Array.exists (String.equal "--load-bench") Sys.argv then load_bench ()
  else if Array.exists (String.equal "--shm-bench") Sys.argv then shm_bench ()
  else main ()
